# Empty compiler generated dependencies file for reopt_trace.
# This may be replaced when dependencies are built.
