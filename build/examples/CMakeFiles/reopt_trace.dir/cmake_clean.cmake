file(REMOVE_RECURSE
  "CMakeFiles/reopt_trace.dir/reopt_trace.cpp.o"
  "CMakeFiles/reopt_trace.dir/reopt_trace.cpp.o.d"
  "reopt_trace"
  "reopt_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reopt_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
