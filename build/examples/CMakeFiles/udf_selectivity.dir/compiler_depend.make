# Empty compiler generated dependencies file for udf_selectivity.
# This may be replaced when dependencies are built.
