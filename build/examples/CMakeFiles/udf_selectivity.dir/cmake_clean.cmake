file(REMOVE_RECURSE
  "CMakeFiles/udf_selectivity.dir/udf_selectivity.cpp.o"
  "CMakeFiles/udf_selectivity.dir/udf_selectivity.cpp.o.d"
  "udf_selectivity"
  "udf_selectivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/udf_selectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
