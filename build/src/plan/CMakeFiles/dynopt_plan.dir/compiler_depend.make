# Empty compiler generated dependencies file for dynopt_plan.
# This may be replaced when dependencies are built.
