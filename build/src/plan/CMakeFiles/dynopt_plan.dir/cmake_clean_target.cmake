file(REMOVE_RECURSE
  "libdynopt_plan.a"
)
