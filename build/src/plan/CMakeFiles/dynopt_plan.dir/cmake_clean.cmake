file(REMOVE_RECURSE
  "CMakeFiles/dynopt_plan.dir/analysis.cc.o"
  "CMakeFiles/dynopt_plan.dir/analysis.cc.o.d"
  "CMakeFiles/dynopt_plan.dir/expr.cc.o"
  "CMakeFiles/dynopt_plan.dir/expr.cc.o.d"
  "CMakeFiles/dynopt_plan.dir/query_spec.cc.o"
  "CMakeFiles/dynopt_plan.dir/query_spec.cc.o.d"
  "CMakeFiles/dynopt_plan.dir/udf.cc.o"
  "CMakeFiles/dynopt_plan.dir/udf.cc.o.d"
  "libdynopt_plan.a"
  "libdynopt_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynopt_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
