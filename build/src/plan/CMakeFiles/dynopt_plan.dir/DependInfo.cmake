
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/plan/analysis.cc" "src/plan/CMakeFiles/dynopt_plan.dir/analysis.cc.o" "gcc" "src/plan/CMakeFiles/dynopt_plan.dir/analysis.cc.o.d"
  "/root/repo/src/plan/expr.cc" "src/plan/CMakeFiles/dynopt_plan.dir/expr.cc.o" "gcc" "src/plan/CMakeFiles/dynopt_plan.dir/expr.cc.o.d"
  "/root/repo/src/plan/query_spec.cc" "src/plan/CMakeFiles/dynopt_plan.dir/query_spec.cc.o" "gcc" "src/plan/CMakeFiles/dynopt_plan.dir/query_spec.cc.o.d"
  "/root/repo/src/plan/udf.cc" "src/plan/CMakeFiles/dynopt_plan.dir/udf.cc.o" "gcc" "src/plan/CMakeFiles/dynopt_plan.dir/udf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dynopt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
