file(REMOVE_RECURSE
  "libdynopt_exec.a"
)
