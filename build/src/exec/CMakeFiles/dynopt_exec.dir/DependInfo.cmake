
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/engine.cc" "src/exec/CMakeFiles/dynopt_exec.dir/engine.cc.o" "gcc" "src/exec/CMakeFiles/dynopt_exec.dir/engine.cc.o.d"
  "/root/repo/src/exec/executor.cc" "src/exec/CMakeFiles/dynopt_exec.dir/executor.cc.o" "gcc" "src/exec/CMakeFiles/dynopt_exec.dir/executor.cc.o.d"
  "/root/repo/src/exec/job.cc" "src/exec/CMakeFiles/dynopt_exec.dir/job.cc.o" "gcc" "src/exec/CMakeFiles/dynopt_exec.dir/job.cc.o.d"
  "/root/repo/src/exec/metrics.cc" "src/exec/CMakeFiles/dynopt_exec.dir/metrics.cc.o" "gcc" "src/exec/CMakeFiles/dynopt_exec.dir/metrics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dynopt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/dynopt_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dynopt_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dynopt_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
