file(REMOVE_RECURSE
  "CMakeFiles/dynopt_exec.dir/engine.cc.o"
  "CMakeFiles/dynopt_exec.dir/engine.cc.o.d"
  "CMakeFiles/dynopt_exec.dir/executor.cc.o"
  "CMakeFiles/dynopt_exec.dir/executor.cc.o.d"
  "CMakeFiles/dynopt_exec.dir/job.cc.o"
  "CMakeFiles/dynopt_exec.dir/job.cc.o.d"
  "CMakeFiles/dynopt_exec.dir/metrics.cc.o"
  "CMakeFiles/dynopt_exec.dir/metrics.cc.o.d"
  "libdynopt_exec.a"
  "libdynopt_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynopt_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
