file(REMOVE_RECURSE
  "libdynopt_workloads.a"
)
