file(REMOVE_RECURSE
  "CMakeFiles/dynopt_workloads.dir/tpcds.cc.o"
  "CMakeFiles/dynopt_workloads.dir/tpcds.cc.o.d"
  "CMakeFiles/dynopt_workloads.dir/tpch.cc.o"
  "CMakeFiles/dynopt_workloads.dir/tpch.cc.o.d"
  "libdynopt_workloads.a"
  "libdynopt_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynopt_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
