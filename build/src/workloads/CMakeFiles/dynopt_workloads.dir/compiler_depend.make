# Empty compiler generated dependencies file for dynopt_workloads.
# This may be replaced when dependencies are built.
