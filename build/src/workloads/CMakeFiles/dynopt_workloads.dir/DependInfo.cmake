
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/tpcds.cc" "src/workloads/CMakeFiles/dynopt_workloads.dir/tpcds.cc.o" "gcc" "src/workloads/CMakeFiles/dynopt_workloads.dir/tpcds.cc.o.d"
  "/root/repo/src/workloads/tpch.cc" "src/workloads/CMakeFiles/dynopt_workloads.dir/tpch.cc.o" "gcc" "src/workloads/CMakeFiles/dynopt_workloads.dir/tpch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exec/CMakeFiles/dynopt_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/dynopt_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dynopt_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/dynopt_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dynopt_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dynopt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
