# Empty compiler generated dependencies file for dynopt_sql.
# This may be replaced when dependencies are built.
