file(REMOVE_RECURSE
  "libdynopt_sql.a"
)
