file(REMOVE_RECURSE
  "CMakeFiles/dynopt_sql.dir/binder.cc.o"
  "CMakeFiles/dynopt_sql.dir/binder.cc.o.d"
  "CMakeFiles/dynopt_sql.dir/lexer.cc.o"
  "CMakeFiles/dynopt_sql.dir/lexer.cc.o.d"
  "CMakeFiles/dynopt_sql.dir/parser.cc.o"
  "CMakeFiles/dynopt_sql.dir/parser.cc.o.d"
  "libdynopt_sql.a"
  "libdynopt_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynopt_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
