file(REMOVE_RECURSE
  "CMakeFiles/dynopt_storage.dir/catalog.cc.o"
  "CMakeFiles/dynopt_storage.dir/catalog.cc.o.d"
  "CMakeFiles/dynopt_storage.dir/csv.cc.o"
  "CMakeFiles/dynopt_storage.dir/csv.cc.o.d"
  "CMakeFiles/dynopt_storage.dir/schema.cc.o"
  "CMakeFiles/dynopt_storage.dir/schema.cc.o.d"
  "CMakeFiles/dynopt_storage.dir/serde.cc.o"
  "CMakeFiles/dynopt_storage.dir/serde.cc.o.d"
  "CMakeFiles/dynopt_storage.dir/table.cc.o"
  "CMakeFiles/dynopt_storage.dir/table.cc.o.d"
  "libdynopt_storage.a"
  "libdynopt_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynopt_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
