# Empty dependencies file for dynopt_opt.
# This may be replaced when dependencies are built.
