file(REMOVE_RECURSE
  "libdynopt_opt.a"
)
