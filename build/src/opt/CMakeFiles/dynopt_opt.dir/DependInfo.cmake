
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/cardinality.cc" "src/opt/CMakeFiles/dynopt_opt.dir/cardinality.cc.o" "gcc" "src/opt/CMakeFiles/dynopt_opt.dir/cardinality.cc.o.d"
  "/root/repo/src/opt/cost_model.cc" "src/opt/CMakeFiles/dynopt_opt.dir/cost_model.cc.o" "gcc" "src/opt/CMakeFiles/dynopt_opt.dir/cost_model.cc.o.d"
  "/root/repo/src/opt/dynamic_optimizer.cc" "src/opt/CMakeFiles/dynopt_opt.dir/dynamic_optimizer.cc.o" "gcc" "src/opt/CMakeFiles/dynopt_opt.dir/dynamic_optimizer.cc.o.d"
  "/root/repo/src/opt/explain.cc" "src/opt/CMakeFiles/dynopt_opt.dir/explain.cc.o" "gcc" "src/opt/CMakeFiles/dynopt_opt.dir/explain.cc.o.d"
  "/root/repo/src/opt/finalize.cc" "src/opt/CMakeFiles/dynopt_opt.dir/finalize.cc.o" "gcc" "src/opt/CMakeFiles/dynopt_opt.dir/finalize.cc.o.d"
  "/root/repo/src/opt/ingres_optimizer.cc" "src/opt/CMakeFiles/dynopt_opt.dir/ingres_optimizer.cc.o" "gcc" "src/opt/CMakeFiles/dynopt_opt.dir/ingres_optimizer.cc.o.d"
  "/root/repo/src/opt/join_tree.cc" "src/opt/CMakeFiles/dynopt_opt.dir/join_tree.cc.o" "gcc" "src/opt/CMakeFiles/dynopt_opt.dir/join_tree.cc.o.d"
  "/root/repo/src/opt/optimizer.cc" "src/opt/CMakeFiles/dynopt_opt.dir/optimizer.cc.o" "gcc" "src/opt/CMakeFiles/dynopt_opt.dir/optimizer.cc.o.d"
  "/root/repo/src/opt/order_baselines.cc" "src/opt/CMakeFiles/dynopt_opt.dir/order_baselines.cc.o" "gcc" "src/opt/CMakeFiles/dynopt_opt.dir/order_baselines.cc.o.d"
  "/root/repo/src/opt/pilot_run_optimizer.cc" "src/opt/CMakeFiles/dynopt_opt.dir/pilot_run_optimizer.cc.o" "gcc" "src/opt/CMakeFiles/dynopt_opt.dir/pilot_run_optimizer.cc.o.d"
  "/root/repo/src/opt/plan_builder.cc" "src/opt/CMakeFiles/dynopt_opt.dir/plan_builder.cc.o" "gcc" "src/opt/CMakeFiles/dynopt_opt.dir/plan_builder.cc.o.d"
  "/root/repo/src/opt/planner.cc" "src/opt/CMakeFiles/dynopt_opt.dir/planner.cc.o" "gcc" "src/opt/CMakeFiles/dynopt_opt.dir/planner.cc.o.d"
  "/root/repo/src/opt/reconstruction.cc" "src/opt/CMakeFiles/dynopt_opt.dir/reconstruction.cc.o" "gcc" "src/opt/CMakeFiles/dynopt_opt.dir/reconstruction.cc.o.d"
  "/root/repo/src/opt/static_execution.cc" "src/opt/CMakeFiles/dynopt_opt.dir/static_execution.cc.o" "gcc" "src/opt/CMakeFiles/dynopt_opt.dir/static_execution.cc.o.d"
  "/root/repo/src/opt/static_optimizer.cc" "src/opt/CMakeFiles/dynopt_opt.dir/static_optimizer.cc.o" "gcc" "src/opt/CMakeFiles/dynopt_opt.dir/static_optimizer.cc.o.d"
  "/root/repo/src/opt/stats_view.cc" "src/opt/CMakeFiles/dynopt_opt.dir/stats_view.cc.o" "gcc" "src/opt/CMakeFiles/dynopt_opt.dir/stats_view.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exec/CMakeFiles/dynopt_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/dynopt_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dynopt_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dynopt_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dynopt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
