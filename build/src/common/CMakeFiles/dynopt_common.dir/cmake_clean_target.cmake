file(REMOVE_RECURSE
  "libdynopt_common.a"
)
