file(REMOVE_RECURSE
  "CMakeFiles/dynopt_common.dir/logging.cc.o"
  "CMakeFiles/dynopt_common.dir/logging.cc.o.d"
  "CMakeFiles/dynopt_common.dir/random.cc.o"
  "CMakeFiles/dynopt_common.dir/random.cc.o.d"
  "CMakeFiles/dynopt_common.dir/status.cc.o"
  "CMakeFiles/dynopt_common.dir/status.cc.o.d"
  "CMakeFiles/dynopt_common.dir/thread_pool.cc.o"
  "CMakeFiles/dynopt_common.dir/thread_pool.cc.o.d"
  "CMakeFiles/dynopt_common.dir/value.cc.o"
  "CMakeFiles/dynopt_common.dir/value.cc.o.d"
  "libdynopt_common.a"
  "libdynopt_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynopt_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
