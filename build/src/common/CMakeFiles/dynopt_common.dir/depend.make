# Empty dependencies file for dynopt_common.
# This may be replaced when dependencies are built.
