
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/column_stats.cc" "src/stats/CMakeFiles/dynopt_stats.dir/column_stats.cc.o" "gcc" "src/stats/CMakeFiles/dynopt_stats.dir/column_stats.cc.o.d"
  "/root/repo/src/stats/gk_quantile.cc" "src/stats/CMakeFiles/dynopt_stats.dir/gk_quantile.cc.o" "gcc" "src/stats/CMakeFiles/dynopt_stats.dir/gk_quantile.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/stats/CMakeFiles/dynopt_stats.dir/histogram.cc.o" "gcc" "src/stats/CMakeFiles/dynopt_stats.dir/histogram.cc.o.d"
  "/root/repo/src/stats/hyperloglog.cc" "src/stats/CMakeFiles/dynopt_stats.dir/hyperloglog.cc.o" "gcc" "src/stats/CMakeFiles/dynopt_stats.dir/hyperloglog.cc.o.d"
  "/root/repo/src/stats/table_stats.cc" "src/stats/CMakeFiles/dynopt_stats.dir/table_stats.cc.o" "gcc" "src/stats/CMakeFiles/dynopt_stats.dir/table_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dynopt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
