file(REMOVE_RECURSE
  "CMakeFiles/dynopt_stats.dir/column_stats.cc.o"
  "CMakeFiles/dynopt_stats.dir/column_stats.cc.o.d"
  "CMakeFiles/dynopt_stats.dir/gk_quantile.cc.o"
  "CMakeFiles/dynopt_stats.dir/gk_quantile.cc.o.d"
  "CMakeFiles/dynopt_stats.dir/histogram.cc.o"
  "CMakeFiles/dynopt_stats.dir/histogram.cc.o.d"
  "CMakeFiles/dynopt_stats.dir/hyperloglog.cc.o"
  "CMakeFiles/dynopt_stats.dir/hyperloglog.cc.o.d"
  "CMakeFiles/dynopt_stats.dir/table_stats.cc.o"
  "CMakeFiles/dynopt_stats.dir/table_stats.cc.o.d"
  "libdynopt_stats.a"
  "libdynopt_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynopt_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
