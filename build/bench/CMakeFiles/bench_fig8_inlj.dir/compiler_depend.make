# Empty compiler generated dependencies file for bench_fig8_inlj.
# This may be replaced when dependencies are built.
