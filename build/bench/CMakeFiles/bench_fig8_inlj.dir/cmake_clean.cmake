file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_inlj.dir/bench_fig8_inlj.cc.o"
  "CMakeFiles/bench_fig8_inlj.dir/bench_fig8_inlj.cc.o.d"
  "bench_fig8_inlj"
  "bench_fig8_inlj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_inlj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
