# Empty dependencies file for bench_fig6_pushdown.
# This may be replaced when dependencies are built.
