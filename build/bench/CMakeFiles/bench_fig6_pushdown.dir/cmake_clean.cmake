file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_pushdown.dir/bench_fig6_pushdown.cc.o"
  "CMakeFiles/bench_fig6_pushdown.dir/bench_fig6_pushdown.cc.o.d"
  "bench_fig6_pushdown"
  "bench_fig6_pushdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_pushdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
