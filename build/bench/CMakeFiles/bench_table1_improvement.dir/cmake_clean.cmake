file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_improvement.dir/bench_table1_improvement.cc.o"
  "CMakeFiles/bench_table1_improvement.dir/bench_table1_improvement.cc.o.d"
  "bench_table1_improvement"
  "bench_table1_improvement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_improvement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
