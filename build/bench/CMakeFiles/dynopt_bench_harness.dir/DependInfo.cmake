
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/harness.cc" "bench/CMakeFiles/dynopt_bench_harness.dir/harness.cc.o" "gcc" "bench/CMakeFiles/dynopt_bench_harness.dir/harness.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/opt/CMakeFiles/dynopt_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/dynopt_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/dynopt_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/dynopt_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/dynopt_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dynopt_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dynopt_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dynopt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
