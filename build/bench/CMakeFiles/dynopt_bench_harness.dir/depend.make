# Empty dependencies file for dynopt_bench_harness.
# This may be replaced when dependencies are built.
