file(REMOVE_RECURSE
  "libdynopt_bench_harness.a"
)
