file(REMOVE_RECURSE
  "CMakeFiles/dynopt_bench_harness.dir/harness.cc.o"
  "CMakeFiles/dynopt_bench_harness.dir/harness.cc.o.d"
  "libdynopt_bench_harness.a"
  "libdynopt_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynopt_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
