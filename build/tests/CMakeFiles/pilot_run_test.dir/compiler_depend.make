# Empty compiler generated dependencies file for pilot_run_test.
# This may be replaced when dependencies are built.
