file(REMOVE_RECURSE
  "CMakeFiles/pilot_run_test.dir/pilot_run_test.cc.o"
  "CMakeFiles/pilot_run_test.dir/pilot_run_test.cc.o.d"
  "pilot_run_test"
  "pilot_run_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pilot_run_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
