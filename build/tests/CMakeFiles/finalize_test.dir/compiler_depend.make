# Empty compiler generated dependencies file for finalize_test.
# This may be replaced when dependencies are built.
