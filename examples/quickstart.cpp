// Quickstart: build a tiny shared-nothing "cluster", load two datasets,
// run a SQL join through the runtime dynamic optimizer, and inspect the
// chosen plan and metrics.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "exec/engine.h"
#include "opt/dynamic_optimizer.h"
#include "sql/binder.h"
#include "storage/table.h"

using namespace dynopt;

namespace {

Status RunQuickstart() {
  // 1. An Engine bundles the simulated cluster: catalog, statistics
  //    framework, UDF registry, worker pool. Default: 10 simulated nodes.
  Engine engine;

  // 2. Create and load two hash-partitioned datasets.
  auto users = std::make_shared<Table>(
      "users",
      Schema({{"id", ValueType::kInt64},
              {"name", ValueType::kString},
              {"country", ValueType::kString}}),
      engine.cluster().num_nodes);
  DYNOPT_RETURN_IF_ERROR(users->SetPartitionKey({"id"}));
  for (int64_t i = 0; i < 1000; ++i) {
    users->AppendRow({Value(i), Value("user_" + std::to_string(i)),
                      Value(i % 7 == 0 ? "DE" : "US")});
  }
  DYNOPT_RETURN_IF_ERROR(engine.catalog().RegisterTable(users));

  auto orders = std::make_shared<Table>(
      "orders",
      Schema({{"order_id", ValueType::kInt64},
              {"user_id", ValueType::kInt64},
              {"amount", ValueType::kDouble}}),
      engine.cluster().num_nodes);
  DYNOPT_RETURN_IF_ERROR(orders->SetPartitionKey({"order_id"}));
  for (int64_t i = 0; i < 10000; ++i) {
    orders->AppendRow(
        {Value(i), Value(i % 1000), Value(static_cast<double>(i % 500))});
  }
  DYNOPT_RETURN_IF_ERROR(engine.catalog().RegisterTable(orders));

  // 3. Collect load-time statistics (the paper's LSM-ingestion stats):
  //    Greenwald-Khanna quantile sketches + HyperLogLog per column.
  DYNOPT_RETURN_IF_ERROR(
      engine.CollectBaseStats("users", {"id", "country"}));
  DYNOPT_RETURN_IF_ERROR(
      engine.CollectBaseStats("orders", {"order_id", "user_id", "amount"}));

  // 4. Parse + bind a SQL query against the catalog.
  DYNOPT_ASSIGN_OR_RETURN(
      QuerySpec query,
      ParseAndBind("SELECT u.name, o.amount "
                   "FROM users u, orders o "
                   "WHERE u.id = o.user_id AND u.country = 'DE' "
                   "  AND o.amount > 480",
                   engine.catalog()));

  // 5. Run it through the runtime dynamic optimizer.
  DynamicOptimizer optimizer(&engine);
  DYNOPT_ASSIGN_OR_RETURN(OptimizerRunResult result, optimizer.Run(query));

  std::printf("plan: %s\n", result.join_tree->ToString().c_str());
  std::printf("rows: %zu\n", result.rows.size());
  std::printf("simulated seconds: %.4f (re-opt %.4f, online stats %.4f)\n",
              result.metrics.simulated_seconds, result.metrics.reopt_seconds,
              result.metrics.stats_seconds);
  std::printf("stage trace:\n%s", result.plan_trace.c_str());
  for (size_t i = 0; i < result.rows.size() && i < 5; ++i) {
    std::printf("  %s | %s\n", result.rows[i][0].ToString().c_str(),
                result.rows[i][1].ToString().c_str());
  }
  return Status::OK();
}

}  // namespace

int main() {
  Status status = RunQuickstart();
  if (!status.ok()) {
    std::fprintf(stderr, "quickstart failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}
