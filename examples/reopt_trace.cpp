// Re-optimization trace: loads the TPC-DS-like workload, runs Q17 (eight
// datasets, seven joins, three filtered date dimensions) through the
// runtime dynamic optimizer, and narrates every stage: predicate push-down
// jobs, each re-optimization point's chosen join + algorithm, estimated vs
// actual cardinalities, and the final plan — the workflow of Figure 2
// (right) in the paper. The dynamic run executes with tracing enabled, so
// it also prints EXPLAIN ANALYZE (per-decision est-vs-actual + q-error)
// and exports a Chrome-trace JSON loadable in Perfetto.
//
//   ./build/examples/reopt_trace [sf] [trace.json]

#include <cstdio>
#include <cstdlib>

#include "common/tracer.h"
#include "exec/engine.h"
#include "opt/dynamic_optimizer.h"
#include "opt/explain.h"
#include "opt/order_baselines.h"
#include "opt/static_optimizer.h"
#include "workloads/tpcds.h"

using namespace dynopt;

namespace {

Status Run(double sf, const char* trace_path) {
  Engine engine;
  TpcdsOptions options;
  options.sf = sf;
  DYNOPT_RETURN_IF_ERROR(LoadTpcds(&engine, options));
  DYNOPT_ASSIGN_OR_RETURN(QuerySpec query, TpcdsQ17(&engine));

  std::printf("Query (bound):\n%s\n\n", query.ToString().c_str());

  Tracer::Global().Enable();
  DynamicOptimizer dynamic(&engine);
  DYNOPT_ASSIGN_OR_RETURN(OptimizerRunResult dyn, dynamic.Run(query));
  Tracer::Global().Disable();
  std::printf("=== runtime dynamic optimization ===\n%s",
              dyn.plan_trace.c_str());
  std::printf("effective plan: %s\n", dyn.join_tree->ToString().c_str());
  std::printf("result rows: %zu\n", dyn.rows.size());
  std::printf("simulated: %.3f s (re-opt %.3f s = %.1f%%, stats %.3f s)\n\n",
              dyn.metrics.simulated_seconds, dyn.metrics.reopt_seconds,
              100.0 * dyn.metrics.reopt_seconds /
                  dyn.metrics.simulated_seconds,
              dyn.metrics.stats_seconds);

  DYNOPT_ASSIGN_OR_RETURN(std::string analyzed,
                          ExplainAnalyze(&engine, query, dyn));
  std::printf("%s\n", analyzed.c_str());

  if (dyn.profile != nullptr && !dyn.profile->trace.empty()) {
    DYNOPT_RETURN_IF_ERROR(WriteChromeTrace(trace_path, dyn.profile->trace));
    std::printf("wrote %s (%zu spans) — open in Perfetto or "
                "chrome://tracing\n\n",
                trace_path, dyn.profile->trace.size());
  }

  // Contrast with the static strategies.
  StaticCostBasedOptimizer cost_based(&engine);
  DYNOPT_ASSIGN_OR_RETURN(OptimizerRunResult cb, cost_based.Run(query));
  std::printf("=== static cost-based ===\nplan: %s\nsimulated: %.3f s\n\n",
              cb.join_tree->ToString().c_str(),
              cb.metrics.simulated_seconds);

  WorstOrderOptimizer worst(&engine);
  DYNOPT_ASSIGN_OR_RETURN(OptimizerRunResult wo, worst.Run(query));
  std::printf("=== worst-order ===\nplan: %s\nsimulated: %.3f s (%.1fx)\n",
              wo.join_tree->ToString().c_str(), wo.metrics.simulated_seconds,
              wo.metrics.simulated_seconds / dyn.metrics.simulated_seconds);
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  double sf = argc > 1 ? std::atof(argv[1]) : 1.0;
  const char* trace_path = argc > 2 ? argv[2] : "reopt_trace_q17.json";
  Status status = Run(sf, trace_path);
  if (!status.ok()) {
    std::fprintf(stderr, "reopt_trace failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}
