// Interactive SQL shell over the workload catalog: loads TPC-H and TPC-DS
// (tiny scale by default), then reads select-project-join queries from
// stdin and executes each through a chosen optimizer.
//
//   ./build/examples/sql_shell [sf]
//
// Shell commands:
//   \tables            list catalog tables (including the sys.* virtual
//                      tables of the live introspection plane)
//   \opt NAME          switch optimizer: dynamic | cost-based |
//                      sketch-dynamic | worst-order
//   \explain SQL       show the DP plan with cardinality estimates
//   \trace             toggle plan-trace printing
//   \q                 quit
// Anything else is parsed as SQL, e.g.:
//   SELECT n.n_name, s.s_acctbal FROM nation n, supplier s
//   WHERE n.n_nationkey = s.s_nationkey AND s.s_acctbal > 9000
// Introspection is enabled, so completed queries are archived and
// queryable right back through SQL:
//   SELECT * FROM sys.queries
//   SELECT * FROM sys.decisions
//   SELECT * FROM sys.metrics

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "exec/engine.h"
#include "opt/dynamic_optimizer.h"
#include "opt/explain.h"
#include "opt/order_baselines.h"
#include "opt/sketch_optimizer.h"
#include "opt/static_optimizer.h"
#include "sql/binder.h"
#include "sys/system_tables.h"
#include "workloads/tpcds.h"
#include "workloads/tpch.h"

using namespace dynopt;

namespace {

void RunQuery(Engine* engine, const std::string& sql,
              const std::string& optimizer_name, bool trace) {
  auto query = ParseAndBind(sql, engine->catalog());
  if (!query.ok()) {
    std::printf("error: %s\n", query.status().ToString().c_str());
    return;
  }
  Result<OptimizerRunResult> result = Status::OK();
  if (optimizer_name == "cost-based") {
    StaticCostBasedOptimizer optimizer(engine);
    result = optimizer.Run(query.value());
  } else if (optimizer_name == "worst-order") {
    WorstOrderOptimizer optimizer(engine);
    result = optimizer.Run(query.value());
  } else if (optimizer_name == "sketch-dynamic") {
    SketchDynamicOptimizer optimizer(engine);
    result = optimizer.Run(query.value());
  } else {
    DynamicOptimizer optimizer(engine);
    result = optimizer.Run(query.value());
  }
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  const OptimizerRunResult& r = result.value();
  if (trace && !r.plan_trace.empty()) std::printf("%s", r.plan_trace.c_str());
  if (r.join_tree != nullptr) {
    std::printf("plan: %s\n", r.join_tree->ToString().c_str());
  }
  // Header + first rows.
  for (size_t i = 0; i < r.columns.size(); ++i) {
    std::printf(i == 0 ? "%s" : " | %s", r.columns[i].c_str());
  }
  std::printf("\n");
  const size_t limit = 20;
  for (size_t i = 0; i < r.rows.size() && i < limit; ++i) {
    for (size_t c = 0; c < r.rows[i].size(); ++c) {
      std::printf(c == 0 ? "%s" : " | %s", r.rows[i][c].ToString().c_str());
    }
    std::printf("\n");
  }
  if (r.rows.size() > limit) {
    std::printf("... (%zu rows total)\n", r.rows.size());
  }
  std::printf("[%zu rows, %.3f simulated s, %.3f wall s]\n", r.rows.size(),
              r.metrics.simulated_seconds, r.wall_seconds);
}

}  // namespace

int main(int argc, char** argv) {
  double sf = argc > 1 ? std::atof(argv[1]) : 0.2;
  Engine engine;
  TpchOptions tpch;
  tpch.sf = sf;
  TpcdsOptions tpcds;
  tpcds.sf = sf;
  if (!LoadTpch(&engine, tpch).ok() || !LoadTpcds(&engine, tpcds).ok()) {
    std::fprintf(stderr, "failed to load workloads\n");
    return 1;
  }
  // Live introspection: completed queries land in the profile archive and
  // every sys.* table is queryable like any other (at zero simulated cost).
  EnableIntrospection(&engine);
  std::printf("dynopt SQL shell — workloads loaded at sf %.2f.\n", sf);
  std::printf("optimizer: dynamic. \\opt, \\tables, \\trace, \\q.\n");
  std::printf("introspection on: try SELECT * FROM sys.queries\n");

  std::string optimizer = "dynamic";
  bool trace = false;
  std::string line;
  while (true) {
    std::printf("dynopt> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == "\\q") break;
    if (line == "\\tables") {
      for (const auto& name : engine.catalog().TableNames()) {
        auto table = engine.catalog().GetTable(name);
        std::printf("  %s (%llu rows)\n", name.c_str(),
                    static_cast<unsigned long long>(
                        table.value()->NumRows()));
      }
      continue;
    }
    if (line == "\\trace") {
      trace = !trace;
      std::printf("trace %s\n", trace ? "on" : "off");
      continue;
    }
    if (line.rfind("\\opt ", 0) == 0) {
      optimizer = line.substr(5);
      std::printf("optimizer: %s\n", optimizer.c_str());
      continue;
    }
    if (line.rfind("\\explain ", 0) == 0) {
      auto query = ParseAndBind(line.substr(9), engine.catalog());
      if (!query.ok()) {
        std::printf("error: %s\n", query.status().ToString().c_str());
        continue;
      }
      auto explained = ExplainStatic(&engine, query.value());
      if (!explained.ok()) {
        std::printf("error: %s\n", explained.status().ToString().c_str());
        continue;
      }
      std::printf("%s", explained->c_str());
      continue;
    }
    RunQuery(&engine, line, optimizer, trace);
  }
  return 0;
}
