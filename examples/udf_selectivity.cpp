// UDF blindness demo: shows why the dynamic approach wins on queries with
// user-defined predicates. A static optimizer must assume a Selinger
// default selectivity (1/10) for myym(o_orderdate) = 199603; the runtime
// dynamic optimizer executes the predicate early and learns the true
// cardinality, unlocking a broadcast the static plan misses (TPC-H Q9,
// Section 5.1 of the paper).
//
//   ./build/examples/udf_selectivity [sf]

#include <cstdio>
#include <cstdlib>

#include "exec/engine.h"
#include "opt/cardinality.h"
#include "opt/dynamic_optimizer.h"
#include "opt/static_optimizer.h"
#include "opt/stats_view.h"
#include "workloads/tpch.h"

using namespace dynopt;

namespace {

Status Run(double sf) {
  Engine engine;
  TpchOptions options;
  options.sf = sf;
  DYNOPT_RETURN_IF_ERROR(LoadTpch(&engine, options));
  DYNOPT_ASSIGN_OR_RETURN(QuerySpec query, TpchQ9(&engine));

  // What the static optimizer believes about the filtered datasets.
  StatsView view(&query, &engine.stats(), &engine.catalog());
  CardinalityEstimator estimator(&view);
  std::printf("static estimates (Selinger defaults for UDFs):\n");
  for (const char* alias : {"o", "p"}) {
    std::printf("  %s: %.0f of %.0f rows (sel %.3f)\n", alias,
                estimator.EstimateFilteredSize(alias), view.RowCount(alias),
                estimator.EstimatePredicateSelectivity(alias));
  }

  // Ground truth, measured by the dynamic optimizer's push-down stage.
  DynamicOptimizer dynamic(&engine);
  DYNOPT_ASSIGN_OR_RETURN(OptimizerRunResult dyn, dynamic.Run(query));
  std::printf("\ndynamic push-down measured truth:\n%s",
              dyn.plan_trace.c_str());

  StaticCostBasedOptimizer cost_based(&engine);
  DYNOPT_ASSIGN_OR_RETURN(OptimizerRunResult cb, cost_based.Run(query));

  std::printf("\nplans:\n  dynamic    : %s\n  cost-based : %s\n",
              dyn.join_tree->ToString().c_str(),
              cb.join_tree->ToString().c_str());
  std::printf(
      "simulated seconds:\n  dynamic    : %.3f\n  cost-based : %.3f "
      "(%.2fx of dynamic)\n",
      dyn.metrics.simulated_seconds, cb.metrics.simulated_seconds,
      cb.metrics.simulated_seconds / dyn.metrics.simulated_seconds);
  std::printf(
      "\n(the 'JOINb' marks show where knowing the true post-UDF size "
      "unlocked a broadcast)\n");
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  double sf = argc > 1 ? std::atof(argv[1]) : 2.0;
  Status status = Run(sf);
  if (!status.ok()) {
    std::fprintf(stderr, "udf_selectivity failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}
