// Cooperative cancellation and deadlines:
//  - a cancelled context stops the query at the next task boundary with
//    kCancelled, across every optimizer strategy;
//  - an expired deadline latches the token and reads as a cancel;
//  - RunWithRecovery never retries a cancelled query and reclaims both the
//    temp tables and the spill files the aborted attempt left behind.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/query_context.h"
#include "common/random.h"
#include "exec/engine.h"
#include "opt/dynamic_optimizer.h"
#include "opt/ingres_optimizer.h"
#include "opt/order_baselines.h"
#include "opt/pilot_run_optimizer.h"
#include "opt/recovery.h"
#include "opt/static_optimizer.h"
#include "storage/serde.h"

namespace dynopt {
namespace {

class CancelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    spill_dir_ = ::testing::TempDir() + "dynopt_cancel_test";
    std::filesystem::create_directories(spill_dir_);
    engine_ = std::make_unique<Engine>();
    engine_->mutable_cluster().spill_directory = spill_dir_;
    Rng rng(31);
    for (const char* name : {"x", "y", "z"}) {
      auto t = std::make_shared<Table>(
          name, Schema({{"k", ValueType::kInt64}, {"v", ValueType::kInt64}}),
          engine_->cluster().num_nodes);
      ASSERT_TRUE(t->SetPartitionKey({"k"}).ok());
      for (int i = 0; i < 500; ++i) {
        t->AppendRow(
            {Value(rng.NextInt64(0, 49)), Value(rng.NextInt64(0, 9))});
      }
      ASSERT_TRUE(engine_->catalog().RegisterTable(t).ok());
      ASSERT_TRUE(engine_->CollectBaseStats(name, {"k", "v"}).ok());
    }
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(spill_dir_, ec);
  }

  QuerySpec ChainQuery() {
    QuerySpec spec;
    spec.tables = {{"x", "x", false, false, {}},
                   {"y", "y", false, false, {}},
                   {"z", "z", false, false, {}}};
    spec.joins = {{"x", "y", {{"x.k", "y.k"}}}, {"y", "z", {{"y.k", "z.k"}}}};
    spec.projections = {"x.v", "y.v", "z.v"};
    spec.NormalizeJoins();
    return spec;
  }

  std::vector<std::unique_ptr<Optimizer>> AllOptimizers() {
    std::vector<std::unique_ptr<Optimizer>> opts;
    opts.push_back(std::make_unique<DynamicOptimizer>(engine_.get()));
    opts.push_back(std::make_unique<StaticCostBasedOptimizer>(engine_.get()));
    opts.push_back(std::make_unique<PilotRunOptimizer>(engine_.get()));
    opts.push_back(std::make_unique<IngresLikeOptimizer>(engine_.get()));
    opts.push_back(std::make_unique<WorstOrderOptimizer>(engine_.get()));
    return opts;
  }

  std::string spill_dir_;
  std::unique_ptr<Engine> engine_;
};

TEST_F(CancelTest, PreCancelledContextStopsEveryOptimizer) {
  QuerySpec spec = ChainQuery();
  size_t tables_before = engine_->catalog().TableNames().size();
  for (auto& opt : AllOptimizers()) {
    QueryContext ctx(opt->name());
    ctx.Cancel("client disconnected");
    opt->set_context(&ctx);
    auto run = opt->Run(spec);
    ASSERT_FALSE(run.ok()) << opt->name() << " ignored the cancel";
    EXPECT_EQ(run.status().code(), StatusCode::kCancelled) << opt->name();
    EXPECT_NE(run.status().message().find("client disconnected"),
              std::string::npos)
        << opt->name() << ": " << run.status().message();
  }
  // Cancellation fires before any materialization: nothing to leak.
  EXPECT_EQ(engine_->catalog().TableNames().size(), tables_before);
  EXPECT_EQ(CountFilesWithPrefix(spill_dir_, "__spill_"), 0);
}

TEST_F(CancelTest, ExpiredDeadlineReadsAsCancelled) {
  QueryContext ctx("deadline");
  ctx.set_timeout(-1.0);  // Already expired.
  EXPECT_FALSE(ctx.cancelled());  // Not latched until someone checks.
  Status st = ctx.CheckAlive();
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  EXPECT_NE(st.message().find("deadline exceeded"), std::string::npos);
  EXPECT_TRUE(ctx.cancelled());  // Latched: later checks are one atomic load.

  DynamicOptimizer dynamic(engine_.get());
  dynamic.set_context(&ctx);
  auto run = dynamic.Run(ChainQuery());
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kCancelled);
}

TEST_F(CancelTest, MidRunCancelStopsAtNextBoundaryWithoutLeaks) {
  // A predicate UDF cancels the context after enough evaluations: the
  // cancellation lands *inside* stage execution, deterministic and
  // thread-free, and the next task boundary must surface kCancelled.
  QuerySpec spec = ChainQuery();
  QueryContext ctx("mid-run");
  std::atomic<int> calls{0};
  ASSERT_TRUE(engine_->udfs()
                  .Register("cancel_after",
                            [&](const std::vector<Value>&) {
                              if (calls.fetch_add(1) == 200) {
                                ctx.Cancel("poison pill");
                              }
                              return Value(true);
                            })
                  .ok());
  spec.predicates.push_back({"y", Udf("cancel_after", {Col("y", "v")})});

  size_t tables_before = engine_->catalog().TableNames().size();
  DynamicOptimizer dynamic(engine_.get());
  dynamic.set_context(&ctx);
  auto run = dynamic.Run(spec);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kCancelled);
  EXPECT_GT(calls.load(), 200);  // It actually ran before being stopped.

  // The driver loop's cleanup guard must have dropped the temps the
  // cancelled run had already materialized.
  EXPECT_EQ(engine_->catalog().TableNames().size(), tables_before);
  EXPECT_EQ(CountFilesWithPrefix(spill_dir_, "__spill_"), 0);
}

TEST_F(CancelTest, RecoveryNeverRetriesACancelledQuery) {
  QuerySpec spec = ChainQuery();
  QueryContext ctx("no-retry");
  ctx.Cancel("user hit ^C");
  DynamicOptimizer dynamic(engine_.get());
  dynamic.set_context(&ctx);

  RecoveryPolicy policy;
  policy.max_attempts = 5;
  RecoveryReport report;
  auto run = RunWithRecovery(&dynamic, engine_.get(), spec, policy, &report);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kCancelled);
  // One attempt, zero re-drives: kCancelled is terminal.
  EXPECT_EQ(report.restarts, 0);
  EXPECT_EQ(report.resumes, 0);
  EXPECT_EQ(CountFilesWithPrefix(spill_dir_, "__spill_"), 0);
}

TEST_F(CancelTest, RecoverySweepsSpillFilesOfCancelledQuery) {
  // Plant orphaned spill files as if a cancel had landed between a
  // partition's write and its read-back; terminal recovery must sweep them.
  QueryContext ctx("orphan");
  std::string orphan = spill_dir_ + "/" + ctx.SpillFilePrefix() + "s0_p0.drb";
  ASSERT_TRUE(WriteRowsFile(orphan, {{Value(int64_t{1})}}).ok());
  ASSERT_EQ(CountFilesWithPrefix(spill_dir_, "__spill_"), 1);

  ctx.Cancel("abandoned");
  DynamicOptimizer dynamic(engine_.get());
  dynamic.set_context(&ctx);
  RecoveryReport report;
  auto run = RunWithRecovery(&dynamic, engine_.get(), ChainQuery(),
                             RecoveryPolicy(), &report);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(CountFilesWithPrefix(spill_dir_, "__spill_"), 0);
}

TEST_F(CancelTest, CancelStatusesAreNotRetryable) {
  EXPECT_FALSE(Status::Cancelled("x").retryable());
  EXPECT_FALSE(Status::ResourceExhausted("x").retryable());
  EXPECT_TRUE(Status::Transient("x").retryable());
  EXPECT_TRUE(Status::DataCorruption("x").retryable());
}

}  // namespace
}  // namespace dynopt
