#include <gtest/gtest.h>

#include <memory>

#include "common/random.h"
#include "exec/engine.h"
#include "opt/cardinality.h"
#include "opt/cost_model.h"
#include "opt/dynamic_optimizer.h"
#include "opt/join_tree.h"
#include "opt/plan_builder.h"
#include "opt/planner.h"
#include "opt/reconstruction.h"
#include "opt/static_optimizer.h"
#include "opt/stats_view.h"

namespace dynopt {
namespace {

/// Fixture with a small star schema: fact(fk1, fk2, v), dim1(pk, attr),
/// dim2(pk, attr); dim1 is 10x smaller than dim2.
class OptTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = std::make_unique<Engine>();
    Rng rng(17);
    auto make = [&](const std::string& name, int rows, int domain1,
                    int domain2) {
      auto t = std::make_shared<Table>(
          name,
          Schema({{"a", ValueType::kInt64},
                  {"b", ValueType::kInt64},
                  {"v", ValueType::kInt64}}),
          engine_->cluster().num_nodes);
      ASSERT_TRUE(t->SetPartitionKey({"a"}).ok());
      for (int i = 0; i < rows; ++i) {
        t->AppendRow({Value(rng.NextInt64(0, domain1 - 1)),
                      Value(rng.NextInt64(0, domain2 - 1)),
                      Value(rng.NextInt64(0, 99))});
      }
      ASSERT_TRUE(engine_->catalog().RegisterTable(t).ok());
      ASSERT_TRUE(engine_->CollectBaseStats(name, {"a", "b", "v"}).ok());
    };
    make("fact", 20000, 100, 1000);
    make("dim1", 100, 100, 100);
    make("dim2", 1000, 1000, 1000);
  }

  /// fact f joined to dim1 d1 (on a) and dim2 d2 (on b).
  QuerySpec StarQuery() {
    QuerySpec spec;
    spec.tables = {{"fact", "f", false, false, {}},
                   {"dim1", "d1", false, false, {}},
                   {"dim2", "d2", false, false, {}}};
    JoinEdge e1;
    e1.left_alias = "f";
    e1.right_alias = "d1";
    e1.keys = {{"f.a", "d1.a"}};
    JoinEdge e2;
    e2.left_alias = "f";
    e2.right_alias = "d2";
    e2.keys = {{"f.b", "d2.a"}};
    spec.joins = {e1, e2};
    spec.projections = {"f.v", "d1.v", "d2.v"};
    spec.NormalizeJoins();
    return spec;
  }

  std::unique_ptr<Engine> engine_;
};

// --- StatsView ----------------------------------------------------------------

TEST_F(OptTest, StatsViewReadsBaseStats) {
  QuerySpec spec = StarQuery();
  StatsView view(&spec, &engine_->stats(), &engine_->catalog());
  EXPECT_DOUBLE_EQ(view.RowCount("f"), 20000.0);
  EXPECT_DOUBLE_EQ(view.RowCount("d1"), 100.0);
  EXPECT_GT(view.TotalBytes("f"), view.TotalBytes("d1"));
  const ColumnStatsSnapshot* col = view.Column("f", "f.a");
  ASSERT_NE(col, nullptr);
  EXPECT_NEAR(col->ndv, 100.0, 5.0);
  EXPECT_EQ(view.Column("f", "f.nope"), nullptr);
  EXPECT_EQ(view.RowCount("zzz"), 0.0);
}

TEST_F(OptTest, StatsViewAliasOverridesWin) {
  QuerySpec spec = StarQuery();
  StatsView view(&spec, &engine_->stats(), &engine_->catalog());
  std::map<std::string, TableStats> overrides;
  TableStats fake;
  fake.row_count = 7;
  overrides["f"] = fake;
  view.SetAliasOverrides(&overrides);
  EXPECT_DOUBLE_EQ(view.RowCount("f"), 7.0);
  EXPECT_DOUBLE_EQ(view.RowCount("d1"), 100.0);  // Untouched.
}

TEST_F(OptTest, StatsViewIntermediateFallsBackToBaseStats) {
  QuerySpec spec = StarQuery();
  // Make f an intermediate providing f.a with NO stats of its own.
  TableRef* ref = spec.FindRef("f");
  ref->is_intermediate = true;
  ref->table = "__tmp_x_0";
  ref->provided_columns = {"f.a", "f.b", "f.v"};
  TableStats empty;
  empty.row_count = 5000;
  engine_->stats().Put("__tmp_x_0", empty);
  StatsView view(&spec, &engine_->stats(), &engine_->catalog());
  EXPECT_DOUBLE_EQ(view.RowCount("f"), 5000.0);
  const ColumnStatsSnapshot* col = view.Column("f", "f.a");
  ASSERT_NE(col, nullptr) << "must fall back to base table stats";
  EXPECT_NEAR(col->ndv, 100.0, 5.0);
}

// --- Cardinality estimation -----------------------------------------------------

TEST_F(OptTest, FkJoinCardinalityMatchesFormula) {
  QuerySpec spec = StarQuery();
  StatsView view(&spec, &engine_->stats(), &engine_->catalog());
  CardinalityEstimator estimator(&view);
  // |fact join_a dim1| = 20000 * 100 / max(100, 100) = 20000.
  double est = estimator.EstimateJoinCardinality(spec.joins[0]);
  EXPECT_NEAR(est, 20000.0, 2000.0);
}

TEST_F(OptTest, FilterScalesJoinEstimate) {
  QuerySpec spec = StarQuery();
  spec.predicates.push_back(
      {"d1", Cmp(CompareOp::kLt, Col("d1", "a"), Lit(Value(10)))});
  StatsView view(&spec, &engine_->stats(), &engine_->catalog());
  CardinalityEstimator estimator(&view);
  // dim1 filtered to ~10%; containment scales the join result accordingly.
  EXPECT_NEAR(estimator.EstimateFilteredSize("d1"), 10.0, 4.0);
  double est = estimator.EstimateJoinCardinality(spec.joins[0]);
  EXPECT_NEAR(est, 2000.0, 600.0);
}

TEST_F(OptTest, ComplexPredicatesUseDefaults) {
  QuerySpec spec = StarQuery();
  spec.predicates.push_back(
      {"f", Eq(Udf("u", {Col("f", "v")}), Lit(Value(1)))});
  spec.predicates.push_back({"d1", Eq(Col("d1", "v"), Param("p"))});
  StatsView view(&spec, &engine_->stats(), &engine_->catalog());
  CardinalityEstimator estimator(&view);
  EXPECT_DOUBLE_EQ(estimator.EstimatePredicateSelectivity("f"), 0.1);
  EXPECT_DOUBLE_EQ(estimator.EstimatePredicateSelectivity("d1"), 0.1);
  // Range-shaped complex predicates default to 1/3.
  spec.predicates.clear();
  spec.predicates.push_back(
      {"f", Cmp(CompareOp::kGt, Udf("u", {Col("f", "v")}), Lit(Value(1)))});
  EXPECT_DOUBLE_EQ(estimator.EstimatePredicateSelectivity("f"), 1.0 / 3.0);
}

TEST_F(OptTest, IndependenceMultipliesConjuncts) {
  QuerySpec spec = StarQuery();
  spec.predicates.push_back(
      {"f", Cmp(CompareOp::kLt, Col("f", "a"), Lit(Value(50)))});
  spec.predicates.push_back(
      {"f", Cmp(CompareOp::kLt, Col("f", "b"), Lit(Value(500)))});
  StatsView view(&spec, &engine_->stats(), &engine_->catalog());
  CardinalityEstimator estimator(&view);
  EXPECT_NEAR(estimator.EstimatePredicateSelectivity("f"), 0.25, 0.05);
}

TEST_F(OptTest, CardinalityOnlyModeIgnoresSketches) {
  QuerySpec spec = StarQuery();
  StatsView view(&spec, &engine_->stats(), &engine_->catalog());
  EstimationOptions options;
  options.cardinality_only = true;
  CardinalityEstimator estimator(&view, options);
  // INGRES proxy: max of the input sizes.
  EXPECT_DOUBLE_EQ(estimator.EstimateJoinCardinality(spec.joins[0]),
                   20000.0);
}

TEST_F(OptTest, HistogramRangeSelectivity) {
  QuerySpec spec = StarQuery();
  spec.predicates.push_back(
      {"f", Between(Col("f", "v"), Lit(Value(0)), Lit(Value(24)))});
  StatsView view(&spec, &engine_->stats(), &engine_->catalog());
  CardinalityEstimator estimator(&view);
  EXPECT_NEAR(estimator.EstimatePredicateSelectivity("f"), 0.25, 0.05);
}

// --- Cost model ----------------------------------------------------------------

TEST(CostModelTest, BroadcastBeatsShuffleForSmallBuild) {
  ClusterConfig cluster;
  JoinCostInputs in;
  in.build_rows = 100;
  in.build_bytes = 10e3;  // 10 KB build.
  in.probe_rows = 1e6;
  in.probe_bytes = 100e6;  // 100 MB probe.
  in.out_rows = 1e6;
  in.out_bytes = 100e6;
  double hash = EstimateJoinExecCost(JoinMethod::kHashShuffle, in, cluster, 0);
  double broadcast =
      EstimateJoinExecCost(JoinMethod::kBroadcast, in, cluster, 0);
  EXPECT_LT(broadcast, hash);
}

TEST(CostModelTest, ShuffleBeatsBroadcastForLargeBuild) {
  ClusterConfig cluster;
  JoinCostInputs in;
  in.build_rows = 1e6;
  in.build_bytes = 80e6;
  in.probe_rows = 1e6;
  in.probe_bytes = 100e6;
  in.out_rows = 1e6;
  in.out_bytes = 100e6;
  double hash = EstimateJoinExecCost(JoinMethod::kHashShuffle, in, cluster, 0);
  double broadcast =
      EstimateJoinExecCost(JoinMethod::kBroadcast, in, cluster, 0);
  EXPECT_LT(hash, broadcast);
}

TEST(CostModelTest, InljWinsWhenProbeScanIsExpensiveAndOuterSmall) {
  ClusterConfig cluster;
  JoinCostInputs in;
  in.build_rows = 50;
  in.build_bytes = 5e3;
  in.probe_rows = 1e6;
  in.probe_bytes = 100e6;
  in.out_rows = 500;
  in.out_bytes = 50e3;
  double broadcast =
      EstimateJoinExecCost(JoinMethod::kBroadcast, in, cluster, 0);
  double inlj = EstimateJoinExecCost(JoinMethod::kIndexNestedLoop, in,
                                     cluster, in.probe_bytes);
  EXPECT_LT(inlj, broadcast - (in.probe_bytes / 10.0) *
                                  cluster.scan_seconds_per_byte +
                      (in.probe_bytes / 10.0) * cluster.scan_seconds_per_byte);
  EXPECT_LT(inlj, broadcast);
}

TEST(CostModelTest, ScanCostScalesWithBytes) {
  ClusterConfig cluster;
  EXPECT_LT(EstimateScanCost(1e6, 1e4, cluster, false),
            EstimateScanCost(1e8, 1e6, cluster, false));
  // Intermediate reads are charged at the (slower) disk-read rate.
  EXPECT_LT(EstimateScanCost(1e6, 1e4, cluster, false),
            EstimateScanCost(1e6, 1e4, cluster, true));
}

// --- Planner -------------------------------------------------------------------

TEST_F(OptTest, PlannerPicksMinCardinalityJoin) {
  QuerySpec spec = StarQuery();
  // Filter dim1 hard: f-d1 result becomes tiny, so it must be picked.
  spec.predicates.push_back(
      {"d1", Cmp(CompareOp::kLt, Col("d1", "a"), Lit(Value(5)))});
  StatsView view(&spec, &engine_->stats(), &engine_->catalog());
  Planner planner(&view, engine_->cluster(), PlannerOptions());
  auto planned = planner.PickNextJoin();
  ASSERT_TRUE(planned.ok());
  EXPECT_TRUE(planned->edge.Involves("d1"));
  EXPECT_TRUE(planned->edge.Involves("f"));
}

TEST_F(OptTest, PlannerChoosesBroadcastForSmallSide) {
  QuerySpec spec = StarQuery();
  StatsView view(&spec, &engine_->stats(), &engine_->catalog());
  Planner planner(&view, engine_->cluster(), PlannerOptions());
  auto planned = planner.PickNextJoin();
  ASSERT_TRUE(planned.ok());
  EXPECT_EQ(planned->method, JoinMethod::kBroadcast);
  // The build side is the dimension, not the fact.
  EXPECT_NE(planned->build_alias, "f");
}

TEST_F(OptTest, PlannerFallsBackToHashWhenBroadcastDisabled) {
  QuerySpec spec = StarQuery();
  StatsView view(&spec, &engine_->stats(), &engine_->catalog());
  PlannerOptions options;
  options.enable_broadcast = false;
  Planner planner(&view, engine_->cluster(), options);
  auto planned = planner.PickNextJoin();
  ASSERT_TRUE(planned.ok());
  EXPECT_EQ(planned->method, JoinMethod::kHashShuffle);
}

TEST_F(OptTest, PlannerInljRequiresIndexAndFilteredOuter) {
  QuerySpec spec = StarQuery();
  spec.FindRef("d1")->filtered = true;
  // Make the f-d1 edge the unambiguous minimum-cardinality pick.
  spec.predicates.push_back(
      {"d1", Cmp(CompareOp::kLt, Col("d1", "a"), Lit(Value(50)))});
  StatsView view(&spec, &engine_->stats(), &engine_->catalog());
  PlannerOptions options;
  options.enable_inlj = true;
  {
    // No index yet: INLJ cannot be chosen.
    Planner planner(&view, engine_->cluster(), options);
    auto planned = planner.PickNextJoin();
    ASSERT_TRUE(planned.ok());
    EXPECT_NE(planned->method, JoinMethod::kIndexNestedLoop);
  }
  auto fact = engine_->catalog().GetTable("fact");
  ASSERT_TRUE(fact.ok());
  ASSERT_TRUE(fact.value()->CreateSecondaryIndex("a").ok());
  {
    Planner planner(&view, engine_->cluster(), options);
    auto planned = planner.PickNextJoin();
    ASSERT_TRUE(planned.ok());
    EXPECT_EQ(planned->method, JoinMethod::kIndexNestedLoop);
    EXPECT_EQ(planned->build_alias, "d1");
  }
  {
    // Unfiltered outer disqualifies INLJ (paper Section 6.1.2).
    spec.FindRef("d1")->filtered = false;
    Planner planner(&view, engine_->cluster(), options);
    auto planned = planner.PickNextJoin();
    ASSERT_TRUE(planned.ok());
    EXPECT_NE(planned->method, JoinMethod::kIndexNestedLoop);
  }
}

TEST_F(OptTest, PlanRemainingOrdersFinalJoins) {
  QuerySpec spec = StarQuery();
  spec.predicates.push_back(
      {"d1", Cmp(CompareOp::kLt, Col("d1", "a"), Lit(Value(5)))});
  StatsView view(&spec, &engine_->stats(), &engine_->catalog());
  Planner planner(&view, engine_->cluster(), PlannerOptions());
  auto tree = planner.PlanRemaining();
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  // The filtered f-d1 join must be innermost.
  ASSERT_FALSE((*tree)->IsLeaf());
  std::set<std::string> inner_aliases;
  const JoinTree* inner =
      (*tree)->left->IsLeaf() ? (*tree)->right.get() : (*tree)->left.get();
  ASSERT_FALSE(inner->IsLeaf());
  inner->CollectAliases(&inner_aliases);
  EXPECT_TRUE(inner_aliases.count("d1") > 0 && inner_aliases.count("f") > 0)
      << (*tree)->ToString();
}

// --- Reconstruction ---------------------------------------------------------------

TEST_F(OptTest, ReplaceWithFilteredRewiresRef) {
  QuerySpec spec = StarQuery();
  spec.predicates.push_back(
      {"d1", Cmp(CompareOp::kLt, Col("d1", "a"), Lit(Value(5)))});
  QuerySpec out =
      ReplaceWithFiltered(spec, "d1", "__tmp_pd_0", {"d1.a", "d1.v"});
  const TableRef* ref = out.FindRef("d1");
  ASSERT_NE(ref, nullptr);
  EXPECT_EQ(ref->table, "__tmp_pd_0");
  EXPECT_TRUE(ref->is_intermediate);
  EXPECT_TRUE(ref->filtered);
  EXPECT_TRUE(out.PredicatesFor("d1").empty());
  EXPECT_TRUE(ref->Provides("d1.a"));
  EXPECT_FALSE(ref->Provides("d1.b"));
  // Joins untouched; spec still validates.
  EXPECT_EQ(out.joins.size(), spec.joins.size());
  EXPECT_TRUE(out.Validate().ok()) << out.Validate().ToString();
}

TEST_F(OptTest, ReconstructAfterJoinRewiresEdgesAndProjections) {
  QuerySpec spec = StarQuery();
  const JoinEdge* executed = nullptr;
  for (const auto& e : spec.joins) {
    if (e.Involves("d1")) executed = &e;
  }
  ASSERT_NE(executed, nullptr);
  QuerySpec out = ReconstructAfterJoin(spec, *executed, "__tmp_j_0", "__j0",
                                       {"f.v", "d1.v", "f.b"});
  EXPECT_EQ(out.tables.size(), 2u);
  EXPECT_EQ(out.FindRef("f"), nullptr);
  EXPECT_EQ(out.FindRef("d1"), nullptr);
  const TableRef* merged = out.FindRef("__j0");
  ASSERT_NE(merged, nullptr);
  EXPECT_TRUE(merged->is_intermediate);
  // The surviving f-d2 edge now connects __j0 and d2, key names unchanged.
  ASSERT_EQ(out.joins.size(), 1u);
  EXPECT_TRUE(out.joins[0].Involves("__j0"));
  EXPECT_TRUE(out.joins[0].Involves("d2"));
  EXPECT_EQ(out.joins[0].KeysOf("__j0")[0], "f.b");
  EXPECT_TRUE(out.Validate().ok()) << out.Validate().ToString();
  // base_tables mapping survives for stats fallback.
  EXPECT_EQ(out.base_tables.at("f"), "fact");
}

TEST_F(OptTest, ReconstructMergesParallelEdges) {
  // Triangle: a-b, b-c, a-c. Joining a-b leaves two edges both between
  // __j0 and c, which must merge into one composite edge.
  QuerySpec spec;
  spec.tables = {{"fact", "a", false, false, {}},
                 {"dim1", "b", false, false, {}},
                 {"dim2", "c", false, false, {}}};
  JoinEdge ab{"a", "b", {{"a.a", "b.a"}}};
  JoinEdge bc{"b", "c", {{"b.v", "c.v"}}};
  JoinEdge ac{"a", "c", {{"a.b", "c.a"}}};
  spec.joins = {ab, bc, ac};
  spec.projections = {"a.v"};
  spec.NormalizeJoins();
  ASSERT_EQ(spec.joins.size(), 3u);
  const JoinEdge* executed = nullptr;
  for (const auto& e : spec.joins) {
    if (e.Involves("a") && e.Involves("b")) executed = &e;
  }
  QuerySpec out = ReconstructAfterJoin(spec, *executed, "__tmp_j_1", "__j0",
                                       {"a.v", "a.b", "b.v"});
  ASSERT_EQ(out.joins.size(), 1u);
  EXPECT_EQ(out.joins[0].keys.size(), 2u);
}

// --- Plan builder -------------------------------------------------------------------

TEST_F(OptTest, RequiredColumnsCoversProjectionsKeysPredicates) {
  QuerySpec spec = StarQuery();
  spec.predicates.push_back(
      {"f", Cmp(CompareOp::kLt, Col("f", "b"), Lit(Value(5)))});
  auto with_preds = RequiredColumns(spec, "f", true);
  std::set<std::string> set(with_preds.begin(), with_preds.end());
  EXPECT_TRUE(set.count("f.v") > 0);  // Projection.
  EXPECT_TRUE(set.count("f.a") > 0);  // Join key.
  EXPECT_TRUE(set.count("f.b") > 0);  // Join key + predicate.
}

TEST_F(OptTest, KeysBetweenOrientsPairs) {
  QuerySpec spec = StarQuery();
  auto keys = KeysBetween(spec, {"d1"}, {"f"});
  ASSERT_TRUE(keys.ok());
  ASSERT_EQ(keys->size(), 1u);
  EXPECT_EQ((*keys)[0].first, "d1.a");
  EXPECT_EQ((*keys)[0].second, "f.a");
  // Disconnected sets error out.
  EXPECT_FALSE(KeysBetween(spec, {"d1"}, {"d2"}).ok());
}

TEST_F(OptTest, BuildPhysicalPlanExecutesTree) {
  QuerySpec spec = StarQuery();
  auto tree = JoinTree::Join(
      JoinTree::Leaf("d1"),
      JoinTree::Join(JoinTree::Leaf("d2"), JoinTree::Leaf("f"),
                     JoinMethod::kBroadcast),
      JoinMethod::kBroadcast);
  auto plan = BuildPhysicalPlan(spec, *tree, true);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  JobExecutor executor = engine_->MakeExecutor();
  auto result = executor.Execute(**plan, {});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->data.columns, spec.projections);
  EXPECT_GT(result->data.NumRows(), 0u);
}

TEST(JoinTreeTest, ToStringAndAliases) {
  auto tree = JoinTree::Join(
      JoinTree::Join(JoinTree::Leaf("a"), JoinTree::Leaf("b"),
                     JoinMethod::kBroadcast),
      JoinTree::Leaf("c"), JoinMethod::kIndexNestedLoop);
  EXPECT_EQ(tree->ToString(), "((a JOINb b) JOINi c)");
  EXPECT_EQ(tree->Aliases(), (std::set<std::string>{"a", "b", "c"}));
}

// --- Static DP optimizer -----------------------------------------------------------

TEST_F(OptTest, DpPlanCoversAllAliasesAndBroadcastsDims) {
  QuerySpec spec = StarQuery();
  StatsView view(&spec, &engine_->stats(), &engine_->catalog());
  auto tree = StaticCostBasedOptimizer::PlanWithDp(
      spec, view, engine_->cluster(), PlannerOptions());
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_EQ((*tree)->Aliases(), (std::set<std::string>{"f", "d1", "d2"}));
  // Both dimensions are small: the plan should use at least one broadcast.
  EXPECT_NE((*tree)->ToString().find("JOINb"), std::string::npos);
}

TEST_F(OptTest, DpRejectsDisconnectedGraph) {
  QuerySpec spec = StarQuery();
  spec.joins.clear();
  StatsView view(&spec, &engine_->stats(), &engine_->catalog());
  EXPECT_FALSE(StaticCostBasedOptimizer::PlanWithDp(
                   spec, view, engine_->cluster(), PlannerOptions())
                   .ok());
}

// --- Dynamic optimizer behaviors -----------------------------------------------------

TEST_F(OptTest, DynamicPushesDownComplexPredicates) {
  ASSERT_TRUE(engine_->udfs()
                  .Register("iseven",
                            [](const std::vector<Value>& args) {
                              return Value(args[0].AsInt64() % 2 == 0);
                            })
                  .ok());
  QuerySpec spec = StarQuery();
  spec.predicates.push_back({"d2", Udf("iseven", {Col("d2", "v")})});
  DynamicOptimizer optimizer(engine_.get());
  auto result = optimizer.Run(spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NE(result->plan_trace.find("[pushdown] d2"), std::string::npos)
      << result->plan_trace;
  // All surviving rows have even d2.v.
  int d2v_slot = -1;
  for (size_t i = 0; i < result->columns.size(); ++i) {
    if (result->columns[i] == "d2.v") d2v_slot = static_cast<int>(i);
  }
  ASSERT_GE(d2v_slot, 0);
  for (const Row& row : result->rows) {
    EXPECT_EQ(row[static_cast<size_t>(d2v_slot)].AsInt64() % 2, 0);
  }
}

TEST_F(OptTest, DynamicSingleSimplePredicateNotPushedDown) {
  QuerySpec spec = StarQuery();
  spec.predicates.push_back(
      {"d1", Cmp(CompareOp::kLt, Col("d1", "a"), Lit(Value(50)))});
  DynamicOptimizer optimizer(engine_.get());
  auto result = optimizer.Run(spec);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plan_trace.find("[pushdown]"), std::string::npos);
}

TEST_F(OptTest, DynamicStopAfterPushdownStillCorrect) {
  QuerySpec spec = StarQuery();
  spec.predicates.push_back(
      {"d1", Cmp(CompareOp::kLt, Col("d1", "a"), Lit(Value(50)))});
  spec.predicates.push_back(
      {"d1", Cmp(CompareOp::kGt, Col("d1", "a"), Lit(Value(10)))});
  DynamicOptimizer full(engine_.get());
  auto a = full.Run(spec);
  ASSERT_TRUE(a.ok());
  DynamicOptimizerOptions options;
  options.stop_after_pushdown = true;
  DynamicOptimizer pushdown_only(engine_.get(), options);
  auto b = pushdown_only.Run(spec);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  SortRows(&a->rows);
  SortRows(&b->rows);
  EXPECT_EQ(a->rows, b->rows);
  EXPECT_EQ(b->metrics.num_reopt_points, 1);  // Only the push-down sink.
}

TEST_F(OptTest, DynamicRecordsJoinTreeOverOriginalAliases) {
  QuerySpec spec = StarQuery();
  DynamicOptimizer optimizer(engine_.get());
  auto result = optimizer.Run(spec);
  ASSERT_TRUE(result.ok());
  ASSERT_NE(result->join_tree, nullptr);
  EXPECT_EQ(result->join_tree->Aliases(),
            (std::set<std::string>{"f", "d1", "d2"}));
}

TEST_F(OptTest, SingleTableQueryWorks) {
  QuerySpec spec;
  spec.tables = {{"dim1", "d", false, false, {}}};
  spec.projections = {"d.v"};
  spec.predicates.push_back(
      {"d", Cmp(CompareOp::kLt, Col("d", "v"), Lit(Value(10)))});
  spec.NormalizeJoins();
  DynamicOptimizer optimizer(engine_.get());
  auto result = optimizer.Run(spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (const Row& row : result->rows) EXPECT_LT(row[0].AsInt64(), 10);
}

}  // namespace
}  // namespace dynopt
