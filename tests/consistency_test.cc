// Cross-layer consistency properties:
//  - the plan-time cost model must rank join methods the same way the
//    metered executor does (otherwise the planner's choices are noise);
//  - degenerate inputs (empty filters, single rows) flow through every
//    optimizer without errors;
//  - simulated time is deterministic across repeated runs;
//  - with predicate transfer disabled (the default), the sketch sizing
//    knobs are inert: metering and EXPLAIN ANALYZE are byte-identical
//    across all seven strategies whether the knobs are default or tweaked.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/random.h"
#include "exec/engine.h"
#include "opt/cost_model.h"
#include "opt/dynamic_optimizer.h"
#include "opt/explain.h"
#include "opt/ingres_optimizer.h"
#include "opt/order_baselines.h"
#include "opt/pilot_run_optimizer.h"
#include "opt/sketch_optimizer.h"
#include "opt/static_optimizer.h"
#include "sys/system_tables.h"

namespace dynopt {
namespace {

/// (build rows, probe rows, key domain): the cost model and the executor
/// must agree on which of hash/broadcast is cheaper whenever the gap is
/// meaningful.
class MethodRankingTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, MethodRankingTest,
    ::testing::Values(std::make_tuple(50, 20000, 500),
                      std::make_tuple(500, 20000, 500),
                      std::make_tuple(5000, 20000, 500),
                      std::make_tuple(200, 5000, 100),
                      std::make_tuple(2000, 2000, 200)));

TEST_P(MethodRankingTest, CostModelAgreesWithExecutor) {
  auto [build_rows, probe_rows, domain] = GetParam();
  Engine engine;
  Rng rng(11);
  auto make = [&](const std::string& name, int rows) {
    auto t = std::make_shared<Table>(
        name,
        Schema({{"k", ValueType::kInt64}, {"pad", ValueType::kString}}),
        engine.cluster().num_nodes);
    // Deliberately NOT partitioned on k so the shuffle is real.
    for (int i = 0; i < rows; ++i) {
      t->AppendRow({Value(rng.NextInt64(0, domain - 1)),
                    Value("padding_payload_" + std::to_string(i % 97))});
    }
    ASSERT_TRUE(engine.catalog().RegisterTable(t).ok());
  };
  make("b", build_rows);
  make("p", probe_rows);

  double measured[2];
  double estimated[2];
  JoinMethod methods[2] = {JoinMethod::kHashShuffle, JoinMethod::kBroadcast};
  auto bt = engine.catalog().GetTable("b").value();
  auto pt = engine.catalog().GetTable("p").value();
  for (int m = 0; m < 2; ++m) {
    auto plan =
        PlanNode::Join(methods[m], PlanNode::Scan("b", "b"),
                       PlanNode::Scan("p", "p"), {{"b.k", "p.k"}});
    JobExecutor executor = engine.MakeExecutor();
    auto result = executor.Execute(*plan, {});
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    measured[m] = result->metrics.simulated_seconds;

    JoinCostInputs in;
    in.build_rows = static_cast<double>(bt->NumRows());
    in.build_bytes = static_cast<double>(bt->TotalBytes());
    in.probe_rows = static_cast<double>(pt->NumRows());
    in.probe_bytes = static_cast<double>(pt->TotalBytes());
    in.out_rows = static_cast<double>(result->data.NumRows());
    in.out_bytes = static_cast<double>(result->data.TotalBytes());
    estimated[m] =
        EstimateJoinExecCost(methods[m], in, engine.cluster(), 0.0);
  }
  // When one method is measurably better (>25% gap), the model must rank
  // it first too.
  double gap = std::abs(measured[0] - measured[1]) /
               std::max(measured[0], measured[1]);
  if (gap > 0.25) {
    EXPECT_EQ(measured[0] < measured[1], estimated[0] < estimated[1])
        << "measured hash=" << measured[0] << " bcast=" << measured[1]
        << " estimated hash=" << estimated[0] << " bcast=" << estimated[1];
  }
}

class DegenerateInputTest : public ::testing::Test {
 protected:
  static void LoadTables(Engine* engine) {
    Rng rng(5);
    for (const char* name : {"x", "y", "z"}) {
      auto t = std::make_shared<Table>(
          name, Schema({{"k", ValueType::kInt64}, {"v", ValueType::kInt64}}),
          engine->cluster().num_nodes);
      ASSERT_TRUE(t->SetPartitionKey({"k"}).ok());
      for (int i = 0; i < 300; ++i) {
        t->AppendRow({Value(rng.NextInt64(0, 49)), Value(rng.NextInt64(0, 9))});
      }
      ASSERT_TRUE(engine->catalog().RegisterTable(t).ok());
      ASSERT_TRUE(engine->CollectBaseStats(name, {"k", "v"}).ok());
    }
  }

  void SetUp() override {
    engine_ = std::make_unique<Engine>();
    LoadTables(engine_.get());
  }

  QuerySpec ChainQuery() {
    QuerySpec spec;
    spec.tables = {{"x", "x", false, false, {}},
                   {"y", "y", false, false, {}},
                   {"z", "z", false, false, {}}};
    spec.joins = {{"x", "y", {{"x.k", "y.k"}}}, {"y", "z", {{"y.k", "z.k"}}}};
    spec.projections = {"x.v", "y.v", "z.v"};
    spec.NormalizeJoins();
    return spec;
  }

  std::unique_ptr<Engine> engine_;
};

TEST_F(DegenerateInputTest, EmptyFilterResultAcrossAllOptimizers) {
  QuerySpec spec = ChainQuery();
  // Two contradictory predicates force push-down and an empty intermediate.
  spec.predicates.push_back(
      {"y", Cmp(CompareOp::kLt, Col("y", "v"), Lit(Value(-1)))});
  spec.predicates.push_back(
      {"y", Cmp(CompareOp::kGt, Col("y", "v"), Lit(Value(100)))});

  DynamicOptimizer dynamic(engine_.get());
  auto dyn = dynamic.Run(spec);
  ASSERT_TRUE(dyn.ok()) << dyn.status().ToString();
  EXPECT_TRUE(dyn->rows.empty());

  StaticCostBasedOptimizer cost_based(engine_.get());
  auto cb = cost_based.Run(spec);
  ASSERT_TRUE(cb.ok()) << cb.status().ToString();
  EXPECT_TRUE(cb->rows.empty());

  PilotRunOptimizer pilot(engine_.get());
  auto pr = pilot.Run(spec);
  ASSERT_TRUE(pr.ok()) << pr.status().ToString();
  EXPECT_TRUE(pr->rows.empty());

  IngresLikeOptimizer ingres(engine_.get());
  auto ing = ingres.Run(spec);
  ASSERT_TRUE(ing.ok()) << ing.status().ToString();
  EXPECT_TRUE(ing->rows.empty());

  WorstOrderOptimizer worst(engine_.get());
  auto wo = worst.Run(spec);
  ASSERT_TRUE(wo.ok()) << wo.status().ToString();
  EXPECT_TRUE(wo->rows.empty());
}

TEST_F(DegenerateInputTest, SimulatedTimeIsDeterministic) {
  QuerySpec spec = ChainQuery();
  DynamicOptimizer dynamic(engine_.get());
  auto a = dynamic.Run(spec);
  auto b = dynamic.Run(spec);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a->metrics.simulated_seconds,
                   b->metrics.simulated_seconds);
  EXPECT_EQ(a->metrics.bytes_shuffled, b->metrics.bytes_shuffled);
  EXPECT_EQ(a->join_tree->ToString(), b->join_tree->ToString());
}

TEST_F(DegenerateInputTest, TwoTableQueryHasNoReoptLoop) {
  QuerySpec spec;
  spec.tables = {{"x", "x", false, false, {}}, {"y", "y", false, false, {}}};
  spec.joins = {{"x", "y", {{"x.k", "y.k"}}}};
  spec.projections = {"x.v", "y.v"};
  spec.NormalizeJoins();
  DynamicOptimizer dynamic(engine_.get());
  auto result = dynamic.Run(spec);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->metrics.num_reopt_points, 0);
  EXPECT_GT(result->rows.size(), 0u);
}

TEST_F(DegenerateInputTest, MetricsDecompositionIsConsistent) {
  QuerySpec spec = ChainQuery();
  spec.predicates.push_back(
      {"x", Cmp(CompareOp::kLt, Col("x", "v"), Lit(Value(5)))});
  spec.predicates.push_back(
      {"x", Cmp(CompareOp::kGt, Col("x", "v"), Lit(Value(0)))});
  DynamicOptimizer dynamic(engine_.get());
  auto result = dynamic.Run(spec);
  ASSERT_TRUE(result.ok());
  const ExecMetrics& m = result->metrics;
  EXPECT_GE(m.simulated_seconds, m.reopt_seconds + m.stats_seconds);
  EXPECT_GT(m.reopt_seconds, 0.0);  // Push-down materialized something.
  EXPECT_GE(m.num_reopt_points, 1);
  EXPECT_EQ(m.rows_out, result->rows.size());
}

// Deterministic counters only: wall-clock and queue-wait vary run to run.
std::string MeteredString(const ExecMetrics& metrics) {
  std::string s = metrics.ToString();
  const size_t cut = s.find(" wall[");
  return cut == std::string::npos ? s : s.substr(0, cut);
}

// With enable_predicate_transfer=false (the default), tweaking the Bloom
// sizing knob must not change a single metered byte or EXPLAIN ANALYZE
// character for any of the seven strategies — including sketch-dynamic,
// whose AGMS estimates do not depend on pt_bits_per_key.
TEST_F(DegenerateInputTest, PredicateTransferOffIsByteIdentical) {
  QuerySpec spec = ChainQuery();
  // Multi-predicate alias forces a push-down materialization, so the
  // sketch-collection path in the dynamic optimizers is actually reached.
  spec.predicates.push_back(
      {"x", Cmp(CompareOp::kLt, Col("x", "v"), Lit(Value(5)))});
  spec.predicates.push_back(
      {"x", Cmp(CompareOp::kGt, Col("x", "v"), Lit(Value(0)))});

  struct StrategyRun {
    std::string name;
    size_t rows;
    std::string metered;
    std::string explained;
  };
  // ASSERT_* macros require a void-returning scope, hence the out-param.
  auto run_all = [&](Engine* engine, std::vector<StrategyRun>* out_runs) {
    std::vector<StrategyRun>& out = *out_runs;
    auto record = [&](Optimizer* opt) {
      auto result = opt->Run(spec);
      ASSERT_TRUE(result.ok()) << opt->name() << ": "
                               << result.status().ToString();
      EXPECT_EQ(result->metrics.pt_filter_bytes, 0u) << opt->name();
      EXPECT_EQ(result->metrics.pt_pruned_rows, 0u) << opt->name();
      EXPECT_EQ(result->metrics.pt_pruned_bytes, 0u) << opt->name();
      auto explained = ExplainAnalyze(engine, spec, *result);
      ASSERT_TRUE(explained.ok()) << explained.status().ToString();
      out.push_back({opt->name(), result->rows.size(),
                     MeteredString(result->metrics), explained.value()});
    };
    DynamicOptimizer dynamic(engine);
    record(&dynamic);
    auto hint = dynamic.Run(spec);
    ASSERT_TRUE(hint.ok());
    ASSERT_NE(hint->join_tree, nullptr);
    BestOrderOptimizer best(engine, hint->join_tree);
    record(&best);
    StaticCostBasedOptimizer cost_based(engine);
    record(&cost_based);
    PilotRunOptimizer pilot(engine);
    record(&pilot);
    IngresLikeOptimizer ingres(engine);
    record(&ingres);
    WorstOrderOptimizer worst(engine);
    record(&worst);
    SketchDynamicOptimizer sketch(engine);
    record(&sketch);
  };

  std::vector<StrategyRun> defaults;
  run_all(engine_.get(), &defaults);
  if (HasFailure()) return;

  auto tweaked_engine = std::make_unique<Engine>();
  tweaked_engine->mutable_cluster().sketch.pt_bits_per_key = 16.0;
  LoadTables(tweaked_engine.get());
  std::vector<StrategyRun> tweaked;
  run_all(tweaked_engine.get(), &tweaked);
  if (HasFailure()) return;

  ASSERT_EQ(defaults.size(), 7u);
  ASSERT_EQ(tweaked.size(), defaults.size());
  for (size_t i = 0; i < defaults.size(); ++i) {
    EXPECT_EQ(defaults[i].name, tweaked[i].name);
    EXPECT_EQ(defaults[i].rows, tweaked[i].rows) << defaults[i].name;
    EXPECT_EQ(defaults[i].metered, tweaked[i].metered) << defaults[i].name;
    EXPECT_EQ(defaults[i].explained, tweaked[i].explained)
        << defaults[i].name;
  }
}

// With introspection.enabled=false (the default), installing the sys.*
// catalog provider and tweaking the archive knobs must not change a single
// metered byte or EXPLAIN ANALYZE character for any of the seven
// strategies: the introspection plane observes, it never participates.
TEST_F(DegenerateInputTest, IntrospectionOffIsByteIdentical) {
  QuerySpec spec = ChainQuery();
  spec.predicates.push_back(
      {"x", Cmp(CompareOp::kLt, Col("x", "v"), Lit(Value(5)))});
  spec.predicates.push_back(
      {"x", Cmp(CompareOp::kGt, Col("x", "v"), Lit(Value(0)))});

  struct StrategyRun {
    std::string name;
    size_t rows;
    std::string metered;
    std::string explained;
  };
  auto run_all = [&](Engine* engine, std::vector<StrategyRun>* out_runs) {
    std::vector<StrategyRun>& out = *out_runs;
    auto record = [&](Optimizer* opt) {
      auto result = opt->Run(spec);
      ASSERT_TRUE(result.ok()) << opt->name() << ": "
                               << result.status().ToString();
      auto explained = ExplainAnalyze(engine, spec, *result);
      ASSERT_TRUE(explained.ok()) << explained.status().ToString();
      out.push_back({opt->name(), result->rows.size(),
                     MeteredString(result->metrics), explained.value()});
    };
    DynamicOptimizer dynamic(engine);
    record(&dynamic);
    auto hint = dynamic.Run(spec);
    ASSERT_TRUE(hint.ok());
    ASSERT_NE(hint->join_tree, nullptr);
    BestOrderOptimizer best(engine, hint->join_tree);
    record(&best);
    StaticCostBasedOptimizer cost_based(engine);
    record(&cost_based);
    PilotRunOptimizer pilot(engine);
    record(&pilot);
    IngresLikeOptimizer ingres(engine);
    record(&ingres);
    WorstOrderOptimizer worst(engine);
    record(&worst);
    SketchDynamicOptimizer sketch(engine);
    record(&sketch);
  };

  std::vector<StrategyRun> defaults;
  run_all(engine_.get(), &defaults);
  if (HasFailure()) return;

  // sys.* tables resolvable + non-default archive knobs — but enabled stays
  // false, so no run is fingerprinted, archived, or annotated.
  auto tweaked_engine = std::make_unique<Engine>();
  tweaked_engine->mutable_cluster().introspection.archive_capacity = 4;
  tweaked_engine->mutable_cluster().introspection.regression_threshold = 1.01;
  InstallSystemTables(tweaked_engine.get());
  LoadTables(tweaked_engine.get());
  std::vector<StrategyRun> tweaked;
  run_all(tweaked_engine.get(), &tweaked);
  if (HasFailure()) return;

  ASSERT_EQ(defaults.size(), 7u);
  ASSERT_EQ(tweaked.size(), defaults.size());
  for (size_t i = 0; i < defaults.size(); ++i) {
    EXPECT_EQ(defaults[i].name, tweaked[i].name);
    EXPECT_EQ(defaults[i].rows, tweaked[i].rows) << defaults[i].name;
    EXPECT_EQ(defaults[i].metered, tweaked[i].metered) << defaults[i].name;
    EXPECT_EQ(defaults[i].explained, tweaked[i].explained)
        << defaults[i].name;
  }
}

}  // namespace
}  // namespace dynopt
