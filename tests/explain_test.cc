#include <gtest/gtest.h>

#include <memory>

#include "exec/engine.h"
#include "opt/dynamic_optimizer.h"
#include "opt/explain.h"
#include "workloads/tpcds.h"
#include "workloads/tpch.h"

namespace dynopt {
namespace {

class ExplainTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    engine_ = new Engine();
    TpcdsOptions tpcds;
    tpcds.sf = 0.2;
    ASSERT_TRUE(LoadTpcds(engine_, tpcds).ok());
    TpchOptions tpch;
    tpch.sf = 0.2;
    ASSERT_TRUE(LoadTpch(engine_, tpch).ok());
  }
  static void TearDownTestSuite() {
    delete engine_;
    engine_ = nullptr;
  }
  static Engine* engine_;
};

Engine* ExplainTest::engine_ = nullptr;

TEST_F(ExplainTest, StaticExplainShowsScansJoinsAndEstimates) {
  auto query = TpcdsQ50(engine_, 9, 1999);
  ASSERT_TRUE(query.ok());
  auto explained = ExplainStatic(engine_, query.value());
  ASSERT_TRUE(explained.ok()) << explained.status().ToString();
  const std::string& text = explained.value();
  // All five FROM entries appear as scans.
  for (const char* alias : {"ss", "sr", "d1", "d2", "s"}) {
    EXPECT_NE(text.find(std::string("Scan ") + alias), std::string::npos)
        << text;
  }
  EXPECT_NE(text.find("Join["), std::string::npos);
  EXPECT_NE(text.find("est_rows="), std::string::npos);
  EXPECT_NE(text.find("est_bytes="), std::string::npos);
  // d1 carries the parameterized predicates.
  EXPECT_NE(text.find("Scan d1 [date_dim] (filtered)"), std::string::npos)
      << text;
}

TEST_F(ExplainTest, ExplainShowsPostProcessing) {
  auto query = TpcdsQ17(engine_);
  ASSERT_TRUE(query.ok());
  auto explained = ExplainStatic(engine_, query.value());
  ASSERT_TRUE(explained.ok());
  EXPECT_NE(explained->find("then GROUP BY (4 keys, 3 aggregates)"),
            std::string::npos)
      << *explained;
  EXPECT_NE(explained->find("then ORDER BY (4 keys)"), std::string::npos);
  EXPECT_NE(explained->find("then LIMIT 100"), std::string::npos);
}

TEST_F(ExplainTest, ExplainTreeRendersRecordedDynamicPlan) {
  auto query = TpchQ9(engine_);
  ASSERT_TRUE(query.ok());
  DynamicOptimizer optimizer(engine_);
  auto result = optimizer.Run(query.value());
  ASSERT_TRUE(result.ok());
  QuerySpec spec = query.value();
  spec.NormalizeJoins();
  auto explained = ExplainTree(engine_, spec, *result->join_tree);
  ASSERT_TRUE(explained.ok()) << explained.status().ToString();
  EXPECT_NE(explained->find("Scan l [lineitem]"), std::string::npos)
      << *explained;
  // Six scans (one per FROM entry), five joins.
  size_t scans = 0, joins = 0, pos = 0;
  while ((pos = explained->find("Scan ", pos)) != std::string::npos) {
    ++scans;
    pos += 5;
  }
  pos = 0;
  while ((pos = explained->find("Join[", pos)) != std::string::npos) {
    ++joins;
    pos += 5;
  }
  EXPECT_EQ(scans, 6u);
  EXPECT_EQ(joins, 5u);
}

TEST_F(ExplainTest, ExplainRejectsInvalidQuery) {
  // Disconnected join graph (cross product) fails validation.
  QuerySpec broken;
  broken.tables = {{"nation", "a", false, false, {}},
                   {"region", "b", false, false, {}}};
  broken.projections = {"a.n_name", "b.r_name"};
  EXPECT_FALSE(ExplainStatic(engine_, broken).ok());
}

}  // namespace
}  // namespace dynopt
