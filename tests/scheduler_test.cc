// Overload-resilient admission scheduler (run under TSan in CI):
//  - smooth weighted round-robin grants slots across priority classes in
//    the deterministic nginx order (4 high : 2 normal : 1 low per cycle at
//    the default weights), FIFO within a class, and exact FIFO when every
//    query is in one class (the defaults);
//  - the shedder drops the newest waiter of the lowest class once the
//    depth watermark is crossed, with kResourceExhausted;
//  - degradation shrinks the granted reservation (and stamps the context)
//    when the queue is over the degrade watermark;
//  - queue-timeout accounting uses one absolute deadline (never fires
//    early, regardless of condition-variable wakeups);
//  - a concurrent submit/cancel/timeout/shed stress across classes leaks
//    no slots, reservations, or queue entries;
//  - BackoffPolicy jitter is off by default (bit-identical delays) and
//    deterministic per (seed, site, attempt) when on;
//  - the engine-wide RetryBudget grants/denies/refills as configured.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/backoff.h"
#include "common/query_context.h"
#include "common/random.h"
#include "common/retry_budget.h"
#include "exec/engine.h"

namespace dynopt {
namespace {

class SchedulerTest : public ::testing::Test {
 protected:
  void SetUp() override { engine_ = std::make_unique<Engine>(); }

  /// Holds one slot so everything submitted afterwards queues.
  Result<AdmissionController::Ticket> Block(QueryContext* ctx) {
    return engine_->admission().Admit(ctx);
  }

  /// Spins until `n` waiters are queued (grants are what's under test, so
  /// tests serialize arrivals against the queue gauge).
  void WaitForQueued(int n) {
    while (engine_->admission().queued() < n) std::this_thread::yield();
  }

  std::unique_ptr<Engine> engine_;
};

TEST_F(SchedulerTest, WeightedFairShareFollowsSmoothWrrOrder) {
  engine_->mutable_cluster().admission.max_concurrent_queries = 1;
  engine_->mutable_cluster().admission.max_queue_depth = 32;
  engine_->mutable_cluster().admission.queue_timeout_seconds = 60.0;
  engine_->RearmAdmission();

  QueryContext blocker("blocker");
  auto hold = Block(&blocker);
  ASSERT_TRUE(hold.ok());

  // Seven waiters per class, enqueued one at a time so within-class FIFO
  // order is known. With one slot, each Release pumps exactly the next
  // grant, so append order below IS grant order.
  constexpr int kPerClass = 7;
  std::mutex order_mu;
  std::vector<QueryPriority> grant_order;
  std::vector<std::unique_ptr<QueryContext>> contexts;
  std::vector<std::thread> waiters;
  int enqueued = 0;
  for (int i = 0; i < kPerClass; ++i) {
    for (QueryPriority p : {QueryPriority::kLow, QueryPriority::kNormal,
                            QueryPriority::kHigh}) {
      auto ctx = std::make_unique<QueryContext>("w");
      ctx->priority = p;
      QueryContext* raw = ctx.get();
      contexts.push_back(std::move(ctx));
      waiters.emplace_back([this, raw, &order_mu, &grant_order]() {
        auto ticket = engine_->admission().Admit(raw);
        ASSERT_TRUE(ticket.ok());
        {
          std::lock_guard<std::mutex> lock(order_mu);
          grant_order.push_back(raw->priority);
        }
        ticket->Release();
      });
      WaitForQueued(++enqueued);
    }
  }

  hold->Release();
  for (auto& t : waiters) t.join();

  ASSERT_EQ(grant_order.size(), static_cast<size_t>(3 * kPerClass));
  // Smooth WRR at weights {1, 2, 4} with all classes backlogged serves one
  // deterministic 7-grant cycle: h,n,h,l,h,n,h — 4 high, 2 normal, 1 low,
  // interleaved (proportional share with no starvation, and no class ever
  // granted twice in a row while another is owed a turn).
  const QueryPriority kExpectedCycle[7] = {
      QueryPriority::kHigh, QueryPriority::kNormal, QueryPriority::kHigh,
      QueryPriority::kLow,  QueryPriority::kHigh,   QueryPriority::kNormal,
      QueryPriority::kHigh};
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(grant_order[static_cast<size_t>(i)], kExpectedCycle[i])
        << "grant " << i;
  }
  // Once a class drains the remaining weight is redistributed, so later
  // windows shift composition — but everyone is eventually served.
  int totals[kNumQueryPriorities] = {0, 0, 0};
  for (QueryPriority p : grant_order) ++totals[static_cast<int>(p)];
  for (int c = 0; c < kNumQueryPriorities; ++c) {
    EXPECT_EQ(totals[c], kPerClass) << "class " << c;
  }
  EXPECT_EQ(engine_->admission().running(), 0);
  EXPECT_EQ(engine_->admission().queued(), 0);
}

TEST_F(SchedulerTest, SingleClassDegeneratesToFifo) {
  engine_->mutable_cluster().admission.max_concurrent_queries = 1;
  engine_->mutable_cluster().admission.max_queue_depth = 16;
  engine_->mutable_cluster().admission.queue_timeout_seconds = 60.0;
  engine_->RearmAdmission();

  QueryContext blocker("blocker");
  auto hold = Block(&blocker);
  ASSERT_TRUE(hold.ok());

  constexpr int kWaiters = 8;
  std::mutex order_mu;
  std::vector<int> grant_order;
  std::vector<std::unique_ptr<QueryContext>> contexts;
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    // All default kNormal: one non-empty class, so the scheduler must be
    // exact FIFO (the pre-priority behavior).
    contexts.push_back(std::make_unique<QueryContext>("w"));
    QueryContext* raw = contexts.back().get();
    waiters.emplace_back([this, raw, i, &order_mu, &grant_order]() {
      auto ticket = engine_->admission().Admit(raw);
      ASSERT_TRUE(ticket.ok());
      {
        std::lock_guard<std::mutex> lock(order_mu);
        grant_order.push_back(i);
      }
      ticket->Release();
    });
    WaitForQueued(i + 1);
  }

  hold->Release();
  for (auto& t : waiters) t.join();

  ASSERT_EQ(grant_order.size(), static_cast<size_t>(kWaiters));
  for (int i = 0; i < kWaiters; ++i) {
    EXPECT_EQ(grant_order[static_cast<size_t>(i)], i)
        << "FIFO order violated at grant " << i;
  }
}

TEST_F(SchedulerTest, ShedderDropsNewestOfLowestClass) {
  engine_->mutable_cluster().admission.max_concurrent_queries = 1;
  engine_->mutable_cluster().admission.max_queue_depth = 16;
  engine_->mutable_cluster().admission.queue_timeout_seconds = 60.0;
  engine_->mutable_cluster().admission.shed_enabled = true;
  engine_->mutable_cluster().admission.shed_queue_depth = 3;
  engine_->RearmAdmission();

  QueryContext blocker("blocker");
  auto hold = Block(&blocker);
  ASSERT_TRUE(hold.ok());

  // Three low waiters sit exactly at the watermark.
  std::vector<std::unique_ptr<QueryContext>> lows;
  std::vector<std::thread> low_threads;
  std::atomic<int> shed_count{0};
  std::atomic<int> low_granted{0};
  for (int i = 0; i < 3; ++i) {
    lows.push_back(std::make_unique<QueryContext>("low"));
    lows.back()->priority = QueryPriority::kLow;
    QueryContext* raw = lows.back().get();
    low_threads.emplace_back([this, raw, &shed_count, &low_granted]() {
      auto ticket = engine_->admission().Admit(raw);
      if (!ticket.ok()) {
        EXPECT_EQ(ticket.status().code(), StatusCode::kResourceExhausted);
        EXPECT_NE(ticket.status().message().find("shed"), std::string::npos);
        ++shed_count;
        return;
      }
      ++low_granted;
      ticket->Release();
    });
    WaitForQueued(i + 1);
  }

  // A high arrival pushes depth to 4 > 3: the shedder must drop the newest
  // low waiter, never the high one.
  QueryContext high("high");
  high.priority = QueryPriority::kHigh;
  std::thread high_thread([this, &high]() {
    auto ticket = engine_->admission().Admit(&high);
    ASSERT_TRUE(ticket.ok()) << "high-priority waiter must not be shed";
    ticket->Release();
  });
  while (shed_count.load() < 1) std::this_thread::yield();
  EXPECT_EQ(engine_->admission().queued(), 3);

  hold->Release();
  high_thread.join();
  for (auto& t : low_threads) t.join();

  EXPECT_EQ(shed_count.load(), 1);
  EXPECT_EQ(low_granted.load(), 2);
  EXPECT_EQ(engine_->admission().running(), 0);
  EXPECT_EQ(engine_->admission().queued(), 0);
}

TEST_F(SchedulerTest, DegradationShrinksReservationAndStampsContext) {
  engine_->mutable_cluster().admission.max_concurrent_queries = 1;
  engine_->mutable_cluster().admission.max_queue_depth = 8;
  engine_->mutable_cluster().admission.queue_timeout_seconds = 60.0;
  engine_->mutable_cluster().admission.degrade_queue_depth = 2;
  engine_->mutable_cluster().admission.degrade_memory_fraction = 0.5;
  engine_->mutable_cluster().admission.degrade_strategy = true;
  engine_->mutable_cluster().memory.engine_budget_bytes = 64 << 20;
  engine_->mutable_cluster().memory.query_reservation_bytes = 2 << 20;
  engine_->RearmAdmission();

  // The blocker is granted from an empty queue: no degradation.
  QueryContext blocker("blocker");
  auto hold = Block(&blocker);
  ASSERT_TRUE(hold.ok());
  EXPECT_FALSE(blocker.memory_degraded);
  EXPECT_EQ(blocker.memory().budget(), uint64_t{2} << 20);

  // Two queued waiters put the depth at the watermark, so the next grant
  // is degraded: half the reservation, both context stamps set.
  QueryContext w1("w1"), w2("w2");
  std::thread t1([this, &w1]() {
    auto ticket = engine_->admission().Admit(&w1);
    ASSERT_TRUE(ticket.ok());
    EXPECT_TRUE(w1.memory_degraded);
    EXPECT_TRUE(w1.strategy_downgraded);
    EXPECT_EQ(w1.memory().budget(), uint64_t{1} << 20);
    ticket->Release();
  });
  WaitForQueued(1);
  std::thread t2([this, &w2]() {
    auto ticket = engine_->admission().Admit(&w2);
    ASSERT_TRUE(ticket.ok());
    ticket->Release();
  });
  WaitForQueued(2);

  hold->Release();
  t1.join();
  t2.join();
  EXPECT_EQ(engine_->memory().used(), 0u);
}

TEST_F(SchedulerTest, EstimatedReservationOverridesFixedDefault) {
  engine_->mutable_cluster().admission.max_concurrent_queries = 2;
  engine_->mutable_cluster().memory.engine_budget_bytes = 64 << 20;
  engine_->mutable_cluster().memory.query_reservation_bytes = 1 << 20;
  engine_->RearmAdmission();

  // A context carrying an optimizer estimate reserves that much...
  QueryContext estimated("estimated");
  estimated.estimated_memory_bytes = 3 << 20;
  auto t1 = engine_->admission().Admit(&estimated);
  ASSERT_TRUE(t1.ok());
  EXPECT_EQ(estimated.memory().budget(), uint64_t{3} << 20);
  EXPECT_EQ(engine_->memory().used(), uint64_t{3} << 20);

  // ...and one without falls back to query_reservation_bytes.
  QueryContext plain("plain");
  auto t2 = engine_->admission().Admit(&plain);
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(plain.memory().budget(), uint64_t{1} << 20);

  t1->Release();
  t2->Release();
  EXPECT_EQ(engine_->memory().used(), 0u);
}

TEST_F(SchedulerTest, WildEstimateIsClampedToEngineBudget) {
  engine_->mutable_cluster().admission.max_concurrent_queries = 2;
  engine_->mutable_cluster().admission.queue_timeout_seconds = 0.5;
  engine_->mutable_cluster().memory.engine_budget_bytes = 4 << 20;
  engine_->mutable_cluster().memory.query_reservation_bytes = 1 << 20;
  engine_->RearmAdmission();

  // An over-estimate beyond the whole engine budget must still be
  // grantable (clamped), not block forever.
  QueryContext wild("wild");
  wild.estimated_memory_bytes = 1ull << 40;
  auto ticket = engine_->admission().Admit(&wild);
  ASSERT_TRUE(ticket.ok());
  EXPECT_EQ(wild.memory().budget(), uint64_t{4} << 20);
  ticket->Release();
}

TEST_F(SchedulerTest, QueueTimeoutNeverFiresEarly) {
  constexpr double kTimeout = 0.2;
  engine_->mutable_cluster().admission.max_concurrent_queries = 1;
  engine_->mutable_cluster().admission.max_queue_depth = 4;
  engine_->mutable_cluster().admission.queue_timeout_seconds = kTimeout;
  engine_->RearmAdmission();

  QueryContext blocker("blocker");
  auto hold = Block(&blocker);
  ASSERT_TRUE(hold.ok());

  QueryContext starved("starved");
  const auto start = std::chrono::steady_clock::now();
  auto result = engine_->admission().Admit(&starved);
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  // The timeout is one absolute deadline computed at entry; however the
  // condition variable wakes, the waiter cannot give up before it.
  EXPECT_GE(waited, kTimeout);
  EXPECT_LT(waited, kTimeout + 0.5);
  EXPECT_EQ(engine_->admission().queued(), 0);
}

TEST_F(SchedulerTest, StressSubmitCancelTimeoutShedAcrossClasses) {
  engine_->mutable_cluster().admission.max_concurrent_queries = 3;
  engine_->mutable_cluster().admission.max_queue_depth = 12;
  engine_->mutable_cluster().admission.queue_timeout_seconds = 0.05;
  engine_->mutable_cluster().admission.shed_enabled = true;
  engine_->mutable_cluster().admission.shed_queue_depth = 6;
  engine_->mutable_cluster().admission.shed_queue_wait_seconds = 0.02;
  engine_->mutable_cluster().admission.degrade_queue_depth = 4;
  engine_->mutable_cluster().memory.engine_budget_bytes = 64 << 20;
  engine_->mutable_cluster().memory.query_reservation_bytes = 1 << 20;
  engine_->RearmAdmission();

  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 40;
  std::atomic<int> granted{0};
  std::atomic<int> refused{0};
  std::atomic<int> cancelled{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, t, &granted, &refused, &cancelled]() {
      Rng rng(static_cast<uint64_t>(1000 + t));
      for (int i = 0; i < kItersPerThread; ++i) {
        QueryContext ctx("stress");
        ctx.priority = static_cast<QueryPriority>(rng.NextInt64(0, 2));
        const int64_t fate = rng.NextInt64(0, 9);
        if (fate == 0) {
          // Cancel racing the queue wait.
          ctx.Cancel("stress cancel");
        } else if (fate == 1) {
          ctx.set_timeout(0.001);
        }
        auto ticket = engine_->admission().Admit(&ctx);
        if (ticket.ok()) {
          ++granted;
          if (rng.NextInt64(0, 1) == 0) {
            std::this_thread::sleep_for(std::chrono::microseconds(200));
          }
          ticket->Release();
        } else if (ticket.status().code() == StatusCode::kCancelled) {
          ++cancelled;
        } else {
          ASSERT_EQ(ticket.status().code(), StatusCode::kResourceExhausted);
          ++refused;
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  // Every path terminated and nothing leaked: no running queries, no
  // stranded waiters, no reservation bytes held.
  EXPECT_EQ(granted + refused + cancelled, kThreads * kItersPerThread);
  EXPECT_GT(granted.load(), 0);
  EXPECT_EQ(engine_->admission().running(), 0);
  EXPECT_EQ(engine_->admission().queued(), 0);
  EXPECT_EQ(engine_->memory().used(), 0u);
}

// ---- BackoffPolicy jitter --------------------------------------------------

TEST(BackoffJitterTest, JitterOffReturnsDelayBitForBit) {
  BackoffPolicy policy;  // jitter_fraction defaults to 0.
  for (uint64_t site : {0ull, 1ull, 42ull, 0xdeadbeefull}) {
    for (int attempt = 0; attempt < 8; ++attempt) {
      EXPECT_EQ(policy.JitteredDelay(site, attempt), policy.Delay(attempt))
          << "site " << site << " attempt " << attempt;
    }
  }
}

TEST(BackoffJitterTest, JitterIsDeterministicAndBounded) {
  BackoffPolicy policy;
  policy.jitter_fraction = 0.5;
  policy.jitter_seed = 7;
  bool saw_distinct = false;
  for (uint64_t site = 0; site < 16; ++site) {
    for (int attempt = 0; attempt < 4; ++attempt) {
      const double base = policy.Delay(attempt);
      const double jittered = policy.JitteredDelay(site, attempt);
      // Pure function of (seed, site, attempt): same inputs, same delay.
      EXPECT_EQ(jittered, policy.JitteredDelay(site, attempt));
      EXPECT_GE(jittered, base * 0.5);
      EXPECT_LE(jittered, base * 1.5);
      if (jittered != policy.JitteredDelay(site + 1, attempt)) {
        saw_distinct = true;
      }
    }
  }
  // Distinct sites decorrelate (the whole point of per-site jitter).
  EXPECT_TRUE(saw_distinct);

  BackoffPolicy other = policy;
  other.jitter_seed = 8;
  EXPECT_NE(policy.JitteredDelay(3, 1), other.JitteredDelay(3, 1));
}

// ---- RetryBudget -----------------------------------------------------------

TEST(RetryBudgetTest, DisabledBudgetAlwaysGrants) {
  RetryBudget budget(RetryBudgetConfig{});  // max_tokens 0 == unlimited.
  EXPECT_FALSE(budget.enabled());
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(budget.TryAcquire());
}

TEST(RetryBudgetTest, ExhaustsThenDeniesThenRefills) {
  RetryBudgetConfig config;
  config.max_tokens = 2;
  config.refill_per_second = 0;  // Fixed allowance.
  RetryBudget fixed(config);
  EXPECT_TRUE(fixed.TryAcquire());
  EXPECT_TRUE(fixed.TryAcquire());
  EXPECT_FALSE(fixed.TryAcquire());
  EXPECT_EQ(fixed.granted(), 2u);
  EXPECT_EQ(fixed.denied(), 1u);

  config.refill_per_second = 1000;
  RetryBudget refilling(config);
  EXPECT_TRUE(refilling.TryAcquire());
  EXPECT_TRUE(refilling.TryAcquire());
  // Burn whatever trickled in, then wait for a real refill.
  while (refilling.TryAcquire()) {
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(refilling.TryAcquire());
}

TEST(RetryBudgetTest, ConcurrentAcquiresNeverOverGrant) {
  RetryBudgetConfig config;
  config.max_tokens = 100;
  config.refill_per_second = 0;
  RetryBudget budget(config);
  std::atomic<int> granted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&budget, &granted]() {
      for (int i = 0; i < 50; ++i) {
        if (budget.TryAcquire()) ++granted;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(granted.load(), 100);
  EXPECT_EQ(budget.denied(), 300u);
}

}  // namespace
}  // namespace dynopt
