// End-to-end overload resilience (run under ASan+UBSan in CI):
//  - with every new serving knob at its default (no priorities, shedding
//    off, degradation off, retry budget off, watchdog off, jitter off),
//    admission-governed runs meter byte-for-byte identically to ungoverned
//    runs across all six strategies — the overload machinery is free when
//    unused;
//  - ApplyStrategyDowngrade swaps a downgraded query's dynamic optimizer
//    for the static cost-based one (same results, context forwarded);
//  - EstimateQueryReservationBytes scales with the query's filtered input
//    and respects its floor;
//  - an exhausted engine retry budget fails the query fast with
//    kResourceExhausted and recovery does NOT re-drive it;
//  - the watchdog stall-kills a query that stops heartbeating, and the
//    recovery sweep reclaims its temp table and spill file;
//  - sustained mixed-priority traffic under fault injection + shedding +
//    degradation + watchdog leaks no slots, reservations, temp tables or
//    spill files, and every successful query returns correct rows.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/query_context.h"
#include "common/random.h"
#include "exec/engine.h"
#include "opt/degrade.h"
#include "opt/dynamic_optimizer.h"
#include "opt/ingres_optimizer.h"
#include "opt/optimizer.h"
#include "opt/order_baselines.h"
#include "opt/pilot_run_optimizer.h"
#include "opt/recovery.h"
#include "opt/static_optimizer.h"
#include "storage/serde.h"

namespace dynopt {
namespace {

class OverloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    spill_dir_ = ::testing::TempDir() + "dynopt_overload_test";
    std::filesystem::create_directories(spill_dir_);
    engine_ = std::make_unique<Engine>();
    engine_->mutable_cluster().spill_directory = spill_dir_;
    Rng rng(47);
    for (const char* name : {"u", "w"}) {
      auto t = std::make_shared<Table>(
          name, Schema({{"k", ValueType::kInt64}, {"v", ValueType::kInt64}}),
          engine_->cluster().num_nodes);
      ASSERT_TRUE(t->SetPartitionKey({"k"}).ok());
      for (int i = 0; i < 800; ++i) {
        t->AppendRow(
            {Value(rng.NextInt64(0, 59)), Value(rng.NextInt64(0, 9))});
      }
      ASSERT_TRUE(engine_->catalog().RegisterTable(t).ok());
      ASSERT_TRUE(engine_->CollectBaseStats(name, {"k", "v"}).ok());
    }
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(spill_dir_, ec);
  }

  QuerySpec JoinQuery(int64_t v_limit) {
    QuerySpec spec;
    spec.tables = {{"u", "u", false, false, {}}, {"w", "w", false, false, {}}};
    spec.joins = {{"u", "w", {{"u.k", "w.k"}}}};
    spec.projections = {"u.v", "w.v"};
    spec.predicates.push_back(
        {"u", Cmp(CompareOp::kLt, Col("u", "v"), Lit(Value(v_limit)))});
    spec.NormalizeJoins();
    return spec;
  }

  std::unique_ptr<Optimizer> MakeStrategy(
      const std::string& name, std::shared_ptr<const JoinTree> hint) {
    if (name == "dynamic") {
      return std::make_unique<DynamicOptimizer>(engine_.get());
    }
    if (name == "cost-based") {
      return std::make_unique<StaticCostBasedOptimizer>(engine_.get());
    }
    if (name == "worst-order") {
      return std::make_unique<WorstOrderOptimizer>(engine_.get());
    }
    if (name == "pilot-run") {
      return std::make_unique<PilotRunOptimizer>(engine_.get());
    }
    if (name == "ingres-like") {
      return std::make_unique<IngresLikeOptimizer>(engine_.get());
    }
    EXPECT_EQ(name, "best-order");
    return std::make_unique<BestOrderOptimizer>(engine_.get(),
                                                std::move(hint));
  }

  /// Count of catalog temp tables left behind (any prefix).
  int TempTableCount() {
    int n = 0;
    for (const auto& name : engine_->catalog().TableNames()) {
      if (Catalog::IsTempName(name)) ++n;
    }
    return n;
  }

  std::string spill_dir_;
  std::unique_ptr<Engine> engine_;
};

TEST_F(OverloadTest, DefaultKnobsMeterIdenticallyAcrossAllStrategies) {
  // The hint for best-order comes from an ungoverned dynamic run.
  DynamicOptimizer hint_opt(engine_.get());
  auto hint_run = hint_opt.Run(JoinQuery(3));
  ASSERT_TRUE(hint_run.ok()) << hint_run.status().ToString();
  auto hint = hint_run->join_tree;

  for (const char* name : {"dynamic", "cost-based", "worst-order",
                           "pilot-run", "ingres-like", "best-order"}) {
    SCOPED_TRACE(name);
    auto baseline_opt = MakeStrategy(name, hint);
    auto baseline = baseline_opt->Run(JoinQuery(3));
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

    // Same strategy, but through the full serving path at defaults:
    // admission (single-class FIFO, no reservation), context attached.
    QueryContext ctx(std::string("governed-") + name);
    auto ticket = engine_->admission().Admit(&ctx);
    ASSERT_TRUE(ticket.ok());
    auto governed_opt = MakeStrategy(name, hint);
    governed_opt->set_context(&ctx);
    auto governed = governed_opt->Run(JoinQuery(3));
    ASSERT_TRUE(governed.ok()) << governed.status().ToString();
    ticket->Release();

    std::vector<Row> expect_rows = baseline->rows;
    std::vector<Row> got_rows = governed->rows;
    SortRows(&expect_rows);
    SortRows(&got_rows);
    EXPECT_EQ(got_rows, expect_rows);

    // The simulated metering must be byte-for-byte what the ungoverned
    // engine produces: every serving default is behavior-neutral.
    const ExecMetrics& a = baseline->metrics;
    const ExecMetrics& b = governed->metrics;
    EXPECT_EQ(b.simulated_seconds, a.simulated_seconds);
    EXPECT_EQ(b.reopt_seconds, a.reopt_seconds);
    EXPECT_EQ(b.stats_seconds, a.stats_seconds);
    EXPECT_EQ(b.rows_out, a.rows_out);
    EXPECT_EQ(b.tuples_processed, a.tuples_processed);
    EXPECT_EQ(b.bytes_scanned, a.bytes_scanned);
    EXPECT_EQ(b.bytes_shuffled, a.bytes_shuffled);
    EXPECT_EQ(b.bytes_broadcast, a.bytes_broadcast);
    EXPECT_EQ(b.bytes_materialized, a.bytes_materialized);
    EXPECT_EQ(b.bytes_intermediate_read, a.bytes_intermediate_read);
    EXPECT_EQ(b.index_lookups, a.index_lookups);
    EXPECT_EQ(b.num_jobs, a.num_jobs);
    EXPECT_EQ(b.num_reopt_points, a.num_reopt_points);
    EXPECT_EQ(b.num_retries, 0u);
    EXPECT_EQ(b.admission_degraded, 0u);
    EXPECT_FALSE(ctx.memory_degraded);
    EXPECT_FALSE(ctx.strategy_downgraded);
  }
  EXPECT_EQ(TempTableCount(), 0);
}

TEST_F(OverloadTest, ApplyStrategyDowngradeSwapsToStatic) {
  // Not downgraded: the planned optimizer passes through untouched.
  QueryContext plain("plain");
  auto kept = ApplyStrategyDowngrade(
      std::make_unique<DynamicOptimizer>(engine_.get()), engine_.get(),
      &plain);
  ASSERT_NE(kept, nullptr);
  EXPECT_EQ(kept->name(), "dynamic");

  // Downgraded: swapped for the static cost-based strategy, context
  // forwarded, and the results still match.
  QueryContext degraded("degraded");
  degraded.strategy_downgraded = true;
  auto swapped = ApplyStrategyDowngrade(
      std::make_unique<DynamicOptimizer>(engine_.get()), engine_.get(),
      &degraded);
  ASSERT_NE(swapped, nullptr);
  EXPECT_EQ(swapped->name(), "cost-based");
  EXPECT_EQ(swapped->context(), &degraded);

  auto reference = kept->Run(JoinQuery(4));
  auto downgraded_run = swapped->Run(JoinQuery(4));
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_TRUE(downgraded_run.ok()) << downgraded_run.status().ToString();
  std::vector<Row> expect_rows = reference->rows;
  std::vector<Row> got_rows = downgraded_run->rows;
  SortRows(&expect_rows);
  SortRows(&got_rows);
  EXPECT_EQ(got_rows, expect_rows);

  // Null context / null optimizer pass through without crashing.
  EXPECT_EQ(ApplyStrategyDowngrade(nullptr, engine_.get(), &degraded),
            nullptr);
  auto no_ctx = ApplyStrategyDowngrade(
      std::make_unique<DynamicOptimizer>(engine_.get()), engine_.get(),
      nullptr);
  ASSERT_NE(no_ctx, nullptr);
  EXPECT_EQ(no_ctx->name(), "dynamic");
}

TEST_F(OverloadTest, ReservationEstimateScalesWithFilteredInput) {
  // v < 9 passes ~90% of u, v < 1 ~10%: the wider query must reserve more.
  const uint64_t narrow =
      EstimateQueryReservationBytes(JoinQuery(1), engine_.get(), 1);
  const uint64_t wide =
      EstimateQueryReservationBytes(JoinQuery(9), engine_.get(), 1);
  EXPECT_GT(narrow, 0u);
  EXPECT_GT(wide, narrow);

  // The floor backstops tiny estimates (a query always reserves something).
  const uint64_t floored = EstimateQueryReservationBytes(
      JoinQuery(1), engine_.get(), uint64_t{1} << 30);
  EXPECT_EQ(floored, uint64_t{1} << 30);
}

TEST_F(OverloadTest, RetryBudgetFailsFastUnderFaultStorm) {
  engine_->mutable_cluster().fault.enabled = true;
  engine_->mutable_cluster().fault.seed = 7;
  engine_->mutable_cluster().fault.task_failure_probability = 0.15;

  // Unlimited budget (the default): injected failures are absorbed by
  // per-task retries and the query completes.
  engine_->ArmFaultInjection();
  engine_->RearmRetryBudget();
  DynamicOptimizer unlimited(engine_.get());
  RecoveryReport unlimited_report;
  auto ok_run = RunWithRecovery(&unlimited, engine_.get(), JoinQuery(3),
                                RecoveryPolicy{}, &unlimited_report);
  ASSERT_TRUE(ok_run.ok()) << ok_run.status().ToString();
  // The storm must actually demand more than one retry, otherwise the
  // budgeted rerun below would not be denied.
  ASSERT_GE(ok_run->metrics.num_retries, 2u);

  // Same deterministic fault pattern, but the engine only budgets one
  // retry: the second re-execution is denied and the query fails FAST with
  // kResourceExhausted — which recovery never re-drives.
  engine_->mutable_cluster().retry_budget.max_tokens = 1;
  engine_->mutable_cluster().retry_budget.refill_per_second = 0;
  engine_->ArmFaultInjection();
  engine_->RearmRetryBudget();
  DynamicOptimizer budgeted(engine_.get());
  RecoveryReport report;
  auto denied = RunWithRecovery(&budgeted, engine_.get(), JoinQuery(3),
                                RecoveryPolicy{}, &report);
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(denied.status().message().find("retry budget"),
            std::string::npos);
  EXPECT_EQ(report.restarts, 0);
  EXPECT_EQ(report.resumes, 0);
  EXPECT_GE(engine_->retry_budget().denied(), 1u);

  // Fail-fast must not strand intermediates.
  EXPECT_EQ(TempTableCount(), 0);
  engine_->DisarmFaultInjection();
}

/// Test-only strategy that registers a temp table and writes a spill file,
/// then spins without ever heartbeating — the signature of a query stuck
/// outside its cooperative checkpoints. Only the raw token is polled so
/// the watchdog's staleness clock keeps running.
class StuckOptimizer : public Optimizer {
 public:
  explicit StuckOptimizer(Engine* engine) : engine_(engine) {}
  std::string name() const override { return "stuck"; }

  Result<OptimizerRunResult> Run(const QuerySpec& query) override {
    (void)query;
    const std::string temp_name =
        engine_->catalog().UniqueTempName(TempPrefix("stuck"));
    auto t = std::make_shared<Table>(
        temp_name, Schema({{"k", ValueType::kInt64}}), 1);
    t->AppendRow({Value(int64_t{1})});
    Status st = engine_->catalog().RegisterTable(t);
    if (!st.ok()) return st;
    const std::string spill_path = engine_->cluster().spill_directory + "/" +
                                   ctx_->SpillFilePrefix() + "0.part";
    std::ofstream(spill_path) << "stuck";
    while (!ctx_->cancelled()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return ctx_->CheckAlive();
  }

 private:
  Engine* engine_;
};

TEST_F(OverloadTest, WatchdogReclaimsStuckQuery) {
  engine_->mutable_cluster().watchdog.enabled = true;
  engine_->mutable_cluster().watchdog.poll_interval_seconds = 0.005;
  engine_->mutable_cluster().watchdog.progress_timeout_seconds = 0.05;
  engine_->RearmWatchdog();

  QueryContext ctx("stuck");
  StuckOptimizer stuck(engine_.get());
  stuck.set_context(&ctx);
  Result<OptimizerRunResult> result = Status::OK();
  {
    WatchdogRegistration watched(&engine_->watchdog(), &ctx);
    result = RunWithRecovery(&stuck, engine_.get(), JoinQuery(3),
                             RecoveryPolicy{});
  }

  // The watchdog stall-killed it; the kill is a plain cancellation.
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_NE(result.status().message().find("watchdog"), std::string::npos);
  EXPECT_EQ(engine_->watchdog().stall_kills(), 1u);
  EXPECT_EQ(engine_->watchdog().deadline_kills(), 0u);

  // Reclamation is the existing terminal-failure sweep: the stuck query's
  // temp table and spill file are both gone.
  EXPECT_EQ(TempTableCount(), 0);
  EXPECT_EQ(CountFilesWithPrefix(spill_dir_, ctx.SpillFilePrefix()), 0);
}

TEST_F(OverloadTest, ChaosUnderTrafficLeaksNothing) {
  // Fault-free serial references, one per distinct predicate.
  std::vector<std::vector<Row>> expected(5);
  for (int v = 0; v < 5; ++v) {
    DynamicOptimizer opt(engine_.get());
    auto run = opt.Run(JoinQuery(1 + v));
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    expected[static_cast<size_t>(v)] = std::move(run->rows);
    SortRows(&expected[static_cast<size_t>(v)]);
  }

  // Everything on at once: injected faults with real disk round-trips,
  // shedding, degradation, a generous retry budget, and the watchdog.
  auto& cluster = engine_->mutable_cluster();
  cluster.materialize_to_disk = true;
  cluster.fault.enabled = true;
  cluster.fault.seed = 11;
  cluster.fault.task_failure_probability = 0.10;
  cluster.fault.corruption_probability = 0.05;
  cluster.admission.max_concurrent_queries = 2;
  cluster.admission.max_queue_depth = 16;
  cluster.admission.queue_timeout_seconds = 30.0;
  cluster.admission.shed_enabled = true;
  cluster.admission.shed_queue_depth = 5;
  cluster.admission.degrade_queue_depth = 3;
  cluster.admission.degrade_strategy = true;
  cluster.memory.engine_budget_bytes = 256ull << 20;
  cluster.memory.query_reservation_bytes = 1 << 20;
  cluster.retry_budget.max_tokens = 10000;
  cluster.retry_budget.refill_per_second = 10000;
  cluster.watchdog.enabled = true;
  cluster.watchdog.poll_interval_seconds = 0.01;
  cluster.watchdog.progress_timeout_seconds = 10.0;
  engine_->ArmFaultInjection();
  engine_->RearmAdmission();
  engine_->RearmRetryBudget();
  engine_->RearmWatchdog();

  constexpr int kClients = 8;
  constexpr int kPerClient = 4;
  std::atomic<int> succeeded{0};
  std::atomic<int> shed{0};
  std::atomic<int> failed{0};
  std::atomic<int> wrong_rows{0};
  std::mutex prefix_mu;
  std::vector<std::string> spill_prefixes;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c]() {
      for (int i = 0; i < kPerClient; ++i) {
        const int v = (c + i) % 5;
        QueryContext ctx("chaos-" + std::to_string(c) + "-" +
                         std::to_string(i));
        ctx.priority = static_cast<QueryPriority>(c % 3);
        ctx.estimated_memory_bytes =
            EstimateQueryReservationBytes(JoinQuery(1 + v), engine_.get());
        {
          std::lock_guard<std::mutex> lock(prefix_mu);
          spill_prefixes.push_back(ctx.SpillFilePrefix());
        }
        auto ticket = engine_->admission().Admit(&ctx);
        if (!ticket.ok()) {
          if (ticket.status().message().find("shed") != std::string::npos) {
            ++shed;
          } else {
            ++failed;
          }
          continue;
        }
        WatchdogRegistration watched(&engine_->watchdog(), &ctx);
        auto optimizer = ApplyStrategyDowngrade(
            std::make_unique<DynamicOptimizer>(engine_.get()), engine_.get(),
            &ctx);
        optimizer->set_context(&ctx);
        auto run = RunWithRecovery(optimizer.get(), engine_.get(),
                                   JoinQuery(1 + v), RecoveryPolicy{});
        ticket->Release();
        if (!run.ok()) {
          ++failed;
          continue;
        }
        std::vector<Row> rows = std::move(run->rows);
        SortRows(&rows);
        if (rows != expected[static_cast<size_t>(v)]) ++wrong_rows;
        ++succeeded;
      }
    });
  }
  for (auto& t : clients) t.join();

  // Under this fault rate with a generous budget and 5 recovery attempts,
  // the bulk of the traffic completes — and completes CORRECTLY.
  EXPECT_EQ(wrong_rows.load(), 0);
  EXPECT_GT(succeeded.load(), 0);
  EXPECT_EQ(succeeded + shed + failed, kClients * kPerClient);

  // Nothing leaked: no slots, no waiters, no reservation bytes, no temp
  // tables, no spill/materialization files.
  EXPECT_EQ(engine_->admission().running(), 0);
  EXPECT_EQ(engine_->admission().queued(), 0);
  EXPECT_EQ(engine_->memory().used(), 0u);
  EXPECT_EQ(engine_->watchdog().stall_kills(), 0u);
  EXPECT_EQ(TempTableCount(), 0);
  for (const auto& prefix : spill_prefixes) {
    EXPECT_EQ(CountFilesWithPrefix(spill_dir_, prefix), 0) << prefix;
  }
  EXPECT_EQ(CountFilesWithPrefix(spill_dir_, ""), 0)
      << "stray files left in the spill directory";
  engine_->DisarmFaultInjection();
}

}  // namespace
}  // namespace dynopt
