#include <gtest/gtest.h>

#include <map>

#include "plan/analysis.h"
#include "plan/expr.h"
#include "plan/udf.h"

namespace dynopt {
namespace {

/// Binds against a fixed two-column row layout: a.x -> 0, a.y -> 1.
Result<BoundExprPtr> BindSimple(const ExprPtr& expr,
                                const std::map<std::string, Value>* params =
                                    nullptr,
                                const UdfRegistry* udfs = nullptr) {
  BindContext ctx;
  ctx.resolve_column = [](const std::string& name) {
    if (name == "a.x") return 0;
    if (name == "a.y") return 1;
    return -1;
  };
  ctx.params = params;
  ctx.udfs = udfs;
  return Bind(expr, ctx);
}

// --- Construction / printing -------------------------------------------------

TEST(ExprTest, ToStringRendersTree) {
  ExprPtr e = And({Cmp(CompareOp::kGt, Col("a", "x"), Lit(Value(5))),
                   Between(Col("a", "y"), Lit(Value(1)), Lit(Value(9)))});
  EXPECT_EQ(e->ToString(), "(a.x > 5) AND (a.y BETWEEN 1 AND 9)");
}

TEST(ExprTest, CollectColumnsFindsAll) {
  ExprPtr e = Or({Eq(Col("a", "x"), Col("b", "y")),
                  Not(Udf("f", {Col("c", "z")}))});
  std::vector<const ColumnRefExpr*> cols;
  e->CollectColumns(&cols);
  ASSERT_EQ(cols.size(), 3u);
  EXPECT_EQ(cols[0]->Qualified(), "a.x");
  EXPECT_EQ(cols[1]->Qualified(), "b.y");
  EXPECT_EQ(cols[2]->Qualified(), "c.z");
}

TEST(ExprTest, SplitConjunctsFlattensNestedAnds) {
  ExprPtr e = And({And({Lit(Value(true)), Lit(Value(false))}),
                   Lit(Value(true))});
  EXPECT_EQ(SplitConjuncts(e).size(), 3u);
  EXPECT_TRUE(SplitConjuncts(nullptr).empty());
}

TEST(ExprTest, CombineConjunctsInverse) {
  std::vector<ExprPtr> cs = {Lit(Value(1)), Lit(Value(2)), Lit(Value(3))};
  ExprPtr combined = CombineConjuncts(cs);
  EXPECT_EQ(SplitConjuncts(combined).size(), 3u);
  EXPECT_EQ(CombineConjuncts({}), nullptr);
  EXPECT_EQ(CombineConjuncts({cs[0]}), cs[0]);
}

// --- Binding & evaluation ------------------------------------------------------

TEST(ExprEvalTest, ColumnAndLiteral) {
  auto bound = BindSimple(Col("a", "x"));
  ASSERT_TRUE(bound.ok());
  Row row = {Value(7), Value("s")};
  EXPECT_EQ(bound.value()->Eval(row), Value(7));
}

TEST(ExprEvalTest, UnresolvedColumnFails) {
  auto bound = BindSimple(Col("z", "q"));
  ASSERT_FALSE(bound.ok());
  EXPECT_EQ(bound.status().code(), StatusCode::kBindError);
}

TEST(ExprEvalTest, ComparisonsAllOps) {
  Row row = {Value(5), Value(10)};
  struct Case {
    CompareOp op;
    bool expected;
  };
  const Case cases[] = {
      {CompareOp::kEq, false}, {CompareOp::kNe, true}, {CompareOp::kLt, true},
      {CompareOp::kLe, true},  {CompareOp::kGt, false},
      {CompareOp::kGe, false}};
  for (const Case& c : cases) {
    auto bound = BindSimple(Cmp(c.op, Col("a", "x"), Col("a", "y")));
    ASSERT_TRUE(bound.ok());
    EXPECT_EQ(bound.value()->EvalBool(row), c.expected)
        << CompareOpName(c.op);
  }
}

TEST(ExprEvalTest, NullComparisonsAreFalse) {
  Row row = {Value::Null(), Value(10)};
  auto bound = BindSimple(Eq(Col("a", "x"), Lit(Value(10))));
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(bound.value()->Eval(row), Value::Null());
  EXPECT_FALSE(bound.value()->EvalBool(row));
}

TEST(ExprEvalTest, BetweenInclusive) {
  auto bound =
      BindSimple(Between(Col("a", "x"), Lit(Value(3)), Lit(Value(7))));
  ASSERT_TRUE(bound.ok());
  EXPECT_TRUE(bound.value()->EvalBool({Value(3), Value(0)}));
  EXPECT_TRUE(bound.value()->EvalBool({Value(7), Value(0)}));
  EXPECT_FALSE(bound.value()->EvalBool({Value(8), Value(0)}));
  EXPECT_FALSE(bound.value()->EvalBool({Value(2), Value(0)}));
}

TEST(ExprEvalTest, AndOrShortCircuitSemantics) {
  auto both = BindSimple(And({Cmp(CompareOp::kGt, Col("a", "x"), Lit(Value(0))),
                              Cmp(CompareOp::kLt, Col("a", "x"),
                                  Lit(Value(10)))}));
  ASSERT_TRUE(both.ok());
  EXPECT_TRUE(both.value()->EvalBool({Value(5), Value(0)}));
  EXPECT_FALSE(both.value()->EvalBool({Value(15), Value(0)}));

  auto either = BindSimple(Or({Eq(Col("a", "x"), Lit(Value(1))),
                               Eq(Col("a", "x"), Lit(Value(2)))}));
  ASSERT_TRUE(either.ok());
  EXPECT_TRUE(either.value()->EvalBool({Value(2), Value(0)}));
  EXPECT_FALSE(either.value()->EvalBool({Value(3), Value(0)}));
}

TEST(ExprEvalTest, NotInverts) {
  auto bound = BindSimple(Not(Eq(Col("a", "x"), Lit(Value(1)))));
  ASSERT_TRUE(bound.ok());
  EXPECT_FALSE(bound.value()->EvalBool({Value(1), Value(0)}));
  EXPECT_TRUE(bound.value()->EvalBool({Value(2), Value(0)}));
}

TEST(ExprEvalTest, ParamSubstitution) {
  std::map<std::string, Value> params = {{"p", Value(9)}};
  auto bound = BindSimple(Eq(Col("a", "x"), Param("p")), &params);
  ASSERT_TRUE(bound.ok());
  EXPECT_TRUE(bound.value()->EvalBool({Value(9), Value(0)}));
}

TEST(ExprEvalTest, MissingParamFailsBinding) {
  std::map<std::string, Value> params;
  auto bound = BindSimple(Eq(Col("a", "x"), Param("p")), &params);
  EXPECT_EQ(bound.status().code(), StatusCode::kBindError);
  auto no_params = BindSimple(Param("p"));
  EXPECT_EQ(no_params.status().code(), StatusCode::kBindError);
}

TEST(ExprEvalTest, UdfEvaluation) {
  UdfRegistry udfs;
  ASSERT_TRUE(udfs.Register("twice", [](const std::vector<Value>& args) {
                    return Value(args[0].AsInt64() * 2);
                  }).ok());
  auto bound = BindSimple(Eq(Udf("twice", {Col("a", "x")}), Lit(Value(10))),
                          nullptr, &udfs);
  ASSERT_TRUE(bound.ok());
  EXPECT_TRUE(bound.value()->EvalBool({Value(5), Value(0)}));
  EXPECT_FALSE(bound.value()->EvalBool({Value(6), Value(0)}));
}

TEST(ExprEvalTest, UnregisteredUdfFailsBinding) {
  UdfRegistry udfs;
  auto bound = BindSimple(Udf("nope", {Col("a", "x")}), nullptr, &udfs);
  EXPECT_EQ(bound.status().code(), StatusCode::kBindError);
  auto no_registry = BindSimple(Udf("nope", {Col("a", "x")}));
  EXPECT_EQ(no_registry.status().code(), StatusCode::kBindError);
}

TEST(UdfRegistryTest, DuplicateRegistrationRejected) {
  UdfRegistry udfs;
  auto fn = [](const std::vector<Value>&) { return Value(1); };
  EXPECT_TRUE(udfs.Register("f", fn).ok());
  EXPECT_EQ(udfs.Register("f", fn).code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(udfs.Has("f"));
  EXPECT_FALSE(udfs.Has("g"));
}

// --- Predicate analysis ----------------------------------------------------------

TEST(AnalysisTest, SingleSimplePredicateNoPushdown) {
  PredicateShape shape =
      AnalyzePredicates({Eq(Col("a", "x"), Lit(Value(1)))});
  EXPECT_EQ(shape.num_conjuncts, 1);
  EXPECT_FALSE(shape.has_udf);
  EXPECT_FALSE(shape.has_param);
  EXPECT_FALSE(shape.RequiresPushDown());
}

TEST(AnalysisTest, MultiplePredicatesRequirePushdown) {
  PredicateShape shape = AnalyzePredicates(
      {Eq(Col("a", "x"), Lit(Value(1))), Eq(Col("a", "y"), Lit(Value(2)))});
  EXPECT_EQ(shape.num_conjuncts, 2);
  EXPECT_TRUE(shape.RequiresPushDown());
}

TEST(AnalysisTest, UdfRequiresPushdown) {
  PredicateShape shape =
      AnalyzePredicates({Eq(Udf("f", {Col("a", "x")}), Lit(Value(1)))});
  EXPECT_TRUE(shape.has_udf);
  EXPECT_TRUE(shape.RequiresPushDown());
}

TEST(AnalysisTest, ParamRequiresPushdown) {
  PredicateShape shape = AnalyzePredicates({Eq(Col("a", "x"), Param("p"))});
  EXPECT_TRUE(shape.has_param);
  EXPECT_TRUE(shape.RequiresPushDown());
}

TEST(AnalysisTest, NestedAndCountsConjuncts) {
  PredicateShape shape = AnalyzePredicates(
      {And({Eq(Col("a", "x"), Lit(Value(1))),
            Between(Col("a", "y"), Lit(Value(0)), Param("q"))})});
  EXPECT_EQ(shape.num_conjuncts, 2);
  EXPECT_TRUE(shape.has_param);
}

TEST(AnalysisTest, ExtractSimpleComparison) {
  auto cond = ExtractSimpleCondition(
      Cmp(CompareOp::kLt, Col("a", "x"), Lit(Value(5))));
  ASSERT_TRUE(cond.has_value());
  EXPECT_EQ(cond->column, "a.x");
  EXPECT_EQ(cond->op, CompareOp::kLt);
  EXPECT_EQ(cond->value, Value(5));
  EXPECT_FALSE(cond->is_between);
}

TEST(AnalysisTest, ExtractFlipsReversedComparison) {
  // 5 < a.x  ==  a.x > 5.
  auto cond = ExtractSimpleCondition(
      Cmp(CompareOp::kLt, Lit(Value(5)), Col("a", "x")));
  ASSERT_TRUE(cond.has_value());
  EXPECT_EQ(cond->op, CompareOp::kGt);
}

TEST(AnalysisTest, ExtractBetween) {
  auto cond = ExtractSimpleCondition(
      Between(Col("a", "x"), Lit(Value(1)), Lit(Value(9))));
  ASSERT_TRUE(cond.has_value());
  EXPECT_TRUE(cond->is_between);
  EXPECT_EQ(cond->lo, Value(1));
  EXPECT_EQ(cond->hi, Value(9));
}

TEST(AnalysisTest, ComplexShapesNotExtractable) {
  EXPECT_FALSE(ExtractSimpleCondition(
                   Eq(Udf("f", {Col("a", "x")}), Lit(Value(1))))
                   .has_value());
  EXPECT_FALSE(
      ExtractSimpleCondition(Eq(Col("a", "x"), Param("p"))).has_value());
  EXPECT_FALSE(ExtractSimpleCondition(Eq(Col("a", "x"), Col("a", "y")))
                   .has_value());
  EXPECT_FALSE(ExtractSimpleCondition(
                   Or({Eq(Col("a", "x"), Lit(Value(1))),
                       Eq(Col("a", "x"), Lit(Value(2)))}))
                   .has_value());
}

}  // namespace
}  // namespace dynopt
