#include <gtest/gtest.h>

#include <memory>

#include "common/random.h"
#include "exec/engine.h"
#include "opt/dynamic_optimizer.h"
#include "opt/pilot_run_optimizer.h"
#include "workloads/tpcds.h"
#include "workloads/tpch.h"

namespace dynopt {
namespace {

class PilotRunTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    engine_ = new Engine();
    TpchOptions tpch;
    tpch.sf = 0.3;
    ASSERT_TRUE(LoadTpch(engine_, tpch).ok());
    TpcdsOptions tpcds;
    tpcds.sf = 0.3;
    ASSERT_TRUE(LoadTpcds(engine_, tpcds).ok());
  }
  static void TearDownTestSuite() {
    delete engine_;
    engine_ = nullptr;
  }
  static Engine* engine_;
};

Engine* PilotRunTest::engine_ = nullptr;

TEST_F(PilotRunTest, TraceShowsPilotRunsAndAdjustment) {
  auto query = TpchQ9(engine_);
  ASSERT_TRUE(query.ok());
  PilotRunOptimizer optimizer(engine_);
  auto result = optimizer.Run(query.value());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // One pilot line per base dataset, an initial plan, one executed join,
  // and an adjusted plan.
  for (const char* alias : {"p", "s", "l", "ps", "o", "n"}) {
    EXPECT_NE(result->plan_trace.find(std::string("[pilot-run] ") + alias +
                                      ":"),
              std::string::npos)
        << "missing pilot run for " << alias << "\n"
        << result->plan_trace;
  }
  EXPECT_NE(result->plan_trace.find("initial plan:"), std::string::npos);
  EXPECT_NE(result->plan_trace.find("executed "), std::string::npos);
  EXPECT_NE(result->plan_trace.find("adjusted plan:"), std::string::npos);
}

TEST_F(PilotRunTest, SampleLimitBoundsScannedRows) {
  auto query = TpchQ9(engine_);
  ASSERT_TRUE(query.ok());
  PilotRunOptions small;
  small.sample_limit = 10;
  PilotRunOptimizer small_optimizer(engine_, small);
  auto small_result = small_optimizer.Run(query.value());
  ASSERT_TRUE(small_result.ok());

  PilotRunOptions large;
  large.sample_limit = 100000;  // Effectively full scans.
  PilotRunOptimizer large_optimizer(engine_, large);
  auto large_result = large_optimizer.Run(query.value());
  ASSERT_TRUE(large_result.ok());

  // Same answers either way.
  SortRows(&small_result->rows);
  SortRows(&large_result->rows);
  EXPECT_EQ(small_result->rows, large_result->rows);
}

TEST_F(PilotRunTest, ExactlyOneReoptPoint) {
  auto query = TpcdsQ17(engine_);
  ASSERT_TRUE(query.ok());
  PilotRunOptimizer optimizer(engine_);
  auto result = optimizer.Run(query.value());
  ASSERT_TRUE(result.ok());
  // Pilot-run materializes only its first join.
  EXPECT_EQ(result->metrics.num_reopt_points, 1);
}

TEST_F(PilotRunTest, NoTempLeaks) {
  auto query = TpcdsQ50(engine_, 9, 1999);
  ASSERT_TRUE(query.ok());
  size_t before = engine_->catalog().TableNames().size();
  PilotRunOptimizer optimizer(engine_);
  ASSERT_TRUE(optimizer.Run(query.value()).ok());
  EXPECT_EQ(engine_->catalog().TableNames().size(), before);
}

TEST_F(PilotRunTest, AgreesWithDynamicOnAllQueries) {
  for (const char* q : {"q17", "q50", "q8", "q9"}) {
    Result<QuerySpec> query = std::string(q) == "q17"
                                  ? TpcdsQ17(engine_)
                              : std::string(q) == "q50"
                                  ? TpcdsQ50(engine_, 9, 1999)
                              : std::string(q) == "q8" ? TpchQ8(engine_)
                                                       : TpchQ9(engine_);
    ASSERT_TRUE(query.ok());
    DynamicOptimizer dynamic(engine_);
    auto dyn = dynamic.Run(query.value());
    ASSERT_TRUE(dyn.ok());
    PilotRunOptimizer pilot(engine_);
    auto pr = pilot.Run(query.value());
    ASSERT_TRUE(pr.ok()) << q << ": " << pr.status().ToString();
    SortRows(&dyn->rows);
    SortRows(&pr->rows);
    EXPECT_EQ(dyn->rows, pr->rows) << q;
  }
}

/// Q50 parameter sweep: every (moy, year) combination the paper's
/// myrand() ranges can produce must agree across dynamic and pilot-run.
class Q50ParamSweepTest
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t>> {};

INSTANTIATE_TEST_SUITE_P(
    Params, Q50ParamSweepTest,
    ::testing::Combine(::testing::Values(int64_t{8}, int64_t{9}, int64_t{10}),
                       ::testing::Values(int64_t{1998}, int64_t{1999},
                                         int64_t{2000})));

TEST_P(Q50ParamSweepTest, DynamicAndPilotAgree) {
  Engine local;
  TpcdsOptions options;
  options.sf = 0.2;
  ASSERT_TRUE(LoadTpcds(&local, options).ok());
  auto [moy, year] = GetParam();
  auto query = TpcdsQ50(&local, moy, year);
  ASSERT_TRUE(query.ok());
  DynamicOptimizer dynamic(&local);
  auto dyn = dynamic.Run(query.value());
  ASSERT_TRUE(dyn.ok()) << dyn.status().ToString();
  PilotRunOptimizer pilot(&local);
  auto pr = pilot.Run(query.value());
  ASSERT_TRUE(pr.ok()) << pr.status().ToString();
  SortRows(&dyn->rows);
  SortRows(&pr->rows);
  EXPECT_EQ(dyn->rows, pr->rows) << "moy=" << moy << " year=" << year;
  // Hot months (returns concentrate in 8-10) must actually return rows.
  EXPECT_FALSE(dyn->rows.empty());
}

}  // namespace
}  // namespace dynopt
