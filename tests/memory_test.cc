// Memory governance:
//  - MemoryTracker hierarchy semantics (soft-fail TryReserve with rollback,
//    unchecked over-subscription, saturating release, peak watermark);
//  - grace hash join: a per-node join budget forces a spill to disk, the
//    result is identical to the in-memory join, spill files are reclaimed;
//  - metering identity: with no budget configured, attaching a QueryContext
//    must not change the simulated cost by a single bit.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>

#include "common/memory_tracker.h"
#include "common/query_context.h"
#include "common/random.h"
#include "exec/engine.h"
#include "opt/dynamic_optimizer.h"
#include "opt/optimizer.h"
#include "opt/static_optimizer.h"
#include "storage/serde.h"

namespace dynopt {
namespace {

TEST(MemoryTrackerTest, BudgetEnforcedAndReleased) {
  MemoryTracker t(100);
  EXPECT_TRUE(t.TryReserve(60));
  EXPECT_EQ(t.used(), 60u);
  EXPECT_EQ(t.available(), 40u);
  EXPECT_FALSE(t.TryReserve(50));
  EXPECT_EQ(t.used(), 60u);  // Failed reserve leaves nothing behind.
  t.Release(60);
  EXPECT_TRUE(t.TryReserve(100));
  EXPECT_EQ(t.available(), 0u);
}

TEST(MemoryTrackerTest, ZeroBudgetIsUnlimited) {
  MemoryTracker t(0);
  EXPECT_TRUE(t.TryReserve(uint64_t{1} << 50));
  EXPECT_EQ(t.available(), ~uint64_t{0});
}

TEST(MemoryTrackerTest, HierarchyPropagatesAndRollsBack) {
  MemoryTracker engine(100, nullptr, "engine");
  MemoryTracker q1(0, &engine, "q1");
  MemoryTracker q2(0, &engine, "q2");
  EXPECT_TRUE(q1.TryReserve(80));
  EXPECT_EQ(engine.used(), 80u);
  // q2 is unlimited locally but the engine budget refuses; q2 must stay
  // untouched (local reservation rolled back).
  EXPECT_FALSE(q2.TryReserve(30));
  EXPECT_EQ(q2.used(), 0u);
  EXPECT_EQ(engine.used(), 80u);
  q1.Release(80);
  EXPECT_TRUE(q2.TryReserve(30));
  EXPECT_EQ(engine.used(), 30u);
}

TEST(MemoryTrackerTest, UncheckedOversubscriptionIsVisible) {
  MemoryTracker t(10);
  t.ReserveUnchecked(25);
  EXPECT_EQ(t.used(), 25u);    // Over budget, on purpose, and visible.
  EXPECT_EQ(t.available(), 0u);
  EXPECT_FALSE(t.TryReserve(1));
  t.Release(25);
  EXPECT_EQ(t.used(), 0u);
}

TEST(MemoryTrackerTest, PeakWatermarkAndSaturatingRelease) {
  MemoryTracker t(0);
  t.ReserveUnchecked(40);
  t.Release(10);
  t.ReserveUnchecked(5);
  EXPECT_EQ(t.used(), 35u);
  EXPECT_EQ(t.peak(), 40u);
  t.Release(1000);  // Mismatched release clamps at zero, never wraps.
  EXPECT_EQ(t.used(), 0u);
  EXPECT_EQ(t.peak(), 40u);
  t.ResetPeak();
  EXPECT_EQ(t.peak(), 0u);
}

TEST(MemoryTrackerTest, DestructorReturnsLeftoverToParent) {
  MemoryTracker engine(0, nullptr, "engine");
  {
    MemoryTracker q(0, &engine, "q");
    q.ReserveUnchecked(64);
    EXPECT_EQ(engine.used(), 64u);
  }
  EXPECT_EQ(engine.used(), 0u);
}

TEST(MemoryReservationTest, RaiiReleasesOnScopeExit) {
  MemoryTracker t(100);
  {
    MemoryReservation r(&t);
    EXPECT_TRUE(r.TryGrow(70));
    EXPECT_FALSE(r.TryGrow(70));
    EXPECT_EQ(r.bytes(), 70u);
    EXPECT_EQ(t.used(), 70u);
  }
  EXPECT_EQ(t.used(), 0u);
}

TEST(MemoryReservationTest, NullTrackerIsVacuouslyGranted) {
  MemoryReservation r(nullptr);
  EXPECT_TRUE(r.TryGrow(uint64_t{1} << 60));
  r.GrowUnchecked(123);
  EXPECT_EQ(r.bytes(), 0u);
}

/// Fixture for spill tests: two unpartitioned tables joined on `k`, with a
/// dedicated spill directory so leftover files are detectable.
class GraceJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    spill_dir_ = ::testing::TempDir() + "dynopt_spill_test";
    std::filesystem::create_directories(spill_dir_);
    engine_ = std::make_unique<Engine>();
    engine_->mutable_cluster().spill_directory = spill_dir_;
    Rng rng(23);
    auto make = [&](const std::string& name, int rows, int domain) {
      auto t = std::make_shared<Table>(
          name,
          Schema({{"k", ValueType::kInt64}, {"pad", ValueType::kString}}),
          engine_->cluster().num_nodes);
      for (int i = 0; i < rows; ++i) {
        t->AppendRow({Value(rng.NextInt64(0, domain - 1)),
                      Value("payload_" + std::to_string(i % 53))});
      }
      ASSERT_TRUE(engine_->catalog().RegisterTable(t).ok());
    };
    make("b", 4000, 700);
    make("p", 8000, 700);
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(spill_dir_, ec);
  }

  Result<JobResult> RunJoin(uint64_t join_budget, QueryContext* ctx,
                            int fanout = 32) {
    engine_->mutable_cluster().memory.join_memory_budget_bytes = join_budget;
    engine_->mutable_cluster().memory.max_spill_fanout = fanout;
    auto plan = PlanNode::Join(JoinMethod::kHashShuffle,
                               PlanNode::Scan("b", "b"),
                               PlanNode::Scan("p", "p"), {{"b.k", "p.k"}});
    JobExecutor executor = engine_->MakeExecutor(ctx);
    return executor.Execute(*plan, {});
  }

  std::string spill_dir_;
  std::unique_ptr<Engine> engine_;
};

TEST_F(GraceJoinTest, SpilledJoinMatchesInMemoryJoin) {
  auto unlimited = RunJoin(0, nullptr);
  ASSERT_TRUE(unlimited.ok()) << unlimited.status().ToString();
  EXPECT_EQ(unlimited->metrics.spilled_bytes, 0u);

  QueryContext ctx("spilled");
  auto spilled = RunJoin(16 * 1024, &ctx);
  ASSERT_TRUE(spilled.ok()) << spilled.status().ToString();
  EXPECT_GT(spilled->metrics.spilled_bytes, 0u);
  EXPECT_GT(spilled->metrics.spill_partitions, 0u);
  EXPECT_GT(spilled->metrics.peak_memory_bytes, 0u);
  // Spilling costs simulated disk time; it must never be free.
  EXPECT_GT(spilled->metrics.simulated_seconds,
            unlimited->metrics.simulated_seconds);

  std::vector<Row> a = unlimited->data.GatherRows();
  std::vector<Row> b = spilled->data.GatherRows();
  SortRows(&a);
  SortRows(&b);
  EXPECT_EQ(a, b);

  // Every spill run was read back and deleted.
  EXPECT_EQ(CountFilesWithPrefix(spill_dir_, "__spill_"), 0);
}

TEST_F(GraceJoinTest, TinyBudgetForcesRecursionAndStillMatches) {
  auto unlimited = RunJoin(0, nullptr);
  ASSERT_TRUE(unlimited.ok()) << unlimited.status().ToString();

  // A 1KB budget with fanout 2 cannot fit any partition after one split,
  // so the join recurses several levels before leafing out.
  QueryContext ctx("recursive");
  auto spilled = RunJoin(1024, &ctx, /*fanout=*/2);
  ASSERT_TRUE(spilled.ok()) << spilled.status().ToString();
  EXPECT_GT(spilled->metrics.spill_partitions, 1u);

  std::vector<Row> a = unlimited->data.GatherRows();
  std::vector<Row> b = spilled->data.GatherRows();
  SortRows(&a);
  SortRows(&b);
  EXPECT_EQ(a, b);
  EXPECT_EQ(CountFilesWithPrefix(spill_dir_, "__spill_"), 0);
}

TEST_F(GraceJoinTest, DuplicateHeavyKeyDegradesToInMemory) {
  // All build rows share one key: partitioning can never shrink the run,
  // so recursion must bottom out at max_spill_recursion and finish the
  // join in memory rather than looping forever.
  auto t = std::make_shared<Table>(
      "dup", Schema({{"k", ValueType::kInt64}, {"pad", ValueType::kString}}),
      engine_->cluster().num_nodes);
  for (int i = 0; i < 600; ++i) {
    t->AppendRow({Value(int64_t{7}), Value("x" + std::to_string(i % 31))});
  }
  ASSERT_TRUE(engine_->catalog().RegisterTable(t).ok());

  engine_->mutable_cluster().memory.join_memory_budget_bytes = 1024;
  engine_->mutable_cluster().memory.max_spill_fanout = 2;
  auto plan = PlanNode::Join(JoinMethod::kHashShuffle,
                             PlanNode::Scan("dup", "d"),
                             PlanNode::Scan("dup", "e"), {{"d.k", "e.k"}});
  QueryContext ctx("dup-key");
  JobExecutor executor = engine_->MakeExecutor(&ctx);
  auto result = executor.Execute(*plan, {});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->data.NumRows(), uint64_t{600} * 600);
  EXPECT_EQ(CountFilesWithPrefix(spill_dir_, "__spill_"), 0);
}

TEST_F(GraceJoinTest, UngovernedContextDoesNotChangeMetering) {
  auto bare = RunJoin(0, nullptr);
  ASSERT_TRUE(bare.ok());

  QueryContext ctx("accounting-only");
  auto tracked = RunJoin(0, &ctx);
  ASSERT_TRUE(tracked.ok());

  // Bit-identical simulated cost; the context only adds accounting.
  EXPECT_EQ(bare->metrics.simulated_seconds,
            tracked->metrics.simulated_seconds);
  EXPECT_EQ(bare->metrics.bytes_shuffled, tracked->metrics.bytes_shuffled);
  EXPECT_EQ(tracked->metrics.spilled_bytes, 0u);
  EXPECT_GT(tracked->metrics.peak_memory_bytes, 0u);
  EXPECT_EQ(bare->metrics.peak_memory_bytes, 0u);
}

TEST_F(GraceJoinTest, OptimizerRunsUnderTightBudgetMatchUnlimited) {
  // End-to-end: the dynamic and static optimizers produce identical rows
  // with and without a budget that forces their joins through the spill
  // path (single query: spilling degrades, never refuses).
  for (const char* name : {"r", "s"}) {
    auto t = std::make_shared<Table>(
        name, Schema({{"k", ValueType::kInt64}, {"v", ValueType::kInt64}}),
        engine_->cluster().num_nodes);
    Rng rng(name[0]);
    ASSERT_TRUE(t->SetPartitionKey({"k"}).ok());
    for (int i = 0; i < 2000; ++i) {
      t->AppendRow({Value(rng.NextInt64(0, 99)), Value(rng.NextInt64(0, 9))});
    }
    ASSERT_TRUE(engine_->catalog().RegisterTable(t).ok());
    ASSERT_TRUE(engine_->CollectBaseStats(name, {"k", "v"}).ok());
  }
  QuerySpec spec;
  spec.tables = {{"r", "r", false, false, {}}, {"s", "s", false, false, {}}};
  spec.joins = {{"r", "s", {{"r.k", "s.k"}}}};
  spec.projections = {"r.v", "s.v"};
  spec.NormalizeJoins();

  engine_->mutable_cluster().memory.join_memory_budget_bytes = 0;
  DynamicOptimizer dyn_free(engine_.get());
  auto baseline = dyn_free.Run(spec);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  SortRows(&baseline->rows);

  engine_->mutable_cluster().memory.join_memory_budget_bytes = 4 * 1024;
  for (int which = 0; which < 2; ++which) {
    QueryContext ctx("tight");
    std::unique_ptr<Optimizer> opt;
    if (which == 0) {
      opt = std::make_unique<DynamicOptimizer>(engine_.get());
    } else {
      opt = std::make_unique<StaticCostBasedOptimizer>(engine_.get());
    }
    opt->set_context(&ctx);
    auto run = opt->Run(spec);
    ASSERT_TRUE(run.ok()) << opt->name() << ": " << run.status().ToString();
    SortRows(&run->rows);
    EXPECT_EQ(run->rows, baseline->rows) << opt->name();
    EXPECT_GT(run->metrics.spilled_bytes, 0u) << opt->name();
  }
  EXPECT_EQ(CountFilesWithPrefix(spill_dir_, "__spill_"), 0);
}

}  // namespace
}  // namespace dynopt
