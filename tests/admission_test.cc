// Admission control under real concurrency (run under TSan in CI):
//  - N >= 8 queries racing through the controller produce the same rows as
//    a serial run, with at most max_concurrent_queries in flight at once;
//  - queue overflow and queue timeout surface kResourceExhausted;
//  - a query cancelled while queued leaves with kCancelled;
//  - admitted queries carry their queue wait and an engine-parented
//    memory tracker.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/query_context.h"
#include "common/random.h"
#include "exec/engine.h"
#include "opt/dynamic_optimizer.h"
#include "opt/optimizer.h"

namespace dynopt {
namespace {

class AdmissionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = std::make_unique<Engine>();
    Rng rng(47);
    for (const char* name : {"u", "w"}) {
      auto t = std::make_shared<Table>(
          name, Schema({{"k", ValueType::kInt64}, {"v", ValueType::kInt64}}),
          engine_->cluster().num_nodes);
      ASSERT_TRUE(t->SetPartitionKey({"k"}).ok());
      for (int i = 0; i < 800; ++i) {
        t->AppendRow(
            {Value(rng.NextInt64(0, 59)), Value(rng.NextInt64(0, 9))});
      }
      ASSERT_TRUE(engine_->catalog().RegisterTable(t).ok());
      ASSERT_TRUE(engine_->CollectBaseStats(name, {"k", "v"}).ok());
    }
  }

  QuerySpec JoinQuery(int64_t v_limit) {
    QuerySpec spec;
    spec.tables = {{"u", "u", false, false, {}}, {"w", "w", false, false, {}}};
    spec.joins = {{"u", "w", {{"u.k", "w.k"}}}};
    spec.projections = {"u.v", "w.v"};
    spec.predicates.push_back(
        {"u", Cmp(CompareOp::kLt, Col("u", "v"), Lit(Value(v_limit)))});
    spec.NormalizeJoins();
    return spec;
  }

  std::unique_ptr<Engine> engine_;
};

TEST_F(AdmissionTest, ConcurrentQueriesMatchSerialExecution) {
  constexpr int kQueries = 10;
  engine_->mutable_cluster().admission.max_concurrent_queries = 3;
  engine_->mutable_cluster().admission.max_queue_depth = kQueries;
  engine_->mutable_cluster().admission.queue_timeout_seconds = 60.0;
  engine_->mutable_cluster().memory.engine_budget_bytes = 64 << 20;
  engine_->mutable_cluster().memory.query_reservation_bytes = 1 << 20;
  engine_->RearmAdmission();

  // Serial baseline, one spec per distinct predicate.
  std::vector<std::vector<Row>> expected(kQueries);
  for (int q = 0; q < kQueries; ++q) {
    DynamicOptimizer opt(engine_.get());
    auto run = opt.Run(JoinQuery(1 + q % 5));
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    expected[static_cast<size_t>(q)] = std::move(run->rows);
    SortRows(&expected[static_cast<size_t>(q)]);
  }

  std::atomic<int> in_flight{0};
  std::atomic<int> max_in_flight{0};
  std::atomic<int> failures{0};
  std::vector<std::vector<Row>> actual(kQueries);
  std::vector<std::thread> threads;
  threads.reserve(kQueries);
  for (int q = 0; q < kQueries; ++q) {
    threads.emplace_back([&, q]() {
      QueryContext ctx("concurrent-" + std::to_string(q));
      auto ticket = engine_->admission().Admit(&ctx);
      if (!ticket.ok()) {
        ++failures;
        return;
      }
      int now = ++in_flight;
      int seen = max_in_flight.load();
      while (now > seen && !max_in_flight.compare_exchange_weak(seen, now)) {
      }
      DynamicOptimizer opt(engine_.get());
      opt.set_context(&ctx);
      auto run = opt.Run(JoinQuery(1 + q % 5));
      --in_flight;
      if (!run.ok()) {
        ++failures;
        return;
      }
      actual[static_cast<size_t>(q)] = std::move(run->rows);
      SortRows(&actual[static_cast<size_t>(q)]);
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_LE(max_in_flight.load(),
            engine_->cluster().admission.max_concurrent_queries);
  for (int q = 0; q < kQueries; ++q) {
    EXPECT_EQ(actual[static_cast<size_t>(q)], expected[static_cast<size_t>(q)])
        << "query " << q << " diverged under concurrency";
  }
  // Every ticket released its slot and reservation.
  EXPECT_EQ(engine_->admission().running(), 0);
  EXPECT_EQ(engine_->admission().queued(), 0);
  EXPECT_EQ(engine_->memory().used(), 0u);
}

TEST_F(AdmissionTest, QueueOverflowBouncesImmediately) {
  engine_->mutable_cluster().admission.max_concurrent_queries = 1;
  engine_->mutable_cluster().admission.max_queue_depth = 1;
  engine_->mutable_cluster().admission.queue_timeout_seconds = 60.0;
  engine_->RearmAdmission();

  QueryContext first("first");
  auto holder = engine_->admission().Admit(&first);
  ASSERT_TRUE(holder.ok());

  // One waiter fills the queue...
  QueryContext queued_ctx("queued");
  std::thread waiter([&]() {
    auto t = engine_->admission().Admit(&queued_ctx);
    // Released immediately on grant (after the overflow check below).
  });
  while (engine_->admission().queued() < 1) {
    std::this_thread::yield();
  }

  // ...so the next arrival must bounce without blocking.
  QueryContext overflow_ctx("overflow");
  auto overflow = engine_->admission().Admit(&overflow_ctx);
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kResourceExhausted);

  holder->Release();
  waiter.join();
}

TEST_F(AdmissionTest, QueueTimeoutIsResourceExhausted) {
  engine_->mutable_cluster().admission.max_concurrent_queries = 1;
  engine_->mutable_cluster().admission.max_queue_depth = 4;
  engine_->mutable_cluster().admission.queue_timeout_seconds = 0.05;
  engine_->RearmAdmission();

  QueryContext first("first");
  auto holder = engine_->admission().Admit(&first);
  ASSERT_TRUE(holder.ok());

  QueryContext starved("starved");
  auto result = engine_->admission().Admit(&starved);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(engine_->admission().queued(), 0);
}

TEST_F(AdmissionTest, CancelWhileQueuedIsCancelled) {
  engine_->mutable_cluster().admission.max_concurrent_queries = 1;
  engine_->mutable_cluster().admission.max_queue_depth = 4;
  engine_->mutable_cluster().admission.queue_timeout_seconds = 60.0;
  engine_->RearmAdmission();

  QueryContext first("first");
  auto holder = engine_->admission().Admit(&first);
  ASSERT_TRUE(holder.ok());

  QueryContext victim("victim");
  std::thread canceller([&]() {
    while (engine_->admission().queued() < 1) {
      std::this_thread::yield();
    }
    victim.Cancel("impatient client");
  });
  auto result = engine_->admission().Admit(&victim);
  canceller.join();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(engine_->admission().queued(), 0);
}

TEST_F(AdmissionTest, AdmissionAttachesMemoryAndRecordsWait) {
  engine_->mutable_cluster().admission.max_concurrent_queries = 2;
  engine_->mutable_cluster().memory.engine_budget_bytes = 8 << 20;
  engine_->mutable_cluster().memory.query_reservation_bytes = 1 << 20;
  engine_->RearmAdmission();

  QueryContext ctx("admitted");
  auto ticket = engine_->admission().Admit(&ctx);
  ASSERT_TRUE(ticket.ok());
  EXPECT_TRUE(ticket->admitted());
  EXPECT_GE(ctx.queue_wait_seconds, 0.0);
  // Query tracker now parents into the engine tracker with the per-query
  // reservation as its budget; the reservation itself is visible engine-side.
  EXPECT_EQ(ctx.memory().parent(), &engine_->memory());
  EXPECT_EQ(ctx.memory().budget(), uint64_t{1} << 20);
  EXPECT_EQ(engine_->memory().used(), uint64_t{1} << 20);
  ticket->Release();
  EXPECT_EQ(engine_->memory().used(), 0u);
  EXPECT_EQ(engine_->admission().running(), 0);
}

TEST_F(AdmissionTest, EngineBudgetLimitsAdmissions) {
  // Budget backs only two reservations: the third admission must wait and
  // (with a short timeout) give up with kResourceExhausted even though
  // concurrency slots are free.
  engine_->mutable_cluster().admission.max_concurrent_queries = 8;
  engine_->mutable_cluster().admission.queue_timeout_seconds = 0.05;
  engine_->mutable_cluster().memory.engine_budget_bytes = 2 << 20;
  engine_->mutable_cluster().memory.query_reservation_bytes = 1 << 20;
  engine_->RearmAdmission();

  QueryContext a("a"), b("b"), c("c");
  auto ta = engine_->admission().Admit(&a);
  auto tb = engine_->admission().Admit(&b);
  ASSERT_TRUE(ta.ok());
  ASSERT_TRUE(tb.ok());
  auto tc = engine_->admission().Admit(&c);
  ASSERT_FALSE(tc.ok());
  EXPECT_EQ(tc.status().code(), StatusCode::kResourceExhausted);

  ta->Release();
  auto retry = engine_->admission().Admit(&c);
  EXPECT_TRUE(retry.ok());
}

}  // namespace
}  // namespace dynopt
