#include <gtest/gtest.h>

#include <cstdio>
#include <limits>

#include "common/random.h"
#include "exec/engine.h"
#include "opt/dynamic_optimizer.h"
#include "storage/serde.h"
#include "workloads/tpcds.h"

namespace dynopt {
namespace {

// --- Value round trips ----------------------------------------------------

TEST(SerdeTest, ScalarRoundTrips) {
  const Value values[] = {Value::Null(),
                          Value(true),
                          Value(false),
                          Value(int64_t{0}),
                          Value(int64_t{-1}),
                          Value(std::numeric_limits<int64_t>::max()),
                          Value(std::numeric_limits<int64_t>::min()),
                          Value(0.0),
                          Value(-3.25),
                          Value(1e300),
                          Value(std::string("")),
                          Value(std::string("hello world")),
                          Value(std::string(100000, 'x'))};
  for (const Value& v : values) {
    std::string buffer;
    EncodeValue(v, &buffer);
    size_t offset = 0;
    auto decoded = DecodeValue(buffer, &offset);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value(), v);
    EXPECT_EQ(decoded->type(), v.type());
    EXPECT_EQ(offset, buffer.size());
  }
}

TEST(SerdeTest, StringWithEmbeddedZerosAndHighBytes) {
  std::string raw("a\0b\xff\x80 c", 7);
  Value v(raw);
  std::string buffer;
  EncodeValue(v, &buffer);
  size_t offset = 0;
  auto decoded = DecodeValue(buffer, &offset);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->AsString(), raw);
}

TEST(SerdeTest, RowRoundTrip) {
  Row row = {Value(int64_t{42}), Value::Null(), Value("x"), Value(2.5),
             Value(true)};
  std::string buffer;
  EncodeRow(row, &buffer);
  size_t offset = 0;
  auto decoded = DecodeRow(buffer, &offset);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), row);
}

class SerdeRandomTest : public ::testing::TestWithParam<uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, SerdeRandomTest,
                         ::testing::Range(uint64_t{0}, uint64_t{8}));

TEST_P(SerdeRandomTest, RandomRowBatchesRoundTrip) {
  Rng rng(GetParam());
  std::vector<Row> rows;
  const size_t n = rng.NextUint64(200) + 1;
  for (size_t i = 0; i < n; ++i) {
    Row row;
    const size_t width = rng.NextUint64(8) + 1;
    for (size_t c = 0; c < width; ++c) {
      switch (rng.NextUint64(5)) {
        case 0:
          row.push_back(Value::Null());
          break;
        case 1:
          row.push_back(Value(rng.NextBool(0.5)));
          break;
        case 2:
          row.push_back(
              Value(static_cast<int64_t>(rng.Next())));
          break;
        case 3:
          row.push_back(Value(rng.NextDouble() * 1e9 - 5e8));
          break;
        default: {
          std::string s;
          size_t len = rng.NextUint64(40);
          for (size_t k = 0; k < len; ++k) {
            s.push_back(static_cast<char>(rng.NextUint64(256)));
          }
          row.push_back(Value(std::move(s)));
        }
      }
    }
    rows.push_back(std::move(row));
  }
  auto decoded = DecodeRows(EncodeRows(rows));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value(), rows);
}

// --- Corruption handling -----------------------------------------------------

TEST(SerdeTest, TruncatedBuffersError) {
  Row row = {Value(int64_t{1}), Value("abcdef")};
  std::string buffer;
  EncodeRow(row, &buffer);
  for (size_t cut = 0; cut < buffer.size(); ++cut) {
    std::string truncated = buffer.substr(0, cut);
    size_t offset = 0;
    auto decoded = DecodeRow(truncated, &offset);
    EXPECT_FALSE(decoded.ok()) << "cut at " << cut;
  }
}

TEST(SerdeTest, UnknownTagErrors) {
  std::string buffer;
  buffer.push_back(static_cast<char>(0x7e));
  size_t offset = 0;
  EXPECT_FALSE(DecodeValue(buffer, &offset).ok());
}

TEST(SerdeTest, TrailingBytesRejected) {
  std::vector<Row> rows = {{Value(int64_t{1})}};
  std::string buffer = EncodeRows(rows);
  buffer.push_back('x');
  EXPECT_FALSE(DecodeRows(buffer).ok());
}

// --- File I/O -----------------------------------------------------------------

TEST(SerdeTest, FileRoundTrip) {
  std::vector<Row> rows = {{Value(int64_t{1}), Value("a")},
                           {Value(int64_t{2}), Value::Null()}};
  std::string path = "/tmp/dynopt_serde_test.rows";
  ASSERT_TRUE(WriteRowsFile(path, rows).ok());
  auto back = ReadRowsFile(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value(), rows);
  std::remove(path.c_str());
  EXPECT_EQ(ReadRowsFile(path).status().code(), StatusCode::kNotFound);
}

// --- Disk-backed materialization through the full optimizer -------------------

TEST(SerdeTest, DiskBackedMaterializationMatchesInMemory) {
  auto run = [](bool to_disk) {
    Engine engine;
    engine.mutable_cluster().materialize_to_disk = to_disk;
    TpcdsOptions options;
    options.sf = 0.2;
    EXPECT_TRUE(LoadTpcds(&engine, options).ok());
    auto query = TpcdsQ17(&engine);
    EXPECT_TRUE(query.ok());
    DynamicOptimizer optimizer(&engine);
    auto result = optimizer.Run(query.value());
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? result->rows : std::vector<Row>{};
  };
  std::vector<Row> in_memory = run(false);
  std::vector<Row> on_disk = run(true);
  ASSERT_FALSE(in_memory.empty());
  EXPECT_EQ(in_memory, on_disk);
}

}  // namespace
}  // namespace dynopt
