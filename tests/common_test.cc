#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "common/hash.h"
#include "common/random.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/value.h"

namespace dynopt {
namespace {

// --- Status / Result -------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("table t");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.message(), "table t");
  EXPECT_EQ(st.ToString(), "NotFound: table t");
}

TEST(StatusTest, AllFactoryCodesDistinct) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("").code(), Status::NotFound("").code(),
      Status::AlreadyExists("").code(),   Status::OutOfRange("").code(),
      Status::Unimplemented("").code(),   Status::Internal("").code(),
      Status::ParseError("").code(),      Status::BindError("").code(),
      Status::ExecutionError("").code()};
  EXPECT_EQ(codes.size(), 9u);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::Internal("boom");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

Result<int> Doubled(Result<int> in) {
  DYNOPT_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Doubled(21).value(), 42);
  EXPECT_EQ(Doubled(Status::NotFound("x")).status().code(),
            StatusCode::kNotFound);
}

Status FailsIf(bool fail) {
  DYNOPT_RETURN_IF_ERROR(fail ? Status::Internal("x") : Status::OK());
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(FailsIf(false).ok());
  EXPECT_FALSE(FailsIf(true).ok());
}

// --- Value -----------------------------------------------------------------

TEST(ValueTest, TypesAreTagged) {
  EXPECT_EQ(Value().type(), ValueType::kNull);
  EXPECT_EQ(Value(true).type(), ValueType::kBool);
  EXPECT_EQ(Value(int64_t{7}).type(), ValueType::kInt64);
  EXPECT_EQ(Value(1.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value("x").type(), ValueType::kString);
  EXPECT_TRUE(Value::Null().is_null());
}

TEST(ValueTest, IntOrdering) {
  EXPECT_LT(Value(1), Value(2));
  EXPECT_EQ(Value(5), Value(5));
  EXPECT_GT(Value(9), Value(-9));
}

TEST(ValueTest, CrossNumericComparisonCoerces) {
  EXPECT_EQ(Value(int64_t{3}), Value(3.0));
  EXPECT_LT(Value(int64_t{3}), Value(3.5));
  EXPECT_GT(Value(4.0), Value(int64_t{3}));
  EXPECT_EQ(Value(true), Value(int64_t{1}));
}

TEST(ValueTest, StringOrdering) {
  EXPECT_LT(Value("abc"), Value("abd"));
  EXPECT_EQ(Value("x"), Value("x"));
}

TEST(ValueTest, NullSortsFirst) {
  EXPECT_LT(Value::Null(), Value(int64_t{0}));
  EXPECT_LT(Value::Null(), Value("a"));
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value(int64_t{42}).Hash(), Value(int64_t{42}).Hash());
  EXPECT_EQ(Value("join").Hash(), Value("join").Hash());
  // Integral doubles hash like the equal int (joins across types work).
  EXPECT_EQ(Value(42.0).Hash(), Value(int64_t{42}).Hash());
  EXPECT_NE(Value(int64_t{1}).Hash(), Value(int64_t{2}).Hash());
}

TEST(ValueTest, SizeBytesReflectsContent) {
  EXPECT_EQ(Value(int64_t{1}).SizeBytes(), 8u);
  EXPECT_EQ(Value(1.0).SizeBytes(), 8u);
  EXPECT_GT(Value("hello world").SizeBytes(), 11u);
  EXPECT_EQ(Value::Null().SizeBytes(), 1u);
}

TEST(ValueTest, NumericKeyMonotoneForNumbers) {
  EXPECT_LT(Value(int64_t{1}).NumericKey(), Value(int64_t{2}).NumericKey());
  EXPECT_DOUBLE_EQ(Value(2.5).NumericKey(), 2.5);
  EXPECT_TRUE(std::isnan(Value::Null().NumericKey()));
}

TEST(ValueTest, ToStringRendersAllTypes) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(Value(int64_t{5}).ToString(), "5");
  EXPECT_EQ(Value("hi").ToString(), "'hi'");
}

TEST(RowTest, HashRowKeyOnSubset) {
  Row a = {Value(1), Value("x"), Value(9)};
  Row b = {Value(1), Value("y"), Value(9)};
  std::vector<int> keys = {0, 2};
  EXPECT_EQ(HashRowKey(a, keys), HashRowKey(b, keys));
  std::vector<int> all = {0, 1, 2};
  EXPECT_NE(HashRowKey(a, all), HashRowKey(b, all));
}

TEST(RowTest, RowSizeBytesSumsValues) {
  Row r = {Value(int64_t{1}), Value(int64_t{2})};
  EXPECT_EQ(RowSizeBytes(r), 8u + 8u + 8u);  // Header + two ints.
}

// --- Hashing ---------------------------------------------------------------

TEST(HashTest, Mix64IsDeterministicAndSpreads) {
  EXPECT_EQ(Mix64(123), Mix64(123));
  std::set<uint64_t> outputs;
  for (uint64_t i = 0; i < 1000; ++i) outputs.insert(Mix64(i));
  EXPECT_EQ(outputs.size(), 1000u);
}

TEST(HashTest, HashStringAvalanche) {
  EXPECT_NE(HashString("a"), HashString("b"));
  EXPECT_NE(HashString("ab"), HashString("ba"));
  EXPECT_EQ(HashString("same"), HashString("same"));
}

TEST(HashTest, HashBytesMatchesHashString) {
  EXPECT_EQ(HashBytes("abc", 3), HashString("abc"));
}

// --- Rng / Zipf ------------------------------------------------------------

TEST(RngTest, DeterministicBySeed) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, NextInt64InRange) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.NextInt64(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(2);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(RngTest, NextBoolMatchesProbability) {
  Rng rng(3);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.NextBool(0.25);
  EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(RngTest, NextUint64Uniformish) {
  Rng rng(4);
  std::vector<int> buckets(10, 0);
  for (int i = 0; i < 50000; ++i) ++buckets[rng.NextUint64(10)];
  for (int count : buckets) EXPECT_NEAR(count, 5000, 500);
}

TEST(ZipfTest, SkewConcentratesOnHead) {
  Rng rng(5);
  ZipfDistribution zipf(1000, 1.2);
  std::map<size_t, int> counts;
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Sample(rng)];
  // Head item dominates, tail items rare.
  EXPECT_GT(counts[0], counts[100] * 5);
  EXPECT_GT(counts[0], 2000);
}

TEST(ZipfTest, ZeroExponentIsUniform) {
  Rng rng(6);
  ZipfDistribution zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Sample(rng)];
  for (int count : counts) EXPECT_NEAR(count, 5000, 600);
}

TEST(ZipfTest, SamplesStayInDomain) {
  Rng rng(7);
  ZipfDistribution zipf(17, 1.0);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Sample(rng), 17u);
}

// --- ThreadPool --------------------------------------------------------------

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(100, [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, EmptyAndSingleWork) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL(); });
  int calls = 0;
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ReusableAcrossCalls) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 20; ++round) {
    pool.ParallelFor(50, [&](size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 1000);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // Inner loops launched from inside worker tasks: block-claiming plus the
  // caller draining its own loop means this must complete even when every
  // worker is already occupied by an outer task.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.ParallelFor(8, [&](size_t) {
    pool.ParallelFor(16, [&](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 8 * 16);
}

TEST(ThreadPoolTest, ConcurrentParallelForFromManyThreads) {
  // The multi-query scenario: several external threads (admitted queries)
  // drive overlapping ParallelFor calls through ONE shared pool. Every
  // index of every loop must run exactly once; run under TSan in CI.
  ThreadPool pool(3);
  constexpr int kCallers = 8;
  constexpr int kRounds = 25;
  constexpr size_t kWidth = 64;
  std::vector<std::atomic<int>> hits(kCallers);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c]() {
      for (int round = 0; round < kRounds; ++round) {
        pool.ParallelFor(kWidth, [&](size_t) {
          hits[static_cast<size_t>(c)].fetch_add(1);
        });
      }
    });
  }
  for (auto& t : callers) t.join();
  for (int c = 0; c < kCallers; ++c) {
    EXPECT_EQ(hits[static_cast<size_t>(c)].load(),
              kRounds * static_cast<int>(kWidth))
        << "caller " << c;
  }
}

}  // namespace
}  // namespace dynopt
