#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include "common/hash.h"
#include "common/random.h"
#include "stats/column_stats.h"
#include "stats/gk_quantile.h"
#include "stats/histogram.h"
#include "stats/hyperloglog.h"
#include "stats/table_stats.h"

namespace dynopt {
namespace {

// --- Greenwald-Khanna quantile sketch ---------------------------------------

TEST(GkQuantileTest, ExactOnTinyInput) {
  GkQuantileSketch sketch(0.01);
  for (int i = 1; i <= 10; ++i) sketch.Insert(i);
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(sketch.Quantile(1.0), 10.0);
  EXPECT_NEAR(sketch.Quantile(0.5), 5.5, 1.0);
}

TEST(GkQuantileTest, CountTracksInserts) {
  GkQuantileSketch sketch;
  for (int i = 0; i < 1234; ++i) sketch.Insert(i);
  EXPECT_EQ(sketch.count(), 1234u);
}

TEST(GkQuantileTest, CompressionBoundsMemory) {
  GkQuantileSketch sketch(0.01);
  for (int i = 0; i < 100000; ++i) sketch.Insert(i);
  // A GK summary holds O(1/eps * log(eps n)) tuples — far below n.
  EXPECT_LT(sketch.NumTuples(), 5000u);
}

/// Property sweep: quantile error stays within epsilon*n rank error across
/// distributions and sizes.
class GkAccuracyTest
    : public ::testing::TestWithParam<std::tuple<int, const char*>> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, GkAccuracyTest,
    ::testing::Combine(::testing::Values(1000, 10000, 100000),
                       ::testing::Values("uniform", "normalish", "zipfy",
                                         "sorted", "reversed")));

TEST_P(GkAccuracyTest, RankErrorWithinEpsilon) {
  const int n = std::get<0>(GetParam());
  const std::string dist = std::get<1>(GetParam());
  const double eps = 0.01;
  Rng rng(99);
  std::vector<double> data;
  data.reserve(n);
  for (int i = 0; i < n; ++i) {
    double v;
    if (dist == "uniform") {
      v = rng.NextDouble() * 1000.0;
    } else if (dist == "normalish") {
      v = 0;  // Sum of uniforms approximates a normal.
      for (int k = 0; k < 6; ++k) v += rng.NextDouble();
    } else if (dist == "zipfy") {
      v = std::pow(rng.NextDouble(), 4.0) * 100.0;
    } else if (dist == "sorted") {
      v = i;
    } else {
      v = n - i;
    }
    data.push_back(v);
  }
  GkQuantileSketch sketch(eps);
  for (double v : data) sketch.Insert(v);
  std::vector<double> sorted = data;
  std::sort(sorted.begin(), sorted.end());
  for (double phi : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    double q = sketch.Quantile(phi);
    // True rank of the reported value.
    auto lo = std::lower_bound(sorted.begin(), sorted.end(), q);
    auto hi = std::upper_bound(sorted.begin(), sorted.end(), q);
    double target = phi * (n - 1);
    double rank_lo = static_cast<double>(lo - sorted.begin());
    double rank_hi = static_cast<double>(hi - sorted.begin());
    double err = 0;
    if (target < rank_lo) err = rank_lo - target;
    if (target > rank_hi) err = target - rank_hi;
    EXPECT_LE(err, 3.0 * eps * n + 2.0)
        << "phi=" << phi << " dist=" << dist << " n=" << n;
  }
}

TEST(GkQuantileTest, MergePreservesAccuracy) {
  const double eps = 0.01;
  GkQuantileSketch left(eps), right(eps);
  Rng rng(5);
  std::vector<double> all;
  for (int i = 0; i < 20000; ++i) {
    double v = rng.NextDouble() * 100;
    all.push_back(v);
    (i % 2 == 0 ? left : right).Insert(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), 20000u);
  std::sort(all.begin(), all.end());
  for (double phi : {0.1, 0.5, 0.9}) {
    double q = left.Quantile(phi);
    double truth = all[static_cast<size_t>(phi * (all.size() - 1))];
    EXPECT_NEAR(q, truth, 3.0);  // ~3% of the value range.
  }
}

TEST(GkQuantileTest, MergeIntoEmptyCopies) {
  GkQuantileSketch a, b;
  for (int i = 0; i < 100; ++i) b.Insert(i);
  a.Merge(b);
  EXPECT_EQ(a.count(), 100u);
  EXPECT_NEAR(a.Quantile(0.5), 50.0, 5.0);
  GkQuantileSketch empty;
  a.Merge(empty);  // No-op.
  EXPECT_EQ(a.count(), 100u);
}

TEST(GkQuantileTest, RankFractionIsApproximateCdf) {
  GkQuantileSketch sketch(0.005);
  for (int i = 0; i < 10000; ++i) sketch.Insert(i);
  EXPECT_DOUBLE_EQ(sketch.EstimateRankFraction(-1), 0.0);
  EXPECT_DOUBLE_EQ(sketch.EstimateRankFraction(10001), 1.0);
  EXPECT_NEAR(sketch.EstimateRankFraction(2500), 0.25, 0.03);
  EXPECT_NEAR(sketch.EstimateRankFraction(7500), 0.75, 0.03);
}

TEST(GkQuantileTest, BoundariesAreMonotone) {
  GkQuantileSketch sketch;
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) sketch.Insert(rng.NextDouble());
  std::vector<double> bounds = sketch.ExtractBoundaries(32);
  ASSERT_EQ(bounds.size(), 33u);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LE(bounds[i - 1], bounds[i]);
  }
}

// --- HyperLogLog -------------------------------------------------------------

class HllAccuracyTest : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Cardinalities, HllAccuracyTest,
                         ::testing::Values(10, 100, 1000, 10000, 100000,
                                           1000000));

TEST_P(HllAccuracyTest, EstimateWithinFivePercent) {
  const int n = GetParam();
  HyperLogLog hll(14);
  for (int i = 0; i < n; ++i) hll.Add(Mix64(static_cast<uint64_t>(i)));
  EXPECT_NEAR(hll.Estimate(), n, std::max(2.0, 0.05 * n));
}

TEST(HllTest, DuplicatesDoNotInflate) {
  HyperLogLog hll(12);
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 50; ++i) hll.Add(Mix64(static_cast<uint64_t>(i)));
  }
  EXPECT_NEAR(hll.Estimate(), 50.0, 5.0);
}

TEST(HllTest, EmptyEstimatesZero) {
  HyperLogLog hll(12);
  EXPECT_NEAR(hll.Estimate(), 0.0, 0.5);
}

TEST(HllTest, MergeEqualsUnion) {
  HyperLogLog a(12), b(12), expected(12);
  for (int i = 0; i < 5000; ++i) {
    uint64_t h = Mix64(static_cast<uint64_t>(i));
    (i % 2 == 0 ? a : b).Add(h);
    expected.Add(h);
  }
  // Overlap: both see 1000 shared elements.
  for (int i = 0; i < 1000; ++i) {
    uint64_t h = Mix64(static_cast<uint64_t>(1000000 + i));
    a.Add(h);
    b.Add(h);
    expected.Add(h);
  }
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.Estimate(), expected.Estimate());
}

// --- Equi-height histogram ---------------------------------------------------

EquiHeightHistogram MakeUniformHistogram(int n, int buckets) {
  GkQuantileSketch sketch(0.005);
  for (int i = 0; i < n; ++i) sketch.Insert(i);
  return EquiHeightHistogram::FromSketch(sketch, buckets);
}

TEST(HistogramTest, EmptyIsUninformative) {
  EquiHeightHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_DOUBLE_EQ(h.EstimateLessOrEqualFraction(5), 0.5);
  EXPECT_DOUBLE_EQ(h.EstimateRangeFraction(0, 1), 1.0 / 3.0);
}

TEST(HistogramTest, CdfEndpoints) {
  EquiHeightHistogram h = MakeUniformHistogram(10000, 64);
  EXPECT_DOUBLE_EQ(h.EstimateLessOrEqualFraction(-1), 0.0);
  EXPECT_DOUBLE_EQ(h.EstimateLessOrEqualFraction(10000), 1.0);
}

TEST(HistogramTest, UniformRangeSelectivity) {
  EquiHeightHistogram h = MakeUniformHistogram(10000, 64);
  EXPECT_NEAR(h.EstimateRangeFraction(2500, 7500), 0.5, 0.05);
  EXPECT_NEAR(h.EstimateRangeFraction(0, 999), 0.1, 0.03);
  EXPECT_DOUBLE_EQ(h.EstimateRangeFraction(5, 4), 0.0);
}

class HistogramBucketsTest : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Buckets, HistogramBucketsTest,
                         ::testing::Values(4, 16, 64, 256));

TEST_P(HistogramBucketsTest, MoreBucketsNeverWorseThanCoarsest) {
  const int buckets = GetParam();
  // Skewed data: 90% of mass in [0, 10), 10% in [10, 1000).
  GkQuantileSketch sketch(0.002);
  Rng rng(3);
  for (int i = 0; i < 50000; ++i) {
    double v = rng.NextBool(0.9) ? rng.NextDouble() * 10
                                 : 10 + rng.NextDouble() * 990;
    sketch.Insert(v);
  }
  auto h = EquiHeightHistogram::FromSketch(sketch, buckets);
  double est = h.EstimateRangeFraction(0, 10);
  // With >= 16 buckets the estimate should be close to the true 0.9.
  double tolerance = buckets >= 16 ? 0.05 : 0.30;
  EXPECT_NEAR(est, 0.9, tolerance) << "buckets=" << buckets;
}

// --- Column / table stats ----------------------------------------------------

TEST(ColumnStatsTest, TracksCountNullsMinMax) {
  ColumnStatsBuilder builder;
  builder.Add(Value(int64_t{5}));
  builder.Add(Value(int64_t{1}));
  builder.Add(Value::Null());
  builder.Add(Value(int64_t{9}));
  ColumnStatsSnapshot snap = builder.Finalize();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.null_count, 1u);
  EXPECT_EQ(snap.min_value, Value(int64_t{1}));
  EXPECT_EQ(snap.max_value, Value(int64_t{9}));
  EXPECT_NEAR(snap.ndv, 3.0, 0.5);
}

TEST(ColumnStatsTest, EqSelectivityUsesNdv) {
  ColumnStatsBuilder builder;
  for (int i = 0; i < 1000; ++i) builder.Add(Value(int64_t{i % 50}));
  ColumnStatsSnapshot snap = builder.Finalize();
  EXPECT_NEAR(snap.EstimateEqSelectivity(Value(int64_t{7})), 1.0 / 50, 0.005);
  // Out-of-range constant estimates zero.
  EXPECT_DOUBLE_EQ(snap.EstimateEqSelectivity(Value(int64_t{500})), 0.0);
}

TEST(ColumnStatsTest, RangeSelectivityUsesHistogram) {
  ColumnStatsBuilder builder;
  for (int i = 0; i < 10000; ++i) builder.Add(Value(int64_t{i}));
  ColumnStatsSnapshot snap = builder.Finalize();
  EXPECT_NEAR(snap.EstimateRangeSelectivity(Value(int64_t{0}),
                                            Value(int64_t{999})),
              0.1, 0.03);
  // Open-ended range.
  EXPECT_NEAR(
      snap.EstimateRangeSelectivity(Value(int64_t{9000}), Value::Null()), 0.1,
      0.03);
}

TEST(ColumnStatsTest, MergeMatchesSingleStream) {
  ColumnStatsBuilder a, b, combined;
  Rng rng(8);
  for (int i = 0; i < 4000; ++i) {
    Value v(rng.NextInt64(0, 500));
    (i % 2 == 0 ? a : b).Add(v);
    combined.Add(v);
  }
  a.Merge(b);
  ColumnStatsSnapshot merged = a.Finalize();
  ColumnStatsSnapshot single = combined.Finalize();
  EXPECT_EQ(merged.count, single.count);
  EXPECT_NEAR(merged.ndv, single.ndv, single.ndv * 0.02 + 1);
  EXPECT_EQ(merged.min_value, single.min_value);
  EXPECT_EQ(merged.max_value, single.max_value);
}

TEST(TableStatsTest, BuilderCollectsSelectedColumns) {
  TableStatsBuilder builder({"a", "c"}, {0, 2});
  for (int i = 0; i < 100; ++i) {
    builder.AddRow({Value(i), Value("skip"), Value(i % 10)});
  }
  TableStats stats = builder.Finalize();
  EXPECT_EQ(stats.row_count, 100u);
  EXPECT_GT(stats.total_bytes, 0u);
  ASSERT_TRUE(stats.HasColumn("a"));
  ASSERT_TRUE(stats.HasColumn("c"));
  EXPECT_FALSE(stats.HasColumn("b"));
  EXPECT_NEAR(stats.Column("a")->ndv, 100.0, 3.0);
  EXPECT_NEAR(stats.Column("c")->ndv, 10.0, 1.0);
}

TEST(TableStatsTest, MergeAccumulates) {
  TableStatsBuilder a({"x"}, {0}), b({"x"}, {0});
  for (int i = 0; i < 50; ++i) a.AddRow({Value(i)});
  for (int i = 50; i < 150; ++i) b.AddRow({Value(i)});
  a.Merge(b);
  TableStats stats = a.Finalize();
  EXPECT_EQ(stats.row_count, 150u);
  EXPECT_NEAR(stats.Column("x")->ndv, 150.0, 5.0);
}

TEST(StatsManagerTest, PutGetRemove) {
  StatsManager manager;
  EXPECT_FALSE(manager.Has("t"));
  EXPECT_EQ(manager.Get("t"), nullptr);
  TableStats stats;
  stats.row_count = 7;
  manager.Put("t", stats);
  ASSERT_TRUE(manager.Has("t"));
  EXPECT_EQ(manager.Get("t")->row_count, 7u);
  EXPECT_EQ(manager.TableNames(), std::vector<std::string>{"t"});
  manager.Remove("t");
  EXPECT_FALSE(manager.Has("t"));
  manager.Put("a", stats);
  manager.Clear();
  EXPECT_TRUE(manager.TableNames().empty());
}

TEST(StatsManagerTest, PutOverwrites) {
  StatsManager manager;
  TableStats s1, s2;
  s1.row_count = 1;
  s2.row_count = 2;
  manager.Put("t", s1);
  manager.Put("t", s2);
  EXPECT_EQ(manager.Get("t")->row_count, 2u);
}

}  // namespace
}  // namespace dynopt
