// Risk-aware planning (spill-aware costing + q-error feedback):
//  - cost model: with no budget the spill share is exactly zero and the
//    cost matches the spill-blind closed form; growing the budget never
//    increases the predicted cost; predicted spill volume tracks the
//    executor's metered ExecMetrics.spilled_bytes within a fixed factor;
//  - knob neutrality: all new RiskConfig knobs default off, and turning
//    spill-aware costing on with no budget configured meters byte-for-byte
//    identically (simulated seconds, EXPLAIN ANALYZE text) across all six
//    strategies;
//  - behavior: spill-aware costing flips a broadcast that would overflow
//    the join budget to a shuffle and lands a lower simulated cost; a
//    misestimated chain earns the dynamic strategy an extra error-triggered
//    re-optimization checkpoint that beats the feedback-free run; the
//    ErrorStatsStore calibrates the *next* query's static plan;
//  - resume: q-errors and the extra-reopt trigger are neither lost nor
//    double-counted across ResumeFromLastCheckpoint.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics_registry.h"
#include "exec/engine.h"
#include "opt/cardinality.h"
#include "opt/cost_model.h"
#include "opt/degrade.h"
#include "opt/dynamic_optimizer.h"
#include "opt/error_stats.h"
#include "opt/explain.h"
#include "opt/ingres_optimizer.h"
#include "opt/order_baselines.h"
#include "opt/pilot_run_optimizer.h"
#include "opt/static_optimizer.h"
#include "opt/stats_view.h"
#include "storage/serde.h"

namespace dynopt {
namespace {

namespace fs = std::filesystem;

void AddTable(Engine* engine, const std::string& name, const Schema& schema,
              const std::vector<Row>& rows,
              const std::vector<std::string>& stats_columns) {
  auto t = std::make_shared<Table>(name, schema, engine->cluster().num_nodes);
  for (const Row& row : rows) t->AppendRow(row);
  ASSERT_TRUE(engine->catalog().RegisterTable(t).ok());
  ASSERT_TRUE(engine->CollectBaseStats(name, stats_columns).ok());
}

/// ExecMetrics::ToString() minus the trailing host wall-clock section —
/// everything metered (bytes, simulated seconds, decision telemetry) with
/// the real-time kernel clocks, which legitimately vary run to run,
/// stripped off.
std::string MeteredString(const ExecMetrics& metrics) {
  std::string s = metrics.ToString();
  const size_t cut = s.find(" wall[");
  return cut == std::string::npos ? s : s.substr(0, cut);
}

std::vector<Row> SortedRows(const OptimizerRunResult& result) {
  std::vector<Row> rows = result.rows;
  SortRows(&rows);
  return rows;
}

// ---- Fixtures (mirroring bench_feedback's trap scenarios) ----------------

/// Two-table join whose build side r (~240KB) fits the 256KB broadcast
/// threshold but overflows a 64KB per-node join budget when replicated.
void BuildSpillTables(Engine* engine) {
  {
    std::vector<Row> rows;
    for (int i = 0; i < 3000; ++i) {
      rows.push_back({Value(int64_t{i}), Value(std::string(48, 'r'))});
    }
    AddTable(engine, "r",
             Schema({{"k", ValueType::kInt64}, {"pad", ValueType::kString}}),
             rows, {"k"});
  }
  {
    std::vector<Row> rows;
    for (int i = 0; i < 30000; ++i) {
      rows.push_back({Value(int64_t{i % 3000}), Value(std::string(80, 's'))});
    }
    AddTable(engine, "s",
             Schema({{"k", ValueType::kInt64}, {"pad", ValueType::kString}}),
             rows, {"k"});
  }
}

QuerySpec SpillQuery() {
  QuerySpec spec;
  spec.tables = {{"r", "r", false, false, {}}, {"s", "s", false, false, {}}};
  spec.joins = {{"r", "s", {{"r.k", "s.k"}}}};
  // r.pad is projected so column pruning cannot shrink the broadcast build
  // below the budget — the trap only exists at full width.
  spec.projections = {"r.k", "r.pad", "s.pad"};
  spec.NormalizeJoins();
  return spec;
}

/// Four-table chain f-g-h-i: f carries two perfectly correlated predicates
/// (independence underestimates 10x) and the g-h join hides a hot key the
/// ndv-quotient estimator misses; i is large enough that broadcasting the
/// misestimated g-h pair looks cheap on paper and is a cliff in practice.
void BuildMisestimationTables(Engine* engine) {
  {
    std::vector<Row> rows;
    for (int i = 0; i < 6000; ++i) {
      rows.push_back({Value(int64_t{i % 600}), Value(int64_t{i % 10}),
                      Value(int64_t{i % 10}), Value(std::string(40, 'f'))});
    }
    AddTable(engine, "f",
             Schema({{"f_k", ValueType::kInt64},
                     {"c1", ValueType::kInt64},
                     {"c2", ValueType::kInt64},
                     {"pad", ValueType::kString}}),
             rows, {"f_k", "c1", "c2"});
  }
  {
    std::vector<Row> rows;
    for (int i = 0; i < 600; ++i) {
      rows.push_back(
          {Value(int64_t{i}), Value(int64_t{i < 180 ? 7 : 1000 + i})});
    }
    AddTable(engine, "g",
             Schema({{"g_k", ValueType::kInt64}, {"g2", ValueType::kInt64}}),
             rows, {"g_k", "g2"});
  }
  {
    std::vector<Row> rows;
    for (int i = 0; i < 1500; ++i) {
      rows.push_back({Value(int64_t{i < 450 ? 7 : 100000 + i}),
                      Value(int64_t{i})});
    }
    AddTable(engine, "h",
             Schema({{"h2", ValueType::kInt64}, {"h_j", ValueType::kInt64}}),
             rows, {"h2", "h_j"});
  }
  {
    std::vector<Row> rows;
    for (int i = 0; i < 20000; ++i) {
      rows.push_back({Value(int64_t{i}), Value(std::string(48, 'i'))});
    }
    AddTable(engine, "i",
             Schema({{"i_j", ValueType::kInt64}, {"pad", ValueType::kString}}),
             rows, {"i_j"});
  }
}

QuerySpec MisestimationQuery() {
  QuerySpec spec;
  spec.tables = {{"f", "f", false, true, {}},
                 {"g", "g", false, false, {}},
                 {"h", "h", false, false, {}},
                 {"i", "i", false, false, {}}};
  spec.predicates = {{"f", Eq(Col("f", "c1"), Lit(Value(int64_t{3})))},
                     {"f", Eq(Col("f", "c2"), Lit(Value(int64_t{3})))}};
  spec.joins = {{"f", "g", {{"f.f_k", "g.g_k"}}},
                {"g", "h", {{"g.g2", "h.h2"}}},
                {"h", "i", {{"h.h_j", "i.i_j"}}}};
  spec.projections = {"f.c1", "g.g2", "h.h_j", "i.i_j"};
  spec.NormalizeJoins();
  return spec;
}

/// Three-table chain with the same correlated-predicate misestimate on a;
/// the a-b intermediate is what run 2 must learn to stop broadcasting.
void BuildMemoryTables(Engine* engine) {
  {
    std::vector<Row> rows;
    for (int i = 0; i < 6000; ++i) {
      rows.push_back({Value(int64_t{i % 600}), Value(int64_t{i % 10}),
                      Value(int64_t{i % 10}), Value(std::string(100, 'a'))});
    }
    AddTable(engine, "a",
             Schema({{"a_k", ValueType::kInt64},
                     {"c1", ValueType::kInt64},
                     {"c2", ValueType::kInt64},
                     {"pad", ValueType::kString}}),
             rows, {"a_k", "c1", "c2"});
  }
  {
    std::vector<Row> rows;
    for (int i = 0; i < 3000; ++i) {
      rows.push_back({Value(int64_t{i % 600}), Value(int64_t{i})});
    }
    AddTable(engine, "b",
             Schema({{"b_k", ValueType::kInt64}, {"b_j", ValueType::kInt64}}),
             rows, {"b_k", "b_j"});
  }
  {
    std::vector<Row> rows;
    for (int i = 0; i < 20000; ++i) {
      rows.push_back({Value(int64_t{i % 3000}), Value(std::string(80, 'c'))});
    }
    AddTable(engine, "c",
             Schema({{"c_j", ValueType::kInt64}, {"pad", ValueType::kString}}),
             rows, {"c_j"});
  }
}

QuerySpec MemoryQuery() {
  QuerySpec spec;
  spec.tables = {{"a", "a", false, true, {}},
                 {"b", "b", false, false, {}},
                 {"c", "c", false, false, {}}};
  spec.predicates = {{"a", Eq(Col("a", "c1"), Lit(Value(int64_t{3})))},
                     {"a", Eq(Col("a", "c2"), Lit(Value(int64_t{3})))}};
  spec.joins = {{"a", "b", {{"a.a_k", "b.b_k"}}},
                {"b", "c", {{"b.b_j", "c.c_j"}}}};
  spec.projections = {"a.c1", "a.pad", "b.b_j", "c.c_j"};
  spec.NormalizeJoins();
  return spec;
}

std::unique_ptr<Optimizer> MakeOptimizer(
    Engine* engine, const std::string& name,
    std::shared_ptr<const JoinTree> best_order_hint) {
  if (name == "dynamic") return std::make_unique<DynamicOptimizer>(engine);
  if (name == "cost-based") {
    return std::make_unique<StaticCostBasedOptimizer>(engine);
  }
  if (name == "worst-order") {
    return std::make_unique<WorstOrderOptimizer>(engine);
  }
  if (name == "pilot-run") return std::make_unique<PilotRunOptimizer>(engine);
  if (name == "ingres-like") {
    return std::make_unique<IngresLikeOptimizer>(engine);
  }
  return std::make_unique<BestOrderOptimizer>(engine,
                                              std::move(best_order_hint));
}

// ---- Cost model ----------------------------------------------------------

JoinCostInputs SampleInputs(uint64_t budget) {
  JoinCostInputs in;
  in.build_rows = 4000;
  in.build_bytes = 220e3;  // Over a 64KB per-node budget when broadcast.
  in.probe_rows = 40000;
  in.probe_bytes = 3.2e6;
  in.out_rows = 40000;
  in.out_bytes = 3.4e6;
  in.memory_budget_bytes = budget;
  return in;
}

TEST(SpillCostModelTest, ZeroBudgetHasNoSpillShareAndMatchesTotal) {
  Engine engine;
  for (JoinMethod method : {JoinMethod::kHashShuffle, JoinMethod::kBroadcast}) {
    const JoinCostInputs in = SampleInputs(0);
    const JoinCostBreakdown d =
        EstimateJoinExecCostDetail(method, in, engine.cluster(),
                                   in.probe_bytes);
    EXPECT_EQ(d.spill_seconds, 0.0);
    EXPECT_EQ(d.spilled_bytes, 0.0);
    EXPECT_EQ(d.spill_passes, 0);
    // The breakdown's total and the scalar entry point agree exactly.
    EXPECT_EQ(d.cost, EstimateJoinExecCost(method, in, engine.cluster(),
                                           in.probe_bytes));
  }
}

TEST(SpillCostModelTest, CostMonotoneNonIncreasingInBudget) {
  Engine engine;
  const double unlimited = EstimateJoinExecCost(
      JoinMethod::kBroadcast, SampleInputs(0), engine.cluster(), 3.2e6);
  for (JoinMethod method : {JoinMethod::kHashShuffle, JoinMethod::kBroadcast}) {
    double prev_cost = std::numeric_limits<double>::infinity();
    double prev_spill = std::numeric_limits<double>::infinity();
    bool saw_spill = false;
    for (uint64_t budget : {uint64_t{4} << 10, uint64_t{16} << 10,
                            uint64_t{64} << 10, uint64_t{256} << 10,
                            uint64_t{1} << 20, uint64_t{64} << 20}) {
      const JoinCostBreakdown d = EstimateJoinExecCostDetail(
          method, SampleInputs(budget), engine.cluster(), 3.2e6);
      EXPECT_LE(d.cost, prev_cost) << "budget " << budget;
      EXPECT_LE(d.spilled_bytes, prev_spill) << "budget " << budget;
      EXPECT_GE(d.cost, d.spill_seconds);
      saw_spill = saw_spill || d.spill_passes > 0;
      prev_cost = d.cost;
      prev_spill = d.spilled_bytes;
    }
    // The tightest budget actually trips the spill path, and a budget the
    // build comfortably fits prices exactly like no budget at all.
    EXPECT_TRUE(saw_spill);
    if (method == JoinMethod::kBroadcast) {
      const JoinCostBreakdown roomy = EstimateJoinExecCostDetail(
          method, SampleInputs(uint64_t{64} << 20), engine.cluster(), 3.2e6);
      EXPECT_EQ(roomy.cost, unlimited);
    }
  }
}

TEST(SpillCostModelTest, ResidentBytesAndReservationsShrinkUnderBudget) {
  Engine engine;
  // No budget: fully resident, byte-for-byte.
  EXPECT_EQ(EstimateResidentBytes(5e6, engine.cluster()), 5e6);
  engine.mutable_cluster().memory.join_memory_budget_bytes = 64 << 10;
  const double cap =
      static_cast<double>(64 << 10) * engine.cluster().num_nodes;
  EXPECT_EQ(EstimateResidentBytes(5e6, engine.cluster()), cap);
  EXPECT_EQ(EstimateResidentBytes(1e4, engine.cluster()), 1e4);  // Fits.

  // Admission reservations route through the same model: a budgeted engine
  // reserves less for a query whose inputs exceed budget * num_nodes.
  BuildSpillTables(&engine);
  const QuerySpec spec = SpillQuery();
  const uint64_t with_budget = EstimateQueryReservationBytes(spec, &engine);
  engine.mutable_cluster().memory.join_memory_budget_bytes = 0;
  const uint64_t unbudgeted = EstimateQueryReservationBytes(spec, &engine);
  EXPECT_LT(with_budget, unbudgeted);
}

// ---- Spill-aware planning (tentpole layer a) -----------------------------

TEST(FeedbackTest, SpillAwareCostingFlipsBroadcastToShuffle) {
  Engine engine;
  engine.mutable_cluster().memory.join_memory_budget_bytes = 64 << 10;
  BuildSpillTables(&engine);
  const QuerySpec spec = SpillQuery();

  engine.mutable_cluster().risk.spill_aware_costing = false;
  StaticCostBasedOptimizer blind(&engine);
  auto blind_run = blind.Run(spec);
  ASSERT_TRUE(blind_run.ok()) << blind_run.status().ToString();

  engine.mutable_cluster().risk.spill_aware_costing = true;
  StaticCostBasedOptimizer aware(&engine);
  auto aware_run = aware.Run(spec);
  ASSERT_TRUE(aware_run.ok()) << aware_run.status().ToString();

  // Same rows, different method, lower simulated cost, no spill at all.
  EXPECT_EQ(SortedRows(aware_run.value()), SortedRows(blind_run.value()));
  ASSERT_NE(blind_run->join_tree, nullptr);
  ASSERT_NE(aware_run->join_tree, nullptr);
  EXPECT_NE(blind_run->join_tree->ToString(), aware_run->join_tree->ToString());
  EXPECT_GT(blind_run->metrics.spilled_bytes, 0u);
  EXPECT_EQ(aware_run->metrics.spilled_bytes, 0u);
  EXPECT_LT(aware_run->metrics.simulated_seconds,
            blind_run->metrics.simulated_seconds);

  // Model/executor parity on the trap the blind plan fell into: predict the
  // broadcast's spill volume from the same estimates the planner saw and
  // hold it against the metered ExecMetrics.spilled_bytes.
  StatsView view(&spec, &engine.stats(), &engine.catalog());
  CardinalityEstimator estimator(&view);
  JoinCostInputs in;
  in.build_rows = estimator.EstimateFilteredSize("r");
  in.build_bytes = estimator.EstimateFilteredBytes("r");
  in.probe_rows = estimator.EstimateFilteredSize("s");
  in.probe_bytes = estimator.EstimateFilteredBytes("s");
  in.out_rows = estimator.EstimateJoinCardinality(spec.joins[0]);
  in.out_bytes = in.out_rows * (in.build_bytes / in.build_rows +
                                in.probe_bytes / in.probe_rows);
  in.memory_budget_bytes = engine.cluster().memory.join_memory_budget_bytes;
  const JoinCostBreakdown predicted = EstimateJoinExecCostDetail(
      JoinMethod::kBroadcast, in, engine.cluster(), in.probe_bytes);
  ASSERT_GT(predicted.spilled_bytes, 0.0);
  const double ratio = predicted.spilled_bytes /
                       static_cast<double>(blind_run->metrics.spilled_bytes);
  EXPECT_GT(ratio, 1.0 / 8);
  EXPECT_LT(ratio, 8.0);
}

// ---- Knob neutrality (the defaults-off pin) ------------------------------

TEST(FeedbackTest, DefaultAndNeutralKnobsMeterIdenticallyAcrossStrategies) {
  Engine engine;
  BuildMisestimationTables(&engine);
  const QuerySpec spec = MisestimationQuery();

  DynamicOptimizer hint_source(&engine);
  auto hint_run = hint_source.Run(spec);
  ASSERT_TRUE(hint_run.ok()) << hint_run.status().ToString();
  std::shared_ptr<const JoinTree> hint = hint_run->join_tree;

  for (const char* name : {"dynamic", "best-order", "cost-based", "pilot-run",
                           "ingres-like", "worst-order"}) {
    SCOPED_TRACE(name);
    // Defaults: every risk knob off.
    engine.mutable_cluster().risk = RiskConfig();
    auto baseline = MakeOptimizer(&engine, name, hint)->Run(spec);
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
    EXPECT_EQ(baseline->metrics.error_reopt_triggers, 0u);
    auto baseline_text = ExplainAnalyze(&engine, spec, baseline.value());
    ASSERT_TRUE(baseline_text.ok());

    // Same engine, same defaults: metering is deterministic to the byte.
    auto repeat = MakeOptimizer(&engine, name, hint)->Run(spec);
    ASSERT_TRUE(repeat.ok());

    // Spill-aware costing on with no budget configured must be a no-op:
    // the model only diverges when memory_budget_bytes > 0.
    engine.mutable_cluster().risk.spill_aware_costing = true;
    auto neutral = MakeOptimizer(&engine, name, hint)->Run(spec);
    ASSERT_TRUE(neutral.ok());
    engine.mutable_cluster().risk = RiskConfig();

    for (const auto* run : {&repeat, &neutral}) {
      EXPECT_EQ(MeteredString((*run)->metrics),
                MeteredString(baseline->metrics));
      EXPECT_EQ((*run)->rows, baseline->rows);
      auto text = ExplainAnalyze(&engine, spec, run->value());
      ASSERT_TRUE(text.ok());
      EXPECT_EQ(text.value(), baseline_text.value());
    }
  }
}

// ---- Error feedback (tentpole layer b) -----------------------------------

TEST(FeedbackTest, ErrorFeedbackBuysExtraReoptCheckpointAndWins) {
  Engine engine;
  BuildMisestimationTables(&engine);
  const QuerySpec spec = MisestimationQuery();

  DynamicOptimizer no_feedback(&engine);
  auto off = no_feedback.Run(spec);
  ASSERT_TRUE(off.ok()) << off.status().ToString();
  EXPECT_EQ(off->metrics.error_reopt_triggers, 0u);
  EXPECT_GT(off->metrics.max_q_error,
            engine.cluster().risk.qerror_reopt_threshold);

  // Registries are engine-scoped now: the trigger counter lands in the
  // engine's own registry, not the process-wide default.
  const uint64_t counter_before =
      engine.metrics_registry().counter("opt.error_reopt_triggers")->value();
  engine.mutable_cluster().risk.error_feedback = true;
  DynamicOptimizer with_feedback(&engine);
  auto on = with_feedback.Run(spec);
  ASSERT_TRUE(on.ok()) << on.status().ToString();
  engine.mutable_cluster().risk = RiskConfig();

  EXPECT_GE(on->metrics.error_reopt_triggers, 1u);
  EXPECT_EQ(
      engine.metrics_registry().counter("opt.error_reopt_triggers")->value(),
      counter_before + on->metrics.error_reopt_triggers);
  EXPECT_EQ(SortedRows(on.value()), SortedRows(off.value()));
  // The extra checkpoint replans the tail on exact counts and dodges the
  // oversized broadcast the feedback-free run walks into.
  EXPECT_LT(on->metrics.simulated_seconds, off->metrics.simulated_seconds);
}

TEST(FeedbackTest, ResumeNeitherLosesNorDoubleCountsQErrors) {
  Engine engine;
  BuildMisestimationTables(&engine);
  const QuerySpec spec = MisestimationQuery();
  engine.mutable_cluster().risk.error_feedback = true;

  DynamicOptimizer reference(&engine);
  auto expected = reference.Run(spec);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  ASSERT_GE(expected->metrics.error_reopt_triggers, 1u);

  // Fail after every completed stage (push-down and join rounds alike,
  // including the error-bought extra round) and resume each time; the
  // final accounting must match the uninterrupted run exactly.
  DynamicOptimizerOptions options;
  options.inject_failure_after_stages = 1;
  DynamicOptimizer optimizer(&engine, options);
  auto resumed = optimizer.Run(spec);
  int resumes = 0;
  while (!resumed.ok() && resumed.status().retryable() &&
         optimizer.CanResume() && ++resumes < 32) {
    resumed = optimizer.ResumeFromLastCheckpoint();
  }
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ASSERT_GT(resumes, 1);  // The injector re-tripped across the extra round.
  engine.mutable_cluster().risk = RiskConfig();

  EXPECT_EQ(SortedRows(resumed.value()), SortedRows(expected.value()));
  EXPECT_EQ(resumed->metrics.error_reopt_triggers,
            expected->metrics.error_reopt_triggers);
  EXPECT_EQ(resumed->metrics.num_decisions, expected->metrics.num_decisions);
  EXPECT_EQ(resumed->metrics.max_q_error, expected->metrics.max_q_error);
  ASSERT_NE(resumed->profile, nullptr);
  ASSERT_NE(expected->profile, nullptr);
  EXPECT_EQ(resumed->profile->decisions.decisions().size(),
            expected->profile->decisions.decisions().size());
  EXPECT_EQ(resumed->profile->decisions.NumWithActuals(),
            expected->profile->decisions.NumWithActuals());
  EXPECT_EQ(resumed->profile->decisions.MaxQError(),
            expected->profile->decisions.MaxQError());
}

// ---- Cross-query error memory (tentpole layer c) -------------------------

TEST(FeedbackTest, ErrorStoreCalibratesTheNextQuery) {
  const std::string store_path =
      (fs::temp_directory_path() /
       ("dynopt_feedback_test_store_" + std::to_string(::getpid())))
          .string();
  std::error_code ec;
  fs::remove(store_path, ec);

  Engine engine;
  BuildMemoryTables(&engine);
  const QuerySpec spec = MemoryQuery();
  engine.mutable_cluster().risk.use_error_store = true;
  engine.mutable_cluster().risk.error_stats_path = store_path;

  StaticCostBasedOptimizer first(&engine);
  auto run1 = first.Run(spec);
  ASSERT_TRUE(run1.ok()) << run1.status().ToString();
  StaticCostBasedOptimizer second(&engine);
  auto run2 = second.Run(spec);
  ASSERT_TRUE(run2.ok()) << run2.status().ToString();
  engine.mutable_cluster().risk = RiskConfig();

  // Run 1 planned blind, misjudged the correlated-predicate intermediate
  // (large q-error) and persisted what it learned; run 2 started from the
  // stored prior and planned around the oversized broadcast.
  EXPECT_GT(run1->metrics.max_q_error, 4.0);
  ASSERT_NE(run1->join_tree, nullptr);
  ASSERT_NE(run2->join_tree, nullptr);
  EXPECT_NE(run1->join_tree->ToString(), run2->join_tree->ToString());
  EXPECT_LT(run2->metrics.simulated_seconds, run1->metrics.simulated_seconds);
  EXPECT_EQ(SortedRows(run2.value()), SortedRows(run1.value()));

  ASSERT_TRUE(fs::exists(store_path));
  ErrorStatsStore reader(store_path);
  ASSERT_TRUE(reader.Load().ok());
  EXPECT_GT(reader.NumEntries(), 0u);
  fs::remove(store_path, ec);
}

// ---- Pessimistic-bound DP (unit) -----------------------------------------

TEST(FeedbackTest, PlanWithDpNeutralRiskIsExactAndWideRiskFlips) {
  Engine engine;
  BuildMemoryTables(&engine);
  const QuerySpec spec = MemoryQuery();
  StatsView view(&spec, &engine.stats(), &engine.catalog());

  auto plain = StaticCostBasedOptimizer::PlanWithDp(spec, view,
                                                    engine.cluster(),
                                                    PlannerOptions());
  ASSERT_TRUE(plain.ok());
  SelectivityRisk neutral;
  auto with_neutral = StaticCostBasedOptimizer::PlanWithDp(
      spec, view, engine.cluster(), PlannerOptions(), nullptr, nullptr,
      &neutral);
  ASSERT_TRUE(with_neutral.ok());
  // Contract: a neutral risk reproduces the historical plan exactly.
  EXPECT_EQ(plain.value()->ToString(), with_neutral.value()->ToString());

  SelectivityRisk wide;
  wide.global_factor = 8.0;
  auto with_wide = StaticCostBasedOptimizer::PlanWithDp(
      spec, view, engine.cluster(), PlannerOptions(), nullptr, nullptr, &wide);
  ASSERT_TRUE(with_wide.ok());
  // Widening the composite estimates past the broadcast threshold flips
  // the plan the expected-cost DP picks.
  EXPECT_NE(plain.value()->ToString(), with_wide.value()->ToString());
}

// ---- Registry telemetry (satellite) --------------------------------------

TEST(FeedbackTest, FinalizeProfileExportsQErrorTelemetry) {
  Engine engine;
  BuildSpillTables(&engine);
  const QuerySpec spec = SpillQuery();

  auto& registry = engine.metrics_registry();
  const uint64_t decisions_before = registry.counter("opt.decisions")->value();
  const uint64_t actuals_before =
      registry.counter("opt.decisions_with_actuals")->value();
  const uint64_t hist_before = registry.histogram("opt.q_error")->count();

  StaticCostBasedOptimizer optimizer(&engine);
  auto result = optimizer.Run(spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_NE(result->profile, nullptr);
  ASSERT_GT(result->metrics.num_decisions, 0u);

  EXPECT_EQ(registry.counter("opt.decisions")->value(),
            decisions_before + result->metrics.num_decisions);
  EXPECT_EQ(registry.counter("opt.decisions_with_actuals")->value(),
            actuals_before + result->profile->decisions.NumWithActuals());
  EXPECT_EQ(registry.histogram("opt.q_error")->count(),
            hist_before + result->profile->decisions.NumWithActuals());
}

}  // namespace
}  // namespace dynopt
