#include <gtest/gtest.h>

#include <memory>

#include "common/random.h"
#include "exec/engine.h"
#include "opt/dynamic_optimizer.h"
#include "opt/finalize.h"
#include "opt/static_optimizer.h"
#include "sql/binder.h"

namespace dynopt {
namespace {

/// Direct unit tests of ApplyPostProcessing over synthetic results.
class FinalizeTest : public ::testing::Test {
 protected:
  OptimizerRunResult MakeResult() {
    OptimizerRunResult result;
    result.columns = {"t.g", "t.v"};
    // Groups: g=1 -> v {10, 20, 30}; g=2 -> v {5}; g=3 -> v {7, 7}.
    result.rows = {{Value(1), Value(10)}, {Value(2), Value(5)},
                   {Value(1), Value(20)}, {Value(3), Value(7)},
                   {Value(1), Value(30)}, {Value(3), Value(7)}};
    return result;
  }

  QuerySpec AggSpec(AggFn fn) {
    QuerySpec spec;
    spec.projections = {"t.g", "t.v"};
    spec.group_by = {"t.g"};
    spec.aggregates = {{fn, "t.v", "agg"}};
    return spec;
  }

  ClusterConfig cluster_;
};

TEST_F(FinalizeTest, NoPostProcessingIsNoOp) {
  OptimizerRunResult result = MakeResult();
  QuerySpec spec;
  spec.projections = {"t.g", "t.v"};
  ASSERT_TRUE(ApplyPostProcessing(spec, cluster_, &result).ok());
  EXPECT_EQ(result.rows.size(), 6u);
  EXPECT_EQ(result.columns, (std::vector<std::string>{"t.g", "t.v"}));
}

TEST_F(FinalizeTest, CountPerGroup) {
  OptimizerRunResult result = MakeResult();
  ASSERT_TRUE(
      ApplyPostProcessing(AggSpec(AggFn::kCount), cluster_, &result).ok());
  ASSERT_EQ(result.rows.size(), 3u);
  EXPECT_EQ(result.columns, (std::vector<std::string>{"t.g", "agg"}));
  // std::map over group keys yields sorted groups.
  EXPECT_EQ(result.rows[0], (Row{Value(1), Value(int64_t{3})}));
  EXPECT_EQ(result.rows[1], (Row{Value(2), Value(int64_t{1})}));
  EXPECT_EQ(result.rows[2], (Row{Value(3), Value(int64_t{2})}));
}

TEST_F(FinalizeTest, SumMinMaxAvg) {
  {
    OptimizerRunResult r = MakeResult();
    ASSERT_TRUE(ApplyPostProcessing(AggSpec(AggFn::kSum), cluster_, &r).ok());
    EXPECT_EQ(r.rows[0][1], Value(int64_t{60}));
  }
  {
    OptimizerRunResult r = MakeResult();
    ASSERT_TRUE(ApplyPostProcessing(AggSpec(AggFn::kMin), cluster_, &r).ok());
    EXPECT_EQ(r.rows[0][1], Value(int64_t{10}));
  }
  {
    OptimizerRunResult r = MakeResult();
    ASSERT_TRUE(ApplyPostProcessing(AggSpec(AggFn::kMax), cluster_, &r).ok());
    EXPECT_EQ(r.rows[0][1], Value(int64_t{30}));
  }
  {
    OptimizerRunResult r = MakeResult();
    ASSERT_TRUE(ApplyPostProcessing(AggSpec(AggFn::kAvg), cluster_, &r).ok());
    EXPECT_EQ(r.rows[0][1], Value(20.0));
  }
}

TEST_F(FinalizeTest, NullsIgnoredByAggregates) {
  OptimizerRunResult result;
  result.columns = {"t.g", "t.v"};
  result.rows = {{Value(1), Value(10)},
                 {Value(1), Value::Null()},
                 {Value(1), Value(20)}};
  ASSERT_TRUE(
      ApplyPostProcessing(AggSpec(AggFn::kCount), cluster_, &result).ok());
  EXPECT_EQ(result.rows[0][1], Value(int64_t{2}));
}

TEST_F(FinalizeTest, OrderByDescendingAndLimit) {
  OptimizerRunResult result = MakeResult();
  QuerySpec spec = AggSpec(AggFn::kSum);
  spec.order_by = {{"agg", true}};
  spec.limit = 2;
  ASSERT_TRUE(ApplyPostProcessing(spec, cluster_, &result).ok());
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_EQ(result.rows[0][1], Value(int64_t{60}));   // g=1.
  EXPECT_EQ(result.rows[1][1], Value(int64_t{14}));   // g=3.
}

TEST_F(FinalizeTest, OrderByWithoutAggregation) {
  OptimizerRunResult result = MakeResult();
  QuerySpec spec;
  spec.projections = {"t.g", "t.v"};
  spec.order_by = {{"t.v", false}};
  spec.limit = 3;
  ASSERT_TRUE(ApplyPostProcessing(spec, cluster_, &result).ok());
  ASSERT_EQ(result.rows.size(), 3u);
  EXPECT_EQ(result.rows[0][1], Value(5));
  EXPECT_EQ(result.rows[1][1], Value(7));
  EXPECT_EQ(result.rows[2][1], Value(7));
}

TEST_F(FinalizeTest, ChargesSimulatedCost) {
  OptimizerRunResult result = MakeResult();
  double before = result.metrics.simulated_seconds;
  ASSERT_TRUE(
      ApplyPostProcessing(AggSpec(AggFn::kCount), cluster_, &result).ok());
  EXPECT_GT(result.metrics.simulated_seconds, before);
  EXPECT_EQ(result.metrics.rows_out, 3u);
}

TEST_F(FinalizeTest, GlobalAggregateNoGroupBy) {
  OptimizerRunResult result = MakeResult();
  QuerySpec spec;
  spec.projections = {"t.v"};
  spec.aggregates = {{AggFn::kSum, "t.v", "total"}};
  // Columns include t.g but aggregation only reads t.v.
  ASSERT_TRUE(ApplyPostProcessing(spec, cluster_, &result).ok());
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.columns, (std::vector<std::string>{"total"}));
  EXPECT_EQ(result.rows[0][0], Value(int64_t{79}));
}

/// End-to-end: aggregation through SQL and every optimizer.
TEST(AggregationEndToEndTest, AllOptimizersAgree) {
  Engine engine;
  Rng rng(3);
  auto fact = std::make_shared<Table>(
      "fact",
      Schema({{"k", ValueType::kInt64}, {"v", ValueType::kInt64}}),
      engine.cluster().num_nodes);
  ASSERT_TRUE(fact->SetPartitionKey({"k"}).ok());
  for (int i = 0; i < 5000; ++i) {
    fact->AppendRow({Value(rng.NextInt64(0, 49)), Value(rng.NextInt64(0, 9))});
  }
  auto dim = std::make_shared<Table>(
      "dim",
      Schema({{"k", ValueType::kInt64}, {"name", ValueType::kString}}),
      engine.cluster().num_nodes);
  ASSERT_TRUE(dim->SetPartitionKey({"k"}).ok());
  for (int i = 0; i < 50; ++i) {
    dim->AppendRow({Value(i), Value("d" + std::to_string(i % 5))});
  }
  ASSERT_TRUE(engine.catalog().RegisterTable(fact).ok());
  ASSERT_TRUE(engine.catalog().RegisterTable(dim).ok());
  ASSERT_TRUE(engine.CollectBaseStats("fact", {"k", "v"}).ok());
  ASSERT_TRUE(engine.CollectBaseStats("dim", {"k", "name"}).ok());

  auto query = ParseAndBind(
      "SELECT d.name, COUNT(f.v), SUM(f.v), MIN(f.v), MAX(f.v) "
      "FROM fact f, dim d WHERE f.k = d.k "
      "GROUP BY d.name ORDER BY d.name LIMIT 4",
      engine.catalog());
  ASSERT_TRUE(query.ok()) << query.status().ToString();

  DynamicOptimizer dynamic(&engine);
  auto dyn = dynamic.Run(query.value());
  ASSERT_TRUE(dyn.ok()) << dyn.status().ToString();
  EXPECT_EQ(dyn->rows.size(), 4u);
  EXPECT_EQ(dyn->columns[0], "d.name");
  EXPECT_EQ(dyn->columns.size(), 5u);

  StaticCostBasedOptimizer cost_based(&engine);
  auto cb = cost_based.Run(query.value());
  ASSERT_TRUE(cb.ok()) << cb.status().ToString();
  EXPECT_EQ(dyn->rows, cb->rows);
  EXPECT_EQ(dyn->columns, cb->columns);

  // Sanity against a hand computation: total count over all groups
  // without LIMIT equals the fact row count.
  auto no_limit = ParseAndBind(
      "SELECT d.name, COUNT(f.v) FROM fact f, dim d WHERE f.k = d.k "
      "GROUP BY d.name",
      engine.catalog());
  ASSERT_TRUE(no_limit.ok());
  auto all = dynamic.Run(no_limit.value());
  ASSERT_TRUE(all.ok());
  int64_t total = 0;
  for (const Row& row : all->rows) total += row[1].AsInt64();
  EXPECT_EQ(total, 5000);
}

TEST(AggregationBinderTest, UngroupedColumnRejected) {
  Engine engine;
  auto t = std::make_shared<Table>(
      "t", Schema({{"a", ValueType::kInt64}, {"b", ValueType::kInt64}}), 2);
  ASSERT_TRUE(engine.catalog().RegisterTable(t).ok());
  auto bad = ParseAndBind("SELECT t.a, COUNT(t.b) FROM t", engine.catalog());
  EXPECT_EQ(bad.status().code(), StatusCode::kBindError);
  auto good = ParseAndBind(
      "SELECT t.a, COUNT(t.b) FROM t GROUP BY t.a", engine.catalog());
  EXPECT_TRUE(good.ok()) << good.status().ToString();
  EXPECT_EQ(good->aggregates.size(), 1u);
  EXPECT_EQ(good->aggregates[0].fn, AggFn::kCount);
  EXPECT_EQ(good->OutputColumns(),
            (std::vector<std::string>{"t.a", "COUNT(t.b)"}));
}

TEST(AggregationBinderTest, OrderByMustReferenceOutput) {
  Engine engine;
  auto t = std::make_shared<Table>(
      "t", Schema({{"a", ValueType::kInt64}, {"b", ValueType::kInt64}}), 2);
  ASSERT_TRUE(engine.catalog().RegisterTable(t).ok());
  auto bad = ParseAndBind(
      "SELECT t.a FROM t GROUP BY t.a ORDER BY t.b", engine.catalog());
  EXPECT_FALSE(bad.ok());
}

}  // namespace
}  // namespace dynopt
