// EXPLAIN ANALYZE:
//  - golden-file comparison on TPC-H Q9 under the dynamic optimizer; the
//    rendered text includes only deterministic quantities (estimates,
//    actual rows, q-errors, simulated-cost counters), so any drift is a
//    real behavior change. Regenerate with DYNOPT_REGEN_GOLDEN=1.
//  - golden-file comparison on Q9 under sketch-dynamic with predicate
//    transfer enabled: the pt[...] counters and est_src=sketch provenance
//    are pinned down the same way (explain_analyze_q9_sketch.txt).
//  - all seven strategies produce a QueryProfile on TPC-DS Q17 whose
//    decision log carries estimate-vs-actual rows and a q-error.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "exec/engine.h"
#include "opt/dynamic_optimizer.h"
#include "opt/explain.h"
#include "opt/ingres_optimizer.h"
#include "opt/order_baselines.h"
#include "opt/pilot_run_optimizer.h"
#include "opt/sketch_optimizer.h"
#include "opt/static_optimizer.h"
#include "workloads/tpcds.h"
#include "workloads/tpch.h"

#ifndef DYNOPT_GOLDEN_DIR
#define DYNOPT_GOLDEN_DIR "tests/golden"
#endif

namespace dynopt {
namespace {

class ExplainAnalyzeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    engine_ = new Engine();
    TpcdsOptions tpcds;
    tpcds.sf = 0.2;
    ASSERT_TRUE(LoadTpcds(engine_, tpcds).ok());
    TpchOptions tpch;
    tpch.sf = 0.2;
    ASSERT_TRUE(LoadTpch(engine_, tpch).ok());
  }
  static void TearDownTestSuite() {
    delete engine_;
    engine_ = nullptr;
  }
  static Engine* engine_;
};

Engine* ExplainAnalyzeTest::engine_ = nullptr;

/// Compares text to the named golden file, regenerating it (and skipping)
/// when DYNOPT_REGEN_GOLDEN is set.
void CompareGolden(const std::string& text, const std::string& file_name) {
  const std::string golden_path =
      std::string(DYNOPT_GOLDEN_DIR) + "/" + file_name;
  if (std::getenv("DYNOPT_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
    out << text;
    GTEST_SKIP() << "regenerated " << golden_path;
  }

  std::ifstream in(golden_path);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path
                         << " (run once with DYNOPT_REGEN_GOLDEN=1)";
  std::stringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(text, golden.str())
      << "EXPLAIN ANALYZE drifted from the golden file; if the change is "
         "intended, regenerate with DYNOPT_REGEN_GOLDEN=1";
}

TEST_F(ExplainAnalyzeTest, GoldenQ9Dynamic) {
  auto query = TpchQ9(engine_);
  ASSERT_TRUE(query.ok());
  DynamicOptimizer optimizer(engine_);
  auto result = optimizer.Run(query.value());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto text = ExplainAnalyze(engine_, query.value(), result.value());
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  CompareGolden(text.value(), "explain_analyze_q9.txt");
}

// Sketch-dynamic on Q9 with predicate transfer on, against its own engine
// so the shared fixture engine (and the dynamic golden above) stays
// untouched by sketch collection.
TEST_F(ExplainAnalyzeTest, GoldenQ9SketchDynamic) {
  Engine engine;
  engine.mutable_cluster().sketch.enable_predicate_transfer = true;
  TpchOptions tpch;
  tpch.sf = 0.2;
  ASSERT_TRUE(LoadTpch(&engine, tpch).ok());

  auto query = TpchQ9(&engine);
  ASSERT_TRUE(query.ok());
  SketchDynamicOptimizer optimizer(&engine);
  auto result = optimizer.Run(query.value());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->metrics.pt_pruned_bytes, 0u);
  auto text = ExplainAnalyze(&engine, query.value(), result.value());
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("est_src=sketch"), std::string::npos) << *text;
  EXPECT_NE(text->find("pt_filter="), std::string::npos) << *text;
  CompareGolden(text.value(), "explain_analyze_q9_sketch.txt");
}

// Q9 run twice on a dedicated engine with the in-memory error store armed:
// run 1 plans blind and records its q-errors, run 2 consumes them as priors
// — the decisions that did so carry a "prior=<key>x<factor>" annotation in
// EXPLAIN ANALYZE, golden-pinned like the other renderings.
TEST(ExplainAnalyzePriorTest, GoldenQ9DynamicWithPriors) {
  Engine engine;
  TpchOptions tpch;
  tpch.sf = 0.2;
  ASSERT_TRUE(LoadTpch(&engine, tpch).ok());
  // Empty error_stats_path = in-memory store: deterministic, no file I/O.
  engine.mutable_cluster().risk.use_error_store = true;

  auto query = TpchQ9(&engine);
  ASSERT_TRUE(query.ok());
  DynamicOptimizer first(&engine);
  auto seed = first.Run(query.value());
  ASSERT_TRUE(seed.ok()) << seed.status().ToString();
  DynamicOptimizer second(&engine);
  auto result = second.Run(query.value());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto text = ExplainAnalyze(&engine, query.value(), result.value());
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("prior="), std::string::npos)
      << "second run consumed no error-store prior:\n" << text.value();
  CompareGolden(text.value(), "explain_analyze_q9_prior.txt");
}

TEST_F(ExplainAnalyzeTest, AllSevenStrategiesProfileQ17) {
  auto query = TpcdsQ17(engine_);
  ASSERT_TRUE(query.ok());

  // best-order needs a hint: the plan a dynamic run discovers.
  DynamicOptimizer hint_source(engine_);
  auto hint_run = hint_source.Run(query.value());
  ASSERT_TRUE(hint_run.ok());
  std::shared_ptr<const JoinTree> hint = hint_run->join_tree;
  ASSERT_NE(hint, nullptr);

  std::unique_ptr<Optimizer> optimizers[7];
  optimizers[0] = std::make_unique<DynamicOptimizer>(engine_);
  optimizers[1] = std::make_unique<BestOrderOptimizer>(engine_, hint);
  optimizers[2] =
      std::make_unique<StaticCostBasedOptimizer>(engine_, PlannerOptions());
  optimizers[3] = std::make_unique<PilotRunOptimizer>(engine_);
  optimizers[4] =
      std::make_unique<IngresLikeOptimizer>(engine_, PlannerOptions());
  optimizers[5] =
      std::make_unique<WorstOrderOptimizer>(engine_, PlannerOptions());
  optimizers[6] = std::make_unique<SketchDynamicOptimizer>(engine_);

  for (auto& optimizer : optimizers) {
    SCOPED_TRACE(optimizer->name());
    auto result = optimizer->Run(query.value());
    ASSERT_TRUE(result.ok()) << result.status().ToString();

    // Every strategy attaches a profile with at least one decision whose
    // actual cardinality was back-patched.
    ASSERT_NE(result->profile, nullptr);
    const DecisionLog& log = result->profile->decisions;
    EXPECT_GT(log.decisions().size(), 0u);
    EXPECT_GT(log.NumWithActuals(), 0u);
    EXPECT_GE(log.MaxQError(), 1.0);
    EXPECT_EQ(result->metrics.num_decisions, log.decisions().size());
    EXPECT_EQ(result->metrics.max_q_error, log.MaxQError());
    EXPECT_FALSE(result->profile->subtree_actual_rows.empty());

    auto text = ExplainAnalyze(engine_, query.value(), result.value());
    ASSERT_TRUE(text.ok()) << text.status().ToString();
    EXPECT_NE(text->find("EXPLAIN ANALYZE"), std::string::npos);
    EXPECT_NE(text->find("est_rows="), std::string::npos) << *text;
    EXPECT_NE(text->find("actual_rows="), std::string::npos) << *text;
    EXPECT_NE(text->find("q_error="), std::string::npos) << *text;
    EXPECT_NE(text->find("-- decisions:"), std::string::npos);
    EXPECT_NE(text->find("-- counters --"), std::string::npos);
  }
}

TEST_F(ExplainAnalyzeTest, RejectsRunWithoutProfile) {
  auto query = TpchQ9(engine_);
  ASSERT_TRUE(query.ok());
  OptimizerRunResult bare;
  EXPECT_FALSE(ExplainAnalyze(engine_, query.value(), bare).ok());
}

}  // namespace
}  // namespace dynopt
