#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "exec/engine.h"
#include "opt/dynamic_optimizer.h"
#include "sql/binder.h"
#include "storage/csv.h"

namespace dynopt {
namespace {

std::string WriteTempCsv(const std::string& content) {
  static int counter = 0;
  std::string path =
      "/tmp/dynopt_csv_test_" + std::to_string(counter++) + ".csv";
  std::ofstream out(path);
  out << content;
  return path;
}

TEST(CsvSplitTest, PlainCells) {
  EXPECT_EQ(SplitCsvLine("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitCsvLine("a,,c", ','),
            (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(SplitCsvLine("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(SplitCsvLine("a|b", '|'), (std::vector<std::string>{"a", "b"}));
}

TEST(CsvSplitTest, QuotedCells) {
  EXPECT_EQ(SplitCsvLine("\"a,b\",c", ','),
            (std::vector<std::string>{"a,b", "c"}));
  EXPECT_EQ(SplitCsvLine("\"say \"\"hi\"\"\",x", ','),
            (std::vector<std::string>{"say \"hi\"", "x"}));
}

TEST(CsvCellTest, Conversions) {
  CsvOptions options;
  EXPECT_EQ(ParseCsvCell("42", ValueType::kInt64, options).value(),
            Value(int64_t{42}));
  EXPECT_EQ(ParseCsvCell("-7", ValueType::kInt64, options).value(),
            Value(int64_t{-7}));
  EXPECT_EQ(ParseCsvCell("2.5", ValueType::kDouble, options).value(),
            Value(2.5));
  EXPECT_EQ(ParseCsvCell("true", ValueType::kBool, options).value(),
            Value(true));
  EXPECT_EQ(ParseCsvCell("hello", ValueType::kString, options).value(),
            Value("hello"));
  EXPECT_TRUE(
      ParseCsvCell("\\N", ValueType::kInt64, options).value().is_null());
  EXPECT_TRUE(ParseCsvCell("", ValueType::kInt64, options).value().is_null());
  // Empty string cells are empty strings, not NULL.
  EXPECT_EQ(ParseCsvCell("", ValueType::kString, options).value(), Value(""));
  EXPECT_FALSE(ParseCsvCell("4x2", ValueType::kInt64, options).ok());
  EXPECT_FALSE(ParseCsvCell("1.2.3", ValueType::kDouble, options).ok());
  EXPECT_FALSE(ParseCsvCell("maybe", ValueType::kBool, options).ok());
}

TEST(CsvLoadTest, LoadsAndPartitions) {
  std::string path = WriteTempCsv(
      "id,name,score\n"
      "1,alice,9.5\n"
      "2,bob,\\N\n"
      "3,\"c,d\",7.0\n");
  Schema schema({{"id", ValueType::kInt64},
                 {"name", ValueType::kString},
                 {"score", ValueType::kDouble}});
  CsvOptions options;
  options.partition_key = {"id"};
  auto table = LoadCsvTable("people", schema, path, 4, options);
  std::remove(path.c_str());
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ((*table)->NumRows(), 3u);
  // Find bob's row and check the NULL.
  bool found_bob = false;
  for (size_t p = 0; p < (*table)->num_partitions(); ++p) {
    for (const Row& row : (*table)->partition(p)) {
      if (row[1] == Value("bob")) {
        found_bob = true;
        EXPECT_TRUE(row[2].is_null());
      }
      if (row[0] == Value(3)) EXPECT_EQ(row[1], Value("c,d"));
    }
  }
  EXPECT_TRUE(found_bob);
}

TEST(CsvLoadTest, ErrorsAreSpecific) {
  Schema schema({{"id", ValueType::kInt64}});
  EXPECT_EQ(LoadCsvTable("t", schema, "/nonexistent.csv", 2).status().code(),
            StatusCode::kNotFound);

  std::string bad_arity = WriteTempCsv("id\n1,2\n");
  auto r1 = LoadCsvTable("t", schema, bad_arity, 2);
  std::remove(bad_arity.c_str());
  EXPECT_EQ(r1.status().code(), StatusCode::kInvalidArgument);

  std::string bad_cell = WriteTempCsv("id\nnot_a_number\n");
  auto r2 = LoadCsvTable("t", schema, bad_cell, 2);
  std::remove(bad_cell.c_str());
  EXPECT_EQ(r2.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvLoadTest, NoHeaderAndCustomDelimiter) {
  std::string path = WriteTempCsv("1|x\n2|y\n");
  Schema schema({{"k", ValueType::kInt64}, {"v", ValueType::kString}});
  CsvOptions options;
  options.has_header = false;
  options.delimiter = '|';
  auto table = LoadCsvTable("t", schema, path, 2, options);
  std::remove(path.c_str());
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->NumRows(), 2u);
}

TEST(CsvLoadTest, LoadedTableIsQueryable) {
  std::string users = WriteTempCsv(
      "id,country\n"
      "1,DE\n2,US\n3,DE\n4,FR\n");
  std::string orders = WriteTempCsv(
      "oid,user_id,amount\n"
      "10,1,5.0\n11,1,6.0\n12,2,7.0\n13,3,8.0\n");
  Engine engine;
  CsvOptions key_id;
  key_id.partition_key = {"id"};
  auto users_table = LoadCsvTable(
      "users",
      Schema({{"id", ValueType::kInt64}, {"country", ValueType::kString}}),
      users, engine.cluster().num_nodes, key_id);
  CsvOptions key_oid;
  key_oid.partition_key = {"oid"};
  auto orders_table = LoadCsvTable("orders",
                                   Schema({{"oid", ValueType::kInt64},
                                           {"user_id", ValueType::kInt64},
                                           {"amount", ValueType::kDouble}}),
                                   orders, engine.cluster().num_nodes,
                                   key_oid);
  std::remove(users.c_str());
  std::remove(orders.c_str());
  ASSERT_TRUE(users_table.ok() && orders_table.ok());
  ASSERT_TRUE(engine.catalog().RegisterTable(users_table.value()).ok());
  ASSERT_TRUE(engine.catalog().RegisterTable(orders_table.value()).ok());

  auto query = ParseAndBind(
      "SELECT u.country, SUM(o.amount) FROM users u, orders o "
      "WHERE u.id = o.user_id AND u.country = 'DE' GROUP BY u.country",
      engine.catalog());
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  DynamicOptimizer optimizer(&engine);
  auto result = optimizer.Run(query.value());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0], Value("DE"));
  EXPECT_EQ(result->rows[0][1], Value(19.0));  // 5+6+8.
}

}  // namespace
}  // namespace dynopt
