#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "exec/engine.h"
#include "workloads/tpcds.h"
#include "workloads/tpch.h"

namespace dynopt {
namespace {

// --- TPC-H generator ----------------------------------------------------------

class TpchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    engine_ = new Engine();
    TpchOptions options;
    options.sf = 0.5;
    ASSERT_TRUE(LoadTpch(engine_, options).ok());
  }
  static void TearDownTestSuite() {
    delete engine_;
    engine_ = nullptr;
  }

  static std::shared_ptr<Table> Get(const std::string& name) {
    auto t = engine_->catalog().GetTable(name);
    EXPECT_TRUE(t.ok());
    return t.value();
  }

  static Engine* engine_;
};

Engine* TpchTest::engine_ = nullptr;

TEST_F(TpchTest, CardinalitySchedule) {
  TpchCardinalities c = ComputeTpchCardinalities(0.5);
  EXPECT_EQ(Get("region")->NumRows(), 5u);
  EXPECT_EQ(Get("nation")->NumRows(), 25u);
  EXPECT_EQ(Get("supplier")->NumRows(), c.supplier);
  EXPECT_EQ(Get("customer")->NumRows(), c.customer);
  EXPECT_EQ(Get("part")->NumRows(), c.part);
  EXPECT_EQ(Get("partsupp")->NumRows(), c.part * 4);
  EXPECT_EQ(Get("orders")->NumRows(), c.orders);
  // 1-7 lines per order.
  EXPECT_GE(Get("lineitem")->NumRows(), c.orders);
  EXPECT_LE(Get("lineitem")->NumRows(), c.orders * 7);
}

TEST_F(TpchTest, LineitemForeignKeysValid) {
  auto orders = Get("orders");
  auto part = Get("part");
  auto supplier = Get("supplier");
  auto lineitem = Get("lineitem");
  const int64_t max_order = static_cast<int64_t>(orders->NumRows());
  const int64_t max_part = static_cast<int64_t>(part->NumRows());
  const int64_t max_supp = static_cast<int64_t>(supplier->NumRows());
  for (size_t p = 0; p < lineitem->num_partitions(); ++p) {
    for (const Row& row : lineitem->partition(p)) {
      EXPECT_LT(row[0].AsInt64(), max_order);  // l_orderkey.
      EXPECT_LT(row[2].AsInt64(), max_part);   // l_partkey.
      EXPECT_LT(row[3].AsInt64(), max_supp);   // l_suppkey.
    }
  }
}

TEST_F(TpchTest, LineitemPairsExistInPartsupp) {
  // Q9's composite join depends on every (l_partkey, l_suppkey) pair
  // existing in partsupp.
  auto partsupp = Get("partsupp");
  std::set<std::pair<int64_t, int64_t>> pairs;
  for (size_t p = 0; p < partsupp->num_partitions(); ++p) {
    for (const Row& row : partsupp->partition(p)) {
      pairs.emplace(row[0].AsInt64(), row[1].AsInt64());
    }
  }
  auto lineitem = Get("lineitem");
  for (size_t p = 0; p < lineitem->num_partitions(); ++p) {
    for (const Row& row : lineitem->partition(p)) {
      EXPECT_TRUE(pairs.count({row[2].AsInt64(), row[3].AsInt64()}) > 0)
          << "dangling (partkey, suppkey) = (" << row[2].AsInt64() << ", "
          << row[3].AsInt64() << ")";
    }
  }
}

TEST_F(TpchTest, BrandSkewPlanted) {
  // ~55% of parts carry brand '#3...' so mysub(p_brand) = '#3' is far off
  // the Selinger default of 0.1.
  auto part = Get("part");
  int brand3 = 0, total = 0;
  for (size_t p = 0; p < part->num_partitions(); ++p) {
    for (const Row& row : part->partition(p)) {
      ++total;
      if (row[2].AsString().rfind("Brand#3", 0) == 0) ++brand3;
    }
  }
  EXPECT_NEAR(static_cast<double>(brand3) / total, 0.55, 0.05);
}

TEST_F(TpchTest, StatusDateCorrelationPlanted) {
  // P(F | old order) ~ 0.98, P(F | recent) ~ 0.02.
  auto orders = Get("orders");
  int old_f = 0, old_total = 0, new_f = 0, new_total = 0;
  for (size_t p = 0; p < orders->num_partitions(); ++p) {
    for (const Row& row : orders->partition(p)) {
      bool old_order = row[2].AsInt64() < 19950401;
      bool finished = row[3].AsString() == "F";
      if (old_order) {
        ++old_total;
        old_f += finished;
      } else {
        ++new_total;
        new_f += finished;
      }
    }
  }
  EXPECT_GT(static_cast<double>(old_f) / old_total, 0.9);
  EXPECT_LT(static_cast<double>(new_f) / new_total, 0.1);
}

TEST_F(TpchTest, UdfsRegisteredAndCorrect) {
  const UdfFn* myyear = engine_->udfs().Lookup("myyear");
  const UdfFn* myym = engine_->udfs().Lookup("myym");
  const UdfFn* mysub = engine_->udfs().Lookup("mysub");
  ASSERT_NE(myyear, nullptr);
  ASSERT_NE(myym, nullptr);
  ASSERT_NE(mysub, nullptr);
  EXPECT_EQ((*myyear)({Value(int64_t{19960315})}), Value(int64_t{1996}));
  EXPECT_EQ((*myym)({Value(int64_t{19960315})}), Value(int64_t{199603}));
  EXPECT_EQ((*mysub)({Value("Brand#42")}), Value("#4"));
  EXPECT_EQ((*myyear)({Value::Null()}), Value::Null());
}

TEST_F(TpchTest, BaseStatsCollected) {
  const TableStats* stats = engine_->stats().Get("lineitem");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->row_count, Get("lineitem")->NumRows());
  ASSERT_TRUE(stats->HasColumn("l_orderkey"));
  EXPECT_NEAR(stats->Column("l_orderkey")->ndv,
              static_cast<double>(Get("orders")->NumRows()),
              0.1 * static_cast<double>(Get("orders")->NumRows()));
}

TEST_F(TpchTest, IndexesCreatedOnDemand) {
  ASSERT_TRUE(CreateTpchIndexes(engine_).ok());
  EXPECT_TRUE(Get("lineitem")->HasSecondaryIndex("l_partkey"));
  EXPECT_TRUE(Get("lineitem")->HasSecondaryIndex("l_suppkey"));
  // Idempotent.
  EXPECT_TRUE(CreateTpchIndexes(engine_).ok());
}

TEST_F(TpchTest, QueriesBindCleanly) {
  auto q8 = TpchQ8(engine_);
  ASSERT_TRUE(q8.ok()) << q8.status().ToString();
  EXPECT_EQ(q8->tables.size(), 8u);
  EXPECT_EQ(q8->joins.size(), 7u);
  auto q9 = TpchQ9(engine_);
  ASSERT_TRUE(q9.ok()) << q9.status().ToString();
  EXPECT_EQ(q9->tables.size(), 6u);
  // partsupp joins lineitem on a composite key.
  bool composite = false;
  for (const auto& edge : q9->joins) {
    if (edge.keys.size() == 2) composite = true;
  }
  EXPECT_TRUE(composite);
}

TEST(TpchDeterminismTest, SameSeedSameData) {
  Engine a, b;
  TpchOptions options;
  options.sf = 0.1;
  options.collect_base_stats = false;
  ASSERT_TRUE(LoadTpch(&a, options).ok());
  ASSERT_TRUE(LoadTpch(&b, options).ok());
  auto ta = a.catalog().GetTable("orders").value();
  auto tb = b.catalog().GetTable("orders").value();
  ASSERT_EQ(ta->NumRows(), tb->NumRows());
  for (size_t p = 0; p < ta->num_partitions(); ++p) {
    ASSERT_EQ(ta->partition(p).size(), tb->partition(p).size());
    for (size_t r = 0; r < ta->partition(p).size(); ++r) {
      EXPECT_EQ(ta->partition(p)[r], tb->partition(p)[r]);
    }
  }
}

// --- TPC-DS generator -----------------------------------------------------------

class TpcdsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    engine_ = new Engine();
    TpcdsOptions options;
    options.sf = 0.5;
    ASSERT_TRUE(LoadTpcds(engine_, options).ok());
  }
  static void TearDownTestSuite() {
    delete engine_;
    engine_ = nullptr;
  }
  static std::shared_ptr<Table> Get(const std::string& name) {
    auto t = engine_->catalog().GetTable(name);
    EXPECT_TRUE(t.ok());
    return t.value();
  }
  static Engine* engine_;
};

Engine* TpcdsTest::engine_ = nullptr;

TEST_F(TpcdsTest, CardinalitySchedule) {
  TpcdsCardinalities c = ComputeTpcdsCardinalities(0.5);
  EXPECT_EQ(Get("date_dim")->NumRows(), c.date_dim);
  EXPECT_EQ(Get("store")->NumRows(), c.store);
  EXPECT_EQ(Get("item")->NumRows(), c.item);
  EXPECT_EQ(Get("store_sales")->NumRows(), c.store_sales);
  EXPECT_EQ(Get("catalog_sales")->NumRows(), c.catalog_sales);
  // Returns ~10% of sales.
  EXPECT_NEAR(static_cast<double>(Get("store_returns")->NumRows()),
              0.1 * c.store_sales, 0.02 * c.store_sales);
}

TEST_F(TpcdsTest, DateDimConsistent) {
  auto dd = Get("date_dim");
  for (size_t p = 0; p < dd->num_partitions(); ++p) {
    for (const Row& row : dd->partition(p)) {
      int64_t date = row[1].AsInt64();
      EXPECT_EQ(row[2].AsInt64(), date / 10000);       // d_year.
      EXPECT_EQ(row[3].AsInt64(), (date / 100) % 100);  // d_moy.
      EXPECT_GE(row[3].AsInt64(), 1);
      EXPECT_LE(row[3].AsInt64(), 12);
    }
  }
}

TEST_F(TpcdsTest, ReturnsReferenceRealSales) {
  // Every (item, ticket, customer) triple in store_returns must exist in
  // store_sales — the 3-column fact-to-fact join of Q17/Q50.
  auto ss = Get("store_sales");
  std::set<std::tuple<int64_t, int64_t, int64_t>> sale_keys;
  for (size_t p = 0; p < ss->num_partitions(); ++p) {
    for (const Row& row : ss->partition(p)) {
      sale_keys.emplace(row[1].AsInt64(), row[3].AsInt64(),
                        row[2].AsInt64());
    }
  }
  auto sr = Get("store_returns");
  for (size_t p = 0; p < sr->num_partitions(); ++p) {
    for (const Row& row : sr->partition(p)) {
      EXPECT_TRUE(sale_keys.count({row[1].AsInt64(), row[3].AsInt64(),
                                   row[2].AsInt64()}) > 0);
    }
  }
}

TEST_F(TpcdsTest, ReturnSeasonConcentration) {
  // >= 45% of returns should land in months 8-10 (vs 25% uniform).
  auto sr = Get("store_returns");
  auto dd = Get("date_dim");
  std::map<int64_t, int64_t> moy_by_sk;
  for (size_t p = 0; p < dd->num_partitions(); ++p) {
    for (const Row& row : dd->partition(p)) {
      moy_by_sk[row[0].AsInt64()] = row[3].AsInt64();
    }
  }
  int hot = 0, total = 0;
  for (size_t p = 0; p < sr->num_partitions(); ++p) {
    for (const Row& row : sr->partition(p)) {
      int64_t moy = moy_by_sk.at(row[0].AsInt64());
      ++total;
      if (moy >= 8 && moy <= 10) ++hot;
    }
  }
  EXPECT_GT(static_cast<double>(hot) / total, 0.45);
}

TEST_F(TpcdsTest, CustomerSkewPlanted) {
  // The busiest customer must appear far more often than the uniform
  // expectation (Zipf skew).
  auto ss = Get("store_sales");
  std::map<int64_t, int> counts;
  uint64_t total = 0;
  for (size_t p = 0; p < ss->num_partitions(); ++p) {
    for (const Row& row : ss->partition(p)) {
      ++counts[row[2].AsInt64()];
      ++total;
    }
  }
  int max_count = 0;
  for (const auto& [customer, count] : counts) {
    max_count = std::max(max_count, count);
  }
  double uniform_expectation =
      static_cast<double>(total) /
      static_cast<double>(ComputeTpcdsCardinalities(0.5).customers);
  EXPECT_GT(max_count, 10 * uniform_expectation);
}

TEST_F(TpcdsTest, QueriesBindCleanly) {
  auto q17 = TpcdsQ17(engine_);
  ASSERT_TRUE(q17.ok()) << q17.status().ToString();
  EXPECT_EQ(q17->tables.size(), 8u);
  // The ss-sr edge is a 3-column composite join.
  bool triple = false;
  for (const auto& edge : q17->joins) {
    if (edge.keys.size() == 3) triple = true;
  }
  EXPECT_TRUE(triple);
  auto q50 = TpcdsQ50(engine_, 9, 1999);
  ASSERT_TRUE(q50.ok()) << q50.status().ToString();
  EXPECT_EQ(q50->tables.size(), 5u);
  EXPECT_EQ(q50->params.at("moy"), Value(int64_t{9}));
}

TEST_F(TpcdsTest, IndexesCreated) {
  ASSERT_TRUE(CreateTpcdsIndexes(engine_).ok());
  EXPECT_TRUE(Get("store_sales")->HasSecondaryIndex("ss_sold_date_sk"));
  EXPECT_TRUE(Get("store_returns")->HasSecondaryIndex("sr_returned_date_sk"));
  EXPECT_TRUE(Get("catalog_sales")->HasSecondaryIndex("cs_sold_date_sk"));
}

}  // namespace
}  // namespace dynopt
