#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "exec/batch.h"
#include "exec/engine.h"
#include "exec/executor.h"
#include "exec/reference_kernels.h"
#include "exec/vector_kernels.h"

namespace dynopt {
namespace {

// Property tests for the vectorized columnar engine: random datasets and
// plans run through the columnar kernels and the row kernels must produce
// identical rows in identical order, bit-identical simulated seconds and
// deterministic counters, and identical row_sizes annotations. CI runs this
// binary under TSan (the batch kernels are partition-parallel) and under
// ASan+UBSan (the typed gathers and dictionary merges are pointer-heavy).

uint64_t TotalRowSizes(const Dataset& data) {
  uint64_t total = 0;
  for (const auto& part : data.row_sizes) {
    for (uint64_t s : part) total += s;
  }
  return total;
}

void ExpectDatasetsEqual(const Dataset& a, const Dataset& b) {
  EXPECT_EQ(a.columns, b.columns);
  ASSERT_EQ(a.partitions.size(), b.partitions.size());
  for (size_t p = 0; p < a.partitions.size(); ++p) {
    ASSERT_EQ(a.partitions[p].size(), b.partitions[p].size())
        << "partition " << p;
    for (size_t i = 0; i < a.partitions[p].size(); ++i) {
      EXPECT_EQ(a.partitions[p][i], b.partitions[p][i])
          << "partition " << p << " row " << i;
    }
  }
}

void ExpectMetricsEqual(const ExecMetrics& a, const ExecMetrics& b) {
  // Bit-exact: the columnar operators must charge exactly the same units of
  // work in exactly the same order as the row operators.
  EXPECT_EQ(a.simulated_seconds, b.simulated_seconds);
  EXPECT_EQ(a.reopt_seconds, b.reopt_seconds);
  EXPECT_EQ(a.tuples_processed, b.tuples_processed);
  EXPECT_EQ(a.bytes_scanned, b.bytes_scanned);
  EXPECT_EQ(a.bytes_shuffled, b.bytes_shuffled);
  EXPECT_EQ(a.bytes_broadcast, b.bytes_broadcast);
  EXPECT_EQ(a.bytes_intermediate_read, b.bytes_intermediate_read);
  EXPECT_EQ(a.index_lookups, b.index_lookups);
}

/// A random dataset exercising every ColumnKind: an int64 key with NULLs, a
/// second int64 key, a double, a string with a skewed (dictionary-friendly)
/// domain, and a deliberately mixed-type column (kValues fallback).
Dataset RandomDataset(uint64_t seed, size_t rows, size_t num_partitions,
                      int key_domain, double null_rate) {
  Dataset data({"t.k", "t.k2", "t.score", "t.name", "t.mixed"},
               num_partitions);
  Rng rng(seed);
  ZipfDistribution zipf(16, 1.2);
  for (size_t i = 0; i < rows; ++i) {
    Row row;
    row.push_back(rng.NextBool(null_rate)
                      ? Value::Null()
                      : Value(rng.NextInt64(0, key_domain - 1)));
    row.push_back(Value(rng.NextInt64(0, 4)));
    row.push_back(Value(rng.NextDouble() * 100.0));
    row.push_back(Value("name_" + std::to_string(zipf.Sample(rng))));
    switch (rng.NextInt64(0, 3)) {
      case 0:
        row.push_back(Value(rng.NextInt64(-5, 5)));
        break;
      case 1:
        row.push_back(Value(rng.NextDouble()));
        break;
      case 2:
        row.push_back(Value(std::string("m") + std::to_string(i % 7)));
        break;
      default:
        row.push_back(Value::Null());
        break;
    }
    data.partitions[rng.NextUint64(num_partitions)].push_back(std::move(row));
  }
  return data;
}

// --- Batch representation round-trip --------------------------------------

TEST(ColumnBatchTest, RoundTripPreservesRowsAndSizes) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    Dataset data = RandomDataset(seed, 500, 4, 40, 0.15);
    for (size_t batch_size : {1u, 3u, 64u, 1024u}) {
      ColumnarDataset columnar = FromDataset(data, batch_size);
      EXPECT_EQ(columnar.NumRows(), data.NumRows());
      Dataset back = ToDataset(std::move(columnar));
      ExpectDatasetsEqual(data, back);
      ASSERT_TRUE(back.HasRowSizes());
      for (size_t p = 0; p < back.partitions.size(); ++p) {
        for (size_t i = 0; i < back.partitions[p].size(); ++i) {
          EXPECT_EQ(back.row_sizes[p][i],
                    RowSizeBytes(back.partitions[p][i]));
        }
      }
    }
  }
}

TEST(ColumnBatchTest, BatchHashAndSizeMatchRowKernels) {
  Dataset data = RandomDataset(7, 300, 1, 20, 0.2);
  ColumnarDataset columnar = FromDataset(data, 64);
  const std::vector<int> keys = {0, 3};
  size_t row_idx = 0;
  for (const ColumnBatch& b : columnar.partitions[0]) {
    std::vector<uint64_t> hashes(b.num_rows);
    std::vector<uint8_t> nulls(b.num_rows, 0);
    HashKeyColumns(b, keys.data(), keys.size(), hashes.data(), nulls.data());
    for (size_t i = 0; i < b.num_rows; ++i, ++row_idx) {
      const Row& row = data.partitions[0][row_idx];
      EXPECT_EQ(hashes[i], HashRowKey(row, keys));
      EXPECT_EQ(nulls[i] != 0, row[0].is_null() || row[3].is_null());
      uint64_t size = 8;
      for (const Value& v : row) size += ValueSizeBytesInline(v);
      EXPECT_EQ(b.row_sizes[i], size);
    }
  }
  EXPECT_EQ(row_idx, data.partitions[0].size());
}

// --- Columnar kernels vs row reference kernels ----------------------------

TEST(ColumnarKernelTest, ShuffleAndJoinMatchRowReferenceKernels) {
  for (uint64_t seed : {11u, 12u, 13u, 14u}) {
    Engine engine;
    const ClusterConfig& cluster = engine.cluster();
    Dataset build = RandomDataset(seed, 400, cluster.num_nodes, 25, 0.1);
    Dataset probe =
        RandomDataset(seed + 100, 600, cluster.num_nodes, 25, 0.1);
    const std::vector<int> keys = {0, 1};

    // Row reference pipeline (sequential, recomputes hashes everywhere).
    ExecMetrics row_metrics;
    Dataset row_build = reference::Repartition(Dataset(build), keys, cluster,
                                               &row_metrics);
    Dataset row_probe = reference::Repartition(Dataset(probe), keys, cluster,
                                               &row_metrics);
    Dataset row_joined = reference::LocalHashJoin(
        row_build, row_probe, keys, keys, cluster, &row_metrics);

    // Columnar pipeline (parallel, hashes flow from shuffle into build and
    // probe).
    JobExecutor executor = engine.MakeExecutor();
    ExecMetrics col_metrics;
    auto cb = executor.RepartitionColumnar(
        FromDataset(build, cluster.exec.max_batch_size), keys, &col_metrics);
    ASSERT_TRUE(cb.ok()) << cb.status().ToString();
    auto pb = executor.RepartitionColumnar(
        FromDataset(probe, cluster.exec.max_batch_size), keys, &col_metrics);
    ASSERT_TRUE(pb.ok()) << pb.status().ToString();
    auto joined = executor.LocalHashJoinColumnar(cb->data, pb->data, keys,
                                                 keys, &col_metrics,
                                                 &cb->hashes, &pb->hashes);
    ASSERT_TRUE(joined.ok()) << joined.status().ToString();
    Dataset col_joined = ToDataset(std::move(*joined));

    ExpectDatasetsEqual(row_joined, col_joined);
    EXPECT_EQ(row_metrics.simulated_seconds, col_metrics.simulated_seconds);
    EXPECT_EQ(row_metrics.bytes_shuffled, col_metrics.bytes_shuffled);
    EXPECT_EQ(row_metrics.tuples_processed, col_metrics.tuples_processed);
    ASSERT_TRUE(col_joined.HasRowSizes());
    uint64_t annotated = TotalRowSizes(col_joined);
    uint64_t actual = 0;
    for (const auto& part : col_joined.partitions) {
      for (const Row& row : part) actual += RowSizeBytes(row);
    }
    EXPECT_EQ(annotated, actual);
  }
}

// --- Whole-query parity: columnar engine vs row engine --------------------

/// Fixture running the same plan under use_columnar on and off and
/// asserting full parity. Tables get every kind of column plus NULL keys.
class ColumnarParityTest : public ::testing::Test {
 protected:
  void SetUp() override { engine_ = std::make_unique<Engine>(); }

  void MakeTable(const std::string& name, int rows, int key_domain,
                 uint64_t seed, double null_rate = 0.1) {
    auto t = std::make_shared<Table>(
        name,
        Schema({{"k", ValueType::kInt64},
                {"k2", ValueType::kInt64},
                {"score", ValueType::kDouble},
                {"name", ValueType::kString}}),
        engine_->cluster().num_nodes);
    ASSERT_TRUE(t->SetPartitionKey({"k"}).ok());
    Rng rng(seed);
    ZipfDistribution zipf(32, 1.1);
    for (int i = 0; i < rows; ++i) {
      t->AppendRow({rng.NextBool(null_rate)
                        ? Value::Null()
                        : Value(rng.NextInt64(0, key_domain - 1)),
                    Value(rng.NextInt64(0, 5)),
                    Value(rng.NextDouble() * 10.0),
                    Value("s" + std::to_string(zipf.Sample(rng)))});
    }
    ASSERT_TRUE(engine_->catalog().RegisterTable(t).ok());
  }

  /// Executes `plan` with the columnar engine on and off; asserts identical
  /// rows, row_sizes annotations, and metering; returns the columnar run.
  JobResult ExpectParity(const PlanNode& plan,
                         const std::map<std::string, Value>& params = {}) {
    engine_->mutable_cluster().exec.use_columnar = true;
    JobExecutor columnar = engine_->MakeExecutor();
    auto col = columnar.Execute(plan, params);
    engine_->mutable_cluster().exec.use_columnar = false;
    JobExecutor row = engine_->MakeExecutor();
    auto rw = row.Execute(plan, params);
    EXPECT_EQ(col.ok(), rw.ok());
    if (!col.ok() || !rw.ok()) {
      EXPECT_EQ(col.status().ToString(), rw.status().ToString());
      return JobResult();
    }
    ExpectDatasetsEqual(rw->data, col->data);
    ExpectMetricsEqual(rw->metrics, col->metrics);
    return std::move(*col);
  }

  std::unique_ptr<Engine> engine_;
};

TEST_F(ColumnarParityTest, FilterPredicateZoo) {
  MakeTable("t", 800, 50, 21);
  ASSERT_TRUE(engine_->udfs()
                  .Register("half",
                            [](const std::vector<Value>& args) {
                              if (args[0].is_null()) return Value::Null();
                              return Value(args[0].AsDouble() / 2.0);
                            })
                  .ok());
  std::vector<ExprPtr> predicates = {
      Eq(Col("a", "k"), Lit(Value(3))),
      Cmp(CompareOp::kLt, Col("a", "score"), Lit(Value(4.5))),
      // Cross-type numeric comparison (int64 column vs double literal).
      Cmp(CompareOp::kGe, Col("a", "k"), Lit(Value(10.5))),
      Between(Col("a", "k"), Lit(Value(5)), Lit(Value(20))),
      // String comparisons against constants (dictionary fast path).
      Eq(Col("a", "name"), Lit(Value(std::string("s0")))),
      Cmp(CompareOp::kGt, Col("a", "name"), Lit(Value(std::string("s2")))),
      // NULL-propagating leaves under EvalBool coercion.
      Eq(Col("a", "k"), Lit(Value::Null())),
      // AND/OR/NOT trees over NULLable children.
      And({Cmp(CompareOp::kGe, Col("a", "k"), Lit(Value(10))),
           Or({Eq(Col("a", "k2"), Lit(Value(1))),
               Not(Eq(Col("a", "name"), Lit(Value(std::string("s1")))))})}),
      Not(Eq(Col("a", "k"), Lit(Value::Null()))),
      // Parameters and UDFs.
      Eq(Col("a", "k2"), Param("p")),
      Cmp(CompareOp::kLt, Udf("half", {Col("a", "score")}), Lit(Value(2.0))),
      // Column-vs-column comparison.
      Cmp(CompareOp::kLe, Col("a", "k2"), Col("a", "k")),
  };
  for (size_t i = 0; i < predicates.size(); ++i) {
    auto plan =
        PlanNode::Filter(PlanNode::Scan("t", "a"), predicates[i]);
    ExpectParity(*plan, {{"p", Value(2)}});
  }
}

TEST_F(ColumnarParityTest, FilterBindErrorsMatchRowEngine) {
  MakeTable("t", 10, 5, 22);
  auto bad_col =
      PlanNode::Filter(PlanNode::Scan("t", "a"), Eq(Col("a", "nope"),
                                                    Lit(Value(1))));
  ExpectParity(*bad_col);
  auto bad_param =
      PlanNode::Filter(PlanNode::Scan("t", "a"), Eq(Col("a", "k"),
                                                    Param("missing")));
  ExpectParity(*bad_param);
  auto bad_udf = PlanNode::Filter(PlanNode::Scan("t", "a"),
                                  Eq(Udf("nope", {Col("a", "k")}),
                                     Lit(Value(1))));
  ExpectParity(*bad_udf);
}

TEST_F(ColumnarParityTest, ShuffleJoinRandomized) {
  for (uint64_t seed : {31u, 32u, 33u}) {
    auto lhs = "lhs" + std::to_string(seed);
    auto rhs = "rhs" + std::to_string(seed);
    MakeTable(lhs, 700, 40, seed);
    MakeTable(rhs, 900, 40, seed + 1);
    // Join on k2 (not the partition key) to force real shuffle traffic;
    // composite key with NULLs on k.
    auto plan = PlanNode::Join(
        JoinMethod::kHashShuffle, PlanNode::Scan(lhs, "l"),
        PlanNode::Scan(rhs, "r"), {{"l.k", "r.k"}, {"l.k2", "r.k2"}});
    ExpectParity(*plan);
  }
}

TEST_F(ColumnarParityTest, BroadcastJoinIncludingOversized) {
  MakeTable("small", 150, 30, 41);
  MakeTable("big", 1200, 30, 42);
  auto plan = PlanNode::Join(JoinMethod::kBroadcast,
                             PlanNode::Scan("small", "l"),
                             PlanNode::Scan("big", "r"), {{"l.k", "r.k"}});
  JobResult result = ExpectParity(*plan);
  EXPECT_GT(result.metrics.bytes_broadcast, 0u);

  // Shrink the broadcast budget so the build side overflows: the legacy
  // spill penalty must be charged identically on both paths.
  engine_->mutable_cluster().broadcast_threshold_bytes = 512;
  ExpectParity(*plan);
}

TEST_F(ColumnarParityTest, MultiOperatorPipeline) {
  MakeTable("lhs", 600, 30, 51);
  MakeTable("rhs", 800, 30, 52);
  auto plan = PlanNode::Project(
      PlanNode::Join(
          JoinMethod::kHashShuffle,
          PlanNode::Filter(PlanNode::Scan("lhs", "l"),
                           Cmp(CompareOp::kGe, Col("l", "score"),
                               Lit(Value(2.0)))),
          PlanNode::Filter(PlanNode::Scan("rhs", "r"),
                           Between(Col("r", "k"), Lit(Value(2)),
                                   Lit(Value(25)))),
          {{"l.k2", "r.k2"}}),
      {"r.name", "l.score", "l.k"});
  ExpectParity(*plan);
}

TEST_F(ColumnarParityTest, EmptyInputsAndEmptyPartitions) {
  MakeTable("empty", 0, 10, 61);
  MakeTable("tiny", 3, 1000, 62, /*null_rate=*/0.0);
  MakeTable("t", 400, 20, 63);
  // Empty build side.
  ExpectParity(*PlanNode::Join(JoinMethod::kHashShuffle,
                               PlanNode::Scan("empty", "l"),
                               PlanNode::Scan("t", "r"),
                               {{"l.k", "r.k"}}));
  // Tiny build side: after shuffling by a 1000-value domain most of the 10
  // partitions are empty on the build side.
  ExpectParity(*PlanNode::Join(JoinMethod::kHashShuffle,
                               PlanNode::Scan("tiny", "l"),
                               PlanNode::Scan("t", "r"),
                               {{"l.k2", "r.k2"}}));
  // Empty probe side, broadcast method.
  ExpectParity(*PlanNode::Join(JoinMethod::kBroadcast,
                               PlanNode::Scan("t", "l"),
                               PlanNode::Scan("empty", "r"),
                               {{"l.k", "r.k"}}));
  // Filter that rejects everything.
  ExpectParity(*PlanNode::Filter(PlanNode::Scan("t", "a"),
                                 Eq(Col("a", "k"), Lit(Value(-1)))));
}

TEST_F(ColumnarParityTest, SimulatedTimeInvariantUnderBatchSize) {
  MakeTable("lhs", 500, 25, 71);
  MakeTable("rhs", 700, 25, 72);
  auto plan = PlanNode::Join(
      JoinMethod::kHashShuffle,
      PlanNode::Filter(PlanNode::Scan("lhs", "l"),
                       Cmp(CompareOp::kLt, Col("l", "score"),
                           Lit(Value(8.0)))),
      PlanNode::Scan("rhs", "r"), {{"l.k2", "r.k2"}});
  engine_->mutable_cluster().exec.use_columnar = true;
  JobResult baseline;
  bool first = true;
  for (size_t batch_size : {1u, 3u, 64u, 1024u, 4096u}) {
    engine_->mutable_cluster().exec.max_batch_size = batch_size;
    JobExecutor executor = engine_->MakeExecutor();
    auto result = executor.Execute(*plan, {});
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (first) {
      baseline = std::move(*result);
      first = false;
      continue;
    }
    ExpectDatasetsEqual(baseline.data, result->data);
    ExpectMetricsEqual(baseline.metrics, result->metrics);
  }
}

// --- Satellite: column slots resolve once per operator --------------------

TEST_F(ColumnarParityTest, NameLookupsIndependentOfRowCount) {
  MakeTable("small_t", 50, 20, 81);
  MakeTable("large_t", 5000, 20, 82);
  auto make_plan = [](const std::string& table) {
    return PlanNode::Project(
        PlanNode::Join(JoinMethod::kHashShuffle,
                       PlanNode::Filter(PlanNode::Scan(table, "l"),
                                        Cmp(CompareOp::kGe, Col("l", "k"),
                                            Lit(Value(1)))),
                       PlanNode::Scan(table, "r"), {{"l.k2", "r.k2"}}),
        {"l.name", "r.score"});
  };
  for (bool columnar : {true, false}) {
    engine_->mutable_cluster().exec.use_columnar = columnar;
    auto lookups_for = [&](const std::string& table) {
      JobExecutor executor = engine_->MakeExecutor();
      const uint64_t before = ColumnNameLookupCount().load();
      auto result = executor.Execute(*make_plan(table), {});
      EXPECT_TRUE(result.ok()) << result.status().ToString();
      return ColumnNameLookupCount().load() - before;
    };
    const uint64_t small = lookups_for("small_t");
    const uint64_t large = lookups_for("large_t");
    // 100x the rows, same plan: every kernel resolves its column slots once
    // per operator, so the lookup count is a function of the plan alone.
    EXPECT_EQ(small, large) << "columnar=" << columnar;
    EXPECT_GT(small, 0u);
    EXPECT_LT(small, 100u);
  }
}

// --- Satellite: config validation at parse time ---------------------------

TEST(ClusterConfigValidationTest, RejectsZeroBatchSize) {
  ClusterConfig config;
  config.exec.max_batch_size = 0;
  Status status = ValidateClusterConfig(config);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("max_batch_size"), std::string::npos)
      << status.message();
}

TEST(ClusterConfigValidationTest, AcceptsDefaultsAndBatchSizeOne) {
  EXPECT_TRUE(ValidateClusterConfig(ClusterConfig()).ok());
  ClusterConfig config;
  config.exec.max_batch_size = 1;
  EXPECT_TRUE(ValidateClusterConfig(config).ok());
}

}  // namespace
}  // namespace dynopt
