// Tracing & telemetry:
//  - TraceSpan nesting (depth + time containment) and Chrome-trace JSON
//    structure, including the file exporter;
//  - a disabled tracer records nothing (spans are inert no-ops);
//  - metering identity: running the same query with tracing enabled leaves
//    every deterministic ExecMetrics field byte-for-byte unchanged — the
//    observability layer's core promise (same pattern as
//    memory_test.cc's UngovernedContextDoesNotChangeMetering);
//  - MetricsRegistry counters/gauges/histograms and the text snapshot;
//  - DYNOPT_LOG_LEVEL parsing.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/metrics_registry.h"
#include "common/tracer.h"
#include "exec/engine.h"
#include "opt/dynamic_optimizer.h"
#include "opt/optimizer.h"
#include "workloads/tpch.h"

namespace dynopt {
namespace {

/// Each test starts from a clean slate: tracer disabled and empty.
class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Global().Disable();
    Tracer::Global().Drain();
  }
  void TearDown() override {
    Tracer::Global().Disable();
    Tracer::Global().Drain();
    // A test that failed mid-stream must not leak the open sink into the
    // next test (CloseStream on a closed sink just returns an error).
    if (Tracer::Global().streaming()) {
      (void)Tracer::Global().CloseStream();
    }
  }
};

TEST_F(TracerTest, DisabledTracerRecordsNothing) {
  ASSERT_FALSE(Tracer::Global().enabled());
  {
    TraceSpan outer("outer", "query");
    EXPECT_FALSE(outer.active());
    outer.AddArg("ignored", 1.0);
    TraceSpan inner("inner", "kernel");
    EXPECT_FALSE(inner.active());
  }
  EXPECT_TRUE(Tracer::Global().Drain().empty());
  EXPECT_EQ(Tracer::Global().CurrentDepth(), 0);
}

TEST_F(TracerTest, NestedSpansRecordDepthAndContainment) {
  Tracer::Global().Enable();
  {
    TraceSpan outer("outer", "query");
    ASSERT_TRUE(outer.active());
    EXPECT_EQ(Tracer::Global().CurrentDepth(), 1);
    outer.AddArg("rows", 42.0);
    outer.AddArg("label", "hello \"world\"");
    {
      TraceSpan inner("inner", "kernel");
      ASSERT_TRUE(inner.active());
      EXPECT_EQ(Tracer::Global().CurrentDepth(), 2);
    }
    EXPECT_EQ(Tracer::Global().CurrentDepth(), 1);
  }
  EXPECT_EQ(Tracer::Global().CurrentDepth(), 0);

  std::vector<TraceEvent> events = Tracer::Global().Drain();
  ASSERT_EQ(events.size(), 2u);
  // Drain sorts by start time: outer opened first.
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[0].category, "query");
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[1].depth, 1);
  // The child is contained in the parent's interval.
  EXPECT_GE(events[1].start_ns, events[0].start_ns);
  EXPECT_LE(events[1].start_ns + events[1].dur_ns,
            events[0].start_ns + events[0].dur_ns);
  // Same thread.
  EXPECT_EQ(events[0].tid, events[1].tid);
  // A second drain finds nothing.
  EXPECT_TRUE(Tracer::Global().Drain().empty());
}

TEST_F(TracerTest, EndIsIdempotentAndEarlyEndDropsDepth) {
  Tracer::Global().Enable();
  TraceSpan span("solo", "stage");
  ASSERT_TRUE(span.active());
  span.End();
  EXPECT_EQ(Tracer::Global().CurrentDepth(), 0);
  span.End();  // No double record, no depth underflow.
  EXPECT_EQ(Tracer::Global().CurrentDepth(), 0);
  EXPECT_EQ(Tracer::Global().Drain().size(), 1u);
}

TEST_F(TracerTest, DrainCollectsSpansFromOtherThreads) {
  Tracer::Global().Enable();
  std::thread worker([] { TraceSpan span("worker-span", "kernel"); });
  worker.join();
  TraceSpan main_span("main-span", "job");
  main_span.End();
  std::vector<TraceEvent> events = Tracer::Global().Drain();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
}

TEST_F(TracerTest, ChromeTraceJsonHasCompleteEventsAndEscapedArgs) {
  Tracer::Global().Enable();
  {
    TraceSpan span("shuffle", "kernel");
    span.AddArg("rows", 1234.0);
    span.AddArg("note", "quote\" backslash\\ tab\t");
  }
  std::vector<TraceEvent> events = Tracer::Global().Drain();
  ASSERT_EQ(events.size(), 1u);
  const std::string json = ChromeTraceJson(events);

  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"shuffle\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"kernel\""), std::string::npos);
  EXPECT_NE(json.find("\"rows\": 1234"), std::string::npos);
  // String args are escaped, not spliced raw.
  EXPECT_NE(json.find("quote\\\" backslash\\\\ tab\\t"), std::string::npos)
      << json;

  // The exporter writes the same document to disk.
  const std::string path = ::testing::TempDir() + "dynopt_trace_test.json";
  ASSERT_TRUE(WriteChromeTrace(path, events).ok());
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), json);
  std::remove(path.c_str());
}

TEST_F(TracerTest, StreamingSinkEmitsSameBytesAsBatchExporter) {
  const std::string path = ::testing::TempDir() + "dynopt_stream_test.json";

  // Two fixed events, recorded once through the streaming sink and once
  // through the buffered path: the two exporters share one serializer, so
  // the file and ChromeTraceJson(Drain()) must be byte-identical.
  TraceEvent first;
  first.name = "span-a";
  first.category = "stage";
  first.start_ns = 1000;
  first.dur_ns = 500;
  first.args.emplace_back("rows", "7");
  TraceEvent second;
  second.name = "span-b";
  second.category = "kernel";
  second.start_ns = 2000;
  second.dur_ns = 250;

  ASSERT_TRUE(Tracer::Global().OpenStream(path).ok());
  EXPECT_TRUE(Tracer::Global().streaming());
  Tracer::Global().Record(first);
  Tracer::Global().Record(second);
  // Streamed events bypass the thread buffers entirely (O(1) memory is
  // the point), so nothing is waiting for Drain...
  ASSERT_TRUE(Tracer::Global().CloseStream().ok());
  EXPECT_FALSE(Tracer::Global().streaming());
  EXPECT_TRUE(Tracer::Global().Drain().empty());

  // ...and the same records through the buffered path render identically.
  Tracer::Global().Record(first);
  Tracer::Global().Record(second);
  const std::string batch = ChromeTraceJson(Tracer::Global().Drain());

  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), batch);
  std::remove(path.c_str());
}

TEST_F(TracerTest, StreamingSinkFlushesIncrementallyAndCatchesSpans) {
  const std::string path = ::testing::TempDir() + "dynopt_stream_tail.json";
  Tracer::Global().Enable();
  ASSERT_TRUE(Tracer::Global().OpenStream(path).ok());

  // A second OpenStream while one is active is refused.
  EXPECT_FALSE(Tracer::Global().OpenStream(path + ".other").ok());

  { TraceSpan span("streamed-span", "stage"); }
  // The event is on disk BEFORE CloseStream — the sink is tail-able while
  // the workload runs.
  {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    EXPECT_NE(buffer.str().find("streamed-span"), std::string::npos);
  }

  ASSERT_TRUE(Tracer::Global().CloseStream().ok());
  EXPECT_FALSE(Tracer::Global().CloseStream().ok());  // Nothing open now.

  // Closed document is well-formed and spans recorded after the close go
  // back to the buffered path.
  {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string doc = buffer.str();
    EXPECT_EQ(doc.find("{\"displayTimeUnit\": \"ms\""), 0u);
    EXPECT_NE(doc.find("\n]}\n"), std::string::npos);
  }
  { TraceSpan span("buffered-span", "stage"); }
  std::vector<TraceEvent> events = Tracer::Global().Drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "buffered-span");
  std::remove(path.c_str());
}

/// The core invariant: enabling tracing changes no metered quantity.
TEST(TracerMeteringTest, TracingDoesNotChangeSimulatedMetering) {
  Engine engine;
  TpchOptions tpch;
  tpch.sf = 0.1;
  ASSERT_TRUE(LoadTpch(&engine, tpch).ok());
  auto query = TpchQ9(&engine);
  ASSERT_TRUE(query.ok());

  Tracer::Global().Disable();
  Tracer::Global().Drain();
  DynamicOptimizer plain(&engine);
  auto off = plain.Run(query.value());
  ASSERT_TRUE(off.ok()) << off.status().ToString();
  ASSERT_NE(off->profile, nullptr);
  EXPECT_TRUE(off->profile->trace.empty());

  Tracer::Global().Enable();
  DynamicOptimizer traced(&engine);
  auto on = traced.Run(query.value());
  Tracer::Global().Disable();
  Tracer::Global().Drain();
  ASSERT_TRUE(on.ok()) << on.status().ToString();

  // Byte-for-byte identical deterministic metering (exact ==, never near).
  EXPECT_EQ(off->metrics.simulated_seconds, on->metrics.simulated_seconds);
  EXPECT_EQ(off->metrics.reopt_seconds, on->metrics.reopt_seconds);
  EXPECT_EQ(off->metrics.stats_seconds, on->metrics.stats_seconds);
  EXPECT_EQ(off->metrics.recovery_seconds, on->metrics.recovery_seconds);
  EXPECT_EQ(off->metrics.rows_out, on->metrics.rows_out);
  EXPECT_EQ(off->metrics.tuples_processed, on->metrics.tuples_processed);
  EXPECT_EQ(off->metrics.bytes_scanned, on->metrics.bytes_scanned);
  EXPECT_EQ(off->metrics.bytes_shuffled, on->metrics.bytes_shuffled);
  EXPECT_EQ(off->metrics.bytes_broadcast, on->metrics.bytes_broadcast);
  EXPECT_EQ(off->metrics.bytes_materialized, on->metrics.bytes_materialized);
  EXPECT_EQ(off->metrics.bytes_intermediate_read,
            on->metrics.bytes_intermediate_read);
  EXPECT_EQ(off->metrics.num_jobs, on->metrics.num_jobs);
  EXPECT_EQ(off->metrics.num_reopt_points, on->metrics.num_reopt_points);
  EXPECT_EQ(off->metrics.max_q_error, on->metrics.max_q_error);
  EXPECT_EQ(off->metrics.num_decisions, on->metrics.num_decisions);
  EXPECT_EQ(off->rows, on->rows);

  // The traced run captured spans: a query root plus opt/stage/kernel work.
  ASSERT_NE(on->profile, nullptr);
  EXPECT_FALSE(on->profile->trace.empty());
  bool saw_query = false, saw_kernel = false, saw_stage = false;
  for (const TraceEvent& e : on->profile->trace) {
    if (e.category == "query") saw_query = true;
    if (e.category == "kernel") saw_kernel = true;
    if (e.category == "stage") saw_stage = true;
  }
  EXPECT_TRUE(saw_query);
  EXPECT_TRUE(saw_stage);
  EXPECT_TRUE(saw_kernel);

  // Decision telemetry is on regardless of tracing.
  EXPECT_GT(off->metrics.num_decisions, 0u);
  EXPECT_GE(off->metrics.max_q_error, 1.0);
}

TEST(MetricsRegistryTest, CountersGaugesHistogramsAndSnapshot) {
  MetricsRegistry registry;
  registry.counter("test.hits")->Increment();
  registry.counter("test.hits")->Increment(4);
  EXPECT_EQ(registry.counter("test.hits")->value(), 5u);

  registry.gauge("test.depth")->Set(7);
  registry.gauge("test.depth")->Add(-2);
  EXPECT_EQ(registry.gauge("test.depth")->value(), 5);

  Histogram* h = registry.histogram("test.wait_us");
  for (uint64_t v : {1u, 2u, 4u, 100u, 10000u}) h->Record(v);
  EXPECT_EQ(h->count(), 5u);
  EXPECT_EQ(h->sum(), 10107u);
  EXPECT_GE(h->ApproxQuantile(0.99), h->ApproxQuantile(0.5));

  // Stable pointers: the same name returns the same object.
  EXPECT_EQ(registry.counter("test.hits"), registry.counter("test.hits"));

  const std::string snapshot = registry.TextSnapshot();
  EXPECT_NE(snapshot.find("test.hits 5"), std::string::npos) << snapshot;
  EXPECT_NE(snapshot.find("test.depth 5"), std::string::npos);
  EXPECT_NE(snapshot.find("test.wait_us count=5"), std::string::npos);

  registry.ResetAll();
  EXPECT_EQ(registry.counter("test.hits")->value(), 0u);
  EXPECT_EQ(registry.gauge("test.depth")->value(), 0);
  EXPECT_EQ(registry.histogram("test.wait_us")->count(), 0u);
}

TEST(LogLevelTest, ParseAcceptsNamesAndNumbers) {
  LogLevel level = LogLevel::kError;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("INFO", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("Warning", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(ParseLogLevel("3", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_FALSE(ParseLogLevel("loud", &level));
  EXPECT_FALSE(ParseLogLevel("", &level));
  EXPECT_FALSE(ParseLogLevel(nullptr, &level));
  EXPECT_EQ(level, LogLevel::kError);  // Failed parses leave it untouched.

  // The setter/getter round-trips (and is safe to call repeatedly).
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(before);
}

}  // namespace
}  // namespace dynopt
