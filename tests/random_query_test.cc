// Property test: randomized join queries over randomized synthetic tables
// (with correlated predicate pairs and group-by/order-by/limit clauses),
// checked against a naive in-memory oracle (filter + nested-loop joins +
// an independent re-implementation of the post-processing contract) and
// across all seven execution paths: dynamic re-optimization loop, static DP
// single job, greedy worst-order chain, best-order hinted job, pilot-run,
// INGRES-like loop, and the sketch-dynamic strategy with predicate
// transfer enabled.

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/random.h"
#include "exec/engine.h"
#include "opt/dynamic_optimizer.h"
#include "opt/ingres_optimizer.h"
#include "opt/order_baselines.h"
#include "opt/pilot_run_optimizer.h"
#include "opt/sketch_optimizer.h"
#include "opt/static_optimizer.h"

namespace dynopt {
namespace {

/// Naive oracle: per-alias filters over gathered rows, then nested-loop
/// joins edge by edge, then projection. Returns nullopt on internal errors
/// (reported via ADD_FAILURE).
std::vector<Row> Oracle(Engine* engine, const QuerySpec& spec, bool* ok) {
  *ok = true;
  struct Piece {
    std::set<std::string> aliases;
    std::vector<std::string> columns;
    std::vector<Row> rows;
  };
  std::vector<Piece> pieces;
  for (const auto& ref : spec.tables) {
    auto table_or = engine->catalog().GetTable(ref.table);
    if (!table_or.ok()) {
      ADD_FAILURE() << table_or.status().ToString();
      *ok = false;
      return {};
    }
    auto table = table_or.value();
    Piece piece;
    piece.aliases = {ref.alias};
    for (size_t i = 0; i < table->schema().num_fields(); ++i) {
      piece.columns.push_back(ref.alias + "." + table->schema().field(i).name);
    }
    ExprPtr predicate = CombineConjuncts(spec.PredicatesFor(ref.alias));
    BoundExprPtr bound;
    if (predicate != nullptr) {
      BindContext ctx;
      ctx.resolve_column = [&piece](const std::string& name) {
        for (size_t i = 0; i < piece.columns.size(); ++i) {
          if (piece.columns[i] == name) return static_cast<int>(i);
        }
        return -1;
      };
      ctx.params = &spec.params;
      ctx.udfs = &engine->udfs();
      auto bound_or = Bind(predicate, ctx);
      if (!bound_or.ok()) {
        ADD_FAILURE() << bound_or.status().ToString();
        *ok = false;
        return {};
      }
      bound = std::move(bound_or).value();
    }
    for (size_t p = 0; p < table->num_partitions(); ++p) {
      for (const Row& row : table->partition(p)) {
        if (bound == nullptr || bound->EvalBool(row)) piece.rows.push_back(row);
      }
    }
    pieces.push_back(std::move(piece));
  }

  std::vector<JoinEdge> pending = spec.joins;
  while (!pending.empty()) {
    bool progressed = false;
    for (size_t e = 0; e < pending.size(); ++e) {
      const JoinEdge& edge = pending[e];
      int li = -1, ri = -1;
      for (size_t i = 0; i < pieces.size(); ++i) {
        if (pieces[i].aliases.count(edge.left_alias)) li = static_cast<int>(i);
        if (pieces[i].aliases.count(edge.right_alias)) ri = static_cast<int>(i);
      }
      if (li < 0 || ri < 0 || li == ri) continue;
      const Piece& l = pieces[static_cast<size_t>(li)];
      const Piece& r = pieces[static_cast<size_t>(ri)];
      std::vector<int> lkeys, rkeys;
      for (const auto& [lk, rk] : edge.keys) {
        for (size_t i = 0; i < l.columns.size(); ++i) {
          if (l.columns[i] == lk) lkeys.push_back(static_cast<int>(i));
        }
        for (size_t i = 0; i < r.columns.size(); ++i) {
          if (r.columns[i] == rk) rkeys.push_back(static_cast<int>(i));
        }
      }
      if (lkeys.size() != edge.keys.size() ||
          rkeys.size() != edge.keys.size()) {
        ADD_FAILURE() << "oracle could not resolve keys of "
                      << edge.ToString();
        *ok = false;
        return {};
      }
      Piece joined;
      joined.aliases = l.aliases;
      joined.aliases.insert(r.aliases.begin(), r.aliases.end());
      joined.columns = l.columns;
      joined.columns.insert(joined.columns.end(), r.columns.begin(),
                            r.columns.end());
      for (const Row& lr : l.rows) {
        for (const Row& rr : r.rows) {
          bool match = true;
          for (size_t i = 0; i < lkeys.size(); ++i) {
            const Value& lv = lr[static_cast<size_t>(lkeys[i])];
            const Value& rv = rr[static_cast<size_t>(rkeys[i])];
            if (lv.is_null() || rv.is_null() || lv != rv) {
              match = false;
              break;
            }
          }
          if (!match) continue;
          Row row = lr;
          row.insert(row.end(), rr.begin(), rr.end());
          joined.rows.push_back(std::move(row));
        }
      }
      // Remove the two inputs (higher index first), append the join.
      pieces.erase(pieces.begin() + std::max(li, ri));
      pieces.erase(pieces.begin() + std::min(li, ri));
      pieces.push_back(std::move(joined));
      pending.erase(pending.begin() + static_cast<long>(e));
      progressed = true;
      break;
    }
    if (!progressed) {
      ADD_FAILURE() << "oracle stuck: disconnected edge set";
      *ok = false;
      return {};
    }
  }

  const Piece& final_piece = pieces[0];
  std::vector<int> slots;
  for (const auto& proj : spec.projections) {
    for (size_t i = 0; i < final_piece.columns.size(); ++i) {
      if (final_piece.columns[i] == proj) slots.push_back(static_cast<int>(i));
    }
  }
  std::vector<Row> out;
  out.reserve(final_piece.rows.size());
  for (const Row& row : final_piece.rows) {
    Row projected;
    for (int s : slots) projected.push_back(row[static_cast<size_t>(s)]);
    out.push_back(std::move(projected));
  }

  // Independent re-implementation of the post-processing contract
  // (GROUP BY / aggregates over the carried projections, the deterministic
  // total-order sort, LIMIT) so the oracle shares no code with
  // ApplyPostProcessing. Only the aggregate functions the generator emits
  // (COUNT, SUM, MIN, MAX) are supported.
  if (!spec.HasPostProcessing()) return out;
  std::vector<std::string> columns = spec.projections;
  auto slot_of = [&](const std::string& name) -> int {
    for (size_t i = 0; i < columns.size(); ++i) {
      if (columns[i] == name) return static_cast<int>(i);
    }
    return -1;
  };
  std::vector<std::string> out_columns = columns;
  if (!spec.aggregates.empty() || !spec.group_by.empty()) {
    std::vector<int> group_slots, agg_slots;
    for (const auto& col : spec.group_by) group_slots.push_back(slot_of(col));
    for (const auto& agg : spec.aggregates) {
      agg_slots.push_back(slot_of(agg.input));
    }
    for (int s : group_slots) {
      if (s < 0) {
        ADD_FAILURE() << "oracle could not resolve a GROUP BY column";
        *ok = false;
        return {};
      }
    }
    for (int s : agg_slots) {
      if (s < 0) {
        ADD_FAILURE() << "oracle could not resolve an aggregate input";
        *ok = false;
        return {};
      }
    }
    // Raw non-null input values per (group, aggregate); finished below.
    std::map<Row, std::vector<std::vector<Value>>> groups;
    for (const Row& row : out) {
      Row key;
      for (int s : group_slots) key.push_back(row[static_cast<size_t>(s)]);
      auto [it, inserted] = groups.try_emplace(
          std::move(key),
          std::vector<std::vector<Value>>(spec.aggregates.size()));
      for (size_t a = 0; a < agg_slots.size(); ++a) {
        const Value& v = row[static_cast<size_t>(agg_slots[a])];
        if (!v.is_null()) it->second[a].push_back(v);
      }
    }
    std::vector<Row> grouped;
    for (const auto& [key, values] : groups) {
      Row row = key;
      for (size_t a = 0; a < values.size(); ++a) {
        switch (spec.aggregates[a].fn) {
          case AggFn::kCount:
            row.push_back(Value(static_cast<int64_t>(values[a].size())));
            break;
          case AggFn::kSum: {
            int64_t sum = 0;
            for (const Value& v : values[a]) sum += v.AsInt64();
            row.push_back(values[a].empty() ? Value::Null() : Value(sum));
            break;
          }
          case AggFn::kMin:
          case AggFn::kMax: {
            Value best;
            for (const Value& v : values[a]) {
              if (best.is_null() || (spec.aggregates[a].fn == AggFn::kMin
                                         ? v < best
                                         : best < v)) {
                best = v;
              }
            }
            row.push_back(best);
            break;
          }
          case AggFn::kAvg:
            ADD_FAILURE() << "oracle does not implement AVG";
            *ok = false;
            return {};
        }
      }
      grouped.push_back(std::move(row));
    }
    out = std::move(grouped);
    out_columns = spec.OutputColumns();
  }
  if (!spec.order_by.empty() || spec.limit >= 0) {
    std::vector<std::pair<int, bool>> sort_keys;
    std::vector<bool> used(out_columns.size(), false);
    for (const auto& key : spec.order_by) {
      for (size_t i = 0; i < out_columns.size(); ++i) {
        if (out_columns[i] == key.column) {
          sort_keys.emplace_back(static_cast<int>(i), key.descending);
          used[i] = true;
        }
      }
    }
    for (size_t i = 0; i < out_columns.size(); ++i) {
      if (!used[i]) sort_keys.emplace_back(static_cast<int>(i), false);
    }
    std::sort(out.begin(), out.end(), [&](const Row& a, const Row& b) {
      for (const auto& [slot, desc] : sort_keys) {
        int c = a[static_cast<size_t>(slot)].Compare(
            b[static_cast<size_t>(slot)]);
        if (c != 0) return desc ? c > 0 : c < 0;
      }
      return false;
    });
  }
  if (spec.limit >= 0 && out.size() > static_cast<size_t>(spec.limit)) {
    out.resize(static_cast<size_t>(spec.limit));
  }
  return out;
}

struct Generated {
  std::unique_ptr<Engine> engine;
  QuerySpec query;
};

/// Random catalog: 3-5 tables, each non-root referencing a random earlier
/// table via an `fk` column; random predicates (ranges, UDFs, params).
Generated Generate(uint64_t seed) {
  Generated g;
  g.engine = std::make_unique<Engine>();
  // The small-budget ctest variant re-runs this whole corpus with every
  // hash join forced through the grace spill path; results must not change.
  if (const char* budget = std::getenv("DYNOPT_JOIN_MEMORY_BUDGET")) {
    g.engine->mutable_cluster().memory.join_memory_budget_bytes =
        std::strtoull(budget, nullptr, 10);
  }
  Rng rng(seed);
  (void)g.engine->udfs().Register("p_even", [](const std::vector<Value>& a) {
    return Value(a[0].AsInt64() % 2 == 0);
  });

  // Shape first: table sizes and the join-tree parent of each table.
  const int num_tables = 3 + static_cast<int>(rng.NextUint64(3));
  std::vector<int64_t> table_rows;
  std::vector<int> parents;
  for (int t = 0; t < num_tables; ++t) {
    table_rows.push_back(rng.NextInt64(40, 600));
    parents.push_back(
        t == 0 ? 0 : static_cast<int>(rng.NextUint64(static_cast<uint64_t>(t))));
  }
  for (int t = 0; t < num_tables; ++t) {
    int64_t parent_rows = table_rows[static_cast<size_t>(parents[t])];
    std::string name = "t" + std::to_string(t);
    auto table = std::make_shared<Table>(
        name,
        Schema({{"id", ValueType::kInt64},
                {"fk", ValueType::kInt64},
                {"v", ValueType::kInt64},
                {"w", ValueType::kInt64},
                {"s", ValueType::kString}}),
        g.engine->cluster().num_nodes);
    (void)table->SetPartitionKey({"id"});
    for (int64_t i = 0; i < table_rows[static_cast<size_t>(t)]; ++i) {
      // `w` mirrors `v` exactly: a perfectly correlated pair, so conjuncts
      // over both have the true selectivity of one while the independence
      // assumption squares it.
      const int64_t v = rng.NextInt64(0, 99);
      table->AppendRow({Value(i), Value(rng.NextInt64(0, parent_rows - 1)),
                        Value(v), Value(v),
                        Value("s" + std::to_string(rng.NextInt64(0, 4)))});
    }
    (void)g.engine->catalog().RegisterTable(table);
    (void)g.engine->CollectBaseStats(name, {"id", "fk", "v", "w", "s"});
  }

  for (int t = 0; t < num_tables; ++t) {
    TableRef ref;
    ref.table = "t" + std::to_string(t);
    ref.alias = "a" + std::to_string(t);
    g.query.tables.push_back(ref);
  }
  for (int t = 1; t < num_tables; ++t) {
    JoinEdge edge;
    edge.left_alias = "a" + std::to_string(t);
    edge.right_alias = "a" + std::to_string(parents[static_cast<size_t>(t)]);
    edge.keys = {{edge.left_alias + ".fk", edge.right_alias + ".id"}};
    g.query.joins.push_back(std::move(edge));
  }

  // Random predicates.
  Rng prng(seed * 7 + 1);
  for (int t = 0; t < num_tables; ++t) {
    std::string alias = "a" + std::to_string(t);
    double dice = prng.NextDouble();
    if (dice < 0.3) {
      g.query.predicates.push_back(
          {alias, Cmp(CompareOp::kLt, Col(alias, "v"),
                      Lit(Value(prng.NextInt64(20, 90))))});
    } else if (dice < 0.45) {
      g.query.predicates.push_back({alias, Udf("p_even", {Col(alias, "v")})});
      g.query.predicates.push_back(
          {alias, Between(Col(alias, "v"), Lit(Value(prng.NextInt64(0, 30))),
                          Lit(Value(prng.NextInt64(50, 99))))});
    } else if (dice < 0.6) {
      std::string pname = "p" + std::to_string(t);
      g.query.predicates.push_back(
          {alias, Cmp(CompareOp::kGe, Col(alias, "v"), Param(pname))});
      g.query.params[pname] = Value(prng.NextInt64(10, 60));
    } else if (dice < 0.75) {
      // Correlated conjunct pair over the mirrored columns: a guaranteed
      // multi-predicate push-down whose estimate is off by 1/selectivity.
      int64_t cut = prng.NextInt64(20, 90);
      g.query.predicates.push_back(
          {alias, Cmp(CompareOp::kLt, Col(alias, "v"), Lit(Value(cut)))});
      g.query.predicates.push_back(
          {alias, Cmp(CompareOp::kLt, Col(alias, "w"), Lit(Value(cut)))});
    }
  }

  // Projections: one column per table (mix of ids/values/strings).
  for (int t = 0; t < num_tables; ++t) {
    const char* const cols[] = {"id", "v", "s"};
    g.query.projections.push_back("a" + std::to_string(t) + "." +
                                  cols[prng.NextUint64(3)]);
  }

  // Post-processing: GROUP BY + aggregates over carried projections, or a
  // bare ORDER BY, each optionally topped by a LIMIT — so every strategy's
  // ApplyPostProcessing path is exercised against the oracle's independent
  // re-implementation.
  double post_dice = prng.NextDouble();
  if (post_dice < 0.35) {
    g.query.group_by.push_back(g.query.projections[0]);
    AggregateSpec cnt;
    cnt.fn = AggFn::kCount;
    cnt.input = g.query.projections.back();
    cnt.output_name = "cnt";
    g.query.aggregates.push_back(cnt);
    // An int SUM when an int column is carried; MIN of the last projection
    // otherwise (strings compare fine under MIN).
    std::string int_col;
    for (const auto& p : g.query.projections) {
      if (p.size() > 2 && (p.compare(p.size() - 2, 2, ".v") == 0 ||
                           p.compare(p.size() - 3, 3, ".id") == 0)) {
        int_col = p;
        break;
      }
    }
    AggregateSpec extra;
    if (!int_col.empty()) {
      extra.fn = AggFn::kSum;
      extra.input = int_col;
      extra.output_name = "total";
    } else {
      extra.fn = AggFn::kMin;
      extra.input = g.query.projections.back();
      extra.output_name = "lo";
    }
    g.query.aggregates.push_back(extra);
    if (prng.NextDouble() < 0.5) {
      g.query.order_by.push_back({"cnt", true});
    }
    if (prng.NextDouble() < 0.4) g.query.limit = prng.NextInt64(1, 5);
  } else if (post_dice < 0.6) {
    g.query.order_by.push_back(
        {g.query.projections[prng.NextUint64(
             static_cast<uint64_t>(g.query.projections.size()))],
         prng.NextDouble() < 0.5});
    if (prng.NextDouble() < 0.5) g.query.limit = prng.NextInt64(1, 20);
  }
  g.query.NormalizeJoins();
  return g;
}

class RandomQueryTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, RandomQueryTest,
                         ::testing::Range(uint64_t{1}, uint64_t{17}));

TEST_P(RandomQueryTest, AllPathsMatchOracle) {
  Generated g = Generate(GetParam());
  ASSERT_TRUE(g.query.Validate().ok()) << g.query.Validate().ToString()
                                       << "\n" << g.query.ToString();
  bool ok = false;
  std::vector<Row> expected = Oracle(g.engine.get(), g.query, &ok);
  ASSERT_TRUE(ok);
  SortRows(&expected);

  DynamicOptimizer dynamic(g.engine.get());
  auto dyn = dynamic.Run(g.query);
  ASSERT_TRUE(dyn.ok()) << dyn.status().ToString();
  SortRows(&dyn->rows);
  EXPECT_EQ(dyn->rows, expected) << "dynamic diverges from oracle, seed "
                                 << GetParam();

  StaticCostBasedOptimizer cost_based(g.engine.get());
  auto cb = cost_based.Run(g.query);
  ASSERT_TRUE(cb.ok()) << cb.status().ToString();
  SortRows(&cb->rows);
  EXPECT_EQ(cb->rows, expected) << "cost-based diverges, seed " << GetParam();

  WorstOrderOptimizer worst(g.engine.get());
  auto wo = worst.Run(g.query);
  ASSERT_TRUE(wo.ok()) << wo.status().ToString();
  SortRows(&wo->rows);
  EXPECT_EQ(wo->rows, expected) << "worst-order diverges, seed " << GetParam();

  IngresLikeOptimizer ingres(g.engine.get());
  auto ing = ingres.Run(g.query);
  ASSERT_TRUE(ing.ok()) << ing.status().ToString();
  SortRows(&ing->rows);
  EXPECT_EQ(ing->rows, expected) << "ingres-like diverges, seed "
                                 << GetParam();

  // Best-order replays the join tree the dynamic run discovered as one
  // hinted pipelined job.
  ASSERT_NE(dyn->join_tree, nullptr);
  BestOrderOptimizer best(g.engine.get(), dyn->join_tree);
  auto bo = best.Run(g.query);
  ASSERT_TRUE(bo.ok()) << bo.status().ToString();
  SortRows(&bo->rows);
  EXPECT_EQ(bo->rows, expected) << "best-order diverges, seed " << GetParam();

  PilotRunOptimizer pilot(g.engine.get());
  auto pr = pilot.Run(g.query);
  ASSERT_TRUE(pr.ok()) << pr.status().ToString();
  SortRows(&pr->rows);
  EXPECT_EQ(pr->rows, expected) << "pilot-run diverges, seed " << GetParam();

  // Seventh strategy, with executor-side predicate transfer switched on:
  // Bloom pruning must never drop a joining row (no false negatives), so
  // the result still matches the oracle bit for bit.
  g.engine->mutable_cluster().sketch.enable_predicate_transfer = true;
  SketchDynamicOptimizer sketchy(g.engine.get());
  auto sk = sketchy.Run(g.query);
  ASSERT_TRUE(sk.ok()) << sk.status().ToString();
  SortRows(&sk->rows);
  EXPECT_EQ(sk->rows, expected) << "sketch-dynamic diverges, seed "
                                << GetParam();
}

TEST_P(RandomQueryTest, NoTempTableLeaks) {
  Generated g = Generate(GetParam());
  size_t before = g.engine->catalog().TableNames().size();
  DynamicOptimizer dynamic(g.engine.get());
  ASSERT_TRUE(dynamic.Run(g.query).ok());
  IngresLikeOptimizer ingres(g.engine.get());
  ASSERT_TRUE(ingres.Run(g.query).ok());
  SketchDynamicOptimizer sketchy(g.engine.get());
  ASSERT_TRUE(sketchy.Run(g.query).ok());
  EXPECT_EQ(g.engine->catalog().TableNames().size(), before);
  // Temp-table sketches must be reclaimed with their tables; only
  // base-table sketches (built once per engine) may remain registered.
  for (const std::string& key : g.engine->sketches().Keys()) {
    EXPECT_EQ(key.rfind("t", 0), 0u) << "leaked sketch " << key;
  }
}

}  // namespace
}  // namespace dynopt
