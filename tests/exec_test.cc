#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <tuple>

#include "common/random.h"
#include "exec/engine.h"
#include "exec/executor.h"
#include "opt/optimizer.h"

namespace dynopt {
namespace {

/// Reference nested-loop join over gathered rows, for oracle comparison.
std::vector<Row> NaiveJoin(const std::vector<Row>& left,
                           const std::vector<Row>& right,
                           const std::vector<int>& lkeys,
                           const std::vector<int>& rkeys) {
  std::vector<Row> out;
  for (const Row& l : left) {
    for (const Row& r : right) {
      bool match = true;
      for (size_t i = 0; i < lkeys.size(); ++i) {
        const Value& lv = l[static_cast<size_t>(lkeys[i])];
        const Value& rv = r[static_cast<size_t>(rkeys[i])];
        if (lv.is_null() || rv.is_null() || lv != rv) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      Row joined = l;
      joined.insert(joined.end(), r.begin(), r.end());
      out.push_back(std::move(joined));
    }
  }
  return out;
}

/// Engine fixture with two joinable tables, configurable sizes and key
/// skew.
class ExecTest : public ::testing::Test {
 protected:
  void SetUp() override { engine_ = std::make_unique<Engine>(); }

  std::shared_ptr<Table> MakeTable(const std::string& name, int rows,
                                   int key_domain, uint64_t seed,
                                   double zipf_skew = 0.0) {
    auto t = std::make_shared<Table>(
        name,
        Schema({{"k", ValueType::kInt64},
                {"k2", ValueType::kInt64},
                {"payload", ValueType::kString}}),
        engine_->cluster().num_nodes);
    EXPECT_TRUE(t->SetPartitionKey({"k"}).ok());
    Rng rng(seed);
    ZipfDistribution zipf(static_cast<size_t>(key_domain),
                          zipf_skew > 0 ? zipf_skew : 0.0);
    for (int i = 0; i < rows; ++i) {
      int64_t k = zipf_skew > 0
                      ? static_cast<int64_t>(zipf.Sample(rng))
                      : rng.NextInt64(0, key_domain - 1);
      t->AppendRow({Value(k), Value(rng.NextInt64(0, 9)),
                    Value(name + "_" + std::to_string(i))});
    }
    EXPECT_TRUE(engine_->catalog().RegisterTable(t).ok());
    return t;
  }

  Result<JobResult> Exec(const PlanNode& plan) {
    JobExecutor executor = engine_->MakeExecutor();
    return executor.Execute(plan, {});
  }

  std::unique_ptr<Engine> engine_;
};

// --- Scan / filter / project ----------------------------------------------------

TEST_F(ExecTest, ScanQualifiesAndProjects) {
  MakeTable("t", 100, 10, 1);
  auto plan = PlanNode::Scan("t", "a", false, {"a.payload", "a.k"});
  auto result = Exec(*plan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->data.columns,
            (std::vector<std::string>{"a.payload", "a.k"}));
  EXPECT_EQ(result->data.NumRows(), 100u);
  EXPECT_GT(result->metrics.bytes_scanned, 0u);
  EXPECT_GT(result->metrics.simulated_seconds, 0.0);
}

TEST_F(ExecTest, ScanUnknownColumnFails) {
  MakeTable("t", 10, 5, 1);
  auto plan = PlanNode::Scan("t", "a", false, {"a.missing"});
  EXPECT_EQ(Exec(*plan).status().code(), StatusCode::kExecutionError);
}

TEST_F(ExecTest, ScanUnknownTableFails) {
  auto plan = PlanNode::Scan("nope", "a");
  EXPECT_EQ(Exec(*plan).status().code(), StatusCode::kNotFound);
}

TEST_F(ExecTest, FilterKeepsMatchingRows) {
  MakeTable("t", 1000, 10, 2);
  auto plan = PlanNode::Filter(PlanNode::Scan("t", "a"),
                               Eq(Col("a", "k"), Lit(Value(3))));
  auto result = Exec(*plan);
  ASSERT_TRUE(result.ok());
  for (const Row& row : result->data.GatherRows()) {
    EXPECT_EQ(row[0], Value(3));
  }
  EXPECT_GT(result->data.NumRows(), 0u);
  EXPECT_LT(result->data.NumRows(), 1000u);
}

TEST_F(ExecTest, ProjectReordersColumns) {
  MakeTable("t", 10, 5, 3);
  auto plan = PlanNode::Project(PlanNode::Scan("t", "a"),
                                {"a.payload", "a.k"});
  auto result = Exec(*plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->data.columns,
            (std::vector<std::string>{"a.payload", "a.k"}));
  Row first = result->data.GatherRows()[0];
  EXPECT_EQ(first[0].type(), ValueType::kString);
  EXPECT_EQ(first[1].type(), ValueType::kInt64);
}

// --- Join correctness sweep -------------------------------------------------------

/// (left rows, right rows, key domain, num keys, skew) — hash and broadcast
/// must both match the naive oracle.
class JoinCorrectnessTest
    : public ExecTest,
      public ::testing::WithParamInterface<
          std::tuple<int, int, int, int, double>> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, JoinCorrectnessTest,
    ::testing::Values(std::make_tuple(50, 50, 10, 1, 0.0),
                      std::make_tuple(200, 1000, 30, 1, 0.0),
                      std::make_tuple(1000, 200, 30, 1, 0.0),
                      std::make_tuple(100, 100, 5, 2, 0.0),
                      std::make_tuple(500, 500, 20, 1, 1.2),
                      std::make_tuple(300, 700, 1, 1, 0.0),   // All match.
                      std::make_tuple(10, 10, 1000, 1, 0.0),  // Few match.
                      std::make_tuple(0, 100, 10, 1, 0.0),    // Empty side.
                      std::make_tuple(100, 0, 10, 1, 0.0)));

TEST_P(JoinCorrectnessTest, HashAndBroadcastMatchNaive) {
  auto [lrows, rrows, domain, nkeys, skew] = GetParam();
  auto lt = MakeTable("lhs", lrows, domain, 10, skew);
  auto rt = MakeTable("rhs", rrows, domain, 20, skew);

  std::vector<std::pair<std::string, std::string>> keys = {
      {"l.k", "r.k"}};
  std::vector<int> lkeys = {0}, rkeys = {0};
  if (nkeys == 2) {
    keys.emplace_back("l.k2", "r.k2");
    lkeys.push_back(1);
    rkeys.push_back(1);
  }

  // Oracle.
  Dataset lscan, rscan;
  {
    auto lres = Exec(*PlanNode::Scan("lhs", "l"));
    auto rres = Exec(*PlanNode::Scan("rhs", "r"));
    ASSERT_TRUE(lres.ok() && rres.ok());
    lscan = std::move(lres->data);
    rscan = std::move(rres->data);
  }
  std::vector<Row> expected =
      NaiveJoin(lscan.GatherRows(), rscan.GatherRows(), lkeys, rkeys);
  SortRows(&expected);

  for (JoinMethod method :
       {JoinMethod::kHashShuffle, JoinMethod::kBroadcast}) {
    auto plan = PlanNode::Join(method, PlanNode::Scan("lhs", "l"),
                               PlanNode::Scan("rhs", "r"), keys);
    auto result = Exec(*plan);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    std::vector<Row> actual = result->data.GatherRows();
    SortRows(&actual);
    EXPECT_EQ(actual, expected) << JoinMethodName(method);
  }
}

TEST_F(ExecTest, NullKeysNeverMatch) {
  auto t = std::make_shared<Table>(
      "nulls", Schema({{"k", ValueType::kInt64}}), 2);
  t->AppendRow({Value::Null()});
  t->AppendRow({Value(1)});
  ASSERT_TRUE(engine_->catalog().RegisterTable(t).ok());
  auto plan = PlanNode::Join(JoinMethod::kHashShuffle,
                             PlanNode::Scan("nulls", "a"),
                             PlanNode::Scan("nulls", "b"), {{"a.k", "b.k"}});
  auto result = Exec(*plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->data.NumRows(), 1u);  // Only 1=1; NULL=NULL excluded.
}

TEST_F(ExecTest, HashJoinMetersShuffle) {
  // Join on k2, which neither table is partitioned on, forcing real
  // re-partitioning traffic.
  MakeTable("lhs", 1000, 100, 30);
  MakeTable("rhs", 1000, 100, 31);
  auto plan = PlanNode::Join(JoinMethod::kHashShuffle,
                             PlanNode::Scan("lhs", "l"),
                             PlanNode::Scan("rhs", "r"), {{"l.k2", "r.k2"}});
  auto result = Exec(*plan);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->metrics.bytes_shuffled, 0u);
  EXPECT_EQ(result->metrics.bytes_broadcast, 0u);
}

TEST_F(ExecTest, CoPartitionedHashJoinSkipsShuffle) {
  // Both tables are hash-partitioned on k; re-partitioning is unnecessary
  // and must be free, as in AsterixDB's key/foreign-key case.
  MakeTable("lhs", 1000, 100, 30);
  MakeTable("rhs", 1000, 100, 31);
  auto plan = PlanNode::Join(JoinMethod::kHashShuffle,
                             PlanNode::Scan("lhs", "l"),
                             PlanNode::Scan("rhs", "r"), {{"l.k", "r.k"}});
  auto result = Exec(*plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->metrics.bytes_shuffled, 0u);
}

TEST_F(ExecTest, BroadcastJoinMetersBroadcast) {
  MakeTable("lhs", 100, 100, 32);
  MakeTable("rhs", 1000, 100, 33);
  auto plan = PlanNode::Join(JoinMethod::kBroadcast,
                             PlanNode::Scan("lhs", "l"),
                             PlanNode::Scan("rhs", "r"), {{"l.k", "r.k"}});
  auto result = Exec(*plan);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->metrics.bytes_broadcast, 0u);
  EXPECT_EQ(result->metrics.bytes_shuffled, 0u);
}

TEST_F(ExecTest, OversizedBroadcastPaysSpillPenalty) {
  // Shrink the memory budget so the build side overflows.
  engine_->mutable_cluster().broadcast_threshold_bytes = 1024;
  MakeTable("lhs", 2000, 100, 34);
  MakeTable("rhs", 100, 100, 35);
  auto broadcast = PlanNode::Join(JoinMethod::kBroadcast,
                                  PlanNode::Scan("lhs", "l"),
                                  PlanNode::Scan("rhs", "r"),
                                  {{"l.k", "r.k"}});
  auto hash = PlanNode::Join(JoinMethod::kHashShuffle,
                             PlanNode::Scan("lhs", "l"),
                             PlanNode::Scan("rhs", "r"), {{"l.k", "r.k"}});
  auto b = Exec(*broadcast);
  auto h = Exec(*hash);
  ASSERT_TRUE(b.ok() && h.ok());
  EXPECT_GT(b->metrics.simulated_seconds,
            3.0 * h->metrics.simulated_seconds)
      << "an overflowing broadcast build must be punished";
}

// --- Indexed nested loop join -------------------------------------------------------

TEST_F(ExecTest, InljMatchesHashJoin) {
  auto inner = MakeTable("inner", 2000, 200, 40);
  ASSERT_TRUE(inner->CreateSecondaryIndex("k").ok());
  MakeTable("outer", 50, 200, 41);

  auto inlj = PlanNode::Join(JoinMethod::kIndexNestedLoop,
                             PlanNode::Scan("outer", "o"),
                             PlanNode::Scan("inner", "i"), {{"o.k", "i.k"}});
  auto hash = PlanNode::Join(JoinMethod::kHashShuffle,
                             PlanNode::Scan("outer", "o"),
                             PlanNode::Scan("inner", "i"), {{"o.k", "i.k"}});
  auto a = Exec(*inlj);
  auto b = Exec(*hash);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok());
  std::vector<Row> ar = a->data.GatherRows(), br = b->data.GatherRows();
  SortRows(&ar);
  SortRows(&br);
  EXPECT_EQ(ar, br);
  EXPECT_GT(a->metrics.index_lookups, 0u);
  EXPECT_EQ(b->metrics.index_lookups, 0u);
}

TEST_F(ExecTest, InljRequiresIndex) {
  MakeTable("inner", 100, 10, 42);  // No index created.
  MakeTable("outer", 10, 10, 43);
  auto plan = PlanNode::Join(JoinMethod::kIndexNestedLoop,
                             PlanNode::Scan("outer", "o"),
                             PlanNode::Scan("inner", "i"), {{"o.k", "i.k"}});
  EXPECT_EQ(Exec(*plan).status().code(), StatusCode::kExecutionError);
}

TEST_F(ExecTest, InljRequiresBaseScanInner) {
  auto inner = MakeTable("inner", 100, 10, 44);
  ASSERT_TRUE(inner->CreateSecondaryIndex("k").ok());
  MakeTable("outer", 10, 10, 45);
  auto filtered_inner = PlanNode::Filter(PlanNode::Scan("inner", "i"),
                                         Eq(Col("i", "k2"), Lit(Value(1))));
  auto plan = PlanNode::Join(JoinMethod::kIndexNestedLoop,
                             PlanNode::Scan("outer", "o"),
                             std::move(filtered_inner), {{"o.k", "i.k"}});
  EXPECT_EQ(Exec(*plan).status().code(), StatusCode::kExecutionError);
}

TEST_F(ExecTest, InljRejectsCompositeKeys) {
  auto inner = MakeTable("inner", 100, 10, 46);
  ASSERT_TRUE(inner->CreateSecondaryIndex("k").ok());
  MakeTable("outer", 10, 10, 47);
  auto plan = PlanNode::Join(
      JoinMethod::kIndexNestedLoop, PlanNode::Scan("outer", "o"),
      PlanNode::Scan("inner", "i"), {{"o.k", "i.k"}, {"o.k2", "i.k2"}});
  EXPECT_EQ(Exec(*plan).status().code(), StatusCode::kExecutionError);
}

// --- Materialization -------------------------------------------------------------

TEST_F(ExecTest, MaterializePreservesDataAndPartitions) {
  MakeTable("t", 500, 50, 50);
  auto scan = Exec(*PlanNode::Scan("t", "a"));
  ASSERT_TRUE(scan.ok());
  std::vector<size_t> partition_sizes;
  for (const auto& p : scan->data.partitions) {
    partition_sizes.push_back(p.size());
  }
  std::vector<Row> original = scan->data.GatherRows();

  JobExecutor executor = engine_->MakeExecutor();
  ExecMetrics metrics;
  auto sink = executor.Materialize(std::move(scan->data), "test", {"a.k"},
                                   true, &metrics);
  ASSERT_TRUE(sink.ok()) << sink.status().ToString();
  EXPECT_TRUE(Catalog::IsTempName(sink->table_name));
  EXPECT_EQ(sink->stats.row_count, 500u);
  EXPECT_NEAR(sink->stats.Column("a.k")->ndv, 50.0, 2.0);
  EXPECT_GT(metrics.bytes_materialized, 0u);
  EXPECT_GT(metrics.reopt_seconds, 0.0);
  EXPECT_GT(metrics.stats_seconds, 0.0);
  EXPECT_EQ(metrics.num_reopt_points, 1);

  // Reader sees identical data in identical partitions.
  auto table = engine_->catalog().GetTable(sink->table_name);
  ASSERT_TRUE(table.ok());
  for (size_t p = 0; p < partition_sizes.size(); ++p) {
    EXPECT_EQ(table.value()->partition(p).size(), partition_sizes[p]);
  }
  auto reread = Exec(*PlanNode::Scan(sink->table_name, "", true));
  ASSERT_TRUE(reread.ok());
  std::vector<Row> roundtrip = reread->data.GatherRows();
  SortRows(&original);
  SortRows(&roundtrip);
  EXPECT_EQ(original, roundtrip);
  EXPECT_GT(reread->metrics.bytes_intermediate_read, 0u);
  EXPECT_GT(reread->metrics.reopt_seconds, 0.0);
}

TEST_F(ExecTest, MaterializeWithoutStatsStillRecordsCardinality) {
  MakeTable("t", 200, 20, 51);
  auto scan = Exec(*PlanNode::Scan("t", "a"));
  ASSERT_TRUE(scan.ok());
  JobExecutor executor = engine_->MakeExecutor();
  ExecMetrics metrics;
  auto sink = executor.Materialize(std::move(scan->data), "nostats",
                                   {"a.k"}, false, &metrics);
  ASSERT_TRUE(sink.ok());
  EXPECT_EQ(sink->stats.row_count, 200u);
  EXPECT_TRUE(sink->stats.columns.empty());
  EXPECT_DOUBLE_EQ(metrics.stats_seconds, 0.0);
  // Row count is still registered with the stats framework.
  const TableStats* stats = engine_->stats().Get(sink->table_name);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->row_count, 200u);
}

// --- Metrics ----------------------------------------------------------------------

TEST(MetricsTest, AddAccumulates) {
  ExecMetrics a, b;
  a.tuples_processed = 10;
  a.simulated_seconds = 1.0;
  a.num_jobs = 1;
  b.tuples_processed = 5;
  b.simulated_seconds = 0.5;
  b.reopt_seconds = 0.1;
  b.rows_out = 42;
  b.num_jobs = 2;
  a.Add(b);
  EXPECT_EQ(a.tuples_processed, 15u);
  EXPECT_DOUBLE_EQ(a.simulated_seconds, 1.5);
  EXPECT_DOUBLE_EQ(a.reopt_seconds, 0.1);
  EXPECT_EQ(a.rows_out, 42u);  // Latest stage's output.
  EXPECT_EQ(a.num_jobs, 3);
  EXPECT_FALSE(a.ToString().empty());
}

}  // namespace
}  // namespace dynopt
