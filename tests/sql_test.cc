#include <gtest/gtest.h>

#include <memory>

#include "sql/binder.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "storage/catalog.h"

namespace dynopt {
namespace {

// --- Lexer -------------------------------------------------------------------

TEST(LexerTest, TokenizesKeywordsAndIdentifiers) {
  auto tokens = Tokenize("SELECT x FROM t WHERE y = 1");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 9u);  // 8 tokens + End.
  EXPECT_EQ((*tokens)[0].type, TokenType::kKeyword);
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[1].type, TokenType::kIdentifier);
  EXPECT_EQ((*tokens)[5].type, TokenType::kIdentifier);
  EXPECT_EQ((*tokens)[6].type, TokenType::kEq);
  EXPECT_EQ((*tokens)[7].type, TokenType::kIntLiteral);
  EXPECT_EQ((*tokens)[8].type, TokenType::kEnd);
}

TEST(LexerTest, KeywordsCaseInsensitive) {
  auto tokens = Tokenize("select From wHeRe");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[1].text, "FROM");
  EXPECT_EQ((*tokens)[2].text, "WHERE");
}

TEST(LexerTest, NumbersAndStrings) {
  auto tokens = Tokenize("42 3.14 'hello world'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kIntLiteral);
  EXPECT_EQ((*tokens)[1].type, TokenType::kDoubleLiteral);
  EXPECT_EQ((*tokens)[2].type, TokenType::kStringLiteral);
  EXPECT_EQ((*tokens)[2].text, "hello world");
}

TEST(LexerTest, Operators) {
  auto tokens = Tokenize("= != <> < <= > >=");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kEq);
  EXPECT_EQ((*tokens)[1].type, TokenType::kNe);
  EXPECT_EQ((*tokens)[2].type, TokenType::kNe);
  EXPECT_EQ((*tokens)[3].type, TokenType::kLt);
  EXPECT_EQ((*tokens)[4].type, TokenType::kLe);
  EXPECT_EQ((*tokens)[5].type, TokenType::kGt);
  EXPECT_EQ((*tokens)[6].type, TokenType::kGe);
}

TEST(LexerTest, Params) {
  auto tokens = Tokenize("$year $m_1");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kParam);
  EXPECT_EQ((*tokens)[0].text, "year");
  EXPECT_EQ((*tokens)[1].text, "m_1");
}

TEST(LexerTest, Errors) {
  EXPECT_EQ(Tokenize("'unterminated").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(Tokenize("$ x").status().code(), StatusCode::kParseError);
  EXPECT_EQ(Tokenize("a ! b").status().code(), StatusCode::kParseError);
  EXPECT_EQ(Tokenize("a @ b").status().code(), StatusCode::kParseError);
}

// --- Parser -------------------------------------------------------------------

TEST(ParserTest, BasicSelect) {
  auto stmt = ParseSelect("SELECT a.x, b.y FROM t1 a, t2 AS b");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ(stmt->select_list.size(), 2u);
  ASSERT_EQ(stmt->from.size(), 2u);
  EXPECT_EQ(stmt->from[0].table, "t1");
  EXPECT_EQ(stmt->from[0].alias, "a");
  EXPECT_EQ(stmt->from[1].alias, "b");
  EXPECT_EQ(stmt->where, nullptr);
}

TEST(ParserTest, AliasDefaultsToTableName) {
  auto stmt = ParseSelect("SELECT x FROM orders");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->from[0].alias, "orders");
}

TEST(ParserTest, WhereConjunction) {
  auto stmt = ParseSelect(
      "SELECT a.x FROM t a WHERE a.x = 1 AND a.y > 2 AND a.z <= 3.5");
  ASSERT_TRUE(stmt.ok());
  ASSERT_NE(stmt->where, nullptr);
  EXPECT_EQ(SplitConjuncts(stmt->where).size(), 3u);
}

TEST(ParserTest, BetweenBindsItsOwnAnd) {
  auto stmt = ParseSelect(
      "SELECT a.x FROM t a WHERE a.x BETWEEN 1 AND 9 AND a.y = 2");
  ASSERT_TRUE(stmt.ok());
  auto conjuncts = SplitConjuncts(stmt->where);
  ASSERT_EQ(conjuncts.size(), 2u);
  EXPECT_EQ(conjuncts[0]->kind(), ExprKind::kBetween);
}

TEST(ParserTest, UdfCallsAndParams) {
  auto stmt = ParseSelect(
      "SELECT a.x FROM t a WHERE myyear(a.d) = $y AND f(a.x, 2, 'z')");
  ASSERT_TRUE(stmt.ok());
  auto conjuncts = SplitConjuncts(stmt->where);
  ASSERT_EQ(conjuncts.size(), 2u);
  EXPECT_EQ(conjuncts[0]->kind(), ExprKind::kComparison);
  EXPECT_EQ(conjuncts[1]->kind(), ExprKind::kUdfCall);
}

TEST(ParserTest, ParenthesizedOr) {
  auto stmt = ParseSelect(
      "SELECT a.x FROM t a WHERE (a.x = 1 OR a.x = 2) AND a.y = 3");
  ASSERT_TRUE(stmt.ok());
  auto conjuncts = SplitConjuncts(stmt->where);
  ASSERT_EQ(conjuncts.size(), 2u);
  EXPECT_EQ(conjuncts[0]->kind(), ExprKind::kOr);
}

TEST(ParserTest, NotPredicate) {
  auto stmt = ParseSelect("SELECT a.x FROM t a WHERE NOT a.x = 1");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->where->kind(), ExprKind::kNot);
}

TEST(ParserTest, LiteralKeywords) {
  auto stmt =
      ParseSelect("SELECT a.x FROM t a WHERE a.b = TRUE AND a.c != NULL");
  ASSERT_TRUE(stmt.ok());
}

TEST(ParserTest, Errors) {
  EXPECT_EQ(ParseSelect("FROM t").status().code(), StatusCode::kParseError);
  EXPECT_EQ(ParseSelect("SELECT x").status().code(), StatusCode::kParseError);
  EXPECT_EQ(ParseSelect("SELECT x FROM t WHERE").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(ParseSelect("SELECT x FROM t extra garbage = 1").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(
      ParseSelect("SELECT x FROM t WHERE (a.x = 1").status().code(),
      StatusCode::kParseError);
  EXPECT_EQ(ParseSelect("SELECT f(x) FROM t").status().code(),
            StatusCode::kParseError);  // Expressions in SELECT unsupported.
}

// --- Binder -------------------------------------------------------------------

class BinderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto users = std::make_shared<Table>(
        "users",
        Schema({{"id", ValueType::kInt64}, {"country", ValueType::kString}}),
        2);
    auto orders = std::make_shared<Table>(
        "orders",
        Schema({{"oid", ValueType::kInt64},
                {"user_id", ValueType::kInt64},
                {"amount", ValueType::kDouble}}),
        2);
    auto items = std::make_shared<Table>(
        "items",
        Schema({{"iid", ValueType::kInt64}, {"oid", ValueType::kInt64}}), 2);
    ASSERT_TRUE(catalog_.RegisterTable(users).ok());
    ASSERT_TRUE(catalog_.RegisterTable(orders).ok());
    ASSERT_TRUE(catalog_.RegisterTable(items).ok());
  }

  Catalog catalog_;
};

TEST_F(BinderTest, ClassifiesJoinsAndPredicates) {
  auto spec = ParseAndBind(
      "SELECT u.country, o.amount FROM users u, orders o "
      "WHERE u.id = o.user_id AND o.amount > 10",
      catalog_);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  ASSERT_EQ(spec->joins.size(), 1u);
  EXPECT_EQ(spec->joins[0].keys[0].first, "o.user_id");
  EXPECT_EQ(spec->joins[0].keys[0].second, "u.id");
  ASSERT_EQ(spec->predicates.size(), 1u);
  EXPECT_EQ(spec->predicates[0].alias, "o");
  EXPECT_EQ(spec->projections,
            (std::vector<std::string>{"u.country", "o.amount"}));
}

TEST_F(BinderTest, ResolvesUnqualifiedColumns) {
  auto spec = ParseAndBind(
      "SELECT country FROM users u, orders o WHERE id = user_id", catalog_);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->projections[0], "u.country");
}

TEST_F(BinderTest, AmbiguousColumnRejected) {
  // "oid" exists in both orders and items.
  auto spec = ParseAndBind(
      "SELECT oid FROM orders o, items i WHERE o.oid = i.oid", catalog_);
  EXPECT_EQ(spec.status().code(), StatusCode::kBindError);
}

TEST_F(BinderTest, UnknownTableAndColumn) {
  EXPECT_EQ(ParseAndBind("SELECT x FROM nope", catalog_).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(ParseAndBind("SELECT u.nope FROM users u", catalog_)
                .status()
                .code(),
            StatusCode::kBindError);
}

TEST_F(BinderTest, DuplicateAliasRejected) {
  EXPECT_EQ(ParseAndBind("SELECT u.id FROM users u, orders u", catalog_)
                .status()
                .code(),
            StatusCode::kBindError);
}

TEST_F(BinderTest, DisconnectedJoinGraphRejected) {
  auto spec =
      ParseAndBind("SELECT u.id FROM users u, orders o", catalog_);
  EXPECT_FALSE(spec.ok());  // Cross product: no join edge.
}

TEST_F(BinderTest, MultiAliasPredicateRejected) {
  auto spec = ParseAndBind(
      "SELECT u.id FROM users u, orders o "
      "WHERE u.id = o.user_id AND u.id > o.amount",
      catalog_);
  EXPECT_EQ(spec.status().code(), StatusCode::kBindError);
}

TEST_F(BinderTest, ParamsValidated) {
  auto missing = ParseAndBind(
      "SELECT u.id FROM users u WHERE u.id = $x", catalog_);
  EXPECT_EQ(missing.status().code(), StatusCode::kBindError);
  auto ok = ParseAndBind("SELECT u.id FROM users u WHERE u.id = $x",
                         catalog_, {{"x", Value(1)}});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->params.at("x"), Value(1));
}

TEST_F(BinderTest, SelfJoinWithDistinctAliases) {
  auto spec = ParseAndBind(
      "SELECT a.id FROM users a, users b WHERE a.id = b.id", catalog_);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->joins.size(), 1u);
}

TEST_F(BinderTest, CompositeJoinKeysMerged) {
  auto spec = ParseAndBind(
      "SELECT o.amount FROM orders o, items i "
      "WHERE o.oid = i.oid AND o.user_id = i.iid",
      catalog_);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  ASSERT_EQ(spec->joins.size(), 1u);  // NormalizeJoins merged the pair.
  EXPECT_EQ(spec->joins[0].keys.size(), 2u);
}

TEST_F(BinderTest, SameAliasEqualityIsPredicateNotJoin) {
  auto spec = ParseAndBind(
      "SELECT o.amount FROM orders o WHERE o.oid = o.user_id", catalog_);
  ASSERT_TRUE(spec.ok());
  EXPECT_TRUE(spec->joins.empty());
  EXPECT_EQ(spec->predicates.size(), 1u);
}

TEST_F(BinderTest, BaseTablesRecorded) {
  auto spec = ParseAndBind(
      "SELECT u.id FROM users u, orders o WHERE u.id = o.user_id", catalog_);
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->base_tables.at("u"), "users");
  EXPECT_EQ(spec->base_tables.at("o"), "orders");
}

}  // namespace
}  // namespace dynopt
