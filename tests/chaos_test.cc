// Seeded chaos tests for the fault-injection + recovery subsystem: under
// deterministic injected task failures, stragglers, corrupted temp files
// and whole-query aborts, every optimization strategy must still return
// the exact fault-free result set — the dynamic strategies by resuming
// from their materialization checkpoints, the static ones by whole-query
// restart. Also guards the two invariants the subsystem must not break:
// with injection disabled the metering is byte-for-byte identical to a
// fault-free build, and a query that dies fatally leaks no temp tables.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "exec/engine.h"
#include "opt/dynamic_optimizer.h"
#include "opt/ingres_optimizer.h"
#include "opt/order_baselines.h"
#include "opt/optimizer.h"
#include "opt/pilot_run_optimizer.h"
#include "opt/recovery.h"
#include "opt/static_optimizer.h"
#include "storage/catalog.h"
#include "storage/serde.h"
#include "workloads/tpcds.h"
#include "workloads/tpch.h"

namespace dynopt {
namespace {

const char* const kAllOptimizers[] = {"dynamic",     "cost-based",
                                      "worst-order", "best-order",
                                      "pilot-run",   "ingres-like"};

std::unique_ptr<Optimizer> MakeOptimizer(
    Engine* engine, const std::string& name,
    std::shared_ptr<const JoinTree> best_order_hint) {
  if (name == "dynamic") return std::make_unique<DynamicOptimizer>(engine);
  if (name == "cost-based") {
    return std::make_unique<StaticCostBasedOptimizer>(engine);
  }
  if (name == "worst-order") {
    return std::make_unique<WorstOrderOptimizer>(engine);
  }
  if (name == "pilot-run") return std::make_unique<PilotRunOptimizer>(engine);
  if (name == "ingres-like") {
    return std::make_unique<IngresLikeOptimizer>(engine);
  }
  return std::make_unique<BestOrderOptimizer>(engine,
                                              std::move(best_order_hint));
}

class ChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    engine_ = new Engine();
    TpcdsOptions tpcds;
    tpcds.sf = 0.15;
    ASSERT_TRUE(LoadTpcds(engine_, tpcds).ok());
    TpchOptions tpch;
    tpch.sf = 0.15;
    ASSERT_TRUE(LoadTpch(engine_, tpch).ok());
  }
  static void TearDownTestSuite() {
    delete engine_;
    engine_ = nullptr;
  }

  void TearDown() override {
    // Every test leaves the shared engine fault-free, disk-less and
    // ungoverned again.
    engine_->DisarmFaultInjection();
    engine_->mutable_cluster().fault = FaultInjectionConfig();
    engine_->mutable_cluster().materialize_to_disk = false;
    engine_->mutable_cluster().memory = MemoryGovernanceConfig();
  }

  /// Arms the engine with `cfg` (enabled is forced on).
  static void Arm(FaultInjectionConfig cfg) {
    cfg.enabled = true;
    engine_->mutable_cluster().fault = cfg;
    engine_->ArmFaultInjection();
  }

  /// Fault-free reference result of the dynamic optimizer on TPC-DS Q17
  /// (all strategies must return this same set), with its join tree as the
  /// best-order hint. Computed once.
  struct Reference {
    std::vector<std::string> columns;
    std::vector<Row> sorted_rows;
    std::shared_ptr<const JoinTree> tree;
  };
  static const Reference& Q17Reference() {
    static Reference* reference = [] {
      auto query = TpcdsQ17(engine_);
      DYNOPT_CHECK(query.ok());
      DynamicOptimizer optimizer(engine_);
      auto result = optimizer.Run(query.value());
      DYNOPT_CHECK(result.ok());
      auto* ref = new Reference();
      ref->columns = result->columns;
      ref->sorted_rows = result->rows;
      SortRows(&ref->sorted_rows);
      ref->tree = result->join_tree;
      return ref;
    }();
    return *reference;
  }

  static Engine* engine_;
};

Engine* ChaosTest::engine_ = nullptr;

TEST_F(ChaosTest, StatusTaxonomy) {
  EXPECT_TRUE(IsRetryable(StatusCode::kTransient));
  EXPECT_TRUE(IsRetryable(StatusCode::kDataCorruption));
  EXPECT_FALSE(IsRetryable(StatusCode::kExecutionError));
  EXPECT_FALSE(IsRetryable(StatusCode::kNotFound));
  EXPECT_TRUE(Status::Transient("x").retryable());
  EXPECT_TRUE(Status::DataCorruption("x").retryable());
  EXPECT_FALSE(Status::ExecutionError("x").retryable());
  EXPECT_FALSE(Status::OK().retryable());
}

TEST_F(ChaosTest, DisabledInjectionMetersByteForByte) {
  auto query = TpcdsQ17(engine_);
  ASSERT_TRUE(query.ok());
  for (const char* name : {"dynamic", "cost-based"}) {
    // Never armed.
    auto baseline = MakeOptimizer(engine_, name, Q17Reference().tree)
                        ->Run(query.value());
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

    // Armed but disabled: the injector exists yet every fault hook must be
    // a no-op, down to the last bit of floating-point metering.
    FaultInjectionConfig disabled;
    disabled.seed = 99;
    engine_->mutable_cluster().fault = disabled;  // enabled stays false.
    engine_->ArmFaultInjection();
    auto armed_off = MakeOptimizer(engine_, name, Q17Reference().tree)
                         ->Run(query.value());
    ASSERT_TRUE(armed_off.ok()) << armed_off.status().ToString();

    // Disarmed again.
    engine_->DisarmFaultInjection();
    auto disarmed = MakeOptimizer(engine_, name, Q17Reference().tree)
                        ->Run(query.value());
    ASSERT_TRUE(disarmed.ok());

    for (const auto* run : {&armed_off, &disarmed}) {
      EXPECT_EQ((*run)->metrics.simulated_seconds,
                baseline->metrics.simulated_seconds)
          << name << ": simulated seconds drifted with injection disabled";
      EXPECT_EQ((*run)->metrics.bytes_shuffled,
                baseline->metrics.bytes_shuffled);
      EXPECT_EQ((*run)->metrics.recovery_seconds, 0.0);
      EXPECT_EQ((*run)->metrics.num_retries, 0u);
      EXPECT_EQ((*run)->metrics.speculative_executions, 0u);
      EXPECT_EQ((*run)->rows, baseline->rows);
    }
  }
}

TEST_F(ChaosTest, ChaosSweepAllOptimizersMatchFaultFreeReference) {
  auto query = TpcdsQ17(engine_);
  ASSERT_TRUE(query.ok());
  const Reference& reference = Q17Reference();
  engine_->mutable_cluster().materialize_to_disk = true;

  uint64_t total_retries = 0;
  double total_recovery = 0;
  for (uint64_t seed : {0x5eed1ULL, 0x5eed2ULL, 0x5eed3ULL}) {
    for (const char* name : kAllOptimizers) {
      const size_t tables_before = engine_->catalog().TableNames().size();
      FaultInjectionConfig cfg;
      cfg.seed = seed;
      cfg.task_failure_probability = 0.08;
      cfg.straggler_probability = 0.15;
      cfg.straggler_multiplier = 3.0;
      cfg.corruption_probability = 0.10;
      Arm(cfg);

      auto optimizer = MakeOptimizer(engine_, name, reference.tree);
      RecoveryReport report;
      auto result = RunWithRecovery(optimizer.get(), engine_, query.value(),
                                    RecoveryPolicy(), &report);
      ASSERT_TRUE(result.ok())
          << name << " seed=" << seed << ": " << result.status().ToString();
      std::vector<Row> rows = result->rows;
      SortRows(&rows);
      EXPECT_EQ(rows, reference.sorted_rows)
          << name << " seed=" << seed
          << ": result diverged from the fault-free reference";
      EXPECT_EQ(result->columns, reference.columns);
      EXPECT_GE(result->metrics.recovery_seconds, 0.0);
      EXPECT_GE(report.total_paid_seconds,
                result->metrics.simulated_seconds);
      total_retries += result->metrics.num_retries;
      total_recovery += result->metrics.recovery_seconds;

      engine_->DisarmFaultInjection();
      EXPECT_EQ(engine_->catalog().TableNames().size(), tables_before)
          << name << " seed=" << seed << " leaked temp tables";
    }
  }
  // The sweep must actually have exercised the machinery.
  EXPECT_GT(total_retries, 0u);
  EXPECT_GT(total_recovery, 0.0);
}

TEST_F(ChaosTest, SameSeedReplaysIdenticalFaults) {
  auto query = TpcdsQ17(engine_);
  ASSERT_TRUE(query.ok());
  FaultInjectionConfig cfg;
  cfg.seed = 424242;
  cfg.task_failure_probability = 0.1;
  cfg.straggler_probability = 0.2;
  cfg.straggler_multiplier = 4.0;

  auto run_once = [&]() {
    Arm(cfg);
    DynamicOptimizer optimizer(engine_);
    RecoveryReport report;
    auto result = RunWithRecovery(&optimizer, engine_, query.value(),
                                  RecoveryPolicy(), &report);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    engine_->DisarmFaultInjection();
    return result.ok() ? result->metrics : ExecMetrics();
  };
  ExecMetrics first = run_once();
  ExecMetrics second = run_once();
  EXPECT_EQ(first.simulated_seconds, second.simulated_seconds);
  EXPECT_EQ(first.recovery_seconds, second.recovery_seconds);
  EXPECT_EQ(first.num_retries, second.num_retries);
  EXPECT_EQ(first.speculative_executions, second.speculative_executions);
  // And the faults did fire: same-bits is vacuous on a clean run.
  EXPECT_GT(first.num_retries, 0u);
}

TEST_F(ChaosTest, QueryLevelFailureDynamicResumesFromCheckpoint) {
  auto query = TpcdsQ17(engine_);
  ASSERT_TRUE(query.ok());
  const Reference& reference = Q17Reference();

  // Benign armed run to learn how many kernel stages Q17 executes.
  Arm(FaultInjectionConfig());
  {
    DynamicOptimizer counter(engine_);
    ASSERT_TRUE(counter.Run(query.value()).ok());
  }
  const int stages = engine_->fault_injector()->stages_started();
  ASSERT_GT(stages, 3);

  for (int fail_at : {1, stages / 2, stages - 1}) {
    const size_t tables_before = engine_->catalog().TableNames().size();
    FaultInjectionConfig cfg;
    cfg.fail_query_at_stage = fail_at;
    Arm(cfg);
    DynamicOptimizer optimizer(engine_);
    RecoveryReport report;
    auto result = RunWithRecovery(&optimizer, engine_, query.value(),
                                  RecoveryPolicy(), &report);
    ASSERT_TRUE(result.ok())
        << "fail_at=" << fail_at << ": " << result.status().ToString();
    std::vector<Row> rows = result->rows;
    SortRows(&rows);
    EXPECT_EQ(rows, reference.sorted_rows) << "fail_at=" << fail_at;
    // The dynamic strategy recovers by resuming, never by restarting.
    EXPECT_EQ(report.resumes, 1) << "fail_at=" << fail_at;
    EXPECT_EQ(report.restarts, 0) << "fail_at=" << fail_at;
    engine_->DisarmFaultInjection();
    EXPECT_EQ(engine_->catalog().TableNames().size(), tables_before);
  }
}

TEST_F(ChaosTest, QueryLevelFailureStaticOptimizerRestarts) {
  auto query = TpcdsQ17(engine_);
  ASSERT_TRUE(query.ok());
  const Reference& reference = Q17Reference();

  Arm(FaultInjectionConfig());
  {
    StaticCostBasedOptimizer counter(engine_);
    ASSERT_TRUE(counter.Run(query.value()).ok());
  }
  const int stages = engine_->fault_injector()->stages_started();
  ASSERT_GT(stages, 1);

  FaultInjectionConfig cfg;
  cfg.fail_query_at_stage = stages / 2;
  Arm(cfg);
  StaticCostBasedOptimizer optimizer(engine_);
  RecoveryReport report;
  auto result = RunWithRecovery(&optimizer, engine_, query.value(),
                                RecoveryPolicy(), &report);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::vector<Row> rows = result->rows;
  SortRows(&rows);
  EXPECT_EQ(rows, reference.sorted_rows);
  // No checkpoints to resume from: the whole query re-ran.
  EXPECT_EQ(report.restarts, 1);
  EXPECT_EQ(report.resumes, 0);
  EXPECT_GE(report.wasted_seconds, 0.0);
  EXPECT_GE(report.total_paid_seconds, result->metrics.simulated_seconds);
}

TEST_F(ChaosTest, AutoCheckpointResumeViaOptimizerInterface) {
  // The legacy stage-count injection path now raises a retryable Transient
  // and the new resume interface picks it up without touching
  // DynamicCheckpoint by hand.
  auto query = TpcdsQ17(engine_);
  ASSERT_TRUE(query.ok());
  const Reference& reference = Q17Reference();
  const size_t tables_before = engine_->catalog().TableNames().size();

  DynamicOptimizerOptions options;
  options.inject_failure_after_stages = 2;
  DynamicOptimizer optimizer(engine_, options);
  auto failed = optimizer.Run(query.value());
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(failed.status().retryable());
  ASSERT_TRUE(optimizer.CanResume());

  // Clear the injection knob for the resumed portion; the options are
  // per-optimizer, so resume through a fresh one wired to the same
  // checkpoint via the base-class interface.
  auto resumed = optimizer.ResumeFromLastCheckpoint();
  // completed_stages continues past the knob, so the resume re-trips the
  // injector; keep resuming — each failure checkpoints strictly later.
  int guard = 0;
  while (!resumed.ok() && resumed.status().retryable() &&
         optimizer.CanResume() && ++guard < 32) {
    resumed = optimizer.ResumeFromLastCheckpoint();
  }
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  std::vector<Row> rows = resumed->rows;
  SortRows(&rows);
  EXPECT_EQ(rows, reference.sorted_rows);
  EXPECT_FALSE(optimizer.CanResume());
  EXPECT_EQ(engine_->catalog().TableNames().size(), tables_before);
}

TEST_F(ChaosTest, FatalCorruptionLeaksNoTempTables) {
  auto query = TpcdsQ17(engine_);
  ASSERT_TRUE(query.ok());
  engine_->mutable_cluster().materialize_to_disk = true;

  // A retry budget of 1 turns the first corrupted materialization into a
  // fatal ExecutionError. Scan seeds until a run dies *after* at least one
  // stage completed (so temp tables existed when it died): before the
  // cleanup guard, that scenario leaked them.
  bool found_late_fatal = false;
  for (uint64_t seed = 1; seed <= 30 && !found_late_fatal; ++seed) {
    const size_t tables_before = engine_->catalog().TableNames().size();
    FaultInjectionConfig cfg;
    cfg.seed = seed;
    cfg.corruption_probability = 0.08;
    cfg.backoff.max_attempts = 1;
    Arm(cfg);
    DynamicOptimizer optimizer(engine_);
    auto result = optimizer.Run(query.value());
    const int stages = engine_->fault_injector()->stages_started();
    engine_->DisarmFaultInjection();
    if (!result.ok()) {
      ASSERT_FALSE(result.status().retryable())
          << result.status().ToString();
      EXPECT_FALSE(optimizer.CanResume());
      EXPECT_EQ(engine_->catalog().TableNames().size(), tables_before)
          << "seed=" << seed << " leaked temp tables on fatal failure";
      if (stages >= 2) found_late_fatal = true;
    }
  }
  EXPECT_TRUE(found_late_fatal)
      << "no seed produced a fatal failure after the first stage; "
         "loosen the sweep";
}

TEST_F(ChaosTest, PilotRunDropsSinkOnMidQueryFailure) {
  auto query = TpcdsQ17(engine_);
  ASSERT_TRUE(query.ok());

  Arm(FaultInjectionConfig());
  {
    PilotRunOptimizer counter(engine_);
    ASSERT_TRUE(counter.Run(query.value()).ok());
  }
  const int stages = engine_->fault_injector()->stages_started();
  ASSERT_GT(stages, 2);

  // Kill the query in its last kernel — well after the pilot sink table
  // was materialized. The sink must not outlive the failed run.
  const size_t tables_before = engine_->catalog().TableNames().size();
  FaultInjectionConfig cfg;
  cfg.fail_query_at_stage = stages - 1;
  Arm(cfg);
  PilotRunOptimizer optimizer(engine_);
  auto result = optimizer.Run(query.value());
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().retryable());
  EXPECT_EQ(engine_->catalog().TableNames().size(), tables_before);
}

TEST_F(ChaosTest, StragglersTriggerSpeculativeExecution) {
  auto query = TpcdsQ17(engine_);
  ASSERT_TRUE(query.ok());
  const Reference& reference = Q17Reference();

  bool speculated = false;
  for (uint64_t seed = 1; seed <= 5 && !speculated; ++seed) {
    FaultInjectionConfig cfg;
    cfg.seed = seed;
    cfg.straggler_probability = 0.5;
    cfg.straggler_multiplier = 10.0;
    cfg.speculation_threshold = 2.0;
    Arm(cfg);
    DynamicOptimizer optimizer(engine_);
    auto result = optimizer.Run(query.value());
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    std::vector<Row> rows = result->rows;
    SortRows(&rows);
    EXPECT_EQ(rows, reference.sorted_rows);
    if (result->metrics.speculative_executions > 0) {
      EXPECT_GT(result->metrics.recovery_seconds, 0.0);
      speculated = true;
    }
    engine_->DisarmFaultInjection();
  }
  EXPECT_TRUE(speculated)
      << "no seed produced a speculative backup; loosen the sweep";
}

TEST_F(ChaosTest, FaultsUnderTightMemoryBudgetStillMatchReference) {
  // Chaos and memory pressure together: injected task failures, stragglers
  // and corrupted temp files while every hash join is squeezed through the
  // spill-to-disk grace path. Recovery must still reconstruct the exact
  // fault-free result, and neither temp tables nor spill files may leak.
  auto query = TpcdsQ17(engine_);
  ASSERT_TRUE(query.ok());
  const Reference& reference = Q17Reference();
  engine_->mutable_cluster().materialize_to_disk = true;
  // The sf-0.15 fixture has tiny per-partition build sides, so the budget
  // must sit far below the bench default to actually force spilling here.
  engine_->mutable_cluster().memory.join_memory_budget_bytes = 512;

  bool spilled = false;
  for (const char* name : {"dynamic", "cost-based", "ingres-like"}) {
    const size_t tables_before = engine_->catalog().TableNames().size();
    FaultInjectionConfig cfg;
    cfg.seed = 0xbadbeef;
    cfg.task_failure_probability = 0.08;
    cfg.straggler_probability = 0.15;
    cfg.straggler_multiplier = 3.0;
    cfg.corruption_probability = 0.10;
    Arm(cfg);

    QueryContext ctx(name);
    auto optimizer = MakeOptimizer(engine_, name, reference.tree);
    optimizer->set_context(&ctx);
    RecoveryReport report;
    auto result = RunWithRecovery(optimizer.get(), engine_, query.value(),
                                  RecoveryPolicy(), &report);
    ASSERT_TRUE(result.ok()) << name << ": " << result.status().ToString();
    std::vector<Row> rows = result->rows;
    SortRows(&rows);
    EXPECT_EQ(rows, reference.sorted_rows)
        << name << ": diverged under faults + memory pressure";
    if (result->metrics.spilled_bytes > 0) spilled = true;

    engine_->DisarmFaultInjection();
    EXPECT_EQ(engine_->catalog().TableNames().size(), tables_before)
        << name << " leaked temp tables";
    EXPECT_EQ(CountFilesWithPrefix(engine_->cluster().spill_directory,
                                   ctx.SpillFilePrefix()),
              0)
        << name << " leaked spill files";
  }
  EXPECT_TRUE(spilled) << "the budget never forced a spill; tighten it";
}

TEST_F(ChaosTest, DropTempTablesWithPrefixIsSelective) {
  Catalog catalog;
  auto add = [&](const std::string& name) {
    auto table = std::make_shared<Table>(
        name, Schema({{"x", ValueType::kInt64}}), 2);
    ASSERT_TRUE(catalog.RegisterTable(std::move(table)).ok());
  };
  add("base_table");
  const std::string foo1 = catalog.UniqueTempName("foo");
  const std::string foo2 = catalog.UniqueTempName("foo");
  const std::string bar = catalog.UniqueTempName("bar");
  add(foo1);
  add(foo2);
  add(bar);

  std::vector<std::string> dropped = catalog.DropTempTablesWithPrefix("foo");
  EXPECT_EQ(dropped.size(), 2u);
  EXPECT_FALSE(catalog.HasTable(foo1));
  EXPECT_FALSE(catalog.HasTable(foo2));
  EXPECT_TRUE(catalog.HasTable(bar));
  EXPECT_TRUE(catalog.HasTable("base_table"));

  // Empty prefix: the failure-path janitor drops every temp table but
  // never a base table.
  dropped = catalog.DropTempTablesWithPrefix("");
  EXPECT_EQ(dropped, std::vector<std::string>{bar});
  EXPECT_TRUE(catalog.HasTable("base_table"));
}

}  // namespace
}  // namespace dynopt
