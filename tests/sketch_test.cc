// Predicate-transfer sketch layer (stats/sketch.h):
//  - the Bloom filter never reports a false negative and stays within its
//    configured false-positive budget;
//  - the Fast-AGMS dot product tracks the exact equi-join size on uniform
//    and skewed key distributions;
//  - shard merging is commutative and associative (bitwise OR / elementwise
//    add), so per-partition builders combine into one dataset-level sketch;
//  - everything is deterministic under a fixed seed;
//  - ClusterConfig rejects out-of-range sketch knobs at validation time.

#include "stats/sketch.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "exec/cluster.h"

namespace dynopt {
namespace {

// Deterministic stand-in for the executor's key hashing: any fixed 64-bit
// mix works, the sketches only require that equal keys hash equally.
uint64_t KeyHash(uint64_t key) { return SketchMix64(key ^ 0x9a3c7b5d1e2f4a60ULL); }

TEST(BloomFilterTest, NoFalseNegativesEver) {
  const int n = 20000;
  BloomFilter bloom(n, 8.0);
  for (int i = 0; i < n; ++i) bloom.Insert(KeyHash(i));
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(bloom.MayContain(KeyHash(i))) << "false negative at key " << i;
  }
  EXPECT_EQ(bloom.num_inserted(), static_cast<uint64_t>(n));
}

TEST(BloomFilterTest, FalsePositiveRateWithinConfiguredBound) {
  const int n = 20000;
  for (double bits_per_key : {8.0, 12.0}) {
    BloomFilter bloom(n, bits_per_key);
    for (int i = 0; i < n; ++i) bloom.Insert(KeyHash(i));
    int false_positives = 0;
    const int probes = 50000;
    for (int i = 0; i < probes; ++i) {
      if (bloom.MayContain(KeyHash(1000000 + i))) ++false_positives;
    }
    // Theoretical blocked-Bloom rate at load n*bits_per_key with
    // k = round(bits_per_key * ln 2) hashes: (1 - e^(-n*k/m))^k. At 8 bpk
    // that is ~2.2%, at 12 bpk ~0.4%; allow 2x slack for per-slice
    // crowding before declaring the sizing math broken.
    const double k = static_cast<double>(bloom.num_hashes());
    const double m = static_cast<double>(bloom.num_bits());
    const double theoretical =
        std::pow(1.0 - std::exp(-static_cast<double>(n) * k / m), k);
    const double observed =
        static_cast<double>(false_positives) / static_cast<double>(probes);
    EXPECT_LE(observed, 2.0 * theoretical + 0.001)
        << "bits_per_key=" << bits_per_key;
  }
}

TEST(BloomFilterTest, MergeIsUnionAndCommutative) {
  const int n = 5000;
  // Shards must be sized from the same expected total to share a layout.
  BloomFilter a(2 * n, 8.0), b(2 * n, 8.0), ba(2 * n, 8.0);
  for (int i = 0; i < n; ++i) a.Insert(KeyHash(i));
  for (int i = n; i < 2 * n; ++i) b.Insert(KeyHash(i));
  BloomFilter ab = a;
  ASSERT_TRUE(ab.MergeFrom(b));
  ba = b;
  ASSERT_TRUE(ba.MergeFrom(a));
  for (int i = 0; i < 2 * n; ++i) {
    ASSERT_TRUE(ab.MayContain(KeyHash(i)));
    ASSERT_TRUE(ba.MayContain(KeyHash(i)));
  }
  // Commutative: both orders answer identically on a probe sweep.
  for (int i = 0; i < 20000; ++i) {
    ASSERT_EQ(ab.MayContain(KeyHash(i)), ba.MayContain(KeyHash(i)));
  }
  EXPECT_EQ(ab.num_inserted(), static_cast<uint64_t>(2 * n));
}

TEST(BloomFilterTest, MergeRejectsLayoutMismatch) {
  BloomFilter a(1000, 8.0), b(4000, 8.0), c(1000, 12.0);
  EXPECT_FALSE(a.MergeFrom(b));  // Different size.
  EXPECT_FALSE(a.MergeFrom(c));  // Different hash count.
  BloomFilter d(1000, 8.0, /*seed=*/42);
  EXPECT_FALSE(a.MergeFrom(d));  // Different seed.
}

// Exact equi-join size of two frequency maps: sum_k f_a(k) * f_b(k).
double ExactJoinSize(const std::map<uint64_t, int64_t>& a,
                     const std::map<uint64_t, int64_t>& b) {
  double total = 0;
  for (const auto& [k, fa] : a) {
    auto it = b.find(k);
    if (it != b.end()) total += static_cast<double>(fa * it->second);
  }
  return total;
}

TEST(FastAgmsTest, TracksUniformJoinSize) {
  SketchOptions opts;
  FastAgmsSketch left(opts), right(opts);
  std::map<uint64_t, int64_t> fl, fr;
  // 6000 rows over 600 keys on the left, 600 distinct keys on the right:
  // every left row joins exactly once.
  for (int i = 0; i < 6000; ++i) {
    left.Update(KeyHash(i % 600));
    ++fl[i % 600];
  }
  for (int i = 0; i < 600; ++i) {
    right.Update(KeyHash(i));
    ++fr[i];
  }
  const double exact = ExactJoinSize(fl, fr);
  ASSERT_EQ(exact, 6000.0);
  const double est = left.JoinSizeEstimate(right);
  EXPECT_GE(est, 0.5 * exact);
  EXPECT_LE(est, 2.0 * exact);
}

TEST(FastAgmsTest, SeesHotKeySkewTheNdvQuotientMisses) {
  SketchOptions opts;
  FastAgmsSketch left(opts), right(opts);
  std::map<uint64_t, int64_t> fl, fr;
  // One hot key on both sides: 2000 x 500 = 1M of the 1.0005M join rows
  // come from a single key. Formula (1) would divide 2500*1000 by
  // max(ndv)=501 and estimate ~5000 — off by 200x; the sketch dot product
  // must land within 2x of the truth.
  for (int i = 0; i < 2000; ++i) {
    left.Update(KeyHash(7));
    ++fl[7];
  }
  for (int i = 0; i < 500; ++i) {
    left.Update(KeyHash(100 + i));
    ++fl[100 + i];
  }
  for (int i = 0; i < 500; ++i) {
    right.Update(KeyHash(7));
    ++fr[7];
  }
  for (int i = 0; i < 500; ++i) {
    right.Update(KeyHash(100 + i));
    ++fr[100 + i];
  }
  const double exact = ExactJoinSize(fl, fr);
  ASSERT_EQ(exact, 2000.0 * 500 + 500);
  const double est = left.JoinSizeEstimate(right);
  EXPECT_GE(est, 0.5 * exact);
  EXPECT_LE(est, 2.0 * exact);
}

TEST(FastAgmsTest, MergeIsCommutativeAndAssociative) {
  SketchOptions opts;
  FastAgmsSketch a(opts), b(opts), c(opts), probe(opts);
  for (int i = 0; i < 1000; ++i) a.Update(KeyHash(i % 50));
  for (int i = 0; i < 800; ++i) b.Update(KeyHash(i % 80));
  for (int i = 0; i < 600; ++i) c.Update(KeyHash(i % 30));
  for (int i = 0; i < 90; ++i) probe.Update(KeyHash(i));

  // (a + b) + c
  FastAgmsSketch abc1 = a;
  ASSERT_TRUE(abc1.MergeFrom(b));
  ASSERT_TRUE(abc1.MergeFrom(c));
  // a + (b + c)
  FastAgmsSketch bc = b;
  ASSERT_TRUE(bc.MergeFrom(c));
  FastAgmsSketch abc2 = a;
  ASSERT_TRUE(abc2.MergeFrom(bc));
  // c + b + a (another order)
  FastAgmsSketch abc3 = c;
  ASSERT_TRUE(abc3.MergeFrom(b));
  ASSERT_TRUE(abc3.MergeFrom(a));

  // Counters are integers, so every merge order yields the exact same
  // estimate against any probe sketch.
  EXPECT_EQ(abc1.JoinSizeEstimate(probe), abc2.JoinSizeEstimate(probe));
  EXPECT_EQ(abc1.JoinSizeEstimate(probe), abc3.JoinSizeEstimate(probe));
  EXPECT_EQ(abc1.total_count(), abc2.total_count());
  EXPECT_EQ(abc1.total_count(), abc3.total_count());
  EXPECT_EQ(abc1.SelfJoinSize(), abc2.SelfJoinSize());
}

TEST(FastAgmsTest, MergeAndEstimateRejectShapeMismatch) {
  SketchOptions narrow;
  narrow.agms_width = 64;
  SketchOptions shallow;
  shallow.agms_depth = 3;
  SketchOptions reseeded;
  reseeded.seed = 1;
  FastAgmsSketch base{SketchOptions()};
  FastAgmsSketch w(narrow), d(shallow), s(reseeded);
  EXPECT_FALSE(base.MergeFrom(w));
  EXPECT_FALSE(base.MergeFrom(d));
  EXPECT_FALSE(base.MergeFrom(s));
  EXPECT_EQ(base.JoinSizeEstimate(w), -1.0);
  EXPECT_EQ(base.JoinSizeEstimate(d), -1.0);
  EXPECT_EQ(base.JoinSizeEstimate(s), -1.0);
}

TEST(SketchTest, DeterministicUnderFixedSeed) {
  SketchOptions opts;
  FastAgmsSketch a1(opts), a2(opts), b(opts);
  BloomFilter f1(1000, 8.0), f2(1000, 8.0);
  for (int i = 0; i < 1000; ++i) {
    a1.Update(KeyHash(i % 97));
    a2.Update(KeyHash(i % 97));
    b.Update(KeyHash(i % 41));
    f1.Insert(KeyHash(i));
    f2.Insert(KeyHash(i));
  }
  EXPECT_EQ(a1.JoinSizeEstimate(b), a2.JoinSizeEstimate(b));
  for (int i = 0; i < 5000; ++i) {
    ASSERT_EQ(f1.MayContain(KeyHash(i)), f2.MayContain(KeyHash(i)));
  }
}

TEST(SketchManagerTest, PutGetRemoveTable) {
  SketchManager manager;
  SketchOptions opts;
  auto make = [&] {
    return std::make_shared<JoinKeySketch>(
        JoinKeySketch{BloomFilter(10, 8.0), FastAgmsSketch(opts), 10, 0});
  };
  manager.Put("orders", "o_okey", make());
  manager.Put("orders", "o_ckey", make());
  manager.Put("lineitem", "l_okey", make());
  EXPECT_TRUE(manager.Has("orders", "o_okey"));
  EXPECT_NE(manager.Get("orders", "o_ckey"), nullptr);
  EXPECT_EQ(manager.Get("orders", "missing"), nullptr);
  manager.RemoveTable("orders");
  EXPECT_FALSE(manager.Has("orders", "o_okey"));
  EXPECT_FALSE(manager.Has("orders", "o_ckey"));
  EXPECT_TRUE(manager.Has("lineitem", "l_okey"));
  manager.Clear();
  EXPECT_FALSE(manager.Has("lineitem", "l_okey"));
}

TEST(SketchConfigTest, ValidateRejectsOutOfRangeKnobs) {
  ClusterConfig ok;
  EXPECT_TRUE(ValidateClusterConfig(ok).ok());

  ClusterConfig c = ok;
  c.sketch.pt_bits_per_key = 0.5;
  EXPECT_FALSE(ValidateClusterConfig(c).ok());
  c = ok;
  c.sketch.pt_bits_per_key = 65.0;
  EXPECT_FALSE(ValidateClusterConfig(c).ok());
  c = ok;
  c.sketch.agms_depth = 0;
  EXPECT_FALSE(ValidateClusterConfig(c).ok());
  c = ok;
  c.sketch.agms_depth = 65;
  EXPECT_FALSE(ValidateClusterConfig(c).ok());
  c = ok;
  c.sketch.agms_width = 0;
  EXPECT_FALSE(ValidateClusterConfig(c).ok());
  c = ok;
  c.sketch.agms_width = 2000000;
  EXPECT_FALSE(ValidateClusterConfig(c).ok());
  // The boundary values themselves are legal.
  c = ok;
  c.sketch.pt_bits_per_key = 1.0;
  c.sketch.agms_depth = 1;
  c.sketch.agms_width = 1;
  EXPECT_TRUE(ValidateClusterConfig(c).ok());
  c.sketch.pt_bits_per_key = 64.0;
  c.sketch.agms_depth = 64;
  c.sketch.agms_width = 1048576;
  EXPECT_TRUE(ValidateClusterConfig(c).ok());
}

}  // namespace
}  // namespace dynopt
