// The live introspection plane end to end:
//  - every sys.* virtual table answers `SELECT *` through the SQL front
//    end under all seven strategies;
//  - sys scans are metered at zero simulated cost, and turning
//    introspection on does not change a query's simulated time;
//  - metrics registries are engine-scoped (two engines do not share
//    counters, and neither leaks into the process-wide registry);
//  - the profile archive is a bounded ring keyed by a stable logical
//    fingerprint;
//  - the critical-path extractor picks the dominant sim-seconds chain;
//  - the plan-regression detector names the first diverging decision and
//    the error-store prior that drove it, in both sys.decisions and
//    EXPLAIN ANALYZE.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "exec/engine.h"
#include "opt/critical_path.h"
#include "opt/dynamic_optimizer.h"
#include "opt/explain.h"
#include "opt/ingres_optimizer.h"
#include "opt/order_baselines.h"
#include "opt/pilot_run_optimizer.h"
#include "opt/profile_archive.h"
#include "opt/sketch_optimizer.h"
#include "opt/static_optimizer.h"
#include "sql/binder.h"
#include "sys/system_tables.h"

namespace dynopt {
namespace {

class SysTest : public ::testing::Test {
 protected:
  static void LoadTables(Engine* engine) {
    Rng rng(5);
    for (const char* name : {"x", "y", "z"}) {
      auto t = std::make_shared<Table>(
          name, Schema({{"k", ValueType::kInt64}, {"v", ValueType::kInt64}}),
          engine->cluster().num_nodes);
      ASSERT_TRUE(t->SetPartitionKey({"k"}).ok());
      for (int i = 0; i < 300; ++i) {
        t->AppendRow({Value(rng.NextInt64(0, 49)), Value(rng.NextInt64(0, 9))});
      }
      ASSERT_TRUE(engine->catalog().RegisterTable(t).ok());
      ASSERT_TRUE(engine->CollectBaseStats(name, {"k", "v"}).ok());
    }
  }

  static QuerySpec ChainQuery() {
    QuerySpec spec;
    spec.tables = {{"x", "x", false, false, {}},
                   {"y", "y", false, false, {}},
                   {"z", "z", false, false, {}}};
    spec.joins = {{"x", "y", {{"x.k", "y.k"}}}, {"y", "z", {{"y.k", "z.k"}}}};
    spec.projections = {"x.v", "y.v", "z.v"};
    spec.NormalizeJoins();
    return spec;
  }

  void SetUp() override {
    engine_ = std::make_unique<Engine>();
    EnableIntrospection(engine_.get());
    LoadTables(engine_.get());
  }

  std::unique_ptr<Engine> engine_;
};

int ColumnIndex(const std::vector<std::string>& columns,
                const std::string& suffix) {
  for (size_t i = 0; i < columns.size(); ++i) {
    const std::string& c = columns[i];
    if (c == suffix ||
        (c.size() > suffix.size() &&
         c.compare(c.size() - suffix.size(), suffix.size(), suffix) == 0 &&
         c[c.size() - suffix.size() - 1] == '.')) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

TEST_F(SysTest, EverySysTableQueryableUnderAllSevenStrategies) {
  // One completed query so sys.queries / sys.decisions have rows.
  QuerySpec chain = ChainQuery();
  DynamicOptimizer seed(engine_.get());
  ASSERT_TRUE(seed.Run(chain).ok());

  for (const std::string& table : SystemTableNames()) {
    auto spec = ParseAndBind("SELECT * FROM " + table, engine_->catalog());
    ASSERT_TRUE(spec.ok()) << table << ": " << spec.status().ToString();

    auto check = [&](Optimizer* opt) {
      auto result = opt->Run(*spec);
      ASSERT_TRUE(result.ok())
          << table << " under " << opt->name() << ": "
          << result.status().ToString();
      EXPECT_FALSE(result->columns.empty()) << table << " " << opt->name();
      if (table == "sys.metrics" || table == "sys.admission" ||
          table == "sys.memory" || table == "sys.queries") {
        EXPECT_GT(result->rows.size(), 0u) << table << " " << opt->name();
      }
    };
    DynamicOptimizer dynamic(engine_.get());
    check(&dynamic);
    BestOrderOptimizer best(engine_.get(), nullptr);
    check(&best);
    StaticCostBasedOptimizer cost_based(engine_.get());
    check(&cost_based);
    PilotRunOptimizer pilot(engine_.get());
    check(&pilot);
    IngresLikeOptimizer ingres(engine_.get());
    check(&ingres);
    WorstOrderOptimizer worst(engine_.get());
    check(&worst);
    SketchDynamicOptimizer sketch(engine_.get());
    check(&sketch);
  }
}

TEST_F(SysTest, SysScansAreMeteredAtZeroSimulatedCost) {
  auto spec = ParseAndBind("SELECT * FROM sys.metrics", engine_->catalog());
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  DynamicOptimizer dynamic(engine_.get());
  auto result = dynamic.Run(*spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->rows.size(), 0u);
  EXPECT_DOUBLE_EQ(result->metrics.simulated_seconds, 0.0);
}

TEST_F(SysTest, IntrospectionOnDoesNotChangeSimulatedTime) {
  QuerySpec chain = ChainQuery();
  auto plain = std::make_unique<Engine>();
  LoadTables(plain.get());
  DynamicOptimizer off(plain.get());
  auto a = off.Run(chain);
  ASSERT_TRUE(a.ok());

  DynamicOptimizer on(engine_.get());  // fixture engine: introspection on
  auto b = on.Run(chain);
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->metrics.simulated_seconds, b->metrics.simulated_seconds);
  EXPECT_EQ(a->metrics.bytes_shuffled, b->metrics.bytes_shuffled);
}

TEST_F(SysTest, MetricsRegistriesAreEngineScoped) {
  const uint64_t global_before =
      MetricsRegistry::Global().counter("opt.decisions")->value();
  auto other = std::make_unique<Engine>();
  LoadTables(other.get());
  const uint64_t other_before =
      other->metrics_registry().counter("opt.decisions")->value();

  QuerySpec chain = ChainQuery();
  DynamicOptimizer dynamic(engine_.get());
  ASSERT_TRUE(dynamic.Run(chain).ok());

  EXPECT_GT(engine_->metrics_registry().counter("opt.decisions")->value(), 0u);
  // A run on one engine must not bleed into another engine's registry or
  // the process-global one.
  EXPECT_EQ(other->metrics_registry().counter("opt.decisions")->value(),
            other_before);
  EXPECT_EQ(MetricsRegistry::Global().counter("opt.decisions")->value(),
            global_before);
}

TEST_F(SysTest, ArchiveIsABoundedRing) {
  auto engine = std::make_unique<Engine>();
  engine->mutable_cluster().introspection.enabled = true;
  engine->mutable_cluster().introspection.archive_capacity = 3;
  InstallSystemTables(engine.get());
  LoadTables(engine.get());

  // Five distinct single-table queries (distinct fingerprints).
  for (int limit = 1; limit <= 5; ++limit) {
    QuerySpec spec;
    spec.tables = {{"x", "x", false, false, {}}};
    spec.projections = {"x.v"};
    spec.limit = limit;
    DynamicOptimizer dynamic(engine.get());
    ASSERT_TRUE(dynamic.Run(spec).ok());
  }
  ProfileArchive* archive = EngineProfileArchive(engine.get());
  ASSERT_NE(archive, nullptr);
  EXPECT_EQ(archive->NumArchived(), 3u);
  EXPECT_GT(archive->ApproxBytes(), 0u);
  // Oldest evicted first: the surviving entries are the last three runs.
  auto entries = archive->Snapshot();
  ASSERT_EQ(entries.size(), 3u);
  for (const auto& e : entries) {
    EXPECT_FALSE(e.fingerprint.empty());
  }
  EXPECT_NE(entries[0].fingerprint, entries[1].fingerprint);
}

TEST_F(SysTest, FingerprintIsStableAcrossBindingsAndOrdering) {
  QuerySpec a = ChainQuery();
  QuerySpec b = ChainQuery();
  // Same prepared statement, different parameter *values*: same shape.
  a.params["p"] = Value(static_cast<int64_t>(1));
  b.params["p"] = Value(static_cast<int64_t>(99));
  EXPECT_EQ(QueryFingerprint(a), QueryFingerprint(b));

  // Table and join order is canonicalized away.
  QuerySpec c = ChainQuery();
  c.params["p"] = Value(static_cast<int64_t>(1));
  std::reverse(c.tables.begin(), c.tables.end());
  std::reverse(c.joins.begin(), c.joins.end());
  EXPECT_EQ(QueryFingerprint(a), QueryFingerprint(c));

  // A different logical shape fingerprints differently.
  QuerySpec d = ChainQuery();
  d.params["p"] = Value(static_cast<int64_t>(1));
  d.limit = 10;
  EXPECT_NE(QueryFingerprint(a), QueryFingerprint(d));
}

TEST(CriticalPathTest, PicksTheDominantSimSecondsChain) {
  // One query span over two stages; the second stage dominates and has a
  // metered job below it. Children carry "sim_seconds" args, the query
  // span aggregates.
  std::vector<TraceEvent> events;
  events.push_back({"query:test", "query", 0, 100, 1, 0, {}});
  events.push_back({"stage-a", "stage", 5, 20, 1, 1, {{"sim_seconds", "0.5"}}});
  events.push_back(
      {"stage-b", "stage", 30, 60, 1, 1, {{"sim_seconds", "2.0"}}});
  events.push_back(
      {"job-x", "job", 35, 20, 1, 2, {{"sim_seconds", "1.5"}}});
  EXPECT_EQ(CriticalPath(events),
            "query:test (2.500s) -> stage-b (2.000s) -> job-x (1.500s)");

  // No metered span anywhere -> no path.
  std::vector<TraceEvent> unmetered;
  unmetered.push_back({"query:test", "query", 0, 100, 1, 0, {}});
  EXPECT_EQ(CriticalPath(unmetered), "");
  EXPECT_EQ(CriticalPath({}), "");
}

TEST_F(SysTest, RegressionDetectorNamesDivergentDecisionAndPrior) {
  // Seeded fast/slow pair of the same logical query, fed through the real
  // IntrospectionRun plumbing. The slow run's plan departs at decision #0,
  // where an error-store prior was in play.
  QuerySpec spec;
  spec.tables = {{"x", "x", false, false, {}}};
  spec.projections = {"x.v"};

  auto make_result = [&](const std::string& chosen, const std::string& prior,
                         double prior_factor, double sim) {
    OptimizerRunResult result;
    result.profile = std::make_shared<QueryProfile>();
    result.profile->optimizer = "dynamic";
    PlanDecision d;
    d.point = "join-1";
    d.chosen = chosen;
    d.estimated_rows = 100;
    d.prior_key = prior;
    d.prior_factor = prior_factor;
    int id = result.profile->decisions.Record(std::move(d));
    result.profile->decisions.SetActual(id, 300);
    result.metrics.simulated_seconds = sim;
    result.profile->metrics = result.metrics;
    return result;
  };

  {
    IntrospectionRun fast(engine_.get(), spec, "dynamic", nullptr);
    auto result = make_result("(x*y)", "", 1.0, 1.0);
    fast.Complete(&result);
    EXPECT_TRUE(result.profile->regression_note.empty());
  }
  OptimizerRunResult slow_result;
  {
    IntrospectionRun slow(engine_.get(), spec, "dynamic", nullptr);
    slow_result = make_result("(z*y)", "y.k|z.k", 2.5, 5.0);
    slow.Complete(&slow_result);
  }
  const std::string& note = slow_result.profile->regression_note;
  ASSERT_FALSE(note.empty());
  EXPECT_NE(note.find("5.00x the best archived run"), std::string::npos)
      << note;
  EXPECT_NE(note.find("first divergent decision #0 join-1: (z*y) "
                      "(baseline: (x*y))"),
            std::string::npos)
      << note;
  EXPECT_NE(note.find("prior=y.k|z.k" + std::string("x2.50")),
            std::string::npos)
      << note;

  // The same verdict must be visible in EXPLAIN ANALYZE...
  auto explained = ExplainAnalyze(engine_.get(), spec, slow_result);
  ASSERT_TRUE(explained.ok()) << explained.status().ToString();
  EXPECT_NE(explained->find("-- regression --"), std::string::npos)
      << *explained;
  EXPECT_NE(explained->find("first divergent decision #0 join-1"),
            std::string::npos)
      << *explained;
  EXPECT_NE(explained->find("prior=y.k|z.k"), std::string::npos)
      << *explained;

  // ...and in sys.decisions / sys.queries, queried through SQL.
  auto dspec =
      ParseAndBind("SELECT * FROM sys.decisions", engine_->catalog());
  ASSERT_TRUE(dspec.ok()) << dspec.status().ToString();
  DynamicOptimizer dynamic(engine_.get());
  auto decisions = dynamic.Run(*dspec);
  ASSERT_TRUE(decisions.ok()) << decisions.status().ToString();
  const int prior_col = ColumnIndex(decisions->columns, "prior_key");
  const int diverged_col = ColumnIndex(decisions->columns, "diverged");
  const int chosen_col = ColumnIndex(decisions->columns, "chosen");
  ASSERT_GE(prior_col, 0);
  ASSERT_GE(diverged_col, 0);
  ASSERT_GE(chosen_col, 0);
  bool found = false;
  for (const Row& row : decisions->rows) {
    if (row[static_cast<size_t>(diverged_col)].AsBool() &&
        row[static_cast<size_t>(chosen_col)].AsString() == "(z*y)") {
      found = true;
      EXPECT_EQ(row[static_cast<size_t>(prior_col)].AsString(), "y.k|z.k");
    }
  }
  EXPECT_TRUE(found) << "no diverged decision row in sys.decisions";

  auto qspec = ParseAndBind("SELECT * FROM sys.queries", engine_->catalog());
  ASSERT_TRUE(qspec.ok());
  auto queries = dynamic.Run(*qspec);
  ASSERT_TRUE(queries.ok()) << queries.status().ToString();
  const int regressed_col = ColumnIndex(queries->columns, "regressed");
  const int regression_col = ColumnIndex(queries->columns, "regression");
  ASSERT_GE(regressed_col, 0);
  ASSERT_GE(regression_col, 0);
  bool regressed_row = false;
  for (const Row& row : queries->rows) {
    if (row[static_cast<size_t>(regressed_col)].AsBool()) {
      regressed_row = true;
      EXPECT_NE(row[static_cast<size_t>(regression_col)].AsString().find(
                    "prior=y.k|z.k"),
                std::string::npos);
    }
  }
  EXPECT_TRUE(regressed_row) << "no regressed row in sys.queries";
}

TEST_F(SysTest, RealRunsRegressAgainstAFasterArchivedPlan) {
  // End-to-end: the same query under dynamic (small-first join order) and
  // then worst-order, which knowingly builds the exploding b*c
  // intermediate first; the slower run is flagged against the archived
  // fast one and EXPLAIN ANALYZE carries the verdict.
  auto engine = std::make_unique<Engine>();
  engine->mutable_cluster().introspection.enabled = true;
  InstallSystemTables(engine.get());
  Rng rng(7);
  auto load = [&](const std::string& name, int rows) {
    auto t = std::make_shared<Table>(
        name, Schema({{"k", ValueType::kInt64}, {"v", ValueType::kInt64}}),
        engine->cluster().num_nodes);
    ASSERT_TRUE(t->SetPartitionKey({"k"}).ok());
    for (int i = 0; i < rows; ++i) {
      t->AppendRow({Value(rng.NextInt64(0, 99)), Value(rng.NextInt64(0, 9))});
    }
    ASSERT_TRUE(engine->catalog().RegisterTable(t).ok());
    ASSERT_TRUE(engine->CollectBaseStats(name, {"k", "v"}).ok());
  };
  load("s", 10);
  load("b", 1000);
  load("c", 1000);

  QuerySpec chain;
  chain.tables = {{"s", "s", false, false, {}},
                  {"b", "b", false, false, {}},
                  {"c", "c", false, false, {}}};
  chain.joins = {{"s", "b", {{"s.k", "b.k"}}}, {"b", "c", {{"b.k", "c.k"}}}};
  chain.projections = {"s.v", "b.v", "c.v"};
  chain.NormalizeJoins();

  DynamicOptimizer dynamic(engine.get());
  auto fast = dynamic.Run(chain);
  ASSERT_TRUE(fast.ok());
  WorstOrderOptimizer worst(engine.get());
  auto slow = worst.Run(chain);
  ASSERT_TRUE(slow.ok());
  ASSERT_GT(slow->metrics.simulated_seconds,
            engine->cluster().introspection.regression_threshold *
                fast->metrics.simulated_seconds)
      << "worst-order unexpectedly competitive with dynamic";

  ASSERT_NE(slow->profile, nullptr);
  const std::string& note = slow->profile->regression_note;
  ASSERT_FALSE(note.empty());
  EXPECT_NE(note.find("best archived run"), std::string::npos) << note;
  EXPECT_NE(note.find("first divergent decision"), std::string::npos) << note;
  // Same fingerprint despite entirely different plans and strategies.
  EXPECT_EQ(slow->profile->fingerprint, fast->profile->fingerprint);

  auto explained = ExplainAnalyze(engine.get(), chain, *slow);
  ASSERT_TRUE(explained.ok());
  EXPECT_NE(explained->find("-- regression --"), std::string::npos);
}

}  // namespace
}  // namespace dynopt
