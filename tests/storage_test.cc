#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "storage/catalog.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace dynopt {
namespace {

Schema TwoColumnSchema() {
  return Schema({{"id", ValueType::kInt64}, {"name", ValueType::kString}});
}

// --- Schema ------------------------------------------------------------------

TEST(SchemaTest, FieldLookup) {
  Schema schema = TwoColumnSchema();
  EXPECT_EQ(schema.num_fields(), 2u);
  EXPECT_EQ(schema.FieldIndex("id"), 0);
  EXPECT_EQ(schema.FieldIndex("name"), 1);
  EXPECT_EQ(schema.FieldIndex("missing"), -1);
  EXPECT_TRUE(schema.HasField("id"));
  EXPECT_FALSE(schema.HasField("ID"));  // Case sensitive.
}

TEST(SchemaTest, ToStringListsFields) {
  EXPECT_EQ(TwoColumnSchema().ToString(), "(id INT64, name STRING)");
}

// --- Table -------------------------------------------------------------------

TEST(TableTest, RoundRobinWithoutPartitionKey) {
  Table t("t", TwoColumnSchema(), 4);
  for (int i = 0; i < 8; ++i) t.AppendRow({Value(i), Value("r")});
  EXPECT_EQ(t.NumRows(), 8u);
  for (size_t p = 0; p < 4; ++p) EXPECT_EQ(t.partition(p).size(), 2u);
}

TEST(TableTest, HashPartitioningIsDeterministicAndKeyLocal) {
  Table t("t", TwoColumnSchema(), 8);
  ASSERT_TRUE(t.SetPartitionKey({"id"}).ok());
  for (int i = 0; i < 1000; ++i) t.AppendRow({Value(i % 100), Value("x")});
  // All rows with equal key land in the same partition.
  for (size_t p = 0; p < t.num_partitions(); ++p) {
    std::set<int64_t> keys;
    for (const Row& row : t.partition(p)) keys.insert(row[0].AsInt64());
    for (int64_t k : keys) {
      for (size_t q = 0; q < t.num_partitions(); ++q) {
        if (q == p) continue;
        for (const Row& row : t.partition(q)) {
          EXPECT_NE(row[0].AsInt64(), k)
              << "key " << k << " in partitions " << p << " and " << q;
        }
      }
    }
  }
}

TEST(TableTest, PartitionKeyMustExistAndPrecedeLoad) {
  Table t("t", TwoColumnSchema(), 2);
  EXPECT_EQ(t.SetPartitionKey({"nope"}).code(), StatusCode::kNotFound);
  t.AppendRow({Value(1), Value("x")});
  EXPECT_EQ(t.SetPartitionKey({"id"}).code(), StatusCode::kInvalidArgument);
}

TEST(TableTest, AppendRowToPartitionPreservesPlacement) {
  Table t("t", TwoColumnSchema(), 3);
  t.AppendRowToPartition(2, {Value(1), Value("a")});
  t.AppendRowToPartition(2, {Value(2), Value("b")});
  EXPECT_EQ(t.partition(0).size(), 0u);
  EXPECT_EQ(t.partition(2).size(), 2u);
  EXPECT_EQ(t.NumRows(), 2u);
  EXPECT_GT(t.TotalBytes(), 0u);
}

TEST(TableTest, TotalBytesGrowsWithData) {
  Table t("t", TwoColumnSchema(), 2);
  uint64_t before = t.TotalBytes();
  t.AppendRow({Value(1), Value("hello world, a longer string")});
  EXPECT_GT(t.TotalBytes(), before + 20);
}

// --- Secondary index -----------------------------------------------------------

TEST(IndexTest, CreateAndLookup) {
  Table t("t", TwoColumnSchema(), 4);
  ASSERT_TRUE(t.SetPartitionKey({"id"}).ok());
  for (int i = 0; i < 100; ++i) {
    t.AppendRow({Value(i), Value("name_" + std::to_string(i % 10))});
  }
  ASSERT_TRUE(t.CreateSecondaryIndex("name").ok());
  EXPECT_TRUE(t.HasSecondaryIndex("name"));
  EXPECT_FALSE(t.HasSecondaryIndex("id"));
  const SecondaryIndex* index = t.GetSecondaryIndex("name");
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->num_entries(), 100u);

  // Every indexed offset must point at a row with the right key.
  size_t total_matches = 0;
  for (size_t p = 0; p < t.num_partitions(); ++p) {
    const std::vector<uint32_t>* offsets =
        index->Lookup(p, Value("name_3"));
    if (offsets == nullptr) continue;
    for (uint32_t off : *offsets) {
      EXPECT_EQ(t.partition(p)[off][1], Value("name_3"));
      ++total_matches;
    }
  }
  EXPECT_EQ(total_matches, 10u);
}

TEST(IndexTest, LookupMissReturnsNull) {
  Table t("t", TwoColumnSchema(), 2);
  t.AppendRow({Value(1), Value("a")});
  ASSERT_TRUE(t.CreateSecondaryIndex("name").ok());
  const SecondaryIndex* index = t.GetSecondaryIndex("name");
  bool found = false;
  for (size_t p = 0; p < 2; ++p) {
    if (index->Lookup(p, Value("zzz")) != nullptr) found = true;
  }
  EXPECT_FALSE(found);
}

TEST(IndexTest, ErrorsOnBadColumnAndDuplicates) {
  Table t("t", TwoColumnSchema(), 2);
  EXPECT_EQ(t.CreateSecondaryIndex("nope").code(), StatusCode::kNotFound);
  ASSERT_TRUE(t.CreateSecondaryIndex("id").ok());
  EXPECT_EQ(t.CreateSecondaryIndex("id").code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(t.IndexedColumns(), std::vector<std::string>{"id"});
}

// --- Catalog -------------------------------------------------------------------

TEST(CatalogTest, RegisterGetDrop) {
  Catalog catalog;
  auto t = std::make_shared<Table>("users", TwoColumnSchema(), 2);
  ASSERT_TRUE(catalog.RegisterTable(t).ok());
  EXPECT_TRUE(catalog.HasTable("users"));
  auto got = catalog.GetTable("users");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().get(), t.get());
  EXPECT_EQ(catalog.RegisterTable(t).code(), StatusCode::kAlreadyExists);
  ASSERT_TRUE(catalog.DropTable("users").ok());
  EXPECT_FALSE(catalog.HasTable("users"));
  EXPECT_EQ(catalog.DropTable("users").code(), StatusCode::kNotFound);
  EXPECT_EQ(catalog.GetTable("users").status().code(), StatusCode::kNotFound);
}

TEST(CatalogTest, UniqueTempNames) {
  Catalog catalog;
  std::set<std::string> names;
  for (int i = 0; i < 100; ++i) names.insert(catalog.UniqueTempName("join"));
  EXPECT_EQ(names.size(), 100u);
  for (const auto& name : names) {
    EXPECT_TRUE(Catalog::IsTempName(name)) << name;
  }
  EXPECT_FALSE(Catalog::IsTempName("lineitem"));
}

TEST(CatalogTest, TableNamesSorted) {
  Catalog catalog;
  ASSERT_TRUE(
      catalog.RegisterTable(std::make_shared<Table>("b", TwoColumnSchema(), 1))
          .ok());
  ASSERT_TRUE(
      catalog.RegisterTable(std::make_shared<Table>("a", TwoColumnSchema(), 1))
          .ok());
  EXPECT_EQ(catalog.TableNames(), (std::vector<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace dynopt
