#include <gtest/gtest.h>

#include <memory>

#include "exec/engine.h"
#include "opt/dynamic_optimizer.h"
#include "opt/ingres_optimizer.h"
#include "opt/order_baselines.h"
#include "opt/pilot_run_optimizer.h"
#include "opt/static_optimizer.h"
#include "workloads/tpcds.h"
#include "workloads/tpch.h"

namespace dynopt {
namespace {

/// Loads both workloads at a small scale once for the whole suite.
class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    engine_ = new Engine();
    TpchOptions tpch;
    tpch.sf = 0.2;
    ASSERT_TRUE(LoadTpch(engine_, tpch).ok());
    TpcdsOptions tpcds;
    tpcds.sf = 0.2;
    ASSERT_TRUE(LoadTpcds(engine_, tpcds).ok());
  }
  static void TearDownTestSuite() {
    delete engine_;
    engine_ = nullptr;
  }

  static QuerySpec GetQuery(const std::string& name) {
    Result<QuerySpec> q = name == "q8"    ? TpchQ8(engine_)
                          : name == "q9"  ? TpchQ9(engine_)
                          : name == "q17" ? TpcdsQ17(engine_)
                                          : TpcdsQ50(engine_, 9, 1999);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return q.value();
  }

  static Engine* engine_;
};

Engine* IntegrationTest::engine_ = nullptr;

class AllQueriesTest : public IntegrationTest,
                       public ::testing::WithParamInterface<const char*> {};

INSTANTIATE_TEST_SUITE_P(Queries, AllQueriesTest,
                         ::testing::Values("q8", "q9", "q17", "q50"));

/// Every optimization strategy must produce the identical result set — the
/// core correctness invariant of the whole reproduction.
TEST_P(AllQueriesTest, AllOptimizersAgreeOnResults) {
  QuerySpec query = GetQuery(GetParam());

  DynamicOptimizer dynamic(engine_);
  auto dyn = dynamic.Run(query);
  ASSERT_TRUE(dyn.ok()) << dyn.status().ToString();
  SortRows(&dyn->rows);
  ASSERT_FALSE(dyn->rows.empty()) << "query returned no rows; the workload "
                                     "generator should make every query "
                                     "productive";

  StaticCostBasedOptimizer cost_based(engine_);
  auto cb = cost_based.Run(query);
  ASSERT_TRUE(cb.ok()) << cb.status().ToString();
  SortRows(&cb->rows);
  EXPECT_EQ(dyn->rows, cb->rows) << "cost-based result differs";

  WorstOrderOptimizer worst(engine_);
  auto wo = worst.Run(query);
  ASSERT_TRUE(wo.ok()) << wo.status().ToString();
  SortRows(&wo->rows);
  EXPECT_EQ(dyn->rows, wo->rows) << "worst-order result differs";

  BestOrderOptimizer best(engine_, dyn->join_tree);
  auto bo = best.Run(query);
  ASSERT_TRUE(bo.ok()) << bo.status().ToString();
  SortRows(&bo->rows);
  EXPECT_EQ(dyn->rows, bo->rows) << "best-order result differs";

  PilotRunOptimizer pilot(engine_);
  auto pr = pilot.Run(query);
  ASSERT_TRUE(pr.ok()) << pr.status().ToString();
  SortRows(&pr->rows);
  EXPECT_EQ(dyn->rows, pr->rows) << "pilot-run result differs";

  IngresLikeOptimizer ingres(engine_);
  auto ing = ingres.Run(query);
  ASSERT_TRUE(ing.ok()) << ing.status().ToString();
  SortRows(&ing->rows);
  EXPECT_EQ(dyn->rows, ing->rows) << "ingres-like result differs";
}

/// The dynamic optimizer must not leak temp tables.
TEST_P(AllQueriesTest, DynamicCleansUpTempTables) {
  QuerySpec query = GetQuery(GetParam());
  size_t before = engine_->catalog().TableNames().size();
  DynamicOptimizer dynamic(engine_);
  auto result = dynamic.Run(query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(before, engine_->catalog().TableNames().size());
}

/// The worst-order plan should never beat the dynamic plan in simulated
/// time (the paper's headline claim, held even at tiny scale for these
/// queries since worst-order shuffles fact-fact joins first).
TEST_P(AllQueriesTest, DynamicBeatsWorstOrder) {
  QuerySpec query = GetQuery(GetParam());
  DynamicOptimizer dynamic(engine_);
  auto dyn = dynamic.Run(query);
  ASSERT_TRUE(dyn.ok());
  WorstOrderOptimizer worst(engine_);
  auto wo = worst.Run(query);
  ASSERT_TRUE(wo.ok());
  EXPECT_LT(dyn->metrics.simulated_seconds, wo->metrics.simulated_seconds);
}

/// With indexes available and INLJ enabled, every strategy still returns
/// the same result set (the Figure-8 configuration).
TEST_P(AllQueriesTest, AllOptimizersAgreeUnderInlj) {
  ASSERT_TRUE(CreateTpchIndexes(engine_).ok());
  ASSERT_TRUE(CreateTpcdsIndexes(engine_).ok());
  QuerySpec query = GetQuery(GetParam());
  PlannerOptions planner;
  planner.enable_inlj = true;

  DynamicOptimizerOptions dyn_options;
  dyn_options.planner = planner;
  DynamicOptimizer dynamic(engine_, dyn_options);
  auto dyn = dynamic.Run(query);
  ASSERT_TRUE(dyn.ok()) << dyn.status().ToString();
  SortRows(&dyn->rows);

  StaticCostBasedOptimizer cost_based(engine_, planner);
  auto cb = cost_based.Run(query);
  ASSERT_TRUE(cb.ok()) << cb.status().ToString();
  SortRows(&cb->rows);
  EXPECT_EQ(dyn->rows, cb->rows) << "cost-based+INLJ differs";

  BestOrderOptimizer best(engine_, dyn->join_tree);
  auto bo = best.Run(query);
  ASSERT_TRUE(bo.ok()) << bo.status().ToString();
  SortRows(&bo->rows);
  EXPECT_EQ(dyn->rows, bo->rows) << "best-order+INLJ differs";

  PilotRunOptions pilot_options;
  pilot_options.planner = planner;
  PilotRunOptimizer pilot(engine_, pilot_options);
  auto pr = pilot.Run(query);
  ASSERT_TRUE(pr.ok()) << pr.status().ToString();
  SortRows(&pr->rows);
  EXPECT_EQ(dyn->rows, pr->rows) << "pilot-run+INLJ differs";

  IngresLikeOptimizer ingres(engine_, planner);
  auto ing = ingres.Run(query);
  ASSERT_TRUE(ing.ok()) << ing.status().ToString();
  SortRows(&ing->rows);
  EXPECT_EQ(dyn->rows, ing->rows) << "ingres-like+INLJ differs";
}

/// INLJ runs agree with the default hash/broadcast runs.
TEST_P(AllQueriesTest, InljProducesSameResults) {
  ASSERT_TRUE(CreateTpchIndexes(engine_).ok());
  ASSERT_TRUE(CreateTpcdsIndexes(engine_).ok());
  QuerySpec query = GetQuery(GetParam());

  DynamicOptimizer plain(engine_);
  auto base = plain.Run(query);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  SortRows(&base->rows);

  DynamicOptimizerOptions with_inlj;
  with_inlj.planner.enable_inlj = true;
  DynamicOptimizer inlj(engine_, with_inlj);
  auto result = inlj.Run(query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  SortRows(&result->rows);
  EXPECT_EQ(base->rows, result->rows);
}

}  // namespace
}  // namespace dynopt
