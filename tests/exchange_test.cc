// Property tests for the two-phase parallel shuffle exchange and the flat
// hash-join kernel: against the sequential reference implementation
// (exec/reference_kernels.h, the pre-parallel executor kernels) the
// parallel kernels must produce identical rows and identical metering —
// bytes_shuffled, tuples_processed and bit-identical simulated_seconds —
// across uniform, skewed (Zipf), NULL-key, composite-key and
// empty-partition inputs. Plus ThreadPool stress tests for the nested /
// concurrent ParallelFor the exchange phases rely on.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <thread>
#include <tuple>

#include "common/logging.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "exec/engine.h"
#include "exec/executor.h"
#include "exec/reference_kernels.h"
#include "exec/row_kernels.h"
#include "opt/optimizer.h"

namespace dynopt {
namespace {

/// Unwraps a kernel result. Fault injection is never armed in these tests,
/// so the Result-returning kernels cannot fail.
template <typename T>
T MustOk(Result<T> result) {
  DYNOPT_CHECK(result.ok());
  return std::move(result).value();
}

/// Sorted copy of all rows, for multiset comparison.
std::vector<Row> SortedRows(const Dataset& data) {
  std::vector<Row> rows = data.GatherRows();
  SortRows(&rows);
  return rows;
}

struct DatasetSpec {
  size_t num_partitions = 7;  // Deliberately != num_nodes by default.
  size_t rows = 500;
  int64_t key_domain = 40;
  double zipf_skew = 0.0;      // > 0 samples keys from a Zipf distribution.
  double null_fraction = 0.0;  // Probability of a NULL key slot.
  size_t empty_every = 0;      // Leave every k-th partition empty.
  uint64_t seed = 1;
};

/// Random 3-column dataset {k, k2, payload} spread round-robin over
/// partitions (with optional forced-empty partitions).
Dataset MakeDataset(const DatasetSpec& spec) {
  Dataset data({"k", "k2", "payload"}, spec.num_partitions);
  Rng rng(spec.seed);
  ZipfDistribution zipf(static_cast<size_t>(spec.key_domain),
                        spec.zipf_skew > 0 ? spec.zipf_skew : 0.0);
  size_t p = 0;
  for (size_t i = 0; i < spec.rows; ++i) {
    while (spec.empty_every != 0 && p % spec.empty_every == 0 &&
           spec.num_partitions > 1) {
      p = (p + 1) % spec.num_partitions;
    }
    Row row;
    if (spec.null_fraction > 0 && rng.NextDouble() < spec.null_fraction) {
      row.push_back(Value::Null());
    } else if (spec.zipf_skew > 0) {
      row.push_back(Value(static_cast<int64_t>(zipf.Sample(rng))));
    } else {
      row.push_back(Value(rng.NextInt64(0, spec.key_domain - 1)));
    }
    row.push_back(Value(rng.NextInt64(0, 5)));
    row.push_back(Value("r" + std::to_string(i)));
    data.partitions[p].push_back(std::move(row));
    p = (p + 1) % spec.num_partitions;
  }
  return data;
}

Dataset CopyDataset(const Dataset& data) { return data; }

class ExchangeTest : public ::testing::Test {
 protected:
  ExchangeTest() : engine_(std::make_unique<Engine>()) {}

  JobExecutor MakeExecutor() { return engine_->MakeExecutor(); }
  const ClusterConfig& cluster() { return engine_->cluster(); }

  std::unique_ptr<Engine> engine_;
};

/// One full pipeline comparison: shuffle both sides + local hash join, with
/// the parallel kernels (hashes threaded through) vs the sequential
/// reference. Checks exact per-partition row sequences and all metering.
void ExpectPipelineParityWith(JobExecutor executor,
                              const ClusterConfig& cluster,
                              const Dataset& build_in, const Dataset& probe_in,
                              const std::vector<int>& build_keys,
                              const std::vector<int>& probe_keys) {
  ExecMetrics par_metrics;
  ShuffleResult build_parts = MustOk(
      executor.Repartition(CopyDataset(build_in), build_keys, &par_metrics));
  ShuffleResult probe_parts = MustOk(
      executor.Repartition(CopyDataset(probe_in), probe_keys, &par_metrics));
  Dataset par_out = MustOk(executor.LocalHashJoin(
      build_parts.data, probe_parts.data, build_keys, probe_keys,
      &par_metrics, &build_parts.hashes, &probe_parts.hashes));

  ExecMetrics ref_metrics;
  Dataset ref_build = reference::Repartition(CopyDataset(build_in),
                                             build_keys, cluster, &ref_metrics);
  Dataset ref_probe = reference::Repartition(CopyDataset(probe_in),
                                             probe_keys, cluster, &ref_metrics);
  Dataset ref_out =
      reference::LocalHashJoin(ref_build, ref_probe, build_keys, probe_keys,
                               cluster, &ref_metrics);

  // The shuffle must place the same rows in the same partitions in the same
  // order (phase-2 merge runs in source order), and precomputed hashes must
  // match a fresh HashRowKey.
  ASSERT_EQ(build_parts.data.partitions.size(),
            ref_build.partitions.size());
  for (size_t p = 0; p < ref_build.partitions.size(); ++p) {
    EXPECT_EQ(build_parts.data.partitions[p], ref_build.partitions[p])
        << "build shuffle partition " << p;
    ASSERT_EQ(build_parts.hashes[p].size(),
              build_parts.data.partitions[p].size());
    for (size_t i = 0; i < build_parts.hashes[p].size(); ++i) {
      EXPECT_EQ(build_parts.hashes[p][i],
                HashRowKey(build_parts.data.partitions[p][i], build_keys));
    }
  }
  for (size_t p = 0; p < ref_probe.partitions.size(); ++p) {
    EXPECT_EQ(probe_parts.data.partitions[p], ref_probe.partitions[p])
        << "probe shuffle partition " << p;
  }

  // Size annotations: the shuffle re-emits per-row sizes for its output and
  // the join derives its output's sizes from the parents'; every annotation
  // must equal a fresh RowSizeBytes of the annotated row (the shuffle's
  // network metering is summed from these).
  for (const Dataset* annotated :
       {&build_parts.data, &probe_parts.data, &par_out}) {
    if (annotated->row_sizes.empty()) continue;
    ASSERT_TRUE(annotated->HasRowSizes());
    for (size_t p = 0; p < annotated->partitions.size(); ++p) {
      for (size_t i = 0; i < annotated->partitions[p].size(); ++i) {
        EXPECT_EQ(annotated->row_sizes[p][i],
                  RowSizeBytes(annotated->partitions[p][i]))
            << "row size annotation, partition " << p << " row " << i;
      }
    }
  }

  // Join output: exact same row sequence per partition (stronger than the
  // multiset property) and, for documentation, the multiset too.
  ASSERT_EQ(par_out.partitions.size(), ref_out.partitions.size());
  for (size_t p = 0; p < ref_out.partitions.size(); ++p) {
    EXPECT_EQ(par_out.partitions[p], ref_out.partitions[p])
        << "join output partition " << p;
  }
  EXPECT_EQ(SortedRows(par_out), SortedRows(ref_out));

  // Cost-model parity: identical bytes and bit-identical simulated time.
  EXPECT_EQ(par_metrics.bytes_shuffled, ref_metrics.bytes_shuffled);
  EXPECT_EQ(par_metrics.tuples_processed, ref_metrics.tuples_processed);
  EXPECT_EQ(par_metrics.simulated_seconds, ref_metrics.simulated_seconds);
  EXPECT_EQ(par_metrics.bytes_broadcast, ref_metrics.bytes_broadcast);
}

/// Runs the parity check through both routes of the adaptive exchange: the
/// engine's own pool (the one-pass route on single-worker hosts) and an
/// explicit multi-worker pool (always the two-phase scatter route), so both
/// code paths are covered regardless of the host's core count.
void ExpectPipelineParity(Engine* engine, const Dataset& build_in,
                          const Dataset& probe_in,
                          const std::vector<int>& build_keys,
                          const std::vector<int>& probe_keys) {
  ExpectPipelineParityWith(engine->MakeExecutor(), engine->cluster(),
                           build_in, probe_in, build_keys, probe_keys);
  ThreadPool pool(3);
  ExpectPipelineParityWith(
      JobExecutor(&engine->catalog(), &engine->stats(), &engine->udfs(),
                  engine->cluster(), &pool),
      engine->cluster(), build_in, probe_in, build_keys, probe_keys);
}

/// (rows_build, rows_probe, key_domain, zipf_skew, null_fraction,
///  empty_every, composite_keys)
using ParityParam = std::tuple<int, int, int, double, double, int, bool>;

class ExchangeParityTest : public ExchangeTest,
                           public ::testing::WithParamInterface<ParityParam> {
};

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExchangeParityTest,
    ::testing::Values(
        // Uniform keys, moderate size.
        std::make_tuple(400, 900, 50, 0.0, 0.0, 0, false),
        // Heavy Zipf skew: hot keys hammer one destination partition.
        std::make_tuple(600, 600, 100, 1.3, 0.0, 0, false),
        std::make_tuple(500, 500, 30, 2.0, 0.0, 0, false),
        // NULL join keys on both sides.
        std::make_tuple(300, 300, 20, 0.0, 0.25, 0, false),
        // Skew + NULLs together.
        std::make_tuple(400, 400, 25, 1.1, 0.1, 0, false),
        // Empty partitions on the inputs.
        std::make_tuple(200, 200, 15, 0.0, 0.0, 2, false),
        // Composite (two-column) join keys.
        std::make_tuple(300, 500, 10, 0.0, 0.0, 0, true),
        // Composite keys with NULLs and skew.
        std::make_tuple(300, 300, 8, 0.9, 0.15, 0, true),
        // Tiny inputs.
        std::make_tuple(3, 5, 2, 0.0, 0.0, 0, false),
        // One side empty.
        std::make_tuple(0, 200, 10, 0.0, 0.0, 0, false),
        std::make_tuple(200, 0, 10, 0.0, 0.0, 0, false)));

TEST_P(ExchangeParityTest, MatchesSequentialReference) {
  auto [brows, prows, domain, skew, nulls, empty_every, composite] =
      GetParam();
  DatasetSpec bspec;
  bspec.rows = static_cast<size_t>(brows);
  bspec.key_domain = domain;
  bspec.zipf_skew = skew;
  bspec.null_fraction = nulls;
  bspec.empty_every = static_cast<size_t>(empty_every);
  bspec.seed = 7;
  DatasetSpec pspec = bspec;
  pspec.rows = static_cast<size_t>(prows);
  pspec.num_partitions = 9;
  pspec.seed = 8;
  Dataset build = MakeDataset(bspec);
  Dataset probe = MakeDataset(pspec);
  std::vector<int> keys = composite ? std::vector<int>{0, 1}
                                    : std::vector<int>{0};
  ExpectPipelineParity(engine_.get(), build, probe, keys, keys);
}

TEST_F(ExchangeTest, CoPartitionedInputShufflesNoBytes) {
  // When the input already has num_nodes partitions and each row hashes to
  // its own partition, the exchange must meter zero network bytes — the
  // planner's co-partitioned fast path depends on this.
  const size_t n = cluster().num_nodes;
  DatasetSpec spec;
  spec.num_partitions = n;
  spec.rows = 300;
  Dataset data = MakeDataset(spec);
  // Pre-place every row on its hash destination.
  Dataset placed(data.columns, n);
  std::vector<int> keys = {0};
  for (auto& part : data.partitions) {
    for (Row& row : part) {
      size_t dest = static_cast<size_t>(HashRowKey(row, keys) % n);
      placed.partitions[dest].push_back(std::move(row));
    }
  }
  JobExecutor executor = MakeExecutor();
  ExecMetrics metrics;
  ShuffleResult shuffled =
      MustOk(executor.Repartition(CopyDataset(placed), keys, &metrics));
  EXPECT_EQ(metrics.bytes_shuffled, 0u);
  EXPECT_EQ(shuffled.data.NumRows(), 300u);
}

TEST_F(ExchangeTest, AllRowsOneKeyLandInOnePartition) {
  // Worst-case skew: a single key value. Every row must end up in exactly
  // one destination partition, identically to the reference.
  DatasetSpec spec;
  spec.rows = 400;
  spec.key_domain = 1;
  Dataset data = MakeDataset(spec);
  std::vector<int> keys = {0};
  JobExecutor executor = MakeExecutor();
  ExecMetrics par_metrics, ref_metrics;
  ShuffleResult par =
      MustOk(executor.Repartition(CopyDataset(data), keys, &par_metrics));
  Dataset ref = reference::Repartition(CopyDataset(data), keys, cluster(),
                                       &ref_metrics);
  size_t non_empty = 0;
  for (size_t p = 0; p < par.data.partitions.size(); ++p) {
    EXPECT_EQ(par.data.partitions[p], ref.partitions[p]);
    if (!par.data.partitions[p].empty()) ++non_empty;
  }
  EXPECT_EQ(non_empty, 1u);
  EXPECT_EQ(par_metrics.simulated_seconds, ref_metrics.simulated_seconds);
}

TEST_F(ExchangeTest, BroadcastStyleJoinWithoutPrecomputedHashes) {
  // LocalHashJoin must also be correct when no hashes are threaded in (the
  // broadcast-join path).
  DatasetSpec bspec;
  bspec.rows = 150;
  bspec.num_partitions = 4;
  bspec.seed = 21;
  DatasetSpec pspec = bspec;
  pspec.rows = 400;
  pspec.seed = 22;
  Dataset build = MakeDataset(bspec);
  Dataset probe = MakeDataset(pspec);
  // Align partition counts (LocalHashJoin joins partition-wise).
  std::vector<int> keys = {0};
  JobExecutor executor = MakeExecutor();
  ExecMetrics par_metrics, ref_metrics;
  Dataset par_out = MustOk(executor.LocalHashJoin(build, probe, keys, keys,
                                                  &par_metrics));
  Dataset ref_out = reference::LocalHashJoin(build, probe, keys, keys,
                                             cluster(), &ref_metrics);
  for (size_t p = 0; p < ref_out.partitions.size(); ++p) {
    EXPECT_EQ(par_out.partitions[p], ref_out.partitions[p]);
  }
  EXPECT_EQ(par_metrics.simulated_seconds, ref_metrics.simulated_seconds);
}

TEST_F(ExchangeTest, DuplicateKeysEmitAllMatchesInBuildOrder)
{
  // Several build rows share one key: every (build, probe) pair must be
  // emitted, in ascending build-row order — the flat table's reverse
  // insertion preserves the reference emission order.
  Dataset build({"k", "tag"}, 1);
  Dataset probe({"k", "tag"}, 1);
  for (int i = 0; i < 5; ++i) {
    build.partitions[0].push_back({Value(7), Value("b" + std::to_string(i))});
  }
  probe.partitions[0].push_back({Value(7), Value("p0")});
  probe.partitions[0].push_back({Value(7), Value("p1")});
  std::vector<int> keys = {0};
  JobExecutor executor = MakeExecutor();
  ExecMetrics par_metrics, ref_metrics;
  Dataset par_out = MustOk(executor.LocalHashJoin(build, probe, keys, keys,
                                                  &par_metrics));
  Dataset ref_out = reference::LocalHashJoin(build, probe, keys, keys,
                                             cluster(), &ref_metrics);
  ASSERT_EQ(par_out.NumRows(), 10u);
  EXPECT_EQ(par_out.partitions[0], ref_out.partitions[0]);
  // Per probe row, matches come out in build insertion order b0..b4.
  for (int j = 0; j < 2; ++j) {
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(par_out.partitions[0][static_cast<size_t>(j * 5 + i)][1],
                Value("b" + std::to_string(i)));
    }
  }
}

TEST_F(ExchangeTest, AnnotatedInputShuffleMetersIdentically) {
  // When the producer attached per-row sizes, the shuffle meters from the
  // annotation instead of re-walking payloads — the resulting bytes and
  // simulated seconds must be bit-identical to the reference (which always
  // recomputes), on both routes of the adaptive exchange.
  Dataset input = MakeDataset({.num_partitions = 7, .rows = 400,
                               .key_domain = 23, .null_fraction = 0.1});
  input.row_sizes.resize(input.partitions.size());
  for (size_t p = 0; p < input.partitions.size(); ++p) {
    for (const Row& row : input.partitions[p]) {
      input.row_sizes[p].push_back(RowSizeBytes(row));
    }
  }
  std::vector<int> keys = {0};
  ExecMetrics ref_metrics;
  Dataset ref = reference::Repartition(CopyDataset(input), keys, cluster(),
                                       &ref_metrics);
  ThreadPool pool3(3);
  JobExecutor scatter(&engine_->catalog(), &engine_->stats(),
                      &engine_->udfs(), engine_->cluster(), &pool3);
  JobExecutor onepass = MakeExecutor();
  for (JobExecutor* executor : {&onepass, &scatter}) {
    ExecMetrics par_metrics;
    ShuffleResult parts = MustOk(
        executor->Repartition(CopyDataset(input), keys, &par_metrics));
    for (size_t p = 0; p < ref.partitions.size(); ++p) {
      EXPECT_EQ(parts.data.partitions[p], ref.partitions[p]);
    }
    EXPECT_EQ(par_metrics.bytes_shuffled, ref_metrics.bytes_shuffled);
    EXPECT_EQ(par_metrics.simulated_seconds, ref_metrics.simulated_seconds);
    ASSERT_TRUE(parts.data.HasRowSizes());
    for (size_t p = 0; p < parts.data.partitions.size(); ++p) {
      for (size_t i = 0; i < parts.data.partitions[p].size(); ++i) {
        EXPECT_EQ(parts.data.row_sizes[p][i],
                  RowSizeBytes(parts.data.partitions[p][i]));
      }
    }
  }
}

TEST(FastModTest, MatchesHardwareModulo) {
  // The shuffle routes every row with FastMod instead of a hardware divide;
  // sweep it against the plain operator over adversarial and random inputs.
  Rng rng(0x5eedULL);
  std::vector<uint64_t> divisors = {1, 2, 3, 5, 7, 10, 16, 31, 100, 1023,
                                    (1ULL << 32) - 1, (1ULL << 32) + 1,
                                    ~uint64_t{0} / 3, ~uint64_t{0}};
  std::vector<uint64_t> edge_values = {0, 1, 2, (1ULL << 32) - 1, 1ULL << 32,
                                       ~uint64_t{0} - 1, ~uint64_t{0}};
  for (uint64_t n : divisors) {
    FastMod mod(n);
    for (uint64_t h : edge_values) {
      ASSERT_EQ(mod(h), h % n) << "n=" << n << " h=" << h;
    }
    for (int i = 0; i < 10000; ++i) {
      const uint64_t h = rng.Next();
      ASSERT_EQ(mod(h), h % n) << "n=" << n << " h=" << h;
    }
  }
}

// --- ThreadPool stress: the exchange relies on ParallelFor being safe
// --- under nesting and concurrent callers.

TEST(ThreadPoolStressTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.ParallelFor(8, [&](size_t) {
    pool.ParallelFor(8, [&](size_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPoolStressTest, DeeplyNestedParallelFor) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.ParallelFor(4, [&](size_t) {
    pool.ParallelFor(4, [&](size_t) {
      pool.ParallelFor(4, [&](size_t) { count.fetch_add(1); });
    });
  });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPoolStressTest, ConcurrentCallersCoverAllIndices) {
  ThreadPool pool(4);
  constexpr int kCallers = 6;
  constexpr size_t kN = 2000;
  std::vector<std::vector<std::atomic<int>>> hits(kCallers);
  for (auto& h : hits) {
    h = std::vector<std::atomic<int>>(kN);
    for (auto& a : h) a.store(0);
  }
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &hits, c] {
      pool.ParallelFor(kN, [&hits, c](size_t i) {
        hits[static_cast<size_t>(c)][i].fetch_add(1);
      });
    });
  }
  for (auto& t : callers) t.join();
  for (const auto& h : hits) {
    for (const auto& a : h) EXPECT_EQ(a.load(), 1);
  }
}

TEST(ThreadPoolStressTest, ConcurrentNestedMix) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < 4; ++c) {
    callers.emplace_back([&] {
      for (int r = 0; r < 5; ++r) {
        pool.ParallelFor(16, [&](size_t) {
          pool.ParallelFor(3, [&](size_t) { count.fetch_add(1); });
        });
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(count.load(), 4 * 5 * 16 * 3);
}

TEST(ThreadPoolStressTest, RepartitionFromWithinPool) {
  // An executor kernel invoked from inside a pool task (as a nested job
  // would) must complete — this exercises ParallelFor's caller
  // participation through the real exchange code path.
  Engine engine;
  std::atomic<int> done{0};
  engine.pool().ParallelFor(3, [&](size_t seed) {
    DatasetSpec spec;
    spec.rows = 200;
    spec.seed = 100 + seed;
    Dataset data = MakeDataset(spec);
    JobExecutor executor = engine.MakeExecutor();
    ExecMetrics metrics;
    ShuffleResult out =
        MustOk(executor.Repartition(std::move(data), {0}, &metrics));
    if (out.data.NumRows() == 200) done.fetch_add(1);
  });
  EXPECT_EQ(done.load(), 3);
}

}  // namespace
}  // namespace dynopt
