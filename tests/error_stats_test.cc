// Cross-query error memory (ErrorStatsStore):
//  - aggregate semantics (geo-mean priors, clamped PriorFactor, bounded
//    entry count with a visible dropped-keys counter);
//  - persistence: Save is atomic (tmp + rename), Load is fail-soft — a
//    missing, truncated, corrupted, or wrong-version file warns and starts
//    fresh without surfacing an error to the query path;
//  - concurrency: writers racing on the same path always leave a complete,
//    loadable file; Record/Save from multiple threads never tear.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "exec/engine.h"
#include "opt/error_stats.h"
#include "plan/expr.h"
#include "plan/query_spec.h"

namespace dynopt {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class ErrorStatsStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath("dynopt_error_stats_test_" +
                     std::to_string(::getpid()) + ".tsv");
    std::error_code ec;
    fs::remove(path_, ec);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove(path_, ec);
  }
  std::string path_;
};

TEST_F(ErrorStatsStoreTest, RecordAggregatesAndIgnoresInvalid) {
  ErrorStatsStore store("");  // In-memory: Load/Save are no-ops.
  store.Record("k", 2.0);
  store.Record("k", 8.0);
  store.Record("k", 0.5);                                      // q < 1
  store.Record("k", std::numeric_limits<double>::quiet_NaN());
  store.Record("k", std::numeric_limits<double>::infinity());
  const ErrorStatsEntry e = store.Get("k");
  EXPECT_EQ(e.count, 2u);
  EXPECT_DOUBLE_EQ(e.max_q, 8.0);
  EXPECT_NEAR(e.GeoMeanQ(), 4.0, 1e-12);  // sqrt(2 * 8)
  EXPECT_TRUE(store.Load().ok());
  EXPECT_TRUE(store.Save().ok());
  EXPECT_EQ(store.NumEntries(), 1u);  // In-memory Load must not clear.
}

TEST_F(ErrorStatsStoreTest, PriorFactorClampsToCapAndUnknownIsNeutral) {
  ErrorStatsStore store("");
  store.Record("hot", 100.0);
  store.Record("mild", 2.0);
  EXPECT_DOUBLE_EQ(store.PriorFactor("hot", 8.0), 8.0);    // Clamped to cap.
  EXPECT_DOUBLE_EQ(store.PriorFactor("mild", 8.0), 2.0);   // Geo-mean.
  EXPECT_DOUBLE_EQ(store.PriorFactor("unknown", 8.0), 1.0);
  EXPECT_EQ(store.Get("unknown").count, 0u);
}

TEST_F(ErrorStatsStoreTest, BoundedEntriesCountDrops) {
  ErrorStatsStore store("", /*max_entries=*/4);
  for (int i = 0; i < 10; ++i) {
    store.Record("k" + std::to_string(i), 2.0);
  }
  store.Record("k0", 4.0);  // Existing keys keep accumulating.
  EXPECT_EQ(store.NumEntries(), 4u);
  EXPECT_EQ(store.DroppedKeys(), 6u);
  EXPECT_EQ(store.Get("k0").count, 2u);
}

TEST_F(ErrorStatsStoreTest, SaveLoadRoundTripPreservesAggregates) {
  ErrorStatsStore writer(path_);
  writer.Record("tbl:orders|p:0011223344556677", 3.5);
  writer.Record("tbl:orders|p:0011223344556677", 7.25);
  writer.Record("join:orders+part", 1.0);
  ASSERT_TRUE(writer.Save().ok());

  ErrorStatsStore reader(path_);
  ASSERT_TRUE(reader.Load().ok());
  EXPECT_EQ(reader.NumEntries(), 2u);
  const ErrorStatsEntry e = reader.Get("tbl:orders|p:0011223344556677");
  EXPECT_EQ(e.count, 2u);
  EXPECT_DOUBLE_EQ(e.sum_log_q, std::log(3.5) + std::log(7.25));
  EXPECT_DOUBLE_EQ(e.max_q, 7.25);
  EXPECT_EQ(reader.Get("join:orders+part").count, 1u);
}

TEST_F(ErrorStatsStoreTest, MissingFileLoadsEmptyOk) {
  ErrorStatsStore store(path_);
  EXPECT_TRUE(store.Load().ok());
  EXPECT_EQ(store.NumEntries(), 0u);
}

TEST_F(ErrorStatsStoreTest, TruncatedFileStartsFresh) {
  ErrorStatsStore writer(path_);
  writer.Record("a", 2.0);
  writer.Record("b", 3.0);
  ASSERT_TRUE(writer.Save().ok());
  // Drop the checksum trailer (and the last entry) as a torn write would.
  std::string contents = ReadAll(path_);
  const size_t cut = contents.find("checksum ");
  ASSERT_NE(cut, std::string::npos);
  {
    std::ofstream out(path_, std::ios::trunc);
    out << contents.substr(0, cut);
  }
  ErrorStatsStore reader(path_);
  EXPECT_TRUE(reader.Load().ok());  // Fail-soft: warn, not error.
  EXPECT_EQ(reader.NumEntries(), 0u);
}

TEST_F(ErrorStatsStoreTest, CorruptedPayloadFailsChecksumAndStartsFresh) {
  ErrorStatsStore writer(path_);
  writer.Record("tbl:lineitem", 5.0);
  ASSERT_TRUE(writer.Save().ok());
  std::string contents = ReadAll(path_);
  // Flip one payload character ('5' count digit or key byte) in place.
  const size_t pos = contents.find("lineitem");
  ASSERT_NE(pos, std::string::npos);
  contents[pos] = 'X';
  {
    std::ofstream out(path_, std::ios::trunc);
    out << contents;
  }
  ErrorStatsStore reader(path_);
  EXPECT_TRUE(reader.Load().ok());
  EXPECT_EQ(reader.NumEntries(), 0u);
}

TEST_F(ErrorStatsStoreTest, WrongMagicOrVersionStartsFresh) {
  {
    std::ofstream out(path_, std::ios::trunc);
    out << "NOT_A_STORE v1 0\nchecksum 0000000000000000\n";
  }
  ErrorStatsStore s1(path_);
  EXPECT_TRUE(s1.Load().ok());
  EXPECT_EQ(s1.NumEntries(), 0u);
  {
    std::ofstream out(path_, std::ios::trunc);
    out << "DYNOPT_ERRSTATS v99 0\nchecksum 0000000000000000\n";
  }
  ErrorStatsStore s2(path_);
  EXPECT_TRUE(s2.Load().ok());
  EXPECT_EQ(s2.NumEntries(), 0u);
}

TEST_F(ErrorStatsStoreTest, MalformedEntryLineStartsFresh) {
  {
    std::ofstream out(path_, std::ios::trunc);
    out << "DYNOPT_ERRSTATS v1 1\n"
        << "no-tabs-here\n"
        << "checksum 0000000000000000\n";
  }
  ErrorStatsStore store(path_);
  EXPECT_TRUE(store.Load().ok());
  EXPECT_EQ(store.NumEntries(), 0u);
  // A corrupt load must not poison subsequent recording + saving.
  store.Record("recovered", 2.0);
  ASSERT_TRUE(store.Save().ok());
  ErrorStatsStore reader(path_);
  ASSERT_TRUE(reader.Load().ok());
  EXPECT_EQ(reader.Get("recovered").count, 1u);
}

TEST_F(ErrorStatsStoreTest, ConcurrentWritersAlwaysLeaveLoadableFile) {
  // Two stores race Save() on the same path while a reader keeps loading.
  // rename() atomicity means every observed file is one writer's complete
  // snapshot — the reader must never see a short or torn file.
  ErrorStatsStore a(path_);
  ErrorStatsStore b(path_);
  for (int i = 0; i < 32; ++i) {
    a.Record("a" + std::to_string(i), 2.0 + i);
    b.Record("b" + std::to_string(i), 3.0 + i);
  }
  std::atomic<bool> stop{false};
  std::atomic<int> save_failures{0};
  auto writer = [&](ErrorStatsStore* s) {
    for (int i = 0; i < 50; ++i) {
      if (!s->Save().ok()) ++save_failures;
    }
  };
  std::thread ta(writer, &a);
  std::thread tb(writer, &b);
  std::thread tr([&] {
    while (!stop.load()) {
      ErrorStatsStore reader(path_);
      ASSERT_TRUE(reader.Load().ok());
      const size_t n = reader.NumEntries();
      // Whichever writer won last, its snapshot is complete: all 32 of its
      // keys or none (file not yet created).
      ASSERT_TRUE(n == 0 || n == 32u) << "torn file with " << n << " entries";
    }
  });
  ta.join();
  tb.join();
  stop.store(true);
  tr.join();
  EXPECT_EQ(save_failures.load(), 0);
  ErrorStatsStore final_reader(path_);
  ASSERT_TRUE(final_reader.Load().ok());
  EXPECT_EQ(final_reader.NumEntries(), 32u);
}

TEST_F(ErrorStatsStoreTest, ConcurrentRecordAndSaveDoNotTear) {
  ErrorStatsStore store(path_);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < 200; ++i) {
        store.Record("key" + std::to_string((t * 7 + i) % 16), 1.5 + t);
        if (i % 25 == 0) {
          ASSERT_TRUE(store.Save().ok());
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_TRUE(store.Save().ok());
  ErrorStatsStore reader(path_);
  ASSERT_TRUE(reader.Load().ok());
  EXPECT_EQ(reader.NumEntries(), 16u);
  uint64_t total = 0;
  for (int k = 0; k < 16; ++k) {
    total += reader.Get("key" + std::to_string(k)).count;
  }
  EXPECT_EQ(total, 4u * 200u);  // No Record lost, none double-counted.
}

TEST(ErrorKeysTest, TableKeyIsPredicateOrderInsensitive) {
  auto p1 = Eq(Col("t", "a"), Lit(Value(int64_t{1})));
  auto p2 = Eq(Col("t", "b"), Lit(Value(int64_t{2})));
  EXPECT_EQ(TableErrorKey("t", {p1, p2}), TableErrorKey("t", {p2, p1}));
  EXPECT_NE(TableErrorKey("t", {p1}), TableErrorKey("t", {p2}));
  EXPECT_EQ(TableErrorKey("t", {}), "tbl:t");
}

TEST(ErrorKeysTest, JoinKeySortsBaseTables) {
  EXPECT_EQ(JoinErrorKey({"part", "orders"}), "join:orders+part");
  EXPECT_EQ(JoinErrorKey({"orders", "part"}), "join:orders+part");
}

TEST(EngineErrorStatsTest, DisabledByDefaultAndRebuiltOnKnobChange) {
  Engine engine;
  EXPECT_EQ(EngineErrorStats(&engine), nullptr);
  EXPECT_EQ(EngineErrorStats(nullptr), nullptr);

  const std::string p1 = TempPath("dynopt_engine_store_a.tsv");
  const std::string p2 = TempPath("dynopt_engine_store_b.tsv");
  std::error_code ec;
  fs::remove(p1, ec);
  fs::remove(p2, ec);

  engine.mutable_cluster().risk.use_error_store = true;
  engine.mutable_cluster().risk.error_stats_path = p1;
  ErrorStatsStore* s1 = EngineErrorStats(&engine);
  ASSERT_NE(s1, nullptr);
  EXPECT_EQ(s1->path(), p1);
  EXPECT_EQ(EngineErrorStats(&engine), s1);  // Cached across calls.

  engine.mutable_cluster().risk.error_stats_path = p2;
  ErrorStatsStore* s2 = EngineErrorStats(&engine);
  ASSERT_NE(s2, nullptr);
  EXPECT_EQ(s2->path(), p2);
  EXPECT_NE(s2, s1);  // Path change rebuilds the slot.

  engine.mutable_cluster().risk.use_error_store = false;
  EXPECT_EQ(EngineErrorStats(&engine), nullptr);
  fs::remove(p1, ec);
  fs::remove(p2, ec);
}

TEST(PriorRiskTest, MapsStoredErrorsOntoAliasAndGlobalFactors) {
  ErrorStatsStore store("");
  QuerySpec spec;
  spec.tables = {{"orders", "o", false, false, {}},
                 {"part", "p", false, false, {}}};
  spec.predicates = {{"o", Eq(Col("o", "status"), Lit(Value(int64_t{3})))}};

  // Empty store: fully neutral risk.
  SelectivityRisk neutral = PriorRisk(spec, &store, 8.0);
  EXPECT_TRUE(neutral.IsNeutral());
  EXPECT_TRUE(PriorRisk(spec, nullptr, 8.0).IsNeutral());

  store.Record(TableErrorKey("orders", spec.PredicatesFor("o")), 6.0);
  store.Record(JoinErrorKey({"orders", "part"}), 3.0);
  SelectivityRisk risk = PriorRisk(spec, &store, 4.0);
  EXPECT_FALSE(risk.IsNeutral());
  EXPECT_DOUBLE_EQ(risk.alias_factors.at("o"), 4.0);  // 6.0 clamped to cap.
  EXPECT_EQ(risk.alias_factors.count("p"), 0u);       // Nothing stored.
  EXPECT_DOUBLE_EQ(risk.global_factor, 3.0);
  EXPECT_DOUBLE_EQ(risk.FactorFor("o"), 4.0);
  // FactorFor covers only per-alias widening; the global factor is applied
  // to join outputs by the planners, not folded into input lookups.
  EXPECT_DOUBLE_EQ(risk.FactorFor("p"), 1.0);
}

}  // namespace
}  // namespace dynopt
