// Fault tolerance via re-optimization checkpoints (the paper's Section 8
// future-work direction): the intermediate results materialized at every
// re-optimization point double as checkpoints, so a failed long-running
// query resumes from the last completed stage instead of starting over.

#include <gtest/gtest.h>

#include <memory>

#include "exec/engine.h"
#include "opt/dynamic_optimizer.h"
#include "workloads/tpcds.h"
#include "workloads/tpch.h"

namespace dynopt {
namespace {

class FaultToleranceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    engine_ = new Engine();
    TpcdsOptions tpcds;
    tpcds.sf = 0.2;
    ASSERT_TRUE(LoadTpcds(engine_, tpcds).ok());
    TpchOptions tpch;
    tpch.sf = 0.2;
    ASSERT_TRUE(LoadTpch(engine_, tpch).ok());
  }
  static void TearDownTestSuite() {
    delete engine_;
    engine_ = nullptr;
  }
  static Engine* engine_;
};

Engine* FaultToleranceTest::engine_ = nullptr;

TEST_F(FaultToleranceTest, ResumeAfterEachPossibleFailurePoint) {
  auto query = TpcdsQ17(engine_);
  ASSERT_TRUE(query.ok());

  // Reference run without failures.
  DynamicOptimizer reference(engine_);
  auto expected = reference.Run(query.value());
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  const int total_stages = expected->metrics.num_reopt_points;
  ASSERT_GT(total_stages, 2);

  for (int fail_after = 1; fail_after <= total_stages; ++fail_after) {
    size_t tables_before = engine_->catalog().TableNames().size();

    DynamicOptimizerOptions failing_options;
    failing_options.inject_failure_after_stages = fail_after;
    // Keep the checkpoint data (temp tables) alive across the "crash".
    failing_options.drop_temp_tables = false;
    DynamicOptimizer failing(engine_, failing_options);
    auto failed = failing.Run(query.value());
    ASSERT_FALSE(failed.ok()) << "failure injection did not fire at stage "
                              << fail_after;
    ASSERT_NE(failing.last_checkpoint(), nullptr);
    DynamicCheckpoint checkpoint = *failing.last_checkpoint();
    EXPECT_EQ(checkpoint.completed_stages, fail_after);
    EXPECT_FALSE(checkpoint.temp_tables.empty());

    // Resume with a fresh optimizer (no injection).
    DynamicOptimizer resumer(engine_);
    auto resumed = resumer.Resume(std::move(checkpoint));
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    EXPECT_EQ(resumed->rows, expected->rows)
        << "resume after stage " << fail_after << " diverges";
    EXPECT_EQ(resumed->columns, expected->columns);
    // Resumed total work (metrics carried over + remaining stages) matches
    // the failure-free run: nothing is redone and nothing is skipped.
    EXPECT_NEAR(resumed->metrics.simulated_seconds,
                expected->metrics.simulated_seconds,
                0.05 * expected->metrics.simulated_seconds);
    // Resume cleans up every checkpoint temp table.
    EXPECT_EQ(engine_->catalog().TableNames().size(), tables_before);
  }
}

TEST_F(FaultToleranceTest, ResumeRejectsMissingCheckpointData) {
  auto query = TpchQ9(engine_);
  ASSERT_TRUE(query.ok());
  DynamicOptimizerOptions failing_options;
  failing_options.inject_failure_after_stages = 1;
  failing_options.drop_temp_tables = false;
  DynamicOptimizer failing(engine_, failing_options);
  ASSERT_FALSE(failing.Run(query.value()).ok());
  ASSERT_NE(failing.last_checkpoint(), nullptr);
  DynamicCheckpoint checkpoint = *failing.last_checkpoint();

  // Simulate losing the checkpoint data.
  std::vector<std::string> temps = checkpoint.temp_tables;
  for (const auto& name : temps) {
    ASSERT_TRUE(engine_->catalog().DropTable(name).ok());
    engine_->stats().Remove(name);
  }
  DynamicOptimizer resumer(engine_);
  auto resumed = resumer.Resume(std::move(checkpoint));
  EXPECT_EQ(resumed.status().code(), StatusCode::kNotFound);
}

TEST_F(FaultToleranceTest, SuccessfulRunLeavesNoCheckpoint) {
  auto query = TpcdsQ50(engine_, 9, 1999);
  ASSERT_TRUE(query.ok());
  DynamicOptimizer optimizer(engine_);
  ASSERT_TRUE(optimizer.Run(query.value()).ok());
  EXPECT_EQ(optimizer.last_checkpoint(), nullptr);
}

TEST_F(FaultToleranceTest, CheckpointTraceSurvivesResume) {
  auto query = TpchQ9(engine_);
  ASSERT_TRUE(query.ok());
  DynamicOptimizerOptions failing_options;
  failing_options.inject_failure_after_stages = 2;
  failing_options.drop_temp_tables = false;
  DynamicOptimizer failing(engine_, failing_options);
  ASSERT_FALSE(failing.Run(query.value()).ok());
  ASSERT_NE(failing.last_checkpoint(), nullptr);
  DynamicCheckpoint checkpoint = *failing.last_checkpoint();
  ASSERT_FALSE(checkpoint.trace.empty());

  DynamicOptimizer resumer(engine_);
  auto resumed = resumer.Resume(std::move(checkpoint));
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  // The resumed trace contains the pre-failure stages plus the final plan.
  EXPECT_NE(resumed->plan_trace.find("[pushdown]"), std::string::npos);
  EXPECT_NE(resumed->plan_trace.find("[final]"), std::string::npos);
}

}  // namespace
}  // namespace dynopt
