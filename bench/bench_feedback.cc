// Risk-aware planning benchmark: what do spill-aware costing, q-error
// feedback and the cross-query error store buy on workloads built to
// punish spill-blind, feedback-free planning?
//
// Section A — spill flip. A two-table join whose build side fits the
// broadcast threshold but not the per-node join budget. Spill-blind
// costing broadcasts the build and pays a grace-join spill at every node;
// spill-aware costing prices those passes up front and flips to shuffle.
// The section also records the cost model's predicted spill volume next
// to ExecMetrics.spilled_bytes for the spill-blind plan (model/executor
// parity).
//
// Section B — misestimation. A four-table chain whose first table carries
// two perfectly correlated predicates (independence underestimates 10x)
// and whose middle join has a hot key both estimators miss. Without
// feedback the dynamic optimizer goes static after its single
// re-optimization point and broadcasts a pair it believes is ~100KB but
// is really megabytes (overflow penalty). With error feedback the
// observed q-error buys an extra re-optimization checkpoint, the pair is
// materialized with exact counts, and the tail of the plan avoids the
// oversized broadcast.
//
// Section C — cross-query memory. The same misestimated query run twice
// through the cost-based strategy with the ErrorStatsStore enabled: run 1
// plans blind, pays the penalty and records its q-error; run 2 starts
// with the stored prior, widens the misestimated intermediate past the
// broadcast threshold and plans the shuffle directly.
//
// Every comparison cell is verified (same rows, expected plan change,
// expected sim-seconds ordering) with DYNOPT_CHECK — the benchmark
// doubles as an acceptance test.
//
// Usage: bench_feedback [--out <path>]   Writes BENCH_feedback.json.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/logging.h"
#include "common/query_context.h"
#include "opt/cardinality.h"
#include "opt/cost_model.h"
#include "opt/dynamic_optimizer.h"
#include "opt/static_optimizer.h"
#include "opt/stats_view.h"
#include "storage/serde.h"

namespace dynopt {
namespace bench {
namespace {

struct Cell {
  std::string section;
  std::string config;
  std::string optimizer;
  std::string plan;
  double sim_seconds = 0;
  uint64_t spilled_bytes = 0;
  uint64_t error_reopt_triggers = 0;
  double max_q_error = 0;
  double predicted_spill_bytes = 0;   ///< Section A only.
  double predicted_cost_seconds = 0;  ///< Section A only.
  uint64_t rows = 0;
};

void AppendCellRecord(const Cell& cell, const OptimizerRunResult& result) {
  Record record;
  record.figure = "feedback/" + cell.section + "/" + cell.config;
  record.query = cell.section;
  record.paper_sf = 0;
  record.optimizer = cell.optimizer;
  record.sim_seconds = result.metrics.simulated_seconds;
  record.reopt_seconds = result.metrics.reopt_seconds;
  record.stats_seconds = result.metrics.stats_seconds;
  SetWallBreakdown(&record, result.metrics, result.profile.get());
  record.rows = result.rows.size();
  record.plan = result.join_tree != nullptr ? result.join_tree->ToString() : "";
  AddRecord(std::move(record));
}

Cell MakeCell(const std::string& section, const std::string& config,
              const std::string& optimizer, const OptimizerRunResult& result) {
  Cell cell;
  cell.section = section;
  cell.config = config;
  cell.optimizer = optimizer;
  cell.plan = result.join_tree != nullptr ? result.join_tree->ToString() : "";
  cell.sim_seconds = result.metrics.simulated_seconds;
  cell.spilled_bytes = result.metrics.spilled_bytes;
  cell.error_reopt_triggers = result.metrics.error_reopt_triggers;
  cell.max_q_error = result.metrics.max_q_error;
  cell.rows = result.rows.size();
  AppendCellRecord(cell, result);
  return cell;
}

std::vector<Row> SortedRows(const OptimizerRunResult& result) {
  std::vector<Row> rows = result.rows;
  SortRows(&rows);
  return rows;
}

void AddTable(Engine* engine, const std::string& name, const Schema& schema,
              const std::vector<Row>& rows,
              const std::vector<std::string>& stats_columns) {
  auto t = std::make_shared<Table>(name, schema, engine->cluster().num_nodes);
  for (const Row& row : rows) t->AppendRow(row);
  DYNOPT_CHECK(engine->catalog().RegisterTable(t).ok());
  DYNOPT_CHECK(engine->CollectBaseStats(name, stats_columns).ok());
}

// ---- Section A: spill-aware costing flips broadcast to shuffle ----------

std::vector<Cell> RunSpillSection() {
  constexpr uint64_t kBudget = 64 * 1024;
  Engine engine;
  engine.mutable_cluster().memory.join_memory_budget_bytes = kBudget;

  // Build side r: ~200KB — under the 256KB broadcast threshold, far over
  // the 64KB per-node budget when replicated. Probe side s: ~3MB.
  {
    std::vector<Row> rows;
    for (int i = 0; i < 3000; ++i) {
      rows.push_back({Value(int64_t{i}), Value(std::string(48, 'r'))});
    }
    AddTable(&engine, "r",
             Schema({{"k", ValueType::kInt64}, {"pad", ValueType::kString}}),
             rows, {"k"});
  }
  {
    std::vector<Row> rows;
    for (int i = 0; i < 30000; ++i) {
      rows.push_back({Value(int64_t{i % 3000}), Value(std::string(80, 's'))});
    }
    AddTable(&engine, "s",
             Schema({{"k", ValueType::kInt64}, {"pad", ValueType::kString}}),
             rows, {"k"});
  }

  QuerySpec spec;
  spec.tables = {{"r", "r", false, false, {}}, {"s", "s", false, false, {}}};
  spec.joins = {{"r", "s", {{"r.k", "s.k"}}}};
  // r.pad is projected so column pruning cannot shrink the broadcast build
  // below the budget — the trap only exists at full width.
  spec.projections = {"r.k", "r.pad", "s.pad"};
  spec.NormalizeJoins();

  std::vector<Cell> cells;
  std::vector<Row> reference;
  for (bool aware : {false, true}) {
    engine.mutable_cluster().risk.spill_aware_costing = aware;
    QueryContext ctx(aware ? "spill-aware" : "spill-blind");
    StaticCostBasedOptimizer optimizer(&engine);
    optimizer.set_context(&ctx);
    auto result = optimizer.Run(spec);
    DYNOPT_CHECK(result.ok());
    if (!aware) {
      reference = SortedRows(result.value());
    } else {
      DYNOPT_CHECK(SortedRows(result.value()) == reference);
    }
    cells.push_back(MakeCell("spill", aware ? "spill-aware" : "spill-blind",
                             "cost-based", result.value()));
  }
  engine.mutable_cluster().risk.spill_aware_costing = false;

  // Model/executor parity on the plan both knobs agree on being the
  // broadcast trap: predict the spill-blind plan's spill volume from the
  // same estimates the planner saw.
  {
    StatsView view(&spec, &engine.stats(), &engine.catalog());
    CardinalityEstimator estimator(&view);
    JoinCostInputs in;
    in.build_rows = estimator.EstimateFilteredSize("r");
    in.build_bytes = estimator.EstimateFilteredBytes("r");
    in.probe_rows = estimator.EstimateFilteredSize("s");
    in.probe_bytes = estimator.EstimateFilteredBytes("s");
    in.out_rows = estimator.EstimateJoinCardinality(spec.joins[0]);
    in.out_bytes = in.out_rows * (in.build_bytes / in.build_rows +
                                  in.probe_bytes / in.probe_rows);
    in.memory_budget_bytes = kBudget;
    const JoinCostBreakdown predicted = EstimateJoinExecCostDetail(
        JoinMethod::kBroadcast, in, engine.cluster(), in.probe_bytes);
    cells[0].predicted_spill_bytes = predicted.spilled_bytes;
    cells[0].predicted_cost_seconds = predicted.cost;
    DYNOPT_CHECK(predicted.spilled_bytes > 0);
    DYNOPT_CHECK(cells[0].spilled_bytes > 0);
    const double ratio =
        predicted.spilled_bytes / static_cast<double>(cells[0].spilled_bytes);
    DYNOPT_CHECK(ratio > 1.0 / 8 && ratio < 8.0);
  }

  // The tentpole claim: different method, lower simulated cost, no spill.
  DYNOPT_CHECK(cells[0].plan != cells[1].plan);
  DYNOPT_CHECK(cells[1].sim_seconds < cells[0].sim_seconds);
  DYNOPT_CHECK(cells[1].spilled_bytes == 0);
  return cells;
}

// ---- Section B: q-error feedback buys an extra reopt checkpoint ---------

/// Four-table chain f-g-h-i. f carries two perfectly correlated
/// predicates (c1 == c2 always); g joins f on a unique key; g and h share
/// a hot value on the g2/h2 join (30% of each side), which the
/// ndv-quotient estimator misses by ~100x.
void BuildMisestimationTables(Engine* engine) {
  {
    std::vector<Row> rows;
    for (int i = 0; i < 6000; ++i) {
      rows.push_back({Value(int64_t{i % 600}), Value(int64_t{i % 10}),
                      Value(int64_t{i % 10}), Value(std::string(40, 'f'))});
    }
    AddTable(engine, "f",
             Schema({{"f_k", ValueType::kInt64},
                     {"c1", ValueType::kInt64},
                     {"c2", ValueType::kInt64},
                     {"pad", ValueType::kString}}),
             rows, {"f_k", "c1", "c2"});
  }
  {
    std::vector<Row> rows;
    for (int i = 0; i < 600; ++i) {
      rows.push_back({Value(int64_t{i}),
                      Value(int64_t{i < 180 ? 7 : 1000 + i})});
    }
    AddTable(engine, "g",
             Schema({{"g_k", ValueType::kInt64}, {"g2", ValueType::kInt64}}),
             rows, {"g_k", "g2"});
  }
  {
    std::vector<Row> rows;
    for (int i = 0; i < 1500; ++i) {
      rows.push_back({Value(int64_t{i < 450 ? 7 : 100000 + i}),
                      Value(int64_t{i})});
    }
    AddTable(engine, "h",
             Schema({{"h2", ValueType::kInt64}, {"h_j", ValueType::kInt64}}),
             rows, {"h2", "h_j"});
  }
  {
    // Large enough that broadcasting the (misestimated) pair looks much
    // cheaper than shuffling i; unique keys keep the final output 1:1.
    std::vector<Row> rows;
    for (int i = 0; i < 20000; ++i) {
      rows.push_back({Value(int64_t{i}), Value(std::string(48, 'i'))});
    }
    AddTable(engine, "i",
             Schema({{"i_j", ValueType::kInt64}, {"pad", ValueType::kString}}),
             rows, {"i_j"});
  }
}

QuerySpec MisestimationQuery() {
  QuerySpec spec;
  spec.tables = {{"f", "f", false, true, {}},
                 {"g", "g", false, false, {}},
                 {"h", "h", false, false, {}},
                 {"i", "i", false, false, {}}};
  spec.predicates = {{"f", Eq(Col("f", "c1"), Lit(Value(int64_t{3})))},
                     {"f", Eq(Col("f", "c2"), Lit(Value(int64_t{3})))}};
  spec.joins = {{"f", "g", {{"f.f_k", "g.g_k"}}},
                {"g", "h", {{"g.g2", "h.h2"}}},
                {"h", "i", {{"h.h_j", "i.i_j"}}}};
  spec.projections = {"f.c1", "g.g2", "h.h_j", "i.i_j"};
  spec.NormalizeJoins();
  return spec;
}

std::vector<Cell> RunFeedbackSection() {
  Engine engine;
  BuildMisestimationTables(&engine);
  const QuerySpec spec = MisestimationQuery();

  std::vector<Cell> cells;
  std::vector<Row> reference;
  for (bool feedback : {false, true}) {
    engine.mutable_cluster().risk.error_feedback = feedback;
    QueryContext ctx(feedback ? "feedback-on" : "feedback-off");
    DynamicOptimizer optimizer(&engine);
    optimizer.set_context(&ctx);
    auto result = optimizer.Run(spec);
    DYNOPT_CHECK(result.ok());
    if (!feedback) {
      reference = SortedRows(result.value());
    } else {
      DYNOPT_CHECK(SortedRows(result.value()) == reference);
    }
    cells.push_back(MakeCell("feedback", feedback ? "feedback" : "no-feedback",
                             "dynamic", result.value()));
  }
  engine.mutable_cluster().risk.error_feedback = false;

  DYNOPT_CHECK(cells[0].error_reopt_triggers == 0);
  DYNOPT_CHECK(cells[1].error_reopt_triggers >= 1);
  DYNOPT_CHECK(cells[1].sim_seconds < cells[0].sim_seconds);
  return cells;
}

// ---- Section C: the error store calibrates the *next* query -------------

std::vector<Cell> RunErrorMemorySection(const std::string& store_path) {
  Engine engine;
  std::error_code ec;
  std::filesystem::remove(store_path, ec);  // Start with no prior.

  {
    std::vector<Row> rows;
    for (int i = 0; i < 6000; ++i) {
      rows.push_back({Value(int64_t{i % 600}), Value(int64_t{i % 10}),
                      Value(int64_t{i % 10}), Value(std::string(100, 'a'))});
    }
    AddTable(&engine, "a",
             Schema({{"a_k", ValueType::kInt64},
                     {"c1", ValueType::kInt64},
                     {"c2", ValueType::kInt64},
                     {"pad", ValueType::kString}}),
             rows, {"a_k", "c1", "c2"});
  }
  {
    std::vector<Row> rows;
    for (int i = 0; i < 3000; ++i) {
      rows.push_back({Value(int64_t{i % 600}), Value(int64_t{i})});
    }
    AddTable(&engine, "b",
             Schema({{"b_k", ValueType::kInt64}, {"b_j", ValueType::kInt64}}),
             rows, {"b_k", "b_j"});
  }
  {
    std::vector<Row> rows;
    for (int i = 0; i < 20000; ++i) {
      rows.push_back({Value(int64_t{i % 3000}), Value(std::string(80, 'c'))});
    }
    AddTable(&engine, "c",
             Schema({{"c_j", ValueType::kInt64}, {"pad", ValueType::kString}}),
             rows, {"c_j"});
  }

  QuerySpec spec;
  spec.tables = {{"a", "a", false, true, {}},
                 {"b", "b", false, false, {}},
                 {"c", "c", false, false, {}}};
  spec.predicates = {{"a", Eq(Col("a", "c1"), Lit(Value(int64_t{3})))},
                     {"a", Eq(Col("a", "c2"), Lit(Value(int64_t{3})))}};
  spec.joins = {{"a", "b", {{"a.a_k", "b.b_k"}}},
                {"b", "c", {{"b.b_j", "c.c_j"}}}};
  // a.pad keeps the a-b intermediate at full width (see Section A note).
  spec.projections = {"a.c1", "a.pad", "b.b_j", "c.c_j"};
  spec.NormalizeJoins();

  engine.mutable_cluster().risk.use_error_store = true;
  engine.mutable_cluster().risk.error_stats_path = store_path;

  std::vector<Cell> cells;
  std::vector<Row> reference;
  for (int run = 1; run <= 2; ++run) {
    QueryContext ctx("error-memory-run" + std::to_string(run));
    StaticCostBasedOptimizer optimizer(&engine);
    optimizer.set_context(&ctx);
    auto result = optimizer.Run(spec);
    DYNOPT_CHECK(result.ok());
    if (run == 1) {
      reference = SortedRows(result.value());
    } else {
      DYNOPT_CHECK(SortedRows(result.value()) == reference);
    }
    cells.push_back(MakeCell("error-memory", "run" + std::to_string(run),
                             "cost-based", result.value()));
  }
  engine.mutable_cluster().risk.use_error_store = false;
  engine.mutable_cluster().risk.error_stats_path.clear();

  // Run 1 misjudged the a-b intermediate and paid the oversized broadcast;
  // run 2 read the stored q-error, widened the intermediate past the
  // broadcast threshold and planned around it.
  DYNOPT_CHECK(std::filesystem::exists(store_path));
  DYNOPT_CHECK(cells[0].max_q_error > 4.0);
  DYNOPT_CHECK(cells[0].plan != cells[1].plan);
  DYNOPT_CHECK(cells[1].sim_seconds < cells[0].sim_seconds);
  return cells;
}

// ---- JSON ---------------------------------------------------------------

void WriteCells(std::ostream& os, const char* key,
                const std::vector<Cell>& cells, bool trailing_comma) {
  os << "  \"" << key << "\": [";
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"config\": \"" << c.config
       << "\", \"optimizer\": \"" << c.optimizer
       << "\", \"sim_seconds\": " << c.sim_seconds
       << ", \"spilled_bytes\": " << c.spilled_bytes
       << ", \"error_reopt_triggers\": " << c.error_reopt_triggers
       << ", \"max_q_error\": " << c.max_q_error
       << ", \"predicted_spill_bytes\": " << c.predicted_spill_bytes
       << ", \"predicted_cost_seconds\": " << c.predicted_cost_seconds
       << ", \"rows\": " << c.rows << ", \"plan\": \"" << c.plan << "\"}";
  }
  os << "\n  ]" << (trailing_comma ? ",\n" : "\n");
}

int Main(int argc, char** argv) {
  std::string out_path = "BENCH_feedback.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--out <path>]\n", argv[0]);
      return 2;
    }
  }

  std::printf("=== bench_feedback: risk-aware planning ===\n");
  const std::vector<Cell> spill = RunSpillSection();
  const std::vector<Cell> feedback = RunFeedbackSection();
  const std::string store_path =
      (std::filesystem::temp_directory_path() / "dynopt_bench_feedback_store")
          .string();
  const std::vector<Cell> memory = RunErrorMemorySection(store_path);
  std::error_code ec;
  std::filesystem::remove(store_path, ec);

  auto print = [](const char* section, const std::vector<Cell>& cells) {
    for (const Cell& c : cells) {
      std::printf("%-13s %-12s sim=%9.3fs spilled=%9llu B reopts=%llu "
                  "max_q=%7.1f  %s\n",
                  section, c.config.c_str(), c.sim_seconds,
                  static_cast<unsigned long long>(c.spilled_bytes),
                  static_cast<unsigned long long>(c.error_reopt_triggers),
                  c.max_q_error, c.plan.c_str());
    }
  };
  print("spill", spill);
  print("feedback", feedback);
  print("error-memory", memory);

  std::ofstream json(out_path);
  json << "{\n  \"benchmark\": \"feedback\",\n";
  WriteCells(json, "spill_costing", spill, true);
  WriteCells(json, "error_feedback", feedback, true);
  WriteCells(json, "error_memory", memory, true);
  json << "  \"records\": " << RecordsToJson() << "\n}\n";
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dynopt

int main(int argc, char** argv) { return dynopt::bench::Main(argc, argv); }
