#ifndef DYNOPT_BENCH_HARNESS_H_
#define DYNOPT_BENCH_HARNESS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "exec/engine.h"
#include "opt/join_tree.h"
#include "opt/optimizer.h"
#include "plan/query_spec.h"

namespace dynopt {
namespace bench {

/// Paper scale factor (10 / 100 / 1000) -> generator sf. The generators
/// substitute ~1000 real rows per generated row (see ClusterConfig), so
/// these stay laptop-sized while preserving the ratios between tables.
double GeneratorSfForPaperSf(int paper_sf);

/// The four evaluation queries.
inline const char* const kQueries[] = {"q17", "q50", "q8", "q9"};

/// The six strategies of Figure 7 (worst-order is dropped in Figure 8)
/// plus the sketch-driven dynamic strategy. Benches that hardcode the
/// paper's six index only the first 6 entries.
inline const char* const kOptimizers[] = {"dynamic",     "best-order",
                                          "cost-based",  "pilot-run",
                                          "ingres-like", "worst-order",
                                          "sketch-dynamic"};

/// Lazily built, cached engine per (paper_sf, with_indexes): loads both
/// workloads and (optionally) the Figure-8 secondary indexes.
Engine* GetEngine(int paper_sf, bool with_indexes);

/// Binds one of the four queries against the engine.
Result<QuerySpec> GetQuery(Engine* engine, const std::string& query);

/// Runs `optimizer_name` on `query`. best-order consults an internal cache
/// of the dynamic optimizer's discovered plan for (query, paper_sf,
/// enable_inlj), running the dynamic optimizer first if needed.
Result<OptimizerRunResult> RunStrategy(Engine* engine, int paper_sf,
                                       const std::string& optimizer_name,
                                       const std::string& query,
                                       bool enable_inlj);

/// One measurement, accumulated for the end-of-run paper-style table.
struct Record {
  std::string figure;
  std::string query;
  int paper_sf = 0;
  std::string optimizer;
  double sim_seconds = 0;
  double wall_seconds = 0;
  double reopt_seconds = 0;
  double stats_seconds = 0;
  // Host wall-clock per operator class (ExecMetrics::wall_*_seconds):
  // real time inside the physical kernels, independent of the simulated
  // cost model above.
  double wall_shuffle_seconds = 0;
  double wall_build_seconds = 0;
  double wall_probe_seconds = 0;
  double wall_materialize_seconds = 0;
  // Fault-injection outcomes (ExecMetrics fault counters); all zero when
  // injection is disarmed.
  double recovery_seconds = 0;
  uint64_t num_retries = 0;
  uint64_t speculative_executions = 0;
  uint64_t corrupted_blocks = 0;
  // Memory-governance outcomes (ExecMetrics memory counters); all zero
  // when no QueryContext / join budget is configured.
  uint64_t peak_memory_bytes = 0;
  uint64_t spilled_bytes = 0;
  uint64_t spill_partitions = 0;
  double queue_wait_seconds = 0;
  // Optimizer decision telemetry (ExecMetrics::max_q_error/num_decisions):
  // the worst estimate-vs-actual ratio across this run's logged decisions.
  double max_q_error = 0;
  uint64_t num_decisions = 0;
  // Extra re-optimization checkpoints bought by the error feedback loop
  // (ExecMetrics::error_reopt_triggers; 0 at default knobs).
  uint64_t error_reopt_triggers = 0;
  // Exchange volume and predicate-transfer outcomes (ExecMetrics
  // counters); pt_* are all zero unless enable_predicate_transfer is on.
  uint64_t bytes_shuffled = 0;
  uint64_t pt_filter_bytes = 0;
  uint64_t pt_pruned_rows = 0;
  uint64_t pt_pruned_bytes = 0;
  // Log2-bucketed histogram of rounded per-decision q-errors: bucket 0 =
  // [1,2), bucket i = [2^i, 2^(i+1)), last bucket open-ended. All zero
  // when no profile was attached to the run.
  std::vector<uint64_t> q_error_log2 = std::vector<uint64_t>(16, 0);
  uint64_t rows = 0;
  std::string plan;
};

/// Copies the per-operator-class wall clocks, the fault counters, the
/// memory-governance counters and the decision telemetry out of `metrics`
/// into `record`. A non-null `profile` additionally fills the per-decision
/// q-error histogram (`q_error_log2`).
void SetWallBreakdown(Record* record, const ExecMetrics& metrics,
                      const QueryProfile* profile = nullptr);

void AddRecord(Record record);
const std::vector<Record>& Records();

/// All accumulated records as a JSON array (one object per record,
/// including the fault-recovery counters).
std::string RecordsToJson();

/// Writes RecordsToJson() wrapped in {"records": [...]} to `path`.
/// Returns false when the file cannot be written.
bool WriteRecordsJson(const std::string& path);

/// Writes `registry`->TextSnapshot() to `path` (one "name value" line per
/// metric). Registries are engine-scoped: benches pass their engine's
/// registry; null falls back to the process-wide default instance.
/// Returns false when the file cannot be written.
bool WriteMetricsSnapshot(const std::string& path,
                          const MetricsRegistry* registry = nullptr);

/// Prints records of `figure` grouped like the paper's figures: one block
/// per scale factor, queries as rows, strategies as columns.
void PrintFigureTable(const std::string& figure);

}  // namespace bench
}  // namespace dynopt

#endif  // DYNOPT_BENCH_HARNESS_H_
