// Reproduces Figure 7: execution time of the six optimization strategies
// (Dynamic, Best-order, Cost-based, Pilot-run, INGRES-like, Worst-order) on
// TPC-DS Q17/Q50 and TPC-H Q8/Q9 at paper scale factors 10/100/1000, with
// hash and broadcast joins available (no secondary indexes). A seventh
// column adds the sketch-driven dynamic strategy (predicate transfer off,
// so it differs from Dynamic only through AGMS-based join estimates).
//
// Reported benchmark time is the *simulated* cluster time under the cost
// model (UseManualTime); `wall_s` counters carry real elapsed time.

#include <benchmark/benchmark.h>

#include "bench/harness.h"
#include "common/logging.h"

namespace dynopt {
namespace bench {
namespace {

void RunCase(benchmark::State& state, const std::string& query, int paper_sf,
             const std::string& optimizer) {
  Engine* engine = GetEngine(paper_sf, /*with_indexes=*/false);
  for (auto _ : state) {
    auto result = RunStrategy(engine, paper_sf, optimizer, query,
                              /*enable_inlj=*/false);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    state.SetIterationTime(result->metrics.simulated_seconds);
    state.counters["wall_s"] = result->wall_seconds;
    state.counters["rows"] = static_cast<double>(result->rows.size());
    state.counters["shuffled_MB"] =
        static_cast<double>(result->metrics.bytes_shuffled) / 1.0e6;
    state.counters["broadcast_MB"] =
        static_cast<double>(result->metrics.bytes_broadcast) / 1.0e6;
    state.counters["reopts"] =
        static_cast<double>(result->metrics.num_reopt_points);
    Record record;
    record.figure = "Figure 7";
    record.query = query;
    record.paper_sf = paper_sf;
    record.optimizer = optimizer;
    record.sim_seconds = result->metrics.simulated_seconds;
    record.wall_seconds = result->wall_seconds;
    SetWallBreakdown(&record, result->metrics, result->profile.get());
    record.rows = result->rows.size();
    record.plan =
        result->join_tree != nullptr ? result->join_tree->ToString() : "";
    AddRecord(std::move(record));
  }
}

void RegisterAll() {
  for (int sf : {10, 100, 1000}) {
    for (const char* query : kQueries) {
      for (const char* optimizer : kOptimizers) {
        std::string name = std::string("fig7/") + query + "/sf" +
                           std::to_string(sf) + "/" + optimizer;
        benchmark::RegisterBenchmark(
            name.c_str(),
            [query = std::string(query), sf,
             optimizer = std::string(optimizer)](benchmark::State& state) {
              RunCase(state, query, sf, optimizer);
            })
            ->UseManualTime()
            ->Unit(benchmark::kSecond)
            ->Iterations(1);
      }
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace dynopt

int main(int argc, char** argv) {
  dynopt::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dynopt::bench::PrintFigureTable("Figure 7");
  return 0;
}
