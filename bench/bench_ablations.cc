// Ablations of the design choices DESIGN.md calls out (not paper figures,
// but the knobs that explain *why* the reproduction behaves as it does):
//
//   1. broadcast threshold — how the hash/broadcast flip point moves;
//   2. histogram bucket count — single-predicate estimation error;
//   3. pilot-run sample size k — plan quality vs sampling effort;
//   4. re-optimization granularity — full dynamic vs INGRES-style
//      decompose-everything vs no-online-stats.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "bench/harness.h"
#include "opt/dynamic_optimizer.h"
#include "opt/pilot_run_optimizer.h"
#include "common/random.h"
#include "stats/column_stats.h"
#include "workloads/tpcds.h"
#include "workloads/tpch.h"

namespace dynopt {
namespace bench {
namespace {

// --- 1. Broadcast threshold sweep -------------------------------------------

void BM_BroadcastThreshold(benchmark::State& state, const std::string& query,
                           uint64_t threshold) {
  for (auto _ : state) {
    // Fresh engine per threshold (the cached ones share a config).
    Engine engine;
    double sf = GeneratorSfForPaperSf(100);
    engine.mutable_cluster().broadcast_threshold_bytes = threshold;
    TpchOptions tpch;
    tpch.sf = sf;
    TpcdsOptions tpcds;
    tpcds.sf = sf;
    if (!LoadTpch(&engine, tpch).ok() || !LoadTpcds(&engine, tpcds).ok()) {
      state.SkipWithError("load failed");
      return;
    }
    auto spec = GetQuery(&engine, query);
    if (!spec.ok()) {
      state.SkipWithError(spec.status().ToString().c_str());
      return;
    }
    DynamicOptimizer optimizer(&engine);
    auto result = optimizer.Run(spec.value());
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    state.SetIterationTime(result->metrics.simulated_seconds);
    state.counters["broadcast_MB"] =
        static_cast<double>(result->metrics.bytes_broadcast) / 1e6;
    state.counters["shuffled_MB"] =
        static_cast<double>(result->metrics.bytes_shuffled) / 1e6;
  }
}

// --- 2. Histogram bucket count vs estimation error ---------------------------

void BM_HistogramBuckets(benchmark::State& state, int buckets) {
  for (auto _ : state) {
    // Skewed column: 90% of values < 100, long tail to 10000.
    Rng rng(7);
    StatsOptions options;
    options.histogram_buckets = buckets;
    ColumnStatsBuilder builder(options);
    int true_hits = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
      int64_t v = rng.NextBool(0.9) ? rng.NextInt64(0, 99)
                                    : rng.NextInt64(100, 9999);
      if (v < 50) ++true_hits;
      builder.Add(Value(v));
    }
    ColumnStatsSnapshot snap = builder.Finalize();
    double est =
        snap.EstimateRangeSelectivity(Value(int64_t{0}), Value(int64_t{49}));
    double truth = static_cast<double>(true_hits) / n;
    double rel_error = std::abs(est - truth) / truth;
    state.SetIterationTime(rel_error + 1e-9);  // "Time" = relative error.
    state.counters["est"] = est;
    state.counters["truth"] = truth;
    state.counters["rel_error_pct"] = 100.0 * rel_error;
  }
}

// --- 3. Pilot-run sample size -------------------------------------------------

void BM_PilotSampleSize(benchmark::State& state, const std::string& query,
                        size_t k) {
  Engine* engine = GetEngine(100, false);
  for (auto _ : state) {
    auto spec = GetQuery(engine, query);
    if (!spec.ok()) {
      state.SkipWithError(spec.status().ToString().c_str());
      return;
    }
    PilotRunOptions options;
    options.sample_limit = k;
    PilotRunOptimizer optimizer(engine, options);
    auto result = optimizer.Run(spec.value());
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    state.SetIterationTime(result->metrics.simulated_seconds);
    state.counters["rows"] = static_cast<double>(result->rows.size());
  }
}

// --- 4. Re-optimization granularity -------------------------------------------

void BM_ReoptGranularity(benchmark::State& state, const std::string& query,
                         bool pushdown_simple, bool online_stats) {
  Engine* engine = GetEngine(100, false);
  for (auto _ : state) {
    auto spec = GetQuery(engine, query);
    if (!spec.ok()) {
      state.SkipWithError(spec.status().ToString().c_str());
      return;
    }
    DynamicOptimizerOptions options;
    options.pushdown_simple_predicates = pushdown_simple;
    options.collect_online_stats = online_stats;
    DynamicOptimizer optimizer(engine, options);
    auto result = optimizer.Run(spec.value());
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    state.SetIterationTime(result->metrics.simulated_seconds);
    state.counters["reopts"] =
        static_cast<double>(result->metrics.num_reopt_points);
    state.counters["reopt_s"] = result->metrics.reopt_seconds;
    state.counters["stats_s"] = result->metrics.stats_seconds;
  }
}

void RegisterAll() {
  for (const char* query : {"q9", "q17"}) {
    for (uint64_t kb : {64, 256, 1024, 4096}) {
      std::string name = std::string("ablation_broadcast_threshold/") +
                         query + "/" + std::to_string(kb) + "KB";
      benchmark::RegisterBenchmark(
          name.c_str(), [query = std::string(query), kb](
                            benchmark::State& state) {
            BM_BroadcastThreshold(state, query, kb << 10);
          })
          ->UseManualTime()
          ->Unit(benchmark::kSecond)
          ->Iterations(1);
    }
  }
  for (int buckets : {4, 16, 64, 256}) {
    std::string name =
        "ablation_histogram_buckets/" + std::to_string(buckets);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [buckets](benchmark::State& state) {
          BM_HistogramBuckets(state, buckets);
        })
        ->UseManualTime()
        ->Iterations(1);
  }
  for (const char* query : {"q9", "q17"}) {
    for (size_t k : {100, 1000, 10000}) {
      std::string name = std::string("ablation_pilot_sample/") + query +
                         "/k" + std::to_string(k);
      benchmark::RegisterBenchmark(
          name.c_str(), [query = std::string(query), k](
                            benchmark::State& state) {
            BM_PilotSampleSize(state, query, k);
          })
          ->UseManualTime()
          ->Unit(benchmark::kSecond)
          ->Iterations(1);
    }
  }
  // q8/q9 have single simple predicates (part, region) that decompose-all
  // additionally pushes down, adding re-optimization points.
  for (const char* query : {"q8", "q9"}) {
    struct Config {
      const char* label;
      bool pushdown_simple;
      bool online_stats;
    };
    const Config configs[] = {{"default", false, true},
                              {"decompose-all", true, true},
                              {"no-online-stats", false, false},
                              {"minimal", false, false}};
    for (const Config& config : configs) {
      std::string name = std::string("ablation_reopt_granularity/") + query +
                         "/" + config.label;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [query = std::string(query), config](benchmark::State& state) {
            BM_ReoptGranularity(state, query, config.pushdown_simple,
                                config.online_stats);
          })
          ->UseManualTime()
          ->Unit(benchmark::kSecond)
          ->Iterations(1);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace dynopt

int main(int argc, char** argv) {
  dynopt::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
