// Reproduces Figure 6 (left): the overhead imposed by the multiple
// re-optimization points and the online statistics collection, for
// Q17/Q50/Q8/Q9 at paper scale factors 100 and 1000.
//
// Methodology mirrors the paper's: one full dynamic run decomposes its
// simulated time into
//   - "Statistics Upfront": execution work that would remain if the
//     optimal plan were known from the beginning,
//   - "Re-Optimization": materializing + re-reading intermediates plus the
//     fixed per-reopt coordination cost,
//   - "Online Stats": feeding the sketches on intermediate results.
// The benchmark asserts the paper's headline: overhead stays a modest
// fraction of execution (printed as a percentage).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/harness.h"

namespace dynopt {
namespace bench {
namespace {

void RunCase(benchmark::State& state, const std::string& query,
             int paper_sf) {
  Engine* engine = GetEngine(paper_sf, /*with_indexes=*/false);
  for (auto _ : state) {
    auto result = RunStrategy(engine, paper_sf, "dynamic", query,
                              /*enable_inlj=*/false);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    const double total = result->metrics.simulated_seconds;
    const double reopt = result->metrics.reopt_seconds;
    const double stats = result->metrics.stats_seconds;
    state.SetIterationTime(total);
    state.counters["base_exec_s"] = total - reopt - stats;
    state.counters["reopt_s"] = reopt;
    state.counters["online_stats_s"] = stats;
    state.counters["reopt_pct"] = 100.0 * reopt / total;
    state.counters["stats_pct"] = 100.0 * stats / total;
    Record record;
    record.figure = "Figure 6 (left)";
    record.query = query;
    record.paper_sf = paper_sf;
    record.optimizer = "dynamic";
    record.sim_seconds = total;
    record.reopt_seconds = reopt;
    record.stats_seconds = stats;
    record.wall_seconds = result->wall_seconds;
    SetWallBreakdown(&record, result->metrics, result->profile.get());
    AddRecord(std::move(record));
  }
}

void RegisterAll() {
  for (int sf : {100, 1000}) {
    for (const char* query : kQueries) {
      std::string name =
          std::string("fig6_overhead/") + query + "/sf" + std::to_string(sf);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [query = std::string(query), sf](benchmark::State& state) {
            RunCase(state, query, sf);
          })
          ->UseManualTime()
          ->Unit(benchmark::kSecond)
          ->Iterations(1);
    }
  }
}

void PrintBreakdown() {
  std::printf(
      "\n=== Figure 6 (left): overhead decomposition (simulated s) ===\n");
  std::printf("%-6s %6s %14s %14s %14s %10s\n", "query", "sf", "stats-upfront",
              "re-optimization", "online-stats", "overhead%");
  for (const auto& r : Records()) {
    if (r.figure != "Figure 6 (left)") continue;
    double base = r.sim_seconds - r.reopt_seconds - r.stats_seconds;
    std::printf("%-6s %6d %14.2f %14.2f %14.2f %9.1f%%\n", r.query.c_str(),
                r.paper_sf, base, r.reopt_seconds, r.stats_seconds,
                100.0 * (r.reopt_seconds + r.stats_seconds) / r.sim_seconds);
  }
}

}  // namespace
}  // namespace bench
}  // namespace dynopt

int main(int argc, char** argv) {
  dynopt::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dynopt::bench::PrintBreakdown();
  return 0;
}
