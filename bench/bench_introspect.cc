// Introspection-plane benchmark: what does the live sys.* / profile
// archive cost, and what does the regression detector buy?
//
// Section A — overhead. TPC-H Q9 run with introspection off and on.
// Simulated seconds must be bit-identical (the plane observes, it never
// participates); the cell reports the wall-clock delta, i.e. the real
// price of fingerprinting + critical-path extraction + archiving.
//
// Section B — sys scans. `SELECT * FROM sys.metrics` / sys.queries through
// the SQL front end: metered at exactly zero simulated seconds, with the
// wall cost of materializing the snapshot reported.
//
// Section C — archive bound. 4x archive_capacity distinct queries; the
// ring must hold exactly capacity entries and its ApproxBytes stays
// bounded — the archive cannot grow with workload size.
//
// Section D — regression demo. The same 3-table query under dynamic
// (small-first) and then worst-order (builds the exploding intermediate
// first): the slow run must be flagged against the archived fast one, and
// the note must name the first diverging decision.
//
// Every claim is enforced with DYNOPT_CHECK — the benchmark doubles as an
// acceptance test.
//
// Usage: bench_introspect [--out <path>]   Writes BENCH_introspect.json.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/logging.h"
#include "common/random.h"
#include "opt/dynamic_optimizer.h"
#include "opt/order_baselines.h"
#include "opt/profile_archive.h"
#include "sql/binder.h"
#include "sys/system_tables.h"
#include "workloads/tpch.h"

namespace dynopt {
namespace bench {
namespace {

struct Cell {
  std::string section;
  std::string config;
  double sim_seconds = 0;
  double wall_seconds = 0;
  uint64_t rows = 0;
  uint64_t archived = 0;
  uint64_t archive_bytes = 0;
  std::string note;
};

double WallNow() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void AddIntrospectRecord(const Cell& c) {
  Record record;
  record.figure = "introspect/" + c.section + "/" + c.config;
  record.query = c.section;
  record.sim_seconds = c.sim_seconds;
  record.wall_seconds = c.wall_seconds;
  record.rows = c.rows;
  record.plan = c.note;
  AddRecord(std::move(record));
}

// ---- Section A: the plane observes, it never participates ---------------

std::vector<Cell> RunOverheadSection() {
  std::vector<Cell> cells;
  double sim_off = -1;
  for (bool on : {false, true}) {
    Engine engine;
    TpchOptions tpch;
    tpch.sf = 0.2;
    DYNOPT_CHECK(LoadTpch(&engine, tpch).ok());
    if (on) {
      EnableIntrospection(&engine);
      // Tracing feeds the critical-path extractor; it never touches
      // ExecMetrics, so the identical-sim check below still holds.
      Tracer::Global().Enable();
    }
    auto query = TpchQ9(&engine);
    DYNOPT_CHECK(query.ok());

    Cell cell;
    cell.section = "overhead";
    cell.config = on ? "introspection-on" : "introspection-off";
    const double start = WallNow();
    constexpr int kRuns = 5;
    for (int i = 0; i < kRuns; ++i) {
      DynamicOptimizer optimizer(&engine);
      auto result = optimizer.Run(query.value());
      DYNOPT_CHECK(result.ok());
      cell.sim_seconds = result->metrics.simulated_seconds;
      cell.rows = result->rows.size();
    }
    cell.wall_seconds = (WallNow() - start) / kRuns;
    if (!on) {
      sim_off = cell.sim_seconds;
    } else {
      // Identical metering with the plane armed.
      DYNOPT_CHECK(cell.sim_seconds == sim_off);
      ProfileArchive* archive = EngineProfileArchive(&engine);
      DYNOPT_CHECK(archive != nullptr && archive->NumArchived() == kRuns);
      cell.archived = archive->NumArchived();
      cell.archive_bytes = archive->ApproxBytes();
      cell.note = archive->Snapshot().back().critical_path;
      DYNOPT_CHECK(!cell.note.empty());  // Traced run => dominant chain.
      Tracer::Global().Disable();
    }
    cells.push_back(cell);
    AddIntrospectRecord(cell);
  }
  return cells;
}

// ---- Section B: sys.* scans are free in simulated time ------------------

std::vector<Cell> RunSysScanSection() {
  Engine engine;
  TpchOptions tpch;
  tpch.sf = 0.2;
  DYNOPT_CHECK(LoadTpch(&engine, tpch).ok());
  EnableIntrospection(&engine);
  // Something to introspect: a couple of completed queries.
  auto query = TpchQ9(&engine);
  DYNOPT_CHECK(query.ok());
  for (int i = 0; i < 2; ++i) {
    DynamicOptimizer optimizer(&engine);
    DYNOPT_CHECK(optimizer.Run(query.value()).ok());
  }

  std::vector<Cell> cells;
  for (const char* table : {"sys.metrics", "sys.queries", "sys.decisions"}) {
    auto spec = ParseAndBind(std::string("SELECT * FROM ") + table,
                             engine.catalog());
    DYNOPT_CHECK(spec.ok());
    Cell cell;
    cell.section = "sys-scan";
    cell.config = table;
    const double start = WallNow();
    DynamicOptimizer optimizer(&engine);
    auto result = optimizer.Run(spec.value());
    cell.wall_seconds = WallNow() - start;
    DYNOPT_CHECK(result.ok());
    DYNOPT_CHECK(result->metrics.simulated_seconds == 0.0);
    DYNOPT_CHECK(!result->rows.empty());
    cell.sim_seconds = result->metrics.simulated_seconds;
    cell.rows = result->rows.size();
    cells.push_back(cell);
    AddIntrospectRecord(cell);
  }
  return cells;
}

// ---- Sections C and D: archive bound + regression demo ------------------

void LoadSkewTables(Engine* engine) {
  Rng rng(7);
  auto load = [&](const std::string& name, int rows) {
    auto t = std::make_shared<Table>(
        name, Schema({{"k", ValueType::kInt64}, {"v", ValueType::kInt64}}),
        engine->cluster().num_nodes);
    DYNOPT_CHECK(t->SetPartitionKey({"k"}).ok());
    for (int i = 0; i < rows; ++i) {
      t->AppendRow({Value(rng.NextInt64(0, 99)), Value(rng.NextInt64(0, 9))});
    }
    DYNOPT_CHECK(engine->catalog().RegisterTable(t).ok());
    DYNOPT_CHECK(engine->CollectBaseStats(name, {"k", "v"}).ok());
  };
  load("s", 10);
  load("b", 1000);
  load("c", 1000);
}

std::vector<Cell> RunArchiveBoundSection() {
  Engine engine;
  engine.mutable_cluster().introspection.enabled = true;
  engine.mutable_cluster().introspection.archive_capacity = 16;
  InstallSystemTables(&engine);
  LoadSkewTables(&engine);

  const size_t capacity = engine.cluster().introspection.archive_capacity;
  for (int i = 0; i < static_cast<int>(capacity) * 4; ++i) {
    QuerySpec spec;
    spec.tables = {{"b", "b", false, false, {}}};
    spec.projections = {"b.v"};
    spec.limit = i + 1;  // Distinct shape per run => distinct fingerprint.
    DynamicOptimizer optimizer(&engine);
    DYNOPT_CHECK(optimizer.Run(spec).ok());
  }
  ProfileArchive* archive = EngineProfileArchive(&engine);
  DYNOPT_CHECK(archive != nullptr);
  DYNOPT_CHECK(archive->NumArchived() == capacity);

  Cell cell;
  cell.section = "archive-bound";
  cell.config = "capacity-" + std::to_string(capacity);
  cell.rows = capacity * 4;
  cell.archived = archive->NumArchived();
  cell.archive_bytes = archive->ApproxBytes();
  AddIntrospectRecord(cell);
  return {cell};
}

std::vector<Cell> RunRegressionSection() {
  Engine engine;
  engine.mutable_cluster().introspection.enabled = true;
  InstallSystemTables(&engine);
  LoadSkewTables(&engine);

  QuerySpec chain;
  chain.tables = {{"s", "s", false, false, {}},
                  {"b", "b", false, false, {}},
                  {"c", "c", false, false, {}}};
  chain.joins = {{"s", "b", {{"s.k", "b.k"}}}, {"b", "c", {{"b.k", "c.k"}}}};
  chain.projections = {"s.v", "b.v", "c.v"};
  chain.NormalizeJoins();

  std::vector<Cell> cells;
  DynamicOptimizer dynamic(&engine);
  auto fast = dynamic.Run(chain);
  DYNOPT_CHECK(fast.ok());
  Cell fast_cell;
  fast_cell.section = "regression";
  fast_cell.config = "dynamic-baseline";
  fast_cell.sim_seconds = fast->metrics.simulated_seconds;
  fast_cell.rows = fast->rows.size();
  cells.push_back(fast_cell);
  AddIntrospectRecord(fast_cell);

  WorstOrderOptimizer worst(&engine);
  auto slow = worst.Run(chain);
  DYNOPT_CHECK(slow.ok());
  DYNOPT_CHECK(slow->profile != nullptr);
  const std::string& note = slow->profile->regression_note;
  DYNOPT_CHECK(!note.empty());
  DYNOPT_CHECK(note.find("first divergent decision") != std::string::npos);
  Cell slow_cell;
  slow_cell.section = "regression";
  slow_cell.config = "worst-order-regressed";
  slow_cell.sim_seconds = slow->metrics.simulated_seconds;
  slow_cell.rows = slow->rows.size();
  slow_cell.note = note;
  cells.push_back(slow_cell);
  AddIntrospectRecord(slow_cell);
  return cells;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

void WriteCells(std::ostream& os, const std::string& key,
                const std::vector<Cell>& cells, bool trailing_comma) {
  os << "  \"" << key << "\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    os << (i > 0 ? ",\n" : "") << "    {\"section\": \"" << c.section
       << "\", \"config\": \"" << c.config
       << "\", \"sim_seconds\": " << c.sim_seconds
       << ", \"wall_seconds\": " << c.wall_seconds << ", \"rows\": " << c.rows
       << ", \"archived\": " << c.archived
       << ", \"archive_bytes\": " << c.archive_bytes << ", \"note\": \""
       << JsonEscape(c.note) << "\"}";
  }
  os << "\n  ]" << (trailing_comma ? ",\n" : "\n");
}

int Main(int argc, char** argv) {
  std::string out_path = "BENCH_introspect.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--out <path>]\n", argv[0]);
      return 2;
    }
  }

  std::printf("=== bench_introspect: sys.* catalog + profile archive ===\n");
  const std::vector<Cell> overhead = RunOverheadSection();
  const std::vector<Cell> sys_scan = RunSysScanSection();
  const std::vector<Cell> archive = RunArchiveBoundSection();
  const std::vector<Cell> regression = RunRegressionSection();

  auto print = [](const std::vector<Cell>& cells) {
    for (const Cell& c : cells) {
      std::printf("%-14s %-24s sim=%9.3fs wall=%8.4fs rows=%7llu "
                  "archived=%3llu (%llu B) %s\n",
                  c.section.c_str(), c.config.c_str(), c.sim_seconds,
                  c.wall_seconds, static_cast<unsigned long long>(c.rows),
                  static_cast<unsigned long long>(c.archived),
                  static_cast<unsigned long long>(c.archive_bytes),
                  c.note.c_str());
    }
  };
  print(overhead);
  print(sys_scan);
  print(archive);
  print(regression);

  std::ofstream json(out_path);
  json << "{\n  \"benchmark\": \"introspect\",\n";
  WriteCells(json, "overhead", overhead, true);
  WriteCells(json, "sys_scan", sys_scan, true);
  WriteCells(json, "archive_bound", archive, true);
  WriteCells(json, "regression", regression, true);
  json << "  \"records\": " << RecordsToJson() << "\n}\n";
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dynopt

int main(int argc, char** argv) { return dynopt::bench::Main(argc, argv); }
