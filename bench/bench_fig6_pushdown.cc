// Reproduces Figure 6 (right): the overhead of pushing down and executing
// multiple/complex predicates, vs a baseline that executes the same plan
// with perfect statistics available from the beginning.
//
// Baseline: best-order (the dynamic plan, one pipelined job, no
// materialization). Predicate push-down: the dynamic optimizer with only
// its push-down stage enabled; the remaining query is planned statically
// from the refined statistics and runs as one job.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <mutex>

#include "bench/harness.h"
#include "opt/dynamic_optimizer.h"

namespace dynopt {
namespace bench {
namespace {

std::map<std::string, double>& BaselineSeconds() {
  static auto* map = new std::map<std::string, double>();
  return *map;
}
std::mutex g_mu;

void RunCase(benchmark::State& state, const std::string& query, int paper_sf,
             bool pushdown) {
  Engine* engine = GetEngine(paper_sf, /*with_indexes=*/false);
  for (auto _ : state) {
    double total = 0;
    if (!pushdown) {
      auto result = RunStrategy(engine, paper_sf, "best-order", query, false);
      if (!result.ok()) {
        state.SkipWithError(result.status().ToString().c_str());
        return;
      }
      total = result->metrics.simulated_seconds;
      std::lock_guard<std::mutex> lock(g_mu);
      BaselineSeconds()[query + std::to_string(paper_sf)] = total;
    } else {
      auto spec = GetQuery(engine, query);
      if (!spec.ok()) {
        state.SkipWithError(spec.status().ToString().c_str());
        return;
      }
      DynamicOptimizerOptions options;
      options.stop_after_pushdown = true;
      DynamicOptimizer optimizer(engine, options);
      auto result = optimizer.Run(spec.value());
      if (!result.ok()) {
        state.SkipWithError(result.status().ToString().c_str());
        return;
      }
      total = result->metrics.simulated_seconds;
      Record record;
      record.figure = "Figure 6 (right)";
      record.query = query;
      record.paper_sf = paper_sf;
      record.optimizer = "predicate-push-down";
      record.sim_seconds = total;
      SetWallBreakdown(&record, result->metrics, result->profile.get());
      AddRecord(std::move(record));
    }
    state.SetIterationTime(total);
  }
}

void RegisterAll() {
  for (int sf : {100, 1000}) {
    for (const char* query : kQueries) {
      for (bool pushdown : {false, true}) {
        std::string name = std::string("fig6_pushdown/") + query + "/sf" +
                           std::to_string(sf) + "/" +
                           (pushdown ? "push-down" : "baseline");
        benchmark::RegisterBenchmark(
            name.c_str(), [query = std::string(query), sf,
                           pushdown](benchmark::State& state) {
              RunCase(state, query, sf, pushdown);
            })
            ->UseManualTime()
            ->Unit(benchmark::kSecond)
            ->Iterations(1);
      }
    }
  }
}

void PrintComparison() {
  std::printf(
      "\n=== Figure 6 (right): predicate push-down vs baseline "
      "(simulated s) ===\n");
  std::printf("%-6s %6s %10s %12s %10s\n", "query", "sf", "baseline",
              "push-down", "overhead%");
  for (const auto& r : Records()) {
    if (r.figure != "Figure 6 (right)") continue;
    double baseline = BaselineSeconds()[r.query + std::to_string(r.paper_sf)];
    std::printf("%-6s %6d %10.2f %12.2f %9.1f%%\n", r.query.c_str(),
                r.paper_sf, baseline, r.sim_seconds,
                baseline > 0 ? 100.0 * (r.sim_seconds - baseline) / baseline
                             : 0.0);
  }
}

}  // namespace
}  // namespace bench
}  // namespace dynopt

int main(int argc, char** argv) {
  dynopt::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dynopt::bench::PrintComparison();
  return 0;
}
