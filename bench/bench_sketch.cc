// Predicate-transfer and sketch-planning benchmark: what do the Bloom
// sideways pushdown and the Fast-AGMS join estimates buy, and what do
// they cost?
//
// Section A — transfer. A star-ish workload whose probe sides carry many
// rows that can never find a build partner. With predicate transfer off
// the full probe side enters the shuffle; with it on, the build side's
// key filter prunes those rows before Repartition. The same A/B runs on
// TPC-H Q9, one of the paper's evaluation queries, where the filtered
// part/orders intermediates prune most of lineitem. Each cell reports
// shuffled bytes, the filter bytes shipped and the probe bytes pruned.
//
// Section B — chain. The seven strategies on bench_feedback's four-table
// misestimation chain (correlated predicates + hot key). sketch-dynamic
// re-optimizes from AGMS estimates at every materialization checkpoint,
// so it must not lose to the best of the existing dynamic strategies.
//
// Every comparison cell is verified (same rows, pruning actually
// happened, expected sim-seconds ordering) with DYNOPT_CHECK — the
// benchmark doubles as an acceptance test.
//
// Usage: bench_sketch [--out <path>]   Writes BENCH_sketch.json.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/logging.h"
#include "opt/dynamic_optimizer.h"
#include "opt/ingres_optimizer.h"
#include "opt/order_baselines.h"
#include "opt/pilot_run_optimizer.h"
#include "opt/sketch_optimizer.h"
#include "opt/static_optimizer.h"
#include "storage/serde.h"
#include "workloads/tpch.h"

namespace dynopt {
namespace bench {
namespace {

struct Cell {
  std::string section;
  std::string config;
  std::string optimizer;
  std::string plan;
  double sim_seconds = 0;
  uint64_t bytes_shuffled = 0;
  uint64_t pt_filter_bytes = 0;
  uint64_t pt_pruned_rows = 0;
  uint64_t pt_pruned_bytes = 0;
  uint64_t rows = 0;
};

Cell MakeCell(const std::string& section, const std::string& config,
              const std::string& optimizer, const OptimizerRunResult& result) {
  Cell cell;
  cell.section = section;
  cell.config = config;
  cell.optimizer = optimizer;
  cell.plan = result.join_tree != nullptr ? result.join_tree->ToString() : "";
  cell.sim_seconds = result.metrics.simulated_seconds;
  cell.bytes_shuffled = result.metrics.bytes_shuffled;
  cell.pt_filter_bytes = result.metrics.pt_filter_bytes;
  cell.pt_pruned_rows = result.metrics.pt_pruned_rows;
  cell.pt_pruned_bytes = result.metrics.pt_pruned_bytes;
  cell.rows = result.rows.size();

  Record record;
  record.figure = "sketch/" + section + "/" + config;
  record.query = section;
  record.paper_sf = 0;
  record.optimizer = optimizer;
  record.sim_seconds = result.metrics.simulated_seconds;
  record.reopt_seconds = result.metrics.reopt_seconds;
  record.stats_seconds = result.metrics.stats_seconds;
  SetWallBreakdown(&record, result.metrics, result.profile.get());
  record.rows = result.rows.size();
  record.plan = cell.plan;
  AddRecord(std::move(record));
  return cell;
}

std::vector<Row> SortedRows(const OptimizerRunResult& result) {
  std::vector<Row> rows = result.rows;
  SortRows(&rows);
  return rows;
}

void AddTable(Engine* engine, const std::string& name, const Schema& schema,
              const std::vector<Row>& rows,
              const std::vector<std::string>& stats_columns) {
  auto t = std::make_shared<Table>(name, schema, engine->cluster().num_nodes);
  for (const Row& row : rows) t->AppendRow(row);
  DYNOPT_CHECK(engine->catalog().RegisterTable(t).ok());
  DYNOPT_CHECK(engine->CollectBaseStats(name, stats_columns).ok());
}

// ---- Section A: predicate transfer prunes the shuffle -------------------

/// Three tables d-e-w. d's filter keeps keys ≡ 3 (mod 10), so 90% of e's
/// probe rows can never find a partner; d.pad is projected so the
/// filtered build stays over the broadcast threshold and every join is a
/// hash shuffle (predicate transfer only applies there).
void BuildTransferTables(Engine* engine) {
  {
    std::vector<Row> rows;
    for (int i = 0; i < 30000; ++i) {
      rows.push_back({Value(int64_t{i}), Value(int64_t{i % 10}),
                      Value(std::string(100, 'd'))});
    }
    AddTable(engine, "d",
             Schema({{"d_k", ValueType::kInt64},
                     {"cat", ValueType::kInt64},
                     {"pad", ValueType::kString}}),
             rows, {"d_k", "cat"});
  }
  {
    // e.d_k spans [0, 20000): after d's filter only keys ≡ 3 (mod 10)
    // survive, so 90% of e is shuffled for nothing without transfer.
    std::vector<Row> rows;
    for (int i = 0; i < 40000; ++i) {
      rows.push_back({Value(int64_t{i % 20000}), Value(int64_t{i}),
                      Value(std::string(64, 'e'))});
    }
    AddTable(engine, "e",
             Schema({{"d_k", ValueType::kInt64},
                     {"e_j", ValueType::kInt64},
                     {"pad", ValueType::kString}}),
             rows, {"d_k", "e_j"});
  }
  {
    std::vector<Row> rows;
    for (int i = 0; i < 20000; ++i) {
      rows.push_back({Value(int64_t{i}), Value(std::string(48, 'w'))});
    }
    AddTable(engine, "w",
             Schema({{"w_j", ValueType::kInt64}, {"pad", ValueType::kString}}),
             rows, {"w_j"});
  }
}

QuerySpec TransferQuery() {
  QuerySpec spec;
  spec.tables = {{"d", "d", false, true, {}},
                 {"e", "e", false, false, {}},
                 {"w", "w", false, false, {}}};
  spec.predicates = {{"d", Eq(Col("d", "cat"), Lit(Value(int64_t{3})))}};
  spec.joins = {{"d", "e", {{"d.d_k", "e.d_k"}}},
                {"e", "w", {{"e.e_j", "w.w_j"}}}};
  spec.projections = {"d.cat", "d.pad", "e.e_j", "w.w_j"};
  spec.NormalizeJoins();
  return spec;
}

std::vector<Cell> RunTransferSection() {
  Engine engine;
  BuildTransferTables(&engine);
  const QuerySpec spec = TransferQuery();

  std::vector<Cell> cells;
  std::vector<Row> reference;
  for (bool transfer : {false, true}) {
    engine.mutable_cluster().sketch.enable_predicate_transfer = transfer;
    DynamicOptimizer optimizer(&engine);
    auto result = optimizer.Run(spec);
    DYNOPT_CHECK(result.ok());
    if (!transfer) {
      reference = SortedRows(result.value());
    } else {
      // Bloom filters have no false negatives: the result is identical.
      DYNOPT_CHECK(SortedRows(result.value()) == reference);
    }
    cells.push_back(MakeCell("transfer", transfer ? "pt-on" : "pt-off",
                             "dynamic", result.value()));
  }
  engine.mutable_cluster().sketch.enable_predicate_transfer = false;

  DYNOPT_CHECK(cells[0].pt_pruned_bytes == 0);
  DYNOPT_CHECK(cells[0].pt_filter_bytes == 0);
  DYNOPT_CHECK(cells[1].pt_pruned_rows > 0);
  DYNOPT_CHECK(cells[1].pt_pruned_bytes > 0);
  // The shuffle shrank by more than the filters cost to ship.
  DYNOPT_CHECK(cells[1].bytes_shuffled < cells[0].bytes_shuffled);
  DYNOPT_CHECK(cells[1].bytes_shuffled + cells[1].pt_filter_bytes <
               cells[0].bytes_shuffled);
  return cells;
}

std::vector<Cell> RunTransferQ9Section() {
  // A paper evaluation query: TPC-H Q9 at bench sf, where the filtered
  // part and orders intermediates prune most of lineitem's shuffle.
  Engine engine;
  TpchOptions tpch;
  tpch.sf = GeneratorSfForPaperSf(10);
  DYNOPT_CHECK(LoadTpch(&engine, tpch).ok());
  auto query = TpchQ9(&engine);
  DYNOPT_CHECK(query.ok());

  std::vector<Cell> cells;
  std::vector<Row> reference;
  for (bool transfer : {false, true}) {
    engine.mutable_cluster().sketch.enable_predicate_transfer = transfer;
    DynamicOptimizer optimizer(&engine);
    auto result = optimizer.Run(query.value());
    DYNOPT_CHECK(result.ok());
    if (!transfer) {
      reference = SortedRows(result.value());
    } else {
      DYNOPT_CHECK(SortedRows(result.value()) == reference);
    }
    cells.push_back(MakeCell("transfer-q9", transfer ? "pt-on" : "pt-off",
                             "dynamic", result.value()));
  }

  DYNOPT_CHECK(cells[1].pt_pruned_rows > 0);
  DYNOPT_CHECK(cells[1].pt_pruned_bytes > 0);
  DYNOPT_CHECK(cells[1].bytes_shuffled < cells[0].bytes_shuffled);
  return cells;
}

// ---- Section B: sketch-dynamic on the misestimation chain ---------------

/// bench_feedback's Section-B tables: f carries two perfectly correlated
/// predicates (independence underestimates 10x), the g2/h2 join shares a
/// hot value on 30% of each side (the ndv quotient misses ~100x), and
/// wide i punishes a misplanned tail.
void BuildChainTables(Engine* engine) {
  {
    std::vector<Row> rows;
    for (int i = 0; i < 6000; ++i) {
      rows.push_back({Value(int64_t{i % 600}), Value(int64_t{i % 10}),
                      Value(int64_t{i % 10}), Value(std::string(40, 'f'))});
    }
    AddTable(engine, "f",
             Schema({{"f_k", ValueType::kInt64},
                     {"c1", ValueType::kInt64},
                     {"c2", ValueType::kInt64},
                     {"pad", ValueType::kString}}),
             rows, {"f_k", "c1", "c2"});
  }
  {
    std::vector<Row> rows;
    for (int i = 0; i < 600; ++i) {
      rows.push_back({Value(int64_t{i}),
                      Value(int64_t{i < 180 ? 7 : 1000 + i})});
    }
    AddTable(engine, "g",
             Schema({{"g_k", ValueType::kInt64}, {"g2", ValueType::kInt64}}),
             rows, {"g_k", "g2"});
  }
  {
    std::vector<Row> rows;
    for (int i = 0; i < 1500; ++i) {
      rows.push_back({Value(int64_t{i < 450 ? 7 : 100000 + i}),
                      Value(int64_t{i})});
    }
    AddTable(engine, "h",
             Schema({{"h2", ValueType::kInt64}, {"h_j", ValueType::kInt64}}),
             rows, {"h2", "h_j"});
  }
  {
    std::vector<Row> rows;
    for (int i = 0; i < 20000; ++i) {
      rows.push_back({Value(int64_t{i}), Value(std::string(48, 'i'))});
    }
    AddTable(engine, "i",
             Schema({{"i_j", ValueType::kInt64}, {"pad", ValueType::kString}}),
             rows, {"i_j"});
  }
}

QuerySpec ChainQuery() {
  QuerySpec spec;
  spec.tables = {{"f", "f", false, true, {}},
                 {"g", "g", false, false, {}},
                 {"h", "h", false, false, {}},
                 {"i", "i", false, false, {}}};
  spec.predicates = {{"f", Eq(Col("f", "c1"), Lit(Value(int64_t{3})))},
                     {"f", Eq(Col("f", "c2"), Lit(Value(int64_t{3})))}};
  spec.joins = {{"f", "g", {{"f.f_k", "g.g_k"}}},
                {"g", "h", {{"g.g2", "h.h2"}}},
                {"h", "i", {{"h.h_j", "i.i_j"}}}};
  spec.projections = {"f.c1", "g.g2", "h.h_j", "i.i_j"};
  spec.NormalizeJoins();
  return spec;
}

std::vector<Cell> RunChainSection() {
  Engine engine;
  BuildChainTables(&engine);
  const QuerySpec spec = ChainQuery();

  std::vector<Cell> cells;
  std::vector<Row> reference;
  std::shared_ptr<const JoinTree> hint;
  for (const char* name : kOptimizers) {
    std::unique_ptr<Optimizer> optimizer;
    if (std::strcmp(name, "dynamic") == 0) {
      optimizer = std::make_unique<DynamicOptimizer>(&engine);
    } else if (std::strcmp(name, "best-order") == 0) {
      DYNOPT_CHECK(hint != nullptr);  // dynamic runs first.
      optimizer = std::make_unique<BestOrderOptimizer>(&engine, hint);
    } else if (std::strcmp(name, "cost-based") == 0) {
      optimizer = std::make_unique<StaticCostBasedOptimizer>(&engine);
    } else if (std::strcmp(name, "pilot-run") == 0) {
      optimizer = std::make_unique<PilotRunOptimizer>(&engine);
    } else if (std::strcmp(name, "ingres-like") == 0) {
      optimizer = std::make_unique<IngresLikeOptimizer>(&engine);
    } else if (std::strcmp(name, "worst-order") == 0) {
      optimizer = std::make_unique<WorstOrderOptimizer>(&engine);
    } else {
      DYNOPT_CHECK(std::strcmp(name, "sketch-dynamic") == 0);
      optimizer = std::make_unique<SketchDynamicOptimizer>(&engine);
    }
    auto result = optimizer->Run(spec);
    DYNOPT_CHECK(result.ok());
    if (cells.empty()) {
      reference = SortedRows(result.value());
      hint = result->join_tree;
    } else {
      DYNOPT_CHECK(SortedRows(result.value()) == reference);
    }
    cells.push_back(MakeCell("chain", name, name, result.value()));
  }

  // The acceptance claim: re-planning from AGMS estimates at each
  // checkpoint is at least as good as the best existing dynamic strategy
  // on a chain built to fool the formula-based estimators.
  double best_dynamic = -1;
  double sketch = -1;
  for (const Cell& c : cells) {
    if (c.optimizer == "dynamic" || c.optimizer == "ingres-like" ||
        c.optimizer == "pilot-run") {
      if (best_dynamic < 0 || c.sim_seconds < best_dynamic) {
        best_dynamic = c.sim_seconds;
      }
    }
    if (c.optimizer == "sketch-dynamic") sketch = c.sim_seconds;
  }
  DYNOPT_CHECK(best_dynamic > 0 && sketch > 0);
  DYNOPT_CHECK(sketch <= best_dynamic);
  return cells;
}

// ---- JSON ---------------------------------------------------------------

void WriteCells(std::ostream& os, const char* key,
                const std::vector<Cell>& cells, bool trailing_comma) {
  os << "  \"" << key << "\": [";
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"config\": \"" << c.config
       << "\", \"optimizer\": \"" << c.optimizer
       << "\", \"sim_seconds\": " << c.sim_seconds
       << ", \"bytes_shuffled\": " << c.bytes_shuffled
       << ", \"pt_filter_bytes\": " << c.pt_filter_bytes
       << ", \"pt_pruned_rows\": " << c.pt_pruned_rows
       << ", \"pt_pruned_bytes\": " << c.pt_pruned_bytes
       << ", \"rows\": " << c.rows << ", \"plan\": \"" << c.plan << "\"}";
  }
  os << "\n  ]" << (trailing_comma ? ",\n" : "\n");
}

int Main(int argc, char** argv) {
  std::string out_path = "BENCH_sketch.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--out <path>]\n", argv[0]);
      return 2;
    }
  }

  std::printf("=== bench_sketch: predicate transfer + sketch planning ===\n");
  const std::vector<Cell> transfer = RunTransferSection();
  const std::vector<Cell> transfer_q9 = RunTransferQ9Section();
  const std::vector<Cell> chain = RunChainSection();

  auto print = [](const char* section, const std::vector<Cell>& cells) {
    for (const Cell& c : cells) {
      std::printf("%-12s %-14s sim=%9.3fs shuffled=%9llu B filter=%6llu B "
                  "pruned=%7llu rows / %9llu B  %s\n",
                  section, c.config.c_str(), c.sim_seconds,
                  static_cast<unsigned long long>(c.bytes_shuffled),
                  static_cast<unsigned long long>(c.pt_filter_bytes),
                  static_cast<unsigned long long>(c.pt_pruned_rows),
                  static_cast<unsigned long long>(c.pt_pruned_bytes),
                  c.plan.c_str());
    }
  };
  print("transfer", transfer);
  print("transfer-q9", transfer_q9);
  print("chain", chain);

  std::ofstream json(out_path);
  json << "{\n  \"benchmark\": \"sketch\",\n";
  WriteCells(json, "transfer", transfer, true);
  WriteCells(json, "transfer_q9", transfer_q9, true);
  WriteCells(json, "chain", chain, true);
  json << "  \"records\": " << RecordsToJson() << "\n}\n";
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dynopt

int main(int argc, char** argv) { return dynopt::bench::Main(argc, argv); }
