// Memory-governance benchmark: what does running under a per-node join
// memory budget cost each of the six optimization strategies?
//
// Section A — budget sweep. For Q17 and Q9, the per-node join memory
// budget is swept from unlimited down to a few KB (the simulator's 256KB
// broadcast threshold stands for ~256MB of per-node join memory, so the
// smaller steps model heavily oversubscribed nodes). Joins whose build
// side exceeds the budget take the grace hash join path: both sides are
// hash-partitioned to checksummed spill files and joined recursively, and
// the extra disk passes are metered into simulated seconds. Every run's
// result set is verified against the unlimited-budget baseline — a single
// query must always complete by degrading, never with kResourceExhausted.
//
// Section B — concurrent admission. A batch of queries is pushed through
// the AdmissionController with fewer slots than queries, recording each
// query's queue wait and verifying results are unaffected by concurrency.
//
// Usage: bench_memory_pressure [--sf <paper_sf>] [--out <path>]
// Writes BENCH_memory.json.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "common/logging.h"
#include "common/query_context.h"
#include "opt/dynamic_optimizer.h"
#include "opt/ingres_optimizer.h"
#include "opt/order_baselines.h"
#include "opt/pilot_run_optimizer.h"
#include "opt/static_optimizer.h"
#include "storage/serde.h"

namespace dynopt {
namespace bench {
namespace {

const char* const kMemoryQueries[] = {"q17", "q9"};

/// Unlimited first (the baseline), then halving steps through the 256KB
/// stand-in default down to budgets small enough to force spilling even at
/// bench scale (per-partition build sides shrink with the generator sf).
const uint64_t kBudgets[] = {0,         256 * 1024, 128 * 1024, 64 * 1024,
                             32 * 1024, 8 * 1024,   2 * 1024};

std::unique_ptr<Optimizer> MakeOptimizer(
    Engine* engine, const std::string& name,
    std::shared_ptr<const JoinTree> best_order_hint) {
  if (name == "dynamic") return std::make_unique<DynamicOptimizer>(engine);
  if (name == "cost-based") {
    return std::make_unique<StaticCostBasedOptimizer>(engine);
  }
  if (name == "worst-order") {
    return std::make_unique<WorstOrderOptimizer>(engine);
  }
  if (name == "pilot-run") return std::make_unique<PilotRunOptimizer>(engine);
  if (name == "ingres-like") {
    return std::make_unique<IngresLikeOptimizer>(engine);
  }
  DYNOPT_CHECK(name == "best-order");
  return std::make_unique<BestOrderOptimizer>(engine,
                                              std::move(best_order_hint));
}

struct Reference {
  std::vector<std::string> columns;
  std::vector<Row> sorted_rows;
  std::shared_ptr<const JoinTree> tree;
};

void VerifyRows(const OptimizerRunResult& result, const Reference& reference,
                const std::string& context) {
  std::vector<Row> rows = result.rows;
  SortRows(&rows);
  if (rows != reference.sorted_rows || result.columns != reference.columns) {
    std::fprintf(stderr, "FATAL: %s diverged from unlimited-budget "
                 "reference\n", context.c_str());
    std::abort();
  }
}

struct BudgetSweepRow {
  std::string query;
  std::string optimizer;
  uint64_t budget_bytes = 0;
  double sim_seconds = 0;
  double spill_overhead_seconds = 0;  ///< vs the unlimited baseline.
  uint64_t spilled_bytes = 0;
  uint64_t spill_partitions = 0;
  uint64_t peak_memory_bytes = 0;
};

struct AdmissionRow {
  std::string query;
  int query_index = 0;
  int max_concurrent = 0;
  double queue_wait_seconds = 0;
  double sim_seconds = 0;
};

int Main(int argc, char** argv) {
  int paper_sf = 10;
  std::string out_path = "BENCH_memory.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sf") == 0 && i + 1 < argc) {
      paper_sf = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--sf <paper_sf>] [--out <path>]\n",
                   argv[0]);
      return 2;
    }
  }

  Engine* engine = GetEngine(paper_sf, /*with_indexes=*/false);
  std::printf(
      "=== bench_memory_pressure: paper_sf=%d (generator sf %.2f) ===\n",
      paper_sf, GeneratorSfForPaperSf(paper_sf));

  // ---- Section A: budget sweep ------------------------------------------
  std::vector<BudgetSweepRow> sweep_rows;
  uint64_t total_spilled = 0;
  for (const char* query_name : kMemoryQueries) {
    auto query_or = GetQuery(engine, query_name);
    DYNOPT_CHECK(query_or.ok());
    const QuerySpec query = query_or.value();

    // Unlimited-budget reference from the dynamic strategy; also supplies
    // the best-order hint.
    engine->mutable_cluster().memory.join_memory_budget_bytes = 0;
    Reference ref;
    {
      DynamicOptimizer dynamic(engine);
      auto result = dynamic.Run(query);
      DYNOPT_CHECK(result.ok());
      ref.columns = result->columns;
      ref.sorted_rows = result->rows;
      SortRows(&ref.sorted_rows);
      ref.tree = result->join_tree;
    }

    std::printf("\n-- %s: per-node join budget sweep --\n", query_name);
    // Baselines per strategy at unlimited budget, then the governed runs.
    double baseline_sim[6] = {0};
    for (uint64_t budget : kBudgets) {
      engine->mutable_cluster().memory.join_memory_budget_bytes = budget;
      for (size_t o = 0; o < 6; ++o) {
        const std::string name = kOptimizers[o];
        QueryContext ctx(std::string(query_name) + "/" + name);
        auto optimizer = MakeOptimizer(engine, name, ref.tree);
        optimizer->set_context(&ctx);
        auto result = optimizer->Run(query);
        DYNOPT_CHECK(result.ok());  // Degrade via spill, never refuse.
        VerifyRows(result.value(), ref,
                   name + " " + query_name + " budget=" +
                       std::to_string(budget));
        if (budget == 0) baseline_sim[o] = result->metrics.simulated_seconds;

        BudgetSweepRow row;
        row.query = query_name;
        row.optimizer = name;
        row.budget_bytes = budget;
        row.sim_seconds = result->metrics.simulated_seconds;
        row.spill_overhead_seconds =
            result->metrics.simulated_seconds - baseline_sim[o];
        row.spilled_bytes = result->metrics.spilled_bytes;
        row.spill_partitions = result->metrics.spill_partitions;
        row.peak_memory_bytes = result->metrics.peak_memory_bytes;
        total_spilled += row.spilled_bytes;
        std::printf("%-12s budget=%-8llu sim=%9.3fs  overhead=%8.3fs  "
                    "spilled=%9llu B in %4llu parts  peak=%8llu B\n",
                    name.c_str(),
                    static_cast<unsigned long long>(budget),
                    row.sim_seconds, row.spill_overhead_seconds,
                    static_cast<unsigned long long>(row.spilled_bytes),
                    static_cast<unsigned long long>(row.spill_partitions),
                    static_cast<unsigned long long>(row.peak_memory_bytes));

        // No spill file may outlive its query.
        DYNOPT_CHECK(CountFilesWithPrefix(engine->cluster().spill_directory,
                                          ctx.SpillFilePrefix()) == 0);

        Record record;
        record.figure = "memory@" + std::to_string(budget);
        record.query = query_name;
        record.paper_sf = paper_sf;
        record.optimizer = name;
        record.sim_seconds = result->metrics.simulated_seconds;
        record.wall_seconds = result->wall_seconds;
        record.reopt_seconds = result->metrics.reopt_seconds;
        record.stats_seconds = result->metrics.stats_seconds;
        SetWallBreakdown(&record, result->metrics, result->profile.get());
        record.rows = result->rows.size();
        AddRecord(std::move(record));
      }
    }
  }
  engine->mutable_cluster().memory.join_memory_budget_bytes = 0;
  DYNOPT_CHECK(total_spilled > 0);  // The sweep must have engaged the path.

  // Collect sweep rows back out of the records (keeps one source of truth).
  for (const Record& r : Records()) {
    if (r.figure.rfind("memory@", 0) != 0) continue;
    BudgetSweepRow row;
    row.query = r.query;
    row.optimizer = r.optimizer;
    row.budget_bytes = std::strtoull(r.figure.c_str() + 7, nullptr, 10);
    row.sim_seconds = r.sim_seconds;
    row.spilled_bytes = r.spilled_bytes;
    row.spill_partitions = r.spill_partitions;
    row.peak_memory_bytes = r.peak_memory_bytes;
    sweep_rows.push_back(std::move(row));
  }

  // ---- Section B: concurrent admission ----------------------------------
  constexpr int kConcurrentQueries = 8;
  constexpr int kSlots = 2;
  engine->mutable_cluster().admission.max_concurrent_queries = kSlots;
  engine->mutable_cluster().admission.max_queue_depth = kConcurrentQueries;
  engine->mutable_cluster().admission.queue_timeout_seconds = 600.0;
  engine->mutable_cluster().memory.engine_budget_bytes = 256ull << 20;
  engine->mutable_cluster().memory.query_reservation_bytes = 8ull << 20;
  engine->RearmAdmission();

  std::printf("\n-- admission: %d queries through %d slots --\n",
              kConcurrentQueries, kSlots);
  Reference q17_ref;
  {
    auto query_or = GetQuery(engine, "q17");
    DYNOPT_CHECK(query_or.ok());
    DynamicOptimizer dynamic(engine);
    auto result = dynamic.Run(query_or.value());
    DYNOPT_CHECK(result.ok());
    q17_ref.columns = result->columns;
    q17_ref.sorted_rows = result->rows;
    SortRows(&q17_ref.sorted_rows);
    q17_ref.tree = result->join_tree;
  }
  std::vector<AdmissionRow> admission_rows(kConcurrentQueries);
  {
    std::vector<std::thread> threads;
    threads.reserve(kConcurrentQueries);
    for (int q = 0; q < kConcurrentQueries; ++q) {
      threads.emplace_back([&, q]() {
        auto query_or = GetQuery(engine, "q17");
        DYNOPT_CHECK(query_or.ok());
        QueryContext ctx("admitted-" + std::to_string(q));
        auto ticket = engine->admission().Admit(&ctx);
        DYNOPT_CHECK(ticket.ok());
        DynamicOptimizer optimizer(engine);
        optimizer.set_context(&ctx);
        auto result = optimizer.Run(query_or.value());
        DYNOPT_CHECK(result.ok());
        VerifyRows(result.value(), q17_ref,
                   "admitted query " + std::to_string(q));
        AdmissionRow& row = admission_rows[static_cast<size_t>(q)];
        row.query = "q17";
        row.query_index = q;
        row.max_concurrent = kSlots;
        row.queue_wait_seconds = ctx.queue_wait_seconds;
        row.sim_seconds = result->metrics.simulated_seconds;
      });
    }
    for (auto& t : threads) t.join();
  }
  for (const AdmissionRow& row : admission_rows) {
    std::printf("query %d: queue_wait=%.4fs sim=%.3fs\n", row.query_index,
                row.queue_wait_seconds, row.sim_seconds);
  }

  // ---- JSON -------------------------------------------------------------
  std::ofstream json(out_path);
  json << "{\n"
       << "  \"benchmark\": \"memory_pressure\",\n"
       << "  \"paper_sf\": " << paper_sf << ",\n"
       << "  \"generator_sf\": " << GeneratorSfForPaperSf(paper_sf) << ",\n"
       << "  \"budget_sweep\": [";
  for (size_t i = 0; i < sweep_rows.size(); ++i) {
    const BudgetSweepRow& r = sweep_rows[i];
    json << (i == 0 ? "\n" : ",\n") << "    {\"query\": \"" << r.query
         << "\", \"optimizer\": \"" << r.optimizer
         << "\", \"budget_bytes\": " << r.budget_bytes
         << ", \"sim_seconds\": " << r.sim_seconds
         << ", \"spilled_bytes\": " << r.spilled_bytes
         << ", \"spill_partitions\": " << r.spill_partitions
         << ", \"peak_memory_bytes\": " << r.peak_memory_bytes << "}";
  }
  json << "\n  ],\n  \"admission\": [";
  for (size_t i = 0; i < admission_rows.size(); ++i) {
    const AdmissionRow& r = admission_rows[i];
    json << (i == 0 ? "\n" : ",\n") << "    {\"query\": \"" << r.query
         << "\", \"query_index\": " << r.query_index
         << ", \"max_concurrent\": " << r.max_concurrent
         << ", \"queue_wait_seconds\": " << r.queue_wait_seconds
         << ", \"sim_seconds\": " << r.sim_seconds << "}";
  }
  json << "\n  ],\n  \"records\": " << RecordsToJson() << "\n}\n";
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dynopt

int main(int argc, char** argv) { return dynopt::bench::Main(argc, argv); }
