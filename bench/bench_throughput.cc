// Sustained-traffic overload benchmark: what does the resilient serving
// layer buy when more clients arrive than the engine has slots?
//
// Section A — shedding ablation. N closed-loop clients push q17 through
// `slots` concurrent-query slots under deterministic fault injection, each
// query carrying a wall-clock deadline (its SLO). Two modes run the same
// traffic:
//
//   fifo      — the pre-resilience controller: one priority class, no
//               shedding, no degradation, no retry budget, no watchdog,
//               no retry jitter. Queues grow until waiters blow their
//               deadlines *inside* the engine: a deeply queued query gets
//               admitted with almost no budget left, occupies a slot, and
//               is cancelled at its first checkpoint — wasted slot time.
//   resilient — mixed priorities (client % 3), weighted-fair slots,
//               depth+wait load shedding, memory/strategy degradation
//               under pressure, an engine retry budget with jittered
//               backoff, and the query watchdog. Overflow traffic fails
//               FAST at arrival (shed) instead of wasting slot time, so
//               goodput (queries completed within their deadline) and
//               high-priority tail latency both improve.
//
// Per mode the bench reports goodput, per-priority-class p50/p99 latency,
// and shed/degraded/timeout/cancelled counts; the JSON is the ablation.
//
// Section B — watchdog under traffic. Stuck queries (never heartbeat) are
// mixed into live traffic; the watchdog stall-kills them, normal queries
// complete, and nothing leaks (slots, reservations, spill files).
//
// With --trace the resilient run streams its spans through the tracer's
// incremental Chrome-trace sink (O(1) span memory over a sustained run).
//
// Hard assertions are structural only (results correct, counts consistent,
// no leaks) — throughput ordering lives in the JSON, not in a CHECK, so a
// loaded CI host cannot flake the build.
//
// Usage: bench_throughput [--sf <paper_sf>] [--clients N] [--per-client N]
//                         [--slots N] [--deadline-ms MS] [--trace]
//                         [--out <path>]
// Writes BENCH_throughput.json.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "common/logging.h"
#include "common/metrics_registry.h"
#include "common/query_context.h"
#include "common/tracer.h"
#include "opt/degrade.h"
#include "opt/dynamic_optimizer.h"
#include "opt/recovery.h"
#include "storage/serde.h"

namespace dynopt {
namespace bench {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Latency percentile over a sample (returns 0 on empty).
double PercentileMs(std::vector<double> samples, double p) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const double rank = p * static_cast<double>(samples.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return (samples[lo] * (1 - frac) + samples[hi] * frac) * 1e3;
}

struct ClassStats {
  int submitted = 0;
  int completed = 0;
  std::vector<double> latencies;  ///< Seconds, successful queries only.
};

struct ModeResult {
  std::string mode;
  double elapsed_seconds = 0;
  double goodput_qps = 0;  ///< In-deadline completions per second.
  int completed_in_deadline = 0;
  int completed_late = 0;
  int shed = 0;
  int admission_timeouts = 0;
  int rejected = 0;
  int deadline_cancelled = 0;
  int failed = 0;
  uint64_t degraded_memory = 0;
  uint64_t degraded_strategy = 0;
  uint64_t retry_budget_denied = 0;
  uint64_t watchdog_stall_kills = 0;
  ClassStats classes[kNumQueryPriorities];
};

struct TrafficConfig {
  int clients = 8;
  int per_client = 6;
  int slots = 2;
  double deadline_seconds = 0.25;
  bool resilient = false;
};

uint64_t CounterValue(Engine* engine, const char* name) {
  // Engine-scoped registries: the admission/executor counters this bench
  // tracks land in the engine's own registry.
  return engine->metrics_registry().counter(name)->value();
}

/// One closed-loop traffic run over q17. `expected_rows` is the fault-free
/// sorted reference; every successful query is verified against it.
ModeResult RunTraffic(Engine* engine, const QuerySpec& query,
                      const std::vector<Row>& expected_rows,
                      const TrafficConfig& traffic) {
  auto& cluster = engine->mutable_cluster();
  cluster.admission.max_concurrent_queries = traffic.slots;
  cluster.admission.max_queue_depth = traffic.clients * 2;
  cluster.admission.queue_timeout_seconds = traffic.deadline_seconds;
  cluster.memory.engine_budget_bytes = 512ull << 20;
  cluster.memory.query_reservation_bytes = 4ull << 20;
  if (traffic.resilient) {
    cluster.admission.shed_enabled = true;
    cluster.admission.shed_queue_depth = traffic.clients / 2;
    cluster.admission.shed_queue_wait_seconds =
        traffic.deadline_seconds * 0.5;
    cluster.admission.degrade_queue_depth =
        std::max(2, traffic.clients / 4);
    cluster.admission.degrade_strategy = true;
    cluster.retry_budget.max_tokens = 500;
    cluster.retry_budget.refill_per_second = 200;
    cluster.fault.backoff.jitter_fraction = 0.25;
    cluster.fault.backoff.jitter_seed = 42;
    cluster.watchdog.enabled = true;
    cluster.watchdog.poll_interval_seconds = 0.01;
    cluster.watchdog.progress_timeout_seconds = 5.0;
  } else {
    cluster.admission.shed_enabled = false;
    cluster.admission.shed_queue_depth = 0;
    cluster.admission.shed_queue_wait_seconds = 0;
    cluster.admission.degrade_queue_depth = 0;
    cluster.admission.degrade_strategy = false;
    cluster.retry_budget.max_tokens = 0;  // Unlimited (budget off).
    cluster.retry_budget.refill_per_second = 0;
    cluster.fault.backoff.jitter_fraction = 0;
    cluster.watchdog.enabled = false;
  }
  engine->ArmFaultInjection();  // Same seed either mode: same fault draw.
  engine->RearmAdmission();
  engine->RearmRetryBudget();
  engine->RearmWatchdog();

  const uint64_t degraded_mem0 = CounterValue(engine, "admission.degraded_memory");
  const uint64_t degraded_strat0 =
      CounterValue(engine, "admission.degraded_strategy");
  const uint64_t budget_denied0 = CounterValue(engine, "exec.retry_budget_denied");

  ModeResult mode;
  mode.mode = traffic.resilient ? "resilient" : "fifo";
  std::mutex mu;
  std::atomic<int> wrong_rows{0};
  const auto bench_start = Clock::now();
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(traffic.clients));
  for (int c = 0; c < traffic.clients; ++c) {
    clients.emplace_back([&, c]() {
      for (int i = 0; i < traffic.per_client; ++i) {
        const QueryPriority priority =
            traffic.resilient ? static_cast<QueryPriority>(c % 3)
                              : QueryPriority::kNormal;
        QueryContext ctx("tp-" + std::to_string(c) + "-" +
                         std::to_string(i));
        ctx.priority = priority;
        if (traffic.resilient) {
          ctx.estimated_memory_bytes =
              EstimateQueryReservationBytes(query, engine);
        }
        const auto t0 = Clock::now();
        ctx.set_timeout(traffic.deadline_seconds);
        auto ticket = engine->admission().Admit(&ctx);
        if (!ticket.ok()) {
          std::lock_guard<std::mutex> lock(mu);
          mode.classes[static_cast<int>(priority)].submitted++;
          const std::string& msg = ticket.status().message();
          if (ticket.status().code() == StatusCode::kCancelled) {
            mode.deadline_cancelled++;
          } else if (msg.find("shed") != std::string::npos) {
            mode.shed++;
          } else if (msg.find("timed out") != std::string::npos) {
            mode.admission_timeouts++;
          } else {
            mode.rejected++;
          }
          continue;
        }
        WatchdogRegistration watched(&engine->watchdog(), &ctx);
        auto optimizer = ApplyStrategyDowngrade(
            std::make_unique<DynamicOptimizer>(engine), engine, &ctx);
        optimizer->set_context(&ctx);
        auto run = RunWithRecovery(optimizer.get(), engine, query,
                                   RecoveryPolicy{});
        ticket->Release();
        const double latency = SecondsSince(t0);
        std::lock_guard<std::mutex> lock(mu);
        ClassStats& cls = mode.classes[static_cast<int>(priority)];
        cls.submitted++;
        if (!run.ok()) {
          if (run.status().code() == StatusCode::kCancelled) {
            mode.deadline_cancelled++;
          } else {
            mode.failed++;
          }
          continue;
        }
        std::vector<Row> rows = std::move(run->rows);
        SortRows(&rows);
        if (rows != expected_rows) ++wrong_rows;
        cls.completed++;
        cls.latencies.push_back(latency);
        if (latency <= traffic.deadline_seconds) {
          mode.completed_in_deadline++;
        } else {
          mode.completed_late++;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  mode.elapsed_seconds = SecondsSince(bench_start);
  mode.goodput_qps = mode.elapsed_seconds > 0
                         ? mode.completed_in_deadline / mode.elapsed_seconds
                         : 0;
  mode.degraded_memory =
      CounterValue(engine, "admission.degraded_memory") - degraded_mem0;
  mode.degraded_strategy =
      CounterValue(engine, "admission.degraded_strategy") - degraded_strat0;
  mode.retry_budget_denied =
      CounterValue(engine, "exec.retry_budget_denied") - budget_denied0;
  mode.watchdog_stall_kills = engine->watchdog().stall_kills();

  // Structural invariants: correct results, consistent accounting, no
  // slot/reservation leaks.
  DYNOPT_CHECK(wrong_rows.load() == 0);
  const int total = mode.completed_in_deadline + mode.completed_late +
                    mode.shed + mode.admission_timeouts + mode.rejected +
                    mode.deadline_cancelled + mode.failed;
  DYNOPT_CHECK(total == traffic.clients * traffic.per_client);
  DYNOPT_CHECK(engine->admission().running() == 0);
  DYNOPT_CHECK(engine->admission().queued() == 0);
  DYNOPT_CHECK(engine->memory().used() == 0);
  return mode;
}

void PrintMode(const ModeResult& mode, double deadline_seconds) {
  std::printf(
      "\n-- %s: goodput=%.2f q/s  in-deadline=%d late=%d shed=%d "
      "timeout=%d rejected=%d cancelled=%d failed=%d (%.2fs elapsed, "
      "deadline %.0fms)\n",
      mode.mode.c_str(), mode.goodput_qps, mode.completed_in_deadline,
      mode.completed_late, mode.shed, mode.admission_timeouts,
      mode.rejected, mode.deadline_cancelled, mode.failed,
      mode.elapsed_seconds, deadline_seconds * 1e3);
  std::printf("   degraded: memory=%llu strategy=%llu  "
              "retry_budget_denied=%llu  stall_kills=%llu\n",
              static_cast<unsigned long long>(mode.degraded_memory),
              static_cast<unsigned long long>(mode.degraded_strategy),
              static_cast<unsigned long long>(mode.retry_budget_denied),
              static_cast<unsigned long long>(mode.watchdog_stall_kills));
  for (int p = 0; p < kNumQueryPriorities; ++p) {
    const ClassStats& cls = mode.classes[p];
    if (cls.submitted == 0) continue;
    std::printf("   %-6s submitted=%2d completed=%2d p50=%7.1fms "
                "p99=%7.1fms\n",
                QueryPriorityName(static_cast<QueryPriority>(p)),
                cls.submitted, cls.completed,
                PercentileMs(cls.latencies, 0.5),
                PercentileMs(cls.latencies, 0.99));
  }
}

void AppendModeJson(std::ofstream& json, const ModeResult& mode,
                    bool first) {
  json << (first ? "\n" : ",\n") << "    {\"mode\": \"" << mode.mode
       << "\", \"elapsed_seconds\": " << mode.elapsed_seconds
       << ", \"goodput_qps\": " << mode.goodput_qps
       << ", \"completed_in_deadline\": " << mode.completed_in_deadline
       << ", \"completed_late\": " << mode.completed_late
       << ", \"shed\": " << mode.shed
       << ", \"admission_timeouts\": " << mode.admission_timeouts
       << ", \"rejected\": " << mode.rejected
       << ", \"deadline_cancelled\": " << mode.deadline_cancelled
       << ", \"failed\": " << mode.failed
       << ", \"degraded_memory\": " << mode.degraded_memory
       << ", \"degraded_strategy\": " << mode.degraded_strategy
       << ", \"retry_budget_denied\": " << mode.retry_budget_denied
       << ", \"watchdog_stall_kills\": " << mode.watchdog_stall_kills
       << ", \"classes\": [";
  bool first_class = true;
  for (int p = 0; p < kNumQueryPriorities; ++p) {
    const ClassStats& cls = mode.classes[p];
    if (cls.submitted == 0) continue;
    json << (first_class ? "" : ", ") << "{\"priority\": \""
         << QueryPriorityName(static_cast<QueryPriority>(p))
         << "\", \"submitted\": " << cls.submitted
         << ", \"completed\": " << cls.completed
         << ", \"p50_ms\": " << PercentileMs(cls.latencies, 0.5)
         << ", \"p99_ms\": " << PercentileMs(cls.latencies, 0.99) << "}";
    first_class = false;
  }
  json << "]}";
}

/// Traffic stand-in for a wedged query: writes a spill file, then spins
/// without heartbeating until cancelled (the watchdog's job to notice).
class StuckOptimizer : public Optimizer {
 public:
  explicit StuckOptimizer(Engine* engine) : engine_(engine) {}
  std::string name() const override { return "stuck"; }
  Result<OptimizerRunResult> Run(const QuerySpec& query) override {
    (void)query;
    const std::string path = engine_->cluster().spill_directory + "/" +
                             ctx_->SpillFilePrefix() + "0.part";
    std::ofstream(path) << "stuck";
    while (!ctx_->cancelled()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return ctx_->CheckAlive();
  }

 private:
  Engine* engine_;
};

struct WatchdogSection {
  int stuck_submitted = 0;
  uint64_t stall_kills = 0;
  int normal_completed = 0;
  int leaked_spill_files = 0;
};

/// Section B: stuck queries mixed into live traffic; the watchdog must
/// reclaim their slots while normal queries keep completing.
WatchdogSection RunWatchdogSection(Engine* engine, const QuerySpec& query,
                                   const std::vector<Row>& expected_rows) {
  auto& cluster = engine->mutable_cluster();
  cluster.admission.max_concurrent_queries = 3;
  cluster.admission.max_queue_depth = 16;
  cluster.admission.queue_timeout_seconds = 30.0;
  cluster.admission.shed_enabled = false;
  cluster.admission.degrade_queue_depth = 0;
  cluster.watchdog.enabled = true;
  cluster.watchdog.poll_interval_seconds = 0.01;
  cluster.watchdog.progress_timeout_seconds = 0.15;
  engine->DisarmFaultInjection();
  engine->RearmAdmission();
  engine->RearmRetryBudget();
  engine->RearmWatchdog();

  WatchdogSection section;
  section.stuck_submitted = 2;
  std::vector<std::string> stuck_prefixes;
  std::mutex mu;
  std::vector<std::thread> threads;
  for (int s = 0; s < section.stuck_submitted; ++s) {
    threads.emplace_back([&, s]() {
      QueryContext ctx("stuck-" + std::to_string(s));
      {
        std::lock_guard<std::mutex> lock(mu);
        stuck_prefixes.push_back(ctx.SpillFilePrefix());
      }
      auto ticket = engine->admission().Admit(&ctx);
      DYNOPT_CHECK(ticket.ok());
      WatchdogRegistration watched(&engine->watchdog(), &ctx);
      StuckOptimizer stuck(engine);
      stuck.set_context(&ctx);
      auto run = RunWithRecovery(&stuck, engine, query, RecoveryPolicy{});
      DYNOPT_CHECK(!run.ok());  // Stall-killed, never successful.
      ticket->Release();
    });
  }
  for (int n = 0; n < 4; ++n) {
    threads.emplace_back([&, n]() {
      QueryContext ctx("live-" + std::to_string(n));
      auto ticket = engine->admission().Admit(&ctx);
      DYNOPT_CHECK(ticket.ok());
      WatchdogRegistration watched(&engine->watchdog(), &ctx);
      DynamicOptimizer optimizer(engine);
      optimizer.set_context(&ctx);
      auto run = RunWithRecovery(&optimizer, engine, query,
                                 RecoveryPolicy{});
      ticket->Release();
      DYNOPT_CHECK(run.ok());
      std::vector<Row> rows = std::move(run->rows);
      SortRows(&rows);
      DYNOPT_CHECK(rows == expected_rows);
      std::lock_guard<std::mutex> lock(mu);
      section.normal_completed++;
    });
  }
  for (auto& t : threads) t.join();

  section.stall_kills = engine->watchdog().stall_kills();
  DYNOPT_CHECK(section.stall_kills ==
               static_cast<uint64_t>(section.stuck_submitted));
  DYNOPT_CHECK(engine->admission().running() == 0);
  DYNOPT_CHECK(engine->memory().used() == 0);
  for (const std::string& prefix : stuck_prefixes) {
    section.leaked_spill_files +=
        CountFilesWithPrefix(engine->cluster().spill_directory, prefix);
  }
  DYNOPT_CHECK(section.leaked_spill_files == 0);
  return section;
}

int Main(int argc, char** argv) {
  int paper_sf = 10;
  TrafficConfig traffic;
  double deadline_ms = 0;  // 0 = auto-size from a solo reference run.
  bool trace = false;
  std::string out_path = "BENCH_throughput.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sf") == 0 && i + 1 < argc) {
      paper_sf = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
      traffic.clients = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--per-client") == 0 && i + 1 < argc) {
      traffic.per_client = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--slots") == 0 && i + 1 < argc) {
      traffic.slots = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
      deadline_ms = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      trace = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--sf <paper_sf>] [--clients N] "
                   "[--per-client N] [--slots N] [--deadline-ms MS] "
                   "[--trace] [--out <path>]\n",
                   argv[0]);
      return 2;
    }
  }

  Engine* engine = GetEngine(paper_sf, /*with_indexes=*/false);
  const std::string spill_dir =
      std::filesystem::temp_directory_path().string() +
      "/dynopt_bench_throughput";
  std::filesystem::create_directories(spill_dir);
  engine->mutable_cluster().spill_directory = spill_dir;
  engine->mutable_cluster().materialize_to_disk = true;
  engine->mutable_cluster().fault.enabled = true;
  engine->mutable_cluster().fault.seed = 13;
  engine->mutable_cluster().fault.task_failure_probability = 0.05;
  engine->mutable_cluster().fault.corruption_probability = 0.02;

  auto query_or = GetQuery(engine, "q17");
  DYNOPT_CHECK(query_or.ok());
  const QuerySpec query = query_or.value();

  // Fault-free solo reference: correctness oracle + deadline auto-sizing.
  engine->DisarmFaultInjection();
  std::vector<Row> expected_rows;
  double solo_wall = 0;
  {
    DynamicOptimizer solo(engine);
    auto result = solo.Run(query);
    DYNOPT_CHECK(result.ok());
    expected_rows = std::move(result->rows);
    SortRows(&expected_rows);
    solo_wall = result->wall_seconds;
  }
  traffic.deadline_seconds =
      deadline_ms > 0 ? deadline_ms * 1e-3
                      : std::max(0.05, solo_wall * 5.0);

  std::printf("=== bench_throughput: paper_sf=%d clients=%d per_client=%d "
              "slots=%d deadline=%.0fms (solo q17 wall %.1fms) ===\n",
              paper_sf, traffic.clients, traffic.per_client, traffic.slots,
              traffic.deadline_seconds * 1e3, solo_wall * 1e3);

  // ---- Section A: shedding-off vs shedding-on ---------------------------
  traffic.resilient = false;
  ModeResult fifo = RunTraffic(engine, query, expected_rows, traffic);
  PrintMode(fifo, traffic.deadline_seconds);

  const std::string trace_path = out_path + ".trace.json";
  if (trace) {
    Tracer::Global().Enable();
    DYNOPT_CHECK(Tracer::Global().OpenStream(trace_path).ok());
  }
  traffic.resilient = true;
  ModeResult resilient = RunTraffic(engine, query, expected_rows, traffic);
  if (trace) {
    DYNOPT_CHECK(Tracer::Global().CloseStream().ok());
    Tracer::Global().Disable();
    Tracer::Global().Drain();
    std::printf("\nstreamed resilient-mode spans to %s\n",
                trace_path.c_str());
  }
  PrintMode(resilient, traffic.deadline_seconds);

  // ---- Section B: watchdog under traffic --------------------------------
  WatchdogSection watchdog = RunWatchdogSection(engine, query,
                                                expected_rows);
  std::printf("\n-- watchdog: %d stuck queries stall-killed (%llu kills), "
              "%d live queries completed, %d spill files leaked\n",
              watchdog.stuck_submitted,
              static_cast<unsigned long long>(watchdog.stall_kills),
              watchdog.normal_completed, watchdog.leaked_spill_files);

  // The benchmark's own traffic must leave the spill directory empty.
  DYNOPT_CHECK(CountFilesWithPrefix(spill_dir, "") == 0);

  // ---- JSON -------------------------------------------------------------
  std::ofstream json(out_path);
  json << "{\n"
       << "  \"benchmark\": \"throughput\",\n"
       << "  \"paper_sf\": " << paper_sf << ",\n"
       << "  \"query\": \"q17\",\n"
       << "  \"clients\": " << traffic.clients << ",\n"
       << "  \"per_client\": " << traffic.per_client << ",\n"
       << "  \"slots\": " << traffic.slots << ",\n"
       << "  \"deadline_ms\": " << traffic.deadline_seconds * 1e3 << ",\n"
       << "  \"solo_wall_ms\": " << solo_wall * 1e3 << ",\n"
       << "  \"modes\": [";
  AppendModeJson(json, fifo, /*first=*/true);
  AppendModeJson(json, resilient, /*first=*/false);
  json << "\n  ],\n"
       << "  \"watchdog\": {\"stuck_submitted\": "
       << watchdog.stuck_submitted
       << ", \"stall_kills\": " << watchdog.stall_kills
       << ", \"normal_completed\": " << watchdog.normal_completed
       << ", \"leaked_spill_files\": " << watchdog.leaked_spill_files
       << "}\n}\n";
  std::printf("\nwrote %s\n", out_path.c_str());

  std::error_code ec;
  std::filesystem::remove_all(spill_dir, ec);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dynopt

int main(int argc, char** argv) { return dynopt::bench::Main(argc, argv); }
