// Recovery-cost benchmark for the fault-injection subsystem: how much does
// a mid-query node failure cost each of the six optimization strategies?
//
// Section A — single-failure stage sweep. For Q17 and Q9, a one-shot
// query-level failure is injected at sampled kernel stages across each
// strategy's execution. The strategy is re-driven to completion through
// RunWithRecovery (opt/recovery.h): the checkpointing strategies (dynamic,
// ingres-like) resume from their last materialization checkpoint, the four
// static strategies restart from scratch. Recovery cost is everything the
// cluster charged beyond the fault-free baseline. For the dynamic strategy
// the sweep additionally prices the hypothetical whole-query restart
// (checkpoint work thrown away + aborted partial work) and checks the
// paper's Section-8 claim: once the first checkpoint exists, resuming is
// strictly cheaper than restarting — and the gap grows with stage position.
//
// Section B — failure-rate sweep. Task failures, stragglers and temp-file
// corruption at rates {0, 0.02, 0.05, 0.1, 0.2} for all six strategies,
// recording simulated seconds, recovery seconds, retries and speculative
// executions per run (also fed through the bench harness's record JSON).
//
// Every run's result set is verified against the fault-free reference.
//
// Usage: bench_fault_recovery [--sf <paper_sf>] [--out <path>]
// Writes BENCH_fault.json.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/logging.h"
#include "opt/dynamic_optimizer.h"
#include "opt/ingres_optimizer.h"
#include "opt/order_baselines.h"
#include "opt/pilot_run_optimizer.h"
#include "opt/recovery.h"
#include "opt/static_optimizer.h"

namespace dynopt {
namespace bench {
namespace {

const char* const kFaultQueries[] = {"q17", "q9"};
const double kFailureRates[] = {0.0, 0.02, 0.05, 0.1, 0.2};

std::unique_ptr<Optimizer> MakeOptimizer(
    Engine* engine, const std::string& name,
    std::shared_ptr<const JoinTree> best_order_hint) {
  if (name == "dynamic") return std::make_unique<DynamicOptimizer>(engine);
  if (name == "cost-based") {
    return std::make_unique<StaticCostBasedOptimizer>(engine);
  }
  if (name == "worst-order") {
    return std::make_unique<WorstOrderOptimizer>(engine);
  }
  if (name == "pilot-run") return std::make_unique<PilotRunOptimizer>(engine);
  if (name == "ingres-like") {
    return std::make_unique<IngresLikeOptimizer>(engine);
  }
  DYNOPT_CHECK(name == "best-order");
  return std::make_unique<BestOrderOptimizer>(engine,
                                              std::move(best_order_hint));
}

/// Fault-free reference for one query: the result set every faulted run
/// must still produce, and the dynamic join order used as the best-order
/// hint.
struct Reference {
  std::vector<std::string> columns;
  std::vector<Row> sorted_rows;
  std::shared_ptr<const JoinTree> tree;
};

/// Per (query, optimizer) fault-free costs.
struct Baseline {
  double sim_seconds = 0;
  int stages = 0;  ///< Kernel stages the strategy executes on this query.
};

void VerifyRows(const OptimizerRunResult& result, const Reference& reference,
                const std::string& context) {
  std::vector<Row> rows = result.rows;
  SortRows(&rows);
  if (rows != reference.sorted_rows || result.columns != reference.columns) {
    std::fprintf(stderr, "FATAL: %s diverged from fault-free reference\n",
                 context.c_str());
    std::abort();
  }
}

void Arm(Engine* engine, FaultInjectionConfig cfg) {
  cfg.enabled = true;
  engine->mutable_cluster().fault = cfg;
  engine->ArmFaultInjection();
}

/// Kernel stages `name` executes on `query`: a benign armed run (injector
/// on, every probability zero) counts them without perturbing anything.
int CountStages(Engine* engine, const std::string& name, const Reference& ref,
                const QuerySpec& query) {
  Arm(engine, FaultInjectionConfig());
  auto result = MakeOptimizer(engine, name, ref.tree)->Run(query);
  DYNOPT_CHECK(result.ok());
  const int stages = engine->fault_injector()->stages_started();
  engine->DisarmFaultInjection();
  return stages;
}

/// Up to `max_points` failure stages spread over [0, stages), always
/// including the first and last.
std::vector<int> SampleStages(int stages, int max_points) {
  std::set<int> picks;
  picks.insert(0);
  picks.insert(stages - 1);
  for (int i = 1; i < max_points - 1; ++i) {
    picks.insert(i * (stages - 1) / (max_points - 1));
  }
  return std::vector<int>(picks.begin(), picks.end());
}

struct SingleFailureRow {
  std::string query;
  std::string optimizer;
  int fail_at_stage = 0;
  int stages = 0;
  int resumes = 0;
  int restarts = 0;
  double wasted_seconds = 0;
  double total_paid_seconds = 0;
  double recovery_cost_seconds = 0;
  /// Dynamic strategy only: what the same failure would cost without the
  /// checkpoint (work accumulated at the checkpoint, thrown away, plus the
  /// aborted partial stage). Negative when not measured.
  double restart_cost_seconds = -1;
  double checkpoint_carried_seconds = -1;
};

struct RateSweepRow {
  std::string query;
  std::string optimizer;
  double rate = 0;
  int resumes = 0;
  int restarts = 0;
  double sim_seconds = 0;
  double recovery_seconds = 0;
  double wasted_seconds = 0;
  double total_paid_seconds = 0;
  uint64_t num_retries = 0;
  uint64_t speculative_executions = 0;
  uint64_t corrupted_blocks = 0;
};

/// Section-A measurement for the dynamic strategy: drive the failure by
/// hand so the discarded-work ledger and the cut checkpoint are observable,
/// then resume. Returns the row and enforces the resume-beats-restart
/// invariant once a checkpoint exists.
SingleFailureRow MeasureDynamicFailure(Engine* engine, const Reference& ref,
                                       const QuerySpec& query,
                                       const std::string& query_name,
                                       const Baseline& baseline, int fail_at) {
  FaultInjectionConfig cfg;
  cfg.fail_query_at_stage = fail_at;
  Arm(engine, cfg);

  DynamicOptimizer optimizer(engine);
  auto failed = optimizer.Run(query);
  DYNOPT_CHECK(!failed.ok());
  DYNOPT_CHECK(failed.status().retryable());
  DYNOPT_CHECK(optimizer.CanResume());
  const double wasted = engine->fault_injector()->aborted_work_seconds();
  const double carried =
      optimizer.last_checkpoint()->metrics.simulated_seconds;

  auto resumed = optimizer.ResumeFromLastCheckpoint();
  int guard = 0;
  while (!resumed.ok() && resumed.status().retryable() &&
         optimizer.CanResume() && ++guard < 8) {
    resumed = optimizer.ResumeFromLastCheckpoint();
  }
  DYNOPT_CHECK(resumed.ok());
  engine->DisarmFaultInjection();
  VerifyRows(resumed.value(), ref,
             "dynamic resume " + query_name + " fail_at=" +
                 std::to_string(fail_at));

  SingleFailureRow row;
  row.query = query_name;
  row.optimizer = "dynamic";
  row.fail_at_stage = fail_at;
  row.stages = baseline.stages;
  row.resumes = 1;
  row.wasted_seconds = wasted;
  row.total_paid_seconds = resumed->metrics.simulated_seconds + wasted;
  row.recovery_cost_seconds = row.total_paid_seconds - baseline.sim_seconds;
  // A restart re-pays the checkpointed prefix on top of losing the aborted
  // partial stage; resuming only loses the partial stage.
  row.restart_cost_seconds = carried + wasted;
  row.checkpoint_carried_seconds = carried;
  if (carried > 0) {
    DYNOPT_CHECK(row.recovery_cost_seconds < row.restart_cost_seconds);
  }
  return row;
}

SingleFailureRow MeasureRecoveredFailure(Engine* engine, const Reference& ref,
                                         const QuerySpec& query,
                                         const std::string& query_name,
                                         const std::string& name,
                                         const Baseline& baseline,
                                         int fail_at) {
  FaultInjectionConfig cfg;
  cfg.fail_query_at_stage = fail_at;
  Arm(engine, cfg);

  auto optimizer = MakeOptimizer(engine, name, ref.tree);
  RecoveryReport report;
  auto result = RunWithRecovery(optimizer.get(), engine, query,
                                RecoveryPolicy(), &report);
  DYNOPT_CHECK(result.ok());
  engine->DisarmFaultInjection();
  VerifyRows(result.value(), ref,
             name + " " + query_name + " fail_at=" + std::to_string(fail_at));

  SingleFailureRow row;
  row.query = query_name;
  row.optimizer = name;
  row.fail_at_stage = fail_at;
  row.stages = baseline.stages;
  row.resumes = report.resumes;
  row.restarts = report.restarts;
  row.wasted_seconds = report.wasted_seconds;
  row.total_paid_seconds = report.total_paid_seconds;
  row.recovery_cost_seconds = report.total_paid_seconds - baseline.sim_seconds;
  return row;
}

RateSweepRow MeasureRate(Engine* engine, const Reference& ref,
                         const QuerySpec& query,
                         const std::string& query_name,
                         const std::string& name, int paper_sf, double rate) {
  FaultInjectionConfig cfg;
  cfg.seed = 0xfa017 + static_cast<uint64_t>(rate * 1000);
  cfg.task_failure_probability = rate;
  cfg.straggler_probability = rate;
  cfg.straggler_multiplier = 4.0;
  cfg.corruption_probability = rate / 2;
  // High rates need headroom before a task retry budget (or repeated
  // re-materialization) escalates to a fatal error.
  cfg.backoff.max_attempts = 6;
  engine->mutable_cluster().materialize_to_disk = rate > 0;
  Arm(engine, cfg);

  auto optimizer = MakeOptimizer(engine, name, ref.tree);
  RecoveryReport report;
  auto result = RunWithRecovery(optimizer.get(), engine, query,
                                RecoveryPolicy(), &report);
  DYNOPT_CHECK(result.ok());
  engine->DisarmFaultInjection();
  engine->mutable_cluster().materialize_to_disk = false;
  VerifyRows(result.value(), ref,
             name + " " + query_name + " rate=" + std::to_string(rate));

  RateSweepRow row;
  row.query = query_name;
  row.optimizer = name;
  row.rate = rate;
  row.resumes = report.resumes;
  row.restarts = report.restarts;
  row.sim_seconds = result->metrics.simulated_seconds;
  row.recovery_seconds = result->metrics.recovery_seconds;
  row.wasted_seconds = report.wasted_seconds;
  row.total_paid_seconds = report.total_paid_seconds;
  row.num_retries = result->metrics.num_retries;
  row.speculative_executions = result->metrics.speculative_executions;
  row.corrupted_blocks = result->metrics.corrupted_blocks;

  // Also surface the run through the shared harness records so the fault
  // counters flow into the generic records JSON.
  Record record;
  record.figure = "fault@" + std::to_string(rate);
  record.query = query_name;
  record.paper_sf = paper_sf;
  record.optimizer = name;
  record.sim_seconds = result->metrics.simulated_seconds;
  record.wall_seconds = result->wall_seconds;
  record.reopt_seconds = result->metrics.reopt_seconds;
  record.stats_seconds = result->metrics.stats_seconds;
  SetWallBreakdown(&record, result->metrics, result->profile.get());
  record.rows = result->rows.size();
  AddRecord(std::move(record));
  return row;
}

int Main(int argc, char** argv) {
  int paper_sf = 10;
  std::string out_path = "BENCH_fault.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sf") == 0 && i + 1 < argc) {
      paper_sf = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--sf <paper_sf>] [--out <path>]\n",
                   argv[0]);
      return 2;
    }
  }

  Engine* engine = GetEngine(paper_sf, /*with_indexes=*/false);
  std::printf("=== bench_fault_recovery: paper_sf=%d (generator sf %.2f) ===\n",
              paper_sf, GeneratorSfForPaperSf(paper_sf));

  std::vector<SingleFailureRow> single_rows;
  std::vector<RateSweepRow> rate_rows;
  std::ostringstream baselines_json;
  baselines_json << "[";
  bool first_baseline = true;

  for (const char* query_name : kFaultQueries) {
    auto query_or = GetQuery(engine, query_name);
    DYNOPT_CHECK(query_or.ok());
    const QuerySpec query = query_or.value();

    // Fault-free reference (dynamic) + per-strategy baselines.
    Reference ref;
    Baseline baselines[6];
    for (size_t o = 0; o < 6; ++o) {
      const std::string name = kOptimizers[o];
      auto result = MakeOptimizer(engine, name, ref.tree)->Run(query);
      DYNOPT_CHECK(result.ok());
      if (name == "dynamic") {
        ref.columns = result->columns;
        ref.sorted_rows = result->rows;
        SortRows(&ref.sorted_rows);
        ref.tree = result->join_tree;
      } else {
        VerifyRows(result.value(), ref, name + " fault-free baseline");
      }
      baselines[o].sim_seconds = result->metrics.simulated_seconds;
      baselines[o].stages = CountStages(engine, name, ref, query);
      baselines_json << (first_baseline ? "\n" : ",\n") << "    {\"query\": \""
                     << query_name << "\", \"optimizer\": \"" << name
                     << "\", \"sim_seconds\": " << baselines[o].sim_seconds
                     << ", \"stages\": " << baselines[o].stages << "}";
      first_baseline = false;
    }

    // Section A: one injected node failure per sampled stage.
    std::printf("\n-- %s: single-failure recovery cost (simulated seconds "
                "over the fault-free baseline) --\n",
                query_name);
    for (size_t o = 0; o < 6; ++o) {
      const std::string name = kOptimizers[o];
      for (int fail_at : SampleStages(baselines[o].stages, 6)) {
        SingleFailureRow row =
            name == "dynamic"
                ? MeasureDynamicFailure(engine, ref, query, query_name,
                                        baselines[o], fail_at)
                : MeasureRecoveredFailure(engine, ref, query, query_name,
                                          name, baselines[o], fail_at);
        if (row.restart_cost_seconds >= 0) {
          std::printf("%-12s fail@%3d/%3d  recovery=%9.3fs  (restart would "
                      "cost %9.3fs; checkpoint carried %9.3fs)\n",
                      name.c_str(), row.fail_at_stage, row.stages,
                      row.recovery_cost_seconds, row.restart_cost_seconds,
                      row.checkpoint_carried_seconds);
        } else {
          std::printf("%-12s fail@%3d/%3d  recovery=%9.3fs  (%s)\n",
                      name.c_str(), row.fail_at_stage, row.stages,
                      row.recovery_cost_seconds,
                      row.resumes > 0 ? "resumed" : "restarted");
        }
        single_rows.push_back(std::move(row));
      }
    }

    // Section B: failure-rate sweep.
    std::printf("\n-- %s: failure-rate sweep --\n", query_name);
    for (double rate : kFailureRates) {
      for (size_t o = 0; o < 6; ++o) {
        RateSweepRow row = MeasureRate(engine, ref, query, query_name,
                                       kOptimizers[o], paper_sf, rate);
        std::printf("%-12s rate=%.2f  sim=%9.3fs  recovery=%8.3fs  "
                    "retries=%4llu  speculative=%3llu  corrupted=%3llu  "
                    "restarts=%d resumes=%d\n",
                    row.optimizer.c_str(), rate, row.sim_seconds,
                    row.recovery_seconds,
                    static_cast<unsigned long long>(row.num_retries),
                    static_cast<unsigned long long>(
                        row.speculative_executions),
                    static_cast<unsigned long long>(row.corrupted_blocks),
                    row.restarts, row.resumes);
        rate_rows.push_back(std::move(row));
      }
    }
  }
  baselines_json << "\n  ]";

  std::ofstream json(out_path);
  json << "{\n"
       << "  \"benchmark\": \"fault_recovery\",\n"
       << "  \"paper_sf\": " << paper_sf << ",\n"
       << "  \"generator_sf\": " << GeneratorSfForPaperSf(paper_sf) << ",\n"
       << "  \"baselines\": " << baselines_json.str() << ",\n"
       << "  \"single_failure_sweep\": [";
  for (size_t i = 0; i < single_rows.size(); ++i) {
    const SingleFailureRow& r = single_rows[i];
    json << (i == 0 ? "\n" : ",\n") << "    {\"query\": \"" << r.query
         << "\", \"optimizer\": \"" << r.optimizer
         << "\", \"fail_at_stage\": " << r.fail_at_stage
         << ", \"stages\": " << r.stages << ", \"resumes\": " << r.resumes
         << ", \"restarts\": " << r.restarts
         << ", \"wasted_seconds\": " << r.wasted_seconds
         << ", \"total_paid_seconds\": " << r.total_paid_seconds
         << ", \"recovery_cost_seconds\": " << r.recovery_cost_seconds;
    if (r.restart_cost_seconds >= 0) {
      json << ", \"restart_cost_seconds\": " << r.restart_cost_seconds
           << ", \"checkpoint_carried_seconds\": "
           << r.checkpoint_carried_seconds;
    }
    json << "}";
  }
  json << "\n  ],\n  \"failure_rate_sweep\": [";
  for (size_t i = 0; i < rate_rows.size(); ++i) {
    const RateSweepRow& r = rate_rows[i];
    json << (i == 0 ? "\n" : ",\n") << "    {\"query\": \"" << r.query
         << "\", \"optimizer\": \"" << r.optimizer << "\", \"rate\": "
         << r.rate << ", \"resumes\": " << r.resumes << ", \"restarts\": "
         << r.restarts << ", \"sim_seconds\": " << r.sim_seconds
         << ", \"recovery_seconds\": " << r.recovery_seconds
         << ", \"wasted_seconds\": " << r.wasted_seconds
         << ", \"total_paid_seconds\": " << r.total_paid_seconds
         << ", \"num_retries\": " << r.num_retries
         << ", \"speculative_executions\": " << r.speculative_executions
         << ", \"corrupted_blocks\": " << r.corrupted_blocks << "}";
  }
  json << "\n  ],\n  \"records\": " << RecordsToJson() << "\n}\n";
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dynopt

int main(int argc, char** argv) { return dynopt::bench::Main(argc, argv); }
