// Tracing overhead benchmark: runs TPC-H Q9 under the dynamic optimizer
// with tracing disabled (the default) and enabled, and checks the two
// invariants the observability layer promises:
//
//   1. Metering identity — tracing never touches the simulated cost model,
//      so every deterministic ExecMetrics field is byte-for-byte identical
//      with tracing on and off (DYNOPT_CHECK, not a soft comparison).
//   2. Low overhead — the best-of-N wall-clock with tracing enabled stays
//      within DYNOPT_TRACE_OVERHEAD_PCT percent (default 5) of the
//      disabled baseline.
//
// Outputs: BENCH_trace.json (timings + overhead), a Chrome-trace JSON of
// the final traced run (loadable in Perfetto / chrome://tracing), an
// EXPLAIN ANALYZE dump and the global metrics-registry snapshot.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/logging.h"
#include "common/metrics_registry.h"
#include "common/tracer.h"
#include "opt/dynamic_optimizer.h"
#include "opt/explain.h"

namespace dynopt {
namespace bench {
namespace {

Result<OptimizerRunResult> RunQ9(Engine* engine) {
  DYNOPT_ASSIGN_OR_RETURN(QuerySpec spec, GetQuery(engine, "q9"));
  DynamicOptimizer optimizer(engine);
  return optimizer.Run(spec);
}

/// Every deterministic ExecMetrics field, rendered exactly. Wall-clock
/// fields (wall_*, queue_wait) are host-time and excluded; everything else
/// must be invariant under tracing.
std::string MeteringSignature(const ExecMetrics& m) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "rows=%llu tuples=%llu scan=%llu shuffle=%llu bcast=%llu mat=%llu "
      "iread=%llu idx=%llu jobs=%d reopts=%d sim=%.17g reopt=%.17g "
      "stats=%.17g recovery=%.17g retries=%llu spec=%llu corrupt=%llu "
      "peak=%llu spill=%llu spill_parts=%llu q=%.17g decisions=%llu",
      (unsigned long long)m.rows_out, (unsigned long long)m.tuples_processed,
      (unsigned long long)m.bytes_scanned,
      (unsigned long long)m.bytes_shuffled,
      (unsigned long long)m.bytes_broadcast,
      (unsigned long long)m.bytes_materialized,
      (unsigned long long)m.bytes_intermediate_read,
      (unsigned long long)m.index_lookups, m.num_jobs, m.num_reopt_points,
      m.simulated_seconds, m.reopt_seconds, m.stats_seconds,
      m.recovery_seconds, (unsigned long long)m.num_retries,
      (unsigned long long)m.speculative_executions,
      (unsigned long long)m.corrupted_blocks,
      (unsigned long long)m.peak_memory_bytes,
      (unsigned long long)m.spilled_bytes,
      (unsigned long long)m.spill_partitions, m.max_q_error,
      (unsigned long long)m.num_decisions);
  return buf;
}

int Main(int argc, char** argv) {
  int paper_sf = 10;
  int reps = 5;
  std::string out_path = "BENCH_trace.json";
  std::string trace_path = "trace_q9.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sf") == 0 && i + 1 < argc) {
      paper_sf = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--sf <paper_sf>] [--reps <n>] [--out <path>] "
                   "[--trace-out <path>]\n",
                   argv[0]);
      return 2;
    }
  }

  double overhead_limit_pct = 5.0;
  if (const char* env = std::getenv("DYNOPT_TRACE_OVERHEAD_PCT")) {
    overhead_limit_pct = std::atof(env);
  }

  Engine* engine = GetEngine(paper_sf, /*with_indexes=*/false);
  std::printf("=== bench_trace_overhead: q9 dynamic, paper_sf=%d, reps=%d, "
              "limit=%.1f%% ===\n",
              paper_sf, reps, overhead_limit_pct);

  // Warm-up (loads/caches the engine tables outside the timed runs).
  DYNOPT_CHECK(Tracer::Global().enabled() == false);
  {
    auto warm = RunQ9(engine);
    DYNOPT_CHECK(warm.ok());
  }

  // Baseline: tracing disabled (the default state).
  double off_best_wall = 0;
  std::string off_signature;
  for (int r = 0; r < reps; ++r) {
    auto result = RunQ9(engine);
    DYNOPT_CHECK(result.ok());
    const std::string sig = MeteringSignature(result->metrics);
    if (r == 0) {
      off_best_wall = result->wall_seconds;
      off_signature = sig;
    } else {
      off_best_wall = std::min(off_best_wall, result->wall_seconds);
      // The simulation itself must be deterministic run-over-run, or the
      // tracing-identity check below would be meaningless.
      DYNOPT_CHECK(sig == off_signature);
    }
    // Disabled tracing must leave nothing behind to drain.
    DYNOPT_CHECK(result->profile != nullptr);
    DYNOPT_CHECK(result->profile->trace.empty());
  }

  // Traced runs.
  Tracer::Global().Enable();
  double on_best_wall = 0;
  std::string on_signature;
  std::shared_ptr<QueryProfile> traced_profile;
  OptimizerRunResult traced_run;
  for (int r = 0; r < reps; ++r) {
    auto result = RunQ9(engine);
    DYNOPT_CHECK(result.ok());
    const std::string sig = MeteringSignature(result->metrics);
    if (r == 0) {
      on_best_wall = result->wall_seconds;
      on_signature = sig;
    } else {
      on_best_wall = std::min(on_best_wall, result->wall_seconds);
      DYNOPT_CHECK(sig == on_signature);
    }
    DYNOPT_CHECK(result->profile != nullptr);
    DYNOPT_CHECK(!result->profile->trace.empty());
    traced_profile = result->profile;
    traced_run = std::move(result).value();
  }
  Tracer::Global().Disable();

  // Invariant 1: tracing changes no metered quantity.
  if (off_signature != on_signature) {
    std::fprintf(stderr, "metering drift!\n  off: %s\n  on:  %s\n",
                 off_signature.c_str(), on_signature.c_str());
  }
  DYNOPT_CHECK(off_signature == on_signature);
  std::printf("metering identical on/off: %s\n", off_signature.c_str());

  // Invariant 2: wall-clock overhead within the budget.
  const double overhead_pct =
      off_best_wall > 0
          ? (on_best_wall - off_best_wall) / off_best_wall * 100.0
          : 0.0;
  std::printf("wall best-of-%d: off=%.6fs on=%.6fs overhead=%.2f%%\n", reps,
              off_best_wall, on_best_wall, overhead_pct);
  DYNOPT_CHECK(overhead_pct <= overhead_limit_pct);

  // Export the Chrome trace of the final traced run.
  Status wrote = WriteChromeTrace(trace_path, traced_profile->trace);
  DYNOPT_CHECK(wrote.ok());
  std::printf("wrote %s (%zu spans)\n", trace_path.c_str(),
              traced_profile->trace.size());

  // EXPLAIN ANALYZE of the traced run, for eyeballing est-vs-actual.
  auto spec = GetQuery(engine, "q9");
  DYNOPT_CHECK(spec.ok());
  auto analyzed = ExplainAnalyze(engine, spec.value(), traced_run);
  DYNOPT_CHECK(analyzed.ok());
  std::printf("\n%s\n", analyzed->c_str());

  // Engine counter/histogram snapshot accumulated across all runs.
  std::printf("-- metrics registry --\n%s",
              engine->metrics_registry().TextSnapshot().c_str());

  std::ofstream json(out_path);
  json << "{\n"
       << "  \"benchmark\": \"trace_overhead\",\n"
       << "  \"query\": \"q9\",\n"
       << "  \"optimizer\": \"dynamic\",\n"
       << "  \"paper_sf\": " << paper_sf << ",\n"
       << "  \"reps\": " << reps << ",\n"
       << "  \"wall_seconds_off\": " << off_best_wall << ",\n"
       << "  \"wall_seconds_on\": " << on_best_wall << ",\n"
       << "  \"overhead_pct\": " << overhead_pct << ",\n"
       << "  \"overhead_limit_pct\": " << overhead_limit_pct << ",\n"
       << "  \"trace_spans\": " << traced_profile->trace.size() << ",\n"
       << "  \"num_decisions\": " << traced_run.metrics.num_decisions << ",\n"
       << "  \"max_q_error\": " << traced_run.metrics.max_q_error << ",\n"
       << "  \"metering_identical\": true\n"
       << "}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dynopt

int main(int argc, char** argv) { return dynopt::bench::Main(argc, argv); }
