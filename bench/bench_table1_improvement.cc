// Reproduces Table 1: the average improvement factor of the runtime dynamic
// approach against each other optimization method at paper scale factors
// 100 and 1000 (ratio of the method's simulated time to dynamic's,
// averaged over the four queries; <1 means the method beats dynamic, as
// best-order does by saving the re-optimization overhead).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "bench/harness.h"

namespace dynopt {
namespace bench {
namespace {

void RunCase(benchmark::State& state, const std::string& query, int paper_sf,
             const std::string& optimizer) {
  Engine* engine = GetEngine(paper_sf, /*with_indexes=*/false);
  for (auto _ : state) {
    auto result = RunStrategy(engine, paper_sf, optimizer, query,
                              /*enable_inlj=*/false);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    state.SetIterationTime(result->metrics.simulated_seconds);
    Record record;
    record.figure = "Table 1";
    record.query = query;
    record.paper_sf = paper_sf;
    record.optimizer = optimizer;
    record.sim_seconds = result->metrics.simulated_seconds;
    SetWallBreakdown(&record, result->metrics, result->profile.get());
    AddRecord(std::move(record));
  }
}

void RegisterAll() {
  // Dynamic registered first per (query, sf) so its plan is available as
  // the best-order hint.
  for (int sf : {100, 1000}) {
    for (const char* query : kQueries) {
      for (const char* optimizer : kOptimizers) {
        std::string name = std::string("table1/") + query + "/sf" +
                           std::to_string(sf) + "/" + optimizer;
        benchmark::RegisterBenchmark(
            name.c_str(),
            [query = std::string(query), sf,
             optimizer = std::string(optimizer)](benchmark::State& state) {
              RunCase(state, query, sf, optimizer);
            })
            ->UseManualTime()
            ->Unit(benchmark::kSecond)
            ->Iterations(1);
      }
    }
  }
}

void PrintTable1() {
  std::printf(
      "\n=== Table 1: average improvement of dynamic vs other methods ===\n");
  std::printf("%-10s", "sf");
  const char* others[] = {"cost-based", "pilot-run", "ingres-like",
                          "best-order", "worst-order"};
  for (const char* name : others) std::printf(" %12s", name);
  std::printf("\n");
  for (int sf : {100, 1000}) {
    std::printf("%-10d", sf);
    for (const char* other : others) {
      double ratio_sum = 0;
      int count = 0;
      for (const char* query : kQueries) {
        double dynamic_s = -1, other_s = -1;
        for (const auto& r : Records()) {
          if (r.figure != "Table 1" || r.paper_sf != sf || r.query != query) {
            continue;
          }
          if (r.optimizer == "dynamic") dynamic_s = r.sim_seconds;
          if (r.optimizer == other) other_s = r.sim_seconds;
        }
        if (dynamic_s > 0 && other_s > 0) {
          ratio_sum += other_s / dynamic_s;
          ++count;
        }
      }
      if (count > 0) {
        std::printf(" %11.2fx", ratio_sum / count);
      } else {
        std::printf(" %12s", "-");
      }
    }
    std::printf("\n");
  }
  std::printf(
      "(values are other/dynamic simulated-time ratios averaged over "
      "Q17/Q50/Q8/Q9; >1 means dynamic is faster)\n");
}

}  // namespace
}  // namespace bench
}  // namespace dynopt

int main(int argc, char** argv) {
  dynopt::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dynopt::bench::PrintTable1();
  return 0;
}
