// Reproduces Figure 8: the Figure-7 comparison repeated with the Indexed
// Nested Loop join enabled as a third algorithm choice. Secondary indexes
// are created on the non-primary-key join columns the queries touch
// (fact-table date FKs for TPC-DS, lineitem part/supplier FKs for TPC-H).
// Worst-order is excluded: without hints it never picks INL, so its time is
// unchanged from Figure 7 (as in the paper).

#include <benchmark/benchmark.h>

#include "bench/harness.h"

namespace dynopt {
namespace bench {
namespace {

void RunCase(benchmark::State& state, const std::string& query, int paper_sf,
             const std::string& optimizer) {
  Engine* engine = GetEngine(paper_sf, /*with_indexes=*/true);
  for (auto _ : state) {
    auto result = RunStrategy(engine, paper_sf, optimizer, query,
                              /*enable_inlj=*/true);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    state.SetIterationTime(result->metrics.simulated_seconds);
    state.counters["wall_s"] = result->wall_seconds;
    state.counters["index_lookups"] =
        static_cast<double>(result->metrics.index_lookups);
    Record record;
    record.figure = "Figure 8";
    record.query = query;
    record.paper_sf = paper_sf;
    record.optimizer = optimizer;
    record.sim_seconds = result->metrics.simulated_seconds;
    record.wall_seconds = result->wall_seconds;
    SetWallBreakdown(&record, result->metrics, result->profile.get());
    record.rows = result->rows.size();
    record.plan =
        result->join_tree != nullptr ? result->join_tree->ToString() : "";
    AddRecord(std::move(record));
  }
}

void RegisterAll() {
  for (int sf : {10, 100, 1000}) {
    for (const char* query : kQueries) {
      for (const char* optimizer : kOptimizers) {
        if (std::string(optimizer) == "worst-order") continue;
        std::string name = std::string("fig8/") + query + "/sf" +
                           std::to_string(sf) + "/" + optimizer;
        benchmark::RegisterBenchmark(
            name.c_str(),
            [query = std::string(query), sf,
             optimizer = std::string(optimizer)](benchmark::State& state) {
              RunCase(state, query, sf, optimizer);
            })
            ->UseManualTime()
            ->Unit(benchmark::kSecond)
            ->Iterations(1);
      }
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace dynopt

int main(int argc, char** argv) {
  dynopt::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dynopt::bench::PrintFigureTable("Figure 8");
  return 0;
}
