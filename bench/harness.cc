#include "bench/harness.h"

#include <cstdio>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>

#include "common/logging.h"
#include "common/metrics_registry.h"
#include "opt/dynamic_optimizer.h"
#include "opt/ingres_optimizer.h"
#include "opt/order_baselines.h"
#include "opt/pilot_run_optimizer.h"
#include "opt/sketch_optimizer.h"
#include "opt/static_optimizer.h"
#include "workloads/tpcds.h"
#include "workloads/tpch.h"

namespace dynopt {
namespace bench {

double GeneratorSfForPaperSf(int paper_sf) {
  switch (paper_sf) {
    case 10:
      return 0.5;
    case 100:
      return 2.0;
    case 1000:
      return 8.0;
    default:
      return paper_sf / 100.0;
  }
}

namespace {

struct EngineCacheKey {
  int paper_sf;
  bool with_indexes;
  bool operator<(const EngineCacheKey& other) const {
    return paper_sf != other.paper_sf ? paper_sf < other.paper_sf
                                      : with_indexes < other.with_indexes;
  }
};

std::map<EngineCacheKey, std::unique_ptr<Engine>>& EngineCache() {
  static auto* cache = new std::map<EngineCacheKey, std::unique_ptr<Engine>>();
  return *cache;
}

/// Cache of the dynamic optimizer's discovered plan, used as the
/// best-order hint (the paper's "user knows the optimal order" setting).
std::map<std::string, std::shared_ptr<const JoinTree>>& HintCache() {
  static auto* cache =
      new std::map<std::string, std::shared_ptr<const JoinTree>>();
  return *cache;
}

std::vector<Record>& MutableRecords() {
  static auto* records = new std::vector<Record>();
  return *records;
}

std::mutex g_mutex;

}  // namespace

Engine* GetEngine(int paper_sf, bool with_indexes) {
  std::lock_guard<std::mutex> lock(g_mutex);
  EngineCacheKey key{paper_sf, with_indexes};
  auto it = EngineCache().find(key);
  if (it != EngineCache().end()) return it->second.get();

  auto engine = std::make_unique<Engine>();
  double sf = GeneratorSfForPaperSf(paper_sf);
  TpchOptions tpch;
  tpch.sf = sf;
  DYNOPT_CHECK(LoadTpch(engine.get(), tpch).ok());
  TpcdsOptions tpcds;
  tpcds.sf = sf;
  DYNOPT_CHECK(LoadTpcds(engine.get(), tpcds).ok());
  if (with_indexes) {
    DYNOPT_CHECK(CreateTpchIndexes(engine.get()).ok());
    DYNOPT_CHECK(CreateTpcdsIndexes(engine.get()).ok());
  }
  Engine* raw = engine.get();
  EngineCache()[key] = std::move(engine);
  return raw;
}

Result<QuerySpec> GetQuery(Engine* engine, const std::string& query) {
  if (query == "q17") return TpcdsQ17(engine);
  if (query == "q50") return TpcdsQ50(engine, 9, 1999);
  if (query == "q8") return TpchQ8(engine);
  if (query == "q9") return TpchQ9(engine);
  return Status::InvalidArgument("unknown query " + query);
}

Result<OptimizerRunResult> RunStrategy(Engine* engine, int paper_sf,
                                       const std::string& optimizer_name,
                                       const std::string& query,
                                       bool enable_inlj) {
  DYNOPT_ASSIGN_OR_RETURN(QuerySpec spec, GetQuery(engine, query));
  PlannerOptions planner;
  planner.enable_inlj = enable_inlj;

  const std::string hint_key = query + "/" + std::to_string(paper_sf) + "/" +
                               (enable_inlj ? "inlj" : "plain");
  if (optimizer_name == "dynamic") {
    DynamicOptimizerOptions options;
    options.planner = planner;
    DynamicOptimizer optimizer(engine, options);
    auto result = optimizer.Run(spec);
    if (result.ok()) {
      std::lock_guard<std::mutex> lock(g_mutex);
      HintCache()[hint_key] = result->join_tree;
    }
    return result;
  }
  if (optimizer_name == "cost-based") {
    StaticCostBasedOptimizer optimizer(engine, planner);
    return optimizer.Run(spec);
  }
  if (optimizer_name == "worst-order") {
    WorstOrderOptimizer optimizer(engine, planner);
    return optimizer.Run(spec);
  }
  if (optimizer_name == "pilot-run") {
    PilotRunOptions options;
    options.planner = planner;
    PilotRunOptimizer optimizer(engine, options);
    return optimizer.Run(spec);
  }
  if (optimizer_name == "ingres-like") {
    IngresLikeOptimizer optimizer(engine, planner);
    return optimizer.Run(spec);
  }
  if (optimizer_name == "sketch-dynamic") {
    SketchDynamicOptimizer optimizer(engine, planner);
    return optimizer.Run(spec);
  }
  if (optimizer_name == "best-order") {
    std::shared_ptr<const JoinTree> hint;
    {
      std::lock_guard<std::mutex> lock(g_mutex);
      auto it = HintCache().find(hint_key);
      if (it != HintCache().end()) hint = it->second;
    }
    if (hint == nullptr) {
      // The "user" learns the optimal order from a dynamic run first.
      DynamicOptimizerOptions options;
      options.planner = planner;
      DynamicOptimizer dynamic(engine, options);
      DYNOPT_ASSIGN_OR_RETURN(OptimizerRunResult dyn, dynamic.Run(spec));
      hint = dyn.join_tree;
      std::lock_guard<std::mutex> lock(g_mutex);
      HintCache()[hint_key] = hint;
    }
    BestOrderOptimizer optimizer(engine, hint);
    return optimizer.Run(spec);
  }
  return Status::InvalidArgument("unknown optimizer " + optimizer_name);
}

void SetWallBreakdown(Record* record, const ExecMetrics& metrics,
                      const QueryProfile* profile) {
  record->wall_shuffle_seconds = metrics.wall_shuffle_seconds;
  record->wall_build_seconds = metrics.wall_build_seconds;
  record->wall_probe_seconds = metrics.wall_probe_seconds;
  record->wall_materialize_seconds = metrics.wall_materialize_seconds;
  record->recovery_seconds = metrics.recovery_seconds;
  record->num_retries = metrics.num_retries;
  record->speculative_executions = metrics.speculative_executions;
  record->corrupted_blocks = metrics.corrupted_blocks;
  record->peak_memory_bytes = metrics.peak_memory_bytes;
  record->spilled_bytes = metrics.spilled_bytes;
  record->spill_partitions = metrics.spill_partitions;
  record->queue_wait_seconds = metrics.queue_wait_seconds;
  record->max_q_error = metrics.max_q_error;
  record->num_decisions = metrics.num_decisions;
  record->error_reopt_triggers = metrics.error_reopt_triggers;
  record->bytes_shuffled = metrics.bytes_shuffled;
  record->pt_filter_bytes = metrics.pt_filter_bytes;
  record->pt_pruned_rows = metrics.pt_pruned_rows;
  record->pt_pruned_bytes = metrics.pt_pruned_bytes;
  record->q_error_log2.assign(16, 0);
  if (profile != nullptr) {
    for (const auto& d : profile->decisions.decisions()) {
      const double q = d.QError();
      if (q < 1.0) continue;
      uint64_t v = static_cast<uint64_t>(std::llround(q));
      size_t bucket = 0;
      while (v > 1 && bucket + 1 < record->q_error_log2.size()) {
        v >>= 1;
        ++bucket;
      }
      ++record->q_error_log2[bucket];
    }
  }
}

void AddRecord(Record record) {
  std::lock_guard<std::mutex> lock(g_mutex);
  MutableRecords().push_back(std::move(record));
}

const std::vector<Record>& Records() { return MutableRecords(); }

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::string RecordsToJson() {
  std::ostringstream os;
  os << "[";
  bool first = true;
  for (const auto& r : Records()) {
    os << (first ? "\n" : ",\n") << "    {"
       << "\"figure\": \"" << JsonEscape(r.figure) << "\", "
       << "\"query\": \"" << JsonEscape(r.query) << "\", "
       << "\"paper_sf\": " << r.paper_sf << ", "
       << "\"optimizer\": \"" << JsonEscape(r.optimizer) << "\", "
       << "\"sim_seconds\": " << r.sim_seconds << ", "
       << "\"wall_seconds\": " << r.wall_seconds << ", "
       << "\"reopt_seconds\": " << r.reopt_seconds << ", "
       << "\"stats_seconds\": " << r.stats_seconds << ", "
       << "\"wall_shuffle_s\": " << r.wall_shuffle_seconds << ", "
       << "\"wall_build_s\": " << r.wall_build_seconds << ", "
       << "\"wall_probe_s\": " << r.wall_probe_seconds << ", "
       << "\"wall_materialize_s\": " << r.wall_materialize_seconds << ", "
       << "\"recovery_seconds\": " << r.recovery_seconds << ", "
       << "\"num_retries\": " << r.num_retries << ", "
       << "\"speculative_executions\": " << r.speculative_executions << ", "
       << "\"corrupted_blocks\": " << r.corrupted_blocks << ", "
       << "\"peak_memory_bytes\": " << r.peak_memory_bytes << ", "
       << "\"spilled_bytes\": " << r.spilled_bytes << ", "
       << "\"spill_partitions\": " << r.spill_partitions << ", "
       << "\"queue_wait_seconds\": " << r.queue_wait_seconds << ", "
       << "\"max_q_error\": " << r.max_q_error << ", "
       << "\"num_decisions\": " << r.num_decisions << ", "
       << "\"error_reopt_triggers\": " << r.error_reopt_triggers << ", "
       << "\"bytes_shuffled\": " << r.bytes_shuffled << ", "
       << "\"pt_filter_bytes\": " << r.pt_filter_bytes << ", "
       << "\"pt_pruned_rows\": " << r.pt_pruned_rows << ", "
       << "\"pt_pruned_bytes\": " << r.pt_pruned_bytes << ", "
       << "\"q_error_log2\": [";
    for (size_t i = 0; i < r.q_error_log2.size(); ++i) {
      os << (i == 0 ? "" : ", ") << r.q_error_log2[i];
    }
    os << "], "
       << "\"rows\": " << r.rows << ", "
       << "\"plan\": \"" << JsonEscape(r.plan) << "\"}";
    first = false;
  }
  os << "\n  ]";
  return os.str();
}

bool WriteRecordsJson(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << "{\n  \"records\": " << RecordsToJson() << "\n}\n";
  return static_cast<bool>(out);
}

bool WriteMetricsSnapshot(const std::string& path,
                          const MetricsRegistry* registry) {
  std::ofstream out(path);
  if (!out) return false;
  out << (registry != nullptr ? registry->TextSnapshot()
                              : MetricsRegistry::Global().TextSnapshot());
  return static_cast<bool>(out);
}

void PrintFigureTable(const std::string& figure) {
  const auto& records = Records();
  std::set<int> sfs;
  std::set<std::string> optimizers;
  for (const auto& r : records) {
    if (r.figure != figure) continue;
    sfs.insert(r.paper_sf);
    optimizers.insert(r.optimizer);
  }
  if (sfs.empty()) return;
  std::printf("\n=== %s: simulated execution seconds ===\n", figure.c_str());
  for (int sf : sfs) {
    std::printf("\n-- scale factor %d --\n%-6s", sf, "query");
    std::vector<std::string> cols;
    for (const char* name : kOptimizers) {
      if (optimizers.count(name)) cols.push_back(name);
    }
    for (const auto& c : cols) std::printf(" %12s", c.c_str());
    std::printf("\n");
    for (const char* query : kQueries) {
      std::printf("%-6s", query);
      for (const auto& opt : cols) {
        double value = -1;
        for (const auto& r : records) {
          if (r.figure == figure && r.paper_sf == sf && r.query == query &&
              r.optimizer == opt) {
            value = r.sim_seconds;
          }
        }
        if (value < 0) {
          std::printf(" %12s", "-");
        } else {
          std::printf(" %12.2f", value);
        }
      }
      std::printf("\n");
    }
  }
  // Plans, like the paper's appendix.
  std::printf("\n-- plans --\n");
  for (const auto& r : records) {
    if (r.figure != figure || r.plan.empty()) continue;
    std::printf("%s sf=%d %s: %s\n", r.query.c_str(), r.paper_sf,
                r.optimizer.c_str(), r.plan.c_str());
  }
  // Host wall-clock spent inside each physical operator class — the real
  // execution cost, orthogonal to the simulated seconds plotted above.
  bool any_wall = false;
  for (const auto& r : records) {
    if (r.figure == figure &&
        (r.wall_shuffle_seconds > 0 || r.wall_build_seconds > 0 ||
         r.wall_probe_seconds > 0 || r.wall_materialize_seconds > 0)) {
      any_wall = true;
      break;
    }
  }
  if (any_wall) {
    std::printf("\n-- wall-clock kernel breakdown (host seconds) --\n");
    for (const auto& r : records) {
      if (r.figure != figure) continue;
      std::printf(
          "%s sf=%d %s: shuffle=%.4f build=%.4f probe=%.4f "
          "materialize=%.4f wall_total=%.4f\n",
          r.query.c_str(), r.paper_sf, r.optimizer.c_str(),
          r.wall_shuffle_seconds, r.wall_build_seconds, r.wall_probe_seconds,
          r.wall_materialize_seconds, r.wall_seconds);
    }
  }
}

}  // namespace bench
}  // namespace dynopt
