// Wall-clock benchmark of the executor's data-movement kernels on a
// shuffle-heavy multi-join pipeline: the TPC-H Q9 hash-join chain (orders ⋈
// lineitem ⋈ part ⋈ supplier ⋈ partsupp ⋈ nation, with Q9's UDF filters on
// orders and part), every join executed as shuffle-both-sides + local hash
// join at the cluster's node count.
//
// Three implementations run on identical inputs:
//  - seed:     the sequential reference kernels (exec/reference_kernels.h —
//              the pre-parallel-exchange executor, verbatim);
//  - row:      the two-phase parallel shuffle exchange + flat-table hash
//              join with key hashes computed once and threaded through,
//              operating row-at-a-time on Row vectors;
//  - columnar: the vectorized batch engine (exec/vector_kernels.h) —
//              per-column hash/gather/probe loops over ColumnBatches.
//
// Plus a filter-kernel microbenchmark (VecPredicate::EvalBools vs the row
// engine's Bind + EvalBool loop) and a columnar batch-size sweep
// (64/256/1024/4096).
//
// The report (stdout + BENCH_kernels.json) breaks wall time down per
// kernel class (shuffle / build / probe) so every future perf PR has a
// machine-readable trajectory. Simulated seconds are asserted identical
// between all implementations — the perf work must not move the paper's
// cost model.
//
// Usage: bench_kernels [--sf <paper_sf>] [--iters <n>] [--out <path>]

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/logging.h"
#include "exec/batch.h"
#include "exec/executor.h"
#include "exec/reference_kernels.h"
#include "exec/vector_kernels.h"
#include "plan/expr.h"

namespace dynopt {
namespace bench {
namespace {

using WallClock = std::chrono::steady_clock;

double SecondsSince(WallClock::time_point start) {
  return std::chrono::duration<double>(WallClock::now() - start).count();
}

/// One join step of the chain: shuffle keys are resolved by column name
/// against whatever the current intermediate's schema is.
struct JoinStep {
  std::vector<std::string> build_cols;
  std::vector<std::string> probe_cols;
};

std::vector<int> MustResolve(const Dataset& data,
                             const std::vector<std::string>& names) {
  std::vector<int> indices;
  for (const auto& name : names) {
    int idx = data.ColumnIndex(name);
    DYNOPT_CHECK(idx >= 0);
    indices.push_back(idx);
  }
  return indices;
}

struct PipelineResult {
  ExecMetrics metrics;   // Simulated + per-class wall metering.
  double total_wall = 0; // End-to-end wall seconds for the join chain.
  uint64_t rows_out = 0;
  Dataset output;
};

/// Runs the five-join chain over copies of `inputs`. `build_sides[s]` and
/// the running intermediate are consumed; inputs stay reusable.
PipelineResult RunPipeline(JobExecutor* executor,
                           const std::vector<Dataset>& build_inputs,
                           const Dataset& probe_input,
                           const std::vector<JoinStep>& steps,
                           bool parallel_kernels, bool keep_output) {
  // Copies happen before the timer: the benchmark measures the kernels,
  // not std::vector deep copies.
  std::vector<Dataset> builds = build_inputs;
  Dataset current = probe_input;
  const ClusterConfig& cluster = executor->cluster();

  PipelineResult result;
  const auto start = WallClock::now();
  for (size_t s = 0; s < steps.size(); ++s) {
    std::vector<int> build_keys = MustResolve(builds[s], steps[s].build_cols);
    std::vector<int> probe_keys = MustResolve(current, steps[s].probe_cols);
    if (parallel_kernels) {
      // Injection is never armed here, so the kernels cannot fail.
      auto build_or = executor->Repartition(std::move(builds[s]), build_keys,
                                            &result.metrics);
      DYNOPT_CHECK(build_or.ok());
      ShuffleResult build_parts = std::move(build_or).value();
      auto probe_or = executor->Repartition(std::move(current), probe_keys,
                                            &result.metrics);
      DYNOPT_CHECK(probe_or.ok());
      ShuffleResult probe_parts = std::move(probe_or).value();
      auto join_or = executor->LocalHashJoin(
          build_parts.data, probe_parts.data, build_keys, probe_keys,
          &result.metrics, &build_parts.hashes, &probe_parts.hashes);
      DYNOPT_CHECK(join_or.ok());
      current = std::move(join_or).value();
    } else {
      Dataset build_parts = reference::Repartition(
          std::move(builds[s]), build_keys, cluster, &result.metrics);
      Dataset probe_parts = reference::Repartition(
          std::move(current), probe_keys, cluster, &result.metrics);
      current = reference::LocalHashJoin(build_parts, probe_parts, build_keys,
                                         probe_keys, cluster,
                                         &result.metrics);
    }
  }
  result.total_wall = SecondsSince(start);
  result.rows_out = current.NumRows();
  if (keep_output) result.output = std::move(current);
  return result;
}

/// Columnar variant of RunPipeline: identical chain, identical metering,
/// batches flowing between the kernels. Inputs are converted before the
/// timer (in production the scan produces batches directly); only the
/// kernels are timed.
PipelineResult RunPipelineColumnar(JobExecutor* executor,
                                   const std::vector<Dataset>& build_inputs,
                                   const Dataset& probe_input,
                                   const std::vector<JoinStep>& steps,
                                   size_t batch_size, bool keep_output) {
  std::vector<ColumnarDataset> builds;
  builds.reserve(build_inputs.size());
  for (const Dataset& b : build_inputs) {
    builds.push_back(FromDataset(b, batch_size));
  }
  ColumnarDataset current = FromDataset(probe_input, batch_size);

  PipelineResult result;
  const auto start = WallClock::now();
  for (size_t s = 0; s < steps.size(); ++s) {
    std::vector<int> build_keys;
    for (const auto& name : steps[s].build_cols) {
      int idx = builds[s].ColumnIndex(name);
      DYNOPT_CHECK(idx >= 0);
      build_keys.push_back(idx);
    }
    std::vector<int> probe_keys;
    for (const auto& name : steps[s].probe_cols) {
      int idx = current.ColumnIndex(name);
      DYNOPT_CHECK(idx >= 0);
      probe_keys.push_back(idx);
    }
    auto build_or = executor->RepartitionColumnar(std::move(builds[s]),
                                                  build_keys, &result.metrics);
    DYNOPT_CHECK(build_or.ok());
    ColumnarShuffleResult build_parts = std::move(build_or).value();
    auto probe_or = executor->RepartitionColumnar(std::move(current),
                                                  probe_keys, &result.metrics);
    DYNOPT_CHECK(probe_or.ok());
    ColumnarShuffleResult probe_parts = std::move(probe_or).value();
    auto join_or = executor->LocalHashJoinColumnar(
        build_parts.data, probe_parts.data, build_keys, probe_keys,
        &result.metrics, &build_parts.hashes, &probe_parts.hashes);
    DYNOPT_CHECK(join_or.ok());
    current = std::move(join_or).value();
  }
  result.total_wall = SecondsSince(start);
  result.rows_out = current.NumRows();
  if (keep_output) result.output = ToDataset(std::move(current));
  return result;
}

Dataset MustExec(JobExecutor* executor, std::unique_ptr<PlanNode> plan) {
  auto result = executor->Execute(*plan, {});
  DYNOPT_CHECK(result.ok());
  return std::move(result->data);
}

/// Filter-kernel microbenchmark: the same predicate evaluated row-at-a-time
/// (Bind + EvalBool, the row engine's filter loop) and column-at-a-time
/// (VecPredicate::EvalBools). Returns {row_seconds, columnar_seconds} as
/// best-of-iters; both sides must select the same rows.
std::pair<double, double> BenchFilterKernels(const Dataset& data,
                                             size_t batch_size, int iters) {
  // l_partkey BETWEEN 100 AND 5000 AND l_suppkey >= 50: numeric
  // column-vs-constant comparisons, the filter kernel's bread and butter.
  ExprPtr pred = And({Between(Col("l", "l_partkey"), Lit(Value(100)),
                              Lit(Value(5000))),
                      Cmp(CompareOp::kGe, Col("l", "l_suppkey"),
                          Lit(Value(50)))});
  BindContext ctx;
  ctx.resolve_column = [&](const std::string& name) {
    return data.ColumnIndex(name);
  };
  auto bound_or = Bind(pred, ctx);
  DYNOPT_CHECK(bound_or.ok());
  BoundExprPtr bound = std::move(bound_or).value();
  ColumnarDataset columnar = FromDataset(data, batch_size);
  auto vec_or = VecPredicate::Compile(pred, columnar.columns, nullptr,
                                      nullptr);
  DYNOPT_CHECK(vec_or.ok());
  VecPredicate vec = std::move(vec_or).value();

  uint64_t row_selected = 0, col_selected = 0;
  double row_best = 1e300, col_best = 1e300;
  for (int it = 0; it < iters; ++it) {
    row_selected = 0;
    auto start = WallClock::now();
    for (const auto& part : data.partitions) {
      for (const Row& row : part) {
        if (bound->EvalBool(row)) ++row_selected;
      }
    }
    double s = SecondsSince(start);
    if (s < row_best) row_best = s;

    col_selected = 0;
    std::vector<uint8_t> keep;
    start = WallClock::now();
    for (const auto& part : columnar.partitions) {
      for (const ColumnBatch& b : part) {
        vec.EvalBools(b, &keep);
        for (size_t i = 0; i < b.num_rows; ++i) col_selected += keep[i];
      }
    }
    s = SecondsSince(start);
    if (s < col_best) col_best = s;
  }
  DYNOPT_CHECK(row_selected == col_selected);
  return {row_best, col_best};
}

/// Hash-kernel microbenchmark: the shuffle/build key hashing done
/// row-at-a-time (HashRowKey over each Row) and column-at-a-time
/// (HashKeyColumns over each ColumnBatch) on Q9's composite lineitem key.
/// Returns {row_seconds, columnar_seconds}; both sides must produce
/// identical hashes for every row (checked via an XOR accumulator).
std::pair<double, double> BenchHashKernels(const Dataset& data,
                                           size_t batch_size, int iters) {
  std::vector<int> keys = {data.ColumnIndex("l.l_partkey"),
                           data.ColumnIndex("l.l_suppkey")};
  DYNOPT_CHECK(keys[0] >= 0 && keys[1] >= 0);
  ColumnarDataset columnar = FromDataset(data, batch_size);
  uint64_t row_acc = 0, col_acc = 0;
  double row_best = 1e300, col_best = 1e300;
  std::vector<uint64_t> hashes;
  std::vector<uint8_t> null_scratch;
  for (int it = 0; it < iters; ++it) {
    row_acc = 0;
    auto start = WallClock::now();
    for (const auto& part : data.partitions) {
      for (const Row& row : part) row_acc ^= HashRowKey(row, keys);
    }
    double s = SecondsSince(start);
    if (s < row_best) row_best = s;

    col_acc = 0;
    start = WallClock::now();
    for (const auto& part : columnar.partitions) {
      for (const ColumnBatch& b : part) {
        hashes.resize(b.num_rows);
        null_scratch.assign(b.num_rows, 0);
        HashKeyColumns(b, keys.data(), keys.size(), hashes.data(),
                       null_scratch.data());
        for (uint64_t h : hashes) col_acc ^= h;
      }
    }
    s = SecondsSince(start);
    if (s < col_best) col_best = s;
  }
  DYNOPT_CHECK(row_acc == col_acc);
  return {row_best, col_best};
}

struct Breakdown {
  double shuffle = 0, build = 0, probe = 0;
  double kernel_total = 0;  // shuffle + build + probe wall clocks.
  double end_to_end = 0;    // Wall time around the whole chain, including
                            // benchmark overhead (freeing intermediates).
};

Breakdown ToBreakdown(const PipelineResult& r) {
  Breakdown b;
  b.shuffle = r.metrics.wall_shuffle_seconds;
  b.build = r.metrics.wall_build_seconds;
  b.probe = r.metrics.wall_probe_seconds;
  b.kernel_total = b.shuffle + b.build + b.probe;
  b.end_to_end = r.total_wall;
  return b;
}

void PrintBreakdown(const char* name, const Breakdown& b) {
  std::printf("%-18s shuffle=%8.3fs  build=%8.3fs  probe=%8.3fs  "
              "kernels=%8.3fs  end_to_end=%8.3fs\n",
              name, b.shuffle, b.build, b.probe, b.kernel_total,
              b.end_to_end);
}

int Main(int argc, char** argv) {
  int paper_sf = 100;
  int iters = 12;
  std::string out_path = "BENCH_kernels.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sf") == 0 && i + 1 < argc) {
      paper_sf = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      iters = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--sf <paper_sf>] [--iters <n>] [--out <path>]\n",
                   argv[0]);
      return 2;
    }
  }

  Engine* engine = GetEngine(paper_sf, /*with_indexes=*/false);
  JobExecutor executor = engine->MakeExecutor();

  // Untimed input preparation: scans + Q9's filters.
  Dataset lineitem = MustExec(&executor, PlanNode::Scan("lineitem", "l"));
  Dataset orders = MustExec(
      &executor,
      PlanNode::Filter(PlanNode::Scan("orders", "o"),
                       Eq(Udf("myym", {Col("o", "o_orderdate")}),
                          Lit(Value(199603)))));
  Dataset part = MustExec(
      &executor, PlanNode::Filter(PlanNode::Scan("part", "p"),
                                  Eq(Udf("mysub", {Col("p", "p_brand")}),
                                     Lit(Value("#3")))));
  Dataset supplier = MustExec(&executor, PlanNode::Scan("supplier", "s"));
  Dataset partsupp = MustExec(&executor, PlanNode::Scan("partsupp", "ps"));
  Dataset nation = MustExec(&executor, PlanNode::Scan("nation", "n"));

  const uint64_t lineitem_rows = lineitem.NumRows();
  std::vector<Dataset> build_inputs;
  build_inputs.push_back(std::move(orders));
  build_inputs.push_back(std::move(part));
  build_inputs.push_back(std::move(supplier));
  build_inputs.push_back(std::move(partsupp));
  build_inputs.push_back(std::move(nation));
  const std::vector<JoinStep> steps = {
      {{"o.o_orderkey"}, {"l.l_orderkey"}},
      {{"p.p_partkey"}, {"l.l_partkey"}},
      {{"s.s_suppkey"}, {"l.l_suppkey"}},
      {{"ps.ps_partkey", "ps.ps_suppkey"}, {"l.l_partkey", "l.l_suppkey"}},
      {{"n.n_nationkey"}, {"s.s_nationkey"}},
  };

  const size_t default_batch = executor.cluster().exec.max_batch_size;

  // Correctness + cost-model guard: one warm-up run of each implementation
  // must produce identical partitions and identical simulated metering.
  PipelineResult seed_check = RunPipeline(&executor, build_inputs, lineitem,
                                          steps, /*parallel_kernels=*/false,
                                          /*keep_output=*/true);
  PipelineResult par_check = RunPipeline(&executor, build_inputs, lineitem,
                                         steps, /*parallel_kernels=*/true,
                                         /*keep_output=*/true);
  PipelineResult col_check = RunPipelineColumnar(&executor, build_inputs,
                                                 lineitem, steps,
                                                 default_batch,
                                                 /*keep_output=*/true);
  DYNOPT_CHECK(par_check.output.partitions == seed_check.output.partitions);
  DYNOPT_CHECK(col_check.output.partitions == seed_check.output.partitions);
  DYNOPT_CHECK(par_check.metrics.simulated_seconds ==
               seed_check.metrics.simulated_seconds);
  DYNOPT_CHECK(col_check.metrics.simulated_seconds ==
               seed_check.metrics.simulated_seconds);
  DYNOPT_CHECK(par_check.metrics.bytes_shuffled ==
               seed_check.metrics.bytes_shuffled);
  DYNOPT_CHECK(col_check.metrics.bytes_shuffled ==
               seed_check.metrics.bytes_shuffled);
  DYNOPT_CHECK(col_check.metrics.tuples_processed ==
               seed_check.metrics.tuples_processed);

  // Timed runs: best-of-iters (by kernel time) per implementation,
  // interleaved so no side systematically benefits from warm caches.
  Breakdown seed_best, par_best, col_best;
  seed_best.kernel_total = par_best.kernel_total = col_best.kernel_total =
      1e300;
  for (int it = 0; it < iters; ++it) {
    PipelineResult seed = RunPipeline(&executor, build_inputs, lineitem,
                                      steps, false, false);
    Breakdown sb = ToBreakdown(seed);
    if (sb.kernel_total < seed_best.kernel_total) seed_best = sb;
    PipelineResult par = RunPipeline(&executor, build_inputs, lineitem,
                                     steps, true, false);
    Breakdown pb = ToBreakdown(par);
    if (pb.kernel_total < par_best.kernel_total) par_best = pb;
    PipelineResult col = RunPipelineColumnar(&executor, build_inputs,
                                             lineitem, steps, default_batch,
                                             false);
    Breakdown cb = ToBreakdown(col);
    if (cb.kernel_total < col_best.kernel_total) col_best = cb;
  }

  // Batch-size sweep: the columnar chain at 64/256/1024/4096-row batches
  // (simulated metering is invariant; only wall time moves).
  const std::vector<size_t> sweep_sizes = {64, 256, 1024, 4096};
  std::vector<Breakdown> sweep_best(sweep_sizes.size());
  for (auto& b : sweep_best) b.kernel_total = 1e300;
  for (int it = 0; it < std::max(1, iters / 2); ++it) {
    for (size_t i = 0; i < sweep_sizes.size(); ++i) {
      engine->mutable_cluster().exec.max_batch_size = sweep_sizes[i];
      JobExecutor sweep_exec = engine->MakeExecutor();
      PipelineResult col = RunPipelineColumnar(&sweep_exec, build_inputs,
                                               lineitem, steps,
                                               sweep_sizes[i], false);
      DYNOPT_CHECK(col.metrics.simulated_seconds ==
                   seed_check.metrics.simulated_seconds);
      Breakdown cb = ToBreakdown(col);
      if (cb.kernel_total < sweep_best[i].kernel_total) sweep_best[i] = cb;
    }
  }
  engine->mutable_cluster().exec.max_batch_size = default_batch;

  // Filter kernel: row Bind+EvalBool loop vs VecPredicate::EvalBools.
  auto [filter_row_s, filter_col_s] =
      BenchFilterKernels(lineitem, default_batch, iters);
  // Hash kernel: per-row HashRowKey vs per-column HashKeyColumns.
  auto [hash_row_s, hash_col_s] =
      BenchHashKernels(lineitem, default_batch, iters);

  const double speedup_total = seed_best.kernel_total / par_best.kernel_total;
  const double speedup_e2e = seed_best.end_to_end / par_best.end_to_end;
  const double col_speedup_total =
      par_best.kernel_total / col_best.kernel_total;
  const double col_speedup_e2e = par_best.end_to_end / col_best.end_to_end;
  const double filter_speedup = filter_row_s / filter_col_s;
  const double hash_speedup = hash_row_s / hash_col_s;
  std::printf("\n=== bench_kernels: TPC-H Q9 hash-join chain ===\n");
  std::printf("paper_sf=%d  generator_sf=%.2f  nodes=%zu  pool_threads=%zu  "
              "iters=%d\n",
              paper_sf, GeneratorSfForPaperSf(paper_sf),
              executor.cluster().num_nodes, engine->pool().num_threads(),
              iters);
  std::printf("lineitem_rows=%llu  output_rows=%llu  sim_seconds=%.3f "
              "(identical for both)\n\n",
              static_cast<unsigned long long>(lineitem_rows),
              static_cast<unsigned long long>(par_check.rows_out),
              par_check.metrics.simulated_seconds);
  PrintBreakdown("seed kernels", seed_best);
  PrintBreakdown("row kernels", par_best);
  PrintBreakdown("columnar kernels", col_best);
  std::printf("\nrow vs seed speedup: shuffle=%.2fx build=%.2fx probe=%.2fx "
              "TOTAL=%.2fx (end_to_end=%.2fx)\n",
              seed_best.shuffle / par_best.shuffle,
              seed_best.build / par_best.build,
              seed_best.probe / par_best.probe, speedup_total, speedup_e2e);
  std::printf("columnar vs row speedup: shuffle=%.2fx build=%.2fx "
              "probe=%.2fx TOTAL=%.2fx (end_to_end=%.2fx)\n",
              par_best.shuffle / col_best.shuffle,
              par_best.build / col_best.build,
              par_best.probe / col_best.probe, col_speedup_total,
              col_speedup_e2e);
  std::printf("filter kernel: row=%.4fs columnar=%.4fs speedup=%.2fx\n",
              filter_row_s, filter_col_s, filter_speedup);
  std::printf("hash kernel:   row=%.4fs columnar=%.4fs speedup=%.2fx\n",
              hash_row_s, hash_col_s, hash_speedup);
  std::printf("\nbatch-size sweep (columnar kernels):\n");
  for (size_t i = 0; i < sweep_sizes.size(); ++i) {
    std::printf("  batch=%-5zu shuffle=%7.3fs build=%7.3fs probe=%7.3fs "
                "kernels=%7.3fs\n",
                sweep_sizes[i], sweep_best[i].shuffle, sweep_best[i].build,
                sweep_best[i].probe, sweep_best[i].kernel_total);
  }

  std::ofstream json(out_path);
  json << "{\n"
       << "  \"benchmark\": \"kernels\",\n"
       << "  \"pipeline\": \"tpch_q9_hash_join_chain\",\n"
       << "  \"paper_sf\": " << paper_sf << ",\n"
       << "  \"generator_sf\": " << GeneratorSfForPaperSf(paper_sf) << ",\n"
       << "  \"iterations\": " << iters << ",\n"
       << "  \"num_nodes\": " << executor.cluster().num_nodes << ",\n"
       << "  \"pool_threads\": " << engine->pool().num_threads() << ",\n"
       << "  \"lineitem_rows\": " << lineitem_rows << ",\n"
       << "  \"output_rows\": " << par_check.rows_out << ",\n"
       << "  \"simulated_seconds\": " << par_check.metrics.simulated_seconds
       << ",\n"
       << "  \"seed_kernels\": {\"shuffle_s\": " << seed_best.shuffle
       << ", \"build_s\": " << seed_best.build
       << ", \"probe_s\": " << seed_best.probe
       << ", \"kernel_total_s\": " << seed_best.kernel_total
       << ", \"end_to_end_s\": " << seed_best.end_to_end << "},\n"
       << "  \"parallel_kernels\": {\"shuffle_s\": " << par_best.shuffle
       << ", \"build_s\": " << par_best.build
       << ", \"probe_s\": " << par_best.probe
       << ", \"kernel_total_s\": " << par_best.kernel_total
       << ", \"end_to_end_s\": " << par_best.end_to_end << "},\n"
       << "  \"columnar_kernels\": {\"shuffle_s\": " << col_best.shuffle
       << ", \"build_s\": " << col_best.build
       << ", \"probe_s\": " << col_best.probe
       << ", \"kernel_total_s\": " << col_best.kernel_total
       << ", \"end_to_end_s\": " << col_best.end_to_end
       << ", \"batch_size\": " << default_batch << "},\n"
       << "  \"speedup\": {\"shuffle\": " << seed_best.shuffle / par_best.shuffle
       << ", \"build\": " << seed_best.build / par_best.build
       << ", \"probe\": " << seed_best.probe / par_best.probe
       << ", \"total\": " << speedup_total
       << ", \"end_to_end\": " << speedup_e2e << "},\n"
       << "  \"columnar_vs_row_speedup\": {\"shuffle\": "
       << par_best.shuffle / col_best.shuffle
       << ", \"build\": " << par_best.build / col_best.build
       << ", \"probe\": " << par_best.probe / col_best.probe
       << ", \"total\": " << col_speedup_total
       << ", \"end_to_end\": " << col_speedup_e2e << "},\n"
       << "  \"filter_kernel\": {\"row_s\": " << filter_row_s
       << ", \"columnar_s\": " << filter_col_s
       << ", \"speedup\": " << filter_speedup << "},\n"
       << "  \"hash_kernel\": {\"row_s\": " << hash_row_s
       << ", \"columnar_s\": " << hash_col_s
       << ", \"speedup\": " << hash_speedup << "},\n"
       << "  \"batch_size_sweep\": [";
  for (size_t i = 0; i < sweep_sizes.size(); ++i) {
    json << (i == 0 ? "\n" : ",\n")
         << "    {\"batch_size\": " << sweep_sizes[i]
         << ", \"shuffle_s\": " << sweep_best[i].shuffle
         << ", \"build_s\": " << sweep_best[i].build
         << ", \"probe_s\": " << sweep_best[i].probe
         << ", \"kernel_total_s\": " << sweep_best[i].kernel_total << "}";
  }
  json << "\n  ]\n"
       << "}\n";
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dynopt

int main(int argc, char** argv) { return dynopt::bench::Main(argc, argv); }
