// Wall-clock benchmark of the executor's data-movement kernels on a
// shuffle-heavy multi-join pipeline: the TPC-H Q9 hash-join chain (orders ⋈
// lineitem ⋈ part ⋈ supplier ⋈ partsupp ⋈ nation, with Q9's UDF filters on
// orders and part), every join executed as shuffle-both-sides + local hash
// join at the cluster's node count.
//
// Two implementations run on identical inputs:
//  - seed:     the sequential reference kernels (exec/reference_kernels.h —
//              the pre-parallel-exchange executor, verbatim);
//  - parallel: the two-phase parallel shuffle exchange + flat-table hash
//              join with key hashes computed once and threaded through.
//
// The report (stdout + BENCH_kernels.json) breaks wall time down per
// kernel class (shuffle / build / probe) so every future perf PR has a
// machine-readable trajectory. Simulated seconds are asserted identical
// between the two implementations — the perf work must not move the paper's
// cost model.
//
// Usage: bench_kernels [--sf <paper_sf>] [--iters <n>] [--out <path>]

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/logging.h"
#include "exec/executor.h"
#include "exec/reference_kernels.h"
#include "plan/expr.h"

namespace dynopt {
namespace bench {
namespace {

using WallClock = std::chrono::steady_clock;

double SecondsSince(WallClock::time_point start) {
  return std::chrono::duration<double>(WallClock::now() - start).count();
}

/// One join step of the chain: shuffle keys are resolved by column name
/// against whatever the current intermediate's schema is.
struct JoinStep {
  std::vector<std::string> build_cols;
  std::vector<std::string> probe_cols;
};

std::vector<int> MustResolve(const Dataset& data,
                             const std::vector<std::string>& names) {
  std::vector<int> indices;
  for (const auto& name : names) {
    int idx = data.ColumnIndex(name);
    DYNOPT_CHECK(idx >= 0);
    indices.push_back(idx);
  }
  return indices;
}

struct PipelineResult {
  ExecMetrics metrics;   // Simulated + per-class wall metering.
  double total_wall = 0; // End-to-end wall seconds for the join chain.
  uint64_t rows_out = 0;
  Dataset output;
};

/// Runs the five-join chain over copies of `inputs`. `build_sides[s]` and
/// the running intermediate are consumed; inputs stay reusable.
PipelineResult RunPipeline(JobExecutor* executor,
                           const std::vector<Dataset>& build_inputs,
                           const Dataset& probe_input,
                           const std::vector<JoinStep>& steps,
                           bool parallel_kernels, bool keep_output) {
  // Copies happen before the timer: the benchmark measures the kernels,
  // not std::vector deep copies.
  std::vector<Dataset> builds = build_inputs;
  Dataset current = probe_input;
  const ClusterConfig& cluster = executor->cluster();

  PipelineResult result;
  const auto start = WallClock::now();
  for (size_t s = 0; s < steps.size(); ++s) {
    std::vector<int> build_keys = MustResolve(builds[s], steps[s].build_cols);
    std::vector<int> probe_keys = MustResolve(current, steps[s].probe_cols);
    if (parallel_kernels) {
      // Injection is never armed here, so the kernels cannot fail.
      auto build_or = executor->Repartition(std::move(builds[s]), build_keys,
                                            &result.metrics);
      DYNOPT_CHECK(build_or.ok());
      ShuffleResult build_parts = std::move(build_or).value();
      auto probe_or = executor->Repartition(std::move(current), probe_keys,
                                            &result.metrics);
      DYNOPT_CHECK(probe_or.ok());
      ShuffleResult probe_parts = std::move(probe_or).value();
      auto join_or = executor->LocalHashJoin(
          build_parts.data, probe_parts.data, build_keys, probe_keys,
          &result.metrics, &build_parts.hashes, &probe_parts.hashes);
      DYNOPT_CHECK(join_or.ok());
      current = std::move(join_or).value();
    } else {
      Dataset build_parts = reference::Repartition(
          std::move(builds[s]), build_keys, cluster, &result.metrics);
      Dataset probe_parts = reference::Repartition(
          std::move(current), probe_keys, cluster, &result.metrics);
      current = reference::LocalHashJoin(build_parts, probe_parts, build_keys,
                                         probe_keys, cluster,
                                         &result.metrics);
    }
  }
  result.total_wall = SecondsSince(start);
  result.rows_out = current.NumRows();
  if (keep_output) result.output = std::move(current);
  return result;
}

Dataset MustExec(JobExecutor* executor, std::unique_ptr<PlanNode> plan) {
  auto result = executor->Execute(*plan, {});
  DYNOPT_CHECK(result.ok());
  return std::move(result->data);
}

struct Breakdown {
  double shuffle = 0, build = 0, probe = 0;
  double kernel_total = 0;  // shuffle + build + probe wall clocks.
  double end_to_end = 0;    // Wall time around the whole chain, including
                            // benchmark overhead (freeing intermediates).
};

Breakdown ToBreakdown(const PipelineResult& r) {
  Breakdown b;
  b.shuffle = r.metrics.wall_shuffle_seconds;
  b.build = r.metrics.wall_build_seconds;
  b.probe = r.metrics.wall_probe_seconds;
  b.kernel_total = b.shuffle + b.build + b.probe;
  b.end_to_end = r.total_wall;
  return b;
}

void PrintBreakdown(const char* name, const Breakdown& b) {
  std::printf("%-18s shuffle=%8.3fs  build=%8.3fs  probe=%8.3fs  "
              "kernels=%8.3fs  end_to_end=%8.3fs\n",
              name, b.shuffle, b.build, b.probe, b.kernel_total,
              b.end_to_end);
}

int Main(int argc, char** argv) {
  int paper_sf = 100;
  int iters = 12;
  std::string out_path = "BENCH_kernels.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sf") == 0 && i + 1 < argc) {
      paper_sf = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      iters = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--sf <paper_sf>] [--iters <n>] [--out <path>]\n",
                   argv[0]);
      return 2;
    }
  }

  Engine* engine = GetEngine(paper_sf, /*with_indexes=*/false);
  JobExecutor executor = engine->MakeExecutor();

  // Untimed input preparation: scans + Q9's filters.
  Dataset lineitem = MustExec(&executor, PlanNode::Scan("lineitem", "l"));
  Dataset orders = MustExec(
      &executor,
      PlanNode::Filter(PlanNode::Scan("orders", "o"),
                       Eq(Udf("myym", {Col("o", "o_orderdate")}),
                          Lit(Value(199603)))));
  Dataset part = MustExec(
      &executor, PlanNode::Filter(PlanNode::Scan("part", "p"),
                                  Eq(Udf("mysub", {Col("p", "p_brand")}),
                                     Lit(Value("#3")))));
  Dataset supplier = MustExec(&executor, PlanNode::Scan("supplier", "s"));
  Dataset partsupp = MustExec(&executor, PlanNode::Scan("partsupp", "ps"));
  Dataset nation = MustExec(&executor, PlanNode::Scan("nation", "n"));

  const uint64_t lineitem_rows = lineitem.NumRows();
  std::vector<Dataset> build_inputs;
  build_inputs.push_back(std::move(orders));
  build_inputs.push_back(std::move(part));
  build_inputs.push_back(std::move(supplier));
  build_inputs.push_back(std::move(partsupp));
  build_inputs.push_back(std::move(nation));
  const std::vector<JoinStep> steps = {
      {{"o.o_orderkey"}, {"l.l_orderkey"}},
      {{"p.p_partkey"}, {"l.l_partkey"}},
      {{"s.s_suppkey"}, {"l.l_suppkey"}},
      {{"ps.ps_partkey", "ps.ps_suppkey"}, {"l.l_partkey", "l.l_suppkey"}},
      {{"n.n_nationkey"}, {"s.s_nationkey"}},
  };

  // Correctness + cost-model guard: one warm-up run of each implementation
  // must produce identical partitions and identical simulated metering.
  PipelineResult seed_check = RunPipeline(&executor, build_inputs, lineitem,
                                          steps, /*parallel_kernels=*/false,
                                          /*keep_output=*/true);
  PipelineResult par_check = RunPipeline(&executor, build_inputs, lineitem,
                                         steps, /*parallel_kernels=*/true,
                                         /*keep_output=*/true);
  DYNOPT_CHECK(par_check.output.partitions == seed_check.output.partitions);
  DYNOPT_CHECK(par_check.metrics.simulated_seconds ==
               seed_check.metrics.simulated_seconds);
  DYNOPT_CHECK(par_check.metrics.bytes_shuffled ==
               seed_check.metrics.bytes_shuffled);

  // Timed runs: best-of-iters (by kernel time) per implementation,
  // interleaved so neither side systematically benefits from warm caches.
  Breakdown seed_best, par_best;
  seed_best.kernel_total = par_best.kernel_total = 1e300;
  for (int it = 0; it < iters; ++it) {
    PipelineResult seed = RunPipeline(&executor, build_inputs, lineitem,
                                      steps, false, false);
    Breakdown sb = ToBreakdown(seed);
    if (sb.kernel_total < seed_best.kernel_total) seed_best = sb;
    PipelineResult par = RunPipeline(&executor, build_inputs, lineitem,
                                     steps, true, false);
    Breakdown pb = ToBreakdown(par);
    if (pb.kernel_total < par_best.kernel_total) par_best = pb;
  }

  const double speedup_total = seed_best.kernel_total / par_best.kernel_total;
  const double speedup_e2e = seed_best.end_to_end / par_best.end_to_end;
  std::printf("\n=== bench_kernels: TPC-H Q9 hash-join chain ===\n");
  std::printf("paper_sf=%d  generator_sf=%.2f  nodes=%zu  pool_threads=%zu  "
              "iters=%d\n",
              paper_sf, GeneratorSfForPaperSf(paper_sf),
              executor.cluster().num_nodes, engine->pool().num_threads(),
              iters);
  std::printf("lineitem_rows=%llu  output_rows=%llu  sim_seconds=%.3f "
              "(identical for both)\n\n",
              static_cast<unsigned long long>(lineitem_rows),
              static_cast<unsigned long long>(par_check.rows_out),
              par_check.metrics.simulated_seconds);
  PrintBreakdown("seed kernels", seed_best);
  PrintBreakdown("parallel kernels", par_best);
  std::printf("\nspeedup: shuffle=%.2fx build=%.2fx probe=%.2fx "
              "TOTAL=%.2fx (end_to_end=%.2fx)\n",
              seed_best.shuffle / par_best.shuffle,
              seed_best.build / par_best.build,
              seed_best.probe / par_best.probe, speedup_total, speedup_e2e);

  std::ofstream json(out_path);
  json << "{\n"
       << "  \"benchmark\": \"kernels\",\n"
       << "  \"pipeline\": \"tpch_q9_hash_join_chain\",\n"
       << "  \"paper_sf\": " << paper_sf << ",\n"
       << "  \"generator_sf\": " << GeneratorSfForPaperSf(paper_sf) << ",\n"
       << "  \"iterations\": " << iters << ",\n"
       << "  \"num_nodes\": " << executor.cluster().num_nodes << ",\n"
       << "  \"pool_threads\": " << engine->pool().num_threads() << ",\n"
       << "  \"lineitem_rows\": " << lineitem_rows << ",\n"
       << "  \"output_rows\": " << par_check.rows_out << ",\n"
       << "  \"simulated_seconds\": " << par_check.metrics.simulated_seconds
       << ",\n"
       << "  \"seed_kernels\": {\"shuffle_s\": " << seed_best.shuffle
       << ", \"build_s\": " << seed_best.build
       << ", \"probe_s\": " << seed_best.probe
       << ", \"kernel_total_s\": " << seed_best.kernel_total
       << ", \"end_to_end_s\": " << seed_best.end_to_end << "},\n"
       << "  \"parallel_kernels\": {\"shuffle_s\": " << par_best.shuffle
       << ", \"build_s\": " << par_best.build
       << ", \"probe_s\": " << par_best.probe
       << ", \"kernel_total_s\": " << par_best.kernel_total
       << ", \"end_to_end_s\": " << par_best.end_to_end << "},\n"
       << "  \"speedup\": {\"shuffle\": " << seed_best.shuffle / par_best.shuffle
       << ", \"build\": " << seed_best.build / par_best.build
       << ", \"probe\": " << seed_best.probe / par_best.probe
       << ", \"total\": " << speedup_total
       << ", \"end_to_end\": " << speedup_e2e << "}\n"
       << "}\n";
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dynopt

int main(int argc, char** argv) { return dynopt::bench::Main(argc, argv); }
