#include "exec/reference_kernels.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>

#include "common/logging.h"
#include "exec/join_hash_table.h"

namespace dynopt {
namespace reference {

namespace {

uint64_t MaxOver(const std::vector<uint64_t>& per_node) {
  uint64_t mx = 0;
  for (uint64_t v : per_node) mx = std::max(mx, v);
  return mx;
}

using WallClock = std::chrono::steady_clock;

double SecondsSince(WallClock::time_point start) {
  return std::chrono::duration<double>(WallClock::now() - start).count();
}

}  // namespace

Dataset Repartition(Dataset&& input, const std::vector<int>& key_indices,
                    const ClusterConfig& cluster, ExecMetrics* metrics) {
  const auto wall_start = WallClock::now();
  const size_t n = cluster.num_nodes;
  Dataset out(input.columns, n);
  std::vector<uint64_t> received_bytes(n, 0);
  std::vector<uint64_t> rows_in(input.partitions.size(), 0);
  // Route sequentially per source partition (destinations are shared).
  for (size_t p = 0; p < input.partitions.size(); ++p) {
    rows_in[p] = input.partitions[p].size();
    for (Row& row : input.partitions[p]) {
      size_t dest = static_cast<size_t>(HashRowKey(row, key_indices) % n);
      if (dest != p || input.partitions.size() != n) {
        uint64_t bytes = RowSizeBytes(row);
        metrics->bytes_shuffled += bytes;
        received_bytes[dest] += bytes;
      }
      out.partitions[dest].push_back(std::move(row));
    }
    input.partitions[p].clear();
  }
  uint64_t total_rows = 0;
  for (uint64_t r : rows_in) total_rows += r;
  metrics->tuples_processed += total_rows;
  metrics->simulated_seconds +=
      static_cast<double>(MaxOver(received_bytes)) *
          cluster.network_seconds_per_byte +
      static_cast<double>(MaxOver(rows_in)) * cluster.cpu_seconds_per_tuple;
  metrics->wall_shuffle_seconds += SecondsSince(wall_start);
  return out;
}

Dataset LocalHashJoin(const Dataset& build, const Dataset& probe,
                      const std::vector<int>& build_keys,
                      const std::vector<int>& probe_keys,
                      const ClusterConfig& cluster, ExecMetrics* metrics) {
  DYNOPT_CHECK(build.partitions.size() == probe.partitions.size());
  const size_t num_parts = build.partitions.size();
  std::vector<std::string> out_columns = build.columns;
  out_columns.insert(out_columns.end(), probe.columns.begin(),
                     probe.columns.end());
  Dataset out(out_columns, num_parts);
  std::vector<uint64_t> work(num_parts, 0);
  uint64_t total_work = 0;
  for (size_t p = 0; p < num_parts; ++p) {
    const auto& build_rows = build.partitions[p];
    const auto& probe_rows = probe.partitions[p];
    auto& dest = out.partitions[p];
    auto build_start = WallClock::now();
    std::unordered_map<uint64_t, std::vector<size_t>> table;
    table.reserve(build_rows.size());
    for (size_t i = 0; i < build_rows.size(); ++i) {
      if (AnyJoinKeyNull(build_rows[i], build_keys)) continue;
      table[HashRowKey(build_rows[i], build_keys)].push_back(i);
    }
    metrics->wall_build_seconds += SecondsSince(build_start);
    auto probe_start = WallClock::now();
    uint64_t local_work = build_rows.size() + probe_rows.size();
    for (const Row& probe_row : probe_rows) {
      if (AnyJoinKeyNull(probe_row, probe_keys)) continue;
      auto it = table.find(HashRowKey(probe_row, probe_keys));
      if (it == table.end()) continue;
      for (size_t build_idx : it->second) {
        const Row& build_row = build_rows[build_idx];
        if (!JoinKeysEqual(build_row, build_keys, probe_row, probe_keys)) {
          continue;
        }
        Row joined;
        joined.reserve(build_row.size() + probe_row.size());
        joined.insert(joined.end(), build_row.begin(), build_row.end());
        joined.insert(joined.end(), probe_row.begin(), probe_row.end());
        dest.push_back(std::move(joined));
        ++local_work;
      }
    }
    metrics->wall_probe_seconds += SecondsSince(probe_start);
    work[p] = local_work;
    total_work += local_work;
  }
  metrics->tuples_processed += total_work;
  metrics->simulated_seconds +=
      static_cast<double>(MaxOver(work)) * cluster.cpu_seconds_per_tuple;
  return out;
}

}  // namespace reference
}  // namespace dynopt
