#include "exec/executor.h"

#include <algorithm>
#include <atomic>
#include <unordered_map>

#include "common/hash.h"
#include "common/logging.h"
#include "storage/schema.h"
#include "storage/serde.h"

namespace dynopt {

namespace {

/// Key indices of `names` within `data`; error when any is missing.
Result<std::vector<int>> ResolveColumns(const Dataset& data,
                                        const std::vector<std::string>& names,
                                        const char* what) {
  std::vector<int> indices;
  indices.reserve(names.size());
  for (const auto& name : names) {
    int idx = data.ColumnIndex(name);
    if (idx < 0) {
      return Status::ExecutionError(std::string(what) + " column " + name +
                                    " not found in dataset");
    }
    indices.push_back(idx);
  }
  return indices;
}

bool AnyKeyNull(const Row& row, const std::vector<int>& keys) {
  for (int k : keys) {
    if (row[static_cast<size_t>(k)].is_null()) return true;
  }
  return false;
}

bool KeysEqual(const Row& a, const std::vector<int>& a_keys, const Row& b,
               const std::vector<int>& b_keys) {
  for (size_t i = 0; i < a_keys.size(); ++i) {
    if (a[static_cast<size_t>(a_keys[i])] !=
        b[static_cast<size_t>(b_keys[i])]) {
      return false;
    }
  }
  return true;
}

uint64_t MaxOver(const std::vector<uint64_t>& per_node) {
  uint64_t mx = 0;
  for (uint64_t v : per_node) mx = std::max(mx, v);
  return mx;
}

}  // namespace

JobExecutor::JobExecutor(Catalog* catalog, StatsManager* stats,
                         const UdfRegistry* udfs, const ClusterConfig& cluster,
                         ThreadPool* pool)
    : catalog_(catalog),
      stats_(stats),
      udfs_(udfs),
      cluster_(cluster),
      pool_(pool) {
  DYNOPT_CHECK(catalog != nullptr && pool != nullptr);
}

Result<JobResult> JobExecutor::Execute(
    const PlanNode& root, const std::map<std::string, Value>& params) {
  JobResult result;
  result.metrics.num_jobs = 1;
  DYNOPT_ASSIGN_OR_RETURN(result.data,
                          ExecNode(root, params, &result.metrics));
  result.metrics.rows_out = result.data.NumRows();
  return result;
}

Result<Dataset> JobExecutor::ExecNode(
    const PlanNode& node, const std::map<std::string, Value>& params,
    ExecMetrics* metrics) {
  switch (node.kind) {
    case PlanNode::Kind::kScan:
      return ExecScan(node, metrics);
    case PlanNode::Kind::kFilter:
      return ExecFilter(node, params, metrics);
    case PlanNode::Kind::kProject:
      return ExecProject(node, params, metrics);
    case PlanNode::Kind::kJoin:
      if (node.method == JoinMethod::kIndexNestedLoop) {
        return ExecIndexNestedLoopJoin(node, params, metrics);
      }
      return ExecJoin(node, params, metrics);
  }
  return Status::Internal("unknown plan node kind");
}

Result<Dataset> JobExecutor::ExecScan(const PlanNode& node,
                                      ExecMetrics* metrics) {
  DYNOPT_ASSIGN_OR_RETURN(std::shared_ptr<Table> table,
                          catalog_->GetTable(node.table));
  const Schema& schema = table->schema();
  // Qualified output names: base scans prefix with the alias; intermediate
  // readers keep stored (already-qualified) names.
  std::vector<std::string> all_columns;
  all_columns.reserve(schema.num_fields());
  for (size_t i = 0; i < schema.num_fields(); ++i) {
    all_columns.push_back(node.is_intermediate
                              ? schema.field(i).name
                              : node.alias + "." + schema.field(i).name);
  }
  // Projection pushdown: which slots to keep.
  std::vector<int> keep;
  std::vector<std::string> out_columns;
  if (node.scan_columns.empty()) {
    for (size_t i = 0; i < all_columns.size(); ++i) {
      keep.push_back(static_cast<int>(i));
    }
    out_columns = all_columns;
  } else {
    for (const auto& wanted : node.scan_columns) {
      auto it = std::find(all_columns.begin(), all_columns.end(), wanted);
      if (it == all_columns.end()) {
        return Status::ExecutionError("scan column " + wanted +
                                      " not in table " + node.table);
      }
      keep.push_back(static_cast<int>(it - all_columns.begin()));
      out_columns.push_back(wanted);
    }
  }

  const size_t num_parts = table->num_partitions();
  Dataset out(out_columns, num_parts);
  std::vector<uint64_t> bytes_in(num_parts, 0);
  std::vector<uint64_t> rows_in(num_parts, 0);
  pool_->ParallelFor(num_parts, [&](size_t p) {
    const auto& rows = table->partition(p);
    auto& dest = out.partitions[p];
    dest.reserve(rows.size());
    uint64_t bytes = 0;
    for (const Row& row : rows) {
      bytes += RowSizeBytes(row);
      Row projected;
      projected.reserve(keep.size());
      for (int k : keep) projected.push_back(row[static_cast<size_t>(k)]);
      dest.push_back(std::move(projected));
    }
    bytes_in[p] = bytes;
    rows_in[p] = rows.size();
  });

  uint64_t total_bytes = 0, total_rows = 0;
  for (size_t p = 0; p < num_parts; ++p) {
    total_bytes += bytes_in[p];
    total_rows += rows_in[p];
  }
  metrics->tuples_processed += total_rows;
  double io_seconds;
  if (node.is_intermediate) {
    metrics->bytes_intermediate_read += total_bytes;
    io_seconds = static_cast<double>(MaxOver(bytes_in)) *
                 cluster_.disk_read_seconds_per_byte;
    // Re-reading materialized intermediates is re-optimization overhead.
    metrics->reopt_seconds += io_seconds;
  } else {
    metrics->bytes_scanned += total_bytes;
    io_seconds = static_cast<double>(MaxOver(bytes_in)) *
                 cluster_.scan_seconds_per_byte;
  }
  metrics->simulated_seconds +=
      io_seconds + static_cast<double>(MaxOver(rows_in)) *
                       cluster_.cpu_seconds_per_tuple;
  return out;
}

Result<Dataset> JobExecutor::ExecFilter(
    const PlanNode& node, const std::map<std::string, Value>& params,
    ExecMetrics* metrics) {
  DYNOPT_ASSIGN_OR_RETURN(Dataset input,
                          ExecNode(*node.children[0], params, metrics));
  BindContext ctx;
  ctx.resolve_column = [&input](const std::string& name) {
    return input.ColumnIndex(name);
  };
  ctx.params = &params;
  ctx.udfs = udfs_;
  DYNOPT_ASSIGN_OR_RETURN(BoundExprPtr bound, Bind(node.predicate, ctx));

  const size_t num_parts = input.partitions.size();
  Dataset out(input.columns, num_parts);
  std::vector<uint64_t> rows_in(num_parts, 0);
  pool_->ParallelFor(num_parts, [&](size_t p) {
    auto& src = input.partitions[p];
    auto& dest = out.partitions[p];
    rows_in[p] = src.size();
    for (Row& row : src) {
      if (bound->EvalBool(row)) dest.push_back(std::move(row));
    }
  });
  uint64_t total_rows = 0;
  for (uint64_t r : rows_in) total_rows += r;
  metrics->tuples_processed += total_rows;
  metrics->simulated_seconds += static_cast<double>(MaxOver(rows_in)) *
                                cluster_.cpu_seconds_per_tuple;
  return out;
}

Result<Dataset> JobExecutor::ExecProject(
    const PlanNode& node, const std::map<std::string, Value>& params,
    ExecMetrics* metrics) {
  DYNOPT_ASSIGN_OR_RETURN(Dataset input,
                          ExecNode(*node.children[0], params, metrics));
  DYNOPT_ASSIGN_OR_RETURN(
      std::vector<int> keep,
      ResolveColumns(input, node.project_columns, "project"));
  const size_t num_parts = input.partitions.size();
  Dataset out(node.project_columns, num_parts);
  std::vector<uint64_t> rows_in(num_parts, 0);
  pool_->ParallelFor(num_parts, [&](size_t p) {
    auto& src = input.partitions[p];
    auto& dest = out.partitions[p];
    dest.reserve(src.size());
    rows_in[p] = src.size();
    for (const Row& row : src) {
      Row projected;
      projected.reserve(keep.size());
      for (int k : keep) projected.push_back(row[static_cast<size_t>(k)]);
      dest.push_back(std::move(projected));
    }
  });
  metrics->simulated_seconds += static_cast<double>(MaxOver(rows_in)) *
                                cluster_.cpu_seconds_per_tuple;
  return out;
}

Dataset JobExecutor::Repartition(Dataset&& input,
                                 const std::vector<int>& key_indices,
                                 ExecMetrics* metrics) {
  const size_t n = cluster_.num_nodes;
  Dataset out(input.columns, n);
  std::vector<uint64_t> received_bytes(n, 0);
  std::vector<uint64_t> rows_in(input.partitions.size(), 0);
  // Route sequentially per source partition (destinations are shared).
  for (size_t p = 0; p < input.partitions.size(); ++p) {
    rows_in[p] = input.partitions[p].size();
    for (Row& row : input.partitions[p]) {
      size_t dest = static_cast<size_t>(HashRowKey(row, key_indices) % n);
      if (dest != p || input.partitions.size() != n) {
        uint64_t bytes = RowSizeBytes(row);
        metrics->bytes_shuffled += bytes;
        received_bytes[dest] += bytes;
      }
      out.partitions[dest].push_back(std::move(row));
    }
    input.partitions[p].clear();
  }
  uint64_t total_rows = 0;
  for (uint64_t r : rows_in) total_rows += r;
  metrics->tuples_processed += total_rows;
  metrics->simulated_seconds +=
      static_cast<double>(MaxOver(received_bytes)) *
          cluster_.network_seconds_per_byte +
      static_cast<double>(MaxOver(rows_in)) * cluster_.cpu_seconds_per_tuple;
  return out;
}

Dataset JobExecutor::LocalHashJoin(const Dataset& build, const Dataset& probe,
                                   const std::vector<int>& build_keys,
                                   const std::vector<int>& probe_keys,
                                   ExecMetrics* metrics) {
  DYNOPT_CHECK(build.partitions.size() == probe.partitions.size());
  const size_t num_parts = build.partitions.size();
  std::vector<std::string> out_columns = build.columns;
  out_columns.insert(out_columns.end(), probe.columns.begin(),
                     probe.columns.end());
  Dataset out(out_columns, num_parts);
  std::vector<uint64_t> work(num_parts, 0);
  std::atomic<uint64_t> total_work{0};
  pool_->ParallelFor(num_parts, [&](size_t p) {
    const auto& build_rows = build.partitions[p];
    const auto& probe_rows = probe.partitions[p];
    auto& dest = out.partitions[p];
    std::unordered_map<uint64_t, std::vector<size_t>> table;
    table.reserve(build_rows.size());
    for (size_t i = 0; i < build_rows.size(); ++i) {
      if (AnyKeyNull(build_rows[i], build_keys)) continue;
      table[HashRowKey(build_rows[i], build_keys)].push_back(i);
    }
    uint64_t local_work = build_rows.size() + probe_rows.size();
    for (const Row& probe_row : probe_rows) {
      if (AnyKeyNull(probe_row, probe_keys)) continue;
      auto it = table.find(HashRowKey(probe_row, probe_keys));
      if (it == table.end()) continue;
      for (size_t build_idx : it->second) {
        const Row& build_row = build_rows[build_idx];
        if (!KeysEqual(build_row, build_keys, probe_row, probe_keys)) {
          continue;
        }
        Row joined;
        joined.reserve(build_row.size() + probe_row.size());
        joined.insert(joined.end(), build_row.begin(), build_row.end());
        joined.insert(joined.end(), probe_row.begin(), probe_row.end());
        dest.push_back(std::move(joined));
        ++local_work;
      }
    }
    work[p] = local_work;
    total_work.fetch_add(local_work);
  });
  metrics->tuples_processed += total_work.load();
  metrics->simulated_seconds +=
      static_cast<double>(MaxOver(work)) * cluster_.cpu_seconds_per_tuple;
  return out;
}

Result<Dataset> JobExecutor::ExecJoin(
    const PlanNode& node, const std::map<std::string, Value>& params,
    ExecMetrics* metrics) {
  DYNOPT_ASSIGN_OR_RETURN(Dataset build,
                          ExecNode(*node.children[0], params, metrics));
  DYNOPT_ASSIGN_OR_RETURN(Dataset probe,
                          ExecNode(*node.children[1], params, metrics));
  std::vector<std::string> build_names, probe_names;
  for (const auto& [l, r] : node.keys) {
    build_names.push_back(l);
    probe_names.push_back(r);
  }
  DYNOPT_ASSIGN_OR_RETURN(std::vector<int> build_keys,
                          ResolveColumns(build, build_names, "join build"));
  DYNOPT_ASSIGN_OR_RETURN(std::vector<int> probe_keys,
                          ResolveColumns(probe, probe_names, "join probe"));

  if (node.method == JoinMethod::kHashShuffle) {
    Dataset build_parts = Repartition(std::move(build), build_keys, metrics);
    Dataset probe_parts = Repartition(std::move(probe), probe_keys, metrics);
    return LocalHashJoin(build_parts, probe_parts, build_keys, probe_keys,
                         metrics);
  }

  // Broadcast join: replicate the (small) build side to every partition of
  // the probe side.
  DYNOPT_CHECK(node.method == JoinMethod::kBroadcast);
  std::vector<Row> build_rows = build.GatherRows();
  uint64_t build_bytes = 0;
  for (const Row& row : build_rows) build_bytes += RowSizeBytes(row);
  const size_t n = probe.partitions.size();
  metrics->bytes_broadcast += build_bytes * n;
  // Every node receives the full build side; receipt happens in parallel.
  metrics->simulated_seconds +=
      static_cast<double>(build_bytes) * cluster_.network_seconds_per_byte;
  // A build side larger than the per-node join memory overflows to disk:
  // the dynamic hash join re-partitions the overflow in extra passes. An
  // optimizer that broadcast a dataset it wrongly believed small pays here.
  if (build_bytes > cluster_.broadcast_threshold_bytes) {
    double overflow = static_cast<double>(build_bytes -
                                          cluster_.broadcast_threshold_bytes);
    metrics->simulated_seconds +=
        overflow * cluster_.spill_penalty_passes *
        (cluster_.disk_write_seconds_per_byte +
         cluster_.disk_read_seconds_per_byte);
  }

  Dataset replicated(build.columns, n);
  for (size_t p = 0; p < n; ++p) replicated.partitions[p] = build_rows;
  // Note: replication is physical here so per-node joins are real work; the
  // memory cost is bounded by the planner's broadcast threshold.
  return LocalHashJoin(replicated, probe, build_keys, probe_keys, metrics);
}

Result<Dataset> JobExecutor::ExecIndexNestedLoopJoin(
    const PlanNode& node, const std::map<std::string, Value>& params,
    ExecMetrics* metrics) {
  if (node.keys.size() != 1) {
    return Status::ExecutionError(
        "indexed nested loop join supports exactly one key pair");
  }
  const PlanNode& inner_scan = *node.children[1];
  if (inner_scan.kind != PlanNode::Kind::kScan || inner_scan.is_intermediate) {
    return Status::ExecutionError(
        "indexed nested loop join requires a base-table scan as inner");
  }
  DYNOPT_ASSIGN_OR_RETURN(std::shared_ptr<Table> inner,
                          catalog_->GetTable(inner_scan.table));
  // The inner key is qualified "alias.column"; strip the alias.
  const std::string& inner_key_qualified = node.keys[0].second;
  std::string prefix = inner_scan.alias + ".";
  if (inner_key_qualified.rfind(prefix, 0) != 0) {
    return Status::ExecutionError("inner join key " + inner_key_qualified +
                                  " does not belong to " + inner_scan.alias);
  }
  std::string inner_column = inner_key_qualified.substr(prefix.size());
  const SecondaryIndex* index = inner->GetSecondaryIndex(inner_column);
  if (index == nullptr) {
    return Status::ExecutionError("no secondary index on " +
                                  inner_scan.table + "." + inner_column);
  }

  DYNOPT_ASSIGN_OR_RETURN(Dataset outer,
                          ExecNode(*node.children[0], params, metrics));
  int outer_key = outer.ColumnIndex(node.keys[0].first);
  if (outer_key < 0) {
    return Status::ExecutionError("outer join key " + node.keys[0].first +
                                  " not found");
  }

  // Inner output columns (with projection pushdown).
  const Schema& schema = inner->schema();
  std::vector<std::string> inner_all;
  for (size_t i = 0; i < schema.num_fields(); ++i) {
    inner_all.push_back(inner_scan.alias + "." + schema.field(i).name);
  }
  std::vector<int> inner_keep;
  std::vector<std::string> inner_columns;
  if (inner_scan.scan_columns.empty()) {
    for (size_t i = 0; i < inner_all.size(); ++i) {
      inner_keep.push_back(static_cast<int>(i));
    }
    inner_columns = inner_all;
  } else {
    for (const auto& wanted : inner_scan.scan_columns) {
      auto it = std::find(inner_all.begin(), inner_all.end(), wanted);
      if (it == inner_all.end()) {
        return Status::ExecutionError("scan column " + wanted +
                                      " not in table " + inner_scan.table);
      }
      inner_keep.push_back(static_cast<int>(it - inner_all.begin()));
      inner_columns.push_back(wanted);
    }
  }

  // Broadcast the outer to every node; each arriving row probes the local
  // index immediately (Section 3, Indexed Nested Loop Join).
  std::vector<Row> outer_rows = outer.GatherRows();
  uint64_t outer_bytes = 0;
  for (const Row& row : outer_rows) outer_bytes += RowSizeBytes(row);
  const size_t n = inner->num_partitions();
  metrics->bytes_broadcast += outer_bytes * n;
  metrics->simulated_seconds +=
      static_cast<double>(outer_bytes) * cluster_.network_seconds_per_byte;

  std::vector<std::string> out_columns = outer.columns;
  out_columns.insert(out_columns.end(), inner_columns.begin(),
                     inner_columns.end());
  Dataset out(out_columns, n);
  std::vector<uint64_t> matched_bytes(n, 0);
  std::vector<uint64_t> lookups(n, 0);
  pool_->ParallelFor(n, [&](size_t p) {
    const auto& inner_rows = inner->partition(p);
    auto& dest = out.partitions[p];
    uint64_t local_matched_bytes = 0;
    for (const Row& outer_row : outer_rows) {
      const Value& key = outer_row[static_cast<size_t>(outer_key)];
      if (key.is_null()) continue;
      ++lookups[p];
      const std::vector<uint32_t>* offsets = index->Lookup(p, key);
      if (offsets == nullptr) continue;
      for (uint32_t off : *offsets) {
        const Row& inner_row = inner_rows[off];
        local_matched_bytes += RowSizeBytes(inner_row);
        Row joined;
        joined.reserve(outer_row.size() + inner_keep.size());
        joined.insert(joined.end(), outer_row.begin(), outer_row.end());
        for (int k : inner_keep) {
          joined.push_back(inner_row[static_cast<size_t>(k)]);
        }
        dest.push_back(std::move(joined));
      }
    }
    matched_bytes[p] = local_matched_bytes;
  });
  uint64_t total_lookups = 0, total_matched = 0;
  for (size_t p = 0; p < n; ++p) {
    total_lookups += lookups[p];
    total_matched += matched_bytes[p];
  }
  metrics->index_lookups += total_lookups;
  metrics->bytes_scanned += total_matched;  // Only matched pages are read.
  metrics->simulated_seconds +=
      static_cast<double>(MaxOver(lookups)) * cluster_.index_lookup_seconds +
      static_cast<double>(MaxOver(matched_bytes)) *
          cluster_.disk_read_seconds_per_byte;
  return out;
}

Result<SinkResult> JobExecutor::Materialize(
    Dataset&& data, const std::string& prefix,
    const std::vector<std::string>& stats_columns, bool collect_stats,
    ExecMetrics* metrics) {
  // Build the temp table schema: stored column names are the (already
  // qualified) dataset column names; types are inferred from data.
  std::vector<Field> fields;
  fields.reserve(data.columns.size());
  for (size_t c = 0; c < data.columns.size(); ++c) {
    ValueType type = ValueType::kNull;
    for (const auto& part : data.partitions) {
      for (const auto& row : part) {
        if (!row[c].is_null()) {
          type = row[c].type();
          break;
        }
      }
      if (type != ValueType::kNull) break;
    }
    fields.push_back(Field{data.columns[c], type});
  }
  std::string name = catalog_->UniqueTempName(prefix);
  auto table = std::make_shared<Table>(name, Schema(std::move(fields)),
                                       data.partitions.size());

  // Online statistics builders, one per partition, merged afterwards — the
  // paper collects sketches in parallel with writing the sink.
  std::vector<int> stat_indices;
  std::vector<std::string> stat_names;
  for (const auto& col : stats_columns) {
    int idx = data.ColumnIndex(col);
    if (idx >= 0) {
      stat_indices.push_back(idx);
      stat_names.push_back(col);
    }
  }
  const size_t num_parts = data.partitions.size();
  std::vector<TableStatsBuilder> builders;
  builders.reserve(num_parts);
  for (size_t p = 0; p < num_parts; ++p) {
    builders.emplace_back(stat_names, stat_indices);
  }
  std::vector<uint64_t> part_bytes(num_parts, 0);
  pool_->ParallelFor(num_parts, [&](size_t p) {
    uint64_t bytes = 0;
    for (const Row& row : data.partitions[p]) {
      bytes += RowSizeBytes(row);
      if (collect_stats) builders[p].AddRow(row);
    }
    part_bytes[p] = bytes;
  });
  // Sequential append preserves the partition layout.
  uint64_t total_bytes = 0, total_rows = 0;
  for (size_t p = 0; p < num_parts; ++p) {
    total_bytes += part_bytes[p];
    total_rows += data.partitions[p].size();
  }
  // Optionally round-trip each partition through the on-disk temp-file
  // format (the paper's intermediates are "stored in a temporary file").
  if (cluster_.materialize_to_disk) {
    std::vector<Status> statuses(num_parts);
    pool_->ParallelFor(num_parts, [&](size_t p) {
      std::string path = cluster_.spill_directory + "/" + name + ".p" +
                         std::to_string(p) + ".rows";
      Status st = WriteRowsFile(path, data.partitions[p]);
      if (st.ok()) {
        auto back = ReadRowsFile(path);
        if (back.ok()) {
          data.partitions[p] = std::move(back).value();
        } else {
          st = back.status();
        }
      }
      std::remove(path.c_str());
      statuses[p] = st;
    });
    for (const Status& st : statuses) {
      DYNOPT_RETURN_IF_ERROR(st);
    }
  }

  // Load partition-faithfully so the producing node's placement (and any
  // skew) survives materialization.
  for (size_t p = 0; p < num_parts; ++p) {
    for (Row& row : data.partitions[p]) {
      table->AppendRowToPartition(p, std::move(row));
    }
    data.partitions[p].clear();
  }

  DYNOPT_RETURN_IF_ERROR(catalog_->RegisterTable(table));

  SinkResult result;
  result.table_name = name;
  if (collect_stats) {
    TableStatsBuilder merged(stat_names, stat_indices);
    for (const auto& b : builders) merged.Merge(b);
    result.stats = merged.Finalize();
    result.stats.row_count = total_rows;
    result.stats.total_bytes = total_bytes;
    if (stats_ != nullptr) stats_->Put(name, result.stats);
    const double stats_cost =
        static_cast<double>(total_rows * std::max<size_t>(1, stat_names.size())) *
        cluster_.stats_seconds_per_value / static_cast<double>(num_parts);
    metrics->stats_seconds += stats_cost;
    metrics->simulated_seconds += stats_cost;
  } else {
    // Even without sketch collection the framework learns the exact size of
    // the materialized intermediate (the INGRES-style cardinality-only
    // feedback).
    result.stats.row_count = total_rows;
    result.stats.total_bytes = total_bytes;
    if (stats_ != nullptr) stats_->Put(name, result.stats);
  }

  metrics->bytes_materialized += total_bytes;
  const double write_seconds = static_cast<double>(MaxOver(part_bytes)) *
                               cluster_.disk_write_seconds_per_byte;
  metrics->reopt_seconds += write_seconds + cluster_.reopt_fixed_seconds;
  metrics->simulated_seconds +=
      write_seconds + cluster_.reopt_fixed_seconds;
  metrics->num_reopt_points += 1;
  return result;
}

}  // namespace dynopt
