#include "exec/executor.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iterator>

#include "common/hash.h"
#include "common/logging.h"
#include "common/metrics_registry.h"
#include "common/tracer.h"
#include "exec/join_hash_table.h"
#include "exec/row_kernels.h"
#include "exec/vector_kernels.h"
#include "storage/schema.h"
#include "storage/serde.h"

namespace dynopt {

namespace {

/// Key indices of `names` within `data`; error when any is missing.
Result<std::vector<int>> ResolveColumns(const Dataset& data,
                                        const std::vector<std::string>& names,
                                        const char* what) {
  std::vector<int> indices;
  indices.reserve(names.size());
  for (const auto& name : names) {
    int idx = data.ColumnIndex(name);
    if (idx < 0) {
      return Status::ExecutionError(std::string(what) + " column " + name +
                                    " not found in dataset");
    }
    indices.push_back(idx);
  }
  return indices;
}

/// Columnar twin of ResolveColumns (same error text).
Result<std::vector<int>> ResolveColumnsColumnar(
    const ColumnarDataset& data, const std::vector<std::string>& names,
    const char* what) {
  std::vector<int> indices;
  indices.reserve(names.size());
  for (const auto& name : names) {
    int idx = data.ColumnIndex(name);
    if (idx < 0) {
      return Status::ExecutionError(std::string(what) + " column " + name +
                                    " not found in dataset");
    }
    indices.push_back(idx);
  }
  return indices;
}

uint64_t MaxOver(const std::vector<uint64_t>& per_node) {
  uint64_t mx = 0;
  for (uint64_t v : per_node) mx = std::max(mx, v);
  return mx;
}

using WallClock = std::chrono::steady_clock;

double SecondsSince(WallClock::time_point start) {
  return std::chrono::duration<double>(WallClock::now() - start).count();
}

}  // namespace

JobExecutor::JobExecutor(Catalog* catalog, StatsManager* stats,
                         const UdfRegistry* udfs, const ClusterConfig& cluster,
                         ThreadPool* pool, FaultInjector* faults,
                         QueryContext* ctx, RetryBudget* retry_budget,
                         SketchManager* sketches,
                         MetricsRegistry* metrics_registry)
    : catalog_(catalog),
      stats_(stats),
      udfs_(udfs),
      cluster_(cluster),
      pool_(pool),
      faults_(faults),
      ctx_(ctx),
      retry_budget_(retry_budget),
      sketches_(sketches),
      registry_(metrics_registry != nullptr ? metrics_registry
                                            : &MetricsRegistry::Global()) {
  DYNOPT_CHECK(catalog != nullptr && pool != nullptr);
  // Config validation at construction time — a zero max_batch_size or node
  // count would otherwise fail as an underflow deep inside a kernel.
  const Status valid = ValidateClusterConfig(cluster_);
  if (!valid.ok()) {
    std::fprintf(stderr, "dynopt: invalid ClusterConfig: %s\n",
                 valid.message().c_str());
    std::abort();
  }
}

Status JobExecutor::ApplyFaults(FaultSite site,
                                const std::vector<double>& per_node_seconds,
                                ExecMetrics* metrics, int stage) {
  if (!FaultsArmed()) return Status::OK();
  const FaultInjectionConfig& cfg = faults_->config();
  if (stage < 0) stage = faults_->NextStageId();

  // Work a query-level abort throws away: for Execute-driven sites the
  // metrics object is the current job's fresh accumulator, so its
  // simulated_seconds is exactly this job's paid-for work. Materialize gets
  // the *cumulative* query metrics from the dynamic optimizer, so it cannot
  // attribute per-abort work and records zero (the recovery bench sweeps
  // stages, where the distinction washes out).
  auto aborted_work = [&]() {
    return site == FaultSite::kMaterialize ? 0.0 : metrics->simulated_seconds;
  };

  if (faults_->ShouldFailQuery(stage)) {
    faults_->RecordAbortedWork(aborted_work());
    return Status::Transient(std::string("injected node failure during ") +
                             FaultSiteName(site) + " (stage " +
                             std::to_string(stage) + ")");
  }
  if (per_node_seconds.empty()) return Status::OK();

  // Median clean task time: the baseline against which a task is deemed
  // "straggling enough" to deserve a speculative backup.
  std::vector<double> sorted = per_node_seconds;
  std::sort(sorted.begin(), sorted.end());
  const double median = sorted[sorted.size() / 2];

  double max_base = 0.0;
  double max_completion = 0.0;
  uint64_t retries = 0;
  uint64_t speculative = 0;
  for (size_t node = 0; node < per_node_seconds.size(); ++node) {
    const double base = per_node_seconds[node];
    max_base = std::max(max_base, base);
    double task = base;
    if (faults_->IsStraggler(site, stage, node)) {
      task = base * cfg.straggler_multiplier;
    }
    // Partition-level retry: each failed attempt burns its task time plus
    // a capped-exponential backoff wait before the next try. Each retry
    // also spends one token of the engine-wide budget; a dry bucket fails
    // the query fast with a *non-retryable* code (RunWithRecovery never
    // re-runs kResourceExhausted), cutting a fault storm off instead of
    // amplifying it.
    double completion = 0.0;
    int attempt = 0;
    while (faults_->TaskFails(site, stage, node, attempt)) {
      if (attempt + 1 >= cfg.backoff.max_attempts) {
        faults_->RecordAbortedWork(aborted_work());
        return Status::Transient(
            "node " + std::to_string(node) + " lost during " +
            FaultSiteName(site) + " (stage " + std::to_string(stage) + "): " +
            std::to_string(cfg.backoff.max_attempts) + " attempts failed");
      }
      if (retry_budget_ != nullptr && !retry_budget_->TryAcquire()) {
        faults_->RecordAbortedWork(aborted_work());
        registry_->counter("exec.retry_budget_denied")
            ->Increment();
        return Status::ResourceExhausted(
            "engine retry budget exhausted retrying node " +
            std::to_string(node) + " during " + FaultSiteName(site) +
            " (stage " + std::to_string(stage) + ")");
      }
      const uint64_t jitter_site = HashCombine(
          static_cast<uint64_t>(stage),
          HashCombine(static_cast<uint64_t>(node),
                      static_cast<uint64_t>(site)));
      completion += task + cfg.backoff.JitteredDelay(jitter_site, attempt);
      ++retries;
      ++attempt;
    }
    completion += task;
    // Speculative execution: a task projected to finish beyond
    // `speculation_threshold` x the median launches a backup copy on a
    // healthy node. The backup starts once the slowness is observable (at
    // the median completion time) and runs clean, so it finishes at
    // median + base; the earlier of original and backup wins.
    if (median > 0.0 && cfg.speculation_threshold > 0.0 &&
        completion > cfg.speculation_threshold * median) {
      const double backup = median + base;
      if (backup < completion) {
        completion = backup;
        ++speculative;
      }
    }
    max_completion = std::max(max_completion, completion);
  }

  // The stage's clean critical path (max over nodes) is already metered by
  // the kernel; faults only add the *extra* critical-path time on top, so
  // a disabled injector leaves simulated_seconds bit-identical.
  const double extra = max_completion - max_base;
  if (extra > 0.0) {
    metrics->simulated_seconds += extra;
    metrics->recovery_seconds += extra;
  }
  metrics->num_retries += retries;
  metrics->speculative_executions += speculative;
  registry_->counter("exec.retries")->Increment(retries);
  registry_->counter("exec.speculative")
      ->Increment(speculative);
  return Status::OK();
}

std::vector<Row> JobExecutor::TakeRowVec() {
  std::lock_guard<std::mutex> lock(scratch_mutex_);
  if (row_vec_pool_.empty()) return {};
  std::vector<Row> v = std::move(row_vec_pool_.back());
  row_vec_pool_.pop_back();
  return v;
}

void JobExecutor::RecycleRowVec(std::vector<Row>&& v) {
  if (v.capacity() == 0) return;
  v.clear();
  std::lock_guard<std::mutex> lock(scratch_mutex_);
  if (row_vec_pool_.size() < 64) row_vec_pool_.push_back(std::move(v));
}

std::vector<uint64_t> JobExecutor::TakeHashVec() {
  std::lock_guard<std::mutex> lock(scratch_mutex_);
  if (hash_vec_pool_.empty()) return {};
  std::vector<uint64_t> v = std::move(hash_vec_pool_.back());
  hash_vec_pool_.pop_back();
  return v;
}

void JobExecutor::RecycleHashVec(std::vector<uint64_t>&& v) {
  if (v.capacity() == 0) return;
  v.clear();
  std::lock_guard<std::mutex> lock(scratch_mutex_);
  if (hash_vec_pool_.size() < 64) hash_vec_pool_.push_back(std::move(v));
}

void JobExecutor::RecycleShuffleResult(ShuffleResult&& parts) {
  for (auto& rows : parts.data.partitions) RecycleRowVec(std::move(rows));
  for (auto& sizes : parts.data.row_sizes) RecycleHashVec(std::move(sizes));
  for (auto& hashes : parts.hashes) RecycleHashVec(std::move(hashes));
}

namespace {

/// True when every leaf of `node` scans a sys.* virtual table. Such jobs
/// (filters/projects over engine snapshots already in memory) are metered
/// at zero simulated cost — see the sys-table early-return in ExecScan.
bool ReadsOnlySystemTables(const PlanNode& node) {
  if (node.kind == PlanNode::Kind::kScan) {
    return Catalog::IsSystemName(node.table);
  }
  if (node.children.empty()) return false;
  for (const auto& child : node.children) {
    if (!ReadsOnlySystemTables(*child)) return false;
  }
  return true;
}

}  // namespace

Result<JobResult> JobExecutor::Execute(
    const PlanNode& root, const std::map<std::string, Value>& params) {
  TraceSpan span("job", "job");
  registry_->counter("exec.jobs")->Increment();
  JobResult result;
  result.metrics.num_jobs = 1;
  if (cluster_.exec.use_columnar) {
    // Vectorized path: run the operator tree over column batches, convert
    // at the root (the materialization boundary — Materialize, DRB serde
    // and result delivery stay row-oriented).
    DYNOPT_ASSIGN_OR_RETURN(ColumnarDataset columnar,
                            ExecNodeColumnar(root, params, &result.metrics));
    result.data = ToDataset(std::move(columnar));
  } else {
    DYNOPT_ASSIGN_OR_RETURN(result.data,
                            ExecNode(root, params, &result.metrics));
  }
  result.metrics.rows_out = result.data.NumRows();
  if (ReadsOnlySystemTables(root)) {
    result.metrics.simulated_seconds = 0;
  }
  if (ctx_ != nullptr) {
    result.metrics.peak_memory_bytes = std::max(
        result.metrics.peak_memory_bytes, ctx_->memory().peak());
    if (ctx_->memory_degraded || ctx_->strategy_downgraded) {
      result.metrics.admission_degraded = 1;
    }
  }
  span.AddArg("rows_out", static_cast<double>(result.metrics.rows_out));
  span.SetSimSeconds(result.metrics.simulated_seconds);
  return result;
}

Result<Dataset> JobExecutor::ExecNode(
    const PlanNode& node, const std::map<std::string, Value>& params,
    ExecMetrics* metrics) {
  // Cooperative cancellation: every operator boundary is a check point, so
  // a cancel/deadline terminates within one operator's work.
  DYNOPT_RETURN_IF_ERROR(CheckAlive());
  switch (node.kind) {
    case PlanNode::Kind::kScan:
      return ExecScan(node, metrics);
    case PlanNode::Kind::kFilter:
      return ExecFilter(node, params, metrics);
    case PlanNode::Kind::kProject:
      return ExecProject(node, params, metrics);
    case PlanNode::Kind::kJoin:
      if (node.method == JoinMethod::kIndexNestedLoop) {
        return ExecIndexNestedLoopJoin(node, params, metrics);
      }
      return ExecJoin(node, params, metrics);
  }
  return Status::Internal("unknown plan node kind");
}

Result<Dataset> JobExecutor::ExecScan(const PlanNode& node,
                                      ExecMetrics* metrics) {
  TraceSpan span("scan:" + node.table, "kernel");
  DYNOPT_ASSIGN_OR_RETURN(std::shared_ptr<Table> table,
                          catalog_->GetTable(node.table));
  const Schema& schema = table->schema();
  // Qualified output names: base scans prefix with the alias; intermediate
  // readers keep stored (already-qualified) names.
  std::vector<std::string> all_columns;
  all_columns.reserve(schema.num_fields());
  for (size_t i = 0; i < schema.num_fields(); ++i) {
    all_columns.push_back(node.is_intermediate
                              ? schema.field(i).name
                              : node.alias + "." + schema.field(i).name);
  }
  // Projection pushdown: which slots to keep.
  std::vector<int> keep;
  std::vector<std::string> out_columns;
  if (node.scan_columns.empty()) {
    for (size_t i = 0; i < all_columns.size(); ++i) {
      keep.push_back(static_cast<int>(i));
    }
    out_columns = all_columns;
  } else {
    for (const auto& wanted : node.scan_columns) {
      auto it = std::find(all_columns.begin(), all_columns.end(), wanted);
      if (it == all_columns.end()) {
        return Status::ExecutionError("scan column " + wanted +
                                      " not in table " + node.table);
      }
      keep.push_back(static_cast<int>(it - all_columns.begin()));
      out_columns.push_back(wanted);
    }
  }

  const size_t num_parts = table->num_partitions();
  Dataset out(out_columns, num_parts);
  out.row_sizes.resize(num_parts);
  std::vector<uint64_t> bytes_in(num_parts, 0);
  std::vector<uint64_t> rows_in(num_parts, 0);
  pool_->ParallelFor(num_parts, [&](size_t p) {
    const auto& rows = table->partition(p);
    auto& dest = out.partitions[p];
    auto& dest_sizes = out.row_sizes[p];
    dest.reserve(rows.size());
    dest_sizes.reserve(rows.size());
    uint64_t bytes = 0;
    for (const Row& row : rows) {
      bytes += RowSizeBytes(row);
      Row projected;
      projected.reserve(keep.size());
      // The values are hot in cache while being copied, so sizing the
      // projected row here is nearly free; downstream shuffles meter from
      // this annotation instead of re-reading the payload.
      uint64_t projected_bytes = 8;
      for (int k : keep) {
        const Value& v = row[static_cast<size_t>(k)];
        projected_bytes += ValueSizeBytesInline(v);
        projected.push_back(v);
      }
      dest_sizes.push_back(projected_bytes);
      dest.push_back(std::move(projected));
    }
    bytes_in[p] = bytes;
    rows_in[p] = rows.size();
  });

  uint64_t total_bytes = 0, total_rows = 0;
  for (size_t p = 0; p < num_parts; ++p) {
    total_bytes += bytes_in[p];
    total_rows += rows_in[p];
  }
  if (Catalog::IsSystemName(node.table)) {
    // sys.* virtual tables materialize engine state that is already in
    // memory: metered at zero simulated cost so introspection queries
    // never perturb the cost model a real workload sees.
    return out;
  }
  metrics->tuples_processed += total_rows;
  double io_seconds;
  if (node.is_intermediate) {
    metrics->bytes_intermediate_read += total_bytes;
    io_seconds = static_cast<double>(MaxOver(bytes_in)) *
                 cluster_.disk_read_seconds_per_byte;
    // Re-reading materialized intermediates is re-optimization overhead.
    metrics->reopt_seconds += io_seconds;
  } else {
    metrics->bytes_scanned += total_bytes;
    io_seconds = static_cast<double>(MaxOver(bytes_in)) *
                 cluster_.scan_seconds_per_byte;
  }
  metrics->simulated_seconds +=
      io_seconds + static_cast<double>(MaxOver(rows_in)) *
                       cluster_.cpu_seconds_per_tuple;
  return out;
}

Result<Dataset> JobExecutor::ExecFilter(
    const PlanNode& node, const std::map<std::string, Value>& params,
    ExecMetrics* metrics) {
  DYNOPT_ASSIGN_OR_RETURN(Dataset input,
                          ExecNode(*node.children[0], params, metrics));
  BindContext ctx;
  ctx.resolve_column = [&input](const std::string& name) {
    return input.ColumnIndex(name);
  };
  ctx.params = &params;
  ctx.udfs = udfs_;
  DYNOPT_ASSIGN_OR_RETURN(BoundExprPtr bound, Bind(node.predicate, ctx));

  const size_t num_parts = input.partitions.size();
  Dataset out(input.columns, num_parts);
  const bool has_sizes = input.HasRowSizes();
  if (has_sizes) out.row_sizes.resize(num_parts);
  std::vector<uint64_t> rows_in(num_parts, 0);
  pool_->ParallelFor(num_parts, [&](size_t p) {
    auto& src = input.partitions[p];
    auto& dest = out.partitions[p];
    rows_in[p] = src.size();
    if (has_sizes) {
      // A filter does not change surviving rows, so their size annotations
      // ride along.
      const uint64_t* src_sizes = input.row_sizes[p].data();
      auto& dest_sizes = out.row_sizes[p];
      for (size_t i = 0; i < src.size(); ++i) {
        if (bound->EvalBool(src[i])) {
          dest_sizes.push_back(src_sizes[i]);
          dest.push_back(std::move(src[i]));
        }
      }
    } else {
      for (Row& row : src) {
        if (bound->EvalBool(row)) dest.push_back(std::move(row));
      }
    }
  });
  uint64_t total_rows = 0;
  for (uint64_t r : rows_in) total_rows += r;
  metrics->tuples_processed += total_rows;
  metrics->simulated_seconds += static_cast<double>(MaxOver(rows_in)) *
                                cluster_.cpu_seconds_per_tuple;
  return out;
}

Result<Dataset> JobExecutor::ExecProject(
    const PlanNode& node, const std::map<std::string, Value>& params,
    ExecMetrics* metrics) {
  DYNOPT_ASSIGN_OR_RETURN(Dataset input,
                          ExecNode(*node.children[0], params, metrics));
  DYNOPT_ASSIGN_OR_RETURN(
      std::vector<int> keep,
      ResolveColumns(input, node.project_columns, "project"));
  const size_t num_parts = input.partitions.size();
  Dataset out(node.project_columns, num_parts);
  out.row_sizes.resize(num_parts);
  std::vector<uint64_t> rows_in(num_parts, 0);
  pool_->ParallelFor(num_parts, [&](size_t p) {
    auto& src = input.partitions[p];
    auto& dest = out.partitions[p];
    auto& dest_sizes = out.row_sizes[p];
    dest.reserve(src.size());
    dest_sizes.reserve(src.size());
    rows_in[p] = src.size();
    for (const Row& row : src) {
      Row projected;
      projected.reserve(keep.size());
      uint64_t projected_bytes = 8;
      for (int k : keep) {
        const Value& v = row[static_cast<size_t>(k)];
        projected_bytes += ValueSizeBytesInline(v);
        projected.push_back(v);
      }
      dest_sizes.push_back(projected_bytes);
      dest.push_back(std::move(projected));
    }
  });
  metrics->simulated_seconds += static_cast<double>(MaxOver(rows_in)) *
                                cluster_.cpu_seconds_per_tuple;
  return out;
}

Result<ShuffleResult> JobExecutor::Repartition(
    Dataset&& input, const std::vector<int>& key_indices,
    ExecMetrics* metrics) {
  DYNOPT_RETURN_IF_ERROR(CheckAlive());
  TraceSpan span("shuffle", "kernel");
  const auto wall_start = WallClock::now();
  const size_t n = cluster_.num_nodes;
  const size_t src_parts = input.partitions.size();

  // Fault overlay for one shuffle stage: node i both routes source
  // partition i (CPU) and receives destination partition i (network); the
  // wider of the two vectors bounds the node count.
  auto fault_check = [&](const std::vector<uint64_t>& received_bytes,
                         const std::vector<uint64_t>& rows_in) -> Status {
    if (!FaultsArmed()) return Status::OK();
    std::vector<double> per_node(std::max(received_bytes.size(),
                                          rows_in.size()),
                                 0.0);
    for (size_t i = 0; i < received_bytes.size(); ++i) {
      per_node[i] += static_cast<double>(received_bytes[i]) *
                     cluster_.network_seconds_per_byte;
    }
    for (size_t i = 0; i < rows_in.size(); ++i) {
      per_node[i] +=
          static_cast<double>(rows_in[i]) * cluster_.cpu_seconds_per_tuple;
    }
    return ApplyFaults(FaultSite::kRepartition, per_node, metrics);
  };

  ShuffleResult result;
  result.data = Dataset(input.columns, n);
  result.hashes.resize(n);
  result.data.row_sizes.resize(n);
  for (size_t d = 0; d < n; ++d) {
    result.data.partitions[d] = TakeRowVec();
    result.hashes[d] = TakeHashVec();
    result.data.row_sizes[d] = TakeHashVec();
  }
  // When the producer annotated per-row sizes (scan/project/join emission,
  // or an earlier shuffle), network metering reads 8 bytes per row instead
  // of re-walking the row payload — the routing loop then only touches the
  // key column's cache line. The shuffle always re-emits the annotation for
  // its own output, so the whole join chain meters each row's size once.
  const bool input_has_sizes = input.HasRowSizes();

  // Adaptive route: the two-phase exchange below exists so sources can be
  // routed concurrently without locks, at the price of a second pass over
  // the row headers. A pool without at least two workers cannot overlap
  // anything, so the classic one-pass exchange (hash, meter and move each
  // row while it is hot in cache) is strictly better there. Row order,
  // hashes and all metering are identical on both routes.
  if (pool_->num_threads() <= 1) {
    uint64_t total_rows = 0;
    size_t input_rows = 0;
    for (const auto& src : input.partitions) input_rows += src.size();
    const size_t estimate = input_rows / n + input_rows / (4 * n) + 4;
    for (size_t d = 0; d < n; ++d) {
      result.data.partitions[d].reserve(estimate);
      result.hashes[d].reserve(estimate);
      result.data.row_sizes[d].reserve(estimate);
    }
    std::vector<uint64_t> received_bytes(n, 0);
    std::vector<uint64_t> rows_in(src_parts, 0);
    uint64_t shuffled_bytes = 0;
    const int* keys = key_indices.data();
    const size_t num_keys = key_indices.size();
    const FastMod mod_n(n);
    std::vector<Row>* out_rows = result.data.partitions.data();
    std::vector<uint64_t>* out_hashes = result.hashes.data();
    std::vector<uint64_t>* out_sizes = result.data.row_sizes.data();
    for (size_t p = 0; p < src_parts; ++p) {
      auto& src = input.partitions[p];
      rows_in[p] = src.size();
      Row* rows_p = src.data();
      const uint64_t* src_sizes =
          input_has_sizes ? input.row_sizes[p].data() : nullptr;
      const size_t m = src.size();
      for (size_t i = 0; i < m; ++i) {
        // Each Row is its own heap block, so hashing + size-metering is a
        // DRAM-latency-bound pointer chase (the row headers stream, the
        // payloads do not). Prefetching the payload ~16 rows ahead hides
        // most of that (shorter distances leave half the latency exposed);
        // the seed kernels have no equivalent and stall. With a size
        // annotation only the key column's line is touched at all.
        if (i + 16 < m) {
          const char* pf = reinterpret_cast<const char*>(rows_p[i + 16].data());
          __builtin_prefetch(pf);
          if (src_sizes == nullptr) {
            __builtin_prefetch(pf + 128);
            __builtin_prefetch(pf + 256);
          }
        }
        Row& row = rows_p[i];
        const uint64_t h = HashRowKeyInline(row, keys, num_keys);
        const size_t dest = static_cast<size_t>(mod_n(h));
        const uint64_t bytes =
            src_sizes != nullptr ? src_sizes[i] : RowSizeBytesInline(row);
        // A row already sitting on its destination node (co-partitioned
        // input) moves no bytes. Adding zero keeps the counters identical
        // while letting the compiler emit a conditional move instead of a
        // hash-dependent (hence unpredictable) branch.
        const uint64_t moved = (dest != p || src_parts != n) ? bytes : 0;
        shuffled_bytes += moved;
        received_bytes[dest] += moved;
        out_sizes[dest].push_back(bytes);
        out_hashes[dest].push_back(h);
        out_rows[dest].push_back(std::move(row));
      }
      total_rows += rows_in[p];
      src.clear();
      RecycleRowVec(std::move(src));
    }
    metrics->bytes_shuffled += shuffled_bytes;
    metrics->tuples_processed += total_rows;
    metrics->simulated_seconds +=
        static_cast<double>(MaxOver(received_bytes)) *
            cluster_.network_seconds_per_byte +
        static_cast<double>(MaxOver(rows_in)) * cluster_.cpu_seconds_per_tuple;
    DYNOPT_RETURN_IF_ERROR(fault_check(received_bytes, rows_in));
    metrics->wall_shuffle_seconds += SecondsSince(wall_start);
    return result;
  }

  // Phase 1: route every source partition independently on the pool. Rows
  // do not move (and their non-key columns are not touched) yet — each
  // source only computes its rows' key hashes, destinations and
  // per-destination counts into private arrays, so the data path needs no
  // locks and no shared-vector contention.
  struct RoutePlan {
    std::vector<uint64_t> hashes;    // [row] -> key hash (computed once)
    std::vector<uint32_t> dest;      // [row] -> destination partition
    std::vector<size_t> counts;      // [dest] -> rows routed there
    std::vector<uint64_t> bytes_to;  // [dest] -> shuffled bytes
    uint64_t shuffled_bytes = 0;
  };
  std::vector<RoutePlan> routed(src_parts);
  std::vector<uint64_t> rows_in(src_parts, 0);
  pool_->ParallelFor(src_parts, [&](size_t p) {
    RoutePlan& plan = routed[p];
    const auto& src = input.partitions[p];
    const size_t m = src.size();
    rows_in[p] = m;
    plan.hashes.resize(m);
    plan.dest.resize(m);
    plan.counts.assign(n, 0);
    const int* keys = key_indices.data();
    const size_t num_keys = key_indices.size();
    const FastMod mod_n(n);
    const Row* rows_p = src.data();
    for (size_t i = 0; i < m; ++i) {
      // Hide the row-payload pointer chase (see the one-pass route above).
      if (i + 16 < m) {
        const char* pf = reinterpret_cast<const char*>(rows_p[i + 16].data());
        __builtin_prefetch(pf);
      }
      const uint64_t h = HashRowKeyInline(rows_p[i], keys, num_keys);
      const size_t dest = static_cast<size_t>(mod_n(h));
      plan.hashes[i] = h;
      plan.dest[i] = static_cast<uint32_t>(dest);
      ++plan.counts[dest];
    }
  });

  // Exact destination sizes are known, so every row moves exactly once into
  // exactly-reserved storage. offsets[p][d] is the first slot in destination
  // d owned by source p; sources occupy consecutive slot ranges in source
  // order, which reproduces the row order of a sequential shuffle exactly.
  std::vector<std::vector<size_t>> offsets(src_parts,
                                           std::vector<size_t>(n, 0));
  for (size_t d = 0; d < n; ++d) {
    size_t running = 0;
    for (size_t p = 0; p < src_parts; ++p) {
      offsets[p][d] = running;
      running += routed[p].counts[d];
    }
    result.data.partitions[d].resize(running);
    result.hashes[d].resize(running);
    result.data.row_sizes[d].resize(running);
  }

  // Phase 2: every source scatters its rows to its precomputed slots, in
  // parallel. Slot ranges are disjoint, so concurrent writers never touch
  // the same element. Byte metering happens here, in the same pass that
  // (only now) touches the full row, and lands in per-source accumulators
  // merged below.
  pool_->ParallelFor(src_parts, [&](size_t p) {
    auto& src = input.partitions[p];
    RoutePlan& plan = routed[p];
    plan.bytes_to.assign(n, 0);
    std::vector<size_t> next = offsets[p];
    Row* rows_p = src.data();
    const uint64_t* src_sizes =
        input_has_sizes ? input.row_sizes[p].data() : nullptr;
    const size_t m = src.size();
    for (size_t i = 0; i < m; ++i) {
      if (i + 16 < m) {
        const char* pf = reinterpret_cast<const char*>(rows_p[i + 16].data());
        __builtin_prefetch(pf);
        if (src_sizes == nullptr) {
          __builtin_prefetch(pf + 128);
          __builtin_prefetch(pf + 256);
        }
      }
      const size_t d = plan.dest[i];
      const uint64_t bytes =
          src_sizes != nullptr ? src_sizes[i] : RowSizeBytesInline(src[i]);
      // A row already sitting on its destination node (co-partitioned
      // input) moves no bytes; adding zero keeps the counters identical
      // without a hash-dependent branch.
      const uint64_t moved = (d != p || src_parts != n) ? bytes : 0;
      plan.shuffled_bytes += moved;
      plan.bytes_to[d] += moved;
      const size_t slot = next[d]++;
      result.data.partitions[d][slot] = std::move(src[i]);
      result.hashes[d][slot] = plan.hashes[i];
      result.data.row_sizes[d][slot] = bytes;
    }
    src.clear();
  });
  // Serial section: hand the emptied source vectors back to the pool.
  for (auto& src : input.partitions) RecycleRowVec(std::move(src));

  std::vector<uint64_t> received_bytes(n, 0);
  uint64_t total_rows = 0;
  uint64_t shuffled_bytes = 0;
  for (size_t p = 0; p < src_parts; ++p) {
    shuffled_bytes += routed[p].shuffled_bytes;
    total_rows += rows_in[p];
    for (size_t d = 0; d < n; ++d) received_bytes[d] += routed[p].bytes_to[d];
  }
  metrics->bytes_shuffled += shuffled_bytes;
  metrics->tuples_processed += total_rows;
  metrics->simulated_seconds +=
      static_cast<double>(MaxOver(received_bytes)) *
          cluster_.network_seconds_per_byte +
      static_cast<double>(MaxOver(rows_in)) * cluster_.cpu_seconds_per_tuple;
  DYNOPT_RETURN_IF_ERROR(fault_check(received_bytes, rows_in));
  metrics->wall_shuffle_seconds += SecondsSince(wall_start);
  return result;
}

void JobExecutor::LeafHashJoin(const std::vector<Row>& build_rows,
                               const std::vector<Row>& probe_rows,
                               const std::vector<int>& build_keys,
                               const std::vector<int>& probe_keys,
                               uint64_t* work, std::vector<Row>* dest,
                               std::vector<uint64_t>* dest_sizes) {
  JoinHashTable table;
  table.Build(build_rows, build_keys, nullptr);
  constexpr uint32_t kEnd = JoinHashTable::kEnd;
  const uint32_t* heads = table.heads();
  const uint32_t* next = table.next();
  const uint64_t* table_hashes = table.hashes();
  const size_t mask = table.mask();
  uint64_t local_work = build_rows.size() + probe_rows.size();
  for (const Row& probe_row : probe_rows) {
    if (AnyJoinKeyNull(probe_row, probe_keys)) continue;
    const uint64_t h = HashRowKey(probe_row, probe_keys);
    for (uint32_t i = heads[h & mask]; i != kEnd; i = next[i]) {
      if (table_hashes[i] != h) continue;
      const Row& build_row = build_rows[i];
      if (!JoinKeysEqual(build_row, build_keys, probe_row, probe_keys)) {
        continue;
      }
      dest->emplace_back();
      Row& joined = dest->back();
      joined.reserve(build_row.size() + probe_row.size());
      joined.insert(joined.end(), build_row.begin(), build_row.end());
      joined.insert(joined.end(), probe_row.begin(), probe_row.end());
      if (dest_sizes != nullptr) {
        // Joined-row size annotation, same formula as the in-memory probe:
        // both payloads, one 8-byte row header.
        dest_sizes->push_back(RowSizeBytesInline(build_row) +
                              RowSizeBytesInline(probe_row) - 8);
      }
      ++local_work;
    }
  }
  *work += local_work;
}

Status JobExecutor::GraceJoinPartition(
    const std::vector<Row>& build_rows, const std::vector<Row>& probe_rows,
    const std::vector<int>& build_keys, const std::vector<int>& probe_keys,
    int depth, uint64_t salt, size_t part, uint64_t* work,
    std::vector<Row>* dest, std::vector<uint64_t>* dest_sizes,
    SpillStats* stats) {
  DYNOPT_RETURN_IF_ERROR(CheckAlive());
  const uint64_t budget = cluster_.memory.join_memory_budget_bytes;
  uint64_t build_size = 0;
  for (const Row& row : build_rows) build_size += RowSizeBytesInline(row);
  // In-memory leaf: the build side fits the budget, cannot be split
  // further, or the recursion cap is reached — then the join runs over
  // budget rather than refuse (a single query always completes; the
  // tracker records the over-subscription).
  if (budget == 0 || build_size <= budget || build_rows.size() <= 1 ||
      depth >= cluster_.memory.max_spill_recursion) {
    MemoryReservation leaf_mem(ctx_ != nullptr ? &ctx_->memory() : nullptr);
    leaf_mem.GrowUnchecked(build_size);
    LeafHashJoin(build_rows, probe_rows, build_keys, probe_keys, work, dest,
                 dest_sizes);
    return Status::OK();
  }

  // Split both sides by a re-salted key hash — decorrelated from the node
  // routing (h % num_nodes) and from parent splits, so keys that clustered
  // at this level spread out below. NULL join keys never match, so their
  // rows are dropped at split time instead of being spilled.
  const int fanout = std::max(2, cluster_.memory.max_spill_fanout);
  std::vector<std::vector<Row>> build_sub(fanout);
  std::vector<std::vector<Row>> probe_sub(fanout);
  const FastMod mod_f(static_cast<uint64_t>(fanout));
  for (const Row& row : build_rows) {
    if (AnyJoinKeyNull(row, build_keys)) continue;
    const uint64_t h = Mix64(HashRowKeyInline(row, build_keys) ^ salt);
    build_sub[mod_f(h)].push_back(row);
  }
  for (const Row& row : probe_rows) {
    if (AnyJoinKeyNull(row, probe_keys)) continue;
    const uint64_t h = Mix64(HashRowKeyInline(row, probe_keys) ^ salt);
    probe_sub[mod_f(h)].push_back(row);
  }
  stats->repartition_rows += build_rows.size() + probe_rows.size();
  stats->spill_seconds +=
      static_cast<double>(build_rows.size() + probe_rows.size()) *
      cluster_.cpu_seconds_per_tuple;

  // Spill every non-empty sub-partition pair to checksummed files, freeing
  // each in-memory copy as it is written: from here on, the partition's
  // resident set is one sub-partition pair at a time. Every spilled byte is
  // written once and read back once, charged at the disk rates.
  const uint64_t serial =
      spill_serial_.fetch_add(1, std::memory_order_relaxed);
  const std::string base =
      cluster_.spill_directory + "/" +
      (ctx_ != nullptr ? ctx_->SpillFilePrefix()
                       : std::string("__spill_q0_")) +
      "s" + std::to_string(serial) + "_p" + std::to_string(part) + "_d" +
      std::to_string(depth) + "_k";
  std::vector<std::string> files;
  files.reserve(static_cast<size_t>(fanout) * 2);
  auto cleanup = [&files]() {
    for (const std::string& f : files) std::remove(f.c_str());
  };
  std::vector<char> live(fanout, 0);
  for (int k = 0; k < fanout; ++k) {
    if (build_sub[k].empty() && probe_sub[k].empty()) continue;
    live[k] = 1;
    uint64_t pair_bytes = 0;
    for (const Row& row : build_sub[k]) pair_bytes += RowSizeBytesInline(row);
    for (const Row& row : probe_sub[k]) pair_bytes += RowSizeBytesInline(row);
    const std::string bpath = base + std::to_string(k) + ".build.drb";
    const std::string ppath = base + std::to_string(k) + ".probe.drb";
    files.push_back(bpath);
    files.push_back(ppath);
    Status st = WriteRowsFile(bpath, build_sub[k]);
    if (st.ok()) st = WriteRowsFile(ppath, probe_sub[k]);
    if (!st.ok()) {
      cleanup();
      return st;
    }
    stats->spilled_bytes += pair_bytes;
    stats->spill_seconds += static_cast<double>(pair_bytes) *
                            (cluster_.disk_write_seconds_per_byte +
                             cluster_.disk_read_seconds_per_byte);
    ++stats->spill_partitions;
    build_sub[k] = std::vector<Row>();
    probe_sub[k] = std::vector<Row>();
  }
  build_sub.clear();
  probe_sub.clear();

  // Join each sub-partition pair: read both sides back, drop the files,
  // recurse (a still-oversized sub-partition splits again under a fresh
  // salt, up to max_spill_recursion).
  for (int k = 0; k < fanout; ++k) {
    if (!live[k]) continue;
    Status alive = CheckAlive();
    if (!alive.ok()) {
      cleanup();
      return alive;
    }
    const std::string bpath = base + std::to_string(k) + ".build.drb";
    const std::string ppath = base + std::to_string(k) + ".probe.drb";
    auto sub_build = ReadRowsFile(bpath);
    if (!sub_build.ok()) {
      cleanup();
      return sub_build.status();
    }
    auto sub_probe = ReadRowsFile(ppath);
    if (!sub_probe.ok()) {
      cleanup();
      return sub_probe.status();
    }
    std::remove(bpath.c_str());
    std::remove(ppath.c_str());
    const uint64_t next_salt = Mix64(
        salt ^ (0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(k + 1)));
    Status st = GraceJoinPartition(sub_build.value(), sub_probe.value(),
                                   build_keys, probe_keys, depth + 1,
                                   next_salt, part, work, dest, dest_sizes,
                                   stats);
    if (!st.ok()) {
      cleanup();
      return st;
    }
  }
  return Status::OK();
}

Result<Dataset> JobExecutor::LocalHashJoin(
    const Dataset& build, const Dataset& probe,
    const std::vector<int>& build_keys, const std::vector<int>& probe_keys,
    ExecMetrics* metrics,
    const std::vector<std::vector<uint64_t>>* build_hashes,
    const std::vector<std::vector<uint64_t>>* probe_hashes) {
  DYNOPT_CHECK(build.partitions.size() == probe.partitions.size());
  DYNOPT_RETURN_IF_ERROR(CheckAlive());
  const size_t num_parts = build.partitions.size();
  std::vector<std::string> out_columns = build.columns;
  out_columns.insert(out_columns.end(), probe.columns.begin(),
                     probe.columns.end());
  Dataset out(out_columns, num_parts);
  // A joined row is build-row ++ probe-row, so its byte size is knowable in
  // O(1) from the parents' annotations: both sides contribute their values,
  // but the 8-byte row header is only paid once.
  const bool emit_sizes = build.HasRowSizes() && probe.HasRowSizes();
  if (emit_sizes) out.row_sizes.resize(num_parts);
  for (size_t p = 0; p < num_parts; ++p) {
    out.partitions[p] = TakeRowVec();
    if (emit_sizes) out.row_sizes[p] = TakeHashVec();
  }

  // Per-node join-memory governance: size every build partition (cheap sum
  // of the producer's annotations when present) and mark the ones exceeding
  // the join budget for the grace-join spill path. With a zero budget
  // (default) nothing is sized and nothing spills — the in-memory path and
  // its metering are untouched.
  const uint64_t join_budget = cluster_.memory.join_memory_budget_bytes;
  const bool governed = join_budget > 0 || ctx_ != nullptr;
  std::vector<uint64_t> build_bytes;
  std::vector<char> spill(num_parts, 0);
  bool any_spill = false;
  if (governed) {
    build_bytes.assign(num_parts, 0);
    const bool build_has_sizes = build.HasRowSizes();
    pool_->ParallelFor(num_parts, [&](size_t p) {
      uint64_t bytes = 0;
      if (build_has_sizes) {
        for (uint64_t b : build.row_sizes[p]) bytes += b;
      } else {
        for (const Row& row : build.partitions[p]) {
          bytes += RowSizeBytesInline(row);
        }
      }
      build_bytes[p] = bytes;
    });
    if (join_budget > 0) {
      for (size_t p = 0; p < num_parts; ++p) {
        if (build_bytes[p] > join_budget && build.partitions[p].size() > 1) {
          spill[p] = 1;
          any_spill = true;
        }
      }
    }
  }
  // Account the resident build side against the query's tracker for the
  // duration of the join (spilled partitions account their sub-joins inside
  // GraceJoinPartition instead).
  MemoryReservation join_mem(ctx_ != nullptr ? &ctx_->memory() : nullptr);
  if (ctx_ != nullptr) {
    for (size_t p = 0; p < num_parts; ++p) {
      if (!spill[p]) join_mem.GrowUnchecked(build_bytes[p]);
    }
  }

  // Build phase: one flat table per partition, reusing the executor's
  // pooled tables (their vectors keep capacity between joins). Spilled
  // partitions never build a full-partition table — that is the point.
  TraceSpan build_span("join-build", "kernel");
  auto wall_start = WallClock::now();
  if (join_tables_.size() < num_parts) join_tables_.resize(num_parts);
  std::vector<JoinHashTable>& tables = join_tables_;
  pool_->ParallelFor(num_parts, [&](size_t p) {
    if (spill[p]) return;
    tables[p].Build(build.partitions[p], build_keys,
                    build_hashes != nullptr ? &(*build_hashes)[p] : nullptr);
  });
  metrics->wall_build_seconds += SecondsSince(wall_start);
  if (FaultsArmed()) {
    // Build-stage fault overlay: node p's clean task time is inserting its
    // build partition into the hash table.
    std::vector<double> build_seconds(num_parts, 0.0);
    for (size_t p = 0; p < num_parts; ++p) {
      build_seconds[p] = static_cast<double>(build.partitions[p].size()) *
                         cluster_.cpu_seconds_per_tuple;
    }
    DYNOPT_RETURN_IF_ERROR(
        ApplyFaults(FaultSite::kBuild, build_seconds, metrics));
  }
  build_span.End();

  // Probe phase. Spilled partitions take the grace-join route inside the
  // same ParallelFor: partition both sides to disk and join recursively,
  // emitting into the same output slot. Their failures (spill I/O, a
  // cancellation observed mid-spill) land in part_status, merged after the
  // loop.
  DYNOPT_RETURN_IF_ERROR(CheckAlive());
  TraceSpan probe_span("join-probe", "kernel");
  wall_start = WallClock::now();
  std::vector<uint64_t> work(num_parts, 0);
  std::vector<Status> part_status(num_parts);
  std::vector<SpillStats> part_spill(any_spill ? num_parts : 0);
  pool_->ParallelFor(num_parts, [&](size_t p) {
    if (spill[p]) {
      uint64_t local_work = 0;
      part_status[p] = GraceJoinPartition(
          build.partitions[p], probe.partitions[p], build_keys, probe_keys,
          /*depth=*/0, /*salt=*/0xc2b2ae3d27d4eb4fULL, p, &local_work,
          &out.partitions[p], emit_sizes ? &out.row_sizes[p] : nullptr,
          &part_spill[p]);
      work[p] = local_work;
      return;
    }
    const auto& build_rows = build.partitions[p];
    const auto& probe_rows = probe.partitions[p];
    const JoinHashTable& table = tables[p];
    const std::vector<uint64_t>* hashes =
        probe_hashes != nullptr ? &(*probe_hashes)[p] : nullptr;
    auto& dest = out.partitions[p];
    // FK equi-joins emit about one row per probe row; reserving that up
    // front removes most of the doubling reallocations (each of which
    // re-moves every previously emitted row header). Worst case this
    // over-allocates headers only, and many-to-many joins still grow.
    dest.reserve(probe_rows.size());
    const uint64_t* build_sizes =
        emit_sizes ? build.row_sizes[p].data() : nullptr;
    const uint64_t* probe_sizes =
        emit_sizes ? probe.row_sizes[p].data() : nullptr;
    std::vector<uint64_t>* dest_sizes =
        emit_sizes ? &out.row_sizes[p] : nullptr;
    if (dest_sizes != nullptr) dest_sizes->reserve(probe_rows.size());
    uint64_t local_work = build_rows.size() + probe_rows.size();
    // Hoisted raw views: const locals stay in registers across the emission
    // writes below, which the compiler must otherwise assume may alias the
    // vectors' headers and reload every iteration.
    constexpr uint32_t kEnd = JoinHashTable::kEnd;
    const uint32_t* heads = table.heads();
    const uint32_t* next = table.next();
    const uint64_t* table_hashes = table.hashes();
    const size_t mask = table.mask();
    const size_t num_probe_rows = probe_rows.size();
    const uint64_t* probe_h = hashes != nullptr ? hashes->data() : nullptr;
    for (size_t j = 0; j < num_probe_rows; ++j) {
      uint64_t h;
      uint32_t first;
      if (probe_h != nullptr) {
        // Precomputed hashes let misses resolve from the table's own arrays
        // — the chain is walked comparing full 64-bit hashes (L1-resident)
        // and the probe row itself is only touched on a hash match. NULL-key
        // rows are filtered below on that (rare) match; the table holds no
        // NULL-key entries, so hash + key equality already reject them, and
        // the explicit check keeps the invariant obvious.
        h = probe_h[j];
        // The upcoming bucket loads are data-dependent random accesses into
        // an array that outgrows L2 for large build sides; prefetching a few
        // iterations ahead hides most of that latency.
        if (j + 8 < num_probe_rows) {
          __builtin_prefetch(&heads[probe_h[j + 8] & mask]);
        }
        first = heads[h & mask];
        while (first != kEnd && table_hashes[first] != h) first = next[first];
        if (first == kEnd) continue;
        if (AnyJoinKeyNull(probe_rows[j], probe_keys)) continue;
      } else {
        if (AnyJoinKeyNull(probe_rows[j], probe_keys)) continue;
        h = HashRowKey(probe_rows[j], probe_keys);
        first = heads[h & mask];
      }
      const Row& probe_row = probe_rows[j];
      for (uint32_t i = first; i != kEnd; i = next[i]) {
        if (table_hashes[i] != h) continue;
        const Row& build_row = build_rows[i];
        if (!JoinKeysEqual(build_row, build_keys, probe_row, probe_keys)) {
          continue;
        }
        dest.emplace_back();
        Row& joined = dest.back();
        joined.reserve(build_row.size() + probe_row.size());
        joined.insert(joined.end(), build_row.begin(), build_row.end());
        joined.insert(joined.end(), probe_row.begin(), probe_row.end());
        if (dest_sizes != nullptr) {
          dest_sizes->push_back(build_sizes[i] + probe_sizes[j] - 8);
        }
        ++local_work;
      }
    }
    work[p] = local_work;
  });
  metrics->wall_probe_seconds += SecondsSince(wall_start);
  for (const Status& st : part_status) {
    DYNOPT_RETURN_IF_ERROR(st);
  }

  uint64_t total_work = 0;
  for (uint64_t w : work) total_work += w;
  metrics->tuples_processed += total_work;
  metrics->simulated_seconds +=
      static_cast<double>(MaxOver(work)) * cluster_.cpu_seconds_per_tuple;
  if (any_spill) {
    // Spill cost: each spilled partition's disk passes + repartition CPU run
    // on that partition's node, concurrently across nodes — so simulated
    // time takes the max over partitions while the byte/partition counters
    // sum.
    double max_spill_seconds = 0.0;
    uint64_t call_spilled_bytes = 0;
    uint64_t call_spill_partitions = 0;
    for (size_t p = 0; p < num_parts; ++p) {
      const SpillStats& s = part_spill[p];
      max_spill_seconds = std::max(max_spill_seconds, s.spill_seconds);
      call_spilled_bytes += s.spilled_bytes;
      call_spill_partitions += s.spill_partitions;
    }
    metrics->spilled_bytes += call_spilled_bytes;
    metrics->spill_partitions += call_spill_partitions;
    registry_->counter("exec.spill_bytes")
        ->Increment(call_spilled_bytes);
    registry_->counter("exec.spill_partitions")
        ->Increment(call_spill_partitions);
    metrics->simulated_seconds += max_spill_seconds;
    if (ctx_ != nullptr) {
      metrics->peak_memory_bytes =
          std::max(metrics->peak_memory_bytes, ctx_->memory().peak());
    }
  }
  if (FaultsArmed()) {
    // Probe-stage fault overlay: node p's clean task time is its probe +
    // emission work (work[p] minus the build rows already charged above).
    std::vector<double> probe_seconds(num_parts, 0.0);
    for (size_t p = 0; p < num_parts; ++p) {
      probe_seconds[p] =
          static_cast<double>(work[p] - build.partitions[p].size()) *
          cluster_.cpu_seconds_per_tuple;
    }
    DYNOPT_RETURN_IF_ERROR(
        ApplyFaults(FaultSite::kProbe, probe_seconds, metrics));
  }
  return out;
}

Result<Dataset> JobExecutor::ExecJoin(
    const PlanNode& node, const std::map<std::string, Value>& params,
    ExecMetrics* metrics) {
  DYNOPT_ASSIGN_OR_RETURN(Dataset build,
                          ExecNode(*node.children[0], params, metrics));
  DYNOPT_ASSIGN_OR_RETURN(Dataset probe,
                          ExecNode(*node.children[1], params, metrics));
  return ExecJoinWithInputs(node, std::move(build), std::move(probe),
                            metrics);
}

Result<Dataset> JobExecutor::ExecJoinWithInputs(const PlanNode& node,
                                                Dataset&& build,
                                                Dataset&& probe,
                                                ExecMetrics* metrics) {
  std::vector<std::string> build_names, probe_names;
  for (const auto& [l, r] : node.keys) {
    build_names.push_back(l);
    probe_names.push_back(r);
  }
  DYNOPT_ASSIGN_OR_RETURN(std::vector<int> build_keys,
                          ResolveColumns(build, build_names, "join build"));
  DYNOPT_ASSIGN_OR_RETURN(std::vector<int> probe_keys,
                          ResolveColumns(probe, probe_names, "join probe"));

  if (node.method == JoinMethod::kHashShuffle) {
    if (PredicateTransferEnabled()) {
      // Sideways pushdown: ship the build side's key filter so pruned probe
      // rows never enter either Repartition below.
      TransferPredicateRows(build, build_keys, &probe, probe_keys, metrics);
    }
    DYNOPT_ASSIGN_OR_RETURN(ShuffleResult build_parts,
                            Repartition(std::move(build), build_keys,
                                        metrics));
    DYNOPT_ASSIGN_OR_RETURN(ShuffleResult probe_parts,
                            Repartition(std::move(probe), probe_keys,
                                        metrics));
    DYNOPT_ASSIGN_OR_RETURN(
        Dataset joined,
        LocalHashJoin(build_parts.data, probe_parts.data, build_keys,
                      probe_keys, metrics, &build_parts.hashes,
                      &probe_parts.hashes));
    // The shuffled inputs are fully consumed; recycle their storage for the
    // next exchange instead of returning it to the allocator.
    RecycleShuffleResult(std::move(build_parts));
    RecycleShuffleResult(std::move(probe_parts));
    return joined;
  }

  // Broadcast join: replicate the (small) build side to every partition of
  // the probe side.
  DYNOPT_CHECK(node.method == JoinMethod::kBroadcast);
  std::vector<Row> build_rows = build.GatherRows();
  uint64_t build_bytes = 0;
  for (const Row& row : build_rows) build_bytes += RowSizeBytes(row);
  const size_t n = probe.partitions.size();
  metrics->bytes_broadcast += build_bytes * n;
  // Every node receives the full build side; receipt happens in parallel.
  metrics->simulated_seconds +=
      static_cast<double>(build_bytes) * cluster_.network_seconds_per_byte;
  // A build side larger than the per-node join memory overflows to disk:
  // the dynamic hash join re-partitions the overflow in extra passes. An
  // optimizer that broadcast a dataset it wrongly believed small pays here.
  // This flat-penalty model only applies while no join-memory budget is
  // configured; with a budget, the overflow takes the *real* grace-join
  // spill path inside LocalHashJoin and is metered from executed passes.
  if (cluster_.memory.join_memory_budget_bytes == 0 &&
      build_bytes > cluster_.broadcast_threshold_bytes) {
    double overflow = static_cast<double>(build_bytes -
                                          cluster_.broadcast_threshold_bytes);
    metrics->simulated_seconds +=
        overflow * cluster_.spill_penalty_passes *
        (cluster_.disk_write_seconds_per_byte +
         cluster_.disk_read_seconds_per_byte);
  }
  if (FaultsArmed()) {
    // Broadcast-stage fault overlay: every node receives the full build
    // side, so all clean task times are equal.
    std::vector<double> receive_seconds(
        n, static_cast<double>(build_bytes) *
               cluster_.network_seconds_per_byte);
    DYNOPT_RETURN_IF_ERROR(
        ApplyFaults(FaultSite::kBroadcast, receive_seconds, metrics));
  }

  Dataset replicated(build.columns, n);
  for (size_t p = 0; p < n; ++p) replicated.partitions[p] = build_rows;
  // Note: replication is physical here so per-node joins are real work; the
  // memory cost is bounded by the planner's broadcast threshold.
  return LocalHashJoin(replicated, probe, build_keys, probe_keys, metrics);
}

void JobExecutor::TransferPredicateRows(const Dataset& build,
                                        const std::vector<int>& build_keys,
                                        Dataset* probe,
                                        const std::vector<int>& probe_keys,
                                        ExecMetrics* metrics) {
  TraceSpan span("predicate-transfer", "kernel");
  const SketchConfig& cfg = cluster_.sketch;
  const uint64_t build_rows = build.NumRows();
  BloomFilter bloom(std::max<uint64_t>(build_rows, 1), cfg.pt_bits_per_key,
                    cfg.seed);
  uint64_t max_build_part = 0;
  for (const auto& part : build.partitions) {
    max_build_part = std::max<uint64_t>(max_build_part, part.size());
    for (const Row& row : part) {
      bool null_key = false;
      for (int k : build_keys) null_key |= row[k].is_null();
      // NULL keys never join, so they never enter the filter — and a probe
      // row with a NULL key is pruned below without consulting it.
      if (!null_key) bloom.Insert(HashRowKeyInline(row, build_keys));
    }
  }
  // Each node feeds the filter from its resident build partition.
  metrics->simulated_seconds +=
      static_cast<double>(max_build_part) * cluster_.cpu_seconds_per_tuple;

  // Ship the merged filter to every probe-side node. Like a broadcast:
  // total bytes on the wire are size * nodes, receipt is parallel.
  const size_t num_parts = probe->partitions.size();
  metrics->pt_filter_bytes += bloom.SizeBytes() * num_parts;
  metrics->simulated_seconds +=
      static_cast<double>(bloom.SizeBytes()) * cluster_.network_seconds_per_byte;

  // Filter probe partitions in place before they enter the shuffle.
  const bool has_sizes = probe->HasRowSizes();
  std::vector<uint64_t> part_rows(num_parts, 0);
  std::vector<uint64_t> pruned_rows(num_parts, 0);
  std::vector<uint64_t> pruned_bytes(num_parts, 0);
  pool_->ParallelFor(num_parts, [&](size_t p) {
    auto& rows = probe->partitions[p];
    std::vector<uint64_t>* sizes = has_sizes ? &probe->row_sizes[p] : nullptr;
    part_rows[p] = rows.size();
    size_t kept = 0;
    for (size_t i = 0; i < rows.size(); ++i) {
      bool null_key = false;
      for (int k : probe_keys) null_key |= rows[i][k].is_null();
      const bool keep =
          !null_key &&
          bloom.MayContain(HashRowKeyInline(rows[i], probe_keys));
      if (keep) {
        if (kept != i) {
          rows[kept] = std::move(rows[i]);
          if (sizes != nullptr) (*sizes)[kept] = (*sizes)[i];
        }
        ++kept;
      } else {
        ++pruned_rows[p];
        pruned_bytes[p] +=
            sizes != nullptr ? (*sizes)[i] : RowSizeBytesInline(rows[i]);
      }
    }
    rows.resize(kept);
    if (sizes != nullptr) sizes->resize(kept);
  });
  uint64_t max_probe_part = 0;
  for (size_t p = 0; p < num_parts; ++p) {
    max_probe_part = std::max(max_probe_part, part_rows[p]);
    metrics->pt_pruned_rows += pruned_rows[p];
    metrics->pt_pruned_bytes += pruned_bytes[p];
  }
  // Each node tests its probe partition against the filter once.
  metrics->simulated_seconds +=
      static_cast<double>(max_probe_part) * cluster_.cpu_seconds_per_tuple;
  metrics->tuples_processed += build_rows;
  for (uint64_t r : part_rows) metrics->tuples_processed += r;
}

void JobExecutor::TransferPredicateColumnar(const ColumnarDataset& build,
                                            const std::vector<int>& build_keys,
                                            ColumnarDataset* probe,
                                            const std::vector<int>& probe_keys,
                                            ExecMetrics* metrics) {
  TraceSpan span("predicate-transfer", "kernel");
  const SketchConfig& cfg = cluster_.sketch;
  const uint64_t build_rows = build.NumRows();
  BloomFilter bloom(std::max<uint64_t>(build_rows, 1), cfg.pt_bits_per_key,
                    cfg.seed);
  {
    std::vector<uint64_t> hashes;
    std::vector<uint8_t> key_null;
    for (const auto& part : build.partitions) {
      for (const ColumnBatch& b : part) {
        hashes.resize(b.num_rows);
        key_null.assign(b.num_rows, 0);
        HashKeyColumns(b, build_keys.data(), build_keys.size(), hashes.data(),
                       key_null.data());
        for (size_t i = 0; i < b.num_rows; ++i) {
          if (key_null[i] == 0) bloom.Insert(hashes[i]);
        }
      }
    }
  }
  uint64_t max_build_part = 0;
  for (size_t p = 0; p < build.partitions.size(); ++p) {
    max_build_part = std::max(max_build_part, build.PartitionRows(p));
  }
  metrics->simulated_seconds +=
      static_cast<double>(max_build_part) * cluster_.cpu_seconds_per_tuple;

  const size_t num_parts = probe->partitions.size();
  metrics->pt_filter_bytes += bloom.SizeBytes() * num_parts;
  metrics->simulated_seconds +=
      static_cast<double>(bloom.SizeBytes()) * cluster_.network_seconds_per_byte;

  std::vector<uint64_t> part_rows(num_parts, 0);
  std::vector<uint64_t> pruned_rows(num_parts, 0);
  std::vector<uint64_t> pruned_bytes(num_parts, 0);
  pool_->ParallelFor(num_parts, [&](size_t p) {
    std::vector<uint64_t> hashes;
    std::vector<uint8_t> key_null;
    std::vector<uint32_t> sel;
    for (ColumnBatch& b : probe->partitions[p]) {
      part_rows[p] += b.num_rows;
      hashes.resize(b.num_rows);
      key_null.assign(b.num_rows, 0);
      HashKeyColumns(b, probe_keys.data(), probe_keys.size(), hashes.data(),
                     key_null.data());
      sel.clear();
      for (size_t i = 0; i < b.num_rows; ++i) {
        if (key_null[i] == 0 && bloom.MayContain(hashes[i])) {
          sel.push_back(static_cast<uint32_t>(i));
        } else {
          ++pruned_rows[p];
          pruned_bytes[p] += b.row_sizes[i];
        }
      }
      if (sel.size() != b.num_rows) b = GatherBatch(b, sel.data(), sel.size());
    }
  });
  uint64_t max_probe_part = 0;
  for (size_t p = 0; p < num_parts; ++p) {
    max_probe_part = std::max(max_probe_part, part_rows[p]);
    metrics->pt_pruned_rows += pruned_rows[p];
    metrics->pt_pruned_bytes += pruned_bytes[p];
  }
  metrics->simulated_seconds +=
      static_cast<double>(max_probe_part) * cluster_.cpu_seconds_per_tuple;
  metrics->tuples_processed += build_rows;
  for (uint64_t r : part_rows) metrics->tuples_processed += r;
}

Result<Dataset> JobExecutor::ExecIndexNestedLoopJoin(
    const PlanNode& node, const std::map<std::string, Value>& params,
    ExecMetrics* metrics) {
  TraceSpan span("inlj", "kernel");
  if (node.keys.size() != 1) {
    return Status::ExecutionError(
        "indexed nested loop join supports exactly one key pair");
  }
  const PlanNode& inner_scan = *node.children[1];
  if (inner_scan.kind != PlanNode::Kind::kScan || inner_scan.is_intermediate) {
    return Status::ExecutionError(
        "indexed nested loop join requires a base-table scan as inner");
  }
  DYNOPT_ASSIGN_OR_RETURN(std::shared_ptr<Table> inner,
                          catalog_->GetTable(inner_scan.table));
  // The inner key is qualified "alias.column"; strip the alias.
  const std::string& inner_key_qualified = node.keys[0].second;
  std::string prefix = inner_scan.alias + ".";
  if (inner_key_qualified.rfind(prefix, 0) != 0) {
    return Status::ExecutionError("inner join key " + inner_key_qualified +
                                  " does not belong to " + inner_scan.alias);
  }
  std::string inner_column = inner_key_qualified.substr(prefix.size());
  const SecondaryIndex* index = inner->GetSecondaryIndex(inner_column);
  if (index == nullptr) {
    return Status::ExecutionError("no secondary index on " +
                                  inner_scan.table + "." + inner_column);
  }

  DYNOPT_ASSIGN_OR_RETURN(Dataset outer,
                          ExecNode(*node.children[0], params, metrics));
  int outer_key = outer.ColumnIndex(node.keys[0].first);
  if (outer_key < 0) {
    return Status::ExecutionError("outer join key " + node.keys[0].first +
                                  " not found");
  }

  // Inner output columns (with projection pushdown).
  const Schema& schema = inner->schema();
  std::vector<std::string> inner_all;
  for (size_t i = 0; i < schema.num_fields(); ++i) {
    inner_all.push_back(inner_scan.alias + "." + schema.field(i).name);
  }
  std::vector<int> inner_keep;
  std::vector<std::string> inner_columns;
  if (inner_scan.scan_columns.empty()) {
    for (size_t i = 0; i < inner_all.size(); ++i) {
      inner_keep.push_back(static_cast<int>(i));
    }
    inner_columns = inner_all;
  } else {
    for (const auto& wanted : inner_scan.scan_columns) {
      auto it = std::find(inner_all.begin(), inner_all.end(), wanted);
      if (it == inner_all.end()) {
        return Status::ExecutionError("scan column " + wanted +
                                      " not in table " + inner_scan.table);
      }
      inner_keep.push_back(static_cast<int>(it - inner_all.begin()));
      inner_columns.push_back(wanted);
    }
  }

  // Broadcast the outer to every node; each arriving row probes the local
  // index immediately (Section 3, Indexed Nested Loop Join).
  std::vector<Row> outer_rows = outer.GatherRows();
  uint64_t outer_bytes = 0;
  for (const Row& row : outer_rows) outer_bytes += RowSizeBytes(row);
  const size_t n = inner->num_partitions();
  metrics->bytes_broadcast += outer_bytes * n;
  metrics->simulated_seconds +=
      static_cast<double>(outer_bytes) * cluster_.network_seconds_per_byte;
  if (FaultsArmed()) {
    // The INLJ outer broadcast is a broadcast stage like any other.
    std::vector<double> receive_seconds(
        n, static_cast<double>(outer_bytes) *
               cluster_.network_seconds_per_byte);
    DYNOPT_RETURN_IF_ERROR(
        ApplyFaults(FaultSite::kBroadcast, receive_seconds, metrics));
  }

  std::vector<std::string> out_columns = outer.columns;
  out_columns.insert(out_columns.end(), inner_columns.begin(),
                     inner_columns.end());
  Dataset out(out_columns, n);
  std::vector<uint64_t> matched_bytes(n, 0);
  std::vector<uint64_t> lookups(n, 0);
  pool_->ParallelFor(n, [&](size_t p) {
    const auto& inner_rows = inner->partition(p);
    auto& dest = out.partitions[p];
    uint64_t local_matched_bytes = 0;
    for (const Row& outer_row : outer_rows) {
      const Value& key = outer_row[static_cast<size_t>(outer_key)];
      if (key.is_null()) continue;
      ++lookups[p];
      const std::vector<uint32_t>* offsets = index->Lookup(p, key);
      if (offsets == nullptr) continue;
      for (uint32_t off : *offsets) {
        const Row& inner_row = inner_rows[off];
        local_matched_bytes += RowSizeBytes(inner_row);
        Row joined;
        joined.reserve(outer_row.size() + inner_keep.size());
        joined.insert(joined.end(), outer_row.begin(), outer_row.end());
        for (int k : inner_keep) {
          joined.push_back(inner_row[static_cast<size_t>(k)]);
        }
        dest.push_back(std::move(joined));
      }
    }
    matched_bytes[p] = local_matched_bytes;
  });
  uint64_t total_lookups = 0, total_matched = 0;
  for (size_t p = 0; p < n; ++p) {
    total_lookups += lookups[p];
    total_matched += matched_bytes[p];
  }
  metrics->index_lookups += total_lookups;
  metrics->bytes_scanned += total_matched;  // Only matched pages are read.
  metrics->simulated_seconds +=
      static_cast<double>(MaxOver(lookups)) * cluster_.index_lookup_seconds +
      static_cast<double>(MaxOver(matched_bytes)) *
          cluster_.disk_read_seconds_per_byte;
  return out;
}

// --- Columnar operator path ----------------------------------------------
//
// Every operator below is the vectorized twin of a row operator above:
// identical trace spans, identical deterministic counters, identical
// simulated-seconds formulas, identical fault-injection sites drawn in the
// same order. Only the in-memory representation (and wall-clock speed)
// differs.

Result<ColumnarDataset> JobExecutor::ExecNodeColumnar(
    const PlanNode& node, const std::map<std::string, Value>& params,
    ExecMetrics* metrics) {
  DYNOPT_RETURN_IF_ERROR(CheckAlive());
  switch (node.kind) {
    case PlanNode::Kind::kScan:
      return ExecScanColumnar(node, metrics);
    case PlanNode::Kind::kFilter:
      return ExecFilterColumnar(node, params, metrics);
    case PlanNode::Kind::kProject:
      return ExecProjectColumnar(node, params, metrics);
    case PlanNode::Kind::kJoin:
      if (node.method == JoinMethod::kIndexNestedLoop) {
        // Row fallback: the INLJ probes a row-oriented secondary index and
        // gathers matching rows directly; its whole subtree runs the row
        // operators (metering is identical by construction) and the result
        // converts at this boundary.
        DYNOPT_ASSIGN_OR_RETURN(
            Dataset rows, ExecIndexNestedLoopJoin(node, params, metrics));
        return FromDataset(rows, cluster_.exec.max_batch_size);
      }
      return ExecJoinColumnar(node, params, metrics);
  }
  return Status::Internal("unknown plan node kind");
}

Result<ColumnarDataset> JobExecutor::ExecScanColumnar(const PlanNode& node,
                                                      ExecMetrics* metrics) {
  TraceSpan span("scan:" + node.table, "kernel");
  DYNOPT_ASSIGN_OR_RETURN(std::shared_ptr<Table> table,
                          catalog_->GetTable(node.table));
  const Schema& schema = table->schema();
  std::vector<std::string> all_columns;
  all_columns.reserve(schema.num_fields());
  for (size_t i = 0; i < schema.num_fields(); ++i) {
    all_columns.push_back(node.is_intermediate
                              ? schema.field(i).name
                              : node.alias + "." + schema.field(i).name);
  }
  std::vector<int> keep;
  std::vector<std::string> out_columns;
  if (node.scan_columns.empty()) {
    for (size_t i = 0; i < all_columns.size(); ++i) {
      keep.push_back(static_cast<int>(i));
    }
    out_columns = all_columns;
  } else {
    for (const auto& wanted : node.scan_columns) {
      auto it = std::find(all_columns.begin(), all_columns.end(), wanted);
      if (it == all_columns.end()) {
        return Status::ExecutionError("scan column " + wanted +
                                      " not in table " + node.table);
      }
      keep.push_back(static_cast<int>(it - all_columns.begin()));
      out_columns.push_back(wanted);
    }
  }

  const size_t num_parts = table->num_partitions();
  const size_t batch_cap = cluster_.exec.max_batch_size;
  ColumnarDataset out(out_columns, num_parts);
  std::vector<uint64_t> bytes_in(num_parts, 0);
  std::vector<uint64_t> rows_in(num_parts, 0);
  pool_->ParallelFor(num_parts, [&](size_t p) {
    const auto& rows = table->partition(p);
    auto& batches = out.partitions[p];
    batches.reserve(rows.size() / batch_cap + 1);
    uint64_t bytes = 0;
    for (const Row& row : rows) bytes += RowSizeBytesInline(row);
    for (size_t start = 0; start < rows.size(); start += batch_cap) {
      const size_t m = std::min(batch_cap, rows.size() - start);
      batches.push_back(BatchFromRowsProjected(rows.data() + start, m,
                                               keep.data(), keep.size()));
    }
    bytes_in[p] = bytes;
    rows_in[p] = rows.size();
  });

  uint64_t total_bytes = 0, total_rows = 0;
  for (size_t p = 0; p < num_parts; ++p) {
    total_bytes += bytes_in[p];
    total_rows += rows_in[p];
  }
  if (Catalog::IsSystemName(node.table)) {
    // sys.* virtual tables materialize engine state that is already in
    // memory: metered at zero simulated cost so introspection queries
    // never perturb the cost model a real workload sees.
    return out;
  }
  metrics->tuples_processed += total_rows;
  double io_seconds;
  if (node.is_intermediate) {
    metrics->bytes_intermediate_read += total_bytes;
    io_seconds = static_cast<double>(MaxOver(bytes_in)) *
                 cluster_.disk_read_seconds_per_byte;
    metrics->reopt_seconds += io_seconds;
  } else {
    metrics->bytes_scanned += total_bytes;
    io_seconds = static_cast<double>(MaxOver(bytes_in)) *
                 cluster_.scan_seconds_per_byte;
  }
  metrics->simulated_seconds +=
      io_seconds + static_cast<double>(MaxOver(rows_in)) *
                       cluster_.cpu_seconds_per_tuple;
  return out;
}

Result<ColumnarDataset> JobExecutor::ExecFilterColumnar(
    const PlanNode& node, const std::map<std::string, Value>& params,
    ExecMetrics* metrics) {
  DYNOPT_ASSIGN_OR_RETURN(ColumnarDataset input,
                          ExecNodeColumnar(*node.children[0], params,
                                           metrics));
  // Compile once per operator: slots resolved here, never in the batch
  // loop. Fails with the same BindError messages as Bind().
  DYNOPT_ASSIGN_OR_RETURN(
      VecPredicate pred,
      VecPredicate::Compile(node.predicate, input.columns, &params, udfs_));

  const size_t num_parts = input.partitions.size();
  ColumnarDataset out(input.columns, num_parts);
  std::vector<uint64_t> rows_in(num_parts, 0);
  pool_->ParallelFor(num_parts, [&](size_t p) {
    auto& src = input.partitions[p];
    auto& dest = out.partitions[p];
    uint64_t nrows = 0;
    std::vector<uint8_t> keep;
    std::vector<uint32_t> sel;
    for (ColumnBatch& b : src) {
      nrows += b.num_rows;
      pred.EvalBools(b, &keep);
      sel.clear();
      for (size_t i = 0; i < b.num_rows; ++i) {
        if (keep[i]) sel.push_back(static_cast<uint32_t>(i));
      }
      if (sel.size() == b.num_rows) {
        // Everything survives: the batch moves wholesale.
        dest.push_back(std::move(b));
      } else if (!sel.empty()) {
        dest.push_back(GatherBatch(b, sel.data(), sel.size()));
      }
      b = ColumnBatch();
    }
    src.clear();
    rows_in[p] = nrows;
  });
  uint64_t total_rows = 0;
  for (uint64_t r : rows_in) total_rows += r;
  metrics->tuples_processed += total_rows;
  metrics->simulated_seconds += static_cast<double>(MaxOver(rows_in)) *
                                cluster_.cpu_seconds_per_tuple;
  return out;
}

Result<ColumnarDataset> JobExecutor::ExecProjectColumnar(
    const PlanNode& node, const std::map<std::string, Value>& params,
    ExecMetrics* metrics) {
  DYNOPT_ASSIGN_OR_RETURN(ColumnarDataset input,
                          ExecNodeColumnar(*node.children[0], params,
                                           metrics));
  DYNOPT_ASSIGN_OR_RETURN(
      std::vector<int> keep,
      ResolveColumnsColumnar(input, node.project_columns, "project"));
  const size_t num_parts = input.partitions.size();
  ColumnarDataset out(node.project_columns, num_parts);
  std::vector<uint64_t> rows_in(num_parts, 0);
  pool_->ParallelFor(num_parts, [&](size_t p) {
    auto& src = input.partitions[p];
    auto& dest = out.partitions[p];
    dest.reserve(src.size());
    uint64_t nrows = 0;
    for (ColumnBatch& b : src) {
      nrows += b.num_rows;
      ColumnBatch projected;
      projected.num_rows = b.num_rows;
      projected.row_sizes.resize(b.num_rows);
      // New sizes first (they read the dropped columns' replacement — the
      // kept columns — before any are moved out below).
      ProjectedRowSizes(b, keep.data(), keep.size(),
                        projected.row_sizes.data());
      projected.columns.reserve(keep.size());
      // Projection is a column shuffle: move each kept column (copy only a
      // repeated slot), drop the rest.
      std::vector<char> moved(b.columns.size(), 0);
      for (size_t ki = 0; ki < keep.size(); ++ki) {
        const size_t c = static_cast<size_t>(keep[ki]);
        if (!moved[c]) {
          projected.columns.push_back(std::move(b.columns[c]));
          moved[c] = 1;
        } else {
          size_t prev = 0;
          while (static_cast<size_t>(keep[prev]) != c) ++prev;
          ColumnVector copy = projected.columns[prev];
          projected.columns.push_back(std::move(copy));
        }
      }
      dest.push_back(std::move(projected));
      b = ColumnBatch();
    }
    src.clear();
    rows_in[p] = nrows;
  });
  metrics->simulated_seconds += static_cast<double>(MaxOver(rows_in)) *
                                cluster_.cpu_seconds_per_tuple;
  return out;
}

Result<ColumnarShuffleResult> JobExecutor::RepartitionColumnar(
    ColumnarDataset&& input, const std::vector<int>& key_indices,
    ExecMetrics* metrics) {
  DYNOPT_RETURN_IF_ERROR(CheckAlive());
  TraceSpan span("shuffle", "kernel");
  const auto wall_start = WallClock::now();
  const size_t n = cluster_.num_nodes;
  const size_t src_parts = input.partitions.size();
  const size_t batch_cap = cluster_.exec.max_batch_size;
  const size_t num_cols = input.columns.size();

  auto fault_check = [&](const std::vector<uint64_t>& received_bytes,
                         const std::vector<uint64_t>& rows_in) -> Status {
    if (!FaultsArmed()) return Status::OK();
    std::vector<double> per_node(std::max(received_bytes.size(),
                                          rows_in.size()),
                                 0.0);
    for (size_t i = 0; i < received_bytes.size(); ++i) {
      per_node[i] += static_cast<double>(received_bytes[i]) *
                     cluster_.network_seconds_per_byte;
    }
    for (size_t i = 0; i < rows_in.size(); ++i) {
      per_node[i] +=
          static_cast<double>(rows_in[i]) * cluster_.cpu_seconds_per_tuple;
    }
    return ApplyFaults(FaultSite::kRepartition, per_node, metrics);
  };

  // Adaptive route: mirrors the row shuffle — a pool without at least two
  // workers cannot overlap anything, so the two-phase exchange below would
  // pay n full re-scans of every source batch (one per destination) with
  // nothing gained in return. The one-pass exchange hashes each batch,
  // buckets its rows per destination and gathers them while the batch is
  // still hot in cache. Row order, hashes and all metering are identical
  // on both routes.
  if (pool_->num_threads() <= 1) {
    ColumnarShuffleResult result;
    result.data = ColumnarDataset(input.columns, n);
    result.hashes.resize(n);
    std::vector<uint64_t> received_bytes(n, 0);
    std::vector<uint64_t> rows_in(src_parts, 0);
    uint64_t shuffled_bytes = 0;
    uint64_t total_rows = 0;
    const FastMod mod_n(n);
    std::vector<BatchSink> sinks;
    sinks.reserve(n);
    for (size_t d = 0; d < n; ++d) {
      sinks.emplace_back(num_cols, batch_cap, &result.data.partitions[d]);
    }
    std::vector<std::vector<uint32_t>> sel(n);
    std::vector<uint64_t> hashes;
    std::vector<uint8_t> null_scratch;
    for (size_t p = 0; p < src_parts; ++p) {
      uint64_t part_rows = 0;
      for (ColumnBatch& b : input.partitions[p]) {
        const size_t m = b.num_rows;
        part_rows += m;
        hashes.resize(m);
        null_scratch.assign(m, 0);
        HashKeyColumns(b, key_indices.data(), key_indices.size(),
                       hashes.data(), null_scratch.data());
        for (auto& s : sel) s.clear();
        const uint64_t* sizes = b.row_sizes.data();
        for (size_t i = 0; i < m; ++i) {
          const size_t dest = static_cast<size_t>(mod_n(hashes[i]));
          // Co-partitioned rows move no bytes (same rule as the row
          // shuffle).
          const uint64_t moved = (dest != p || src_parts != n) ? sizes[i] : 0;
          shuffled_bytes += moved;
          received_bytes[dest] += moved;
          sel[dest].push_back(static_cast<uint32_t>(i));
          result.hashes[dest].push_back(hashes[i]);
        }
        for (size_t d = 0; d < n; ++d) {
          if (!sel[d].empty()) {
            sinks[d].AppendGather(b, sel[d].data(), sel[d].size());
          }
        }
        b = ColumnBatch();  // the batch is fully consumed; free it eagerly
      }
      rows_in[p] = part_rows;
      total_rows += part_rows;
      input.partitions[p].clear();
    }
    for (BatchSink& s : sinks) s.Flush();
    input.partitions.clear();
    metrics->bytes_shuffled += shuffled_bytes;
    metrics->tuples_processed += total_rows;
    metrics->simulated_seconds +=
        static_cast<double>(MaxOver(received_bytes)) *
            cluster_.network_seconds_per_byte +
        static_cast<double>(MaxOver(rows_in)) * cluster_.cpu_seconds_per_tuple;
    DYNOPT_RETURN_IF_ERROR(fault_check(received_bytes, rows_in));
    metrics->wall_shuffle_seconds += SecondsSince(wall_start);
    return result;
  }

  // Phase 1: per source partition, hash the key columns of every batch
  // (column-at-a-time) and record each row's destination, per-destination
  // counts and byte metering. No rows move.
  struct RoutePlan {
    std::vector<uint64_t> hashes;    // flat over the partition's rows
    std::vector<uint32_t> dest;      // [row] -> destination partition
    std::vector<size_t> counts;      // [dest] -> rows routed there
    std::vector<uint64_t> bytes_to;  // [dest] -> shuffled bytes
    uint64_t shuffled_bytes = 0;
  };
  std::vector<RoutePlan> routed(src_parts);
  std::vector<uint64_t> rows_in(src_parts, 0);
  pool_->ParallelFor(src_parts, [&](size_t p) {
    RoutePlan& plan = routed[p];
    uint64_t part_rows = 0;
    for (const ColumnBatch& b : input.partitions[p]) part_rows += b.num_rows;
    rows_in[p] = part_rows;
    plan.hashes.resize(part_rows);
    plan.dest.resize(part_rows);
    plan.counts.assign(n, 0);
    plan.bytes_to.assign(n, 0);
    const FastMod mod_n(n);
    std::vector<uint8_t> null_scratch;
    size_t base = 0;
    for (const ColumnBatch& b : input.partitions[p]) {
      const size_t m = b.num_rows;
      null_scratch.assign(m, 0);
      HashKeyColumns(b, key_indices.data(), key_indices.size(),
                     plan.hashes.data() + base, null_scratch.data());
      const uint64_t* h = plan.hashes.data() + base;
      const uint64_t* sizes = b.row_sizes.data();
      for (size_t i = 0; i < m; ++i) {
        const size_t dest = static_cast<size_t>(mod_n(h[i]));
        plan.dest[base + i] = static_cast<uint32_t>(dest);
        ++plan.counts[dest];
        // Co-partitioned rows move no bytes (same rule as the row shuffle).
        const uint64_t moved =
            (dest != p || src_parts != n) ? sizes[i] : 0;
        plan.shuffled_bytes += moved;
        plan.bytes_to[dest] += moved;
      }
      base += m;
    }
  });

  // Phase 2: parallel over destinations — each destination walks every
  // source batch in order, gathering its rows (and their hashes) into
  // fixed-capacity output batches. Sources in ascending order, rows in
  // batch order: exactly the row order of a sequential shuffle.
  ColumnarShuffleResult result;
  result.data = ColumnarDataset(input.columns, n);
  result.hashes.resize(n);
  pool_->ParallelFor(n, [&](size_t d) {
    size_t total = 0;
    for (size_t p = 0; p < src_parts; ++p) total += routed[p].counts[d];
    auto& out_hashes = result.hashes[d];
    out_hashes.reserve(total);
    BatchSink sink(num_cols, batch_cap, &result.data.partitions[d]);
    std::vector<uint32_t> sel;
    for (size_t p = 0; p < src_parts; ++p) {
      const RoutePlan& plan = routed[p];
      size_t base = 0;
      for (const ColumnBatch& b : input.partitions[p]) {
        const size_t m = b.num_rows;
        sel.clear();
        for (size_t i = 0; i < m; ++i) {
          if (plan.dest[base + i] == d) {
            sel.push_back(static_cast<uint32_t>(i));
            out_hashes.push_back(plan.hashes[base + i]);
          }
        }
        sink.AppendGather(b, sel.data(), sel.size());
        base += m;
      }
    }
    sink.Flush();
  });
  // The input is fully consumed.
  input.partitions.clear();

  std::vector<uint64_t> received_bytes(n, 0);
  uint64_t total_rows = 0;
  uint64_t shuffled_bytes = 0;
  for (size_t p = 0; p < src_parts; ++p) {
    shuffled_bytes += routed[p].shuffled_bytes;
    total_rows += rows_in[p];
    for (size_t d = 0; d < n; ++d) received_bytes[d] += routed[p].bytes_to[d];
  }
  metrics->bytes_shuffled += shuffled_bytes;
  metrics->tuples_processed += total_rows;
  metrics->simulated_seconds +=
      static_cast<double>(MaxOver(received_bytes)) *
          cluster_.network_seconds_per_byte +
      static_cast<double>(MaxOver(rows_in)) * cluster_.cpu_seconds_per_tuple;
  DYNOPT_RETURN_IF_ERROR(fault_check(received_bytes, rows_in));
  metrics->wall_shuffle_seconds += SecondsSince(wall_start);
  return result;
}

Result<ColumnarDataset> JobExecutor::LocalHashJoinColumnar(
    const ColumnarDataset& build, const ColumnarDataset& probe,
    const std::vector<int>& build_keys, const std::vector<int>& probe_keys,
    ExecMetrics* metrics,
    const std::vector<std::vector<uint64_t>>* build_hashes,
    const std::vector<std::vector<uint64_t>>* probe_hashes) {
  DYNOPT_CHECK(build.partitions.size() == probe.partitions.size());
  // Spill-governed joins must take the row engine (ExecJoinColumnar routes
  // them there); this kernel implements the in-memory path only.
  DYNOPT_CHECK(cluster_.memory.join_memory_budget_bytes == 0);
  DYNOPT_RETURN_IF_ERROR(CheckAlive());
  const size_t num_parts = build.partitions.size();
  const size_t batch_cap = cluster_.exec.max_batch_size;
  std::vector<std::string> out_columns = build.columns;
  out_columns.insert(out_columns.end(), probe.columns.begin(),
                     probe.columns.end());
  ColumnarDataset out(out_columns, num_parts);

  // Memory governance (no budget, so nothing spills): account the resident
  // build side against the query tracker exactly like the row join — the
  // batches' row_sizes sum to the same annotation totals.
  MemoryReservation join_mem(ctx_ != nullptr ? &ctx_->memory() : nullptr);
  if (ctx_ != nullptr) {
    std::vector<uint64_t> build_bytes(num_parts, 0);
    pool_->ParallelFor(num_parts, [&](size_t p) {
      uint64_t bytes = 0;
      for (const ColumnBatch& b : build.partitions[p]) {
        for (uint64_t s : b.row_sizes) bytes += s;
      }
      build_bytes[p] = bytes;
    });
    for (size_t p = 0; p < num_parts; ++p) {
      join_mem.GrowUnchecked(build_bytes[p]);
    }
  }

  // Build phase: concatenate each partition's build batches into one flat
  // batch (the table's index space), hash its key columns (or adopt the
  // shuffle's hashes) and build the flat table.
  TraceSpan build_span("join-build", "kernel");
  auto wall_start = WallClock::now();
  if (join_tables_.size() < num_parts) join_tables_.resize(num_parts);
  std::vector<JoinHashTable>& tables = join_tables_;
  std::vector<ColumnBatch> build_flat(num_parts);
  std::vector<std::vector<uint8_t>> build_null(num_parts);
  std::vector<std::vector<uint64_t>> hash_storage(
      build_hashes != nullptr ? 0 : num_parts);
  pool_->ParallelFor(num_parts, [&](size_t p) {
    build_flat[p] = ConcatBatches(build.partitions[p]);
    const size_t nb = build_flat[p].num_rows;
    build_null[p].assign(nb, 0);
    if (nb == 0) {
      // Empty build partition: ConcatBatches has no columns to adopt, so
      // skip key hashing; the table still initializes (all chains empty).
      tables[p].BuildFromHashes(nullptr, nullptr, 0);
      return;
    }
    const uint64_t* h;
    if (build_hashes != nullptr) {
      AnyKeyNull(build_flat[p], build_keys.data(), build_keys.size(),
                 build_null[p].data());
      h = (*build_hashes)[p].data();
    } else {
      hash_storage[p].resize(nb);
      HashKeyColumns(build_flat[p], build_keys.data(), build_keys.size(),
                     hash_storage[p].data(), build_null[p].data());
      h = hash_storage[p].data();
    }
    tables[p].BuildFromHashes(h, build_null[p].data(), nb);
  });
  metrics->wall_build_seconds += SecondsSince(wall_start);
  if (FaultsArmed()) {
    std::vector<double> build_seconds(num_parts, 0.0);
    for (size_t p = 0; p < num_parts; ++p) {
      build_seconds[p] = static_cast<double>(build_flat[p].num_rows) *
                         cluster_.cpu_seconds_per_tuple;
    }
    DYNOPT_RETURN_IF_ERROR(
        ApplyFaults(FaultSite::kBuild, build_seconds, metrics));
  }
  build_span.End();

  // Probe phase: per partition, walk the probe batches; matches accumulate
  // as (build index, probe index) selection pairs per batch and are emitted
  // by one gather per column. Emission order — probe rows ascending, chain
  // order ascending — matches the row join exactly.
  DYNOPT_RETURN_IF_ERROR(CheckAlive());
  TraceSpan probe_span("join-probe", "kernel");
  wall_start = WallClock::now();
  std::vector<uint64_t> work(num_parts, 0);
  pool_->ParallelFor(num_parts, [&](size_t p) {
    const ColumnBatch& bflat = build_flat[p];
    const JoinHashTable& table = tables[p];
    uint64_t probe_rows = 0;
    for (const ColumnBatch& pb : probe.partitions[p]) {
      probe_rows += pb.num_rows;
    }
    uint64_t local_work = bflat.num_rows + probe_rows;
    BatchSink sink(out_columns.size(), batch_cap, &out.partitions[p]);
    constexpr uint32_t kEnd = JoinHashTable::kEnd;
    const uint32_t* heads = table.heads();
    const uint32_t* next = table.next();
    const uint64_t* table_hashes = table.hashes();
    const size_t mask = table.mask();
    const int* bkeys = build_keys.data();
    const int* pkeys = probe_keys.data();
    const size_t num_keys = build_keys.size();
    const uint64_t* part_hashes =
        probe_hashes != nullptr ? (*probe_hashes)[p].data() : nullptr;
    std::vector<uint64_t> hash_scratch;
    std::vector<uint8_t> null_scratch;
    std::vector<uint32_t> bsel, psel;
    std::vector<uint64_t> jsizes;
    size_t hash_off = 0;
    for (const ColumnBatch& pb : probe.partitions[p]) {
      const size_t m = pb.num_rows;
      null_scratch.assign(m, 0);
      const uint64_t* ph;
      if (part_hashes != nullptr) {
        ph = part_hashes + hash_off;
        AnyKeyNull(pb, pkeys, num_keys, null_scratch.data());
      } else {
        hash_scratch.resize(m);
        HashKeyColumns(pb, pkeys, num_keys, hash_scratch.data(),
                       null_scratch.data());
        ph = hash_scratch.data();
      }
      bsel.clear();
      psel.clear();
      jsizes.clear();
      const uint64_t* bsizes = bflat.row_sizes.data();
      const uint64_t* psizes = pb.row_sizes.data();
      for (size_t j = 0; j < m; ++j) {
        const uint64_t h = ph[j];
        uint32_t first;
        if (part_hashes != nullptr) {
          // Precomputed-hash path: walk to the first hash match before the
          // NULL-key check (same rejection order as the row probe).
          if (j + 8 < m) {
            __builtin_prefetch(&heads[ph[j + 8] & mask]);
          }
          first = heads[h & mask];
          while (first != kEnd && table_hashes[first] != h) {
            first = next[first];
          }
          if (first == kEnd) continue;
          if (null_scratch[j]) continue;
        } else {
          if (null_scratch[j]) continue;
          first = heads[h & mask];
        }
        for (uint32_t i = first; i != kEnd; i = next[i]) {
          if (table_hashes[i] != h) continue;
          if (!JoinKeysEqualColumnar(bflat, i, pb, j, bkeys, pkeys,
                                     num_keys)) {
            continue;
          }
          bsel.push_back(i);
          psel.push_back(static_cast<uint32_t>(j));
          // Joined-row size: both payloads, one 8-byte header.
          jsizes.push_back(bsizes[i] + psizes[j] - 8);
          ++local_work;
        }
      }
      sink.AppendJoinGather(bflat, bsel.data(), pb, psel.data(),
                            jsizes.data(), bsel.size());
      hash_off += m;
    }
    sink.Flush();
    work[p] = local_work;
  });
  metrics->wall_probe_seconds += SecondsSince(wall_start);

  uint64_t total_work = 0;
  for (uint64_t w : work) total_work += w;
  metrics->tuples_processed += total_work;
  metrics->simulated_seconds +=
      static_cast<double>(MaxOver(work)) * cluster_.cpu_seconds_per_tuple;
  if (FaultsArmed()) {
    std::vector<double> probe_seconds(num_parts, 0.0);
    for (size_t p = 0; p < num_parts; ++p) {
      probe_seconds[p] =
          static_cast<double>(work[p] - build_flat[p].num_rows) *
          cluster_.cpu_seconds_per_tuple;
    }
    DYNOPT_RETURN_IF_ERROR(
        ApplyFaults(FaultSite::kProbe, probe_seconds, metrics));
  }
  return out;
}

Result<ColumnarDataset> JobExecutor::ExecJoinColumnar(
    const PlanNode& node, const std::map<std::string, Value>& params,
    ExecMetrics* metrics) {
  DYNOPT_ASSIGN_OR_RETURN(ColumnarDataset build,
                          ExecNodeColumnar(*node.children[0], params,
                                           metrics));
  DYNOPT_ASSIGN_OR_RETURN(ColumnarDataset probe,
                          ExecNodeColumnar(*node.children[1], params,
                                           metrics));
  // A configured join memory budget routes through the row engine: the
  // grace hash join spills *rows* through the checksummed DRB serde, and
  // that path (plus its metering and fault sites) stays row-oriented by
  // design. Children still ran columnar; convert at this boundary.
  if (cluster_.memory.join_memory_budget_bytes > 0) {
    DYNOPT_ASSIGN_OR_RETURN(
        Dataset joined,
        ExecJoinWithInputs(node, ToDataset(std::move(build)),
                           ToDataset(std::move(probe)), metrics));
    return FromDataset(joined, cluster_.exec.max_batch_size);
  }

  std::vector<std::string> build_names, probe_names;
  for (const auto& [l, r] : node.keys) {
    build_names.push_back(l);
    probe_names.push_back(r);
  }
  DYNOPT_ASSIGN_OR_RETURN(
      std::vector<int> build_keys,
      ResolveColumnsColumnar(build, build_names, "join build"));
  DYNOPT_ASSIGN_OR_RETURN(
      std::vector<int> probe_keys,
      ResolveColumnsColumnar(probe, probe_names, "join probe"));

  if (node.method == JoinMethod::kHashShuffle) {
    if (PredicateTransferEnabled()) {
      // Sideways pushdown, batch-at-a-time; metering-identical to the row
      // twin (HashKeyColumns is bit-identical to HashRowKeyInline).
      TransferPredicateColumnar(build, build_keys, &probe, probe_keys,
                                metrics);
    }
    DYNOPT_ASSIGN_OR_RETURN(
        ColumnarShuffleResult build_parts,
        RepartitionColumnar(std::move(build), build_keys, metrics));
    DYNOPT_ASSIGN_OR_RETURN(
        ColumnarShuffleResult probe_parts,
        RepartitionColumnar(std::move(probe), probe_keys, metrics));
    return LocalHashJoinColumnar(build_parts.data, probe_parts.data,
                                 build_keys, probe_keys, metrics,
                                 &build_parts.hashes, &probe_parts.hashes);
  }

  // Broadcast join: replicate the (small) build side to every partition.
  DYNOPT_CHECK(node.method == JoinMethod::kBroadcast);
  // Build bytes from the batches' size annotation — identical to summing
  // RowSizeBytes over the gathered rows (the annotation invariant).
  uint64_t build_bytes = 0;
  std::vector<ColumnBatch> build_all;
  for (auto& part : build.partitions) {
    for (ColumnBatch& b : part) {
      for (uint64_t s : b.row_sizes) build_bytes += s;
      build_all.push_back(std::move(b));
    }
  }
  build.partitions.clear();
  const size_t n = probe.partitions.size();
  metrics->bytes_broadcast += build_bytes * n;
  metrics->simulated_seconds +=
      static_cast<double>(build_bytes) * cluster_.network_seconds_per_byte;
  // Legacy flat overflow penalty (only ever active without a join budget —
  // and this columnar path requires a zero budget).
  if (build_bytes > cluster_.broadcast_threshold_bytes) {
    double overflow = static_cast<double>(build_bytes -
                                          cluster_.broadcast_threshold_bytes);
    metrics->simulated_seconds +=
        overflow * cluster_.spill_penalty_passes *
        (cluster_.disk_write_seconds_per_byte +
         cluster_.disk_read_seconds_per_byte);
  }
  if (FaultsArmed()) {
    std::vector<double> receive_seconds(
        n, static_cast<double>(build_bytes) *
               cluster_.network_seconds_per_byte);
    DYNOPT_RETURN_IF_ERROR(
        ApplyFaults(FaultSite::kBroadcast, receive_seconds, metrics));
  }

  ColumnarDataset replicated(build.columns, n);
  // Physical replication, like the row path: per-node joins are real work
  // (dictionaries are shared across the copies; codes and fixed-width
  // payloads are duplicated).
  for (size_t p = 0; p < n; ++p) replicated.partitions[p] = build_all;
  return LocalHashJoinColumnar(replicated, probe, build_keys, probe_keys,
                               metrics);
}

Result<SinkResult> JobExecutor::Materialize(
    Dataset&& data, const std::string& prefix,
    const std::vector<std::string>& stats_columns, bool collect_stats,
    ExecMetrics* metrics, const std::vector<std::string>* sketch_columns) {
  DYNOPT_RETURN_IF_ERROR(CheckAlive());
  TraceSpan span("materialize", "kernel");
  const auto wall_start = WallClock::now();
  // Build the temp table schema: stored column names are the (already
  // qualified) dataset column names; types are inferred from data in one
  // parallel pass that fills every column's type at once (first non-NULL
  // value in partition-then-row order), instead of rescanning the dataset
  // once per column.
  const size_t num_cols = data.columns.size();
  const size_t num_parts = data.partitions.size();
  std::vector<std::vector<ValueType>> part_types(
      num_parts, std::vector<ValueType>(num_cols, ValueType::kNull));
  pool_->ParallelFor(num_parts, [&](size_t p) {
    auto& types = part_types[p];
    size_t unresolved = num_cols;
    for (const Row& row : data.partitions[p]) {
      if (unresolved == 0) break;
      for (size_t c = 0; c < num_cols; ++c) {
        if (types[c] == ValueType::kNull && !row[c].is_null()) {
          types[c] = row[c].type();
          --unresolved;
        }
      }
    }
  });
  std::vector<Field> fields;
  fields.reserve(num_cols);
  for (size_t c = 0; c < num_cols; ++c) {
    ValueType type = ValueType::kNull;
    for (size_t p = 0; p < num_parts; ++p) {
      if (part_types[p][c] != ValueType::kNull) {
        type = part_types[p][c];
        break;
      }
    }
    fields.push_back(Field{data.columns[c], type});
  }
  std::string name = catalog_->UniqueTempName(prefix);
  auto table = std::make_shared<Table>(name, Schema(std::move(fields)),
                                       data.partitions.size());

  // Online statistics builders, one per partition, merged afterwards — the
  // paper collects sketches in parallel with writing the sink.
  std::vector<int> stat_indices;
  std::vector<std::string> stat_names;
  for (const auto& col : stats_columns) {
    int idx = data.ColumnIndex(col);
    if (idx >= 0) {
      stat_indices.push_back(idx);
      stat_names.push_back(col);
    }
  }
  std::vector<TableStatsBuilder> builders;
  builders.reserve(num_parts);
  for (size_t p = 0; p < num_parts; ++p) {
    builders.emplace_back(stat_names, stat_indices);
  }
  const bool has_sizes = data.HasRowSizes();
  std::vector<uint64_t> part_bytes(num_parts, 0);
  pool_->ParallelFor(num_parts, [&](size_t p) {
    uint64_t bytes = 0;
    if (has_sizes) {
      // Sum the producer's size annotation instead of re-walking payloads.
      for (uint64_t b : data.row_sizes[p]) bytes += b;
      if (collect_stats) {
        for (const Row& row : data.partitions[p]) builders[p].AddRow(row);
      }
    } else {
      for (const Row& row : data.partitions[p]) {
        bytes += RowSizeBytes(row);
        if (collect_stats) builders[p].AddRow(row);
      }
    }
    part_bytes[p] = bytes;
  });
  // Sequential append preserves the partition layout.
  uint64_t total_bytes = 0, total_rows = 0;
  for (size_t p = 0; p < num_parts; ++p) {
    total_bytes += part_bytes[p];
    total_rows += data.partitions[p].size();
  }
  // Account the sink buffer against the query tracker while it is resident
  // here (released once the rows are handed to the catalog).
  MemoryReservation sink_mem(ctx_ != nullptr ? &ctx_->memory() : nullptr);
  sink_mem.GrowUnchecked(total_bytes);
  // Fault overlay for the sink write stage, applied before anything is
  // registered or charged so an injected whole-query abort leaves no
  // half-materialized table behind. One stage id covers the whole sink;
  // the corruption loop below draws from the same id.
  int mat_stage = -1;
  if (FaultsArmed()) {
    mat_stage = faults_->NextStageId();
    std::vector<double> write_seconds_per_node(num_parts, 0.0);
    for (size_t p = 0; p < num_parts; ++p) {
      write_seconds_per_node[p] = static_cast<double>(part_bytes[p]) *
                                  cluster_.disk_write_seconds_per_byte;
    }
    DYNOPT_RETURN_IF_ERROR(ApplyFaults(FaultSite::kMaterialize,
                                       write_seconds_per_node, metrics,
                                       mat_stage));
  }
  // Optionally round-trip each partition through the on-disk temp-file
  // format (the paper's intermediates are "stored in a temporary file").
  // Under fault injection this is where corruption is *physical*: a byte of
  // the written file is flipped, the checksummed format detects it on
  // read-back (kDataCorruption), and the partition is re-materialized with
  // backoff — up to the retry budget, after which the sink fails fatally.
  if (cluster_.materialize_to_disk) {
    const bool inject = FaultsArmed();
    const BackoffPolicy& backoff = cluster_.fault.backoff;
    std::vector<Status> statuses(num_parts);
    std::vector<double> extra_seconds(num_parts, 0.0);
    std::vector<uint64_t> part_retries(num_parts, 0);
    std::vector<uint64_t> part_corrupted(num_parts, 0);
    pool_->ParallelFor(num_parts, [&](size_t p) {
      std::string path = cluster_.spill_directory + "/" + name + ".p" +
                         std::to_string(p) + ".rows";
      Status st;
      for (int attempt = 0;; ++attempt) {
        st = WriteRowsFile(path, data.partitions[p]);
        if (!st.ok()) break;
        if (inject && faults_->CorruptsBlock(mat_stage, p, attempt)) {
          (void)CorruptByteInFile(path,
                                  faults_->CorruptionOffset(mat_stage, p));
        }
        auto back = ReadRowsFile(path);
        if (back.ok()) {
          data.partitions[p] = std::move(back).value();
          break;
        }
        st = back.status();
        if (st.code() != StatusCode::kDataCorruption) break;
        ++part_corrupted[p];
        if (attempt + 1 >= backoff.max_attempts) {
          st = Status::ExecutionError(
              "materialized partition " + path + " corrupted on " +
              std::to_string(backoff.max_attempts) + " attempts: " +
              st.message());
          break;
        }
        if (retry_budget_ != nullptr && !retry_budget_->TryAcquire()) {
          registry_->counter("exec.retry_budget_denied")
              ->Increment();
          st = Status::ResourceExhausted(
              "engine retry budget exhausted re-materializing " + path);
          break;
        }
        // Re-materialize: pay another write + verify read plus the backoff
        // wait (simulated seconds, committed after the ParallelFor).
        ++part_retries[p];
        const uint64_t jitter_site =
            HashCombine(static_cast<uint64_t>(mat_stage),
                        HashCombine(static_cast<uint64_t>(p),
                                    static_cast<uint64_t>(
                                        FaultSite::kMaterialize)));
        extra_seconds[p] += backoff.JitteredDelay(jitter_site, attempt) +
                            static_cast<double>(part_bytes[p]) *
                                (cluster_.disk_write_seconds_per_byte +
                                 cluster_.disk_read_seconds_per_byte);
      }
      std::remove(path.c_str());
      statuses[p] = st;
    });
    if (inject) {
      double extra = 0.0;
      uint64_t call_retries = 0;
      uint64_t call_corrupted = 0;
      for (size_t p = 0; p < num_parts; ++p) {
        extra = std::max(extra, extra_seconds[p]);
        call_retries += part_retries[p];
        call_corrupted += part_corrupted[p];
      }
      metrics->num_retries += call_retries;
      metrics->corrupted_blocks += call_corrupted;
      registry_->counter("exec.retries")
          ->Increment(call_retries);
      registry_->counter("exec.corrupted_blocks")
          ->Increment(call_corrupted);
      if (extra > 0.0) {
        metrics->simulated_seconds += extra;
        metrics->recovery_seconds += extra;
      }
    }
    for (const Status& st : statuses) {
      DYNOPT_RETURN_IF_ERROR(st);
    }
  }

  // Online join-key sketches (predicate transfer): per-partition builders
  // merged into one dataset-level sketch per column, registered under the
  // temp name. Runs before the rows are moved into the catalog below.
  std::vector<int> sketch_indices;
  std::vector<std::string> sketch_names;
  if (sketches_ != nullptr && sketch_columns != nullptr) {
    for (const auto& col : *sketch_columns) {
      int idx = data.ColumnIndex(col);
      if (idx >= 0) {
        sketch_indices.push_back(idx);
        sketch_names.push_back(col);
      }
    }
  }
  if (!sketch_indices.empty()) {
    SketchOptions opts;
    opts.bits_per_key = cluster_.sketch.pt_bits_per_key;
    opts.agms_depth = cluster_.sketch.agms_depth;
    opts.agms_width = cluster_.sketch.agms_width;
    opts.seed = cluster_.sketch.seed;
    const size_t num_sketch = sketch_indices.size();
    // All shards are sized from the same total so merging is well-formed.
    std::vector<std::vector<JoinKeySketch>> shards(num_parts);
    for (size_t p = 0; p < num_parts; ++p) {
      shards[p].reserve(num_sketch);
      for (size_t c = 0; c < num_sketch; ++c) {
        shards[p].push_back(
            JoinKeySketch{BloomFilter(std::max<uint64_t>(total_rows, 1),
                                      opts.bits_per_key, opts.seed),
                          FastAgmsSketch(opts), 0, 0});
      }
    }
    pool_->ParallelFor(num_parts, [&](size_t p) {
      for (const Row& row : data.partitions[p]) {
        for (size_t c = 0; c < num_sketch; ++c) {
          JoinKeySketch& sk = shards[p][c];
          ++sk.rows;
          const int key_index[1] = {sketch_indices[c]};
          if (row[static_cast<size_t>(key_index[0])].is_null()) {
            ++sk.null_keys;
            continue;
          }
          const uint64_t h = HashRowKeyInline(row, key_index, 1);
          sk.bloom.Insert(h);
          sk.agms.Update(h);
        }
      }
    });
    for (size_t c = 0; c < num_sketch; ++c) {
      auto merged_sketch =
          std::make_shared<JoinKeySketch>(std::move(shards[0][c]));
      for (size_t p = 1; p < num_parts; ++p) {
        merged_sketch->bloom.MergeFrom(shards[p][c].bloom);
        merged_sketch->agms.MergeFrom(shards[p][c].agms);
        merged_sketch->rows += shards[p][c].rows;
        merged_sketch->null_keys += shards[p][c].null_keys;
      }
      sketches_->Put(name, sketch_names[c], std::move(merged_sketch));
    }
    // Priced like online statistics: one sketch update per (row, column),
    // collected in parallel across the nodes.
    const double sketch_cost =
        static_cast<double>(total_rows * num_sketch) *
        cluster_.stats_seconds_per_value / static_cast<double>(num_parts);
    metrics->stats_seconds += sketch_cost;
    metrics->simulated_seconds += sketch_cost;
  }

  // Load partition-faithfully so the producing node's placement (and any
  // skew) survives materialization.
  for (size_t p = 0; p < num_parts; ++p) {
    for (Row& row : data.partitions[p]) {
      table->AppendRowToPartition(p, std::move(row));
    }
    data.partitions[p].clear();
  }

  DYNOPT_RETURN_IF_ERROR(catalog_->RegisterTable(table));

  SinkResult result;
  result.table_name = name;
  if (collect_stats) {
    TableStatsBuilder merged(stat_names, stat_indices);
    for (const auto& b : builders) merged.Merge(b);
    result.stats = merged.Finalize();
    result.stats.row_count = total_rows;
    result.stats.total_bytes = total_bytes;
    if (stats_ != nullptr) stats_->Put(name, result.stats);
    const double stats_cost =
        static_cast<double>(total_rows * std::max<size_t>(1, stat_names.size())) *
        cluster_.stats_seconds_per_value / static_cast<double>(num_parts);
    metrics->stats_seconds += stats_cost;
    metrics->simulated_seconds += stats_cost;
  } else {
    // Even without sketch collection the framework learns the exact size of
    // the materialized intermediate (the INGRES-style cardinality-only
    // feedback).
    result.stats.row_count = total_rows;
    result.stats.total_bytes = total_bytes;
    if (stats_ != nullptr) stats_->Put(name, result.stats);
  }

  metrics->bytes_materialized += total_bytes;
  const double write_seconds = static_cast<double>(MaxOver(part_bytes)) *
                               cluster_.disk_write_seconds_per_byte;
  metrics->reopt_seconds += write_seconds + cluster_.reopt_fixed_seconds;
  metrics->simulated_seconds +=
      write_seconds + cluster_.reopt_fixed_seconds;
  metrics->num_reopt_points += 1;
  metrics->wall_materialize_seconds += SecondsSince(wall_start);
  if (ctx_ != nullptr) {
    metrics->peak_memory_bytes =
        std::max(metrics->peak_memory_bytes, ctx_->memory().peak());
  }
  return result;
}

}  // namespace dynopt
