#ifndef DYNOPT_EXEC_CLUSTER_H_
#define DYNOPT_EXEC_CLUSTER_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/backoff.h"
#include "common/query_context.h"
#include "common/retry_budget.h"
#include "common/status.h"

namespace dynopt {

/// Knobs of the deterministic fault injector (exec/fault_injector.h). All
/// fault decisions are pure functions of (seed, site, stage, node, attempt),
/// so a given configuration reproduces the same failures on every run
/// regardless of thread scheduling. Everything is off by default; with
/// `enabled == false` the executor's metering is byte-for-byte identical to
/// a build without fault injection.
struct FaultInjectionConfig {
  bool enabled = false;
  /// Seed of the injection hash; different seeds draw independent fault
  /// patterns from the same probabilities.
  uint64_t seed = 0;

  /// Probability that one (node, stage, attempt) partition task fails and
  /// must re-execute after a backoff delay.
  double task_failure_probability = 0.0;
  /// Retry schedule for failed tasks; exhausting max_attempts escalates to
  /// a query-level kTransient error (the node is considered lost).
  BackoffPolicy backoff;

  /// Probability that a node straggles for one stage, multiplying its task
  /// time by straggler_multiplier.
  double straggler_probability = 0.0;
  double straggler_multiplier = 4.0;
  /// A task slower than this multiple of the stage's median task time gets
  /// a speculative backup execution; the faster of the two completions
  /// wins (mitigates stragglers the scheduler cannot predict).
  double speculation_threshold = 3.0;

  /// Probability that a materialized partition file is corrupted (one byte
  /// flipped) before read-back; the serde checksum detects it and the
  /// partition is re-materialized.
  double corruption_probability = 0.0;

  /// Whole-query failure injection: the query aborts with kTransient when
  /// kernel stage `fail_query_at_stage` (0-based, counted across the whole
  /// engine lifetime since arming) executes. Negative disables. At most
  /// `max_query_failures` aborts fire, so a retried/resumed query makes
  /// progress instead of re-failing forever.
  int fail_query_at_stage = -1;
  int max_query_failures = 1;
};

/// Memory-governance knobs: budgets for the hierarchical MemoryTracker and
/// the real grace-hash-join spill path. All zero by default — a zero budget
/// means "unlimited", so the executor's metering (and the legacy
/// spill_penalty_passes accounting for oversized broadcasts) is
/// byte-for-byte identical to a build without memory governance.
struct MemoryGovernanceConfig {
  /// Engine-wide budget across all concurrently admitted queries
  /// (0 == unlimited). Backs the AdmissionController's reservations.
  uint64_t engine_budget_bytes = 0;
  /// Reserved per admitted query against the engine budget; admission
  /// blocks (then times out) while the reservation cannot be granted.
  uint64_t query_reservation_bytes = 0;
  /// Per-node join build-side memory (0 == unlimited). A build partition
  /// exceeding this triggers the real grace hash join: build and probe are
  /// partitioned to checksummed spill files under `spill_directory` and
  /// joined recursively, replacing the flat spill_penalty_passes charge.
  uint64_t join_memory_budget_bytes = 0;
  /// Recursion depth cap for grace-join sub-partitioning. A sub-partition
  /// still over budget at this depth joins in memory anyway (accounted as
  /// over-subscription, never refused) — a single query must always
  /// complete.
  int max_spill_recursion = 4;
  /// Sub-partitions per spill pass (fan-out of each recursive split).
  int max_spill_fanout = 32;
};

/// Execution-engine knobs independent of the simulated cost model. These
/// change *how* operators run (vectorized batches vs. row-at-a-time), never
/// *what* they meter: with any valid setting the deterministic counters and
/// simulated seconds are byte-for-byte identical.
struct ExecOptions {
  /// Capacity of one ColumnBatch (rows) in the vectorized engine. Larger
  /// batches amortize per-batch dispatch; smaller batches keep the working
  /// set of a filter/hash kernel L1/L2-resident. Must be >= 1
  /// (ValidateClusterConfig rejects 0, which would underflow the
  /// batch-capacity math).
  size_t max_batch_size = 1024;
  /// Run scans/filters/projections/shuffle-joins through the columnar batch
  /// engine (exec/batch.h, exec/vector_kernels.h). Row `Dataset` remains
  /// the conversion boundary at scan and materialization, so serde, spill
  /// files and fault-injection checksums are unchanged. Off = the original
  /// row-at-a-time operators.
  bool use_columnar = true;
};

/// Admission-control knobs for concurrent queries. Defaults allow modest
/// concurrency without queuing surprises; zero slots would refuse all
/// queries, so `max_concurrent_queries` must stay >= 1.
///
/// Everything beyond the first three knobs is off by default: a workload
/// that configures nothing gets single-class FIFO admission with fixed
/// reservations — behaviorally identical to the pre-priority controller.
struct AdmissionConfig {
  /// Queries allowed to execute simultaneously.
  int max_concurrent_queries = 4;
  /// Queries allowed to wait for a slot; arrivals beyond this bounce
  /// immediately with kResourceExhausted (backpressure).
  int max_queue_depth = 16;
  /// Max wall-clock a query waits in the queue before giving up with
  /// kResourceExhausted.
  double queue_timeout_seconds = 10.0;

  // --- Priority classes + weighted-fair slot scheduling -----------------

  /// Relative slot share of each QueryPriority class (indexed by the enum:
  /// low, normal, high). Free slots are granted by smooth weighted
  /// round-robin across the non-empty classes, so under sustained overload
  /// class i receives weight[i]/sum(non-empty weights) of the slots while
  /// lighter classes still make progress (no starvation). Within a class,
  /// order is FIFO. With every query in one class (the default — nobody
  /// sets a priority) this degenerates to plain FIFO.
  double class_weights[kNumQueryPriorities] = {1.0, 2.0, 4.0};

  // --- Adaptive load shedding ------------------------------------------

  /// Master switch for the shedder; off by default (queues grow to
  /// max_queue_depth and waiters ride out queue_timeout_seconds, exactly
  /// the pre-shedding behavior).
  bool shed_enabled = false;
  /// Queue-depth watermark: while more than this many queries wait, the
  /// shedder drops the newest waiter of the lowest non-empty priority
  /// class with kResourceExhausted. 0 disables depth-triggered shedding.
  int shed_queue_depth = 0;
  /// Queue-wait watermark: when the oldest waiter has waited longer than
  /// this, the queue is not draining — shed one lowest-class waiter per
  /// scheduler pass until it is. 0 disables wait-triggered shedding.
  double shed_queue_wait_seconds = 0;

  // --- Graceful degradation --------------------------------------------

  /// Queue-depth watermark above which admitted queries are degraded
  /// instead of queued ones being refused: their memory reservation (and
  /// query budget) is multiplied by degrade_memory_fraction, trading spill
  /// I/O for admission headroom. 0 disables degradation.
  int degrade_queue_depth = 0;
  /// Reservation multiplier applied when degrading (in (0, 1]).
  double degrade_memory_fraction = 0.5;
  /// Also stamp strategy_downgraded on degraded queries' contexts: the
  /// caller-side hook (ApplyStrategyDowngrade, opt/degrade.h) then swaps a
  /// dynamic re-optimizing strategy for a cheap static plan, shedding the
  /// re-optimization coordination cost under pressure.
  bool degrade_strategy = false;
};

/// Risk-aware planning knobs: spill-aware costing, q-error feedback and the
/// cross-query error-memory store. Everything is off by default — with this
/// struct untouched, every optimizer plans and meters byte-for-byte like a
/// build without risk-aware planning (pinned by tests/feedback_test).
struct RiskConfig {
  /// Feed cluster.memory.join_memory_budget_bytes into the join cost model:
  /// a join whose estimated build side exceeds the per-node budget is priced
  /// with the grace-hash spill passes the executor will actually pay
  /// (write+read each overflowing pass, recursive re-partitioning up to
  /// memory.max_spill_recursion), so join-order, build-side and
  /// broadcast-vs-shuffle choices see the true cost.
  bool spill_aware_costing = false;

  /// Consume the decision log's back-patched q-errors at every
  /// re-optimization point (dynamic / ingres-like / pilot-run): observed
  /// estimation error widens the selectivity confidence interval used for
  /// the remaining decisions (pessimistic-bound costing) and, above
  /// qerror_reopt_threshold, triggers an extra re-optimization checkpoint.
  bool error_feedback = false;
  /// Worst observed within-query q-error above which an extra reopt point
  /// is inserted where the plan would otherwise go static.
  double qerror_reopt_threshold = 4.0;
  /// Cap on error-triggered extra reopt rounds per query (each one costs a
  /// materialization, so unbounded triggering could thrash).
  int max_extra_reopts = 2;
  /// Cap on the confidence-interval widening factor applied to uncertain
  /// cardinalities (both from within-query feedback and from stored
  /// priors); 1.0 disables widening even with error_feedback on.
  double max_ci_widening = 8.0;

  /// Consult/record the persistent cross-query ErrorStatsStore
  /// (opt/error_stats.h): per-table/per-predicate q-error aggregates give
  /// the cost-based and pilot-run strategies calibrated priors before the
  /// first tuple flows. Requires a non-empty error_stats_path to persist;
  /// in-memory sharing within one Engine works without a path.
  bool use_error_store = false;
  /// File the store loads at arm time and saves to (atomic tmp+rename).
  /// Empty = in-memory only.
  std::string error_stats_path;
  /// Bound on distinct (table/predicate/join) keys the store retains; new
  /// keys beyond the bound are dropped (counted, never an error).
  size_t error_store_max_entries = 4096;
};

/// Predicate-transfer / sketch knobs (stats/sketch.h). Everything is off by
/// default — with this struct untouched no sketch is built, no filter is
/// shipped, and every optimizer plans and meters byte-for-byte like a build
/// without the subsystem (pinned by tests/sketch_test and the golden suite).
struct SketchConfig {
  /// Build Bloom + Fast-AGMS sketches on join keys during scans and
  /// materializations, and ship the build side's Bloom filter sideways to
  /// the probe side of every shuffle join so pruned rows never enter the
  /// Repartition. Filter-transfer bytes are charged as network cost;
  /// pruned bytes are network cost saved.
  bool enable_predicate_transfer = false;
  /// Bloom budget in bits per expected key. More bits = lower false-positive
  /// rate but a larger filter to broadcast. Must be in [1, 64]
  /// (ValidateClusterConfig): below 1 the filter saturates instantly, above
  /// 64 it would out-weigh the data it prunes.
  double pt_bits_per_key = 8.0;
  /// Fast-AGMS rows (median over rows controls variance). Must be in
  /// [1, 64].
  size_t agms_depth = 5;
  /// Fast-AGMS counters per row. Must be in [1, 1 << 20].
  size_t agms_width = 256;
  /// Seed of every sketch hash; sketches are deterministic and mergeable
  /// only across builders sharing a seed.
  uint64_t seed = 0x5eed5eedULL;
};

/// Introspection-plane knobs (opt/profile_archive.h, src/sys/). Off by
/// default — no query is archived, no critical path is extracted, no
/// regression check runs, and EXPLAIN ANALYZE renders byte-for-byte like a
/// build without the subsystem (pinned by tests/consistency_test). The
/// `sys.*` virtual tables themselves are installed explicitly
/// (EnableIntrospection, sys/sys_tables.h) and read whatever state exists.
struct IntrospectionConfig {
  /// Archive every completed query's QueryProfile (decision log, metrics,
  /// span tree) in a bounded ring on the Engine, keyed by a canonical
  /// query fingerprint, and run the critical-path + plan-regression
  /// analyses over it.
  bool enabled = false;
  /// Completed-query profiles retained (ring buffer; oldest evicted).
  size_t archive_capacity = 64;
  /// A query slower than `threshold x` the best archived same-fingerprint
  /// run is flagged as a plan regression and its decision log diffed
  /// against that baseline. Must be >= 1.
  double regression_threshold = 1.5;
};

/// Query-watchdog knobs (exec/query_watchdog.h). Off by default — no
/// monitor thread is started and queries are only cancelled by their own
/// deadline checks, exactly the pre-watchdog behavior.
struct WatchdogConfig {
  bool enabled = false;
  /// Monitor wake-up cadence (wall clock).
  double poll_interval_seconds = 0.01;
  /// A registered query whose last heartbeat (QueryContext::CheckAlive at
  /// partition-task/reopt boundaries) is older than this is presumed stuck
  /// and cancelled, freeing its slot, spill files and temp tables through
  /// the normal cancellation unwind. 0 disables stuck detection (the
  /// watchdog then only enforces deadlines).
  double progress_timeout_seconds = 0;
};

/// Configuration of the simulated shared-nothing cluster, standing in for
/// the paper's 10-node AWS deployment. Datasets are hash-partitioned across
/// `num_nodes` simulated nodes; physical operators are actually executed
/// partition-parallel, and the constants below convert the metered work
/// (bytes over the network, bytes to/from disk, tuples through operators)
/// into *simulated seconds*. Per pipeline stage the simulated time is the
/// maximum over nodes, so data skew slows the simulated cluster down just
/// as it slows a real one.
///
/// The defaults are calibrated to commodity-node ratios (network slower
/// than disk read, disk slower than in-memory scan); the experiments only
/// depend on these ratios, not on absolute values.
struct ClusterConfig {
  /// Number of simulated nodes (partitions of every dataset).
  size_t num_nodes = 10;

  /// A dataset below this size may be broadcast (planner rule; the paper's
  /// "small enough to fit in memory / be broadcast" condition). With the
  /// 1000x data-substitution factor below, 256 KB of generated data stands
  /// for ~256 MB of per-node join memory on the paper's cluster. A build
  /// side that *actually* exceeds this at runtime overflows the in-memory
  /// hash table and pays `spill_penalty_passes` extra disk passes over the
  /// overflow — the hidden cost of an optimizer broadcasting a dataset it
  /// wrongly believed to be small.
  uint64_t broadcast_threshold_bytes = 256ull << 10;

  /// Disk write+read passes charged per overflow byte when a broadcast
  /// build side exceeds the memory budget (dynamic hash join recursive
  /// partitioning).
  double spill_penalty_passes = 4.0;

  // --- Cost-model constants (simulated seconds per unit of work) ---------
  //
  // Each generated row stands in for ~1000 rows of the paper's TB-scale
  // datasets, so every data-proportional constant below is the commodity
  // hardware rate divided by that substitution factor (e.g. network:
  // 100 MB/s / 1000 -> 1e-5 s per generated byte). Fixed per-event costs
  // (re-optimization coordination) are NOT scaled — they are genuinely
  // constant on a real cluster, which is exactly why the paper finds the
  // re-optimization overhead small relative to data movement.

  /// Receiving one byte over the network (shuffle or broadcast).
  double network_seconds_per_byte = 1.0e-5;
  /// Writing one byte of intermediate results to local disk.
  double disk_write_seconds_per_byte = 6.7e-6;
  /// Reading one byte of materialized intermediate results back.
  double disk_read_seconds_per_byte = 3.3e-6;
  /// Scanning one byte of a base dataset.
  double scan_seconds_per_byte = 2.0e-6;
  /// Pushing one tuple through an operator (hash, compare, copy).
  double cpu_seconds_per_tuple = 6.0e-5;
  /// One secondary-index lookup (hash probe + page access amortized).
  double index_lookup_seconds = 1.2e-3;
  /// Fixed coordination cost of one re-optimization point (query
  /// recompilation, job scheduling round-trips).
  double reopt_fixed_seconds = 0.02;
  /// Per-value cost of feeding the online statistics sketches.
  double stats_seconds_per_value = 2.5e-5;

  /// When set, every Sink physically round-trips each partition through a
  /// binary temp file (storage/serde.h) — the paper's "stored in a
  /// temporary file" — exercising the on-disk format in the production
  /// path. Off by default: the simulated I/O cost is charged either way
  /// and benchmarks should not measure the host's filesystem.
  bool materialize_to_disk = false;
  /// Directory for materialization temp files.
  std::string spill_directory = "/tmp";

  /// Deterministic fault injection (disabled by default). The engine arms
  /// an injector from this config (Engine::ArmFaultInjection); executors
  /// then draw task failures, stragglers and file corruption from it.
  FaultInjectionConfig fault;

  /// Memory budgets + grace-join spill (all unlimited/off by default).
  MemoryGovernanceConfig memory;
  /// Concurrent-query admission control (Engine::admission().Admit).
  AdmissionConfig admission;
  /// Engine-wide retry token bucket (unlimited/off by default); armed by
  /// Engine::RearmAdmission and consumed by the executor's fault-retry
  /// loops before each re-execution.
  RetryBudgetConfig retry_budget;
  /// Query watchdog (off by default; Engine::watchdog()).
  WatchdogConfig watchdog;
  /// Risk-aware planning: spill-aware costing, q-error feedback loops and
  /// the cross-query error store (all off by default).
  RiskConfig risk;
  /// Vectorized-execution knobs (batch size, columnar on/off).
  ExecOptions exec;
  /// Predicate transfer + join-key sketches (off by default).
  SketchConfig sketch;
  /// Query profile archive + critical-path / regression analysis (off by
  /// default; the sys.* catalog reads it when installed).
  IntrospectionConfig introspection;
};

/// Structural validation of a ClusterConfig, run when an Engine or
/// JobExecutor is constructed (i.e. at config "parse" time, before any
/// kernel touches the values). Returns kInvalidArgument with a message
/// naming the offending knob — a zero max_batch_size would otherwise
/// silently underflow the batch-capacity math deep inside a kernel.
inline Status ValidateClusterConfig(const ClusterConfig& config) {
  if (config.num_nodes < 1) {
    return Status::InvalidArgument(
        "ClusterConfig.num_nodes must be >= 1 (got 0)");
  }
  if (config.exec.max_batch_size < 1) {
    return Status::InvalidArgument(
        "ClusterConfig.exec.max_batch_size must be >= 1 (got 0); a zero "
        "batch capacity underflows the vectorized engine's chunking math");
  }
  if (config.admission.max_concurrent_queries < 1) {
    return Status::InvalidArgument(
        "ClusterConfig.admission.max_concurrent_queries must be >= 1 (got " +
        std::to_string(config.admission.max_concurrent_queries) +
        "); zero slots would refuse every query");
  }
  for (int i = 0; i < kNumQueryPriorities; ++i) {
    if (config.admission.class_weights[i] <= 0) {
      return Status::InvalidArgument(
          "ClusterConfig.admission.class_weights[" + std::to_string(i) +
          "] must be > 0; a zero-weight class would starve forever");
    }
  }
  if (config.admission.degrade_memory_fraction <= 0 ||
      config.admission.degrade_memory_fraction > 1.0) {
    return Status::InvalidArgument(
        "ClusterConfig.admission.degrade_memory_fraction must be in (0, 1] "
        "(got " +
        std::to_string(config.admission.degrade_memory_fraction) + ")");
  }
  if (config.watchdog.enabled && config.watchdog.poll_interval_seconds <= 0) {
    return Status::InvalidArgument(
        "ClusterConfig.watchdog.poll_interval_seconds must be > 0 when the "
        "watchdog is enabled");
  }
  if (config.risk.qerror_reopt_threshold < 1.0) {
    return Status::InvalidArgument(
        "ClusterConfig.risk.qerror_reopt_threshold must be >= 1 (got " +
        std::to_string(config.risk.qerror_reopt_threshold) +
        "); a q-error is never below 1, so a smaller threshold would "
        "trigger an extra reopt on every query");
  }
  if (config.risk.max_extra_reopts < 0) {
    return Status::InvalidArgument(
        "ClusterConfig.risk.max_extra_reopts must be >= 0");
  }
  if (config.risk.max_ci_widening < 1.0) {
    return Status::InvalidArgument(
        "ClusterConfig.risk.max_ci_widening must be >= 1 (got " +
        std::to_string(config.risk.max_ci_widening) +
        "); widening below 1 would make estimates *optimistic*");
  }
  if (config.sketch.pt_bits_per_key < 1.0 ||
      config.sketch.pt_bits_per_key > 64.0) {
    return Status::InvalidArgument(
        "ClusterConfig.sketch.pt_bits_per_key must be in [1, 64] (got " +
        std::to_string(config.sketch.pt_bits_per_key) +
        "); below 1 the Bloom filter saturates instantly, above 64 the "
        "filter out-weighs the data it prunes");
  }
  if (config.sketch.agms_depth < 1 || config.sketch.agms_depth > 64) {
    return Status::InvalidArgument(
        "ClusterConfig.sketch.agms_depth must be in [1, 64] (got " +
        std::to_string(config.sketch.agms_depth) +
        "); the AGMS median needs at least one row and pays linearly for "
        "each extra one");
  }
  if (config.sketch.agms_width < 1 ||
      config.sketch.agms_width > (size_t{1} << 20)) {
    return Status::InvalidArgument(
        "ClusterConfig.sketch.agms_width must be in [1, 1048576] (got " +
        std::to_string(config.sketch.agms_width) +
        "); zero-width rows cannot count anything and oversized rows "
        "out-weigh the statistics they replace");
  }
  if (config.introspection.enabled &&
      config.introspection.archive_capacity < 1) {
    return Status::InvalidArgument(
        "ClusterConfig.introspection.archive_capacity must be >= 1 when the "
        "archive is enabled; a zero-capacity ring could never hold the "
        "baseline a regression check compares against");
  }
  if (config.introspection.regression_threshold < 1.0) {
    return Status::InvalidArgument(
        "ClusterConfig.introspection.regression_threshold must be >= 1 "
        "(got " +
        std::to_string(config.introspection.regression_threshold) +
        "); a threshold below 1 would flag faster runs as regressions");
  }
  return Status::OK();
}

}  // namespace dynopt

#endif  // DYNOPT_EXEC_CLUSTER_H_
