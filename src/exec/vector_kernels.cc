#include "exec/vector_kernels.h"

#include <algorithm>

#include "plan/udf.h"

namespace dynopt {

namespace {

constexpr uint64_t kNullValueHash = 0x9ae16a3b2f90404fULL;

/// Combines one column's per-row value hashes into the accumulator `out`
/// (column-at-a-time leg of HashRowKeyInline), recording NULLs.
void CombineColumnHash(const ColumnVector& col, size_t n, uint64_t* out,
                       uint8_t* key_null) {
  const bool nullable = !col.validity.empty();
  const uint8_t* valid = col.validity.data();
  switch (col.kind) {
    case ColumnKind::kInt64: {
      const int64_t* v = col.i64.data();
      if (!nullable) {
        for (size_t i = 0; i < n; ++i) {
          out[i] = HashCombine(out[i], Mix64(static_cast<uint64_t>(v[i])));
        }
      } else {
        for (size_t i = 0; i < n; ++i) {
          if (valid[i]) {
            out[i] = HashCombine(out[i], Mix64(static_cast<uint64_t>(v[i])));
          } else {
            out[i] = HashCombine(out[i], kNullValueHash);
            key_null[i] = 1;
          }
        }
      }
      break;
    }
    case ColumnKind::kDouble: {
      const double* v = col.f64.data();
      for (size_t i = 0; i < n; ++i) {
        if (nullable && !valid[i]) {
          out[i] = HashCombine(out[i], kNullValueHash);
          key_null[i] = 1;
        } else {
          out[i] = HashCombine(out[i], ColumnVector::HashDoubleValue(v[i]));
        }
      }
      break;
    }
    case ColumnKind::kBool: {
      const uint8_t* v = col.b8.data();
      for (size_t i = 0; i < n; ++i) {
        if (nullable && !valid[i]) {
          out[i] = HashCombine(out[i], kNullValueHash);
          key_null[i] = 1;
        } else {
          out[i] = HashCombine(out[i], Mix64(v[i] != 0 ? 1 : 0));
        }
      }
      break;
    }
    case ColumnKind::kString: {
      const uint32_t* codes = col.codes.data();
      const StringDict* dict = col.dict.get();
      for (size_t i = 0; i < n; ++i) {
        if (nullable && !valid[i]) {
          out[i] = HashCombine(out[i], kNullValueHash);
          key_null[i] = 1;
        } else {
          out[i] = HashCombine(out[i], dict->hash(codes[i]));
        }
      }
      break;
    }
    case ColumnKind::kValues: {
      const Value* v = col.values.data();
      for (size_t i = 0; i < n; ++i) {
        if (v[i].is_null()) key_null[i] = 1;
        out[i] = HashCombine(out[i], ValueHashInline(v[i]));
      }
      break;
    }
  }
}

void MarkColumnNulls(const ColumnVector& col, size_t n, uint8_t* key_null) {
  if (col.kind == ColumnKind::kValues) {
    const Value* v = col.values.data();
    for (size_t i = 0; i < n; ++i) {
      if (v[i].is_null()) key_null[i] = 1;
    }
    return;
  }
  if (col.validity.empty()) return;
  const uint8_t* valid = col.validity.data();
  for (size_t i = 0; i < n; ++i) {
    if (!valid[i]) key_null[i] = 1;
  }
}

/// Numeric view of row i under Value::Compare's coercion (int64 and bool
/// widen to double). False when the value is non-numeric or NULL.
inline bool NumericAt(const ColumnVector& col, size_t i, double* out) {
  if (col.IsNullAt(i)) return false;
  switch (col.kind) {
    case ColumnKind::kInt64:
      *out = static_cast<double>(col.i64[i]);
      return true;
    case ColumnKind::kDouble:
      *out = col.f64[i];
      return true;
    case ColumnKind::kBool:
      *out = col.b8[i] != 0 ? 1.0 : 0.0;
      return true;
    case ColumnKind::kString:
      return false;
    case ColumnKind::kValues: {
      const Value& v = col.values[i];
      switch (v.type()) {
        case ValueType::kInt64:
          *out = static_cast<double>(v.AsInt64());
          return true;
        case ValueType::kDouble:
          *out = v.AsDouble();
          return true;
        case ValueType::kBool:
          *out = v.AsBool() ? 1.0 : 0.0;
          return true;
        default:
          return false;
      }
    }
  }
  return false;
}

inline const std::string* StringAt(const ColumnVector& col, size_t i) {
  if (col.IsNullAt(i)) return nullptr;
  if (col.kind == ColumnKind::kString) return &col.dict->entry(col.codes[i]);
  if (col.kind == ColumnKind::kValues &&
      col.values[i].type() == ValueType::kString) {
    return &col.values[i].AsStringUnchecked();
  }
  return nullptr;
}

/// Converts an existing typed column to the kValues fallback in place
/// (kind-mismatch promotion during multi-source appends).
void PromoteToValues(ColumnVector* col) {
  if (col->kind == ColumnKind::kValues) return;
  const size_t n = col->size();
  std::vector<Value> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) values.push_back(col->ValueAt(i));
  col->kind = ColumnKind::kValues;
  col->values = std::move(values);
  col->i64.clear();
  col->f64.clear();
  col->b8.clear();
  col->codes.clear();
  col->dict.reset();
  col->validity.clear();
}

/// An exact reserve() on every append would defeat std::vector's geometric
/// growth — each gather into the same destination column would reallocate
/// and copy everything appended so far. Grow by at least 2x instead.
template <typename V>
void ReserveAppend(V* v, size_t needed) {
  if (v->capacity() < needed) {
    v->reserve(std::max(needed, v->capacity() * 2));
  }
}

/// Merges gathered validity bits into dst (which already has `old_rows`
/// rows before this append).
void AppendValidity(ColumnVector* dst, size_t old_rows,
                    const ColumnVector& src, const uint32_t* sel, size_t n) {
  if (src.validity.empty()) {
    if (!dst->validity.empty()) {
      dst->validity.insert(dst->validity.end(), n, 1);
    }
    return;
  }
  if (dst->validity.empty()) dst->validity.assign(old_rows, 1);
  const uint8_t* valid = src.validity.data();
  for (size_t k = 0; k < n; ++k) dst->validity.push_back(valid[sel[k]]);
}

}  // namespace

void HashKeyColumns(const ColumnBatch& batch, const int* keys,
                    size_t num_keys, uint64_t* out, uint8_t* key_null) {
  const size_t n = batch.num_rows;
  for (size_t i = 0; i < n; ++i) out[i] = 0x2545f4914f6cdd1dULL;
  for (size_t k = 0; k < num_keys; ++k) {
    CombineColumnHash(batch.columns[static_cast<size_t>(keys[k])], n, out,
                      key_null);
  }
}

void AnyKeyNull(const ColumnBatch& batch, const int* keys, size_t num_keys,
                uint8_t* key_null) {
  for (size_t k = 0; k < num_keys; ++k) {
    MarkColumnNulls(batch.columns[static_cast<size_t>(keys[k])],
                    batch.num_rows, key_null);
  }
}

bool ColumnValueEqual(const ColumnVector& a, size_t i, const ColumnVector& b,
                      size_t j) {
  const bool an = a.IsNullAt(i);
  const bool bn = b.IsNullAt(j);
  if (an || bn) return an && bn;
  double da, db;
  if (NumericAt(a, i, &da) && NumericAt(b, j, &db)) {
    // Value::Compare coerces every numeric pair (even int64 vs int64) to
    // double; equality must mirror that exactly.
    return da == db;
  }
  const std::string* sa = StringAt(a, i);
  const std::string* sb = StringAt(b, j);
  if (sa != nullptr && sb != nullptr) {
    if (a.kind == ColumnKind::kString && b.kind == ColumnKind::kString &&
        a.dict.get() == b.dict.get()) {
      return a.codes[i] == b.codes[j];
    }
    return *sa == *sb;
  }
  return a.ValueAt(i) == b.ValueAt(j);
}

void ProjectedRowSizes(const ColumnBatch& batch, const int* keep,
                       size_t num_keep, uint64_t* out) {
  const size_t n = batch.num_rows;
  for (size_t i = 0; i < n; ++i) out[i] = 8;  // Row header.
  for (size_t k = 0; k < num_keep; ++k) {
    const ColumnVector& col = batch.columns[static_cast<size_t>(keep[k])];
    const bool nullable = !col.validity.empty();
    const uint8_t* valid = col.validity.data();
    switch (col.kind) {
      case ColumnKind::kInt64:
      case ColumnKind::kDouble:
        if (!nullable) {
          for (size_t i = 0; i < n; ++i) out[i] += 8;
        } else {
          for (size_t i = 0; i < n; ++i) out[i] += valid[i] ? 8 : 1;
        }
        break;
      case ColumnKind::kBool:
        // NULL and bool both cost 1 byte.
        for (size_t i = 0; i < n; ++i) out[i] += 1;
        break;
      case ColumnKind::kString: {
        const uint32_t* codes = col.codes.data();
        const StringDict* dict = col.dict.get();
        if (!nullable) {
          for (size_t i = 0; i < n; ++i) out[i] += dict->size_bytes(codes[i]);
        } else {
          for (size_t i = 0; i < n; ++i) {
            out[i] += valid[i] ? dict->size_bytes(codes[i]) : 1;
          }
        }
        break;
      }
      case ColumnKind::kValues:
        for (size_t i = 0; i < n; ++i) {
          out[i] += ValueSizeBytesInline(col.values[i]);
        }
        break;
    }
  }
}

ColumnBatch GatherBatch(const ColumnBatch& src, const uint32_t* sel,
                        size_t n) {
  ColumnBatch out;
  out.num_rows = n;
  out.columns.resize(src.columns.size());
  for (size_t c = 0; c < src.columns.size(); ++c) {
    const ColumnVector& s = src.columns[c];
    ColumnVector& d = out.columns[c];
    d.kind = s.kind;
    switch (s.kind) {
      case ColumnKind::kInt64:
        d.i64.resize(n);
        for (size_t k = 0; k < n; ++k) d.i64[k] = s.i64[sel[k]];
        break;
      case ColumnKind::kDouble:
        d.f64.resize(n);
        for (size_t k = 0; k < n; ++k) d.f64[k] = s.f64[sel[k]];
        break;
      case ColumnKind::kBool:
        d.b8.resize(n);
        for (size_t k = 0; k < n; ++k) d.b8[k] = s.b8[sel[k]];
        break;
      case ColumnKind::kString:
        d.dict = s.dict;  // Selection never changes the value set: share.
        d.codes.resize(n);
        for (size_t k = 0; k < n; ++k) d.codes[k] = s.codes[sel[k]];
        break;
      case ColumnKind::kValues:
        d.values.reserve(n);
        for (size_t k = 0; k < n; ++k) d.values.push_back(s.values[sel[k]]);
        break;
    }
    if (!s.validity.empty()) {
      d.validity.resize(n);
      for (size_t k = 0; k < n; ++k) d.validity[k] = s.validity[sel[k]];
    }
  }
  out.row_sizes.resize(n);
  for (size_t k = 0; k < n; ++k) out.row_sizes[k] = src.row_sizes[sel[k]];
  return out;
}

void AppendGatherColumn(ColumnVector* dst, const ColumnVector& src,
                        const uint32_t* sel, size_t n) {
  if (n == 0) return;
  const size_t old_rows = dst->size();
  if (old_rows == 0) {
    // Fresh destination: adopt the source layout (and share its dict).
    dst->kind = src.kind;
    dst->dict = src.kind == ColumnKind::kString ? src.dict : nullptr;
    dst->validity.clear();
    dst->values.clear();
  }
  if (dst->kind != src.kind) PromoteToValues(dst);
  if (dst->kind == ColumnKind::kValues) {
    ReserveAppend(&dst->values, old_rows + n);
    if (src.kind == ColumnKind::kValues) {
      for (size_t k = 0; k < n; ++k) {
        dst->values.push_back(src.values[sel[k]]);
      }
    } else {
      for (size_t k = 0; k < n; ++k) {
        dst->values.push_back(src.ValueAt(sel[k]));
      }
    }
    return;
  }
  switch (dst->kind) {
    case ColumnKind::kInt64:
      ReserveAppend(&dst->i64, old_rows + n);
      for (size_t k = 0; k < n; ++k) dst->i64.push_back(src.i64[sel[k]]);
      break;
    case ColumnKind::kDouble:
      ReserveAppend(&dst->f64, old_rows + n);
      for (size_t k = 0; k < n; ++k) dst->f64.push_back(src.f64[sel[k]]);
      break;
    case ColumnKind::kBool:
      ReserveAppend(&dst->b8, old_rows + n);
      for (size_t k = 0; k < n; ++k) dst->b8.push_back(src.b8[sel[k]]);
      break;
    case ColumnKind::kString:
      ReserveAppend(&dst->codes, old_rows + n);
      if (dst->dict.get() == src.dict.get()) {
        for (size_t k = 0; k < n; ++k) dst->codes.push_back(src.codes[sel[k]]);
      } else {
        // Merge dictionaries: intern via the source's cached hashes. NULL
        // slots carry a meaningless code 0 and must not touch the dict.
        // The destination dict may have been adopted from an earlier source
        // batch and still be shared with it (and, on a parallel shuffle,
        // readable from other workers' sinks) — clone before the first
        // mutating intern so shared dictionaries stay immutable. A unique
        // reference cannot gain new owners mid-append, so use_count()==1 is
        // a safe exclusivity check.
        if (dst->dict.use_count() > 1) {
          dst->dict = std::make_shared<StringDict>(*dst->dict);
        }
        const bool nullable = !src.validity.empty();
        for (size_t k = 0; k < n; ++k) {
          const uint32_t code = src.codes[sel[k]];
          if (nullable && !src.validity[sel[k]]) {
            dst->codes.push_back(0);
          } else {
            dst->codes.push_back(
                dst->dict->Intern(src.dict->entry(code),
                                  src.dict->hash(code)));
          }
        }
      }
      break;
    case ColumnKind::kValues:
      break;  // Handled above.
  }
  AppendValidity(dst, old_rows, src, sel, n);
}

ColumnBatch ConcatBatches(const std::vector<ColumnBatch>& batches) {
  ColumnBatch out;
  if (batches.empty()) return out;
  size_t total = 0;
  size_t max_rows = 0;
  for (const ColumnBatch& b : batches) {
    total += b.num_rows;
    max_rows = std::max(max_rows, b.num_rows);
  }
  const size_t num_cols = batches[0].columns.size();
  out.columns.resize(num_cols);
  out.row_sizes.reserve(total);
  std::vector<uint32_t> identity;  // built lazily — slow path only
  for (size_t c = 0; c < num_cols; ++c) {
    // When every non-empty batch agrees on the column's layout (same kind
    // and, for strings, the very same dictionary — the common case, since
    // a partition's batches come from one producer), the concat is a bulk
    // range copy instead of a per-element gather.
    const ColumnVector* proto = nullptr;
    bool uniform = true;
    bool any_validity = false;
    for (const ColumnBatch& b : batches) {
      if (b.num_rows == 0) continue;
      const ColumnVector& s = b.columns[c];
      if (!s.validity.empty()) any_validity = true;
      if (proto == nullptr) {
        proto = &s;
      } else if (s.kind != proto->kind ||
                 (s.kind == ColumnKind::kString &&
                  s.dict.get() != proto->dict.get())) {
        uniform = false;
      }
    }
    if (proto == nullptr) continue;  // every batch is empty
    ColumnVector& d = out.columns[c];
    if (uniform) {
      d.kind = proto->kind;
      if (proto->kind == ColumnKind::kString) d.dict = proto->dict;
      for (const ColumnBatch& b : batches) {
        if (b.num_rows == 0) continue;
        const ColumnVector& s = b.columns[c];
        switch (d.kind) {
          case ColumnKind::kInt64:
            if (d.i64.empty()) d.i64.reserve(total);
            d.i64.insert(d.i64.end(), s.i64.begin(), s.i64.end());
            break;
          case ColumnKind::kDouble:
            if (d.f64.empty()) d.f64.reserve(total);
            d.f64.insert(d.f64.end(), s.f64.begin(), s.f64.end());
            break;
          case ColumnKind::kBool:
            if (d.b8.empty()) d.b8.reserve(total);
            d.b8.insert(d.b8.end(), s.b8.begin(), s.b8.end());
            break;
          case ColumnKind::kString:
            if (d.codes.empty()) d.codes.reserve(total);
            d.codes.insert(d.codes.end(), s.codes.begin(), s.codes.end());
            break;
          case ColumnKind::kValues:
            if (d.values.empty()) d.values.reserve(total);
            d.values.insert(d.values.end(), s.values.begin(), s.values.end());
            break;
        }
        if (any_validity) {
          if (d.validity.capacity() == 0) d.validity.reserve(total);
          if (s.validity.empty()) {
            d.validity.insert(d.validity.end(), b.num_rows, 1);
          } else {
            d.validity.insert(d.validity.end(), s.validity.begin(),
                              s.validity.end());
          }
        }
      }
    } else {
      if (identity.empty() && max_rows > 0) {
        identity.resize(max_rows);
        for (size_t i = 0; i < max_rows; ++i) {
          identity[i] = static_cast<uint32_t>(i);
        }
      }
      for (const ColumnBatch& b : batches) {
        AppendGatherColumn(&d, b.columns[c], identity.data(), b.num_rows);
      }
    }
  }
  for (const ColumnBatch& b : batches) {
    out.row_sizes.insert(out.row_sizes.end(), b.row_sizes.begin(),
                         b.row_sizes.end());
    out.num_rows += b.num_rows;
  }
  return out;
}

void BatchSink::EnsureOpen() {
  if (open_) return;
  cur_ = ColumnBatch();
  cur_.columns.resize(num_columns_);
  cur_.row_sizes.reserve(std::min<size_t>(capacity_, 4096));
  open_ = true;
}

void BatchSink::CloseIfFull() {
  if (open_ && cur_.num_rows >= capacity_) {
    out_->push_back(std::move(cur_));
    open_ = false;
  }
}

void BatchSink::AppendGather(const ColumnBatch& src, const uint32_t* sel,
                             size_t n) {
  size_t off = 0;
  while (off < n) {
    EnsureOpen();
    const size_t m = std::min(capacity_ - cur_.num_rows, n - off);
    for (size_t c = 0; c < num_columns_; ++c) {
      AppendGatherColumn(&cur_.columns[c], src.columns[c], sel + off, m);
    }
    for (size_t k = 0; k < m; ++k) {
      cur_.row_sizes.push_back(src.row_sizes[sel[off + k]]);
    }
    cur_.num_rows += m;
    rows_appended_ += m;
    off += m;
    CloseIfFull();
  }
}

void BatchSink::AppendJoinGather(const ColumnBatch& build,
                                 const uint32_t* bsel,
                                 const ColumnBatch& probe,
                                 const uint32_t* psel, const uint64_t* sizes,
                                 size_t n) {
  const size_t bc = build.columns.size();
  size_t off = 0;
  while (off < n) {
    EnsureOpen();
    const size_t m = std::min(capacity_ - cur_.num_rows, n - off);
    for (size_t c = 0; c < bc; ++c) {
      AppendGatherColumn(&cur_.columns[c], build.columns[c], bsel + off, m);
    }
    for (size_t c = bc; c < num_columns_; ++c) {
      AppendGatherColumn(&cur_.columns[c], probe.columns[c - bc], psel + off,
                         m);
    }
    cur_.row_sizes.insert(cur_.row_sizes.end(), sizes + off, sizes + off + m);
    cur_.num_rows += m;
    rows_appended_ += m;
    off += m;
    CloseIfFull();
  }
}

void BatchSink::Flush() {
  if (open_ && cur_.num_rows > 0) {
    out_->push_back(std::move(cur_));
  }
  open_ = false;
}

// --- VecPredicate --------------------------------------------------------

namespace {
constexpr uint8_t kTriFalse = 0;
constexpr uint8_t kTriTrue = 1;
constexpr uint8_t kTriNull = 2;

/// EvalBool-style truthiness as tri-state (NULL stays distinguishable for
/// leaf-comparison propagation; combinators coerce kTriNull to false).
uint8_t TruthyTri(const Value& v) {
  if (v.is_null()) return kTriNull;
  switch (v.type()) {
    case ValueType::kBool:
      return v.AsBool() ? kTriTrue : kTriFalse;
    case ValueType::kInt64:
      return v.AsInt64() != 0 ? kTriTrue : kTriFalse;
    case ValueType::kDouble:
      return v.AsDouble() != 0.0 ? kTriTrue : kTriFalse;
    default:
      return kTriFalse;
  }
}

inline bool ApplyCmp(int c, CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return c == 0;
    case CompareOp::kNe:
      return c != 0;
    case CompareOp::kLt:
      return c < 0;
    case CompareOp::kLe:
      return c <= 0;
    case CompareOp::kGt:
      return c > 0;
    case CompareOp::kGe:
      return c >= 0;
  }
  return false;
}

inline int CompareDoubles(double a, double b) {
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

}  // namespace

struct VecPredicate::Node {
  enum class Op { kColumn, kConst, kCmp, kBetween, kAnd, kOr, kNot, kUdf };
  Op op;
  int slot = -1;                   // kColumn
  Value constant;                  // kConst
  CompareOp cmp = CompareOp::kEq;  // kCmp
  const UdfFn* fn = nullptr;       // kUdf
  std::vector<std::unique_ptr<Node>> children;
};

namespace {

using PNode = VecPredicate::Node;

/// A comparison/UDF operand after evaluation: a borrowed column, a
/// constant, or per-row materialized Values (UDF results and nested
/// predicate results).
struct ScalarOperand {
  const ColumnVector* col = nullptr;
  const Value* constant = nullptr;
  std::vector<Value> owned;

  bool IsNullAt(size_t i) const {
    if (col != nullptr) return col->IsNullAt(i);
    if (constant != nullptr) return constant->is_null();
    return owned[i].is_null();
  }
  Value At(size_t i) const {
    if (col != nullptr) return col->ValueAt(i);
    if (constant != nullptr) return *constant;
    return owned[i];
  }
};

void EvalTri(const PNode& node, const ColumnBatch& batch,
             std::vector<uint8_t>* out);

void EvalScalar(const PNode& node, const ColumnBatch& batch,
                ScalarOperand* out) {
  switch (node.op) {
    case PNode::Op::kColumn:
      out->col = &batch.columns[static_cast<size_t>(node.slot)];
      return;
    case PNode::Op::kConst:
      out->constant = &node.constant;
      return;
    case PNode::Op::kUdf: {
      const size_t n = batch.num_rows;
      std::vector<ScalarOperand> args(node.children.size());
      for (size_t a = 0; a < node.children.size(); ++a) {
        EvalScalar(*node.children[a], batch, &args[a]);
      }
      out->owned.reserve(n);
      std::vector<Value> argv(node.children.size());
      for (size_t i = 0; i < n; ++i) {
        for (size_t a = 0; a < args.size(); ++a) argv[a] = args[a].At(i);
        out->owned.push_back((*node.fn)(argv));
      }
      return;
    }
    default: {
      // Predicate-valued operand (nested comparison/boolean): evaluate
      // tri-state, materialize as bool/NULL Values.
      std::vector<uint8_t> tri;
      EvalTri(node, batch, &tri);
      out->owned.reserve(tri.size());
      for (uint8_t t : tri) {
        out->owned.push_back(t == kTriNull ? Value::Null()
                                           : Value(t == kTriTrue));
      }
      return;
    }
  }
}

/// Numeric double view of an operand: fills vals/nulls (length n) and
/// returns true when the operand is statically numeric (typed numeric
/// column or numeric constant). kValues columns and non-numeric constants
/// fall back to the generic Value path.
bool FillNumeric(const ScalarOperand& op, size_t n, std::vector<double>* vals,
                 std::vector<uint8_t>* nulls) {
  vals->resize(n);
  nulls->assign(n, 0);
  if (op.constant != nullptr) {
    const Value& v = *op.constant;
    double d;
    switch (v.type()) {
      case ValueType::kInt64:
        d = static_cast<double>(v.AsInt64());
        break;
      case ValueType::kDouble:
        d = v.AsDouble();
        break;
      case ValueType::kBool:
        d = v.AsBool() ? 1.0 : 0.0;
        break;
      default:
        return false;
    }
    std::fill(vals->begin(), vals->end(), d);
    return true;
  }
  if (op.col == nullptr) return false;
  const ColumnVector& col = *op.col;
  const bool nullable = !col.validity.empty();
  switch (col.kind) {
    case ColumnKind::kInt64:
      for (size_t i = 0; i < n; ++i) {
        (*vals)[i] = static_cast<double>(col.i64[i]);
      }
      break;
    case ColumnKind::kDouble:
      std::copy(col.f64.begin(), col.f64.end(), vals->begin());
      break;
    case ColumnKind::kBool:
      for (size_t i = 0; i < n; ++i) {
        (*vals)[i] = col.b8[i] != 0 ? 1.0 : 0.0;
      }
      break;
    default:
      return false;
  }
  if (nullable) {
    for (size_t i = 0; i < n; ++i) (*nulls)[i] = col.validity[i] ? 0 : 1;
  }
  return true;
}

/// Comparison of two operands into a tri-state mask; NULL operands yield
/// kTriNull (BoundComparison semantics).
void CompareOperands(const ScalarOperand& l, const ScalarOperand& r,
                     CompareOp op, size_t n, std::vector<uint8_t>* out) {
  out->resize(n);
  // Fast path 1: both sides statically numeric -> vectorized double
  // compare (Value::Compare coerces every numeric pair to double).
  {
    std::vector<double> lv, rv;
    std::vector<uint8_t> ln, rn;
    if (FillNumeric(l, n, &lv, &ln) && FillNumeric(r, n, &rv, &rn)) {
      for (size_t i = 0; i < n; ++i) {
        if (ln[i] | rn[i]) {
          (*out)[i] = kTriNull;
        } else {
          (*out)[i] =
              ApplyCmp(CompareDoubles(lv[i], rv[i]), op) ? kTriTrue
                                                         : kTriFalse;
        }
      }
      return;
    }
  }
  // Fast path 2: dictionary string column vs string constant -> memoize the
  // comparison per dictionary code (one compare per distinct value).
  if (l.col != nullptr && l.col->kind == ColumnKind::kString &&
      r.constant != nullptr && r.constant->type() == ValueType::kString) {
    const ColumnVector& col = *l.col;
    const StringDict& dict = *col.dict;
    const std::string& c = r.constant->AsStringUnchecked();
    std::vector<uint8_t> by_code(dict.size());
    for (uint32_t code = 0; code < dict.size(); ++code) {
      const int cmp = dict.entry(code).compare(c);
      by_code[code] =
          ApplyCmp(cmp < 0 ? -1 : (cmp > 0 ? 1 : 0), op) ? kTriTrue
                                                         : kTriFalse;
    }
    const bool nullable = !col.validity.empty();
    for (size_t i = 0; i < n; ++i) {
      (*out)[i] = (nullable && !col.validity[i]) ? kTriNull
                                                 : by_code[col.codes[i]];
    }
    return;
  }
  // Generic path: per-row Value comparison (exactly BoundComparison).
  for (size_t i = 0; i < n; ++i) {
    if (l.IsNullAt(i) || r.IsNullAt(i)) {
      (*out)[i] = kTriNull;
      continue;
    }
    (*out)[i] = ApplyCmp(l.At(i).Compare(r.At(i)), op) ? kTriTrue : kTriFalse;
  }
}

void EvalTri(const PNode& node, const ColumnBatch& batch,
             std::vector<uint8_t>* out) {
  const size_t n = batch.num_rows;
  switch (node.op) {
    case PNode::Op::kConst: {
      out->assign(n, TruthyTri(node.constant));
      return;
    }
    case PNode::Op::kColumn: {
      out->resize(n);
      const ColumnVector& col = batch.columns[static_cast<size_t>(node.slot)];
      for (size_t i = 0; i < n; ++i) (*out)[i] = TruthyTri(col.ValueAt(i));
      return;
    }
    case PNode::Op::kCmp: {
      ScalarOperand l, r;
      EvalScalar(*node.children[0], batch, &l);
      EvalScalar(*node.children[1], batch, &r);
      CompareOperands(l, r, node.cmp, n, out);
      return;
    }
    case PNode::Op::kBetween: {
      ScalarOperand v, lo, hi;
      EvalScalar(*node.children[0], batch, &v);
      EvalScalar(*node.children[1], batch, &lo);
      EvalScalar(*node.children[2], batch, &hi);
      out->resize(n);
      std::vector<double> vv, lv, hv;
      std::vector<uint8_t> vn, ln, hn;
      if (FillNumeric(v, n, &vv, &vn) && FillNumeric(lo, n, &lv, &ln) &&
          FillNumeric(hi, n, &hv, &hn)) {
        for (size_t i = 0; i < n; ++i) {
          if (vn[i] | ln[i] | hn[i]) {
            (*out)[i] = kTriNull;
          } else {
            (*out)[i] = (vv[i] >= lv[i] && vv[i] <= hv[i]) ? kTriTrue
                                                           : kTriFalse;
          }
        }
        return;
      }
      for (size_t i = 0; i < n; ++i) {
        if (v.IsNullAt(i) || lo.IsNullAt(i) || hi.IsNullAt(i)) {
          (*out)[i] = kTriNull;
          continue;
        }
        const Value val = v.At(i);
        (*out)[i] = (val >= lo.At(i) && val <= hi.At(i)) ? kTriTrue
                                                         : kTriFalse;
      }
      return;
    }
    case PNode::Op::kAnd: {
      out->assign(n, kTriTrue);
      std::vector<uint8_t> child;
      for (const auto& c : node.children) {
        EvalTri(*c, batch, &child);
        // EvalBool coercion at the combinator boundary: NULL children are
        // false, and the AND result itself is never NULL.
        for (size_t i = 0; i < n; ++i) {
          (*out)[i] = ((*out)[i] == kTriTrue && child[i] == kTriTrue)
                          ? kTriTrue
                          : kTriFalse;
        }
      }
      return;
    }
    case PNode::Op::kOr: {
      out->assign(n, kTriFalse);
      std::vector<uint8_t> child;
      for (const auto& c : node.children) {
        EvalTri(*c, batch, &child);
        for (size_t i = 0; i < n; ++i) {
          (*out)[i] = ((*out)[i] == kTriTrue || child[i] == kTriTrue)
                          ? kTriTrue
                          : kTriFalse;
        }
      }
      return;
    }
    case PNode::Op::kNot: {
      EvalTri(*node.children[0], batch, out);
      // NOT(EvalBool(x)): NULL coerces to false first, so NOT(NULL) = true.
      for (size_t i = 0; i < n; ++i) {
        (*out)[i] = (*out)[i] == kTriTrue ? kTriFalse : kTriTrue;
      }
      return;
    }
    case PNode::Op::kUdf: {
      ScalarOperand v;
      EvalScalar(node, batch, &v);
      out->resize(n);
      for (size_t i = 0; i < n; ++i) (*out)[i] = TruthyTri(v.owned[i]);
      return;
    }
  }
}

Result<std::unique_ptr<PNode>> CompileNode(
    const ExprPtr& expr, const std::vector<std::string>& columns,
    const std::map<std::string, Value>* params, const UdfRegistry* udfs) {
  auto node = std::make_unique<PNode>();
  switch (expr->kind()) {
    case ExprKind::kColumnRef: {
      const auto& col = static_cast<const ColumnRefExpr&>(*expr);
      // One name lookup per operand at compile time — never in the batch
      // loop (the instrumented counter pins this).
      const int slot = LinearColumnIndex(columns, col.Qualified());
      if (slot < 0) {
        return Status::BindError("unresolved column " + col.Qualified());
      }
      node->op = PNode::Op::kColumn;
      node->slot = slot;
      return node;
    }
    case ExprKind::kLiteral: {
      node->op = PNode::Op::kConst;
      node->constant = static_cast<const LiteralExpr&>(*expr).value();
      return node;
    }
    case ExprKind::kParam: {
      const auto& param = static_cast<const ParamExpr&>(*expr);
      if (params == nullptr) {
        return Status::BindError("no parameters provided for $" +
                                 param.name());
      }
      auto it = params->find(param.name());
      if (it == params->end()) {
        return Status::BindError("unbound parameter $" + param.name());
      }
      node->op = PNode::Op::kConst;
      node->constant = it->second;
      return node;
    }
    case ExprKind::kComparison: {
      const auto& cmp = static_cast<const ComparisonExpr&>(*expr);
      node->op = PNode::Op::kCmp;
      node->cmp = cmp.op();
      DYNOPT_ASSIGN_OR_RETURN(auto l,
                              CompileNode(cmp.left(), columns, params, udfs));
      DYNOPT_ASSIGN_OR_RETURN(auto r,
                              CompileNode(cmp.right(), columns, params, udfs));
      node->children.push_back(std::move(l));
      node->children.push_back(std::move(r));
      return node;
    }
    case ExprKind::kBetween: {
      const auto& between = static_cast<const BetweenExpr&>(*expr);
      node->op = PNode::Op::kBetween;
      for (const ExprPtr& child :
           {between.input(), between.lo(), between.hi()}) {
        DYNOPT_ASSIGN_OR_RETURN(auto c,
                                CompileNode(child, columns, params, udfs));
        node->children.push_back(std::move(c));
      }
      return node;
    }
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      const std::vector<ExprPtr>& children =
          expr->kind() == ExprKind::kAnd
              ? static_cast<const AndExpr&>(*expr).children()
              : static_cast<const OrExpr&>(*expr).children();
      node->op =
          expr->kind() == ExprKind::kAnd ? PNode::Op::kAnd : PNode::Op::kOr;
      for (const ExprPtr& child : children) {
        DYNOPT_ASSIGN_OR_RETURN(auto c,
                                CompileNode(child, columns, params, udfs));
        node->children.push_back(std::move(c));
      }
      return node;
    }
    case ExprKind::kNot: {
      const auto& not_expr = static_cast<const NotExpr&>(*expr);
      node->op = PNode::Op::kNot;
      DYNOPT_ASSIGN_OR_RETURN(
          auto c, CompileNode(not_expr.child(), columns, params, udfs));
      node->children.push_back(std::move(c));
      return node;
    }
    case ExprKind::kUdfCall: {
      const auto& udf = static_cast<const UdfCallExpr&>(*expr);
      if (udfs == nullptr) {
        return Status::BindError("no UDF registry provided for " + udf.name());
      }
      const UdfFn* fn = udfs->Lookup(udf.name());
      if (fn == nullptr) {
        return Status::BindError("unregistered UDF " + udf.name());
      }
      node->op = PNode::Op::kUdf;
      node->fn = fn;
      for (const ExprPtr& arg : udf.args()) {
        DYNOPT_ASSIGN_OR_RETURN(auto c,
                                CompileNode(arg, columns, params, udfs));
        node->children.push_back(std::move(c));
      }
      return node;
    }
  }
  return Status::Internal("unknown expression kind");
}

}  // namespace

VecPredicate::VecPredicate(std::unique_ptr<Node> root)
    : root_(std::move(root)) {}

Result<VecPredicate> VecPredicate::Compile(
    const ExprPtr& expr, const std::vector<std::string>& columns,
    const std::map<std::string, Value>* params, const UdfRegistry* udfs) {
  DYNOPT_ASSIGN_OR_RETURN(auto root, CompileNode(expr, columns, params, udfs));
  return VecPredicate(std::move(root));
}

void VecPredicate::EvalBools(const ColumnBatch& batch,
                             std::vector<uint8_t>* keep) const {
  std::vector<uint8_t> tri;
  EvalTri(*root_, batch, &tri);
  keep->resize(batch.num_rows);
  for (size_t i = 0; i < batch.num_rows; ++i) {
    (*keep)[i] = tri[i] == kTriTrue ? 1 : 0;
  }
}

}  // namespace dynopt
