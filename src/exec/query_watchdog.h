#ifndef DYNOPT_EXEC_QUERY_WATCHDOG_H_
#define DYNOPT_EXEC_QUERY_WATCHDOG_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "common/metrics_registry.h"
#include "common/query_context.h"
#include "exec/cluster.h"

namespace dynopt {

/// Background monitor that cancels queries which stopped cooperating:
/// every poll interval it sweeps the registered QueryContexts and fires
/// their cancellation token when (a) the query's own deadline has passed —
/// catching queries stuck somewhere that never reaches a CheckAlive()
/// checkpoint — or (b) the progress timeout elapsed since the last
/// heartbeat (CheckAlive() heartbeats at every partition-task and
/// re-optimization boundary, so a healthy query is never stale).
///
/// The watchdog only *cancels*; reclamation is the existing machinery. The
/// cancelled query surfaces kCancelled at its next checkpoint (or its
/// driver loop observes the token), RunWithRecovery's terminal-failure
/// sweep drops its temp tables and spill files, and the admission Ticket's
/// destructor frees the slot and memory reservation — nothing leaks even
/// when the query never heartbeats again.
///
/// Registration is RAII via WatchdogRegistration; the monitor thread only
/// reads atomics off the contexts (Heartbeat / SecondsSinceHeartbeat /
/// deadline) so polling never blocks query progress.
class QueryWatchdog {
 public:
  /// `metrics_registry` receives the watchdog kill counters; null falls
  /// back to MetricsRegistry::Global().
  explicit QueryWatchdog(const WatchdogConfig& config,
                         MetricsRegistry* metrics_registry = nullptr);
  ~QueryWatchdog();

  QueryWatchdog(const QueryWatchdog&) = delete;
  QueryWatchdog& operator=(const QueryWatchdog&) = delete;

  /// Starts monitoring `ctx` (no-op when the watchdog is disabled). The
  /// context must stay alive until Unwatch() returns.
  void Watch(QueryContext* ctx);
  void Unwatch(QueryContext* ctx);

  /// Queries cancelled for a blown deadline / a stale heartbeat.
  uint64_t deadline_kills() const;
  uint64_t stall_kills() const;
  bool enabled() const { return config_.enabled; }
  const WatchdogConfig& config() const { return config_; }

 private:
  void MonitorLoop();
  /// One sweep over the watch list; returns kills performed (test seam).
  void SweepLocked();

  const WatchdogConfig config_;
  MetricsRegistry* registry_;  ///< Engine-owned or Global(); never null.
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<QueryContext*> watched_;
  bool stop_ = false;
  uint64_t deadline_kills_ = 0;
  uint64_t stall_kills_ = 0;
  std::thread monitor_;  ///< Last member: starts after state is ready.
};

/// RAII watch registration: Watch on construction, Unwatch on destruction.
/// Null watchdog (or a disabled one) makes it a no-op, so call sites can
/// register unconditionally.
class WatchdogRegistration {
 public:
  WatchdogRegistration(QueryWatchdog* watchdog, QueryContext* ctx)
      : watchdog_(watchdog), ctx_(ctx) {
    if (watchdog_ != nullptr) watchdog_->Watch(ctx_);
  }
  ~WatchdogRegistration() {
    if (watchdog_ != nullptr) watchdog_->Unwatch(ctx_);
  }
  WatchdogRegistration(const WatchdogRegistration&) = delete;
  WatchdogRegistration& operator=(const WatchdogRegistration&) = delete;

 private:
  QueryWatchdog* watchdog_;
  QueryContext* ctx_;
};

}  // namespace dynopt

#endif  // DYNOPT_EXEC_QUERY_WATCHDOG_H_
