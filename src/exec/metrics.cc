#include "exec/metrics.h"

#include <sstream>

namespace dynopt {

void ExecMetrics::Add(const ExecMetrics& other) {
  rows_out = other.rows_out;  // Rows-out reflects the latest operator.
  tuples_processed += other.tuples_processed;
  bytes_scanned += other.bytes_scanned;
  bytes_shuffled += other.bytes_shuffled;
  bytes_broadcast += other.bytes_broadcast;
  bytes_materialized += other.bytes_materialized;
  bytes_intermediate_read += other.bytes_intermediate_read;
  index_lookups += other.index_lookups;
  num_jobs += other.num_jobs;
  num_reopt_points += other.num_reopt_points;
  simulated_seconds += other.simulated_seconds;
  reopt_seconds += other.reopt_seconds;
  stats_seconds += other.stats_seconds;
  recovery_seconds += other.recovery_seconds;
  num_retries += other.num_retries;
  speculative_executions += other.speculative_executions;
  corrupted_blocks += other.corrupted_blocks;
  if (other.peak_memory_bytes > peak_memory_bytes) {
    peak_memory_bytes = other.peak_memory_bytes;
  }
  spilled_bytes += other.spilled_bytes;
  spill_partitions += other.spill_partitions;
  queue_wait_seconds += other.queue_wait_seconds;
  if (other.admission_degraded > admission_degraded) {
    admission_degraded = other.admission_degraded;
  }
  wall_shuffle_seconds += other.wall_shuffle_seconds;
  wall_build_seconds += other.wall_build_seconds;
  wall_probe_seconds += other.wall_probe_seconds;
  wall_materialize_seconds += other.wall_materialize_seconds;
  if (other.max_q_error > max_q_error) max_q_error = other.max_q_error;
  num_decisions += other.num_decisions;
  error_reopt_triggers += other.error_reopt_triggers;
  pt_filter_bytes += other.pt_filter_bytes;
  pt_pruned_rows += other.pt_pruned_rows;
  pt_pruned_bytes += other.pt_pruned_bytes;
}

std::string ExecMetrics::ToString() const {
  std::ostringstream os;
  os << "rows_out=" << rows_out << " tuples=" << tuples_processed
     << " scanned=" << bytes_scanned << "B shuffled=" << bytes_shuffled
     << "B broadcast=" << bytes_broadcast
     << "B materialized=" << bytes_materialized
     << "B reread=" << bytes_intermediate_read
     << "B idx_lookups=" << index_lookups << " jobs=" << num_jobs
     << " reopts=" << num_reopt_points << " sim_s=" << simulated_seconds
     << " (reopt_s=" << reopt_seconds << ", stats_s=" << stats_seconds
     << ", recovery_s=" << recovery_seconds << ")";
  // Every group renders unconditionally so the string never drifts from the
  // struct again (zero sections read as zeros, not as missing data).
  os << " faults[retries=" << num_retries
     << " speculative=" << speculative_executions
     << " corrupted_blocks=" << corrupted_blocks << "]";
  os << " mem[peak=" << peak_memory_bytes << "B spilled=" << spilled_bytes
     << "B spill_parts=" << spill_partitions
     << " queue_wait=" << queue_wait_seconds
     << "s degraded=" << admission_degraded << "]";
  os << " opt[decisions=" << num_decisions << " max_q_error=" << max_q_error
     << " error_reopts=" << error_reopt_triggers << "]";
  os << " pt[filter=" << pt_filter_bytes << "B pruned_rows=" << pt_pruned_rows
     << " pruned=" << pt_pruned_bytes << "B]";
  os
     << " wall[shuffle=" << wall_shuffle_seconds
     << "s build=" << wall_build_seconds << "s probe=" << wall_probe_seconds
     << "s materialize=" << wall_materialize_seconds << "s]";
  return os.str();
}

}  // namespace dynopt
