#ifndef DYNOPT_EXEC_ENGINE_H_
#define DYNOPT_EXEC_ENGINE_H_

#include <memory>
#include <vector>

#include "common/memory_tracker.h"
#include "common/metrics_registry.h"
#include "common/query_context.h"
#include "common/retry_budget.h"
#include "common/thread_pool.h"
#include "exec/admission_controller.h"
#include "exec/cluster.h"
#include "exec/executor.h"
#include "exec/query_watchdog.h"
#include "plan/udf.h"
#include "stats/sketch.h"
#include "stats/table_stats.h"
#include "storage/catalog.h"

namespace dynopt {

/// Facade bundling the simulated cluster's long-lived state: the catalog of
/// loaded datasets, the statistics framework, the UDF registry and the
/// worker pool. Examples, tests and benchmarks create one Engine, load a
/// workload into it, then hand it to optimizers.
class Engine {
 public:
  explicit Engine(const ClusterConfig& cluster = ClusterConfig())
      : cluster_(cluster), pool_(0) {}

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Catalog& catalog() { return catalog_; }
  StatsManager& stats() { return stats_; }
  /// Join-key sketch registry (predicate transfer); empty unless
  /// cluster().sketch knobs are enabled.
  SketchManager& sketches() { return sketches_; }
  UdfRegistry& udfs() { return udfs_; }
  ThreadPool& pool() { return pool_; }
  const ClusterConfig& cluster() const { return cluster_; }
  ClusterConfig& mutable_cluster() { return cluster_; }

  /// A fresh executor bound to this engine's state (executors are cheap,
  /// stateless objects). When fault injection is armed, the executor draws
  /// faults from the engine-owned injector.
  /// With a non-null `ctx` the executor is bound to that per-query context:
  /// its kernels check the context's cancellation token/deadline at every
  /// task boundary and account memory against the context's tracker. `ctx`
  /// must outlive the executor's jobs.
  JobExecutor MakeExecutor(QueryContext* ctx = nullptr) {
    return JobExecutor(&catalog_, &stats_, &udfs_, cluster_, &pool_,
                       faults_.get(), ctx, &retry_budget(), &sketches_,
                       &metrics_);
  }

  /// Engine-scoped metrics registry: every executor, admission controller
  /// and watchdog this engine builds records here, so counters stay
  /// attributable when multiple engines share a process (sys.metrics reads
  /// exactly this registry). MetricsRegistry::Global() remains the default
  /// instance for engine-less contexts.
  MetricsRegistry& metrics_registry() { return metrics_; }

  /// Engine-level memory tracker: the root of the engine -> query ->
  /// operator hierarchy. Its budget mirrors cluster().memory
  /// .engine_budget_bytes (applied by RearmAdmission, 0 == unlimited).
  MemoryTracker& memory() { return memory_; }

  /// The concurrent-query gate, built lazily from cluster().admission /
  /// cluster().memory on first use. Typical flow:
  ///   QueryContext ctx;
  ///   DYNOPT_ASSIGN_OR_RETURN(auto ticket, engine.admission().Admit(&ctx));
  ///   ... run the query with MakeExecutor(&ctx) ...
  ///   // ticket destructor releases the slot + memory reservation.
  AdmissionController& admission() {
    if (admission_ == nullptr) RearmAdmission();
    return *admission_;
  }

  /// (Re)builds the admission controller and the engine memory budget from
  /// the current cluster().admission / cluster().memory. Call after editing
  /// mutable_cluster() and before admitting queries; must not race with
  /// in-flight admissions.
  void RearmAdmission() {
    memory_.set_budget(cluster_.memory.engine_budget_bytes);
    admission_ = std::make_unique<AdmissionController>(
        cluster_.admission, &memory_, cluster_.memory.query_reservation_bytes,
        &metrics_);
  }

  /// Engine-wide retry-budget token bucket, built lazily from
  /// cluster().retry_budget. Disabled at defaults (unlimited retries, the
  /// pre-budget behavior); every executor this engine makes draws from it.
  RetryBudget& retry_budget() {
    if (retry_budget_ == nullptr) RearmRetryBudget();
    return *retry_budget_;
  }

  /// (Re)builds the retry budget from the current cluster().retry_budget
  /// (refilled to capacity). Call after editing mutable_cluster(); must not
  /// race with in-flight executors.
  void RearmRetryBudget() {
    retry_budget_ = std::make_unique<RetryBudget>(cluster_.retry_budget);
  }

  /// Query watchdog, built lazily from cluster().watchdog. Disabled at
  /// defaults (no monitor thread). Register running queries with
  /// WatchdogRegistration(&engine.watchdog(), &ctx).
  QueryWatchdog& watchdog() {
    if (watchdog_ == nullptr) RearmWatchdog();
    return *watchdog_;
  }

  /// (Re)builds the watchdog from the current cluster().watchdog (stopping
  /// any previous monitor thread). All registrations must be gone first.
  void RearmWatchdog() {
    watchdog_ = std::make_unique<QueryWatchdog>(cluster_.watchdog, &metrics_);
  }

  /// (Re)builds the fault injector from `cluster().fault`, resetting its
  /// stage counter, failure budget and aborted-work ledger. Call after
  /// editing mutable_cluster().fault and before the runs that should see
  /// the faults. The injector outlives individual queries on purpose:
  /// stage ids advance monotonically across restart/resume attempts, which
  /// is what lets a retried query get *past* the stage that killed it.
  void ArmFaultInjection() {
    faults_ = std::make_unique<FaultInjector>(cluster_.fault);
  }

  /// Drops the injector; subsequent executors run fault-free (and meter
  /// byte-for-byte like a build without injection).
  void DisarmFaultInjection() { faults_.reset(); }

  /// Engine-scoped slot for optimizer-layer state that must outlive
  /// individual queries but cannot live in this class directly because the
  /// exec layer does not link against opt (opt links exec). Today it holds
  /// the cross-query error-stats store (see EngineErrorStats in
  /// opt/error_stats.h, which owns the slot's type and rebuild-on-config-
  /// change logic). Guard access with an external lock when queries run
  /// concurrently — EngineErrorStats does.
  std::shared_ptr<void>& opt_state() { return opt_state_; }

  /// Like opt_state(), but owned by the introspection plane: holds the
  /// query profile archive + active-query registry (see EngineIntrospection
  /// in opt/profile_archive.h, which owns the slot's type and its locking).
  /// A separate slot because the error store and the archive have
  /// independent lifetimes and rebuild triggers.
  std::shared_ptr<void>& introspection_state() { return introspection_state_; }

  /// Armed injector, or nullptr. Recovery policies read its aborted-work
  /// ledger to price restarts.
  FaultInjector* fault_injector() { return faults_.get(); }

  /// Collects load-time ("upfront") statistics on `columns` of `table` and
  /// registers them with the StatsManager — the simulator's analogue of the
  /// statistics AsterixDB gathers during LSM ingestion. Column names are
  /// unqualified here; the stats are stored under unqualified names too and
  /// qualified by the estimator per query alias.
  Status CollectBaseStats(const std::string& table,
                          const std::vector<std::string>& columns,
                          const StatsOptions& options = StatsOptions());

 private:
  ClusterConfig cluster_;
  Catalog catalog_;
  StatsManager stats_;
  SketchManager sketches_;
  UdfRegistry udfs_;
  ThreadPool pool_;
  std::unique_ptr<FaultInjector> faults_;
  MemoryTracker memory_{0, nullptr, "engine"};
  std::unique_ptr<AdmissionController> admission_;
  std::unique_ptr<RetryBudget> retry_budget_;
  std::unique_ptr<QueryWatchdog> watchdog_;
  MetricsRegistry metrics_;
  std::shared_ptr<void> opt_state_;
  std::shared_ptr<void> introspection_state_;
};

}  // namespace dynopt

#endif  // DYNOPT_EXEC_ENGINE_H_
