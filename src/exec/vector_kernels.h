#ifndef DYNOPT_EXEC_VECTOR_KERNELS_H_
#define DYNOPT_EXEC_VECTOR_KERNELS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/batch.h"
#include "plan/expr.h"

namespace dynopt {

class UdfRegistry;

/// Vectorized kernels over ColumnBatch: per-column loops that replace the
/// row engine's per-row variant dispatch with tight typed loops (the
/// DYNOPT_NATIVE_SIMD build compiles this translation unit with
/// -march=native). Every kernel is bit-identical to its row counterpart in
/// exec/row_kernels.h — same hash math, same byte sizes, same comparison
/// semantics (including the all-numeric-comparisons-coerce-to-double rule
/// of Value::Compare) — which is what lets the columnar engine keep the
/// deterministic counters and simulated seconds byte-for-byte equal to the
/// row path.

/// Combined key hash of every row of `batch` into `out`, bit-identical to
/// HashRowKeyInline(row, keys): seeded, then HashCombine of each key
/// column's value hash, column-at-a-time. `key_null[i]` is set to 1 when
/// any key of row i is NULL (left untouched otherwise — callers zero it).
/// Both arrays must hold batch.num_rows elements.
void HashKeyColumns(const ColumnBatch& batch, const int* keys,
                    size_t num_keys, uint64_t* out, uint8_t* key_null);

/// Only the NULL-key mask of HashKeyColumns (probe sides that already have
/// hashes from the shuffle still need the mask).
void AnyKeyNull(const ColumnBatch& batch, const int* keys, size_t num_keys,
                uint8_t* key_null);

/// Value equality between row i of `a` and row j of `b` under Value
/// semantics (operator==, i.e. Compare() == 0: numeric pairs compare as
/// doubles, strings bytewise, NULL equals only NULL).
bool ColumnValueEqual(const ColumnVector& a, size_t i, const ColumnVector& b,
                      size_t j);

/// Position-wise key equality (the columnar JoinKeysEqual).
inline bool JoinKeysEqualColumnar(const ColumnBatch& build, size_t i,
                                  const ColumnBatch& probe, size_t j,
                                  const int* build_keys, const int* probe_keys,
                                  size_t num_keys) {
  for (size_t k = 0; k < num_keys; ++k) {
    if (!ColumnValueEqual(build.columns[static_cast<size_t>(build_keys[k])], i,
                          probe.columns[static_cast<size_t>(probe_keys[k])],
                          j)) {
      return false;
    }
  }
  return true;
}

/// Per-row byte sizes of a projection of `batch` to the `num_keep` column
/// slots in `keep`: 8-byte row header + each kept value's cost-model size,
/// accumulated column-at-a-time. `out` must hold batch.num_rows elements.
void ProjectedRowSizes(const ColumnBatch& batch, const int* keep,
                       size_t num_keep, uint64_t* out);

/// Gathers the `n` rows selected by `sel` out of `src` into a fresh
/// compacted batch (typed per-column gather; string columns share the
/// source dictionary; row_sizes gathered alongside). The selection-vector
/// half of the filter kernel.
ColumnBatch GatherBatch(const ColumnBatch& src, const uint32_t* sel,
                        size_t n);

/// Concatenates all batches of one partition into a single batch (used by
/// the join build side so hash-table entries index a flat row space).
/// String dictionaries are merged via cached-hash interning.
ColumnBatch ConcatBatches(const std::vector<ColumnBatch>& batches);

/// Accumulates gathered rows into fixed-capacity output batches
/// (max_batch_size rows each), adapting destination column kinds to the
/// sources (mixed-kind sources promote a column to kValues; string columns
/// merge dictionaries). Shuffle scatter and join emission funnel through
/// this sink.
class BatchSink {
 public:
  BatchSink(size_t num_columns, size_t max_batch_size,
            std::vector<ColumnBatch>* out)
      : num_columns_(num_columns), capacity_(max_batch_size), out_(out) {}

  /// Appends rows src[sel[0..n)] — all columns plus their row_sizes.
  void AppendGather(const ColumnBatch& src, const uint32_t* sel, size_t n);

  /// Appends `n` joined rows: build columns gathered by `bsel` from
  /// `build`, probe columns gathered by `psel` from `probe`, with the
  /// caller-computed joined row sizes (build + probe - one 8-byte header).
  void AppendJoinGather(const ColumnBatch& build, const uint32_t* bsel,
                        const ColumnBatch& probe, const uint32_t* psel,
                        const uint64_t* sizes, size_t n);

  /// Emits the final partial batch (no-op when empty). Call exactly once.
  void Flush();

  uint64_t rows_appended() const { return rows_appended_; }

 private:
  void EnsureOpen();
  void CloseIfFull();

  size_t num_columns_;
  size_t capacity_;
  std::vector<ColumnBatch>* out_;
  ColumnBatch cur_;
  bool open_ = false;
  uint64_t rows_appended_ = 0;
};

/// Appends src[sel[0..n)] to `dst`, adapting dst's kind (first append
/// adopts the source layout and shares its dictionary; later kind
/// mismatches promote dst to kValues; dictionary mismatches intern via the
/// source's cached hashes). Exposed for the sink and for tests.
void AppendGatherColumn(ColumnVector* dst, const ColumnVector& src,
                        const uint32_t* sel, size_t n);

/// A filter predicate compiled against a batch schema: evaluates
/// column-at-a-time into a tri-state mask (false / true / NULL) with the
/// same semantics as the row engine's BoundExpr tree — leaf comparisons
/// propagate NULL, AND/OR/NOT coerce their children through EvalBool
/// (NULL -> false), and the top-level filter applies the same coercion.
/// Compilation resolves column names to slots once (never inside the batch
/// loop) and fails like Bind() on unresolved columns / params / UDFs.
class VecPredicate {
 public:
  VecPredicate() = default;
  VecPredicate(VecPredicate&&) = default;
  VecPredicate& operator=(VecPredicate&&) = default;

  static Result<VecPredicate> Compile(
      const ExprPtr& expr, const std::vector<std::string>& columns,
      const std::map<std::string, Value>* params, const UdfRegistry* udfs);

  /// Fills `keep` (resized to batch.num_rows) with 1 for rows passing the
  /// predicate under EvalBool coercion, 0 otherwise.
  void EvalBools(const ColumnBatch& batch, std::vector<uint8_t>* keep) const;

  struct Node;

 private:
  explicit VecPredicate(std::unique_ptr<Node> root);

  std::shared_ptr<Node> root_;
};

}  // namespace dynopt

#endif  // DYNOPT_EXEC_VECTOR_KERNELS_H_
