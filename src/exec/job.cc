#include "exec/job.h"

#include <sstream>

namespace dynopt {

const char* JoinMethodName(JoinMethod method) {
  switch (method) {
    case JoinMethod::kHashShuffle:
      return "HASH";
    case JoinMethod::kBroadcast:
      return "BROADCAST";
    case JoinMethod::kIndexNestedLoop:
      return "INDEX_NL";
  }
  return "?";
}

std::unique_ptr<PlanNode> PlanNode::Scan(std::string table, std::string alias,
                                         bool is_intermediate,
                                         std::vector<std::string> columns) {
  auto node = std::make_unique<PlanNode>();
  node->kind = Kind::kScan;
  node->table = std::move(table);
  node->alias = std::move(alias);
  node->is_intermediate = is_intermediate;
  node->scan_columns = std::move(columns);
  return node;
}

std::unique_ptr<PlanNode> PlanNode::Filter(std::unique_ptr<PlanNode> input,
                                           ExprPtr predicate) {
  auto node = std::make_unique<PlanNode>();
  node->kind = Kind::kFilter;
  node->predicate = std::move(predicate);
  node->children.push_back(std::move(input));
  return node;
}

std::unique_ptr<PlanNode> PlanNode::Project(std::unique_ptr<PlanNode> input,
                                            std::vector<std::string> columns) {
  auto node = std::make_unique<PlanNode>();
  node->kind = Kind::kProject;
  node->project_columns = std::move(columns);
  node->children.push_back(std::move(input));
  return node;
}

std::unique_ptr<PlanNode> PlanNode::Join(
    JoinMethod method, std::unique_ptr<PlanNode> build,
    std::unique_ptr<PlanNode> probe,
    std::vector<std::pair<std::string, std::string>> keys) {
  auto node = std::make_unique<PlanNode>();
  node->kind = Kind::kJoin;
  node->method = method;
  node->keys = std::move(keys);
  node->children.push_back(std::move(build));
  node->children.push_back(std::move(probe));
  return node;
}

std::string PlanNode::ToString(int indent) const {
  std::ostringstream os;
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  switch (kind) {
    case Kind::kScan:
      os << pad << (is_intermediate ? "Reader(" : "Scan(") << table;
      if (!alias.empty() && alias != table) os << " AS " << alias;
      os << ")";
      break;
    case Kind::kFilter:
      os << pad << "Filter(" << predicate->ToString() << ")";
      break;
    case Kind::kProject: {
      os << pad << "Project(";
      for (size_t i = 0; i < project_columns.size(); ++i) {
        if (i > 0) os << ", ";
        os << project_columns[i];
      }
      os << ")";
      break;
    }
    case Kind::kJoin: {
      os << pad << "Join[" << JoinMethodName(method) << "](";
      for (size_t i = 0; i < keys.size(); ++i) {
        if (i > 0) os << " AND ";
        os << keys[i].first << " = " << keys[i].second;
      }
      os << ")";
      break;
    }
  }
  for (const auto& child : children) {
    os << "\n" << child->ToString(indent + 1);
  }
  return os.str();
}

}  // namespace dynopt
