#ifndef DYNOPT_EXEC_EXECUTOR_H_
#define DYNOPT_EXEC_EXECUTOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics_registry.h"
#include "common/query_context.h"
#include "common/retry_budget.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "exec/batch.h"
#include "exec/cluster.h"
#include "exec/dataset.h"
#include "exec/fault_injector.h"
#include "exec/job.h"
#include "exec/join_hash_table.h"
#include "exec/metrics.h"
#include "plan/udf.h"
#include "stats/sketch.h"
#include "stats/table_stats.h"
#include "storage/catalog.h"

namespace dynopt {

/// Output of running one job.
struct JobResult {
  Dataset data;
  ExecMetrics metrics;
};

/// Output of a Sink (materialization at a re-optimization point).
struct SinkResult {
  std::string table_name;  ///< Generated temp-table name in the catalog.
  TableStats stats;        ///< Online statistics (empty when disabled).
};

/// A repartitioned dataset plus the key hash of every row, computed once
/// during routing. hashes[p][i] == HashRowKey(data.partitions[p][i], keys)
/// for the key set the shuffle ran on; the local hash join consumes them so
/// build and probe never rehash.
struct ShuffleResult {
  Dataset data;
  std::vector<std::vector<uint64_t>> hashes;
};

/// Columnar analogue of ShuffleResult: hashes[p][i] is the key hash of the
/// i-th row of partition p in batch-concatenation order (the flat row index
/// space the columnar join builds its table over).
struct ColumnarShuffleResult {
  ColumnarDataset data;
  std::vector<std::vector<uint64_t>> hashes;
};

/// Executes physical job plans against the simulated cluster: operators run
/// partition-parallel on a thread pool, and every unit of work (bytes
/// scanned/shuffled/broadcast/materialized, tuples, index lookups) is
/// metered and converted to simulated seconds under the ClusterConfig cost
/// model. Per pipeline stage, simulated time is max-over-nodes.
///
/// The data-movement kernels (Repartition / LocalHashJoin) are public:
/// tests compare them against the sequential reference implementation in
/// exec/reference_kernels.h, and bench/bench_kernels.cc times them. Their
/// simulated-seconds metering is byte-for-byte identical to the reference.
/// When a FaultInjector is armed (Engine::ArmFaultInjection), every kernel
/// additionally draws deterministic task failures, stragglers and temp-file
/// corruption; re-executed work and unhidden slowdown are charged to
/// ExecMetrics::recovery_seconds (included in simulated_seconds) and
/// injected whole-query failures surface as retryable kTransient errors.
/// With no injector (or a disabled one) the metering is byte-for-byte
/// identical to a fault-free build.
class JobExecutor {
 public:
  /// `ctx` attaches the per-query context (cancellation token + deadline +
  /// memory tracker). Null (the default) runs ungoverned: no cancellation
  /// checks fire and memory is not accounted, exactly the pre-governance
  /// engine. The context must outlive the executor's jobs.
  /// `sketches` attaches the engine's join-key sketch registry; null (the
  /// default) disables sketch collection and predicate transfer regardless
  /// of the cluster's sketch knobs.
  /// `metrics_registry` is where counters/gauges/histograms land; null
  /// (the default) falls back to MetricsRegistry::Global(). Engines pass
  /// their own registry so metrics stay attributable per engine.
  JobExecutor(Catalog* catalog, StatsManager* stats, const UdfRegistry* udfs,
              const ClusterConfig& cluster, ThreadPool* pool,
              FaultInjector* faults = nullptr, QueryContext* ctx = nullptr,
              RetryBudget* retry_budget = nullptr,
              SketchManager* sketches = nullptr,
              MetricsRegistry* metrics_registry = nullptr);

  void set_context(QueryContext* ctx) { ctx_ = ctx; }
  QueryContext* context() const { return ctx_; }

  /// Attaches the engine-wide retry budget (see common/retry_budget.h) —
  /// alternative to the constructor argument. Null leaves retries governed
  /// only by the per-task BackoffPolicy, the pre-budget behavior. The
  /// budget is shared across executors and must outlive this executor's
  /// jobs.
  void set_retry_budget(RetryBudget* budget) { retry_budget_ = budget; }

  /// Runs one job tree and returns its output dataset plus metrics.
  Result<JobResult> Execute(const PlanNode& root,
                            const std::map<std::string, Value>& params);

  /// The Sink operator: writes `data` to a fresh temp table in the catalog,
  /// optionally collecting online statistics on `stats_columns` (qualified
  /// names). Charges materialization I/O and the per-reopt fixed cost to
  /// `metrics->reopt_seconds` and stats collection to
  /// `metrics->stats_seconds` (both included in simulated_seconds).
  Result<SinkResult> Materialize(Dataset&& data, const std::string& prefix,
                                 const std::vector<std::string>& stats_columns,
                                 bool collect_stats, ExecMetrics* metrics,
                                 const std::vector<std::string>*
                                     sketch_columns = nullptr);

  /// Hash-repartitions `input` on `key_indices` into the cluster's node
  /// count, metering network traffic. Two-phase parallel exchange: phase 1
  /// routes each source partition on the thread pool (computing each row's
  /// key hash exactly once) into thread-local per-destination buffers;
  /// phase 2 merges the buffers per destination, in source-partition order,
  /// so the output row order matches a sequential shuffle. Fails only under
  /// fault injection (retryable kTransient).
  Result<ShuffleResult> Repartition(Dataset&& input,
                                    const std::vector<int>& key_indices,
                                    ExecMetrics* metrics);

  /// Local hash join between aligned partitions (equal-length partition
  /// vectors); emits build-row ++ probe-row. When `build_hashes` /
  /// `probe_hashes` are non-null (per-partition key hashes from
  /// Repartition) the join reuses them instead of rehashing. Fails only
  /// under fault injection (retryable kTransient).
  Result<Dataset> LocalHashJoin(
      const Dataset& build, const Dataset& probe,
      const std::vector<int>& build_keys, const std::vector<int>& probe_keys,
      ExecMetrics* metrics,
      const std::vector<std::vector<uint64_t>>* build_hashes = nullptr,
      const std::vector<std::vector<uint64_t>>* probe_hashes = nullptr);

  /// Vectorized shuffle: same routing function, metering, fault sites and
  /// output row order as Repartition, but batch-at-a-time — phase 1 hashes
  /// key columns with HashKeyColumns, phase 2 scatters per *destination*
  /// (each destination gathers its rows from every source batch in order,
  /// so writers never share state). Public for parity tests and benchmarks.
  Result<ColumnarShuffleResult> RepartitionColumnar(
      ColumnarDataset&& input, const std::vector<int>& key_indices,
      ExecMetrics* metrics);

  /// Vectorized local hash join (in-memory path only — spill-governed joins
  /// take the row engine; callers must guarantee a zero join memory
  /// budget). Build batches are concatenated per partition so the flat
  /// table of JoinHashTable::BuildFromHashes indexes them directly; probing
  /// walks probe batches emitting gathered build++probe columns. Metering,
  /// fault sites and emission order are byte-for-byte identical to
  /// LocalHashJoin.
  Result<ColumnarDataset> LocalHashJoinColumnar(
      const ColumnarDataset& build, const ColumnarDataset& probe,
      const std::vector<int>& build_keys, const std::vector<int>& probe_keys,
      ExecMetrics* metrics,
      const std::vector<std::vector<uint64_t>>* build_hashes = nullptr,
      const std::vector<std::vector<uint64_t>>* probe_hashes = nullptr);

  const ClusterConfig& cluster() const { return cluster_; }

 private:
  Result<Dataset> ExecNode(const PlanNode& node,
                           const std::map<std::string, Value>& params,
                           ExecMetrics* metrics);
  Result<Dataset> ExecScan(const PlanNode& node, ExecMetrics* metrics);
  Result<Dataset> ExecFilter(const PlanNode& node,
                             const std::map<std::string, Value>& params,
                             ExecMetrics* metrics);
  Result<Dataset> ExecProject(const PlanNode& node,
                              const std::map<std::string, Value>& params,
                              ExecMetrics* metrics);
  Result<Dataset> ExecJoin(const PlanNode& node,
                           const std::map<std::string, Value>& params,
                           ExecMetrics* metrics);
  /// Join body shared by the row path and the columnar spill fallback: the
  /// children are already executed; shuffles/broadcasts and joins `build`
  /// against `probe` per node.method.
  Result<Dataset> ExecJoinWithInputs(const PlanNode& node, Dataset&& build,
                                     Dataset&& probe, ExecMetrics* metrics);
  Result<Dataset> ExecIndexNestedLoopJoin(
      const PlanNode& node, const std::map<std::string, Value>& params,
      ExecMetrics* metrics);

  /// Columnar operator tree (cluster_.exec.use_columnar). Each operator is
  /// metering-identical to its row twin; joins that cannot run columnar
  /// (index nested loop; spill-governed hash joins) fall back to the row
  /// operators through the FromDataset/ToDataset conversion boundary.
  Result<ColumnarDataset> ExecNodeColumnar(
      const PlanNode& node, const std::map<std::string, Value>& params,
      ExecMetrics* metrics);
  Result<ColumnarDataset> ExecScanColumnar(const PlanNode& node,
                                           ExecMetrics* metrics);
  Result<ColumnarDataset> ExecFilterColumnar(
      const PlanNode& node, const std::map<std::string, Value>& params,
      ExecMetrics* metrics);
  Result<ColumnarDataset> ExecProjectColumnar(
      const PlanNode& node, const std::map<std::string, Value>& params,
      ExecMetrics* metrics);
  Result<ColumnarDataset> ExecJoinColumnar(
      const PlanNode& node, const std::map<std::string, Value>& params,
      ExecMetrics* metrics);

  /// True when an enabled fault injector is attached.
  bool FaultsArmed() const { return faults_ != nullptr && faults_->enabled(); }

  /// True when predicate transfer applies: the knob is on and a sketch
  /// registry is attached.
  bool PredicateTransferEnabled() const {
    return sketches_ != nullptr && cluster_.sketch.enable_predicate_transfer;
  }

  /// Sideways pushdown for a shuffle join (row engine): builds a Bloom
  /// filter over the build side's non-null key hashes, charges its transfer
  /// to every node as network cost, then drops probe rows whose key cannot
  /// match (null key or filter miss) before they enter Repartition. Pruned
  /// rows/bytes are recorded in the pt_* counters; Bloom filters have no
  /// false negatives, so results are identical with the knob off.
  void TransferPredicateRows(const Dataset& build,
                             const std::vector<int>& build_keys,
                             Dataset* probe,
                             const std::vector<int>& probe_keys,
                             ExecMetrics* metrics);

  /// Columnar twin of TransferPredicateRows: hashes key columns with
  /// HashKeyColumns (bit-identical to the row hash) and gathers surviving
  /// rows through a selection vector.
  void TransferPredicateColumnar(const ColumnarDataset& build,
                                 const std::vector<int>& build_keys,
                                 ColumnarDataset* probe,
                                 const std::vector<int>& probe_keys,
                                 ExecMetrics* metrics);

  /// Cooperative cancellation check, run at every kernel/stage boundary.
  /// OK when no context is attached.
  Status CheckAlive() {
    return ctx_ != nullptr ? ctx_->CheckAlive() : Status::OK();
  }

  /// Per-ParallelFor-body accumulator of one grace-join spill partition.
  /// Merged serially after the join's probe loop (max-over-nodes for the
  /// simulated seconds, sums for the byte/partition counters).
  struct SpillStats {
    uint64_t spilled_bytes = 0;     ///< Bytes written to spill files.
    uint64_t spill_partitions = 0;  ///< Sub-partition pairs spilled.
    uint64_t repartition_rows = 0;  ///< Rows passed through spill splits.
    double spill_seconds = 0;       ///< Simulated disk+CPU cost of spilling.
  };

  /// Grace hash join of one overflowing partition: recursively splits build
  /// and probe by a re-salted key hash into checksummed spill files under
  /// spill_directory, then joins each sub-partition pair (in memory once it
  /// fits the budget, or unconditionally at max_spill_recursion — a single
  /// query always completes). Emits into `dest`/`dest_sizes` (sizes skipped
  /// when null) and accounts everything in `stats`. Spill files are removed
  /// as consumed and on error.
  Status GraceJoinPartition(const std::vector<Row>& build_rows,
                            const std::vector<Row>& probe_rows,
                            const std::vector<int>& build_keys,
                            const std::vector<int>& probe_keys, int depth,
                            uint64_t salt, size_t part, uint64_t* work,
                            std::vector<Row>* dest,
                            std::vector<uint64_t>* dest_sizes,
                            SpillStats* stats);

  /// In-memory leaf join used by GraceJoinPartition (single partition, own
  /// throwaway hash table; NULL build/probe keys never match).
  void LeafHashJoin(const std::vector<Row>& build_rows,
                    const std::vector<Row>& probe_rows,
                    const std::vector<int>& build_keys,
                    const std::vector<int>& probe_keys, uint64_t* work,
                    std::vector<Row>* dest, std::vector<uint64_t>* dest_sizes);

  /// Overlays injected faults on one completed kernel stage whose clean
  /// per-node task times are `per_node_seconds`. Draws a fresh stage id
  /// (unless the caller pre-drew one), then simulates task retries with
  /// capped exponential backoff, straggler slowdown and speculative backup
  /// execution; the resulting extra critical-path time (max completion
  /// minus max clean time) is charged to `metrics->simulated_seconds` and
  /// `metrics->recovery_seconds`. Returns retryable kTransient when the
  /// whole query is scheduled to fail at this stage or a task exhausts its
  /// retry budget (node loss). No-op without an armed injector; call sites
  /// guard with FaultsArmed() so the fault-free path does no extra work.
  Status ApplyFaults(FaultSite site,
                     const std::vector<double>& per_node_seconds,
                     ExecMetrics* metrics, int stage = -1);

  /// Scratch recycling: the shuffle and join kernels allocate
  /// multi-hundred-KB header vectors (destination row vectors, hash
  /// vectors, join tables) on every call, which glibc serves straight from
  /// mmap — so every operator pays fresh first-touch page faults for memory
  /// an earlier operator just released. These helpers keep emptied vectors
  /// (capacity intact, contents cleared) on a small bounded pool instead.
  /// The mutex only guards pool membership; pooled objects are always taken
  /// and returned from serial sections, never inside ParallelFor bodies.
  std::vector<Row> TakeRowVec();
  void RecycleRowVec(std::vector<Row>&& v);
  std::vector<uint64_t> TakeHashVec();
  void RecycleHashVec(std::vector<uint64_t>&& v);
  void RecycleShuffleResult(ShuffleResult&& parts);

  Catalog* catalog_;
  StatsManager* stats_;
  const UdfRegistry* udfs_;
  ClusterConfig cluster_;
  ThreadPool* pool_;
  FaultInjector* faults_;  ///< Engine-owned; may be null (no injection).
  QueryContext* ctx_ = nullptr;  ///< Caller-owned; may be null (ungoverned).
  RetryBudget* retry_budget_ = nullptr;  ///< Engine-owned; may be null.
  SketchManager* sketches_ = nullptr;  ///< Engine-owned; may be null (no PT).
  MetricsRegistry* registry_;  ///< Engine-owned or Global(); never null.

  /// Process-wide serial for spill-file names: two executors (or two joins
  /// of one query) can spill concurrently into the same directory without
  /// colliding.
  static inline std::atomic<uint64_t> spill_serial_{0};

  std::mutex scratch_mutex_;
  std::vector<std::vector<Row>> row_vec_pool_;
  std::vector<std::vector<uint64_t>> hash_vec_pool_;

  /// Join build tables, reused across LocalHashJoin calls so the bucket /
  /// chain / hash vectors keep their capacity instead of being reallocated
  /// for every join of a pipeline. Only touched from LocalHashJoin, which
  /// runs one join at a time (each ParallelFor body writes a distinct
  /// element).
  std::vector<JoinHashTable> join_tables_;
};

}  // namespace dynopt

#endif  // DYNOPT_EXEC_EXECUTOR_H_
