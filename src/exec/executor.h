#ifndef DYNOPT_EXEC_EXECUTOR_H_
#define DYNOPT_EXEC_EXECUTOR_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "exec/cluster.h"
#include "exec/dataset.h"
#include "exec/job.h"
#include "exec/metrics.h"
#include "plan/udf.h"
#include "stats/table_stats.h"
#include "storage/catalog.h"

namespace dynopt {

/// Output of running one job.
struct JobResult {
  Dataset data;
  ExecMetrics metrics;
};

/// Output of a Sink (materialization at a re-optimization point).
struct SinkResult {
  std::string table_name;  ///< Generated temp-table name in the catalog.
  TableStats stats;        ///< Online statistics (empty when disabled).
};

/// Executes physical job plans against the simulated cluster: operators run
/// partition-parallel on a thread pool, and every unit of work (bytes
/// scanned/shuffled/broadcast/materialized, tuples, index lookups) is
/// metered and converted to simulated seconds under the ClusterConfig cost
/// model. Per pipeline stage, simulated time is max-over-nodes.
class JobExecutor {
 public:
  JobExecutor(Catalog* catalog, StatsManager* stats, const UdfRegistry* udfs,
              const ClusterConfig& cluster, ThreadPool* pool);

  /// Runs one job tree and returns its output dataset plus metrics.
  Result<JobResult> Execute(const PlanNode& root,
                            const std::map<std::string, Value>& params);

  /// The Sink operator: writes `data` to a fresh temp table in the catalog,
  /// optionally collecting online statistics on `stats_columns` (qualified
  /// names). Charges materialization I/O and the per-reopt fixed cost to
  /// `metrics->reopt_seconds` and stats collection to
  /// `metrics->stats_seconds` (both included in simulated_seconds).
  Result<SinkResult> Materialize(Dataset&& data, const std::string& prefix,
                                 const std::vector<std::string>& stats_columns,
                                 bool collect_stats, ExecMetrics* metrics);

  const ClusterConfig& cluster() const { return cluster_; }

 private:
  Result<Dataset> ExecNode(const PlanNode& node,
                           const std::map<std::string, Value>& params,
                           ExecMetrics* metrics);
  Result<Dataset> ExecScan(const PlanNode& node, ExecMetrics* metrics);
  Result<Dataset> ExecFilter(const PlanNode& node,
                             const std::map<std::string, Value>& params,
                             ExecMetrics* metrics);
  Result<Dataset> ExecProject(const PlanNode& node,
                              const std::map<std::string, Value>& params,
                              ExecMetrics* metrics);
  Result<Dataset> ExecJoin(const PlanNode& node,
                           const std::map<std::string, Value>& params,
                           ExecMetrics* metrics);
  Result<Dataset> ExecIndexNestedLoopJoin(
      const PlanNode& node, const std::map<std::string, Value>& params,
      ExecMetrics* metrics);

  /// Hash-repartitions `input` on `key_indices`, metering network traffic.
  Dataset Repartition(Dataset&& input, const std::vector<int>& key_indices,
                      ExecMetrics* metrics);

  /// Local hash join between aligned partitions (equal-length partition
  /// vectors); emits build-row ++ probe-row.
  Dataset LocalHashJoin(const Dataset& build, const Dataset& probe,
                        const std::vector<int>& build_keys,
                        const std::vector<int>& probe_keys,
                        ExecMetrics* metrics);

  Catalog* catalog_;
  StatsManager* stats_;
  const UdfRegistry* udfs_;
  ClusterConfig cluster_;
  ThreadPool* pool_;
};

}  // namespace dynopt

#endif  // DYNOPT_EXEC_EXECUTOR_H_
