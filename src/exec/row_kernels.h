#ifndef DYNOPT_EXEC_ROW_KERNELS_H_
#define DYNOPT_EXEC_ROW_KERNELS_H_

#include <cmath>
#include <cstring>
#include <vector>

#include "common/hash.h"
#include "common/value.h"

namespace dynopt {

/// Header-inline equivalents of Value::Hash / Value::SizeBytes / HashRowKey
/// / RowSizeBytes for the executor's hot kernel loops (shuffle routing and
/// hash-join build/probe). The out-of-line versions in common/value.cc cost
/// a call per value, which dominates when the loop body is just
/// hash-and-route; inlining lets the compiler fold the variant dispatch into
/// the loop. They must stay bit-identical to the out-of-line versions —
/// exchange_test cross-checks both the scalar cases and every hash/byte
/// count a shuffle produces.

inline uint64_t ValueHashInline(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return 0x9ae16a3b2f90404fULL;
    case ValueType::kBool:
      return Mix64(v.AsBool() ? 1 : 0);
    case ValueType::kInt64:
      return Mix64(static_cast<uint64_t>(v.AsInt64()));
    case ValueType::kDouble: {
      double d = v.AsDouble();
      // Hash integral doubles identically to the equal int64 so that
      // cross-type join keys behave consistently with Compare().
      if (d == static_cast<double>(static_cast<int64_t>(d)) &&
          std::abs(d) < 9.0e18) {
        return Mix64(static_cast<uint64_t>(static_cast<int64_t>(d)));
      }
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      std::memcpy(&bits, &d, sizeof(d));
      return Mix64(bits);
    }
    case ValueType::kString:
      return HashString(v.AsString());
  }
  return 0;
}

inline size_t ValueSizeBytesInline(const Value& v) {
  // Table-indexed by type tag instead of a switch: the shuffle meters every
  // moved row, so this runs once per value and the jump table (two switches
  // once Value::type()'s own dispatch is counted) shows up in the routing
  // loop. Sizes match Value::SizeBytes: null/bool=1, int64/double=8,
  // string=16+length.
  static constexpr size_t kSizeByType[5] = {1, 1, 8, 8, 16};
  const auto t = static_cast<size_t>(v.type());
  size_t size = kSizeByType[t];
  if (t == static_cast<size_t>(ValueType::kString)) {
    size += v.AsStringUnchecked().size();
  }
  return size;
}

inline uint64_t HashRowKeyInline(const Row& row, const int* key_indices,
                                 size_t num_keys) {
  uint64_t h = 0x2545f4914f6cdd1dULL;
  for (size_t k = 0; k < num_keys; ++k) {
    h = HashCombine(h,
                    ValueHashInline(row[static_cast<size_t>(key_indices[k])]));
  }
  return h;
}

inline uint64_t HashRowKeyInline(const Row& row,
                                 const std::vector<int>& key_indices) {
  return HashRowKeyInline(row, key_indices.data(), key_indices.size());
}

inline size_t RowSizeBytesInline(const Row& row) {
  size_t total = 8;  // Row header overhead.
  for (const Value& v : row) total += ValueSizeBytesInline(v);
  return total;
}

/// Exact h % n for a fixed n via a precomputed reciprocal: one 128-bit
/// multiply plus a bounded correction instead of a ~20-cycle hardware
/// divide per row. recip = floor((2^64-1)/n) <= (2^64-1)/n, so the
/// estimated quotient q = floor(h*recip / 2^64) never exceeds floor(h/n)
/// and undershoots by at most 2; the correction loop therefore runs at most
/// twice and the result equals h % n for every h (exchange_test sweeps this
/// against the plain operator).
class FastMod {
 public:
  explicit FastMod(uint64_t n)
      : n_(n), recip_(n > 1 ? ~uint64_t{0} / n : 0) {}

  uint64_t operator()(uint64_t h) const {
    if (n_ <= 1) return 0;
    uint64_t q = static_cast<uint64_t>(
        (static_cast<unsigned __int128>(h) * recip_) >> 64);
    uint64_t r = h - q * n_;
    while (r >= n_) r -= n_;
    return r;
  }

 private:
  uint64_t n_;
  uint64_t recip_;
};

}  // namespace dynopt

#endif  // DYNOPT_EXEC_ROW_KERNELS_H_
