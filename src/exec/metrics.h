#ifndef DYNOPT_EXEC_METRICS_H_
#define DYNOPT_EXEC_METRICS_H_

#include <cstdint>
#include <string>

namespace dynopt {

/// Work metered while executing jobs, plus the simulated wall-clock those
/// units translate to under the cluster's cost model. The three *_seconds
/// components decompose total simulated time the way Figure 6 of the paper
/// does: plain execution vs. re-optimization I/O (materializing and
/// re-reading intermediates) vs. online statistics collection.
struct ExecMetrics {
  uint64_t rows_out = 0;
  uint64_t tuples_processed = 0;
  uint64_t bytes_scanned = 0;
  uint64_t bytes_shuffled = 0;
  uint64_t bytes_broadcast = 0;
  uint64_t bytes_materialized = 0;
  uint64_t bytes_intermediate_read = 0;
  uint64_t index_lookups = 0;
  int num_jobs = 0;
  int num_reopt_points = 0;

  /// Total simulated execution time (includes the two components below).
  double simulated_seconds = 0;
  /// Portion attributable to re-optimization (sink/reader I/O + fixed
  /// per-reopt coordination cost).
  double reopt_seconds = 0;
  /// Portion attributable to online statistics collection.
  double stats_seconds = 0;

  // --- Fault injection / recovery (zero unless an injector is armed) -----

  /// Extra critical-path time paid to injected faults: task re-executions
  /// plus their backoff delays, straggler slowdown not hidden by
  /// speculation, and re-materialization of corrupted temp files. Included
  /// in simulated_seconds, like reopt_seconds.
  double recovery_seconds = 0;
  /// Partition-task re-executions after injected task failures.
  uint64_t num_retries = 0;
  /// Speculative backup executions launched against straggler tasks.
  uint64_t speculative_executions = 0;
  /// Materialized partition files whose checksum verification failed.
  uint64_t corrupted_blocks = 0;

  // --- Memory governance (zero unless budgets are configured) ------------

  /// High-water mark of the query's MemoryTracker (bytes). Max-merged in
  /// Add(): concurrent jobs of one query share the tracker, so summing
  /// per-job peaks would double-count.
  uint64_t peak_memory_bytes = 0;
  /// Bytes written to grace-join spill files (each byte is also read back,
  /// charged via the disk constants into simulated_seconds).
  uint64_t spilled_bytes = 0;
  /// Grace-join partitions that went through the spill path (recursive
  /// splits counted individually).
  uint64_t spill_partitions = 0;
  /// Wall-clock the query spent waiting in the admission queue.
  double queue_wait_seconds = 0;
  /// 1 when the admission controller degraded this query under overload
  /// (shrunken memory reservation and/or strategy downgrade — see the
  /// degrade_* stamps on QueryContext). Max-merged in Add() like the other
  /// query-level flags; 0 always at default (degradation-off) config.
  uint64_t admission_degraded = 0;

  // --- Host wall-clock per kernel class ---------------------------------
  //
  // Real elapsed time (std::chrono::steady_clock) spent inside the
  // executor's data-movement and join kernels, independent of the
  // simulated cost model above. These exist so perf work on the kernels
  // has a machine-readable trajectory (bench_kernels / BENCH_kernels.json)
  // while the simulated seconds stay byte-for-byte stable.

  /// Shuffle exchange (Repartition): routing + merge, both phases.
  double wall_shuffle_seconds = 0;
  /// Hash-join build phase (hash-table construction over the build side).
  double wall_build_seconds = 0;
  /// Hash-join probe phase (lookups + output emission).
  double wall_probe_seconds = 0;
  /// Sink materialization (schema inference, stats, write-back).
  double wall_materialize_seconds = 0;

  // --- Optimizer decision telemetry -------------------------------------

  /// Worst per-decision q-error, max(est/actual, actual/est) with one-row
  /// floors, over the optimizer's decision log entries that were
  /// back-patched with actual materialized cardinalities. 0 when no
  /// decision has an actual yet; >= 1 otherwise. Max-merged in Add().
  double max_q_error = 0;
  /// Join-order/algorithm decisions the optimizer recorded for this query
  /// (see opt/decision_log.h for the full per-decision QueryProfile).
  uint64_t num_decisions = 0;
  /// Extra re-optimization checkpoints the error feedback loop inserted
  /// because the observed q-error crossed risk.qerror_reopt_threshold
  /// (dynamic/ingres-like only; 0 always at default config).
  uint64_t error_reopt_triggers = 0;

  // --- Predicate transfer (zero unless sketch.enable_predicate_transfer) --

  /// Bloom-filter bytes shipped from build to probe side of shuffle joins
  /// (charged as network cost, like a broadcast: every node receives the
  /// filter).
  uint64_t pt_filter_bytes = 0;
  /// Probe-side rows dropped by the transferred filter before entering the
  /// shuffle (null join keys count — an inner join can never emit them).
  uint64_t pt_pruned_rows = 0;
  /// Bytes those pruned rows would have moved through the shuffle — the
  /// network cost predicate transfer saved.
  uint64_t pt_pruned_bytes = 0;

  void Add(const ExecMetrics& other);
  std::string ToString() const;
};

}  // namespace dynopt

#endif  // DYNOPT_EXEC_METRICS_H_
