#include "exec/engine.h"

namespace dynopt {

Status Engine::CollectBaseStats(const std::string& table,
                                const std::vector<std::string>& columns,
                                const StatsOptions& options) {
  DYNOPT_ASSIGN_OR_RETURN(std::shared_ptr<Table> t, catalog_.GetTable(table));
  std::vector<int> indices;
  for (const auto& col : columns) {
    int idx = t->schema().FieldIndex(col);
    if (idx < 0) {
      return Status::NotFound("stats column " + col + " not in " + table);
    }
    indices.push_back(idx);
  }
  const size_t num_parts = t->num_partitions();
  std::vector<TableStatsBuilder> builders;
  builders.reserve(num_parts);
  for (size_t p = 0; p < num_parts; ++p) {
    builders.emplace_back(columns, indices, options);
  }
  pool_.ParallelFor(num_parts, [&](size_t p) {
    for (const Row& row : t->partition(p)) builders[p].AddRow(row);
  });
  TableStatsBuilder merged(columns, indices, options);
  for (const auto& b : builders) merged.Merge(b);
  TableStats stats = merged.Finalize();
  stats.row_count = t->NumRows();
  stats.total_bytes = t->TotalBytes();
  stats_.Put(table, std::move(stats));
  return Status::OK();
}

}  // namespace dynopt
