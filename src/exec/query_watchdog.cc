#include "exec/query_watchdog.h"

#include <algorithm>
#include <chrono>
#include <string>

#include "common/metrics_registry.h"

namespace dynopt {

QueryWatchdog::QueryWatchdog(const WatchdogConfig& config,
                             MetricsRegistry* metrics_registry)
    : config_(config),
      registry_(metrics_registry != nullptr ? metrics_registry
                                            : &MetricsRegistry::Global()) {
  if (config_.enabled) {
    monitor_ = std::thread([this] { MonitorLoop(); });
  }
}

QueryWatchdog::~QueryWatchdog() {
  if (!monitor_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  monitor_.join();
}

void QueryWatchdog::Watch(QueryContext* ctx) {
  if (!config_.enabled || ctx == nullptr) return;
  // Count staleness from registration, not from context construction: a
  // query that waited in the admission queue has not had a chance to
  // heartbeat yet and must not start life overdue.
  ctx->Heartbeat();
  std::lock_guard<std::mutex> lock(mu_);
  watched_.push_back(ctx);
}

void QueryWatchdog::Unwatch(QueryContext* ctx) {
  if (!config_.enabled || ctx == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  watched_.erase(std::remove(watched_.begin(), watched_.end(), ctx),
                 watched_.end());
}

uint64_t QueryWatchdog::deadline_kills() const {
  std::lock_guard<std::mutex> lock(mu_);
  return deadline_kills_;
}

uint64_t QueryWatchdog::stall_kills() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stall_kills_;
}

void QueryWatchdog::MonitorLoop() {
  const auto interval = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(config_.poll_interval_seconds));
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    SweepLocked();
    cv_.wait_for(lock, interval, [this] { return stop_; });
  }
}

void QueryWatchdog::SweepLocked() {
  auto& registry = *registry_;
  for (QueryContext* ctx : watched_) {
    if (ctx->cancelled()) continue;  // Already going down.
    if (ctx->has_deadline() && ctx->deadline_expired()) {
      // Cancel via the token (not CheckAlive) — the point is precisely
      // that the query is stuck somewhere that never reaches a checkpoint.
      ctx->Cancel("watchdog: deadline exceeded");
      ++deadline_kills_;
      registry.counter("watchdog.deadline_kills")->Increment();
      continue;
    }
    if (config_.progress_timeout_seconds > 0 &&
        ctx->SecondsSinceHeartbeat() > config_.progress_timeout_seconds) {
      ctx->Cancel("watchdog: no progress for " +
                  std::to_string(ctx->SecondsSinceHeartbeat()) + "s (limit " +
                  std::to_string(config_.progress_timeout_seconds) + "s)");
      ++stall_kills_;
      registry.counter("watchdog.stall_kills")->Increment();
    }
  }
}

}  // namespace dynopt
