#ifndef DYNOPT_EXEC_JOIN_HASH_TABLE_H_
#define DYNOPT_EXEC_JOIN_HASH_TABLE_H_

#include <cstdint>
#include <vector>

#include "common/value.h"
#include "exec/row_kernels.h"

namespace dynopt {

/// True when any of the key slots of `row` is NULL (SQL equi-join
/// semantics: NULL keys never match, so such rows are skipped on both the
/// build and the probe side).
inline bool AnyJoinKeyNull(const Row& row, const std::vector<int>& keys) {
  for (int k : keys) {
    if (row[static_cast<size_t>(k)].is_null()) return true;
  }
  return false;
}

/// Compares the key slots of two rows position-wise.
inline bool JoinKeysEqual(const Row& a, const std::vector<int>& a_keys,
                          const Row& b, const std::vector<int>& b_keys) {
  for (size_t i = 0; i < a_keys.size(); ++i) {
    if (a[static_cast<size_t>(a_keys[i])] !=
        b[static_cast<size_t>(b_keys[i])]) {
      return false;
    }
  }
  return true;
}

/// Flat build table for the local hash join: a power-of-two bucket array of
/// chain heads plus one `next` link per build row, all stored in three
/// contiguous vectors sized exactly once from the build side. Compared to
/// the previous std::unordered_map<uint64_t, std::vector<size_t>> this
/// performs zero per-key heap allocations and keeps probes on cache lines
/// instead of node pointers ("Design Trade-offs for a Robust Dynamic Hybrid
/// Hash Join": flat build-table design).
///
/// Chains are built by inserting rows in reverse, so traversal yields build
/// indices in ascending order — the same match-emission order as the old
/// map of insertion-ordered index vectors, which keeps downstream row order
/// (and thus order-sensitive statistics sketches) bit-identical.
class JoinHashTable {
 public:
  static constexpr uint32_t kEnd = 0xffffffffu;

  /// Builds over `rows`; rows with NULL keys are excluded. When
  /// `precomputed` is non-null it must hold HashRowKey(rows[i], keys) for
  /// every i (the shuffle already paid for those), otherwise hashes are
  /// computed here.
  void Build(const std::vector<Row>& rows, const std::vector<int>& keys,
             const std::vector<uint64_t>* precomputed) {
    const size_t n = rows.size();
    hashes_.resize(n);
    next_.assign(n, kEnd);
    // 2x overprovisioning keeps the bucket array mostly empty, so the common
    // probe-miss path is a single predictable branch-not-taken on an
    // L1/L2-resident array instead of a chain walk.
    size_t cap = 16;
    while (cap < 2 * n) cap <<= 1;
    heads_.assign(cap, kEnd);
    mask_ = cap - 1;
    // Reverse insertion + head-prepend == ascending chain order.
    for (size_t i = n; i-- > 0;) {
      // The NULL-key check dereferences each row's payload — a pointer
      // chase like the shuffle's; prefetch far enough ahead (behind, here)
      // to hide the miss latency.
      if (i >= 16) {
        __builtin_prefetch(rows[i - 16].data());
      }
      if (AnyJoinKeyNull(rows[i], keys)) {
        hashes_[i] = 0;
        continue;
      }
      const uint64_t h = precomputed != nullptr ? (*precomputed)[i]
                                                : HashRowKeyInline(rows[i], keys);
      hashes_[i] = h;
      const size_t bucket = h & mask_;
      next_[i] = heads_[bucket];
      heads_[bucket] = static_cast<uint32_t>(i);
    }
  }

  /// Columnar build: `hashes[0..n)` are the combined key hashes of the
  /// build batch's rows (flat partition index space) and `key_null[i]` != 0
  /// marks rows whose key contains a NULL. Identical table shape to Build()
  /// — reverse insertion, 2x overprovisioned power-of-two buckets, NULL-key
  /// rows stored with hash 0 and left unlinked.
  void BuildFromHashes(const uint64_t* hashes, const uint8_t* key_null,
                       size_t n) {
    hashes_.resize(n);
    next_.assign(n, kEnd);
    size_t cap = 16;
    while (cap < 2 * n) cap <<= 1;
    heads_.assign(cap, kEnd);
    mask_ = cap - 1;
    for (size_t i = n; i-- > 0;) {
      if (key_null[i]) {
        hashes_[i] = 0;
        continue;
      }
      const uint64_t h = hashes[i];
      hashes_[i] = h;
      const size_t bucket = h & mask_;
      next_[i] = heads_[bucket];
      heads_[bucket] = static_cast<uint32_t>(i);
    }
  }

  /// Head of the chain for hash `h` (kEnd when empty). Entries on the chain
  /// may carry different hashes; callers filter with hash_at(). Build()
  /// must have been called (the bucket array always exists afterwards, even
  /// for an empty build side).
  uint32_t First(uint64_t h) const { return heads_[h & mask_]; }

  uint32_t Next(uint32_t i) const { return next_[i]; }

  uint64_t hash_at(uint32_t i) const { return hashes_[i]; }

  /// Raw views for hot probe loops: hoisting these into const locals keeps
  /// them in registers across the emission writes (which the compiler must
  /// otherwise assume could alias the vectors' headers).
  const uint32_t* heads() const { return heads_.data(); }
  const uint32_t* next() const { return next_.data(); }
  const uint64_t* hashes() const { return hashes_.data(); }
  size_t mask() const { return mask_; }

 private:
  std::vector<uint32_t> heads_;
  std::vector<uint32_t> next_;
  std::vector<uint64_t> hashes_;
  size_t mask_ = 0;
};

}  // namespace dynopt

#endif  // DYNOPT_EXEC_JOIN_HASH_TABLE_H_
