#include "exec/fault_injector.h"

#include "common/hash.h"

namespace dynopt {

namespace {

/// Distinct draw families so e.g. the task-failure and straggler decisions
/// for the same (stage, node) are independent.
constexpr uint64_t kDrawTaskFailure = 0x7461736bULL;   // "task"
constexpr uint64_t kDrawStraggler = 0x736c6f77ULL;     // "slow"
constexpr uint64_t kDrawCorruption = 0x636f7272ULL;    // "corr"
constexpr uint64_t kDrawCorruptByte = 0x62797465ULL;   // "byte"

}  // namespace

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kRepartition:
      return "repartition";
    case FaultSite::kBroadcast:
      return "broadcast";
    case FaultSite::kBuild:
      return "build";
    case FaultSite::kProbe:
      return "probe";
    case FaultSite::kMaterialize:
      return "materialize";
  }
  return "unknown";
}

double FaultInjector::Uniform(uint64_t site_tag, int stage, size_t node,
                              int attempt) const {
  uint64_t h = Mix64(config_.seed ^ site_tag);
  h = HashCombine(h, Mix64(static_cast<uint64_t>(stage)));
  h = HashCombine(h, Mix64(static_cast<uint64_t>(node) + 0x9e37ULL));
  h = HashCombine(h, Mix64(static_cast<uint64_t>(attempt) + 0x79b9ULL));
  // Top 53 bits -> [0, 1) with full double precision.
  return static_cast<double>(Mix64(h) >> 11) * 0x1.0p-53;
}

bool FaultInjector::TaskFails(FaultSite site, int stage, size_t node,
                              int attempt) const {
  if (config_.task_failure_probability <= 0.0) return false;
  uint64_t tag = kDrawTaskFailure ^ (static_cast<uint64_t>(site) << 32);
  return Uniform(tag, stage, node, attempt) <
         config_.task_failure_probability;
}

bool FaultInjector::IsStraggler(FaultSite site, int stage,
                                size_t node) const {
  if (config_.straggler_probability <= 0.0) return false;
  uint64_t tag = kDrawStraggler ^ (static_cast<uint64_t>(site) << 32);
  return Uniform(tag, stage, node, 0) < config_.straggler_probability;
}

bool FaultInjector::CorruptsBlock(int stage, size_t node, int attempt) const {
  if (config_.corruption_probability <= 0.0) return false;
  return Uniform(kDrawCorruption, stage, node, attempt) <
         config_.corruption_probability;
}

uint64_t FaultInjector::CorruptionOffset(int stage, size_t node) const {
  uint64_t h = Mix64(config_.seed ^ kDrawCorruptByte);
  h = HashCombine(h, Mix64(static_cast<uint64_t>(stage)));
  h = HashCombine(h, Mix64(static_cast<uint64_t>(node)));
  return Mix64(h);
}

bool FaultInjector::ShouldFailQuery(int stage) {
  if (config_.fail_query_at_stage < 0) return false;
  if (stage != config_.fail_query_at_stage) return false;
  // One failure budget per firing; fetch_add keeps the cap exact even if
  // two executors raced here (they do not today — kernel prologues are
  // serial — but the injector should not depend on that).
  int fired = query_failures_fired_.fetch_add(1);
  if (fired >= config_.max_query_failures) return false;
  return true;
}

}  // namespace dynopt
