#ifndef DYNOPT_EXEC_FAULT_INJECTOR_H_
#define DYNOPT_EXEC_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "exec/cluster.h"

namespace dynopt {

/// Kernel classes faults can strike. A "stage" is one execution of one of
/// these kernels; a task is one node's partition of that stage.
enum class FaultSite {
  kRepartition = 0,
  kBroadcast = 1,
  kBuild = 2,
  kProbe = 3,
  kMaterialize = 4,
};

const char* FaultSiteName(FaultSite site);

/// Deterministic, seeded source of injected faults for the simulated
/// cluster. Every decision — does this task fail, does this node straggle,
/// is this temp file corrupted, does the whole query die here — is a pure
/// hash of (seed, site, stage, node, attempt), so a fault pattern is a
/// function of the configuration alone: re-running the same workload
/// reproduces it exactly, independent of thread scheduling or wall clock.
///
/// The injector is owned by the Engine and lives across query attempts.
/// Stage ids advance monotonically at kernel entry (serial sections only),
/// which is what makes recovery terminate: a restarted or resumed query
/// executes under *fresh* stage ids, so a fault that killed attempt 1 does
/// not deterministically re-kill attempt 2, and one-shot query failures
/// (`fail_query_at_stage` + `max_query_failures`) fire a bounded number of
/// times.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultInjectionConfig& config)
      : config_(config) {}

  const FaultInjectionConfig& config() const { return config_; }
  bool enabled() const { return config_.enabled; }

  /// Claims the next stage id. Called once per kernel execution, from the
  /// kernel's serial prologue.
  int NextStageId() { return next_stage_.fetch_add(1); }

  /// True when node `node`'s attempt number `attempt` of stage `stage`
  /// fails and must be retried.
  bool TaskFails(FaultSite site, int stage, size_t node, int attempt) const;

  /// True when `node` straggles (runs straggler_multiplier slower) for the
  /// whole of `stage`.
  bool IsStraggler(FaultSite site, int stage, size_t node) const;

  /// True when the bytes node `node` materialized in `stage` (write attempt
  /// `attempt`) come back corrupted.
  bool CorruptsBlock(int stage, size_t node, int attempt) const;

  /// Deterministic raw 64-bit draw for which byte to flip in a corrupted
  /// file; the corruptor reduces it modulo the file size.
  uint64_t CorruptionOffset(int stage, size_t node) const;

  /// True when the whole query must abort at `stage` (one-shot: fires at
  /// most `max_query_failures` times over the injector's lifetime). Not
  /// const: consumes one failure budget when it fires.
  bool ShouldFailQuery(int stage);

  /// Simulated seconds of work a query-level abort threw away; recovery
  /// policies read this to price restarts.
  void RecordAbortedWork(double seconds) {
    // Aborts are raised from serial kernel prologues; plain double is safe.
    aborted_work_seconds_ += seconds;
  }
  double aborted_work_seconds() const { return aborted_work_seconds_; }
  int query_failures_fired() const { return query_failures_fired_.load(); }
  int stages_started() const { return next_stage_.load(); }

 private:
  /// Uniform [0,1) draw, pure in its arguments.
  double Uniform(uint64_t site_tag, int stage, size_t node,
                 int attempt) const;

  FaultInjectionConfig config_;
  std::atomic<int> next_stage_{0};
  std::atomic<int> query_failures_fired_{0};
  double aborted_work_seconds_ = 0;
};

}  // namespace dynopt

#endif  // DYNOPT_EXEC_FAULT_INJECTOR_H_
