#ifndef DYNOPT_EXEC_ADMISSION_CONTROLLER_H_
#define DYNOPT_EXEC_ADMISSION_CONTROLLER_H_

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <string>
#include <utility>

#include "common/memory_tracker.h"
#include "common/metrics_registry.h"
#include "common/query_context.h"
#include "common/status.h"
#include "exec/cluster.h"

namespace dynopt {

/// Bounded-concurrency gate in front of the engine: at most
/// `max_concurrent_queries` run at once, each holding a memory reservation
/// against the engine tracker; at most `max_queue_depth` more wait in FIFO
/// order. Arrivals beyond the queue bound bounce immediately with
/// kResourceExhausted (backpressure), waiters give up with the same code
/// after `queue_timeout_seconds`, and a query cancelled while queued leaves
/// with kCancelled. Admission attaches the query's MemoryTracker under the
/// engine tracker, completing the engine -> query -> operator hierarchy.
///
/// The wait loop polls in short slices instead of relying purely on
/// condition-variable signals: an external Cancel() on the waiting query's
/// token has no way to notify this controller, and slices keep that case
/// responsive within milliseconds.
class AdmissionController {
 public:
  /// `engine_memory` must outlive the controller (Engine owns both).
  /// `query_reservation_bytes` is reserved per admitted query (0 reserves
  /// nothing — slot counting only).
  AdmissionController(const AdmissionConfig& config,
                      MemoryTracker* engine_memory,
                      uint64_t query_reservation_bytes)
      : config_(config),
        engine_memory_(engine_memory),
        reservation_bytes_(query_reservation_bytes) {}

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// RAII admission grant: releases the slot and the memory reservation
  /// when destroyed (or Release()d), waking the next waiter.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& other) noexcept
        : owner_(other.owner_), reservation_(std::move(other.reservation_)) {
      other.owner_ = nullptr;
    }
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        Release();
        owner_ = other.owner_;
        reservation_ = std::move(other.reservation_);
        other.owner_ = nullptr;
      }
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { Release(); }

    bool admitted() const { return owner_ != nullptr; }

    void Release() {
      if (owner_ == nullptr) return;
      reservation_.ReleaseAll();
      owner_->FinishQuery();
      owner_ = nullptr;
    }

   private:
    friend class AdmissionController;
    Ticket(AdmissionController* owner, MemoryReservation reservation)
        : owner_(owner), reservation_(std::move(reservation)) {}

    AdmissionController* owner_ = nullptr;
    MemoryReservation reservation_;
  };

  /// Blocks until this query holds a slot (and its memory reservation), the
  /// queue bound/timeout refuses it (kResourceExhausted), or `ctx` is
  /// cancelled/expires while waiting (kCancelled). `ctx` may be null (no
  /// cancellation, no tracker re-homing). On success the wait time is
  /// recorded in ctx->queue_wait_seconds and the query tracker is attached
  /// under the engine tracker with the reservation as its budget.
  Result<Ticket> Admit(QueryContext* ctx) {
    using Clock = std::chrono::steady_clock;
    const auto start = Clock::now();
    std::unique_lock<std::mutex> lock(mu_);
    if (static_cast<int>(waiting_.size()) >= config_.max_queue_depth) {
      MetricsRegistry::Global().counter("admission.rejected")->Increment();
      return Status::ResourceExhausted(
          "admission queue full (" + std::to_string(waiting_.size()) + "/" +
          std::to_string(config_.max_queue_depth) + " waiting, " +
          std::to_string(running_) + " running)");
    }
    const uint64_t seq = next_seq_++;
    waiting_.push_back(seq);
    MetricsRegistry::Global()
        .gauge("admission.queue_depth")
        ->Set(static_cast<int64_t>(waiting_.size()));
    auto leave_queue = [&]() {
      waiting_.erase(std::find(waiting_.begin(), waiting_.end(), seq));
      MetricsRegistry::Global()
          .gauge("admission.queue_depth")
          ->Set(static_cast<int64_t>(waiting_.size()));
      cv_.notify_all();
    };
    for (;;) {
      if (ctx != nullptr) {
        Status alive = ctx->CheckAlive();
        if (!alive.ok()) {
          leave_queue();
          return alive;
        }
      }
      if (waiting_.front() == seq && running_ < config_.max_concurrent_queries) {
        MemoryReservation reservation(engine_memory_);
        if (reservation.TryGrow(reservation_bytes_)) {
          waiting_.pop_front();
          ++running_;
          const double wait_s =
              std::chrono::duration<double>(Clock::now() - start).count();
          if (ctx != nullptr) {
            ctx->queue_wait_seconds = wait_s;
            ctx->AttachMemory(engine_memory_, reservation_bytes_);
          }
          auto& registry = MetricsRegistry::Global();
          registry.counter("admission.admitted")->Increment();
          registry.gauge("admission.queue_depth")
              ->Set(static_cast<int64_t>(waiting_.size()));
          registry.histogram("admission.queue_wait_us")
              ->Record(static_cast<uint64_t>(wait_s * 1e6));
          cv_.notify_all();
          return Ticket(this, std::move(reservation));
        }
        // Slot free but the engine budget cannot back the reservation yet:
        // stay queued until a finishing query releases memory (or timeout).
      }
      const double waited =
          std::chrono::duration<double>(Clock::now() - start).count();
      if (waited >= config_.queue_timeout_seconds) {
        leave_queue();
        MetricsRegistry::Global().counter("admission.timeouts")->Increment();
        return Status::ResourceExhausted(
            "admission timed out after " + std::to_string(waited) +
            "s (max " + std::to_string(config_.queue_timeout_seconds) + "s)");
      }
      cv_.wait_for(lock, std::chrono::milliseconds(5));
    }
  }

  int running() const {
    std::lock_guard<std::mutex> lock(mu_);
    return running_;
  }
  int queued() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int>(waiting_.size());
  }
  const AdmissionConfig& config() const { return config_; }

 private:
  void FinishQuery() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      --running_;
    }
    cv_.notify_all();
  }

  AdmissionConfig config_;
  MemoryTracker* engine_memory_;
  uint64_t reservation_bytes_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<uint64_t> waiting_;  ///< FIFO of waiter sequence numbers.
  uint64_t next_seq_ = 0;
  int running_ = 0;
};

}  // namespace dynopt

#endif  // DYNOPT_EXEC_ADMISSION_CONTROLLER_H_
