#ifndef DYNOPT_EXEC_ADMISSION_CONTROLLER_H_
#define DYNOPT_EXEC_ADMISSION_CONTROLLER_H_

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "common/memory_tracker.h"
#include "common/metrics_registry.h"
#include "common/query_context.h"
#include "common/status.h"
#include "exec/cluster.h"

namespace dynopt {

/// Overload-resilient gate in front of the engine. At most
/// `max_concurrent_queries` queries run at once, each holding a memory
/// reservation against the engine tracker; at most `max_queue_depth` more
/// wait. Within the queue:
///
///  - Each waiter belongs to the priority class of its QueryContext
///    (kNormal with no context). Free slots are granted by smooth weighted
///    round-robin across the non-empty classes
///    (AdmissionConfig::class_weights), FIFO within a class — so under
///    sustained overload, slot share is proportional to weight while no
///    class starves. A workload that never sets priorities occupies one
///    class and is served in exact FIFO arrival order, the pre-priority
///    behavior.
///  - Reservations are sized from the query's optimizer estimate
///    (QueryContext::estimated_memory_bytes, see
///    EstimateQueryReservationBytes in opt/degrade.h) when present,
///    falling back to the fixed `query_reservation_bytes`.
///  - With shedding enabled, crossing the queue-depth or queue-wait
///    watermarks drops the newest waiter of the lowest non-empty class
///    with kResourceExhausted ("shed"), keeping the queue short enough
///    that admitted queries still have deadline budget left.
///  - With degradation enabled, a query granted while the queue is above
///    the degrade watermark is admitted with a shrunken reservation (and
///    optionally a strategy-downgrade stamp) instead of waiting — degrade,
///    don't refuse.
///
/// Arrivals beyond the queue bound bounce immediately with
/// kResourceExhausted (backpressure), waiters give up with the same code
/// after `queue_timeout_seconds` (a single absolute deadline — spurious
/// condition-variable wakeups cannot under- or over-count the wait), and a
/// query cancelled while queued leaves with kCancelled. Admission attaches
/// the query's MemoryTracker under the engine tracker, completing the
/// engine -> query -> operator hierarchy.
///
/// The wait loop still wakes in short slices instead of relying purely on
/// condition-variable signals: an external Cancel() on the waiting query's
/// token has no way to notify this controller, and slices keep that case
/// responsive within milliseconds. Timeout accounting is independent of
/// the slicing: it compares against the one deadline computed at entry.
class AdmissionController {
 public:
  /// `engine_memory` must outlive the controller (Engine owns both).
  /// `query_reservation_bytes` is reserved per admitted query with no
  /// estimate of its own (0 reserves nothing — slot counting only).
  /// `metrics_registry` receives the admission counters/gauges; null falls
  /// back to MetricsRegistry::Global(). Engines pass their own registry.
  AdmissionController(const AdmissionConfig& config,
                      MemoryTracker* engine_memory,
                      uint64_t query_reservation_bytes,
                      MetricsRegistry* metrics_registry = nullptr)
      : config_(config),
        engine_memory_(engine_memory),
        reservation_bytes_(query_reservation_bytes),
        registry_(metrics_registry != nullptr ? metrics_registry
                                              : &MetricsRegistry::Global()) {}

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// RAII admission grant: releases the slot and the memory reservation
  /// when destroyed (or Release()d), waking the next waiter.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& other) noexcept
        : owner_(other.owner_), reservation_(std::move(other.reservation_)) {
      other.owner_ = nullptr;
    }
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        Release();
        owner_ = other.owner_;
        reservation_ = std::move(other.reservation_);
        other.owner_ = nullptr;
      }
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { Release(); }

    bool admitted() const { return owner_ != nullptr; }

    void Release() {
      if (owner_ == nullptr) return;
      reservation_.ReleaseAll();
      owner_->FinishQuery();
      owner_ = nullptr;
    }

   private:
    friend class AdmissionController;
    Ticket(AdmissionController* owner, MemoryReservation reservation)
        : owner_(owner), reservation_(std::move(reservation)) {}

    AdmissionController* owner_ = nullptr;
    MemoryReservation reservation_;
  };

  /// Blocks until this query holds a slot (and its memory reservation), the
  /// queue bound/timeout/shedder refuses it (kResourceExhausted), or `ctx`
  /// is cancelled/expires while waiting (kCancelled). `ctx` may be null
  /// (kNormal priority, no cancellation, no tracker re-homing). On success
  /// the wait time is recorded in ctx->queue_wait_seconds, degradation
  /// stamps are applied, and the query tracker is attached under the
  /// engine tracker with the (possibly degraded) reservation as its budget.
  Result<Ticket> Admit(QueryContext* ctx) {
    const auto start = Clock::now();
    auto& registry = *registry_;
    std::unique_lock<std::mutex> lock(mu_);
    if (TotalWaitingLocked() >= config_.max_queue_depth) {
      registry.counter("admission.rejected")->Increment();
      return Status::ResourceExhausted(
          "admission queue full (" + std::to_string(TotalWaitingLocked()) +
          "/" + std::to_string(config_.max_queue_depth) + " waiting, " +
          std::to_string(running_) + " running)");
    }

    auto waiter = std::make_shared<Waiter>();
    waiter->seq = next_seq_++;
    waiter->cls = ctx != nullptr ? static_cast<int>(ctx->priority)
                                 : static_cast<int>(QueryPriority::kNormal);
    waiter->ctx = ctx;
    waiter->reserve_bytes = ResolveReservationLocked(ctx);
    waiter->enqueued = start;
    classes_[waiter->cls].push_back(waiter);
    UpdateDepthGaugeLocked();

    MaybeShedLocked(start);
    PumpLocked();

    const auto deadline =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(
                        config_.queue_timeout_seconds));
    for (;;) {
      // Order matters: a grant or shed decided by another thread wins over
      // this waiter's own cancellation/timeout observations — the decision
      // already removed it from the queue and (for grants) committed the
      // slot, which must not leak.
      if (waiter->granted) {
        const double wait_s =
            std::chrono::duration<double>(Clock::now() - start).count();
        if (ctx != nullptr) {
          ctx->queue_wait_seconds = wait_s;
          ctx->memory_degraded = waiter->degrade_memory;
          ctx->strategy_downgraded = waiter->degrade_strategy;
          ctx->AttachMemory(engine_memory_, waiter->granted_bytes);
        }
        registry.counter("admission.admitted")->Increment();
        registry.histogram("admission.queue_wait_us")
            ->Record(static_cast<uint64_t>(wait_s * 1e6));
        return Ticket(this, std::move(waiter->reservation));
      }
      if (waiter->shed) {
        registry.counter("admission.shed")->Increment();
        return Status::ResourceExhausted("shed under overload: " +
                                         waiter->shed_reason);
      }
      if (ctx != nullptr) {
        Status alive = ctx->CheckAlive();
        if (!alive.ok()) {
          LeaveQueueLocked(waiter);
          return alive;
        }
      }
      const auto now = Clock::now();
      if (now >= deadline) {
        LeaveQueueLocked(waiter);
        registry.counter("admission.timeouts")->Increment();
        return Status::ResourceExhausted(
            "admission timed out after " +
            std::to_string(
                std::chrono::duration<double>(now - start).count()) +
            "s (max " + std::to_string(config_.queue_timeout_seconds) + "s)");
      }
      MaybeShedLocked(now);
      // Short slices purely for external-cancel responsiveness; the
      // timeout itself is the absolute `deadline` above, so wakeup timing
      // never skews the accounting.
      cv_.wait_until(lock, std::min(deadline, now + kCancelPollSlice));
    }
  }

  int running() const {
    std::lock_guard<std::mutex> lock(mu_);
    return running_;
  }
  int queued() const {
    std::lock_guard<std::mutex> lock(mu_);
    return TotalWaitingLocked();
  }
  int queued_in_class(QueryPriority p) const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int>(classes_[static_cast<int>(p)].size());
  }
  const AdmissionConfig& config() const { return config_; }

 private:
  using Clock = std::chrono::steady_clock;
  static constexpr std::chrono::milliseconds kCancelPollSlice{5};

  struct Waiter {
    uint64_t seq = 0;
    int cls = static_cast<int>(QueryPriority::kNormal);
    QueryContext* ctx = nullptr;
    uint64_t reserve_bytes = 0;
    Clock::time_point enqueued{};
    // Grant state, written under mu_ by whichever thread runs the pump.
    bool granted = false;
    uint64_t granted_bytes = 0;
    bool degrade_memory = false;
    bool degrade_strategy = false;
    MemoryReservation reservation;
    // Shed state.
    bool shed = false;
    std::string shed_reason;
  };

  int TotalWaitingLocked() const {
    size_t n = 0;
    for (const auto& q : classes_) n += q.size();
    return static_cast<int>(n);
  }

  void UpdateDepthGaugeLocked() const {
    registry_->gauge("admission.queue_depth")->Set(TotalWaitingLocked());
  }

  /// Reservation bytes for a fresh waiter: the optimizer's estimate when
  /// the context carries one (clamped to the engine budget so a wild
  /// over-estimate degrades to "whole engine" instead of "never
  /// grantable"), the fixed per-query reservation otherwise.
  uint64_t ResolveReservationLocked(const QueryContext* ctx) const {
    uint64_t bytes = reservation_bytes_;
    if (ctx != nullptr && ctx->estimated_memory_bytes > 0) {
      bytes = ctx->estimated_memory_bytes;
      const uint64_t budget = engine_memory_->budget();
      if (budget > 0) bytes = std::min(bytes, budget);
    }
    return bytes;
  }

  /// Grants free slots to waiting queries: picks the next class by smooth
  /// weighted round-robin over the non-empty classes, reserves the head
  /// waiter's memory, and marks it granted. Stops when slots or engine
  /// memory run out (memory head-of-line blocking is deliberate: the
  /// chosen waiter holds its turn until a finishing query frees bytes).
  void PumpLocked() {
    while (running_ < config_.max_concurrent_queries) {
      const int cls = PickClassLocked();
      if (cls < 0) return;  // Nobody waiting.
      auto& waiter = classes_[cls].front();

      // Degradation decision rides on the pressure at grant time: with the
      // queue above the watermark, shrink the reservation instead of
      // letting the backlog grow.
      uint64_t bytes = waiter->reserve_bytes;
      bool degrade = config_.degrade_queue_depth > 0 &&
                     TotalWaitingLocked() >= config_.degrade_queue_depth;
      if (degrade && bytes > 0) {
        bytes = std::max<uint64_t>(
            1, static_cast<uint64_t>(static_cast<double>(bytes) *
                                     config_.degrade_memory_fraction));
      }

      MemoryReservation reservation(engine_memory_);
      if (!reservation.TryGrow(bytes)) return;  // Wait for memory.

      auto granted = waiter;  // Keep alive past pop_front.
      classes_[cls].pop_front();
      CommitClassPickLocked(cls);
      ++running_;
      granted->granted = true;
      granted->granted_bytes = bytes;
      granted->reservation = std::move(reservation);
      if (degrade) {
        auto& registry = *registry_;
        if (granted->reserve_bytes > 0) {
          granted->degrade_memory = true;
          registry.counter("admission.degraded_memory")->Increment();
        }
        if (config_.degrade_strategy) {
          granted->degrade_strategy = true;
          registry.counter("admission.degraded_strategy")->Increment();
        }
      }
      UpdateDepthGaugeLocked();
      cv_.notify_all();
    }
  }

  /// Smooth weighted round-robin (the nginx algorithm) over non-empty
  /// classes: each pass every contender gains its weight, the largest
  /// current value wins. Proportional over time, deterministic, and with a
  /// single non-empty class it always picks that class (plain FIFO).
  /// PickClassLocked only peeks; CommitClassPickLocked applies the debit
  /// once the pick actually got a slot (a peek that failed on memory must
  /// not consume the class's turn).
  int PickClassLocked() {
    int best = -1;
    double best_current = 0;
    double total = 0;
    for (int i = 0; i < kNumQueryPriorities; ++i) {
      if (classes_[i].empty()) continue;
      wrr_current_[i] += config_.class_weights[i];
      total += config_.class_weights[i];
      if (best < 0 || wrr_current_[i] > best_current) {
        best = i;
        best_current = wrr_current_[i];
      }
    }
    wrr_total_ = total;
    return best;
  }

  void CommitClassPickLocked(int cls) { wrr_current_[cls] -= wrr_total_; }

  /// Depth- and wait-watermark shedding: drop the newest waiter of the
  /// lowest non-empty class. Newest-of-lowest loses the least invested
  /// wait time and frees depth for higher classes; the shed waiter leaves
  /// with kResourceExhausted immediately instead of burning its timeout.
  void MaybeShedLocked(Clock::time_point now) {
    if (!config_.shed_enabled) return;
    if (config_.shed_queue_depth > 0) {
      while (TotalWaitingLocked() > config_.shed_queue_depth) {
        if (!ShedOneLocked("queue depth " +
                           std::to_string(TotalWaitingLocked()) +
                           " over watermark " +
                           std::to_string(config_.shed_queue_depth))) {
          break;
        }
      }
    }
    if (config_.shed_queue_wait_seconds > 0) {
      Clock::time_point oldest = now;
      bool any = false;
      for (const auto& q : classes_) {
        for (const auto& w : q) {
          if (!any || w->enqueued < oldest) oldest = w->enqueued;
          any = true;
        }
      }
      const double head_wait =
          any ? std::chrono::duration<double>(now - oldest).count() : 0.0;
      if (any && head_wait > config_.shed_queue_wait_seconds) {
        (void)ShedOneLocked("head-of-line wait " + std::to_string(head_wait) +
                            "s over watermark " +
                            std::to_string(config_.shed_queue_wait_seconds) +
                            "s");
      }
    }
  }

  bool ShedOneLocked(std::string reason) {
    for (int i = 0; i < kNumQueryPriorities; ++i) {
      if (classes_[i].empty()) continue;
      auto victim = classes_[i].back();
      classes_[i].pop_back();
      victim->shed = true;
      victim->shed_reason = std::move(reason);
      UpdateDepthGaugeLocked();
      cv_.notify_all();
      return true;
    }
    return false;
  }

  /// Removes a waiter that gives up on its own (cancel, timeout). The
  /// departure may unblock the pump (it freed queue depth and possibly a
  /// class's head), so re-pump before returning.
  void LeaveQueueLocked(const std::shared_ptr<Waiter>& waiter) {
    auto& q = classes_[waiter->cls];
    for (auto it = q.begin(); it != q.end(); ++it) {
      if ((*it)->seq == waiter->seq) {
        q.erase(it);
        break;
      }
    }
    UpdateDepthGaugeLocked();
    PumpLocked();
    cv_.notify_all();
  }

  void FinishQuery() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      --running_;
      PumpLocked();
    }
    cv_.notify_all();
  }

  AdmissionConfig config_;
  MemoryTracker* engine_memory_;
  uint64_t reservation_bytes_;
  MetricsRegistry* registry_;  ///< Engine-owned or Global(); never null.

  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// FIFO per priority class, indexed by QueryPriority.
  std::deque<std::shared_ptr<Waiter>> classes_[kNumQueryPriorities];
  double wrr_current_[kNumQueryPriorities] = {0, 0, 0};
  double wrr_total_ = 0;
  uint64_t next_seq_ = 0;
  int running_ = 0;
};

}  // namespace dynopt

#endif  // DYNOPT_EXEC_ADMISSION_CONTROLLER_H_
