#include "exec/batch.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace dynopt {

uint64_t ColumnVector::HashDoubleValue(double d) {
  if (d == static_cast<double>(static_cast<int64_t>(d)) &&
      std::abs(d) < 9.0e18) {
    return Mix64(static_cast<uint64_t>(static_cast<int64_t>(d)));
  }
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(d));
  return Mix64(bits);
}

namespace {

/// Per-column type scan over one chunk of rows: the unique non-NULL value
/// type, or kValues when types mix. All-NULL columns land on kInt64 (all
/// invalid), which round-trips since validity masks every slot.
ColumnKind InferKind(const Row* rows, size_t n, size_t col, bool* has_nulls) {
  ValueType seen = ValueType::kNull;
  bool mixed = false;
  bool nulls = false;
  for (size_t i = 0; i < n; ++i) {
    const Value& v = rows[i][col];
    const ValueType t = v.type();
    if (t == ValueType::kNull) {
      nulls = true;
      continue;
    }
    if (seen == ValueType::kNull) {
      seen = t;
    } else if (t != seen) {
      mixed = true;
      break;
    }
  }
  *has_nulls = nulls;
  if (mixed) return ColumnKind::kValues;
  switch (seen) {
    case ValueType::kNull:  // All NULL: typed column, every slot invalid.
    case ValueType::kInt64:
      return ColumnKind::kInt64;
    case ValueType::kDouble:
      return ColumnKind::kDouble;
    case ValueType::kBool:
      return ColumnKind::kBool;
    case ValueType::kString:
      return ColumnKind::kString;
  }
  return ColumnKind::kValues;
}

/// Infers the kind of source column `c` over the chunk and fills one
/// ColumnVector from it (typed fill, zeroed NULL slots, dict interning).
void FillColumn(const Row* rows, size_t n, size_t c, ColumnVector* out) {
  ColumnVector& col = *out;
  bool has_nulls = false;
  col.kind = InferKind(rows, n, c, &has_nulls);
  if (has_nulls && col.kind != ColumnKind::kValues) {
    col.validity.assign(n, 1);
  }
  switch (col.kind) {
    case ColumnKind::kInt64:
      col.i64.resize(n);
      for (size_t i = 0; i < n; ++i) {
        const Value& v = rows[i][c];
        if (v.is_null()) {
          col.validity[i] = 0;
          col.i64[i] = 0;
        } else {
          col.i64[i] = v.AsInt64();
        }
      }
      break;
    case ColumnKind::kDouble:
      col.f64.resize(n);
      for (size_t i = 0; i < n; ++i) {
        const Value& v = rows[i][c];
        if (v.is_null()) {
          col.validity[i] = 0;
          col.f64[i] = 0;
        } else {
          col.f64[i] = v.AsDouble();
        }
      }
      break;
    case ColumnKind::kBool:
      col.b8.resize(n);
      for (size_t i = 0; i < n; ++i) {
        const Value& v = rows[i][c];
        if (v.is_null()) {
          col.validity[i] = 0;
          col.b8[i] = 0;
        } else {
          col.b8[i] = v.AsBool() ? 1 : 0;
        }
      }
      break;
    case ColumnKind::kString: {
      col.dict = std::make_shared<StringDict>();
      col.codes.resize(n);
      for (size_t i = 0; i < n; ++i) {
        const Value& v = rows[i][c];
        if (v.is_null()) {
          col.validity[i] = 0;
          col.codes[i] = 0;
        } else {
          col.codes[i] = col.dict->Intern(v.AsStringUnchecked());
        }
      }
      break;
    }
    case ColumnKind::kValues:
      col.values.reserve(n);
      for (size_t i = 0; i < n; ++i) col.values.push_back(rows[i][c]);
      break;
  }
}

}  // namespace

ColumnBatch BatchFromRows(const Row* rows, const uint64_t* sizes, size_t n,
                          size_t num_columns) {
  ColumnBatch batch;
  batch.num_rows = n;
  batch.columns.resize(num_columns);
  for (size_t c = 0; c < num_columns; ++c) {
    FillColumn(rows, n, c, &batch.columns[c]);
  }
  if (sizes != nullptr) {
    batch.row_sizes.assign(sizes, sizes + n);
  } else {
    batch.row_sizes.resize(n);
    for (size_t i = 0; i < n; ++i) {
      batch.row_sizes[i] = RowSizeBytesInline(rows[i]);
    }
  }
  return batch;
}

ColumnBatch BatchFromRowsProjected(const Row* rows, size_t n, const int* keep,
                                   size_t num_keep) {
  ColumnBatch batch;
  batch.num_rows = n;
  batch.columns.resize(num_keep);
  for (size_t c = 0; c < num_keep; ++c) {
    FillColumn(rows, n, static_cast<size_t>(keep[c]), &batch.columns[c]);
  }
  batch.row_sizes.assign(n, 8);  // Row header.
  for (size_t c = 0; c < num_keep; ++c) {
    const size_t src = static_cast<size_t>(keep[c]);
    for (size_t i = 0; i < n; ++i) {
      batch.row_sizes[i] += ValueSizeBytesInline(rows[i][src]);
    }
  }
  return batch;
}

ColumnarDataset FromDataset(const Dataset& data, size_t max_batch_size) {
  ColumnarDataset out(data.columns, data.partitions.size());
  const bool has_sizes = data.HasRowSizes();
  const size_t num_cols = data.columns.size();
  for (size_t p = 0; p < data.partitions.size(); ++p) {
    const auto& rows = data.partitions[p];
    auto& batches = out.partitions[p];
    batches.reserve(rows.size() / max_batch_size + 1);
    for (size_t start = 0; start < rows.size(); start += max_batch_size) {
      const size_t n = std::min(max_batch_size, rows.size() - start);
      batches.push_back(BatchFromRows(
          rows.data() + start,
          has_sizes ? data.row_sizes[p].data() + start : nullptr, n,
          num_cols));
    }
  }
  return out;
}

Dataset ToDataset(ColumnarDataset&& data) {
  Dataset out(std::move(data.columns), data.partitions.size());
  out.row_sizes.resize(data.partitions.size());
  for (size_t p = 0; p < data.partitions.size(); ++p) {
    auto& rows = out.partitions[p];
    auto& sizes = out.row_sizes[p];
    uint64_t total = 0;
    for (const ColumnBatch& b : data.partitions[p]) total += b.num_rows;
    rows.reserve(total);
    sizes.reserve(total);
    for (ColumnBatch& b : data.partitions[p]) {
      for (size_t i = 0; i < b.num_rows; ++i) rows.push_back(b.RowAt(i));
      sizes.insert(sizes.end(), b.row_sizes.begin(), b.row_sizes.end());
      b = ColumnBatch();  // Free as we go: peak memory is one batch.
    }
    data.partitions[p].clear();
  }
  data.partitions.clear();
  return out;
}

}  // namespace dynopt
