#ifndef DYNOPT_EXEC_REFERENCE_KERNELS_H_
#define DYNOPT_EXEC_REFERENCE_KERNELS_H_

#include <vector>

#include "exec/cluster.h"
#include "exec/dataset.h"
#include "exec/metrics.h"

namespace dynopt {
namespace reference {

/// Sequential reference implementations of the executor's data-movement
/// kernels, preserved verbatim from the pre-parallel-exchange executor
/// (single-threaded shuffle, std::unordered_map<uint64_t,
/// std::vector<size_t>> build table, key hashes recomputed on build and
/// probe). They serve two purposes:
///  - oracle: tests/exchange_test.cc asserts the parallel kernels produce
///    identical rows, identical bytes_shuffled and bit-identical
///    simulated_seconds;
///  - baseline: bench/bench_kernels.cc measures the wall-clock speedup of
///    the parallel kernels against these, writing BENCH_kernels.json.
///
/// Both kernels also fill the wall_* fields of ExecMetrics so the benchmark
/// can report a per-kernel-class breakdown for either implementation.

/// Hash-repartitions `input` into `cluster.num_nodes` partitions, metering
/// exactly like JobExecutor::Repartition.
Dataset Repartition(Dataset&& input, const std::vector<int>& key_indices,
                    const ClusterConfig& cluster, ExecMetrics* metrics);

/// Local hash join between aligned partitions, metering exactly like
/// JobExecutor::LocalHashJoin; emits build-row ++ probe-row.
Dataset LocalHashJoin(const Dataset& build, const Dataset& probe,
                      const std::vector<int>& build_keys,
                      const std::vector<int>& probe_keys,
                      const ClusterConfig& cluster, ExecMetrics* metrics);

}  // namespace reference
}  // namespace dynopt

#endif  // DYNOPT_EXEC_REFERENCE_KERNELS_H_
