#ifndef DYNOPT_EXEC_JOB_H_
#define DYNOPT_EXEC_JOB_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "plan/expr.h"

namespace dynopt {

/// Physical join algorithm (Section 3 of the paper).
enum class JoinMethod {
  /// Re-partition both inputs by key hash, then local dynamic hash join.
  kHashShuffle,
  /// Replicate the (small) build input to every partition of the probe
  /// input; local hash join.
  kBroadcast,
  /// Broadcast the (small, filtered) outer input to every partition of a
  /// base dataset carrying a secondary index on the join key; each arriving
  /// row probes the local index.
  kIndexNestedLoop,
};

const char* JoinMethodName(JoinMethod method);

/// A node of a physical job plan — the simulator's analogue of a Hyracks
/// job (Figure 4). Jobs are small trees: scans/filters/projects feeding
/// joins, with the root's output either materialized (Sink, at a
/// re-optimization point) or returned (DistributeResult).
struct PlanNode {
  enum class Kind { kScan, kFilter, kProject, kJoin };

  Kind kind;

  // kScan -------------------------------------------------------------
  std::string table;  ///< Catalog name.
  std::string alias;  ///< Qualification prefix; empty for intermediates,
                      ///< whose stored column names are already qualified.
  bool is_intermediate = false;  ///< Reader of a materialized temp table.
  /// Qualified names to keep (projection pushdown); empty keeps all.
  std::vector<std::string> scan_columns;

  // kFilter -------------------------------------------------------------
  ExprPtr predicate;

  // kProject ------------------------------------------------------------
  std::vector<std::string> project_columns;  ///< Qualified names to keep.

  // kJoin ---------------------------------------------------------------
  JoinMethod method = JoinMethod::kHashShuffle;
  /// keys[i].first comes from children[0] (build/outer side), .second from
  /// children[1] (probe/inner side).
  std::vector<std::pair<std::string, std::string>> keys;

  std::vector<std::unique_ptr<PlanNode>> children;

  // --- Constructors ------------------------------------------------------
  static std::unique_ptr<PlanNode> Scan(std::string table, std::string alias,
                                        bool is_intermediate = false,
                                        std::vector<std::string> columns = {});
  static std::unique_ptr<PlanNode> Filter(std::unique_ptr<PlanNode> input,
                                          ExprPtr predicate);
  static std::unique_ptr<PlanNode> Project(std::unique_ptr<PlanNode> input,
                                           std::vector<std::string> columns);
  static std::unique_ptr<PlanNode> Join(
      JoinMethod method, std::unique_ptr<PlanNode> build,
      std::unique_ptr<PlanNode> probe,
      std::vector<std::pair<std::string, std::string>> keys);

  /// Multi-line plan rendering (join tree with methods), for traces and
  /// the EXPERIMENTS appendix — the analogue of the paper's plan figures.
  std::string ToString(int indent = 0) const;
};

}  // namespace dynopt

#endif  // DYNOPT_EXEC_JOB_H_
