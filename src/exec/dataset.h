#ifndef DYNOPT_EXEC_DATASET_H_
#define DYNOPT_EXEC_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/value.h"

namespace dynopt {

/// A runtime, node-partitioned rowset flowing between physical operators.
/// Columns carry fully qualified names ("ss.ss_item_sk"); intermediate
/// results keep the qualified names of their inputs so reconstruction of
/// the remaining query needs no renaming.
struct Dataset {
  std::vector<std::string> columns;
  std::vector<std::vector<Row>> partitions;

  Dataset() = default;
  Dataset(std::vector<std::string> cols, size_t num_partitions)
      : columns(std::move(cols)), partitions(num_partitions) {}

  /// Slot of a qualified column, or -1.
  int ColumnIndex(const std::string& name) const {
    for (size_t i = 0; i < columns.size(); ++i) {
      if (columns[i] == name) return static_cast<int>(i);
    }
    return -1;
  }

  uint64_t NumRows() const {
    uint64_t n = 0;
    for (const auto& p : partitions) n += p.size();
    return n;
  }

  uint64_t TotalBytes() const {
    uint64_t b = 0;
    for (const auto& p : partitions) {
      for (const auto& row : p) b += RowSizeBytes(row);
    }
    return b;
  }

  /// Largest single-partition byte size (drives max-over-nodes timing).
  uint64_t MaxPartitionBytes() const {
    uint64_t mx = 0;
    for (const auto& p : partitions) {
      uint64_t b = 0;
      for (const auto& row : p) b += RowSizeBytes(row);
      if (b > mx) mx = b;
    }
    return mx;
  }

  /// All rows concatenated (result delivery / tests).
  std::vector<Row> GatherRows() const {
    std::vector<Row> out;
    out.reserve(NumRows());
    for (const auto& p : partitions) out.insert(out.end(), p.begin(), p.end());
    return out;
  }
};

}  // namespace dynopt

#endif  // DYNOPT_EXEC_DATASET_H_
