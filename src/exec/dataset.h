#ifndef DYNOPT_EXEC_DATASET_H_
#define DYNOPT_EXEC_DATASET_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/value.h"

namespace dynopt {

/// Process-wide count of by-name column lookups (Dataset::ColumnIndex and
/// ColumnarDataset::ColumnIndex). A name lookup is an O(columns) string
/// scan, so kernels must resolve every slot once per operator — never
/// inside a row or batch loop. The counter exists for the regression test
/// that pins this invariant: the number of lookups a pipeline performs must
/// be independent of its row count.
inline std::atomic<uint64_t>& ColumnNameLookupCount() {
  static std::atomic<uint64_t> count{0};
  return count;
}

/// Shared linear-scan implementation behind both ColumnIndex methods;
/// increments ColumnNameLookupCount().
inline int LinearColumnIndex(const std::vector<std::string>& columns,
                             const std::string& name) {
  ColumnNameLookupCount().fetch_add(1, std::memory_order_relaxed);
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == name) return static_cast<int>(i);
  }
  return -1;
}

/// A runtime, node-partitioned rowset flowing between physical operators.
/// Columns carry fully qualified names ("ss.ss_item_sk"); intermediate
/// results keep the qualified names of their inputs so reconstruction of
/// the remaining query needs no renaming.
struct Dataset {
  std::vector<std::string> columns;
  std::vector<std::vector<Row>> partitions;

  /// Optional per-row byte sizes, parallel to `partitions`: when non-empty,
  /// row_sizes[p][i] == RowSizeBytes(partitions[p][i]). Producers that
  /// already have every value in cache (scan projection, join emission)
  /// record sizes for ~free; the shuffle then meters network bytes from
  /// this 8-byte-per-row array instead of re-walking each row's payload
  /// (the dominant memory traffic of routing). Operators that cannot
  /// maintain the invariant must leave/clear it empty — consumers validate
  /// shape via HasRowSizes() and fall back to computing sizes.
  std::vector<std::vector<uint64_t>> row_sizes;

  Dataset() = default;
  Dataset(std::vector<std::string> cols, size_t num_partitions)
      : columns(std::move(cols)), partitions(num_partitions) {}

  /// True when row_sizes is present and aligned with partitions.
  bool HasRowSizes() const {
    if (row_sizes.size() != partitions.size()) return false;
    for (size_t p = 0; p < partitions.size(); ++p) {
      if (row_sizes[p].size() != partitions[p].size()) return false;
    }
    return true;
  }

  /// Slot of a qualified column, or -1. O(columns) — resolve once per
  /// operator (the instrumented counter backs a regression test that no
  /// kernel calls this inside a row loop).
  int ColumnIndex(const std::string& name) const {
    return LinearColumnIndex(columns, name);
  }

  uint64_t NumRows() const {
    uint64_t n = 0;
    for (const auto& p : partitions) n += p.size();
    return n;
  }

  uint64_t TotalBytes() const {
    uint64_t b = 0;
    for (const auto& p : partitions) {
      for (const auto& row : p) b += RowSizeBytes(row);
    }
    return b;
  }

  /// Largest single-partition byte size (drives max-over-nodes timing).
  uint64_t MaxPartitionBytes() const {
    uint64_t mx = 0;
    for (const auto& p : partitions) {
      uint64_t b = 0;
      for (const auto& row : p) b += RowSizeBytes(row);
      if (b > mx) mx = b;
    }
    return mx;
  }

  /// All rows concatenated (result delivery / tests).
  std::vector<Row> GatherRows() const {
    std::vector<Row> out;
    out.reserve(NumRows());
    for (const auto& p : partitions) out.insert(out.end(), p.begin(), p.end());
    return out;
  }
};

}  // namespace dynopt

#endif  // DYNOPT_EXEC_DATASET_H_
