#ifndef DYNOPT_EXEC_BATCH_H_
#define DYNOPT_EXEC_BATCH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/value.h"
#include "exec/dataset.h"
#include "exec/row_kernels.h"

namespace dynopt {

/// Columnar batch representation for the vectorized execution engine.
///
/// A ColumnBatch holds up to `max_batch_size` rows as typed column vectors:
/// int64, double and bool columns are flat arrays; string columns are
/// dictionary-encoded (codes into a per-column StringDict that caches each
/// entry's hash and byte size, so hashing/sizing a string value is an array
/// load instead of an FNV walk); columns whose values mix types — possible
/// because rows are dynamically typed — fall back to a Value-per-row
/// representation that round-trips exactly.
///
/// Row `Dataset` remains the storage and materialization boundary:
/// FromDataset/ToDataset convert losslessly, and every batch carries the
/// same per-row byte sizes (`row_sizes`) the row engine annotates, computed
/// from column widths at batch creation, so network/disk metering is
/// byte-for-byte identical on both paths.

/// Physical layout of one column vector.
enum class ColumnKind : uint8_t {
  kInt64,   ///< Flat int64 array (+ optional validity).
  kDouble,  ///< Flat double array (+ optional validity).
  kBool,    ///< Flat byte array, 0/1 (+ optional validity).
  kString,  ///< Dictionary codes into a shared StringDict (+ validity).
  kValues,  ///< Mixed-type fallback: one Value per row (exact round-trip).
};

/// Append-only string dictionary shared by one or more string columns
/// (std::shared_ptr). Caches each entry's key hash (HashString) and cost-
/// model byte size (16 + length), so kernels never re-walk string payloads.
/// Interning uses an open-addressing index over the cached hashes.
class StringDict {
 public:
  size_t size() const { return entries_.size(); }
  const std::string& entry(uint32_t code) const { return entries_[code]; }
  uint64_t hash(uint32_t code) const { return hashes_[code]; }
  uint64_t size_bytes(uint32_t code) const { return sizes_[code]; }

  /// Code of `s`, inserting it if absent.
  uint32_t Intern(const std::string& s) { return Intern(s, HashString(s)); }

  /// Intern with a precomputed HashString(s) (dictionary merges reuse the
  /// source dictionary's cached hash).
  uint32_t Intern(const std::string& s, uint64_t h) {
    if (slots_.empty()) Rehash(16);
    size_t b = static_cast<size_t>(h) & slot_mask_;
    while (slots_[b] != kEmpty) {
      const uint32_t code = slots_[b];
      if (hashes_[code] == h && entries_[code] == s) return code;
      b = (b + 1) & slot_mask_;
    }
    const uint32_t code = static_cast<uint32_t>(entries_.size());
    entries_.push_back(s);
    hashes_.push_back(h);
    sizes_.push_back(16 + s.size());
    slots_[b] = code;
    if (entries_.size() * 2 >= slots_.size()) Rehash(slots_.size() * 2);
    return code;
  }

  /// Code of `s` if present, kNotFound otherwise (no insertion) — used to
  /// turn an equality predicate against a constant into a code compare.
  static constexpr uint32_t kNotFound = 0xffffffffu;
  uint32_t Find(const std::string& s) const {
    if (slots_.empty()) return kNotFound;
    const uint64_t h = HashString(s);
    size_t b = static_cast<size_t>(h) & slot_mask_;
    while (slots_[b] != kEmpty) {
      const uint32_t code = slots_[b];
      if (hashes_[code] == h && entries_[code] == s) return code;
      b = (b + 1) & slot_mask_;
    }
    return kNotFound;
  }

 private:
  static constexpr uint32_t kEmpty = 0xffffffffu;

  void Rehash(size_t cap) {
    slots_.assign(cap, kEmpty);
    slot_mask_ = cap - 1;
    for (uint32_t code = 0; code < entries_.size(); ++code) {
      size_t b = static_cast<size_t>(hashes_[code]) & slot_mask_;
      while (slots_[b] != kEmpty) b = (b + 1) & slot_mask_;
      slots_[b] = code;
    }
  }

  std::vector<std::string> entries_;
  std::vector<uint64_t> hashes_;
  std::vector<uint64_t> sizes_;
  std::vector<uint32_t> slots_;
  size_t slot_mask_ = 0;
};

/// One typed column of a batch. Exactly one payload vector (per `kind`) is
/// populated; `validity` is empty when every row is non-NULL, otherwise one
/// byte per row (1 = valid). kValues columns encode NULL in the Value
/// itself and keep validity empty.
struct ColumnVector {
  ColumnKind kind = ColumnKind::kInt64;
  std::vector<int64_t> i64;
  std::vector<double> f64;
  std::vector<uint8_t> b8;
  std::vector<uint32_t> codes;
  std::shared_ptr<StringDict> dict;
  std::vector<Value> values;
  std::vector<uint8_t> validity;

  size_t size() const {
    switch (kind) {
      case ColumnKind::kInt64:
        return i64.size();
      case ColumnKind::kDouble:
        return f64.size();
      case ColumnKind::kBool:
        return b8.size();
      case ColumnKind::kString:
        return codes.size();
      case ColumnKind::kValues:
        return values.size();
    }
    return 0;
  }

  bool IsNullAt(size_t i) const {
    if (kind == ColumnKind::kValues) return values[i].is_null();
    return !validity.empty() && validity[i] == 0;
  }

  /// Materializes row i as a Value (conversion boundary / rare fallbacks;
  /// hot kernels use the typed arrays directly).
  Value ValueAt(size_t i) const {
    if (IsNullAt(i)) return Value::Null();
    switch (kind) {
      case ColumnKind::kInt64:
        return Value(i64[i]);
      case ColumnKind::kDouble:
        return Value(f64[i]);
      case ColumnKind::kBool:
        return Value(b8[i] != 0);
      case ColumnKind::kString:
        return Value(dict->entry(codes[i]));
      case ColumnKind::kValues:
        return values[i];
    }
    return Value::Null();
  }

  /// Hash of row i's value; bit-identical to ValueHashInline(ValueAt(i)).
  uint64_t HashAt(size_t i) const {
    if (IsNullAt(i)) return 0x9ae16a3b2f90404fULL;
    switch (kind) {
      case ColumnKind::kInt64:
        return Mix64(static_cast<uint64_t>(i64[i]));
      case ColumnKind::kDouble:
        return HashDoubleValue(f64[i]);
      case ColumnKind::kBool:
        return Mix64(b8[i] != 0 ? 1 : 0);
      case ColumnKind::kString:
        return dict->hash(codes[i]);
      case ColumnKind::kValues:
        return ValueHashInline(values[i]);
    }
    return 0;
  }

  /// Cost-model byte size of row i's value; identical to
  /// ValueSizeBytesInline(ValueAt(i)).
  uint64_t SizeAt(size_t i) const {
    if (IsNullAt(i)) return 1;
    switch (kind) {
      case ColumnKind::kInt64:
      case ColumnKind::kDouble:
        return 8;
      case ColumnKind::kBool:
        return 1;
      case ColumnKind::kString:
        return dict->size_bytes(codes[i]);
      case ColumnKind::kValues:
        return ValueSizeBytesInline(values[i]);
    }
    return 1;
  }

  /// Hash of a double under the engine's cross-type key rule (integral
  /// doubles hash like the equal int64) — the kDouble leg of
  /// ValueHashInline.
  static uint64_t HashDoubleValue(double d);
};

/// A fixed-capacity horizontal slice of a partition: `num_rows` rows across
/// `columns.size()` column vectors, plus the per-row cost-model byte sizes
/// (8-byte row header + value sizes — the same annotation the row engine's
/// `Dataset::row_sizes` carries), always computed at batch creation.
struct ColumnBatch {
  size_t num_rows = 0;
  std::vector<ColumnVector> columns;
  std::vector<uint64_t> row_sizes;

  Row RowAt(size_t i) const {
    Row row;
    row.reserve(columns.size());
    for (const ColumnVector& col : columns) row.push_back(col.ValueAt(i));
    return row;
  }
};

/// A node-partitioned batch collection — the columnar analogue of Dataset.
/// Each partition is a sequence of batches; batch boundaries within a
/// partition carry no semantics (concatenation order defines row order).
struct ColumnarDataset {
  std::vector<std::string> columns;
  std::vector<std::vector<ColumnBatch>> partitions;

  ColumnarDataset() = default;
  ColumnarDataset(std::vector<std::string> cols, size_t num_partitions)
      : columns(std::move(cols)), partitions(num_partitions) {}

  /// Slot of a qualified column, or -1. Funnels through the same
  /// instrumented lookup counter as Dataset::ColumnIndex: kernels must
  /// resolve slots once per operator, never inside a batch/row loop.
  int ColumnIndex(const std::string& name) const {
    return LinearColumnIndex(columns, name);
  }

  uint64_t NumRows() const {
    uint64_t n = 0;
    for (const auto& p : partitions) {
      for (const ColumnBatch& b : p) n += b.num_rows;
    }
    return n;
  }

  uint64_t PartitionRows(size_t p) const {
    uint64_t n = 0;
    for (const ColumnBatch& b : partitions[p]) n += b.num_rows;
    return n;
  }
};

/// Builds one batch from `n` rows starting at `rows`, inferring one
/// ColumnKind per column (kValues when a column mixes value types). When
/// `sizes` is non-null it must hold RowSizeBytes for each row (a producer's
/// annotation) and is copied; otherwise sizes are computed from the values.
ColumnBatch BatchFromRows(const Row* rows, const uint64_t* sizes, size_t n,
                          size_t num_columns);

/// Builds one batch holding only the `num_keep` source column slots in
/// `keep`, in that order (the scan's projection pushdown, straight into
/// columnar form). row_sizes are the *projected* sizes: 8-byte row header
/// plus each kept value's cost-model size — exactly the annotation the row
/// scan emits.
ColumnBatch BatchFromRowsProjected(const Row* rows, size_t n, const int* keep,
                                   size_t num_keep);

/// Splits every partition of `data` into batches of at most
/// `max_batch_size` rows. Row order and the row_sizes annotation (computed
/// when absent) are preserved exactly.
ColumnarDataset FromDataset(const Dataset& data, size_t max_batch_size);

/// Converts back to a row Dataset (the materialization boundary), emitting
/// the row_sizes annotation from the batches' sizes. Exact inverse of
/// FromDataset up to batch boundaries.
Dataset ToDataset(ColumnarDataset&& data);

}  // namespace dynopt

#endif  // DYNOPT_EXEC_BATCH_H_
