#include "opt/plan_builder.h"

#include <algorithm>

namespace dynopt {

namespace {

void AddUnique(std::vector<std::string>* out, const std::string& name) {
  if (std::find(out->begin(), out->end(), name) == out->end()) {
    out->push_back(name);
  }
}

}  // namespace

std::vector<std::string> RequiredColumns(const QuerySpec& spec,
                                         const std::string& alias,
                                         bool include_predicate_columns) {
  const TableRef* ref = spec.FindRef(alias);
  std::vector<std::string> out;
  if (ref == nullptr) return out;
  for (const auto& proj : spec.projections) {
    if (ref->Provides(proj)) AddUnique(&out, proj);
  }
  for (const auto& edge : spec.joins) {
    if (!edge.Involves(alias)) continue;
    for (const auto& key : edge.KeysOf(alias)) AddUnique(&out, key);
  }
  if (include_predicate_columns) {
    for (const auto& pred : spec.PredicatesFor(alias)) {
      std::vector<const ColumnRefExpr*> refs;
      pred->CollectColumns(&refs);
      for (const ColumnRefExpr* col : refs) AddUnique(&out, col->Qualified());
    }
  }
  return out;
}

Result<std::unique_ptr<PlanNode>> BuildLeafPlan(const QuerySpec& spec,
                                                const std::string& alias) {
  const TableRef* ref = spec.FindRef(alias);
  if (ref == nullptr) {
    return Status::InvalidArgument("unknown alias " + alias);
  }
  std::vector<std::string> columns = RequiredColumns(spec, alias, true);
  std::vector<std::string> post_filter = RequiredColumns(spec, alias, false);
  auto scan = PlanNode::Scan(ref->table, alias, ref->is_intermediate,
                             std::move(columns));
  ExprPtr predicate = CombineConjuncts(spec.PredicatesFor(alias));
  if (predicate == nullptr) return scan;
  auto filtered = PlanNode::Filter(std::move(scan), std::move(predicate));
  // Drop predicate-only columns before the row enters joins/shuffles.
  if (post_filter.size() < filtered->children[0]->scan_columns.size()) {
    return PlanNode::Project(std::move(filtered), std::move(post_filter));
  }
  return filtered;
}

Result<std::vector<std::pair<std::string, std::string>>> KeysBetween(
    const QuerySpec& spec, const std::set<std::string>& left,
    const std::set<std::string>& right) {
  std::vector<std::pair<std::string, std::string>> keys;
  for (const auto& edge : spec.joins) {
    bool l_in_left = left.count(edge.left_alias) > 0;
    bool l_in_right = right.count(edge.left_alias) > 0;
    bool r_in_left = left.count(edge.right_alias) > 0;
    bool r_in_right = right.count(edge.right_alias) > 0;
    if (l_in_left && r_in_right) {
      keys.insert(keys.end(), edge.keys.begin(), edge.keys.end());
    } else if (l_in_right && r_in_left) {
      for (const auto& [l, r] : edge.keys) keys.emplace_back(r, l);
    }
  }
  if (keys.empty()) {
    return Status::InvalidArgument(
        "no join predicate between the two plan inputs (cross product)");
  }
  return keys;
}

namespace {

/// Columns a subtree covering `aliases` must emit: the query's projections
/// provided by a member, plus the keys of every join edge crossing the
/// subtree boundary. Everything else can be pruned before the next shuffle.
std::vector<std::string> ColumnsNeededAbove(
    const QuerySpec& spec, const std::set<std::string>& aliases) {
  std::vector<std::string> out;
  for (const auto& proj : spec.projections) {
    const std::string provider = spec.ProviderOf(proj);
    if (aliases.count(provider) > 0) AddUnique(&out, proj);
  }
  for (const auto& edge : spec.joins) {
    bool l_in = aliases.count(edge.left_alias) > 0;
    bool r_in = aliases.count(edge.right_alias) > 0;
    if (l_in == r_in) continue;  // Internal or fully external edge.
    const std::string& inside = l_in ? edge.left_alias : edge.right_alias;
    for (const auto& key : edge.KeysOf(inside)) AddUnique(&out, key);
  }
  return out;
}

}  // namespace

Result<std::unique_ptr<PlanNode>> BuildPhysicalPlanNode(const QuerySpec& spec,
                                                        const JoinTree& tree) {
  if (tree.IsLeaf()) return BuildLeafPlan(spec, tree.alias);

  DYNOPT_ASSIGN_OR_RETURN(std::unique_ptr<PlanNode> build,
                          BuildPhysicalPlanNode(spec, *tree.left));

  DYNOPT_ASSIGN_OR_RETURN(auto keys,
                          KeysBetween(spec, tree.left->Aliases(),
                                      tree.right->Aliases()));

  std::unique_ptr<PlanNode> probe;
  if (tree.method == JoinMethod::kIndexNestedLoop) {
    // The INLJ inner must stay a bare base-table scan: the index lookup
    // replaces the scan+filter pipeline.
    if (!tree.right->IsLeaf()) {
      return Status::InvalidArgument(
          "indexed nested loop join requires a base-table leaf as inner");
    }
    const TableRef* inner_ref = spec.FindRef(tree.right->alias);
    if (inner_ref == nullptr || inner_ref->is_intermediate) {
      return Status::InvalidArgument(
          "indexed nested loop join inner must be a base dataset");
    }
    if (!spec.PredicatesFor(tree.right->alias).empty()) {
      return Status::InvalidArgument(
          "indexed nested loop join inner must not carry local predicates");
    }
    probe = PlanNode::Scan(inner_ref->table, tree.right->alias, false,
                           RequiredColumns(spec, tree.right->alias, false));
  } else {
    DYNOPT_ASSIGN_OR_RETURN(probe, BuildPhysicalPlanNode(spec, *tree.right));
  }
  auto join = PlanNode::Join(tree.method, std::move(build), std::move(probe),
                             std::move(keys));
  // Prune columns no longer needed above this join so subsequent shuffles
  // and broadcasts do not carry dead payload (a pipelined engine's pushed
  // projections do the same).
  std::set<std::string> covered = tree.Aliases();
  std::vector<std::string> needed = ColumnsNeededAbove(spec, covered);
  if (needed.empty()) return join;
  return PlanNode::Project(std::move(join), std::move(needed));
}

Result<std::unique_ptr<PlanNode>> BuildPhysicalPlan(const QuerySpec& spec,
                                                    const JoinTree& tree,
                                                    bool project_result) {
  DYNOPT_ASSIGN_OR_RETURN(std::unique_ptr<PlanNode> root,
                          BuildPhysicalPlanNode(spec, tree));
  if (project_result && !spec.projections.empty()) {
    return PlanNode::Project(std::move(root), spec.projections);
  }
  return root;
}

}  // namespace dynopt
