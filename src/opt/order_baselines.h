#ifndef DYNOPT_OPT_ORDER_BASELINES_H_
#define DYNOPT_OPT_ORDER_BASELINES_H_

#include <memory>
#include <string>

#include "exec/engine.h"
#include "opt/optimizer.h"
#include "opt/planner.h"

namespace dynopt {

/// The paper's *worst-order* baseline: "a right-deep tree plan that
/// schedules the joins in decreasing order of join result sizes", hash
/// joins only (what AsterixDB's default rule-based optimizer does for an
/// adversarial FROM-clause order). Join result sizes are estimated with the
/// full statistics, i.e. the worst order is chosen knowingly — this is the
/// lower bound of the comparison.
class WorstOrderOptimizer : public Optimizer {
 public:
  explicit WorstOrderOptimizer(Engine* engine,
                               const PlannerOptions& options = PlannerOptions());

  std::string name() const override { return "worst-order"; }
  Result<OptimizerRunResult> Run(const QuerySpec& query) override;

 private:
  Engine* engine_;
  PlannerOptions options_;
};

/// The paper's *best-order* baseline: the user writes the FROM clause in
/// the optimal order the dynamic approach would discover and adds broadcast
/// (or INL) hints, so AsterixDB executes the optimal plan as one pipelined
/// job without any re-optimization overhead. Construct it with the join
/// tree recorded by a prior DynamicOptimizer run.
class BestOrderOptimizer : public Optimizer {
 public:
  BestOrderOptimizer(Engine* engine, std::shared_ptr<const JoinTree> hint);

  std::string name() const override { return "best-order"; }
  Result<OptimizerRunResult> Run(const QuerySpec& query) override;

 private:
  Engine* engine_;
  std::shared_ptr<const JoinTree> hint_;
};

}  // namespace dynopt

#endif  // DYNOPT_OPT_ORDER_BASELINES_H_
