#ifndef DYNOPT_OPT_RECONSTRUCTION_H_
#define DYNOPT_OPT_RECONSTRUCTION_H_

#include <string>
#include <vector>

#include "plan/query_spec.h"

namespace dynopt {

/// Query Reconstruction (Section 5.4 / Algorithm 1 lines 35-39).
///
/// After a re-optimization point materializes something, the remaining
/// query is rewritten around the new intermediate dataset. Intermediates
/// keep the original qualified column names of their inputs, so joins and
/// projections only need their provider re-pointed — no renaming.

/// Rewrites `spec` after the local predicates of `alias` were pushed down
/// and executed into temp table `temp_name` (which provides exactly
/// `provided` columns): the ref becomes an intermediate, its predicates are
/// dropped (already applied), and it is marked filtered.
QuerySpec ReplaceWithFiltered(const QuerySpec& spec, const std::string& alias,
                              const std::string& temp_name,
                              std::vector<std::string> provided);

/// Rewrites `spec` after join `executed` (between left_alias/right_alias)
/// was run and materialized into `temp_name` under `new_alias`: both joined
/// refs disappear, the intermediate takes their place, the executed edge is
/// removed and every other edge touching the joined refs is re-pointed at
/// `new_alias` (then joins are re-normalized, merging edges that now
/// connect the same pair).
QuerySpec ReconstructAfterJoin(const QuerySpec& spec, const JoinEdge& executed,
                               const std::string& temp_name,
                               const std::string& new_alias,
                               std::vector<std::string> provided);

}  // namespace dynopt

#endif  // DYNOPT_OPT_RECONSTRUCTION_H_
