#include "opt/stats_view.h"

namespace dynopt {

const TableStats* StatsView::TableStatsFor(const std::string& alias) const {
  if (alias_overrides_ != nullptr) {
    auto it = alias_overrides_->find(alias);
    if (it != alias_overrides_->end()) return &it->second;
  }
  const TableRef* ref = spec_->FindRef(alias);
  if (ref == nullptr || stats_ == nullptr) return nullptr;
  return stats_->Get(ref->table);
}

double StatsView::RowCount(const std::string& alias) const {
  if (const TableStats* ts = TableStatsFor(alias)) {
    return static_cast<double>(ts->row_count);
  }
  const TableRef* ref = spec_->FindRef(alias);
  if (ref != nullptr && catalog_ != nullptr) {
    auto table = catalog_->GetTable(ref->table);
    if (table.ok()) return static_cast<double>(table.value()->NumRows());
  }
  return 0.0;
}

double StatsView::TotalBytes(const std::string& alias) const {
  if (const TableStats* ts = TableStatsFor(alias)) {
    if (ts->total_bytes > 0) return static_cast<double>(ts->total_bytes);
  }
  const TableRef* ref = spec_->FindRef(alias);
  if (ref != nullptr && catalog_ != nullptr) {
    auto table = catalog_->GetTable(ref->table);
    if (table.ok()) return static_cast<double>(table.value()->TotalBytes());
  }
  return 0.0;
}

const ColumnStatsSnapshot* StatsView::Column(const std::string& alias,
                                             const std::string& name) const {
  const TableStats* ts = TableStatsFor(alias);
  if (ts == nullptr) return nullptr;
  const TableRef* ref = spec_->FindRef(alias);
  if (ref == nullptr) return nullptr;
  if (ref->is_intermediate) {
    // Intermediates store stats under the qualified name.
    if (const ColumnStatsSnapshot* col = ts->Column(name)) return col;
    // Fall back to the originating base table's load-time sketches (column
    // names of intermediates keep their original "alias.column" form): the
    // paper's "statistics obtained up to that point" still include the
    // ingestion-time statistics.
    size_t dot = name.find('.');
    if (dot != std::string::npos && stats_ != nullptr) {
      auto it = spec_->base_tables.find(name.substr(0, dot));
      if (it != spec_->base_tables.end()) {
        if (const TableStats* base = stats_->Get(it->second)) {
          return base->Column(name.substr(dot + 1));
        }
      }
    }
    return nullptr;
  }
  // Base tables store stats under the unqualified column name.
  const std::string prefix = alias + ".";
  if (name.rfind(prefix, 0) == 0) {
    return ts->Column(name.substr(prefix.size()));
  }
  return ts->Column(name);
}

}  // namespace dynopt
