#include "opt/critical_path.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace dynopt {

namespace {

struct SpanNode {
  const TraceEvent* event = nullptr;
  double own_sim = -1;  // parsed "sim_seconds" arg; <0 when absent
  std::vector<size_t> children;
};

double ParseSimSeconds(const TraceEvent& e) {
  for (const auto& [key, value] : e.args) {
    if (key == "sim_seconds") {
      // Args are pre-encoded JSON fragments; numbers are bare.
      return std::strtod(value.c_str(), nullptr);
    }
  }
  return -1;
}

std::string FormatSeconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fs", s);
  return buf;
}

/// Weight of node `i`: its own sim_seconds when metered, else the sum of
/// its children's weights (stage spans aggregate the jobs under them).
double Weight(const std::vector<SpanNode>& nodes, size_t i) {
  if (nodes[i].own_sim >= 0) return nodes[i].own_sim;
  double sum = 0;
  for (size_t c : nodes[i].children) sum += Weight(nodes, c);
  return sum;
}

}  // namespace

std::string CriticalPath(const std::vector<TraceEvent>& events) {
  if (events.empty()) return "";
  std::vector<SpanNode> nodes(events.size());
  std::vector<size_t> roots;
  // Events arrive sorted by start_ns (Tracer::Drain's contract). Parent of
  // a span = the most recently started span on the same thread, one depth
  // level up, whose interval contains it.
  // open_by_tid_depth[tid][depth] = index of that candidate.
  std::vector<std::vector<long>> open(1);
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    nodes[i].event = &e;
    nodes[i].own_sim = ParseSimSeconds(e);
    if (e.tid >= open.size()) open.resize(e.tid + 1);
    auto& stack = open[e.tid];
    if (e.depth >= static_cast<int>(stack.size())) {
      stack.resize(static_cast<size_t>(e.depth) + 1, -1);
    }
    stack[static_cast<size_t>(e.depth)] = static_cast<long>(i);
    long parent = -1;
    if (e.depth > 0) {
      const long cand = stack[static_cast<size_t>(e.depth) - 1];
      if (cand >= 0) {
        const TraceEvent& p = events[static_cast<size_t>(cand)];
        if (p.start_ns <= e.start_ns &&
            e.start_ns + e.dur_ns <= p.start_ns + p.dur_ns) {
          parent = cand;
        }
      }
    }
    if (parent >= 0) {
      nodes[static_cast<size_t>(parent)].children.push_back(i);
    } else {
      roots.push_back(i);
    }
  }
  // Heaviest root, then descend the heaviest child while weight remains.
  size_t best = 0;
  double best_w = -1;
  for (size_t r : roots) {
    const double w = Weight(nodes, r);
    if (w > best_w) {
      best_w = w;
      best = r;
    }
  }
  if (best_w <= 0) return "";
  std::string path;
  size_t cur = best;
  while (true) {
    if (!path.empty()) path += " -> ";
    path += nodes[cur].event->name;
    path += " (" + FormatSeconds(Weight(nodes, cur)) + ")";
    size_t next = cur;
    double next_w = 0;
    for (size_t c : nodes[cur].children) {
      const double w = Weight(nodes, c);
      if (w > next_w) {
        next_w = w;
        next = c;
      }
    }
    if (next == cur || next_w <= 0) break;
    cur = next;
  }
  return path;
}

}  // namespace dynopt
