#include "opt/explain.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>

#include "opt/cardinality.h"
#include "opt/plan_builder.h"
#include "opt/static_optimizer.h"
#include "opt/stats_view.h"

namespace dynopt {

namespace {

std::string HumanBytes(double bytes) {
  const char* const units[] = {"B", "KB", "MB", "GB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 3) {
    bytes /= 1024.0;
    ++unit;
  }
  std::ostringstream os;
  os.precision(bytes < 10 ? 2 : 1);
  os << std::fixed << bytes << units[unit];
  return os.str();
}

/// Estimated (rows, bytes) of a subtree: leaves from the estimator's
/// filtered sizes, joins via formula (1) applied bottom-up.
struct SubtreeEstimate {
  double rows = 0;
  double bytes = 0;
};

/// Renders " actual_rows=N q_error=Q" when the run recorded an actual
/// cardinality for this subtree (keyed by SubtreeKey of its alias set).
void AppendActual(const std::map<std::string, uint64_t>* actuals,
                  const std::set<std::string>& aliases, double est_rows,
                  std::ostringstream* out) {
  if (actuals == nullptr) return;
  auto it = actuals->find(SubtreeKey(aliases));
  if (it == actuals->end()) return;
  double actual = static_cast<double>(it->second);
  double est = std::max(est_rows, 1.0);
  double act = std::max(actual, 1.0);
  char q[32];
  std::snprintf(q, sizeof(q), "%.2f", std::max(est / act, act / est));
  *out << " actual_rows=" << it->second << " q_error=" << q;
}

SubtreeEstimate Annotate(const QuerySpec& spec,
                         const CardinalityEstimator& estimator,
                         const JoinTree& tree, int indent,
                         std::ostringstream* out,
                         const std::map<std::string, uint64_t>* actuals =
                             nullptr) {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  if (tree.IsLeaf()) {
    SubtreeEstimate est;
    est.rows = estimator.EstimateFilteredSize(tree.alias);
    est.bytes = estimator.EstimateFilteredBytes(tree.alias);
    const TableRef* ref = spec.FindRef(tree.alias);
    bool filtered = ref != nullptr &&
                    (ref->filtered || !spec.PredicatesFor(tree.alias).empty());
    *out << pad << "Scan " << tree.alias;
    if (ref != nullptr && ref->alias != ref->table) {
      *out << " [" << ref->table << "]";
    }
    if (filtered) *out << " (filtered)";
    *out << " est_rows=" << std::llround(est.rows)
         << " est_bytes=" << HumanBytes(est.bytes);
    AppendActual(actuals, {tree.alias}, est.rows, out);
    *out << "\n";
    return est;
  }

  // Header first, children after: reserve the header line via a separate
  // stream so estimates (computed bottom-up) can be printed top-down.
  std::ostringstream left_out, right_out;
  SubtreeEstimate left =
      Annotate(spec, estimator, *tree.left, indent + 1, &left_out, actuals);
  SubtreeEstimate right =
      Annotate(spec, estimator, *tree.right, indent + 1, &right_out, actuals);

  // Result estimate: pseudo-edge over the crossing keys, sizes overridden
  // by the child estimates.
  SubtreeEstimate est;
  auto keys = KeysBetween(spec, tree.left->Aliases(), tree.right->Aliases());
  if (keys.ok()) {
    // Build a transient edge anchored at any pair of member aliases.
    JoinEdge edge;
    edge.left_alias = *tree.left->Aliases().begin();
    edge.right_alias = *tree.right->Aliases().begin();
    edge.keys = keys.value();
    est.rows = estimator.EstimateJoinCardinality(edge, left.rows, right.rows);
  } else {
    est.rows = left.rows * right.rows;
  }
  double left_width = left.rows > 0 ? left.bytes / left.rows : 64.0;
  double right_width = right.rows > 0 ? right.bytes / right.rows : 64.0;
  est.bytes = est.rows * (left_width + right_width);

  *out << pad << "Join[" << JoinMethodName(tree.method) << "]";
  if (keys.ok()) {
    *out << " on ";
    for (size_t i = 0; i < keys->size(); ++i) {
      if (i > 0) *out << " AND ";
      *out << (*keys)[i].first << "=" << (*keys)[i].second;
    }
  }
  *out << " est_rows=" << std::llround(est.rows)
       << " est_bytes=" << HumanBytes(est.bytes);
  AppendActual(actuals, tree.Aliases(), est.rows, out);
  *out << "\n" << left_out.str() << right_out.str();
  return est;
}

void AppendPostProcessing(const QuerySpec& spec, std::ostringstream* out) {
  if (!spec.HasPostProcessing()) return;
  if (!spec.aggregates.empty() || !spec.group_by.empty()) {
    *out << "then GROUP BY (" << spec.group_by.size() << " keys, "
         << spec.aggregates.size() << " aggregates)\n";
  }
  if (!spec.order_by.empty()) {
    *out << "then ORDER BY (" << spec.order_by.size() << " keys)\n";
  }
  if (spec.limit >= 0) *out << "then LIMIT " << spec.limit << "\n";
}

}  // namespace

Result<std::string> ExplainTree(Engine* engine, const QuerySpec& spec,
                                const JoinTree& tree) {
  StatsView view(&spec, &engine->stats(), &engine->catalog());
  CardinalityEstimator estimator(&view);
  std::ostringstream out;
  Annotate(spec, estimator, tree, 0, &out);
  AppendPostProcessing(spec, &out);
  return out.str();
}

Result<double> EstimateTreeCardinality(Engine* engine, const QuerySpec& spec,
                                       const JoinTree& tree) {
  StatsView view(&spec, &engine->stats(), &engine->catalog());
  CardinalityEstimator estimator(&view);
  std::ostringstream sink;
  return Annotate(spec, estimator, tree, 0, &sink).rows;
}

Result<std::string> ExplainAnalyze(Engine* engine, const QuerySpec& query,
                                   const OptimizerRunResult& run) {
  if (run.profile == nullptr) {
    return Status::InvalidArgument(
        "EXPLAIN ANALYZE needs a run profile (produced by every optimizer "
        "Run())");
  }
  QuerySpec spec = query;
  spec.NormalizeJoins();
  DYNOPT_RETURN_IF_ERROR(spec.Validate());
  const QueryProfile& profile = *run.profile;
  std::ostringstream out;
  out << "EXPLAIN ANALYZE (" << profile.optimizer << ")\n";

  StatsView view(&spec, &engine->stats(), &engine->catalog());
  CardinalityEstimator estimator(&view);
  std::shared_ptr<const JoinTree> tree = run.join_tree;
  if (tree == nullptr && spec.tables.size() == 1) {
    tree = JoinTree::Leaf(spec.tables[0].alias);
  }
  if (tree != nullptr) {
    Annotate(spec, estimator, *tree, 0, &out, &profile.subtree_actual_rows);
  }
  AppendPostProcessing(spec, &out);

  const DecisionLog& log = profile.decisions;
  out << "-- decisions: " << log.decisions().size() << " ("
      << log.NumWithActuals() << " with actuals, max q_error ";
  {
    char q[32];
    std::snprintf(q, sizeof(q), "%.2f", log.MaxQError());
    out << q;
  }
  out << ") --\n" << log.ToString();

  // Deterministic execution counters only: host wall-clock and
  // queue-wait times vary run to run and would break golden comparisons.
  const ExecMetrics& m = profile.metrics;
  out << "-- counters --\n"
      << "rows_out=" << m.rows_out << " tuples=" << m.tuples_processed
      << " jobs=" << m.num_jobs << " reopts=" << m.num_reopt_points << "\n"
      << "scanned=" << m.bytes_scanned << "B shuffled=" << m.bytes_shuffled
      << "B broadcast=" << m.bytes_broadcast
      << "B materialized=" << m.bytes_materialized
      << "B reread=" << m.bytes_intermediate_read << "B\n"
      << "sim_s=" << m.simulated_seconds << " reopt_s=" << m.reopt_seconds
      << " stats_s=" << m.stats_seconds
      << " recovery_s=" << m.recovery_seconds << "\n"
      << "retries=" << m.num_retries
      << " speculative=" << m.speculative_executions
      << " corrupted_blocks=" << m.corrupted_blocks
      << " spilled=" << m.spilled_bytes << "B spill_parts="
      << m.spill_partitions << " peak_mem=" << m.peak_memory_bytes << "B\n";
  // Predicate-transfer line only when the feature did something: existing
  // goldens (knob off) stay byte-identical.
  if (m.pt_filter_bytes > 0 || m.pt_pruned_rows > 0) {
    out << "pt_filter=" << m.pt_filter_bytes
        << "B pt_pruned_rows=" << m.pt_pruned_rows
        << " pt_pruned=" << m.pt_pruned_bytes << "B\n";
  }
  // Introspection-plane sections, only when IntrospectionRun filled them
  // (introspection.enabled + tracing/archive produced something): default
  // runs leave these empty and the historical rendering byte-identical.
  if (!profile.critical_path.empty()) {
    out << "-- critical path --\n" << profile.critical_path << "\n";
  }
  if (!profile.regression_note.empty()) {
    out << "-- regression --\n" << profile.regression_note << "\n";
  }
  return out.str();
}

Result<std::string> ExplainStatic(Engine* engine, const QuerySpec& query) {
  QuerySpec spec = query;
  spec.NormalizeJoins();
  DYNOPT_RETURN_IF_ERROR(spec.Validate());
  if (spec.tables.size() == 1) {
    return ExplainTree(engine, spec, *JoinTree::Leaf(spec.tables[0].alias));
  }
  StatsView view(&spec, &engine->stats(), &engine->catalog());
  DYNOPT_ASSIGN_OR_RETURN(
      std::shared_ptr<const JoinTree> tree,
      StaticCostBasedOptimizer::PlanWithDp(spec, view, engine->cluster(),
                                           PlannerOptions()));
  return ExplainTree(engine, spec, *tree);
}

}  // namespace dynopt
