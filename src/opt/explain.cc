#include "opt/explain.h"

#include <cmath>
#include <set>
#include <sstream>

#include "opt/cardinality.h"
#include "opt/plan_builder.h"
#include "opt/static_optimizer.h"
#include "opt/stats_view.h"

namespace dynopt {

namespace {

std::string HumanBytes(double bytes) {
  const char* const units[] = {"B", "KB", "MB", "GB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 3) {
    bytes /= 1024.0;
    ++unit;
  }
  std::ostringstream os;
  os.precision(bytes < 10 ? 2 : 1);
  os << std::fixed << bytes << units[unit];
  return os.str();
}

/// Estimated (rows, bytes) of a subtree: leaves from the estimator's
/// filtered sizes, joins via formula (1) applied bottom-up.
struct SubtreeEstimate {
  double rows = 0;
  double bytes = 0;
};

SubtreeEstimate Annotate(const QuerySpec& spec,
                         const CardinalityEstimator& estimator,
                         const JoinTree& tree, int indent,
                         std::ostringstream* out) {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  if (tree.IsLeaf()) {
    SubtreeEstimate est;
    est.rows = estimator.EstimateFilteredSize(tree.alias);
    est.bytes = estimator.EstimateFilteredBytes(tree.alias);
    const TableRef* ref = spec.FindRef(tree.alias);
    bool filtered = ref != nullptr &&
                    (ref->filtered || !spec.PredicatesFor(tree.alias).empty());
    *out << pad << "Scan " << tree.alias;
    if (ref != nullptr && ref->alias != ref->table) {
      *out << " [" << ref->table << "]";
    }
    if (filtered) *out << " (filtered)";
    *out << " est_rows=" << std::llround(est.rows)
         << " est_bytes=" << HumanBytes(est.bytes) << "\n";
    return est;
  }

  // Header first, children after: reserve the header line via a separate
  // stream so estimates (computed bottom-up) can be printed top-down.
  std::ostringstream left_out, right_out;
  SubtreeEstimate left =
      Annotate(spec, estimator, *tree.left, indent + 1, &left_out);
  SubtreeEstimate right =
      Annotate(spec, estimator, *tree.right, indent + 1, &right_out);

  // Result estimate: pseudo-edge over the crossing keys, sizes overridden
  // by the child estimates.
  SubtreeEstimate est;
  auto keys = KeysBetween(spec, tree.left->Aliases(), tree.right->Aliases());
  if (keys.ok()) {
    // Build a transient edge anchored at any pair of member aliases.
    JoinEdge edge;
    edge.left_alias = *tree.left->Aliases().begin();
    edge.right_alias = *tree.right->Aliases().begin();
    edge.keys = keys.value();
    est.rows = estimator.EstimateJoinCardinality(edge, left.rows, right.rows);
  } else {
    est.rows = left.rows * right.rows;
  }
  double left_width = left.rows > 0 ? left.bytes / left.rows : 64.0;
  double right_width = right.rows > 0 ? right.bytes / right.rows : 64.0;
  est.bytes = est.rows * (left_width + right_width);

  *out << pad << "Join[" << JoinMethodName(tree.method) << "]";
  if (keys.ok()) {
    *out << " on ";
    for (size_t i = 0; i < keys->size(); ++i) {
      if (i > 0) *out << " AND ";
      *out << (*keys)[i].first << "=" << (*keys)[i].second;
    }
  }
  *out << " est_rows=" << std::llround(est.rows)
       << " est_bytes=" << HumanBytes(est.bytes) << "\n"
       << left_out.str() << right_out.str();
  return est;
}

}  // namespace

Result<std::string> ExplainTree(Engine* engine, const QuerySpec& spec,
                                const JoinTree& tree) {
  StatsView view(&spec, &engine->stats(), &engine->catalog());
  CardinalityEstimator estimator(&view);
  std::ostringstream out;
  Annotate(spec, estimator, tree, 0, &out);
  if (spec.HasPostProcessing()) {
    if (!spec.aggregates.empty() || !spec.group_by.empty()) {
      out << "then GROUP BY (" << spec.group_by.size() << " keys, "
          << spec.aggregates.size() << " aggregates)\n";
    }
    if (!spec.order_by.empty()) {
      out << "then ORDER BY (" << spec.order_by.size() << " keys)\n";
    }
    if (spec.limit >= 0) out << "then LIMIT " << spec.limit << "\n";
  }
  return out.str();
}

Result<std::string> ExplainStatic(Engine* engine, const QuerySpec& query) {
  QuerySpec spec = query;
  spec.NormalizeJoins();
  DYNOPT_RETURN_IF_ERROR(spec.Validate());
  if (spec.tables.size() == 1) {
    return ExplainTree(engine, spec, *JoinTree::Leaf(spec.tables[0].alias));
  }
  StatsView view(&spec, &engine->stats(), &engine->catalog());
  DYNOPT_ASSIGN_OR_RETURN(
      std::shared_ptr<const JoinTree> tree,
      StaticCostBasedOptimizer::PlanWithDp(spec, view, engine->cluster(),
                                           PlannerOptions()));
  return ExplainTree(engine, spec, *tree);
}

}  // namespace dynopt
