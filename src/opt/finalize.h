#ifndef DYNOPT_OPT_FINALIZE_H_
#define DYNOPT_OPT_FINALIZE_H_

#include "common/status.h"
#include "exec/cluster.h"
#include "opt/optimizer.h"
#include "plan/query_spec.h"

namespace dynopt {

/// Applies the query's post-join processing — GROUP BY aggregation, ORDER
/// BY and LIMIT — to an optimizer result whose rows are the final join
/// output projected to `spec.projections`. Per Section 6.4 of the paper,
/// these operators "are evaluated after all the joins and selections have
/// been completed and traditional optimization has been applied"; every
/// optimization strategy therefore runs the same finalization.
///
/// The simulated cost of the distributed aggregation (local partial
/// aggregation, shuffle of partials by group key, final merge and sort) is
/// metered into `result->metrics`. Ordering is made deterministic by
/// tie-breaking on all remaining output columns, so results are comparable
/// across strategies. No-op when the query has no post-processing.
Status ApplyPostProcessing(const QuerySpec& spec, const ClusterConfig& cluster,
                           OptimizerRunResult* result);

}  // namespace dynopt

#endif  // DYNOPT_OPT_FINALIZE_H_
