#include "opt/static_execution.h"

#include <chrono>

#include "common/tracer.h"
#include "opt/finalize.h"
#include "opt/plan_builder.h"
#include "opt/profile_archive.h"

namespace dynopt {

Result<OptimizerRunResult> ExecuteTreeAsSingleJob(
    Engine* engine, const QuerySpec& spec,
    std::shared_ptr<const JoinTree> tree, std::string plan_trace,
    QueryContext* ctx, std::shared_ptr<QueryProfile> profile,
    int root_decision) {
  const auto start = std::chrono::steady_clock::now();
  if (ctx != nullptr) {
    DYNOPT_RETURN_IF_ERROR(ctx->CheckAlive());
  }
  if (profile == nullptr) profile = std::make_shared<QueryProfile>();
  IntrospectionRun introspection(engine, spec, profile->optimizer, ctx);
  TraceSpan query_span("query:" + (profile->optimizer.empty()
                                       ? std::string("static")
                                       : profile->optimizer),
                       "query");
  JobExecutor executor = engine->MakeExecutor(ctx);
  OptimizerRunResult result;
  DYNOPT_ASSIGN_OR_RETURN(std::unique_ptr<PlanNode> plan,
                          BuildPhysicalPlan(spec, *tree, true));
  DYNOPT_ASSIGN_OR_RETURN(JobResult job, executor.Execute(*plan, spec.params));
  result.metrics.Add(job.metrics);
  // Output cardinality of the join tree itself (post-processing reshapes
  // rows below): this is the "actual" every static plan estimate is judged
  // against.
  const uint64_t actual_rows = job.data.NumRows();
  profile->decisions.SetActual(root_decision, static_cast<double>(actual_rows));
  profile->subtree_actual_rows[SubtreeKey(tree->Aliases())] = actual_rows;
  result.columns = job.data.columns;
  result.rows = job.data.GatherRows();
  DYNOPT_RETURN_IF_ERROR(
      ApplyPostProcessing(spec, engine->cluster(), &result));
  result.join_tree = std::move(tree);
  result.plan_trace = std::move(plan_trace);
  FinalizeProfile(profile.get(), &result.metrics, &query_span,
                  &engine->metrics_registry());
  result.profile = std::move(profile);
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  introspection.Complete(&result);
  return result;
}

}  // namespace dynopt
