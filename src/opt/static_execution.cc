#include "opt/static_execution.h"

#include <chrono>

#include "opt/finalize.h"
#include "opt/plan_builder.h"

namespace dynopt {

Result<OptimizerRunResult> ExecuteTreeAsSingleJob(
    Engine* engine, const QuerySpec& spec,
    std::shared_ptr<const JoinTree> tree, std::string plan_trace,
    QueryContext* ctx) {
  const auto start = std::chrono::steady_clock::now();
  if (ctx != nullptr) {
    DYNOPT_RETURN_IF_ERROR(ctx->CheckAlive());
  }
  JobExecutor executor = engine->MakeExecutor(ctx);
  OptimizerRunResult result;
  DYNOPT_ASSIGN_OR_RETURN(std::unique_ptr<PlanNode> plan,
                          BuildPhysicalPlan(spec, *tree, true));
  DYNOPT_ASSIGN_OR_RETURN(JobResult job, executor.Execute(*plan, spec.params));
  result.metrics.Add(job.metrics);
  result.columns = job.data.columns;
  result.rows = job.data.GatherRows();
  DYNOPT_RETURN_IF_ERROR(
      ApplyPostProcessing(spec, engine->cluster(), &result));
  result.join_tree = std::move(tree);
  result.plan_trace = std::move(plan_trace);
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace dynopt
