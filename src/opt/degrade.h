#ifndef DYNOPT_OPT_DEGRADE_H_
#define DYNOPT_OPT_DEGRADE_H_

#include <cstdint>
#include <memory>

#include "exec/engine.h"
#include "opt/cardinality.h"
#include "opt/optimizer.h"
#include "plan/query_spec.h"

namespace dynopt {

/// Sizes a query's admission memory reservation from optimizer cardinality
/// estimates instead of the one-size-fits-all query_reservation_bytes:
/// the sum of every input's estimated post-predicate bytes (formula-(1)
/// machinery over load-time stats), floored at `min_bytes`. This is a
/// deliberate over-approximation of the bytes a query can pin at once
/// (build-side hash tables + in-flight intermediates are subsets of the
/// inputs' filtered data); a heavy join pipeline reserves proportionally
/// more of the engine budget than a selective single-join query, which is
/// the point — admission blocks the queries that would actually collide in
/// memory and waves the cheap ones through.
///
/// Store the result in QueryContext::estimated_memory_bytes before
/// Admit(); the controller clamps it to the engine budget.
uint64_t EstimateQueryReservationBytes(
    const QuerySpec& query, Engine* engine,
    uint64_t min_bytes = 64ull << 10,
    const EstimationOptions& options = EstimationOptions());

/// Caller-side hook of the admission controller's strategy degradation:
/// when `ctx` was stamped strategy_downgraded at admission, returns a
/// cheap static cost-based plan-once-execute-once optimizer (context
/// forwarded) to run instead of `planned` — shedding the dynamic
/// strategies' re-optimization coordination cost under overload. Otherwise
/// returns `planned` unchanged. Null ctx / null planned pass through.
std::unique_ptr<Optimizer> ApplyStrategyDowngrade(
    std::unique_ptr<Optimizer> planned, Engine* engine, QueryContext* ctx);

}  // namespace dynopt

#endif  // DYNOPT_OPT_DEGRADE_H_
