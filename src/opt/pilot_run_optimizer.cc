#include "opt/pilot_run_optimizer.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <sstream>

#include "opt/error_stats.h"
#include "opt/finalize.h"
#include "opt/plan_builder.h"
#include "opt/profile_archive.h"
#include "opt/reconstruction.h"
#include "opt/static_execution.h"
#include "opt/static_optimizer.h"
#include "opt/stats_view.h"

namespace dynopt {

namespace {

/// Locates a join node whose children are both leaves (every finite binary
/// tree has one); this is the join the initial plan executes first.
const JoinTree* FindFirstJoin(const JoinTree& tree) {
  if (tree.IsLeaf()) return nullptr;
  if (tree.left->IsLeaf() && tree.right->IsLeaf()) return &tree;
  if (const JoinTree* in_left = FindFirstJoin(*tree.left)) return in_left;
  return FindFirstJoin(*tree.right);
}

std::shared_ptr<const JoinTree> ReplaceSubtree(
    const std::shared_ptr<const JoinTree>& tree, const std::string& alias,
    const std::shared_ptr<const JoinTree>& replacement) {
  if (tree->IsLeaf()) {
    return tree->alias == alias ? replacement : tree;
  }
  return JoinTree::Join(ReplaceSubtree(tree->left, alias, replacement),
                        ReplaceSubtree(tree->right, alias, replacement),
                        tree->method);
}

}  // namespace

PilotRunOptimizer::PilotRunOptimizer(Engine* engine,
                                     const PilotRunOptions& options)
    : engine_(engine), options_(options) {}

Result<OptimizerRunResult> PilotRunOptimizer::Run(const QuerySpec& query) {
  const auto start = std::chrono::steady_clock::now();
  QuerySpec spec = query;
  spec.NormalizeJoins();
  DYNOPT_RETURN_IF_ERROR(spec.Validate());
  DYNOPT_RETURN_IF_ERROR(CheckContext());

  OptimizerRunResult result;
  std::ostringstream trace;
  const ClusterConfig& cluster = engine_->cluster();
  TraceSpan query_span("query:" + name(), "query");
  auto profile = std::make_shared<QueryProfile>();
  profile->optimizer = name();
  // The <=1-join path below delegates to ExecuteTreeAsSingleJob, whose own
  // guard archives the run; this one then only unregisters (same query id).
  IntrospectionRun introspection(engine_, spec, name(), ctx_);

  // ---- Stage 1: pilot runs over samples of every base dataset -----------
  std::map<std::string, TableStats> overrides;
  for (const auto& ref : spec.tables) {
    if (ref.is_intermediate) continue;
    DYNOPT_ASSIGN_OR_RETURN(std::shared_ptr<Table> table,
                            engine_->catalog().GetTable(ref.table));
    // Columns to sample: join keys + projections of this alias, with stats
    // stored under unqualified names (base-table convention).
    std::vector<std::string> qualified =
        RequiredColumns(spec, ref.alias, false);
    std::vector<std::string> names;
    std::vector<int> indices;
    const std::string prefix = ref.alias + ".";
    for (const auto& q : qualified) {
      std::string unqualified =
          q.rfind(prefix, 0) == 0 ? q.substr(prefix.size()) : q;
      int idx = table->schema().FieldIndex(unqualified);
      if (idx >= 0) {
        names.push_back(unqualified);
        indices.push_back(idx);
      }
    }
    // Bind this alias's local predicates against raw table rows.
    BoundExprPtr bound;
    ExprPtr predicate = CombineConjuncts(spec.PredicatesFor(ref.alias));
    if (predicate != nullptr) {
      BindContext ctx;
      ctx.resolve_column = [&](const std::string& name) {
        if (name.rfind(prefix, 0) == 0) {
          return table->schema().FieldIndex(name.substr(prefix.size()));
        }
        return table->schema().FieldIndex(name);
      };
      ctx.params = &spec.params;
      ctx.udfs = &engine_->udfs();
      DYNOPT_ASSIGN_OR_RETURN(bound, Bind(predicate, ctx));
    }

    TableStatsBuilder builder(names, indices, options_.stats_options);
    uint64_t scanned = 0, matched = 0, scanned_bytes = 0;
    for (size_t p = 0; p < table->num_partitions() &&
                       matched < options_.sample_limit;
         ++p) {
      for (const Row& row : table->partition(p)) {
        ++scanned;
        scanned_bytes += RowSizeBytes(row);
        if (bound == nullptr || bound->EvalBool(row)) {
          ++matched;
          builder.AddRow(row);
          if (matched >= options_.sample_limit) break;
        }
      }
    }
    // Charge the pilot-run work (it runs cluster-parallel).
    result.metrics.bytes_scanned += scanned_bytes;
    result.metrics.tuples_processed += scanned;
    result.metrics.simulated_seconds +=
        (static_cast<double>(scanned_bytes) /
         static_cast<double>(cluster.num_nodes)) *
            cluster.scan_seconds_per_byte +
        (static_cast<double>(scanned) /
         static_cast<double>(cluster.num_nodes)) *
            cluster.cpu_seconds_per_tuple;

    // Scale the sample to the full dataset.
    const double total_rows = static_cast<double>(table->NumRows());
    const double selectivity =
        scanned > 0 ? static_cast<double>(matched) / static_cast<double>(scanned)
                    : 1.0;
    const double est_rows = std::max(1.0, selectivity * total_rows);
    const double avg_width =
        table->NumRows() > 0
            ? static_cast<double>(table->TotalBytes()) /
                  static_cast<double>(table->NumRows())
            : 64.0;
    TableStats stats = builder.Finalize();
    const double scale =
        scanned > 0 ? total_rows / static_cast<double>(scanned) : 1.0;
    for (auto& [name, col] : stats.columns) {
      // Linear ndv scale-up: the known weakness on skewed non-pk/fk keys.
      col.ndv = std::min(est_rows, col.ndv * scale * selectivity);
      col.ndv = std::max(col.ndv, 1.0);
      col.count = static_cast<uint64_t>(est_rows);
    }
    stats.row_count = static_cast<uint64_t>(est_rows);
    stats.total_bytes = static_cast<uint64_t>(est_rows * avg_width);
    overrides[ref.alias] = std::move(stats);
    trace << "[pilot-run] " << ref.alias << ": scanned " << scanned
          << ", matched " << matched << ", est_rows " << est_rows << "\n";
  }

  // The overrides already reflect local predicates; drop them from the
  // planning copy so selectivities are not applied twice, but keep them for
  // execution.
  QuerySpec planning_spec = spec;
  planning_spec.predicates.clear();
  for (auto& ref : planning_spec.tables) {
    if (overrides.count(ref.alias) > 0 &&
        !spec.PredicatesFor(ref.alias).empty()) {
      ref.filtered = true;
    }
  }

  // ---- Stage 2: complete initial plan from pilot statistics -------------
  // Cross-query error memory (off by default): priors widen this plan's
  // confidence intervals on top of the pilot samples — the samples
  // calibrate selectivities, the priors remember where sampling itself has
  // misled before (skewed join keys the linear ndv scale-up gets wrong).
  ErrorStatsStore* err_store = EngineErrorStats(engine_);
  const bool use_risk = cluster.risk.error_feedback || err_store != nullptr;
  const SelectivityRisk prior_risk =
      PriorRisk(spec, err_store, cluster.risk.max_ci_widening);
  StatsView view(&planning_spec, &engine_->stats(), &engine_->catalog());
  view.SetAliasOverrides(&overrides);
  TraceSpan plan_span("plan-dp", "opt");
  double initial_rows = -1;
  double initial_cost = -1;
  DYNOPT_ASSIGN_OR_RETURN(
      std::shared_ptr<const JoinTree> initial_tree,
      StaticCostBasedOptimizer::PlanWithDp(
          planning_spec, view, cluster, options_.planner, &initial_rows,
          &initial_cost, err_store != nullptr ? &prior_risk : nullptr));
  plan_span.End();
  trace << "[pilot-run] initial plan: " << initial_tree->ToString() << "\n";
  PlanDecision initial_decision;
  initial_decision.point = "initial-plan";
  initial_decision.chosen = initial_tree->ToString();
  initial_decision.estimated_rows = initial_rows;
  initial_decision.estimated_cost = initial_cost;
  if (err_store != nullptr && prior_risk.prior_factor > 1.0) {
    initial_decision.prior_key = prior_risk.prior_key;
    initial_decision.prior_factor = prior_risk.prior_factor;
  }
  const int initial_id =
      profile->decisions.Record(std::move(initial_decision));

  if (spec.joins.size() <= 1) {
    query_span.End();  // ExecuteTreeAsSingleJob opens its own query span.
    auto final = ExecuteTreeAsSingleJob(engine_, spec, initial_tree,
                                        trace.str(), ctx_, std::move(profile),
                                        initial_id);
    if (final.ok()) {
      final.value().metrics.Add(result.metrics);
      final.value().profile->metrics = final.value().metrics;
      final.value().wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
    }
    return final;
  }

  // ---- Stage 3: execute the first join, re-optimization point -----------
  DYNOPT_RETURN_IF_ERROR(CheckContext());
  JobExecutor executor = engine_->MakeExecutor(ctx_);
  const JoinTree* first = FindFirstJoin(*initial_tree);
  if (first == nullptr) {
    return Status::Internal("initial plan has no innermost join");
  }
  const std::string build = first->left->alias;
  const std::string probe = first->right->alias;
  auto step_tree =
      JoinTree::Join(JoinTree::Leaf(build), JoinTree::Leaf(probe),
                     first->method);
  DYNOPT_ASSIGN_OR_RETURN(std::unique_ptr<PlanNode> join_plan,
                          BuildPhysicalPlan(spec, *step_tree, false));
  // The executed edge between build/probe.
  JoinEdge executed;
  bool edge_found = false;
  for (const auto& edge : spec.joins) {
    if (edge.Involves(build) && edge.Involves(probe)) {
      executed = edge;
      edge_found = true;
      break;
    }
  }
  if (!edge_found) {
    return Status::Internal("initial plan joins unconnected datasets");
  }
  // Columns the rest of the query needs from this intermediate.
  std::vector<std::string> out_columns;
  {
    std::set<std::string> seen;
    for (const auto& proj : spec.projections) {
      const TableRef* l = spec.FindRef(build);
      const TableRef* r = spec.FindRef(probe);
      if ((l->Provides(proj) || r->Provides(proj)) && seen.insert(proj).second) {
        out_columns.push_back(proj);
      }
    }
    for (const auto& edge : spec.joins) {
      bool is_executed = edge.Involves(build) && edge.Involves(probe);
      if (is_executed) continue;
      for (const std::string& alias : {build, probe}) {
        if (!edge.Involves(alias)) continue;
        for (const auto& key : edge.KeysOf(alias)) {
          if (seen.insert(key).second) out_columns.push_back(key);
        }
      }
    }
  }
  // Pilot-statistics estimate of the executed join (what the initial plan
  // believed), recorded against the materialized actual below.
  CardinalityEstimator pilot_estimator(&view, options_.planner.estimation);
  const double pilot_est_rows =
      pilot_estimator.EstimateJoinCardinality(executed);
  TraceSpan pilot_span("pilot-join", "stage");
  auto projected = PlanNode::Project(std::move(join_plan), out_columns);
  DYNOPT_ASSIGN_OR_RETURN(JobResult job,
                          executor.Execute(*projected, spec.params));
  result.metrics.Add(job.metrics);
  DYNOPT_ASSIGN_OR_RETURN(
      SinkResult sink,
      executor.Materialize(std::move(job.data), TempPrefix("pilot"), out_columns, true,
                           &result.metrics));
  // Any early error return below used to leak the pilot sink table; drop
  // it on every exit path instead.
  struct SinkCleanup {
    Engine* engine;
    const std::string* name;
    ~SinkCleanup() {
      (void)engine->catalog().DropTable(*name);
      engine->stats().Remove(*name);
    }
  } sink_cleanup{engine_, &sink.table_name};
  trace << "[pilot-run] executed " << executed.ToString() << " -> "
        << sink.table_name << " (" << sink.stats.row_count << " rows)\n";
  double pilot_q = 0;
  {
    PlanDecision decision;
    decision.point = "pilot-join";
    decision.chosen = executed.ToString() +
                      " [" + JoinMethodName(first->method) + "]";
    decision.method = first->method;
    decision.build_alias = build;
    decision.estimated_rows = pilot_est_rows;
    decision.actual_rows = static_cast<double>(sink.stats.row_count);
    pilot_q = decision.QError();
    if (err_store != nullptr) {
      std::vector<std::string> pair_tables;
      for (const std::string& alias : {build, probe}) {
        const TableRef* ref = spec.FindRef(alias);
        pair_tables.push_back(
            ref != nullptr && !ref->is_intermediate ? ref->table : alias);
      }
      err_store->Record(JoinErrorKey(std::move(pair_tables)), pilot_q);
    }
    profile->decisions.Record(std::move(decision));
  }
  profile->subtree_actual_rows[SubtreeKey({build, probe})] =
      sink.stats.row_count;
  pilot_span.AddArg("actual_rows",
                    static_cast<double>(sink.stats.row_count));
  pilot_span.End();

  const std::string new_alias = "__p0";
  overrides.erase(build);
  overrides.erase(probe);
  QuerySpec remaining =
      ReconstructAfterJoin(spec, executed, sink.table_name, new_alias,
                           out_columns);

  // ---- Stage 4: re-optimize the remaining plan with fresh statistics ----
  DYNOPT_RETURN_IF_ERROR(CheckContext());
  // Planning copy: predicates of overridden aliases are already folded into
  // the pilot statistics, so drop them to avoid double-counting.
  QuerySpec remaining_planning = remaining;
  remaining_planning.predicates.erase(
      std::remove_if(remaining_planning.predicates.begin(),
                     remaining_planning.predicates.end(),
                     [&](const LocalPredicate& p) {
                       return overrides.count(p.alias) > 0;
                     }),
      remaining_planning.predicates.end());
  for (auto& ref : remaining_planning.tables) {
    if (overrides.count(ref.alias) > 0 &&
        !remaining.PredicatesFor(ref.alias).empty()) {
      ref.filtered = true;
    }
  }
  StatsView view2(&remaining_planning, &engine_->stats(),
                  &engine_->catalog());
  view2.SetAliasOverrides(&overrides);
  std::shared_ptr<const JoinTree> rest_tree;
  double rest_rows = -1;
  double rest_cost = -1;
  // Error-aware replan: the pilot join's own q-error is the freshest
  // evidence of how far the sampled statistics can be trusted — a bad one
  // widens every remaining estimate (on top of any cross-query priors)
  // before the tail of the plan commits to broadcast-sized bets.
  SelectivityRisk rest_risk =
      PriorRisk(remaining, err_store, cluster.risk.max_ci_widening);
  if (cluster.risk.error_feedback && pilot_q > 1.0) {
    const double widen =
        std::min(pilot_q, cluster.risk.max_ci_widening);
    rest_risk.global_factor = std::max(rest_risk.global_factor, widen);
    for (const auto& ref : remaining.tables) {
      if (ref.is_intermediate) continue;
      double& f = rest_risk.alias_factors[ref.alias];
      f = std::max(f, widen);
    }
  }
  if (remaining.joins.empty()) {
    rest_tree = JoinTree::Leaf(new_alias);
  } else {
    TraceSpan replan_span("replan-dp", "opt");
    DYNOPT_ASSIGN_OR_RETURN(
        rest_tree,
        StaticCostBasedOptimizer::PlanWithDp(
            remaining_planning, view2, cluster, options_.planner, &rest_rows,
            &rest_cost, use_risk ? &rest_risk : nullptr));
  }
  trace << "[pilot-run] adjusted plan: " << rest_tree->ToString() << "\n";
  PlanDecision rest_decision;
  rest_decision.point = "adjusted-plan";
  rest_decision.chosen = rest_tree->ToString();
  rest_decision.estimated_rows = rest_rows;
  rest_decision.estimated_cost = rest_cost;
  if (err_store != nullptr && rest_risk.prior_factor > 1.0) {
    rest_decision.prior_key = rest_risk.prior_key;
    rest_decision.prior_factor = rest_risk.prior_factor;
  }
  const int rest_id = profile->decisions.Record(std::move(rest_decision));
  TraceSpan rest_span("final", "stage");
  DYNOPT_ASSIGN_OR_RETURN(std::unique_ptr<PlanNode> rest_plan,
                          BuildPhysicalPlan(remaining, *rest_tree, true));
  DYNOPT_ASSIGN_OR_RETURN(JobResult rest_job,
                          executor.Execute(*rest_plan, remaining.params));
  result.metrics.Add(rest_job.metrics);
  const uint64_t final_rows = rest_job.data.NumRows();
  // Both the whole-query initial estimate and the adjusted plan are judged
  // against the final pre-post-processing output.
  profile->decisions.SetActual(initial_id, static_cast<double>(final_rows));
  profile->decisions.SetActual(rest_id, static_cast<double>(final_rows));
  if (err_store != nullptr) {
    const auto& ds = profile->decisions.decisions();
    if (initial_id >= 0 && initial_id < static_cast<int>(ds.size())) {
      const double q = ds[static_cast<size_t>(initial_id)].QError();
      std::vector<std::string> bases;
      for (const auto& ref : spec.tables) {
        if (!ref.is_intermediate) bases.push_back(ref.table);
      }
      if (q >= 1.0 && !bases.empty()) {
        err_store->Record(JoinErrorKey(std::move(bases)), q);
      }
    }
    (void)err_store->Save();
  }
  {
    std::set<std::string> all_aliases;
    for (const auto& ref : spec.tables) all_aliases.insert(ref.alias);
    profile->subtree_actual_rows[SubtreeKey(all_aliases)] = final_rows;
  }
  rest_span.AddArg("actual_rows", static_cast<double>(final_rows));
  rest_span.End();

  result.columns = rest_job.data.columns;
  result.rows = rest_job.data.GatherRows();
  DYNOPT_RETURN_IF_ERROR(
      ApplyPostProcessing(spec, cluster, &result));
  result.join_tree = ReplaceSubtree(rest_tree, new_alias, step_tree);
  result.plan_trace = trace.str();
  FinalizeProfile(profile.get(), &result.metrics, &query_span,
                  &engine_->metrics_registry());
  result.profile = std::move(profile);

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  introspection.Complete(&result);
  return result;
}

}  // namespace dynopt
