#include "opt/reconstruction.h"

#include <algorithm>

namespace dynopt {

QuerySpec ReplaceWithFiltered(const QuerySpec& spec, const std::string& alias,
                              const std::string& temp_name,
                              std::vector<std::string> provided) {
  QuerySpec out = spec;
  for (auto& ref : out.tables) {
    if (ref.alias == alias) {
      ref.table = temp_name;
      ref.is_intermediate = true;
      ref.filtered = true;
      ref.provided_columns = std::move(provided);
      break;
    }
  }
  out.predicates.erase(
      std::remove_if(out.predicates.begin(), out.predicates.end(),
                     [&](const LocalPredicate& p) { return p.alias == alias; }),
      out.predicates.end());
  return out;
}

QuerySpec ReconstructAfterJoin(const QuerySpec& spec, const JoinEdge& executed,
                               const std::string& temp_name,
                               const std::string& new_alias,
                               std::vector<std::string> provided) {
  QuerySpec out;
  out.params = spec.params;
  out.projections = spec.projections;
  out.base_tables = spec.base_tables;
  out.group_by = spec.group_by;
  out.aggregates = spec.aggregates;
  out.order_by = spec.order_by;
  out.limit = spec.limit;

  const std::string& a = executed.left_alias;
  const std::string& b = executed.right_alias;

  // FROM clause: drop the joined refs, add the intermediate.
  for (const auto& ref : spec.tables) {
    if (ref.alias == a || ref.alias == b) continue;
    out.tables.push_back(ref);
  }
  TableRef merged;
  merged.table = temp_name;
  merged.alias = new_alias;
  merged.is_intermediate = true;
  merged.filtered = true;
  merged.provided_columns = std::move(provided);
  out.tables.push_back(std::move(merged));

  // Local predicates of the joined refs were applied inside the executed
  // job; everything else is kept verbatim.
  for (const auto& pred : spec.predicates) {
    if (pred.alias == a || pred.alias == b) continue;
    out.predicates.push_back(pred);
  }

  // WHERE joins: remove the executed edge; re-point surviving edges that
  // touched a or b at the intermediate. Key column names are unchanged —
  // the intermediate provides them under their original qualified names.
  for (const auto& edge : spec.joins) {
    if ((edge.left_alias == a && edge.right_alias == b) ||
        (edge.left_alias == b && edge.right_alias == a)) {
      continue;  // The executed join.
    }
    JoinEdge updated = edge;
    if (updated.left_alias == a || updated.left_alias == b) {
      updated.left_alias = new_alias;
    }
    if (updated.right_alias == a || updated.right_alias == b) {
      updated.right_alias = new_alias;
    }
    out.joins.push_back(std::move(updated));
  }
  out.NormalizeJoins();
  return out;
}

}  // namespace dynopt
