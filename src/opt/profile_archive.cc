#include "opt/profile_archive.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <sstream>

#include "common/hash.h"
#include "common/query_context.h"
#include "exec/engine.h"
#include "opt/critical_path.h"

namespace dynopt {

namespace {

std::string FormatFactor(double f) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", f);
  return buf;
}

std::string FormatSeconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", s);
  return buf;
}

}  // namespace

std::string QueryFingerprint(const QuerySpec& spec) {
  // Canonical, order-insensitive rendering of the logical shape. Each
  // section is sorted so binder/rewrite ordering never perturbs the hash.
  std::ostringstream canon;
  std::vector<std::string> parts;
  for (const auto& ref : spec.tables) {
    // Intermediates (mid-query re-entry) map back to their base table so a
    // resumed query keeps its original fingerprint.
    std::string table = ref.table;
    if (ref.is_intermediate) {
      auto it = spec.base_tables.find(ref.alias);
      if (it != spec.base_tables.end()) table = it->second;
    }
    parts.push_back(ref.alias + "=" + table);
  }
  std::sort(parts.begin(), parts.end());
  canon << "tables:";
  for (const auto& p : parts) canon << p << ";";
  parts.clear();
  for (const auto& pred : spec.predicates) {
    if (pred.expr != nullptr) {
      parts.push_back(pred.alias + ":" + pred.expr->ToString());
    }
  }
  std::sort(parts.begin(), parts.end());
  canon << "|preds:";
  for (const auto& p : parts) canon << p << ";";
  parts.clear();
  for (const auto& join : spec.joins) {
    // Canonical edge: endpoints sorted, keys sorted pairwise.
    std::vector<std::string> keys;
    for (const auto& [l, r] : join.keys) {
      keys.push_back(l < r ? l + "=" + r : r + "=" + l);
    }
    std::sort(keys.begin(), keys.end());
    std::string lo = std::min(join.left_alias, join.right_alias);
    std::string hi = std::max(join.left_alias, join.right_alias);
    std::string edge = lo + "*" + hi + "[";
    for (const auto& k : keys) edge += k + ",";
    parts.push_back(edge + "]");
  }
  std::sort(parts.begin(), parts.end());
  canon << "|joins:";
  for (const auto& p : parts) canon << p << ";";
  canon << "|proj:";
  for (const auto& p : spec.projections) canon << p << ";";
  canon << "|params:";
  // Names only: the same prepared statement under different bindings is
  // the same query shape.
  for (const auto& [name, value] : spec.params) {
    (void)value;
    canon << name << ";";
  }
  canon << "|group:";
  for (const auto& g : spec.group_by) canon << g << ";";
  canon << "|agg:";
  for (const auto& a : spec.aggregates) {
    canon << AggFnName(a.fn) << "(" << a.input << ")as" << a.output_name
          << ";";
  }
  canon << "|order:";
  for (const auto& o : spec.order_by) {
    canon << o.column << (o.descending ? "-" : "+") << ";";
  }
  canon << "|limit:" << spec.limit;
  const std::string s = canon.str();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(HashString(s)));
  return buf;
}

void ProfileArchive::RegisterActive(ActiveQueryInfo info) {
  std::lock_guard<std::mutex> lock(mu_);
  active_[info.query_id] = std::move(info);
}

void ProfileArchive::UnregisterActive(uint64_t query_id) {
  std::lock_guard<std::mutex> lock(mu_);
  active_.erase(query_id);
}

ArchivedQuery ProfileArchive::Archive(ArchivedQuery entry) {
  std::lock_guard<std::mutex> lock(mu_);
  // Baseline: the fastest archived run of the same logical query.
  const ArchivedQuery* baseline = nullptr;
  for (const auto& e : ring_) {
    if (e.fingerprint != entry.fingerprint) continue;
    if (baseline == nullptr || e.sim_seconds < baseline->sim_seconds) {
      baseline = &e;
    }
  }
  if (baseline != nullptr && baseline->sim_seconds > 0 &&
      entry.sim_seconds >
          config_.regression_threshold * baseline->sim_seconds) {
    entry.regressed = true;
    std::ostringstream note;
    note << "sim_seconds " << FormatSeconds(entry.sim_seconds) << " is "
         << FormatFactor(entry.sim_seconds / baseline->sim_seconds)
         << "x the best archived run (" << FormatSeconds(baseline->sim_seconds)
         << ", " << baseline->optimizer << ") of this query (threshold "
         << FormatFactor(config_.regression_threshold) << "x)";
    // Name the first decision where the two runs' plans part ways, and the
    // error-store prior (if any) that was in play there.
    if (entry.profile != nullptr && baseline->profile != nullptr) {
      const auto& cur = entry.profile->decisions.decisions();
      const auto& base = baseline->profile->decisions.decisions();
      const size_t n = std::min(cur.size(), base.size());
      size_t i = 0;
      while (i < n && cur[i].point == base[i].point &&
             cur[i].chosen == base[i].chosen) {
        ++i;
      }
      if (i < n || cur.size() != base.size()) {
        entry.first_divergent_index = static_cast<int>(i);
        const PlanDecision* mine = i < cur.size() ? &cur[i] : nullptr;
        const PlanDecision* theirs = i < base.size() ? &base[i] : nullptr;
        std::ostringstream div;
        if (mine != nullptr) {
          div << "#" << i << " " << mine->point << ": " << mine->chosen;
          if (theirs != nullptr) div << " (baseline: " << theirs->chosen << ")";
        } else if (theirs != nullptr) {
          div << "#" << i << " missing (baseline: " << theirs->point << ": "
              << theirs->chosen << ")";
        }
        entry.first_divergent_decision = div.str();
        note << "; first divergent decision " << entry.first_divergent_decision;
        const PlanDecision* with_prior =
            mine != nullptr && !mine->prior_key.empty() ? mine
            : theirs != nullptr && !theirs->prior_key.empty() ? theirs
                                                              : nullptr;
        if (with_prior != nullptr) {
          entry.divergent_prior_key = with_prior->prior_key;
          entry.divergent_prior_factor = with_prior->prior_factor;
          note << "; prior=" << with_prior->prior_key << "x"
               << FormatFactor(with_prior->prior_factor);
        }
      }
    }
    entry.regression = note.str();
  }
  ring_.push_back(entry);
  while (ring_.size() > config_.archive_capacity) ring_.pop_front();
  return entry;
}

std::vector<ArchivedQuery> ProfileArchive::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {ring_.begin(), ring_.end()};
}

std::vector<ActiveQueryInfo> ProfileArchive::ActiveSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ActiveQueryInfo> out;
  out.reserve(active_.size());
  for (const auto& [id, info] : active_) {
    (void)id;
    out.push_back(info);
  }
  return out;
}

size_t ProfileArchive::NumArchived() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

size_t ProfileArchive::ApproxBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t bytes = 0;
  for (const auto& e : ring_) {
    bytes += sizeof(ArchivedQuery) + e.label.size() + e.fingerprint.size() +
             e.critical_path.size() + e.regression.size() +
             e.first_divergent_decision.size();
    if (e.profile != nullptr) {
      bytes += sizeof(QueryProfile);
      for (const auto& d : e.profile->decisions.decisions()) {
        bytes += sizeof(PlanDecision) + d.point.size() + d.chosen.size();
      }
      for (const auto& ev : e.profile->trace) {
        bytes += sizeof(TraceEvent) + ev.name.size();
      }
    }
  }
  return bytes;
}

namespace {

/// What lives in Engine::introspection_state(): the archive plus the config
/// it was built from, so a knob edit via mutable_cluster() rebuilds it.
struct EngineArchiveSlot {
  IntrospectionConfig config;
  std::shared_ptr<ProfileArchive> archive;
};

std::mutex g_archive_slot_mu;

/// Ids for runs without a QueryContext, kept out of the context id range so
/// anonymous and governed queries never collide in the active registry.
std::atomic<uint64_t> g_anon_query_id{1ULL << 62};

}  // namespace

ProfileArchive* EngineProfileArchive(Engine* engine) {
  if (engine == nullptr) return nullptr;
  const IntrospectionConfig& ic = engine->cluster().introspection;
  if (!ic.enabled) return nullptr;
  std::lock_guard<std::mutex> lock(g_archive_slot_mu);
  auto slot = std::static_pointer_cast<EngineArchiveSlot>(
      engine->introspection_state());
  if (slot == nullptr ||
      slot->config.archive_capacity != ic.archive_capacity ||
      slot->config.regression_threshold != ic.regression_threshold) {
    slot = std::make_shared<EngineArchiveSlot>();
    slot->config = ic;
    slot->archive = std::make_shared<ProfileArchive>(ic);
    engine->introspection_state() = slot;
  }
  return slot->archive.get();
}

IntrospectionRun::IntrospectionRun(Engine* engine, const QuerySpec& spec,
                                   std::string optimizer, QueryContext* ctx)
    : archive_(EngineProfileArchive(engine)), optimizer_(std::move(optimizer)) {
  if (archive_ == nullptr) return;
  fingerprint_ = QueryFingerprint(spec);
  if (ctx != nullptr) {
    query_id_ = ctx->id();
    label_ = ctx->label();
    priority_ = QueryPriorityName(ctx->priority);
    queue_wait_seconds_ = ctx->queue_wait_seconds;
  } else {
    query_id_ = g_anon_query_id.fetch_add(1, std::memory_order_relaxed);
    priority_ = QueryPriorityName(QueryPriority::kNormal);
  }
  ActiveQueryInfo info;
  info.query_id = query_id_;
  info.label = label_;
  info.optimizer = optimizer_;
  info.fingerprint = fingerprint_;
  info.priority = priority_;
  archive_->RegisterActive(std::move(info));
}

IntrospectionRun::~IntrospectionRun() {
  if (archive_ != nullptr && !completed_) {
    archive_->UnregisterActive(query_id_);
  }
}

void IntrospectionRun::Complete(OptimizerRunResult* result) {
  if (archive_ == nullptr || completed_) return;
  completed_ = true;
  archive_->UnregisterActive(query_id_);
  if (result == nullptr || result->profile == nullptr) return;
  QueryProfile* profile = result->profile.get();
  profile->fingerprint = fingerprint_;
  profile->critical_path = CriticalPath(profile->trace);
  ArchivedQuery entry;
  entry.query_id = query_id_;
  entry.label = label_;
  entry.optimizer = profile->optimizer.empty() ? optimizer_
                                               : profile->optimizer;
  entry.fingerprint = fingerprint_;
  entry.priority = priority_;
  entry.queue_wait_seconds = result->metrics.queue_wait_seconds > 0
                                 ? result->metrics.queue_wait_seconds
                                 : queue_wait_seconds_;
  entry.peak_memory_bytes = result->metrics.peak_memory_bytes;
  entry.spilled_bytes = result->metrics.spilled_bytes;
  entry.retries = result->metrics.num_retries;
  entry.sim_seconds = result->metrics.simulated_seconds;
  entry.wall_seconds = result->wall_seconds;
  entry.critical_path = profile->critical_path;
  entry.profile = result->profile;
  const ArchivedQuery analyzed = archive_->Archive(std::move(entry));
  profile->regression_note = analyzed.regression;
}

}  // namespace dynopt
