#include "opt/static_optimizer.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <set>
#include <vector>

#include "opt/cost_model.h"
#include "opt/error_stats.h"
#include "opt/plan_builder.h"
#include "opt/static_execution.h"

namespace dynopt {

namespace {

/// DP table entry for one alias subset.
struct DpEntry {
  double rows = 0;
  double bytes = 0;
  double cost = std::numeric_limits<double>::infinity();
  std::shared_ptr<const JoinTree> tree;
  bool filtered = false;  ///< Any member filtered (INLJ outer condition).
};

/// True when the (single-key) INLJ is structurally possible with `inner`
/// as the indexed base inner.
bool InljApplicableForSets(
    const QuerySpec& spec, const Catalog* catalog,
    const std::vector<std::pair<std::string, std::string>>& keys,
    const std::string& inner_alias, bool outer_filtered) {
  if (keys.size() != 1) return false;
  if (!outer_filtered) return false;
  const TableRef* inner = spec.FindRef(inner_alias);
  if (inner == nullptr || inner->is_intermediate) return false;
  if (inner->filtered || !spec.PredicatesFor(inner_alias).empty()) {
    return false;
  }
  std::string key = keys[0].second;
  const std::string prefix = inner_alias + ".";
  if (key.rfind(prefix, 0) == 0) key = key.substr(prefix.size());
  if (catalog == nullptr) return false;
  auto table = catalog->GetTable(inner->table);
  if (!table.ok()) return false;
  return table.value()->HasSecondaryIndex(key);
}

}  // namespace

StaticCostBasedOptimizer::StaticCostBasedOptimizer(
    Engine* engine, const PlannerOptions& options)
    : engine_(engine), options_(options) {}

Result<std::shared_ptr<const JoinTree>> StaticCostBasedOptimizer::PlanWithDp(
    const QuerySpec& spec, const StatsView& view, const ClusterConfig& cluster,
    const PlannerOptions& options, double* est_rows, double* est_cost,
    const SelectivityRisk* risk) {
  CardinalityEstimator estimator(&view, options.estimation);
  const size_t k = spec.tables.size();
  if (k == 0) return Status::InvalidArgument("empty FROM clause");
  if (k > 20) {
    return Status::InvalidArgument("DP enumeration capped at 20 datasets");
  }
  std::vector<std::string> aliases;
  aliases.reserve(k);
  for (const auto& ref : spec.tables) aliases.push_back(ref.alias);
  auto alias_bit = [&](const std::string& alias) -> uint32_t {
    for (size_t i = 0; i < k; ++i) {
      if (aliases[i] == alias) return 1u << i;
    }
    return 0;
  };

  const uint32_t full = k == 32 ? ~0u : (1u << k) - 1;
  std::vector<DpEntry> dp(static_cast<size_t>(full) + 1);

  // Per-edge join-selectivity denominators, consistent across DP splits:
  // card(S) = prod(sizes) * prod over internal edges of 1/denominator.
  struct EdgeFactor {
    uint32_t mask;
    double denominator;
  };
  std::vector<EdgeFactor> edge_factors;
  for (const auto& edge : spec.joins) {
    double left_size = estimator.EstimateFilteredSize(edge.left_alias);
    double right_size = estimator.EstimateFilteredSize(edge.right_alias);
    double card = estimator.EstimateJoinCardinality(edge);
    double product = std::max(1.0, left_size) * std::max(1.0, right_size);
    double denom = card > 0 ? product / card : product;
    edge_factors.push_back(
        {alias_bit(edge.left_alias) | alias_bit(edge.right_alias),
         std::max(1.0, denom)});
  }
  // Pessimistic widening per subset (see header): 1 everywhere when risk
  // is null/neutral, so the DP arithmetic is bit-identical in that case.
  std::vector<double> leaf_factor(k, 1.0);
  double global_factor = 1.0;
  if (risk != nullptr) {
    global_factor = std::max(1.0, risk->global_factor);
    for (size_t i = 0; i < k; ++i) {
      leaf_factor[i] = std::max(1.0, risk->FactorFor(aliases[i]));
    }
  }
  auto widen = [&](uint32_t s) {
    // Composite subsets carry the global (join-output) factor; every
    // subset carries its least-trusted member's factor.
    double f = (s & (s - 1)) != 0 ? global_factor : 1.0;
    for (size_t i = 0; i < k; ++i) {
      if (s & (1u << i)) f = std::max(f, leaf_factor[i]);
    }
    return f;
  };

  auto subset_rows = [&](uint32_t s) {
    double rows = 1.0;
    for (size_t i = 0; i < k; ++i) {
      if (s & (1u << i)) {
        rows *= std::max(1.0, estimator.EstimateFilteredSize(aliases[i]));
      }
    }
    for (const auto& ef : edge_factors) {
      if ((ef.mask & s) == ef.mask) rows /= ef.denominator;
    }
    return std::max(rows, 1.0);
  };

  // Leaves.
  for (size_t i = 0; i < k; ++i) {
    uint32_t s = 1u << i;
    DpEntry& entry = dp[s];
    entry.rows = std::max(1.0, estimator.EstimateFilteredSize(aliases[i]));
    entry.bytes = std::max(1.0, estimator.EstimateFilteredBytes(aliases[i]));
    double raw_rows = view.RowCount(aliases[i]);
    double raw_bytes = view.TotalBytes(aliases[i]);
    const TableRef* ref = spec.FindRef(aliases[i]);
    entry.cost = EstimateScanCost(raw_bytes, raw_rows, cluster,
                                  ref != nullptr && ref->is_intermediate);
    entry.tree = JoinTree::Leaf(aliases[i]);
    entry.filtered =
        ref != nullptr &&
        (ref->filtered || !spec.PredicatesFor(aliases[i]).empty());
  }

  // DP over subset sizes.
  for (uint32_t s = 1; s <= full; ++s) {
    if ((s & (s - 1)) == 0) continue;  // Singletons done.
    DpEntry& entry = dp[s];
    double out_rows = subset_rows(s);
    // Enumerate splits; canonical (s1 < s2 covered by both orders since
    // build/probe roles differ).
    for (uint32_t s1 = (s - 1) & s; s1 != 0; s1 = (s1 - 1) & s) {
      uint32_t s2 = s & ~s1;
      if (dp[s1].tree == nullptr || dp[s2].tree == nullptr) continue;
      // Connected?
      std::set<std::string> left_set, right_set;
      dp[s1].tree->CollectAliases(&left_set);
      dp[s2].tree->CollectAliases(&right_set);
      auto keys_or = KeysBetween(spec, left_set, right_set);
      if (!keys_or.ok()) continue;
      const auto& keys = keys_or.value();

      const DpEntry& left = dp[s1];
      const DpEntry& right = dp[s2];
      double left_width = left.rows > 0 ? left.bytes / left.rows : 64.0;
      double right_width = right.rows > 0 ? right.bytes / right.rows : 64.0;
      double out_bytes = out_rows * (left_width + right_width);

      // Pessimistic-bound costing: widen each input by its subset factor
      // and the output by the full subset's. DpEntry rows/bytes stay the
      // expected values (they feed the decision log and downstream
      // estimates); only costs and eligibility gates see the widening.
      const double wl = widen(s1);
      const double wr = widen(s2);
      const double wo = widen(s);

      // Build side = left (s1); consider it as build only when it is the
      // smaller input (mirrors the executor convention).
      JoinCostInputs in;
      in.build_rows = left.rows * wl;
      in.build_bytes = left.bytes * wl;
      in.probe_rows = right.rows * wr;
      in.probe_bytes = right.bytes * wr;
      in.out_rows = out_rows * wo;
      in.out_bytes = out_bytes * wo;
      if (cluster.risk.spill_aware_costing) {
        in.memory_budget_bytes = cluster.memory.join_memory_budget_bytes;
      }

      double base_cost = left.cost + right.cost;
      // Hash join.
      {
        double cost = base_cost + EstimateJoinExecCost(JoinMethod::kHashShuffle,
                                                       in, cluster, 0.0);
        if (cost < entry.cost) {
          entry.cost = cost;
          entry.rows = out_rows;
          entry.bytes = out_bytes;
          entry.tree =
              JoinTree::Join(left.tree, right.tree, JoinMethod::kHashShuffle);
          entry.filtered = left.filtered || right.filtered;
        }
      }
      // Broadcast (build = s1, must be small — judged pessimistically, so
      // a side with a misestimation history loses its broadcast
      // eligibility before it can blow past the threshold at runtime).
      if (options.enable_broadcast &&
          left.bytes * wl <=
              static_cast<double>(cluster.broadcast_threshold_bytes)) {
        double cost = base_cost + EstimateJoinExecCost(JoinMethod::kBroadcast,
                                                       in, cluster, 0.0);
        if (cost < entry.cost) {
          entry.cost = cost;
          entry.rows = out_rows;
          entry.bytes = out_bytes;
          entry.tree =
              JoinTree::Join(left.tree, right.tree, JoinMethod::kBroadcast);
          entry.filtered = left.filtered || right.filtered;
        }
      }
      // Indexed NLJ: inner (s2) must be a singleton base dataset with an
      // index; outer (s1) must be small and filtered. The inner's scan cost
      // is avoided, so subtract it from base cost.
      if (options.enable_inlj && (s2 & (s2 - 1)) == 0 &&
          left.bytes * wl <=
              static_cast<double>(cluster.broadcast_threshold_bytes)) {
        const std::string inner_alias = *right_set.begin();
        bool outer_filtered = left.filtered || (s1 & (s1 - 1)) != 0;
        if (InljApplicableForSets(spec, view.catalog(), keys, inner_alias,
                                  outer_filtered)) {
          double cost =
              left.cost +
              EstimateJoinExecCost(JoinMethod::kIndexNestedLoop, in, cluster,
                                   0.0);  // Inner scan already excluded.
          if (cost < entry.cost) {
            entry.cost = cost;
            entry.rows = out_rows;
            entry.bytes = out_bytes;
            entry.tree = JoinTree::Join(left.tree, right.tree,
                                        JoinMethod::kIndexNestedLoop);
            entry.filtered = true;
          }
        }
      }
    }
  }

  if (dp[full].tree == nullptr) {
    return Status::InvalidArgument(
        "DP found no connected plan (disconnected join graph?)");
  }
  if (est_rows != nullptr) *est_rows = dp[full].rows;
  if (est_cost != nullptr) *est_cost = dp[full].cost;
  return dp[full].tree;
}

Result<OptimizerRunResult> StaticCostBasedOptimizer::Run(
    const QuerySpec& query) {
  QuerySpec spec = query;
  spec.NormalizeJoins();
  DYNOPT_RETURN_IF_ERROR(spec.Validate());
  DYNOPT_RETURN_IF_ERROR(CheckContext());
  StatsView view(&spec, &engine_->stats(), &engine_->catalog());
  TraceSpan plan_span("plan-dp", "opt");
  // Cross-query error memory (off by default): past runs' q-errors widen
  // this plan's confidence intervals, and this run's root q-error feeds
  // the store for the next one.
  ErrorStatsStore* err_store = EngineErrorStats(engine_);
  const SelectivityRisk risk =
      PriorRisk(spec, err_store, engine_->cluster().risk.max_ci_widening);
  double est_rows = -1;
  double est_cost = -1;
  DYNOPT_ASSIGN_OR_RETURN(
      std::shared_ptr<const JoinTree> tree,
      PlanWithDp(spec, view, engine_->cluster(), options_, &est_rows,
                 &est_cost, err_store != nullptr ? &risk : nullptr));
  plan_span.End();
  std::string trace = "[cost-based] plan: " + tree->ToString() + "\n";

  auto profile = std::make_shared<QueryProfile>();
  profile->optimizer = name();
  PlanDecision decision;
  decision.point = "initial-plan";
  decision.chosen = tree->ToString();
  decision.estimated_rows = est_rows;
  decision.estimated_cost = est_cost;
  if (err_store != nullptr && risk.prior_factor > 1.0) {
    decision.prior_key = risk.prior_key;
    decision.prior_factor = risk.prior_factor;
  }
  int decision_id = profile->decisions.Record(std::move(decision));
  auto result = ExecuteTreeAsSingleJob(engine_, spec, std::move(tree),
                                       std::move(trace), ctx_,
                                       std::move(profile), decision_id);
  if (result.ok() && err_store != nullptr && result.value().profile != nullptr) {
    const auto& decisions = result.value().profile->decisions.decisions();
    if (decision_id >= 0 && decision_id < static_cast<int>(decisions.size())) {
      const double q = decisions[static_cast<size_t>(decision_id)].QError();
      std::vector<std::string> bases;
      for (const auto& ref : spec.tables) {
        if (!ref.is_intermediate) bases.push_back(ref.table);
      }
      if (q >= 1.0 && !bases.empty()) {
        err_store->Record(JoinErrorKey(std::move(bases)), q);
        // Persist opportunistically; a failed save never fails the query.
        (void)err_store->Save();
      }
    }
  }
  return result;
}

}  // namespace dynopt
