#ifndef DYNOPT_OPT_DYNAMIC_OPTIMIZER_H_
#define DYNOPT_OPT_DYNAMIC_OPTIMIZER_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "exec/engine.h"
#include "opt/join_tree.h"
#include "opt/optimizer.h"
#include "opt/planner.h"

namespace dynopt {

/// Knobs for the runtime dynamic optimizer. The booleans exist so the
/// Figure-6 overhead experiments can ablate individual stages.
struct DynamicOptimizerOptions {
  PlannerOptions planner;
  /// Execute-early for multi/complex predicate sets (Algorithm 1 lines
  /// 6-9); when false, predicates are only estimated.
  bool pushdown_predicates = true;
  /// Collect sketches on materialized intermediates; when false only exact
  /// row counts are fed back.
  bool collect_online_stats = true;
  /// Build join-key Bloom + Fast-AGMS sketches on every materialized
  /// intermediate (registered with the engine's SketchManager and priced
  /// like online statistics). Off by default: metering stays byte-identical.
  bool collect_sketches = false;
  /// Let the planner answer join cardinalities from Fast-AGMS sketches
  /// where both sides carry one, falling back to formula (1) otherwise.
  /// Decisions made from sketches are tagged est_src=sketch in the log.
  bool use_sketch_estimates = false;
  /// Drop materialized temp tables when the query finishes.
  bool drop_temp_tables = true;
  /// Also push down single simple predicates instead of estimating them
  /// from the histogram — the INGRES-style full decomposition.
  bool pushdown_simple_predicates = false;
  /// Figure-6 (right) ablation: run only the predicate push-down stage,
  /// then plan the remaining query statically (DP over the refined
  /// statistics) and execute it as one job with no further
  /// re-optimization points.
  bool stop_after_pushdown = false;
  /// Failure-injection hook for the fault-tolerance tests: abort the run
  /// (with a retryable Transient error and a recoverable checkpoint) after
  /// this many completed stages. Negative disables injection.
  int inject_failure_after_stages = -1;
  /// Optimizer name stamped on QueryProfile/trace spans; the ingres-like
  /// wrapper overrides it so its profiles are attributed correctly.
  std::string profile_label = "dynamic";
};

/// Serializable progress of a dynamic-optimization run — the
/// fault-tolerance mechanism the paper's Section 8 proposes: since every
/// re-optimization point already materializes its intermediate result,
/// those temp tables double as checkpoints. This records which stages
/// completed, the rewritten remaining query and the accumulated metrics;
/// Resume() picks up a failed long-running query from here instead of
/// starting over.
struct DynamicCheckpoint {
  QuerySpec spec;  ///< Remaining query, rewritten around intermediates.
  std::map<std::string, std::shared_ptr<const JoinTree>> subtrees;
  std::vector<std::string> temp_tables;  ///< Live checkpoint data.
  int join_counter = 0;
  /// Index into the original alias order up to which push-down completed.
  size_t pushdown_next_index = 0;
  bool pushdown_done = false;
  int completed_stages = 0;
  ExecMetrics metrics;  ///< Work already paid for (not redone on resume).
  std::string trace;
  /// Decisions logged so far (each recorded after its stage materializes,
  /// so a resumed run never duplicates entries).
  DecisionLog decisions;
  /// SubtreeKey -> actual materialized rows of completed stages.
  std::map<std::string, uint64_t> subtree_actual_rows;
  /// Extra re-optimization checkpoints already spent on this query by the
  /// error feedback loop (risk.max_extra_reopts bounds it). Lives in the
  /// checkpoint so a resumed run neither forgets a spent trigger (which
  /// would re-fire it) nor re-counts one.
  int extra_reopts = 0;
  /// Original alias -> catalog table name, captured before push-down
  /// rewrites aliases onto temp tables. Cross-query error-store keys must
  /// name base tables (temp names are meaningless across queries).
  std::map<std::string, std::string> base_tables;
};

/// The paper's contribution (Algorithm 1): INGRES-style runtime dynamic
/// optimization adapted to a shared-nothing engine.
///
///   1. Every dataset with multiple or complex (UDF/parameterized) local
///      predicates is executed first as a single-variable job; the filtered
///      result is materialized with fresh statistics.
///   2. While more than two joins remain: the Planner picks the single join
///      with the least estimated result cardinality (+ best algorithm),
///      that join runs as its own job, its result is materialized with
///      online statistics, and the remaining query is reconstructed around
///      the intermediate.
///   3. The final (at most two) joins are ordered with the accumulated
///      statistics and executed as one job whose output is returned.
class DynamicOptimizer : public Optimizer {
 public:
  explicit DynamicOptimizer(
      Engine* engine,
      const DynamicOptimizerOptions& options = DynamicOptimizerOptions());

  std::string name() const override { return "dynamic"; }
  Result<OptimizerRunResult> Run(const QuerySpec& query) override;

  /// Continues a run that failed mid-query from its last checkpoint; the
  /// checkpoint's temp tables must still exist in the catalog. Completed
  /// stages are not re-executed (their metrics carry over).
  Result<OptimizerRunResult> Resume(DynamicCheckpoint checkpoint);

  /// A checkpoint exists whenever the last Run/Resume failed with a
  /// retryable error: every stage boundary is a materialization point, so
  /// the run auto-checkpoints the completed prefix before surfacing the
  /// failure (a failure before the first boundary checkpoints the initial
  /// state, which degenerates to a restart — still via the same path).
  bool CanResume() const override { return last_checkpoint_.has_value(); }
  Result<OptimizerRunResult> ResumeFromLastCheckpoint() override;

  /// Checkpoint cut when the most recent Run/Resume failed mid-query;
  /// nullptr when the last run succeeded (or never ran).
  const DynamicCheckpoint* last_checkpoint() const {
    return last_checkpoint_.has_value() ? &*last_checkpoint_ : nullptr;
  }

 private:
  Result<OptimizerRunResult> RunFromState(DynamicCheckpoint state);

  Engine* engine_;
  DynamicOptimizerOptions options_;
  std::optional<DynamicCheckpoint> last_checkpoint_;
};

}  // namespace dynopt

#endif  // DYNOPT_OPT_DYNAMIC_OPTIMIZER_H_
